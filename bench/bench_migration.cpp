// Live shard migration handover cost (DESIGN.md §9): a closed-loop PUT/GET
// workload keeps running while the cluster adds or drains a shard; we
// measure the bulk-copy rate (keys/sec moved) and the client's latency
// before, during and after the handover.
//
// Expected shape: the copy runs at a healthy clip (it is paced, not
// starved), client p99 during the handover stays bounded by one
// wrong-owner retry round (the seal window) in the fault-free scenarios,
// and a source crash mid-copy stretches the handover by roughly the
// failover window without losing a single operation.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "obs/plane.hpp"

namespace {

using namespace hydra;

struct Row {
  std::string label;
  double duration_s = 0;      // kMigrationStart -> kMigrationDone, virtual
  std::uint64_t keys_moved = 0;
  std::uint64_t bytes_moved = 0;
  double keys_per_s = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t epoch_invalidations = 0;
  std::uint64_t wrong_owner_redirects = 0;
  std::uint64_t ops_before = 0, ops_during = 0, ops_after = 0;
  double p99_before_us = 0, p99_during_us = 0, p99_after_us = 0;
  std::string obs_json;
};

double p99_us(std::vector<Duration>& lat) {
  if (lat.empty()) return 0;
  std::sort(lat.begin(), lat.end());
  const std::size_t idx = (lat.size() * 99 + 99) / 100 - 1;
  return static_cast<double>(lat[std::min(idx, lat.size() - 1)]) / kMicrosecond;
}

std::string hex16(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(std::string("--metrics-out=").size());
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
    }
  }

  bench::ShapeChecker shape;
  std::vector<Row> rows;

  struct Config {
    const char* label;
    int shards;
    bool drain;        // drain shard 1 instead of adding shard `shards`
    bool kill_source;  // crash a copy source mid-migration
  };
  const Config configs[] = {
      {"add-3to4", 3, false, false},
      {"drain-4to3", 4, true, false},
      {"add-kill-source", 3, false, true},
  };
  constexpr std::uint32_t kPreload = 8192;

  for (const auto& cfg : configs) {
    db::ClusterOptions opts;
    opts.server_nodes = cfg.shards;
    opts.shards_per_node = 1;
    opts.total_shards = cfg.shards;
    opts.client_nodes = 1;
    opts.clients_per_node = 1;
    opts.replicas = 1;
    opts.replication.mode = replication::ReplicationMode::kLogRelaxed;
    opts.enable_swat = true;
    opts.shard_template.store.arena_bytes = 64 << 20;
    opts.shard_template.store.min_buckets = 1 << 14;
    opts.client_template.request_timeout = 100 * kMillisecond;
    opts.client_template.max_retries = 100;
    // Always attached: by the determinism contract (DESIGN.md §8) the plane
    // cannot perturb the measured history.
    obs::Plane plane;
    opts.obs = &plane;
    db::HydraCluster cluster(opts);
    sim::Scheduler& sched = cluster.scheduler();

    Xoshiro256 rng(0x5EED + static_cast<std::uint64_t>(cfg.shards) +
                   (cfg.drain ? 1000 : 0) + (cfg.kill_source ? 2000 : 0));
    for (std::uint32_t i = 0; i < kPreload; ++i) {
      cluster.direct_load("pre-" + std::to_string(i), "p-" + hex16(rng()));
    }

    // Closed-loop 90/10 GET/PUT mix over the preloaded keys; every op's
    // (issue, done) pair is kept so latencies can be bucketed around the
    // migration window afterwards.
    struct OpLat {
      Time issued = 0;
      Time done = 0;
    };
    std::vector<OpLat> lats;
    lats.reserve(1 << 20);
    bool stop = false;
    std::uint64_t failed_ops = 0;
    client::Client* cl = cluster.clients().front();
    std::function<void()> next = [&] {
      if (stop) return;
      const std::string key = "pre-" + std::to_string(rng.below(kPreload));
      const std::size_t slot = lats.size();
      lats.push_back({sched.now(), 0});
      if (rng.below(10) == 0) {
        cl->put(key, "u-" + hex16(rng()), [&, slot](Status st) {
          lats[slot].done = sched.now();
          failed_ops += st != Status::kOk;
          next();
        });
      } else {
        cl->get(key, [&, slot](Status st, std::string_view) {
          lats[slot].done = sched.now();
          failed_ops += st != Status::kOk;
          next();
        });
      }
    };
    next();

    // Baseline -> migrate (+ optional mid-copy source kill) -> tail.
    sched.run_until(sched.now() + 30 * kMillisecond);
    const Time migrate_at = sched.now();
    bool started = false;
    if (cfg.drain) {
      started = cluster.drain_shard_live(1);
    } else {
      started = cluster.add_shard_live() != kInvalidShard;
    }
    if (cfg.kill_source) {
      sched.after(2 * kMillisecond, [&] { cluster.crash_primary(0); });
    }
    const Time migrate_deadline = migrate_at + 60 * kSecond;
    while (cluster.migration_active() && sched.now() < migrate_deadline &&
           sched.step()) {
    }
    const Time commit_at = sched.now();
    sched.run_until(sched.now() + 30 * kMillisecond);
    stop = true;
    cluster.run_for(500 * kMillisecond);  // drain the in-flight op

    Row row;
    row.label = cfg.label;
    const db::MigrationStats& mstats = cluster.migration_stats();
    row.keys_moved = mstats.keys_moved;
    row.bytes_moved = mstats.bytes_moved;
    row.forwarded = mstats.forwarded;
    row.epoch_invalidations = cl->stats().epoch_invalidations;
    row.wrong_owner_redirects = cl->stats().wrong_owner_redirects;

    // Copy duration from the trace alone (protocol begin -> ring commit).
    const obs::TraceQuery q = plane.query();
    const auto start_rec = q.first(obs::TraceKind::kMigrationStart);
    const auto done_rec = q.first(obs::TraceKind::kMigrationDone);
    if (start_rec && done_rec) {
      row.duration_s = static_cast<double>(done_rec->at - start_rec->at) / kSecond;
      if (row.duration_s > 0) {
        row.keys_per_s = static_cast<double>(row.keys_moved) / row.duration_s;
      }
    }

    std::vector<Duration> before, during, after;
    for (const OpLat& l : lats) {
      if (l.done == 0) continue;  // the one op in flight at shutdown
      auto& bucket = l.issued < migrate_at ? before
                     : l.issued <= commit_at ? during
                                             : after;
      bucket.push_back(l.done - l.issued);
    }
    row.ops_before = before.size();
    row.ops_during = during.size();
    row.ops_after = after.size();
    row.p99_before_us = p99_us(before);
    row.p99_during_us = p99_us(during);
    row.p99_after_us = p99_us(after);
    if (!metrics_out.empty()) row.obs_json = plane.json(sched.now());
    rows.push_back(row);

    shape.expect(started, row.label + ": migration started");
    shape.expect(mstats.completed == 1, row.label + ": migration committed");
    shape.expect(row.keys_moved > 0, row.label + ": a non-trivial range moved");
    shape.expect(row.keys_per_s > 0, row.label + ": copy made forward progress");
    shape.expect(failed_ops == 0,
                 row.label + ": no client op failed across the handover");
    shape.expect(row.ops_during > 0, row.label + ": workload overlapped the copy");
    shape.expect(row.p99_before_us < 1000.0,
                 row.label + ": baseline p99 is sub-millisecond");
    if (cfg.kill_source) {
      // A crashed source stalls its flow for the ~2.5s failover window; the
      // handover p99 is bounded by that, not by the copy.
      shape.expect(row.p99_during_us < 6'000'000.0,
                   row.label + ": handover p99 bounded by the failover window");
      shape.expect(mstats.flow_restarts > 0,
                   row.label + ": the crashed source's flow was rebuilt");
    } else {
      // Fault-free handover: p99 is bounded by one wrong-owner retry round
      // (request_timeout / 4 backoff) plus scheduling noise.
      shape.expect(row.p99_during_us < 150'000.0,
                   row.label + ": handover p99 within one redirect round");
      shape.expect(row.forwarded > 0,
                   row.label + ": dual-ownership catch-up forwarded writes");
    }
    shape.expect(row.p99_after_us < 1000.0,
                 row.label + ": p99 returns to baseline after the commit");
  }

  std::printf("Live migration handover (virtual time)\n");
  std::printf("%-18s %10s %9s %12s %11s %12s %11s\n", "scenario", "duration",
              "moved", "keys/sec", "p99 before", "p99 during", "p99 after");
  for (const Row& r : rows) {
    std::printf("%-18s %9.3fs %9llu %12.0f %10.1fus %11.1fus %10.1fus\n",
                r.label.c_str(), r.duration_s,
                static_cast<unsigned long long>(r.keys_moved), r.keys_per_s,
                r.p99_before_us, r.p99_during_us, r.p99_after_us);
  }

  if (!metrics_out.empty()) {
    std::FILE* f = std::fopen(metrics_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_migration: cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"migration\",\n  \"scenarios\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(
          f,
          "    {\"label\": \"%s\", \"duration_s\": %.6f, \"keys_moved\": %llu, "
          "\"bytes_moved\": %llu, \"keys_per_s\": %.0f, \"forwarded\": %llu,\n"
          "     \"epoch_invalidations\": %llu, \"wrong_owner_redirects\": %llu,\n"
          "     \"ops\": {\"before\": %llu, \"during\": %llu, \"after\": %llu},\n"
          "     \"p99_us\": {\"before\": %.1f, \"during\": %.1f, \"after\": %.1f},\n"
          "     \"obs\": %s}%s\n",
          r.label.c_str(), r.duration_s,
          static_cast<unsigned long long>(r.keys_moved),
          static_cast<unsigned long long>(r.bytes_moved), r.keys_per_s,
          static_cast<unsigned long long>(r.forwarded),
          static_cast<unsigned long long>(r.epoch_invalidations),
          static_cast<unsigned long long>(r.wrong_owner_redirects),
          static_cast<unsigned long long>(r.ops_before),
          static_cast<unsigned long long>(r.ops_during),
          static_cast<unsigned long long>(r.ops_after), r.p99_before_us,
          r.p99_during_us, r.p99_after_us, r.obs_json.c_str(),
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", metrics_out.c_str());
  }

  return shape.summarize("migration");
}
