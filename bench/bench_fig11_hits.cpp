// Figure 11: remote-pointer hit analysis (50 clients).
//
// Paper shape: for Zipfian workloads, successful remote-pointer hits fall
// ~75% as the update ratio rises from 0% to 50% while invalid hits explode;
// Uniform workloads get far fewer hits to begin with.
#include <cstdio>
#include <map>

#include "bench_util.hpp"

int main() {
  using namespace hydra;
  bench::ShapeChecker shape;

  struct Hits {
    std::uint64_t valid = 0, invalid = 0, miss = 0;
  };
  std::map<std::string, Hits> rows;

  for (const auto& spec : ycsb::paper_workloads(20'000, 40'000)) {
    db::HydraCluster cluster(bench::paper_cluster_options());
    ycsb::RunOptions ropts;
      ropts.warmup_ops_per_client = 150;  // fill the pointer cache (paper: warm runs)
      const auto r = ycsb::run_workload(cluster, spec, ropts);
    rows[spec.name()] = Hits{r.ptr_hits, r.invalid_hits, r.ptr_misses};
  }

  std::printf("Figure 11: remote pointer hit analysis (50 clients)\n");
  std::printf("%-20s %14s %14s %14s\n", "workload", "valid_hits", "invalid_hits", "misses");
  for (const auto& [workload, h] : rows) {
    std::printf("%-20s %14llu %14llu %14llu\n", workload.c_str(),
                static_cast<unsigned long long>(h.valid),
                static_cast<unsigned long long>(h.invalid),
                static_cast<unsigned long long>(h.miss));
  }

  const Hits& z100 = rows.at("100%GET/zipfian");
  const Hits& z90 = rows.at("90%GET/zipfian");
  const Hits& z50 = rows.at("50%GET/zipfian");
  const Hits& u100 = rows.at("100%GET/uniform");
  shape.expect(z50.valid * 2 < z100.valid,
               "Zipfian valid hits collapse as updates reach 50% (paper: -75.5%)");
  shape.expect(z50.invalid > 10 * std::max<std::uint64_t>(z100.invalid, 1),
               "Zipfian invalid hits explode with updates (paper: ~7 million-fold)");
  shape.expect(z90.valid > z50.valid, "hits decrease monotonically with update ratio");
  shape.expect(z100.valid > 3 * std::max<std::uint64_t>(u100.valid, 1),
               "Uniform reuses cached pointers far less than Zipfian");
  return shape.summarize("fig11_hits");
}
