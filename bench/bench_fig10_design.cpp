// Figure 10 (and section 6.2.1): incremental evaluation of the RDMA design
// choices over the six YCSB workloads.
//
//   Send/Recv            -- two-sided verbs baseline
//   RDMA Write Only      -- one-sided message passing, no pointer caching
//   RDMA Write + Read    -- plus client-side remote pointer caching
//   Pipeline + RDMA Write -- decoupled dispatcher/worker shard (4x cores)
//
// Paper shape: Write beats Send/Recv by 75-163%; +Read adds 10-30% on
// Zipfian read-heavy mixes but little on Uniform; the single-threaded shard
// beats the pipelined one by 27-95% despite using a quarter of the cores.
#include <cstdio>
#include <map>

#include "bench_util.hpp"

int main() {
  using namespace hydra;
  bench::ShapeChecker shape;

  struct Design {
    const char* label;
    server::ServerMode mode;
    bool rdma_read;
    bool pipelined;
  };
  const Design designs[] = {
      {"Send/Recv", server::ServerMode::kSendRecv, false, false},
      {"RDMA Write Only", server::ServerMode::kRdmaWritePolling, false, false},
      {"RDMA Write + Read", server::ServerMode::kRdmaWritePolling, true, false},
      {"Pipeline + RDMA Write", server::ServerMode::kRdmaWritePolling, false, true},
  };

  std::map<std::string, std::map<std::string, double>> mops;  // workload -> design
  const auto workloads = ycsb::paper_workloads(20'000, 40'000);
  for (const auto& spec : workloads) {
    for (const auto& design : designs) {
      auto opts = bench::paper_cluster_options();
      opts.server_mode = design.mode;
      opts.client_rdma_read = design.rdma_read;
      opts.pipelined_servers = design.pipelined;  // 2 dispatchers + 2 workers per shard
      db::HydraCluster cluster(opts);
      ycsb::RunOptions ropts;
      ropts.warmup_ops_per_client = 150;  // fill the pointer cache (paper: warm runs)
      const auto r = ycsb::run_workload(cluster, spec, ropts);
      mops[spec.name()][design.label] = r.throughput_mops;
    }
  }

  std::printf("Figure 10: throughput (Mops) per design, six YCSB workloads\n");
  std::printf("%-20s", "workload");
  for (const auto& d : designs) std::printf(" %22s", d.label);
  std::printf("\n");
  for (const auto& [workload, per_design] : mops) {
    std::printf("%-20s", workload.c_str());
    for (const auto& d : designs) std::printf(" %22.3f", per_design.at(d.label));
    std::printf("\n");
  }

  // ---- shape assertions --------------------------------------------------
  for (const auto& [workload, d] : mops) {
    shape.expect(d.at("RDMA Write Only") > 1.3 * d.at("Send/Recv"),
                 workload + ": RDMA-Write messaging well above Send/Recv (paper: +75-163%)");
    shape.expect(d.at("RDMA Write Only") > 1.2 * d.at("Pipeline + RDMA Write"),
                 workload + ": single-threaded beats pipelined with 4x cores (paper: +27-95%)");
  }
  const auto& z100 = mops.at("100%GET/zipfian");
  const auto& z50 = mops.at("50%GET/zipfian");
  const auto& u100 = mops.at("100%GET/uniform");
  shape.expect(z100.at("RDMA Write + Read") > 1.05 * z100.at("RDMA Write Only"),
               "pointer caching helps Zipfian 100% GET (paper: +29.9%)");
  const double zipf_read_gain =
      z100.at("RDMA Write + Read") / z100.at("RDMA Write Only");
  const double zipf50_read_gain =
      z50.at("RDMA Write + Read") / z50.at("RDMA Write Only");
  shape.expect(zipf_read_gain > zipf50_read_gain,
               "read benefit shrinks as updates grow (invalidation, paper 6.2)");
  const double unif_read_gain =
      u100.at("RDMA Write + Read") / u100.at("RDMA Write Only");
  shape.expect(zipf_read_gain > unif_read_gain,
               "Zipfian benefits more than Uniform from cached pointers");
  return shape.summarize("fig10_design");
}
