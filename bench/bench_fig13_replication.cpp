// Figure 13: latency cost of replication -- strict request/acknowledge
// versus RDMA logging replication with relaxed acknowledgements.
//
// Paper shape: strict req/ack consistently ~doubles the no-replication
// INSERT latency; RDMA logging adds only ~12.3% for one replica and ~41.1%
// for two, across client counts.
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.hpp"

int main() {
  using namespace hydra;
  bench::ShapeChecker shape;

  struct Config {
    const char* label;
    int replicas;
    replication::ReplicationMode mode;
  };
  const Config configs[] = {
      {"no-replication", 0, replication::ReplicationMode::kNone},
      {"strict-1-replica", 1, replication::ReplicationMode::kStrictAck},
      {"strict-2-replicas", 2, replication::ReplicationMode::kStrictAck},
      {"rdmalog-1-replica", 1, replication::ReplicationMode::kLogRelaxed},
      {"rdmalog-2-replicas", 2, replication::ReplicationMode::kLogRelaxed},
  };
  const std::vector<int> client_counts = {1, 8, 16, 32};

  // avg INSERT latency (us): config -> per client count
  std::map<std::string, std::vector<double>> latency;

  for (const auto& cfg : configs) {
    for (const int clients : client_counts) {
      db::ClusterOptions opts;
      // A single shard instance, as in the paper's experiment; its
      // secondaries land on the otherwise idle server machines.
      opts.server_nodes = 1 + std::max(cfg.replicas, 1);
      opts.shards_per_node = 1;
      opts.total_shards = 1;
      opts.client_nodes = 4;
      opts.clients_per_node = (clients + 3) / 4;
      opts.enable_swat = false;
      opts.replicas = cfg.replicas;
      opts.replication.mode = cfg.mode;
      db::HydraCluster cluster(opts);

      // Only one primary shard exists (shard 0 on node 0); route all
      // inserts there by using each client's own unique key space.
      auto& all = cluster.clients();
      const int usable = std::min<int>(clients, static_cast<int>(all.size()));
      int remaining = usable;
      constexpr int kInsertsPerClient = 400;
      for (int c = 0; c < usable; ++c) {
        auto* cl = all[static_cast<std::size_t>(c)];
        auto counter = std::make_shared<int>(0);
        auto issue = std::make_shared<std::function<void()>>();
        *issue = [&cluster, cl, c, counter, issue, &remaining] {
          if (*counter == kInsertsPerClient) {
            --remaining;
            return;
          }
          const std::uint64_t i = static_cast<std::uint64_t>(c) * 1'000'000 +
                                  static_cast<std::uint64_t>((*counter)++);
          cl->insert(format_key(i), synth_value(i), [issue](Status) { (*issue)(); });
        };
        (*issue)();
      }
      while (remaining > 0 && cluster.scheduler().step()) {
      }

      LatencyHistogram hist;
      for (int c = 0; c < usable; ++c) {
        hist.merge(all[static_cast<std::size_t>(c)]->stats().put_latency);
      }
      latency[cfg.label].push_back(hist.mean() / 1000.0);
    }
  }

  std::printf("Figure 13: average INSERT latency (us) vs number of clients\n");
  std::printf("%-20s", "replication");
  for (const int c : client_counts) std::printf(" %8dcl", c);
  std::printf("\n");
  for (const auto& cfg : configs) {
    std::printf("%-20s", cfg.label);
    for (const double us : latency[cfg.label]) std::printf(" %10.2f", us);
    std::printf("\n");
  }

  // ---- shape assertions -----------------------------------------------------
  for (std::size_t i = 0; i < client_counts.size(); ++i) {
    const double base = latency["no-replication"][i];
    const double strict1 = latency["strict-1-replica"][i];
    const double log1 = latency["rdmalog-1-replica"][i];
    const double log2 = latency["rdmalog-2-replicas"][i];
    const std::string tag = std::to_string(client_counts[i]) + " clients";
    shape.expect(strict1 > 1.6 * base,
                 tag + ": strict req/ack roughly doubles latency (paper: ~2x)");
    shape.expect(log1 < 1.35 * base,
                 tag + ": RDMA logging adds little for one replica (paper: +12.3%)");
    shape.expect(log2 < 1.75 * base,
                 tag + ": two replicas still cheap under RDMA logging (paper: +41.1%)");
    shape.expect(log1 < strict1, tag + ": relaxed beats strict");
  }
  return shape.summarize("fig13_replication");
}
