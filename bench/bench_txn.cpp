// Multi-key transaction bench (DESIGN.md §11): a TPC-C-like mix of
// payment-shaped (3-key) and new-order-shaped (6-10 key) transactions over
// zipfian-0.99 keys, swept across contention levels by shrinking the key
// universe. Reports per-mode abort-rate and commit-latency curves
// (NO_WAIT vs WAIT_DIE) and writes BENCH_txn.json (hydradb-obs-v1).
//
// Paper-shape claims checked: contention raises the abort rate for both
// lock policies; WAIT_DIE sustains a lower abort rate than NO_WAIT at high
// contention (waiting out a younger holder beats dying and redoing the
// whole lock phase); commit p99 rises with contention.
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/hash.hpp"
#include "common/histogram.hpp"
#include "common/keygen.hpp"
#include "common/rng.hpp"
#include "txn/txn.hpp"

namespace {

using namespace hydra;

constexpr int kTxnClients = 12;
constexpr std::uint32_t kTxnsPerClient = 60;

struct TxnPoint {
  std::uint64_t records = 0;  ///< key-universe size (smaller = hotter)
  std::uint64_t committed = 0;
  std::uint64_t failed = 0;
  std::uint64_t attempts = 0;  ///< committed + restarted attempts
  std::uint64_t conflict_aborts = 0;
  std::uint64_t waits = 0;
  std::uint64_t restarts = 0;
  double abort_rate = 0.0;  ///< conflict aborts per lock-phase attempt
  obs::LatencySummary lat;  ///< commit latency (started -> acked)
};

/// One sweep point: kTxnClients closed-loop clients, each driving
/// kTxnsPerClient transactions drawn from the TPC-C-like mix against a
/// 4-shard cluster whose keys come from a `records`-sized zipfian universe.
TxnPoint run_point(proto::TxnMode mode, std::uint64_t records, std::uint64_t seed) {
  db::ClusterOptions opts;
  opts.server_nodes = 2;
  opts.shards_per_node = 2;
  opts.total_shards = 4;
  opts.client_nodes = 2;
  opts.clients_per_node = kTxnClients / 2;
  opts.enable_swat = false;
  opts.shard_template.txn_lock_words = 4096;  // aliasing-free: conflicts are key conflicts
  opts.shard_template.store.arena_bytes = 32ull << 20;
  opts.shard_template.store.min_buckets = 1 << 14;
  db::HydraCluster cluster(opts);

  for (std::uint64_t r = 0; r < records; ++r) {
    cluster.direct_load(format_key(r), synth_value(r));
  }

  txn::TxnOptions topts;
  topts.mode = mode;
  topts.max_restarts = 10'000;  // never fail terminally: measure aborts, not give-ups
  // Hot retry policy: a small restart backoff keeps aborted attempts coming
  // back while the keys are still hot (the regime where the lock policies
  // actually differ), and fast wait polling lets a WAIT_DIE older waiter
  // grab the word the moment the younger holder unlocks.
  topts.restart_backoff = 10 * kMicrosecond;
  topts.backoff_growth = 0;  // constant backoff: no adaptive self-throttling
  topts.wait_backoff = 5 * kMicrosecond;
  topts.wait_retries = 4'000;
  auto ids = txn::TxnClient::make_id_source();
  std::vector<std::unique_ptr<txn::TxnClient>> drivers;
  for (int c = 0; c < kTxnClients; ++c) {
    auto d = std::make_unique<txn::TxnClient>(cluster.scheduler(), *cluster.clients()[c],
                                              topts, ids);
    d->set_resolver([&cluster](std::uint64_t h) { return cluster.ring().owner(h); });
    d->set_epoch_source([&cluster] { return cluster.routing_epoch(); });
    drivers.push_back(std::move(d));
  }

  // Pre-generate every transaction's op list (trace pre-generation, like
  // the YCSB path) so key drawing never perturbs issue timing.
  ScrambledZipfianChooser chooser(records);
  Xoshiro256 rng(seed * 0x9E3779B97F4A7C15ULL + records);
  auto draw_unique = [&](std::set<std::uint64_t>& used) {
    for (int tries = 0; tries < 64; ++tries) {
      const std::uint64_t r = chooser.next(rng);
      if (used.insert(r).second) return r;
    }
    return chooser.next(rng);  // tiny universe exhausted: allow the repeat
  };
  std::vector<std::vector<std::vector<proto::TxnOp>>> plan(kTxnClients);
  for (int c = 0; c < kTxnClients; ++c) {
    plan[c].resize(kTxnsPerClient);
    for (std::uint32_t t = 0; t < kTxnsPerClient; ++t) {
      auto& ops = plan[c][t];
      std::set<std::uint64_t> used;
      if (rng.below(2) == 0) {
        // Payment-shaped: read the customer row, update two balance rows.
        ops.push_back({proto::MsgType::kGet, format_key(draw_unique(used)), ""});
        for (int k = 0; k < 2; ++k) {
          const std::uint64_t r = draw_unique(used);
          ops.push_back({proto::MsgType::kPut, format_key(r), synth_value(r + 1)});
        }
      } else {
        // New-order-shaped: read warehouse + district, insert the order and
        // update 4-7 stock rows.
        for (int k = 0; k < 2; ++k) {
          ops.push_back({proto::MsgType::kGet, format_key(draw_unique(used)), ""});
        }
        const int stock = 4 + static_cast<int>(rng.below(4));
        for (int k = 0; k < stock; ++k) {
          const std::uint64_t r = draw_unique(used);
          ops.push_back({proto::MsgType::kPut, format_key(r), synth_value(r + 2)});
        }
      }
    }
  }

  auto& sched = cluster.scheduler();
  LatencyHistogram lat;
  std::uint64_t done = 0;
  std::uint64_t failed = 0;
  std::vector<std::uint32_t> cursor(kTxnClients, 0);
  std::function<void(int)> issue = [&](int c) {
    if (cursor[c] >= kTxnsPerClient) return;
    const Time t0 = sched.now();
    drivers[c]->run(plan[c][cursor[c]++],
                    [&, c, t0](Status s, std::vector<std::string>) {
                      lat.record(sched.now() - t0);
                      ++done;
                      failed += s != Status::kOk;
                      issue(c);
                    });
  };
  for (int c = 0; c < kTxnClients; ++c) issue(c);
  while (done < static_cast<std::uint64_t>(kTxnClients) * kTxnsPerClient &&
         sched.step()) {
  }

  TxnPoint p;
  p.records = records;
  p.failed = failed;
  for (const auto& d : drivers) {
    const txn::TxnStats& s = d->stats();
    p.committed += s.committed;
    p.restarts += s.restarts;
    p.conflict_aborts += s.died;
    p.waits += s.waits;
  }
  p.attempts = p.committed + p.failed + p.restarts;
  p.abort_rate = p.attempts > 0
                     ? static_cast<double>(p.conflict_aborts) / static_cast<double>(p.attempts)
                     : 0.0;
  p.lat = obs::summarize(lat);
  return p;
}

const char* mode_name(proto::TxnMode m) {
  return m == proto::TxnMode::kNoWait ? "no_wait" : "wait_die";
}

void write_json(const std::string& path, const std::vector<std::uint64_t>& universes,
                const std::vector<TxnPoint>& no_wait, const std::vector<TxnPoint>& wait_die) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  auto emit_mode = [&](const char* name, const std::vector<TxnPoint>& pts, bool last) {
    std::fprintf(f, "  \"%s\": {\n    \"points\": [\n", name);
    for (std::size_t i = 0; i < pts.size(); ++i) {
      const TxnPoint& p = pts[i];
      std::fprintf(f,
                   "      {\"records\": %llu, \"committed\": %llu, \"failed\": %llu, "
                   "\"attempts\": %llu, \"conflict_aborts\": %llu, \"waits\": %llu, "
                   "\"restarts\": %llu, \"abort_rate\": %.4f, \"txn_latency\": %s}%s\n",
                   static_cast<unsigned long long>(p.records),
                   static_cast<unsigned long long>(p.committed),
                   static_cast<unsigned long long>(p.failed),
                   static_cast<unsigned long long>(p.attempts),
                   static_cast<unsigned long long>(p.conflict_aborts),
                   static_cast<unsigned long long>(p.waits),
                   static_cast<unsigned long long>(p.restarts), p.abort_rate,
                   bench::latency_json(p.lat).c_str(), i + 1 < pts.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n  }%s\n", last ? "" : ",");
  };
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"txn_2pl\",\n"
               "  \"schema\": \"hydradb-obs-v1\",\n"
               "  \"workload\": \"tpcc-like payment/new-order mix, zipfian-0.99 keys, "
               "%d closed-loop clients x %u txns\",\n"
               "  \"contention_axis\": \"shrinking key universe (records); smaller = hotter\",\n",
               kTxnClients, kTxnsPerClient);
  std::fprintf(f, "  \"universes\": [");
  for (std::size_t i = 0; i < universes.size(); ++i) {
    std::fprintf(f, "%llu%s", static_cast<unsigned long long>(universes[i]),
                 i + 1 < universes.size() ? ", " : "");
  }
  std::fprintf(f, "],\n");
  emit_mode(mode_name(proto::TxnMode::kNoWait), no_wait, false);
  emit_mode(mode_name(proto::TxnMode::kWaitDie), wait_die, true);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_txn.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  // Universe sizes from effectively contention-free (10k keys across 12
  // clients) down to white-hot (48 keys shared by everyone).
  const std::vector<std::uint64_t> universes = {10'000, 1'000, 100, 16};
  std::vector<TxnPoint> no_wait, wait_die;
  std::printf("%-9s %-8s | %9s %9s %9s %9s %11s %11s\n", "mode", "records", "committed",
              "aborts", "waits", "restarts", "abort_rate", "p99_us");
  for (const proto::TxnMode mode : {proto::TxnMode::kNoWait, proto::TxnMode::kWaitDie}) {
    for (const std::uint64_t records : universes) {
      const TxnPoint p = run_point(mode, records, 1);
      std::printf("%-9s %-8llu | %9llu %9llu %9llu %9llu %11.4f %11.1f\n",
                  mode_name(mode), static_cast<unsigned long long>(records),
                  static_cast<unsigned long long>(p.committed),
                  static_cast<unsigned long long>(p.conflict_aborts),
                  static_cast<unsigned long long>(p.waits),
                  static_cast<unsigned long long>(p.restarts), p.abort_rate,
                  static_cast<double>(p.lat.p99_ns) / 1000.0);
      (mode == proto::TxnMode::kNoWait ? no_wait : wait_die).push_back(p);
    }
  }

  write_json(json_path, universes, no_wait, wait_die);

  bench::ShapeChecker shape;
  const TxnPoint& nw_cold = no_wait.front();
  const TxnPoint& nw_hot = no_wait.back();
  const TxnPoint& wd_cold = wait_die.front();
  const TxnPoint& wd_hot = wait_die.back();
  shape.expect(nw_cold.failed == 0 && nw_hot.failed == 0 && wd_cold.failed == 0 &&
                   wd_hot.failed == 0,
               "every transaction eventually commits (no terminal give-ups)");
  shape.expect(nw_hot.abort_rate > nw_cold.abort_rate,
               "NO_WAIT: contention raises the abort rate");
  shape.expect(wd_hot.abort_rate > wd_cold.abort_rate,
               "WAIT_DIE: contention raises the abort rate");
  shape.expect(wd_hot.abort_rate < nw_hot.abort_rate,
               "WAIT_DIE sustains a lower abort rate than NO_WAIT at high contention");
  shape.expect(wd_hot.waits > 0, "WAIT_DIE actually waits under contention");
  shape.expect(nw_hot.lat.p99_ns > nw_cold.lat.p99_ns,
               "NO_WAIT: commit p99 rises with contention");
  return shape.summarize("txn_2pl");
}
