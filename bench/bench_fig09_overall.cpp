// Figure 9: overall performance of HydraDB versus Memcached-, Redis- and
// RAMCloud-architecture baselines across the six YCSB workloads.
//
// Paper shape: HydraDB delivers roughly an order of magnitude higher
// throughput with up to ~50x lower latency; its throughput grows strongly
// with the GET ratio (+246% Zipfian / +183% Uniform from 50% to 100% GET)
// and its read latency falls as RDMA Reads take over.
#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "ycsb/baseline_runner.hpp"

int main() {
  using namespace hydra;
  bench::ShapeChecker shape;

  struct Row {
    double mops = 0, get_us = 0, upd_us = 0;
  };
  std::map<std::string, std::map<std::string, Row>> table;  // workload -> system -> row
  std::map<std::string, Row> hydra_rows;

  const auto workloads = ycsb::paper_workloads(20'000, 40'000);
  for (const auto& spec : workloads) {
    // ---- HydraDB --------------------------------------------------------
    {
      db::HydraCluster cluster(bench::paper_cluster_options());
      ycsb::RunOptions ropts;
      ropts.warmup_ops_per_client = 150;  // fill the pointer cache (paper: warm runs)
      const auto r = ycsb::run_workload(cluster, spec, ropts);
      table[spec.name()]["HydraDB"] = Row{r.throughput_mops, r.avg_get_us, r.avg_update_us};
      hydra_rows[spec.name()] = table[spec.name()]["HydraDB"];
    }
    // ---- baselines ------------------------------------------------------
    struct Maker {
      const char* label;
      std::unique_ptr<baselines::BaselineStore> (*make)(sim::Scheduler&, fabric::Fabric&,
                                                        baselines::BaselineConfig);
    };
    const Maker makers[] = {{"Memcached", baselines::make_memcached_like},
                            {"Redis", baselines::make_redis_like},
                            {"RAMCloud", baselines::make_ramcloud_like}};
    for (const auto& maker : makers) {
      sim::Scheduler sched;
      fabric::Fabric fabric{sched};
      baselines::BaselineConfig cfg;
      cfg.server_node = fabric.add_node("server").id();
      for (int i = 0; i < 5; ++i) cfg.client_nodes.push_back(fabric.add_node("client").id());
      auto store = maker.make(sched, fabric, cfg);
      const auto r = ycsb::run_baseline(sched, *store, spec, 50);
      table[spec.name()][maker.label] = Row{r.throughput_mops, r.avg_get_us, r.avg_update_us};
    }
  }

  std::printf("Figure 9: peak throughput (Mops) and average latency (us)\n");
  std::printf("%-20s %-11s %10s %10s %10s\n", "workload", "system", "Mops", "get_us", "upd_us");
  for (const auto& [workload, systems] : table) {
    for (const auto& [system, row] : systems) {
      std::printf("%-20s %-11s %10.3f %10.2f %10.2f\n", workload.c_str(), system.c_str(),
                  row.mops, row.get_us, row.upd_us);
    }
  }

  // ---- shape assertions ------------------------------------------------
  for (const auto& [workload, systems] : table) {
    const Row& hydra = systems.at("HydraDB");
    double best_other = 0, best_latency = 1e18;
    for (const auto& [system, row] : systems) {
      if (system == "HydraDB") continue;
      best_other = std::max(best_other, row.mops);
      best_latency = std::min(best_latency, row.get_us);
    }
    // Zipfian 50/50 concentrates non-bypassable updates on the hot shard,
    // making it the weakest mix for HydraDB in the paper as well.
    const double factor = workload == "50%GET/zipfian" ? 3.5 : 4.0;
    shape.expect(hydra.mops > factor * best_other,
                 workload + ": HydraDB >" + std::to_string(factor).substr(0, 3) +
                     "x the best baseline's throughput (paper: ~10x)");
    shape.expect(hydra.get_us * 4.0 < best_latency,
                 workload + ": HydraDB GET latency >4x lower than baselines (paper: up to 50x)");
  }
  const double zipf_gain =
      hydra_rows.at("100%GET/zipfian").mops / hydra_rows.at("50%GET/zipfian").mops;
  const double unif_gain =
      hydra_rows.at("100%GET/uniform").mops / hydra_rows.at("50%GET/uniform").mops;
  shape.expect(zipf_gain > 1.5,
               "Zipfian throughput grows strongly 50%->100% GET (paper: +246%)");
  shape.expect(unif_gain > 1.5,
               "Uniform throughput grows strongly 50%->100% GET (paper: +183%)");
  shape.expect(hydra_rows.at("100%GET/zipfian").get_us <
                   hydra_rows.at("50%GET/zipfian").get_us,
               "Zipfian read latency falls as GETs dominate (paper: 27.2us -> 6.2us)");
  shape.expect(hydra_rows.at("100%GET/zipfian").mops >
                   hydra_rows.at("100%GET/uniform").mops,
               "skewed read-intensive load benefits most from RDMA Read");
  return shape.summarize("fig09_overall");
}
