// YCSB-E (DESIGN.md §13): 95% range scans / 5% inserts over the ordered
// index, scan throughput and p99 scan latency as a function of scan length
// (1 / 16 / 64), with the one-sided leaf-read continuation path on vs off
// at identical seeds. Longer scans must cost more tail latency; the
// one-sided path must actually serve continuations and shed message-path
// batches when enabled. Writes BENCH_ycsbE.json (hydradb-obs-v1).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace hydra;

constexpr std::uint64_t kRecords = 8'000;
constexpr std::uint64_t kOperations = 12'000;
constexpr std::uint64_t kSeed = 2468;

struct ScanPoint {
  std::uint64_t scan_len = 1;  ///< max entries per scan (drawn uniform [1, len])
  bool leaf_reads = false;
  double mops = 0.0;
  double avg_scan_us = 0.0;
  double p99_scan_us = 0.0;
  std::uint64_t scans = 0;
  std::uint64_t scan_entries = 0;
  std::uint64_t leaf_read_count = 0;
  std::uint64_t leaf_fallbacks = 0;
  std::uint64_t scan_batches = 0;  ///< message-path kScan ops
};

db::ClusterOptions scan_options(bool leaf_reads) {
  db::ClusterOptions opts;
  opts.server_nodes = 3;
  opts.shards_per_node = 1;
  opts.client_nodes = 5;
  opts.clients_per_node = 10;
  opts.enable_swat = false;  // HA idle during throughput measurements
  opts.ordered_index = true;
  opts.client_template.scan_leaf_reads = leaf_reads;
  // Batch small enough that scans of >= 16 keys need continuation rounds;
  // that is the traffic the one-sided leaf path exists to absorb.
  opts.client_template.scan_batch = 8;
  opts.shard_template.store.arena_bytes = 32ull << 20;
  opts.shard_template.store.min_buckets = 1 << 14;
  return opts;
}

ScanPoint run_point(std::uint64_t scan_len, bool leaf_reads) {
  db::HydraCluster cluster(scan_options(leaf_reads));
  const auto spec = ycsb::ycsb_e(kRecords, kOperations, scan_len, kSeed);
  ycsb::RunOptions ropts;
  ropts.warmup_ops_per_client = 50;
  const auto r = ycsb::run_workload(cluster, spec, ropts);

  ScanPoint p;
  p.scan_len = scan_len;
  p.leaf_reads = leaf_reads;
  p.mops = r.throughput_mops;
  p.avg_scan_us = r.avg_scan_us;
  p.p99_scan_us = static_cast<double>(r.p99_scan) / 1000.0;
  p.scans = r.scans;
  p.scan_entries = r.scan_entries;
  p.leaf_read_count = r.scan_leaf_reads;
  p.leaf_fallbacks = r.scan_leaf_fallbacks;
  for (const auto* cl : cluster.clients()) p.scan_batches += cl->stats().scan_batches;
  return p;
}

void write_json(const std::string& path, const std::vector<ScanPoint>& points) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"ycsb_e\",\n"
               "  \"schema\": \"hydradb-obs-v1\",\n"
               "  \"workload\": \"YCSB-E 95%%SCAN/5%%INSERT zipfian, %llu records, "
               "%llu ops, 50 closed-loop clients, seed %llu; identical seeds "
               "leaf-reads on vs off per scan length\",\n"
               "  \"points\": [\n",
               static_cast<unsigned long long>(kRecords),
               static_cast<unsigned long long>(kOperations),
               static_cast<unsigned long long>(kSeed));
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ScanPoint& p = points[i];
    std::fprintf(f,
                 "    {\"scan_len\": %llu, \"leaf_reads\": %s, \"mops\": %.3f, "
                 "\"avg_scan_us\": %.2f, \"p99_scan_us\": %.2f, \"scans\": %llu, "
                 "\"scan_entries\": %llu, \"leaf_read_count\": %llu, "
                 "\"leaf_fallbacks\": %llu, \"scan_batches\": %llu}%s\n",
                 static_cast<unsigned long long>(p.scan_len),
                 p.leaf_reads ? "true" : "false", p.mops, p.avg_scan_us, p.p99_scan_us,
                 static_cast<unsigned long long>(p.scans),
                 static_cast<unsigned long long>(p.scan_entries),
                 static_cast<unsigned long long>(p.leaf_read_count),
                 static_cast<unsigned long long>(p.leaf_fallbacks),
                 static_cast<unsigned long long>(p.scan_batches),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_ycsbE.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  std::vector<ScanPoint> points;
  std::printf("%-9s %-10s | %8s %12s %12s %8s %9s %11s %10s %9s\n", "scan_len",
              "leaf-reads", "mops", "avg_scan_us", "p99_scan_us", "scans", "entries",
              "leaf_reads", "fallbacks", "batches");
  for (const std::uint64_t len : {1ULL, 16ULL, 64ULL}) {
    for (const bool leaf : {false, true}) {
      const ScanPoint p = run_point(len, leaf);
      std::printf("%-9llu %-10s | %8.3f %12.2f %12.2f %8llu %9llu %11llu %10llu %9llu\n",
                  static_cast<unsigned long long>(p.scan_len), leaf ? "on" : "off",
                  p.mops, p.avg_scan_us, p.p99_scan_us,
                  static_cast<unsigned long long>(p.scans),
                  static_cast<unsigned long long>(p.scan_entries),
                  static_cast<unsigned long long>(p.leaf_read_count),
                  static_cast<unsigned long long>(p.leaf_fallbacks),
                  static_cast<unsigned long long>(p.scan_batches));
      points.push_back(p);
    }
  }

  write_json(json_path, points);

  bench::ShapeChecker shape;
  const ScanPoint& l1_off = points[0];
  const ScanPoint& l1_on = points[1];
  const ScanPoint& l16_off = points[2];
  const ScanPoint& l16_on = points[3];
  const ScanPoint& l64_off = points[4];
  const ScanPoint& l64_on = points[5];
  shape.expect(l1_off.leaf_read_count == 0 && l16_off.leaf_read_count == 0 &&
                   l64_off.leaf_read_count == 0,
               "leaf-reads-off runs never issue one-sided leaf reads");
  shape.expect(l1_off.scans > 0 && l1_off.scans == l1_on.scans &&
                   l16_off.scans == l16_on.scans && l64_off.scans == l64_on.scans,
               "identical seeds complete identical scan counts on vs off");
  shape.expect(l16_off.scan_entries > l1_off.scan_entries &&
                   l64_off.scan_entries > l16_off.scan_entries,
               "longer scan lengths return more entries");
  shape.expect(l64_off.p99_scan_us > l1_off.p99_scan_us &&
                   l64_on.p99_scan_us > l1_on.p99_scan_us,
               "p99 scan latency grows with scan length");
  shape.expect(l16_on.leaf_read_count > 0 && l64_on.leaf_read_count > 0,
               "multi-batch scans ride one-sided leaf-page continuations");
  shape.expect(l64_on.scan_batches < l64_off.scan_batches,
               "one-sided continuations shed message-path scan batches (len 64)");
  return shape.summarize("ycsb_e");
}
