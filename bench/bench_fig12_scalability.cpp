// Figure 12: scale-out (1-7 server machines) and scale-up (1-8 shard
// instances on one machine), 60 clients on 6 machines.
//
// Paper shape: Uniform 50/50 and 90/10 scale out near-linearly; Zipfian
// workloads saturate (skew cannot be rebalanced by adding machines);
// scale-up is linear to ~5 shards, then the NIC's QP-count penalty
// (shards x clients connections) flattens it; 100% GET saturates the NIC
// with few shards.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <vector>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hydra;
  bench::ShapeChecker shape;

  // --window N re-runs the whole sweep with N-deep request rings and
  // N-outstanding drivers (default 1 = the paper's closed-loop setup).
  std::uint32_t window = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--window=", 9) == 0) {
      window = static_cast<std::uint32_t>(std::strtoul(argv[i] + 9, nullptr, 10));
    } else if (std::strcmp(argv[i], "--window") == 0 && i + 1 < argc) {
      window = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    }
  }
  if (window == 0) window = 1;
  if (window > 1) std::printf("request-ring window: %u\n", window);
  ycsb::RunOptions ropts;
  ropts.outstanding = window;

  const std::vector<std::pair<double, Distribution>> mixes = {
      {0.5, Distribution::kUniform},  {0.9, Distribution::kUniform},
      {1.0, Distribution::kUniform},  {0.5, Distribution::kZipfian},
      {0.9, Distribution::kZipfian},  {1.0, Distribution::kZipfian},
  };

  // ---------------- scale-out: 1..7 machines, 1 shard each -----------------
  std::map<std::string, std::vector<double>> out_tput;
  for (int nodes = 1; nodes <= 7; ++nodes) {
    for (const auto& [get_frac, dist] : mixes) {
      auto opts = bench::paper_cluster_options(/*shards=*/1);
      opts.server_nodes = nodes;
      opts.shards_per_node = 1;
      opts.client_nodes = 6;
      opts.clients_per_node = 10;
      opts.client_template.window = window;
      db::HydraCluster cluster(opts);
      const auto spec = bench::scaled_spec(get_frac, dist, 20'000, 24'000);
      const auto r = ycsb::run_workload(cluster, spec, ropts);
      out_tput[spec.name()].push_back(r.throughput_mops);
    }
  }

  std::printf("Figure 12(a,b): scale-out, normalized throughput vs server machines\n");
  std::printf("%-20s", "workload");
  for (int n = 1; n <= 7; ++n) std::printf("  n=%d  ", n);
  std::printf("\n");
  for (const auto& [workload, series] : out_tput) {
    std::printf("%-20s", workload.c_str());
    for (const double v : series) std::printf(" %5.2f ", v / series[0]);
    std::printf("\n");
  }

  // ---------------- scale-up: 1..8 shards on one machine --------------------
  std::map<std::string, std::vector<double>> up_tput;
  for (int shards = 1; shards <= 8; ++shards) {
    for (const auto& [get_frac, dist] : mixes) {
      auto opts = bench::paper_cluster_options(shards);
      opts.client_nodes = 6;
      opts.clients_per_node = 10;
      opts.client_template.window = window;
      db::HydraCluster cluster(opts);
      const auto spec = bench::scaled_spec(get_frac, dist, 20'000, 24'000);
      const auto r = ycsb::run_workload(cluster, spec, ropts);
      up_tput[spec.name()].push_back(r.throughput_mops);
    }
  }

  std::printf("\nFigure 12(c,d): scale-up, normalized throughput vs shard count\n");
  std::printf("%-20s", "workload");
  for (int s = 1; s <= 8; ++s) std::printf("  s=%d  ", s);
  std::printf("\n");
  for (const auto& [workload, series] : up_tput) {
    std::printf("%-20s", workload.c_str());
    for (const double v : series) std::printf(" %5.2f ", v / series[0]);
    std::printf("\n");
  }

  // ---- shape assertions -----------------------------------------------------
  auto norm = [](const std::vector<double>& s, int i) { return s[static_cast<std::size_t>(i)] / s[0]; };

  const auto& u50_out = out_tput.at("50%GET/uniform");
  const auto& u90_out = out_tput.at("90%GET/uniform");
  shape.expect(norm(u50_out, 6) > 4.0,
               "scale-out: Uniform 50/50 near-linear over 7 machines (paper: linear)");
  shape.expect(norm(u90_out, 6) > 4.0,
               "scale-out: Uniform 90/10 near-linear over 7 machines (paper: linear)");
  const auto& z50_out = out_tput.at("50%GET/zipfian");
  shape.expect(norm(z50_out, 6) < norm(u50_out, 6),
               "scale-out: Zipfian saturates below Uniform (skew resists rebalance)");

  const auto& u50_up = up_tput.at("50%GET/uniform");
  shape.expect(norm(u50_up, 4) > 3.0,
               "scale-up: Uniform 50/50 scales well to 5 shards (paper: linear to 5)");
  const double tail_growth = norm(u50_up, 7) / norm(u50_up, 4);
  shape.expect(tail_growth < 1.5,
               "scale-up: growth flattens beyond 5 shards (QP-count penalty, paper 6.3)");
  const auto& z90_up = up_tput.at("90%GET/zipfian");
  shape.expect(norm(z90_up, 7) < norm(u50_up, 7),
               "scale-up: skew limits Zipfian below Uniform");
  const auto& g100_up = up_tput.at("100%GET/zipfian");
  shape.expect(norm(g100_up, 7) < norm(u50_up, 7),
               "scale-up: 100% GET NIC-bound early (RDMA Reads saturate the device)");
  return shape.summarize("fig12_scalability");
}
