// Figure 12: scale-out (1-7 server machines) and scale-up (1-8 shard
// instances on one machine), 60 clients on 6 machines.
//
// Paper shape: Uniform 50/50 and 90/10 scale out near-linearly; Zipfian
// workloads saturate (skew cannot be rebalanced by adding machines);
// scale-up is linear to ~5 shards, then the NIC's QP-count penalty
// (shards x clients connections) flattens it; 100% GET saturates the NIC
// with few shards.
//
// --clients[=N,N,...] switches to the connection-scalability sweep
// (DESIGN.md §10): a think-time GET workload over 1k..100k clients, run
// with per-client QPs and/or QP-multiplexed shared channels (--per-qp /
// --mux; default both), reporting where each wiring's p99 doubles over its
// own 1k baseline (the "knee") and writing BENCH_fig12.json.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/keygen.hpp"
#include "common/rng.hpp"

namespace {

using namespace hydra;

// ------------------- connection-scalability sweep (DESIGN.md §10) ----------

struct ConnPoint {
  std::uint32_t clients = 0;
  std::uint64_t ops = 0;
  std::uint64_t failures = 0;
  double ops_per_sec = 0.0;
  obs::LatencySummary lat;
  std::uint64_t qp_connects = 0;
  std::uint64_t live_qp_pairs = 0;
  std::uint64_t mux_requests = 0;
  std::uint64_t credit_waits = 0;
};

/// One sweep point: `clients` simulated clients on 20 client machines
/// against 2 server machines x 8 shards, each client GETting its own
/// preloaded key at think-time-staggered instants (aggregate rate held
/// well under shard saturation, so latency tracks the connection plane,
/// not queueing). Returns the pooled latency summary plus the QP census.
ConnPoint run_conn_point(std::uint32_t clients, bool mux) {
  constexpr int kClientNodes = 20;
  db::ClusterOptions opts;
  opts.server_nodes = 2;
  opts.shards_per_node = 8;
  opts.client_nodes = kClientNodes;
  opts.clients_per_node = static_cast<int>(clients) / kClientNodes;
  opts.enable_swat = false;
  opts.client_rdma_read = false;  // every GET exercises the QP message path
  opts.share_pointer_cache = true;
  opts.mux_connections = mux;
  opts.mux.idle_timeout = kSecond;  // no reclaim churn mid-measurement
  opts.client_template.window = 1;
  opts.client_template.resp_slot_bytes = 512;
  opts.client_template.request_timeout = 50 * kMillisecond;
  opts.shard_template.msg_slot_bytes = 512;
  opts.shard_template.ring_slots = 1;
  // Per-QP wiring needs one dedicated ring block per client; mux groups do
  // not draw from the per-connection budget.
  opts.shard_template.max_connections = mux ? 256 : clients + 64;
  opts.shard_template.store.arena_bytes = 32ull << 20;
  opts.shard_template.store.min_buckets = 1 << 15;
  db::HydraCluster cluster(opts);

  for (std::uint32_t c = 0; c < clients; ++c) {
    cluster.direct_load(format_key(c), "v0");
  }

  // Fixed ~48k-op budget spread over all clients; issue instants uniform in
  // a window sized for ~1.2M aggregate ops/s (16 shards saturate far
  // higher, so the servers stay uncongested at every sweep point).
  const std::uint64_t per_client = std::max<std::uint64_t>(1, 48'000 / clients);
  const std::uint64_t total = per_client * clients;
  const Duration window = static_cast<Duration>(total * 833);
  Xoshiro256 rng(0x5ca1ab1eULL + clients * 2 + (mux ? 1 : 0));

  auto& sched = cluster.scheduler();
  LatencyHistogram lat;
  std::uint64_t done = 0;
  std::uint64_t failures = 0;
  for (std::uint32_t c = 0; c < clients; ++c) {
    for (std::uint64_t j = 0; j < per_client; ++j) {
      const auto at = static_cast<Time>(rng.below(static_cast<std::uint64_t>(window)));
      sched.at(at, [&cluster, &sched, &lat, &done, &failures, c] {
        const Time t0 = sched.now();
        cluster.clients()[c]->get(format_key(c),
                                  [&sched, &lat, &done, &failures, t0](Status s,
                                                                       std::string_view) {
                                    lat.record(sched.now() - t0);
                                    ++done;
                                    failures += s != Status::kOk;
                                  });
      });
    }
  }
  while (done < total && sched.step()) {
  }

  ConnPoint p;
  p.clients = clients;
  p.ops = done;
  p.failures = failures;
  p.ops_per_sec = sched.now() > 0 ? static_cast<double>(done) * 1e9 /
                                        static_cast<double>(sched.now())
                                  : 0.0;
  p.lat = obs::summarize(lat);
  p.qp_connects = cluster.fabric().stats().qp_connects;
  p.live_qp_pairs = cluster.fabric().live_qp_pairs();
  for (ShardId s = 0; s < cluster.shard_count(); ++s) {
    p.mux_requests += cluster.shard(s)->stats().mux_requests;
  }
  for (int n = 0; n < kClientNodes; ++n) {
    if (auto* m = cluster.node_mux(n)) p.credit_waits += m->stats().credit_waits;
  }
  return p;
}

/// First swept client count whose p99 is >= 2x the first point's p99;
/// 0 when the series never knees within the sweep.
std::uint32_t knee_of(const std::vector<ConnPoint>& pts) {
  if (pts.empty()) return 0;
  const auto baseline = static_cast<double>(pts.front().lat.p99_ns);
  for (const auto& p : pts) {
    if (static_cast<double>(p.lat.p99_ns) >= 2.0 * baseline) return p.clients;
  }
  return 0;
}

void print_conn_table(const char* label, const std::vector<ConnPoint>& pts) {
  std::printf("\n%s\n", label);
  std::printf("%10s %9s %12s %10s %10s %8s %8s %12s %12s\n", "clients", "ops",
              "ops/s", "p50 ns", "p99 ns", "qps", "fail", "mux_reqs", "credit_waits");
  for (const auto& p : pts) {
    std::printf("%10u %9llu %12.0f %10llu %10llu %8llu %8llu %12llu %12llu\n", p.clients,
                static_cast<unsigned long long>(p.ops), p.ops_per_sec,
                static_cast<unsigned long long>(p.lat.p50_ns),
                static_cast<unsigned long long>(p.lat.p99_ns),
                static_cast<unsigned long long>(p.live_qp_pairs),
                static_cast<unsigned long long>(p.failures),
                static_cast<unsigned long long>(p.mux_requests),
                static_cast<unsigned long long>(p.credit_waits));
  }
}

void write_conn_json(const std::string& path, const std::vector<ConnPoint>& perqp,
                     const std::vector<ConnPoint>& muxed, std::uint32_t perqp_knee,
                     std::uint32_t mux_knee) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_fig12: cannot write %s\n", path.c_str());
    return;
  }
  auto write_mode = [&](const char* name, const std::vector<ConnPoint>& pts,
                        std::uint32_t knee, const char* trailing) {
    std::fprintf(f, "  \"%s\": {\n    \"knee_clients\": %u,\n    \"points\": [\n", name,
                 knee);
    for (std::size_t i = 0; i < pts.size(); ++i) {
      const auto& p = pts[i];
      std::fprintf(f,
                   "      {\"clients\": %u, \"ops\": %llu, \"failures\": %llu, "
                   "\"ops_per_sec\": %.1f, \"get_latency\": %s, "
                   "\"qp_connects\": %llu, \"live_qp_pairs\": %llu, "
                   "\"mux_requests\": %llu, \"credit_waits\": %llu}%s\n",
                   p.clients, static_cast<unsigned long long>(p.ops),
                   static_cast<unsigned long long>(p.failures), p.ops_per_sec,
                   bench::latency_json(p.lat).c_str(),
                   static_cast<unsigned long long>(p.qp_connects),
                   static_cast<unsigned long long>(p.live_qp_pairs),
                   static_cast<unsigned long long>(p.mux_requests),
                   static_cast<unsigned long long>(p.credit_waits),
                   i + 1 < pts.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n  }%s\n", trailing);
  };
  std::fprintf(f, "{\n  \"bench\": \"fig12_conn_scale\",\n"
                  "  \"schema\": \"hydradb-obs-v1\",\n"
                  "  \"knee_definition\": \"first client count whose p99 >= 2x "
                  "the mode's own first-point p99; 0 = no knee within sweep\",\n");
  write_mode("per_qp", perqp, perqp_knee, ",");
  write_mode("mux", muxed, mux_knee, "");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

std::vector<std::uint32_t> parse_counts(const std::string& arg) {
  std::vector<std::uint32_t> counts;
  std::size_t pos = 0;
  while (pos < arg.size()) {
    const std::size_t comma = arg.find(',', pos);
    const std::string tok =
        arg.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const long v = std::strtol(tok.c_str(), nullptr, 10);
    // Client counts are spread over 20 client machines.
    if (v > 0) counts.push_back(std::max(20u, static_cast<std::uint32_t>(v) / 20 * 20));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return counts;
}

int run_conn_sweep(std::vector<std::uint32_t> counts, bool run_perqp, bool run_mux,
                   std::uint32_t perqp_cap, const std::string& json_path) {
  if (counts.empty()) counts = {1'000, 2'000, 5'000, 10'000, 25'000, 50'000, 100'000};
  bench::ShapeChecker shape;

  std::vector<ConnPoint> perqp;
  std::vector<ConnPoint> muxed;
  if (run_perqp) {
    for (const std::uint32_t c : counts) {
      // Per-client QPs past the cap cost O(clients) dedicated ring blocks
      // per shard for no extra signal: the knee sits far below it.
      if (c > perqp_cap) {
        std::printf("per-qp: skipping %u clients (cap %u)\n", c, perqp_cap);
        continue;
      }
      perqp.push_back(run_conn_point(c, /*mux=*/false));
    }
    print_conn_table("per-client QPs", perqp);
  }
  if (run_mux) {
    for (const std::uint32_t c : counts) muxed.push_back(run_conn_point(c, /*mux=*/true));
    print_conn_table("QP-mux + shared rings", muxed);
  }

  const std::uint32_t perqp_knee = knee_of(perqp);
  const std::uint32_t mux_knee = knee_of(muxed);
  if (run_perqp) {
    std::printf("\nper-qp knee: %u clients%s\n", perqp_knee,
                perqp_knee == 0 ? " (none within sweep)" : "");
  }
  if (run_mux) {
    std::printf("mux knee: %u clients%s\n", mux_knee,
                mux_knee == 0 ? " (none within sweep)" : "");
  }
  write_conn_json(json_path, perqp, muxed, perqp_knee, mux_knee);

  if (!run_perqp || !run_mux) return 0;  // single mode: census only, no verdict
  for (const auto& pts : {&perqp, &muxed}) {
    for (const auto& p : *pts) {
      shape.expect(p.failures == 0, "all ops complete Ok at " +
                                        std::to_string(p.clients) + " clients");
    }
  }
  shape.expect(perqp_knee != 0,
               "per-client QPs: p99 doubles within the sweep (QP-count penalty)");
  // A mode that never knees is credited with its last completed point.
  const std::uint32_t mux_eff = mux_knee != 0 ? mux_knee : muxed.back().clients;
  shape.expect(perqp_knee != 0 && mux_eff >= 4 * perqp_knee,
               "QP-mux moves the p99 knee >= 4x more clients out");
  return shape.summarize("fig12_conn_scale");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hydra;
  bench::ShapeChecker shape;

  // --window N re-runs the whole sweep with N-deep request rings and
  // N-outstanding drivers (default 1 = the paper's closed-loop setup).
  // --clients[=list] switches to the connection-scalability sweep instead.
  std::uint32_t window = 1;
  bool conn_sweep = false;
  bool run_perqp = true;
  bool run_mux = true;
  std::uint32_t perqp_cap = 25'000;
  std::vector<std::uint32_t> counts;
  std::string json_path = "BENCH_fig12.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--window=", 9) == 0) {
      window = static_cast<std::uint32_t>(std::strtoul(argv[i] + 9, nullptr, 10));
    } else if (std::strcmp(argv[i], "--window") == 0 && i + 1 < argc) {
      window = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strncmp(argv[i], "--clients=", 10) == 0) {
      conn_sweep = true;
      counts = parse_counts(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--clients") == 0) {
      conn_sweep = true;
    } else if (std::strcmp(argv[i], "--mux") == 0) {
      run_perqp = false;
    } else if (std::strcmp(argv[i], "--per-qp") == 0) {
      run_mux = false;
    } else if (std::strncmp(argv[i], "--perqp-cap=", 12) == 0) {
      perqp_cap = static_cast<std::uint32_t>(std::strtoul(argv[i] + 12, nullptr, 10));
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  if (conn_sweep) {
    return run_conn_sweep(std::move(counts), run_perqp, run_mux, perqp_cap, json_path);
  }
  if (window == 0) window = 1;
  if (window > 1) std::printf("request-ring window: %u\n", window);
  ycsb::RunOptions ropts;
  ropts.outstanding = window;

  const std::vector<std::pair<double, Distribution>> mixes = {
      {0.5, Distribution::kUniform},  {0.9, Distribution::kUniform},
      {1.0, Distribution::kUniform},  {0.5, Distribution::kZipfian},
      {0.9, Distribution::kZipfian},  {1.0, Distribution::kZipfian},
  };

  // ---------------- scale-out: 1..7 machines, 1 shard each -----------------
  std::map<std::string, std::vector<double>> out_tput;
  for (int nodes = 1; nodes <= 7; ++nodes) {
    for (const auto& [get_frac, dist] : mixes) {
      auto opts = bench::paper_cluster_options(/*shards=*/1);
      opts.server_nodes = nodes;
      opts.shards_per_node = 1;
      opts.client_nodes = 6;
      opts.clients_per_node = 10;
      opts.client_template.window = window;
      db::HydraCluster cluster(opts);
      const auto spec = bench::scaled_spec(get_frac, dist, 20'000, 24'000);
      const auto r = ycsb::run_workload(cluster, spec, ropts);
      out_tput[spec.name()].push_back(r.throughput_mops);
    }
  }

  std::printf("Figure 12(a,b): scale-out, normalized throughput vs server machines\n");
  std::printf("%-20s", "workload");
  for (int n = 1; n <= 7; ++n) std::printf("  n=%d  ", n);
  std::printf("\n");
  for (const auto& [workload, series] : out_tput) {
    std::printf("%-20s", workload.c_str());
    for (const double v : series) std::printf(" %5.2f ", v / series[0]);
    std::printf("\n");
  }

  // ---------------- scale-up: 1..8 shards on one machine --------------------
  std::map<std::string, std::vector<double>> up_tput;
  for (int shards = 1; shards <= 8; ++shards) {
    for (const auto& [get_frac, dist] : mixes) {
      auto opts = bench::paper_cluster_options(shards);
      opts.client_nodes = 6;
      opts.clients_per_node = 10;
      opts.client_template.window = window;
      db::HydraCluster cluster(opts);
      const auto spec = bench::scaled_spec(get_frac, dist, 20'000, 24'000);
      const auto r = ycsb::run_workload(cluster, spec, ropts);
      up_tput[spec.name()].push_back(r.throughput_mops);
    }
  }

  std::printf("\nFigure 12(c,d): scale-up, normalized throughput vs shard count\n");
  std::printf("%-20s", "workload");
  for (int s = 1; s <= 8; ++s) std::printf("  s=%d  ", s);
  std::printf("\n");
  for (const auto& [workload, series] : up_tput) {
    std::printf("%-20s", workload.c_str());
    for (const double v : series) std::printf(" %5.2f ", v / series[0]);
    std::printf("\n");
  }

  // ---- shape assertions -----------------------------------------------------
  auto norm = [](const std::vector<double>& s, int i) { return s[static_cast<std::size_t>(i)] / s[0]; };

  const auto& u50_out = out_tput.at("50%GET/uniform");
  const auto& u90_out = out_tput.at("90%GET/uniform");
  shape.expect(norm(u50_out, 6) > 4.0,
               "scale-out: Uniform 50/50 near-linear over 7 machines (paper: linear)");
  shape.expect(norm(u90_out, 6) > 4.0,
               "scale-out: Uniform 90/10 near-linear over 7 machines (paper: linear)");
  const auto& z50_out = out_tput.at("50%GET/zipfian");
  shape.expect(norm(z50_out, 6) < norm(u50_out, 6),
               "scale-out: Zipfian saturates below Uniform (skew resists rebalance)");

  const auto& u50_up = up_tput.at("50%GET/uniform");
  shape.expect(norm(u50_up, 4) > 3.0,
               "scale-up: Uniform 50/50 scales well to 5 shards (paper: linear to 5)");
  const double tail_growth = norm(u50_up, 7) / norm(u50_up, 4);
  shape.expect(tail_growth < 1.5,
               "scale-up: growth flattens beyond 5 shards (QP-count penalty, paper 6.3)");
  const auto& z90_up = up_tput.at("90%GET/zipfian");
  shape.expect(norm(z90_up, 7) < norm(u50_up, 7),
               "scale-up: skew limits Zipfian below Uniform");
  const auto& g100_up = up_tput.at("100%GET/zipfian");
  shape.expect(norm(g100_up, 7) < norm(u50_up, 7),
               "scale-up: 100% GET NIC-bound early (RDMA Reads saturate the device)");
  return shape.summarize("fig12_scalability");
}
