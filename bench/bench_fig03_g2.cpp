// Figure 3: G2 sensemaking engines against an in-memory database versus
// HydraDB.
//
// Paper shape: the database's lock/statement path saturates with few
// engines; HydraDB sustains ~4x more concurrently active engines and up to
// an order of magnitude higher observation throughput.
#include <cstdio>
#include <vector>

#include "apps/g2.hpp"
#include "bench_util.hpp"

int main() {
  using namespace hydra;
  bench::ShapeChecker shape;

  const std::vector<int> engine_counts = {1, 2, 4, 8, 16, 32};
  std::vector<double> db_tput, hydra_tput;

  std::printf("Figure 3: observation throughput (obs/s) vs concurrent engines\n");
  std::printf("%-8s %16s %16s %8s\n", "engines", "in-memory DB", "HydraDB", "ratio");

  for (const int engines : engine_counts) {
    apps::G2Config cfg;
    cfg.engines = engines;
    cfg.observations_per_engine = 120;
    cfg.entity_count = 10'000;

    sim::Scheduler db_sched;
    fabric::Fabric db_fabric{db_sched};
    const NodeId db_node = db_fabric.add_node("db").id();
    std::vector<NodeId> engine_nodes;
    for (int i = 0; i < 4; ++i) engine_nodes.push_back(db_fabric.add_node("engine").id());
    apps::InMemoryDbBackend db_backend(db_sched, db_fabric, db_node, engine_nodes);
    apps::load_entities(db_backend, cfg);
    const double db_obs = apps::run_g2(db_sched, db_backend, cfg).observations_per_sec;

    auto opts = bench::paper_cluster_options();
    opts.server_nodes = 2;  // a small HydraDB cluster, as G2 deployed it
    opts.client_nodes = 4;
    opts.clients_per_node = 8;
    db::HydraCluster cluster(opts);
    apps::HydraDbBackend hydra_backend(cluster);
    apps::load_entities(hydra_backend, cfg);
    const double hydra_obs =
        apps::run_g2(cluster.scheduler(), hydra_backend, cfg).observations_per_sec;

    std::printf("%-8d %16.0f %16.0f %7.1fx\n", engines, db_obs, hydra_obs, hydra_obs / db_obs);
    db_tput.push_back(db_obs);
    hydra_tput.push_back(hydra_obs);
  }

  // Saturation point: first engine count whose throughput is <1.25x the
  // previous doubling's.
  auto saturation_engines = [&](const std::vector<double>& series) {
    for (std::size_t i = 1; i < series.size(); ++i) {
      if (series[i] < series[i - 1] * 1.25) return engine_counts[i - 1];
    }
    return engine_counts.back();
  };
  const int db_sat = saturation_engines(db_tput);
  const int hydra_sat = saturation_engines(hydra_tput);
  std::printf("\nsaturation: in-memory DB at ~%d engines, HydraDB at ~%d engines\n", db_sat,
              hydra_sat);

  // "4x more engines effectively operate concurrently": at 4x the DB's
  // saturation point HydraDB is still converting added engines into
  // throughput, and it keeps growing through the largest configuration.
  auto index_of = [&](int engines) {
    for (std::size_t i = 0; i < engine_counts.size(); ++i) {
      if (engine_counts[i] == engines) return i;
    }
    return engine_counts.size() - 1;
  };
  const std::size_t at_db_sat = index_of(db_sat);
  const std::size_t at_4x = index_of(std::min(4 * db_sat, engine_counts.back()));
  shape.expect(hydra_tput[at_4x] > 1.5 * hydra_tput[at_db_sat],
               "HydraDB still scales at 4x the DB's saturation point (paper: 4x engines)");
  shape.expect(hydra_tput.back() > hydra_tput[hydra_tput.size() - 2] * 0.98,
               "HydraDB has not collapsed at the largest engine count");
  shape.expect(hydra_sat >= db_sat, "HydraDB saturates no earlier than the DB");
  shape.expect(hydra_tput.back() > 8.0 * db_tput.back(),
               "peak throughput about an order of magnitude higher (paper: up to 10x)");
  shape.expect(db_tput.back() < db_tput[static_cast<std::size_t>(2)] * 2.0,
               "the in-memory DB's lock path saturates with few engines");
  return shape.summarize("fig03_g2");
}
