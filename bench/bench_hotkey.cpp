// Hot-key replication plane (DESIGN.md §12): promotion-on vs promotion-off
// at identical seeds, over the two skewed request distributions (zipfian-0.99
// and hotspot). Promotion must cut the p99 GET latency AND flatten the
// per-server-node load imbalance (max/mean NIC tx ops), because reads of the
// hottest keys spread across the followers hosting promoted copies.
// Writes BENCH_hotkey.json (hydradb-obs-v1).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace hydra;

constexpr std::uint64_t kRecords = 8'000;
constexpr std::uint64_t kOperations = 40'000;
constexpr std::uint64_t kSeed = 12345;

struct PlanePoint {
  std::string dist;
  bool promotion = false;
  double p99_get_us = 0.0;
  double mops = 0.0;
  double load_ratio = 0.0;  ///< max/mean tx_ops across server nodes
  std::uint64_t replica_hits = 0;
  std::uint64_t promotions = 0;
  std::uint64_t invalidations = 0;
};

db::ClusterOptions plane_options(bool promotion_on) {
  db::ClusterOptions opts;
  opts.server_nodes = 3;
  opts.shards_per_node = 1;
  opts.client_nodes = 5;
  opts.clients_per_node = 10;
  opts.replicas = 2;
  opts.enable_swat = false;  // HA idle during throughput measurements
  opts.client_rdma_read = true;
  opts.shard_template.grant_remote_pointers = true;
  // Short leases force frequent renewals -- the message-path traffic that
  // carries promotion advertisements to clients holding cached pointers.
  opts.shard_template.store.min_lease = 20 * kMillisecond;
  opts.shard_template.store.max_lease = 50 * kMillisecond;
  opts.shard_template.store.arena_bytes = 32ull << 20;
  opts.shard_template.store.min_buckets = 1 << 14;
  if (promotion_on) {
    opts.shard_template.hotkey_top_k = 8;
    opts.shard_template.hotkey_tracker_capacity = 64;
    opts.shard_template.hotkey_promote_min_hits = 8;
    opts.shard_template.hotkey_scan_interval = 25 * kMicrosecond;
  }
  return opts;
}

ycsb::WorkloadSpec plane_spec(Distribution dist) {
  ycsb::WorkloadSpec spec;
  // GET-heavy: the plane targets read skew. Writes to promoted keys are
  // covered by the invalidation families in hotkey_test/chaos; mixing them
  // in here would let update-retry tails mask the read-path p99 signal.
  spec.get_fraction = 1.0;
  spec.distribution = dist;
  spec.record_count = kRecords;
  spec.operations = kOperations;
  spec.seed = kSeed;
  if (dist == Distribution::kHotspot) {
    // Concentrate 90% of requests on 16 records so the hot set is small
    // enough to promote (the YCSB default 20% hot set has no hot *keys*).
    spec.hotspot_data_fraction = 0.002;
    spec.hotspot_opn_fraction = 0.9;
  }
  return spec;
}

PlanePoint run_point(Distribution dist, bool promotion_on) {
  db::HydraCluster cluster(plane_options(promotion_on));
  ycsb::RunOptions ropts;
  ropts.warmup_ops_per_client = 200;  // fill pointer caches; let promotions land
  const auto r = ycsb::run_workload(cluster, plane_spec(dist), ropts);

  PlanePoint p;
  p.dist = to_string(dist);
  p.promotion = promotion_on;
  p.p99_get_us = static_cast<double>(r.p99_get) / 1000.0;
  p.mops = r.throughput_mops;

  // Server-side load balance: a one-sided read is served by the target
  // node's NIC send engine, so per-node tx_ops captures where reads (and
  // responses) actually burn capacity. max/mean == 1.0 is perfectly flat.
  std::uint64_t total = 0, peak = 0;
  for (const NodeId n : cluster.server_nodes()) {
    const std::uint64_t tx = cluster.fabric().node(n).nic().tx_ops;
    total += tx;
    peak = std::max(peak, tx);
  }
  const double mean =
      static_cast<double>(total) / static_cast<double>(cluster.server_nodes().size());
  p.load_ratio = mean > 0.0 ? static_cast<double>(peak) / mean : 0.0;

  for (const auto* cl : cluster.clients()) p.replica_hits += cl->stats().replica_hits;
  for (ShardId s = 0; s < static_cast<ShardId>(cluster.shard_count()); ++s) {
    const auto* sh = cluster.shard(s);
    if (sh == nullptr) continue;
    p.promotions += sh->stats().hotkey_promotions;
    p.invalidations += sh->stats().hotkey_invalidations;
  }
  return p;
}

void write_json(const std::string& path, const std::vector<PlanePoint>& points) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"hotkey_plane\",\n"
               "  \"schema\": \"hydradb-obs-v1\",\n"
               "  \"workload\": \"100%%GET, %llu records, %llu ops, 50 closed-loop "
               "clients, seed %llu; identical seeds promotion-on vs promotion-off\",\n"
               "  \"load_ratio\": \"max/mean NIC tx ops across the 3 server nodes "
               "(1.0 = perfectly flat)\",\n"
               "  \"points\": [\n",
               static_cast<unsigned long long>(kRecords),
               static_cast<unsigned long long>(kOperations),
               static_cast<unsigned long long>(kSeed));
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PlanePoint& p = points[i];
    std::fprintf(f,
                 "    {\"dist\": \"%s\", \"promotion\": %s, \"p99_get_us\": %.2f, "
                 "\"mops\": %.3f, \"load_ratio\": %.3f, \"replica_hits\": %llu, "
                 "\"promotions\": %llu, \"invalidations\": %llu}%s\n",
                 p.dist.c_str(), p.promotion ? "true" : "false", p.p99_get_us, p.mops,
                 p.load_ratio, static_cast<unsigned long long>(p.replica_hits),
                 static_cast<unsigned long long>(p.promotions),
                 static_cast<unsigned long long>(p.invalidations),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_hotkey.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  std::vector<PlanePoint> points;
  std::printf("%-9s %-10s | %10s %8s %11s %13s %11s %14s\n", "dist", "promotion",
              "p99_us", "mops", "load_ratio", "replica_hits", "promotions",
              "invalidations");
  for (const Distribution dist : {Distribution::kZipfian, Distribution::kHotspot}) {
    for (const bool on : {false, true}) {
      const PlanePoint p = run_point(dist, on);
      std::printf("%-9s %-10s | %10.2f %8.3f %11.3f %13llu %11llu %14llu\n",
                  p.dist.c_str(), on ? "on" : "off", p.p99_get_us, p.mops, p.load_ratio,
                  static_cast<unsigned long long>(p.replica_hits),
                  static_cast<unsigned long long>(p.promotions),
                  static_cast<unsigned long long>(p.invalidations));
      points.push_back(p);
    }
  }

  write_json(json_path, points);

  bench::ShapeChecker shape;
  const PlanePoint& z_off = points[0];
  const PlanePoint& z_on = points[1];
  const PlanePoint& h_off = points[2];
  const PlanePoint& h_on = points[3];
  shape.expect(z_off.replica_hits == 0 && z_off.promotions == 0 &&
                   h_off.replica_hits == 0 && h_off.promotions == 0,
               "promotion-off runs never touch the plane (top_k=0 disables it)");
  shape.expect(z_on.promotions > 0 && z_on.replica_hits > 0,
               "zipfian-0.99 promotes hot keys and serves replica reads");
  shape.expect(h_on.promotions > 0 && h_on.replica_hits > 0,
               "hotspot promotes hot keys and serves replica reads");
  shape.expect(z_on.p99_get_us < z_off.p99_get_us,
               "promotion cuts zipfian p99 GET latency");
  shape.expect(h_on.p99_get_us < h_off.p99_get_us,
               "promotion cuts hotspot p99 GET latency");
  shape.expect(z_on.load_ratio < z_off.load_ratio,
               "promotion flattens zipfian per-node load imbalance (max/mean)");
  shape.expect(h_on.load_ratio < h_off.load_ratio,
               "promotion flattens hotspot per-node load imbalance (max/mean)");
  return shape.summarize("hotkey_plane");
}
