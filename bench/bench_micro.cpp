// Microbenchmarks (google-benchmark) for the hot-path primitives: hashing,
// key generation, framing, the compact hash table, the arena and the
// lock-free pointer cache. These are real-time measurements of the actual
// data structures, not simulator results.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/hash.hpp"
#include "common/keygen.hpp"
#include "core/arena.hpp"
#include "core/hash_table.hpp"
#include "core/lockfree_cache.hpp"
#include "core/store.hpp"
#include "proto/frame.hpp"
#include "proto/messages.hpp"

namespace {

using namespace hydra;

void BM_HashKey(benchmark::State& state) {
  const std::string key = format_key(123456);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash_key(key));
  }
}
BENCHMARK(BM_HashKey);

void BM_ZipfianNext(benchmark::State& state) {
  ScrambledZipfianChooser chooser(static_cast<std::uint64_t>(state.range(0)));
  Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chooser.next(rng));
  }
}
BENCHMARK(BM_ZipfianNext)->Arg(1000)->Arg(1000000);

void BM_FrameEncodePoll(benchmark::State& state) {
  std::vector<std::byte> buf(4096);
  std::vector<std::byte> payload(static_cast<std::size_t>(state.range(0)), std::byte{7});
  for (auto _ : state) {
    proto::encode_frame(buf, payload);
    benchmark::DoNotOptimize(proto::poll_frame(buf));
    proto::clear_frame(buf);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FrameEncodePoll)->Arg(64)->Arg(1024);

void BM_RequestCodec(benchmark::State& state) {
  proto::Request req;
  req.type = proto::MsgType::kPut;
  req.key = format_key(42);
  req.value = synth_value(42, 32);
  for (auto _ : state) {
    auto bytes = proto::encode_request(req);
    benchmark::DoNotOptimize(proto::decode_request(bytes));
  }
}
BENCHMARK(BM_RequestCodec);

void BM_CompactTableFind(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  core::Arena arena(256 << 20);
  core::CompactHashTable table(arena, n / 4);  // force some overflow chains
  std::vector<std::string> keys;
  for (std::uint64_t i = 0; i < n; ++i) {
    keys.push_back(format_key(i));
    const std::size_t size = core::item_size(16, 32);
    const std::uint64_t off = arena.allocate(size);
    core::ItemView(arena.at(off)).initialize(keys.back(), synth_value(i), 1, 0);
    table.insert(hash_key(keys.back()), keys.back(), off);
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::string& key = keys[i++ % n];
    benchmark::DoNotOptimize(table.find(hash_key(key), key));
  }
}
BENCHMARK(BM_CompactTableFind)->Arg(1000)->Arg(100000);

void BM_ArenaAllocFree(benchmark::State& state) {
  core::Arena arena(64 << 20);
  for (auto _ : state) {
    const std::uint64_t off = arena.allocate(88);
    benchmark::DoNotOptimize(off);
    arena.deallocate(off, 88);
  }
}
BENCHMARK(BM_ArenaAllocFree);

void BM_StorePutGet(benchmark::State& state) {
  core::KVStore store;
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::string key = format_key(i % 10000);
    store.put(key, synth_value(i, 32), i * 100);
    benchmark::DoNotOptimize(store.get(key, i * 100));
    ++i;
    if (i % 4096 == 0) store.collect_garbage(i * 100 + 100 * kSecond);
  }
}
BENCHMARK(BM_StorePutGet);

void BM_LockFreeCacheGet(benchmark::State& state) {
  core::LockFreeCache<proto::RemotePtr> cache(64 * 1024);
  for (std::uint64_t k = 1; k <= 10000; ++k) {
    proto::RemotePtr ptr;
    ptr.offset = k;
    ptr.total_len = 88;
    cache.put(k, ptr);
  }
  std::uint64_t k = 1;
  proto::RemotePtr out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.get(1 + (k++ % 10000), &out));
  }
}
BENCHMARK(BM_LockFreeCacheGet);

void BM_GuardianValidate(benchmark::State& state) {
  std::vector<std::byte> buf(core::item_size(16, 32));
  const std::string key = format_key(7);
  core::ItemView(buf.data()).initialize(key, synth_value(7, 32), 1, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::validate_item(buf.data(), buf.size(), key));
  }
}
BENCHMARK(BM_GuardianValidate);

}  // namespace

BENCHMARK_MAIN();
