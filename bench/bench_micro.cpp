// Microbenchmarks in two parts:
//
//  1. google-benchmark real-time measurements of the hot-path primitives:
//     hashing, key generation, framing, the compact hash table, the arena
//     and the lock-free pointer cache.
//  2. A simulated closed-loop message-path GET run per request-ring window
//     (`--window 1,2,4,8`), demonstrating the pipelining win of multi-slot
//     request rings. Results (ops/s, p50/p99 GET latency per config) land in
//     BENCH_micro.json (override with `--json PATH`).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/hash.hpp"
#include "common/keygen.hpp"
#include "core/arena.hpp"
#include "core/hash_table.hpp"
#include "core/lockfree_cache.hpp"
#include "core/store.hpp"
#include "hydradb/hydra_cluster.hpp"
#include "obs/metrics.hpp"
#include "proto/frame.hpp"
#include "proto/messages.hpp"
#include "ycsb/runner.hpp"

namespace {

using namespace hydra;

void BM_HashKey(benchmark::State& state) {
  const std::string key = format_key(123456);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash_key(key));
  }
}
BENCHMARK(BM_HashKey);

void BM_ZipfianNext(benchmark::State& state) {
  ScrambledZipfianChooser chooser(static_cast<std::uint64_t>(state.range(0)));
  Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chooser.next(rng));
  }
}
BENCHMARK(BM_ZipfianNext)->Arg(1000)->Arg(1000000);

void BM_FrameEncodePoll(benchmark::State& state) {
  std::vector<std::byte> buf(4096);
  std::vector<std::byte> payload(static_cast<std::size_t>(state.range(0)), std::byte{7});
  for (auto _ : state) {
    proto::encode_frame(buf, payload);
    benchmark::DoNotOptimize(proto::poll_frame(buf));
    proto::clear_frame(buf);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FrameEncodePoll)->Arg(64)->Arg(1024);

void BM_RequestCodec(benchmark::State& state) {
  proto::Request req;
  req.type = proto::MsgType::kPut;
  req.key = format_key(42);
  req.value = synth_value(42, 32);
  for (auto _ : state) {
    auto bytes = proto::encode_request(req);
    benchmark::DoNotOptimize(proto::decode_request(bytes));
  }
}
BENCHMARK(BM_RequestCodec);

void BM_CompactTableFind(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  core::Arena arena(256 << 20);
  core::CompactHashTable table(arena, n / 4);  // force some overflow chains
  std::vector<std::string> keys;
  for (std::uint64_t i = 0; i < n; ++i) {
    keys.push_back(format_key(i));
    const std::size_t size = core::item_size(16, 32);
    const std::uint64_t off = arena.allocate(size);
    core::ItemView(arena.at(off)).initialize(keys.back(), synth_value(i), 1, 0);
    table.insert(hash_key(keys.back()), keys.back(), off);
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::string& key = keys[i++ % n];
    benchmark::DoNotOptimize(table.find(hash_key(key), key));
  }
}
BENCHMARK(BM_CompactTableFind)->Arg(1000)->Arg(100000);

void BM_ArenaAllocFree(benchmark::State& state) {
  core::Arena arena(64 << 20);
  for (auto _ : state) {
    const std::uint64_t off = arena.allocate(88);
    benchmark::DoNotOptimize(off);
    arena.deallocate(off, 88);
  }
}
BENCHMARK(BM_ArenaAllocFree);

void BM_StorePutGet(benchmark::State& state) {
  core::KVStore store;
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::string key = format_key(i % 10000);
    store.put(key, synth_value(i, 32), i * 100);
    benchmark::DoNotOptimize(store.get(key, i * 100));
    ++i;
    if (i % 4096 == 0) store.collect_garbage(i * 100 + 100 * kSecond);
  }
}
BENCHMARK(BM_StorePutGet);

void BM_LockFreeCacheGet(benchmark::State& state) {
  core::LockFreeCache<proto::RemotePtr> cache(64 * 1024);
  for (std::uint64_t k = 1; k <= 10000; ++k) {
    proto::RemotePtr ptr;
    ptr.offset = k;
    ptr.total_len = 88;
    cache.put(k, ptr);
  }
  std::uint64_t k = 1;
  proto::RemotePtr out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.get(1 + (k++ % 10000), &out));
  }
}
BENCHMARK(BM_LockFreeCacheGet);

void BM_GuardianValidate(benchmark::State& state) {
  std::vector<std::byte> buf(core::item_size(16, 32));
  const std::string key = format_key(7);
  core::ItemView(buf.data()).initialize(key, synth_value(7, 32), 1, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::validate_item(buf.data(), buf.size(), key));
  }
}
BENCHMARK(BM_GuardianValidate);

// ------------------------------------------------------------------ windows

struct WindowResult {
  std::uint32_t window = 0;
  std::uint64_t operations = 0;
  double ops_per_sec = 0.0;
  obs::LatencySummary get;  // shared percentile math (obs::summarize)
  std::uint32_t max_in_flight = 0;
  std::uint64_t batched_responses = 0;
};

/// Message-path GET throughput (virtual time) at one ring-window depth:
/// 1 shard, 2 clients each keeping `window` requests outstanding, remote
/// pointers off so every GET crosses the shard core.
WindowResult run_window_config(std::uint32_t window) {
  db::ClusterOptions opts;
  opts.server_nodes = 1;
  opts.shards_per_node = 1;
  opts.client_nodes = 1;
  opts.clients_per_node = 2;
  opts.enable_swat = false;
  opts.client_rdma_read = false;  // force the RDMA-Write message path
  opts.client_template.window = window;
  opts.shard_template.store.arena_bytes = 32ull << 20;
  db::HydraCluster cluster(opts);

  ycsb::WorkloadSpec spec;
  spec.get_fraction = 1.0;
  spec.distribution = Distribution::kUniform;
  spec.record_count = 16'000;
  spec.operations = 40'000;

  ycsb::RunOptions ropts;
  ropts.outstanding = window;
  const auto r = ycsb::run_workload(cluster, spec, ropts);

  LatencyHistogram gets;
  WindowResult w;
  w.window = window;
  for (const auto* c : cluster.clients()) {
    gets.merge(c->stats().get_latency);
    w.max_in_flight = std::max(w.max_in_flight, c->stats().max_in_flight);
  }
  w.operations = r.operations;
  w.ops_per_sec = r.throughput_mops * 1e6;
  w.get = obs::summarize(gets);
  w.batched_responses = cluster.shard(0)->stats().batched_responses;
  return w;
}

void write_json(const std::string& path, const std::vector<WindowResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_micro: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"micro\",\n  \"message_path_get\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& w = results[i];
    std::fprintf(f,
                 "    {\"window\": %u, \"operations\": %llu, \"ops_per_sec\": %.1f, "
                 "\"get_latency\": %s, "
                 "\"max_in_flight\": %u, \"batched_responses\": %llu}%s\n",
                 w.window, static_cast<unsigned long long>(w.operations), w.ops_per_sec,
                 hydra::bench::latency_json(w.get).c_str(), w.max_in_flight,
                 static_cast<unsigned long long>(w.batched_responses),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

std::vector<std::uint32_t> parse_windows(const std::string& arg) {
  std::vector<std::uint32_t> windows;
  std::size_t pos = 0;
  while (pos < arg.size()) {
    const std::size_t comma = arg.find(',', pos);
    const std::string tok = arg.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const long v = std::strtol(tok.c_str(), nullptr, 10);
    if (v > 0) windows.push_back(static_cast<std::uint32_t>(v));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return windows;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::uint32_t> windows = {1, 2, 4, 8};
  std::string json_path = "BENCH_micro.json";
  bool primitives = true;

  // Strip our flags; everything else goes to google-benchmark.
  std::vector<char*> bench_args = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&](const char* name) -> std::string {
      const std::string prefix = std::string(name) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      if (arg == name && i + 1 < argc) return argv[++i];
      return {};
    };
    if (arg.rfind("--window", 0) == 0) {
      windows = parse_windows(value_of("--window"));
    } else if (arg.rfind("--json", 0) == 0) {
      json_path = value_of("--json");
    } else if (arg == "--no-primitives") {
      primitives = false;
    } else {
      bench_args.push_back(argv[i]);
    }
  }
  if (windows.empty()) windows = {1, 8};

  if (primitives) {
    int bench_argc = static_cast<int>(bench_args.size());
    benchmark::Initialize(&bench_argc, bench_args.data());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }

  std::printf("\nmessage-path GET throughput vs request-ring window "
              "(1 shard, 2 clients, virtual time)\n");
  std::printf("%-8s %12s %12s %10s %10s %8s %10s\n", "window", "ops/s", "mean ns",
              "p50 ns", "p99 ns", "inflight", "batched");
  std::vector<WindowResult> results;
  for (const std::uint32_t w : windows) {
    results.push_back(run_window_config(w));
    const auto& r = results.back();
    std::printf("%-8u %12.0f %12.1f %10llu %10llu %8u %10llu\n", r.window, r.ops_per_sec,
                r.get.mean_ns, static_cast<unsigned long long>(r.get.p50_ns),
                static_cast<unsigned long long>(r.get.p99_ns), r.max_in_flight,
                static_cast<unsigned long long>(r.batched_responses));
  }
  if (results.size() > 1) {
    std::printf("speedup window=%u vs window=%u: %.2fx\n", results.back().window,
                results.front().window,
                results.back().ops_per_sec / results.front().ops_per_sec);
  }
  write_json(json_path, results);
  return 0;
}
