// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "hydradb/hydra_cluster.hpp"
#include "obs/metrics.hpp"
#include "ycsb/runner.hpp"

namespace hydra::bench {

/// Collects qualitative assertions ("who wins, by roughly what factor") and
/// prints a PAPER-SHAPE summary the harness scripts can grep.
class ShapeChecker {
 public:
  void expect(bool condition, const std::string& claim) {
    checks_.emplace_back(condition, claim);
    if (!condition) ok_ = false;
  }

  int summarize(const char* bench_name) const {
    std::printf("\n");
    for (const auto& [cond, claim] : checks_) {
      std::printf("  [%s] %s\n", cond ? "ok" : "MISMATCH", claim.c_str());
    }
    std::printf("PAPER-SHAPE %s: %s (%zu/%zu checks)\n", bench_name,
                ok_ ? "REPRODUCED" : "DIVERGED", passed(), checks_.size());
    return ok_ ? 0 : 1;
  }

 private:
  [[nodiscard]] std::size_t passed() const {
    std::size_t n = 0;
    for (const auto& [cond, _] : checks_) n += cond;
    return n;
  }
  std::vector<std::pair<bool, std::string>> checks_;
  bool ok_ = true;
};

/// The paper's default testbed: one server machine with `shards` shard
/// instances, 50 clients on 5 machines.
inline db::ClusterOptions paper_cluster_options(int shards = 4) {
  db::ClusterOptions opts;
  opts.server_nodes = 1;
  opts.shards_per_node = shards;
  opts.client_nodes = 5;
  opts.clients_per_node = 10;
  opts.enable_swat = false;  // HA idle during throughput measurements
  opts.shard_template.store.arena_bytes = 128ull << 20;
  opts.shard_template.store.min_buckets = 1 << 15;
  return opts;
}

/// Scaled-down trace sizes (documented in EXPERIMENTS.md): the paper uses
/// 60M records / 60M requests; shapes are stable from ~10^4 per point.
inline ycsb::WorkloadSpec scaled_spec(double get_fraction, Distribution dist,
                                      std::uint64_t records = 20'000,
                                      std::uint64_t operations = 40'000) {
  ycsb::WorkloadSpec spec;
  spec.get_fraction = get_fraction;
  spec.distribution = dist;
  spec.record_count = records;
  spec.operations = operations;
  return spec;
}

inline const char* fmt_mops(double mops) {
  static thread_local char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", mops);
  return buf;
}

/// The one latency-summary JSON object every bench emits. Percentiles come
/// from obs::summarize, so benches share the registry's percentile math
/// instead of each re-deriving it from raw histograms.
inline std::string latency_json(const obs::LatencySummary& s) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "{\"count\": %llu, \"mean_ns\": %.1f, \"min_ns\": %llu, "
                "\"max_ns\": %llu, \"p50_ns\": %llu, \"p90_ns\": %llu, "
                "\"p99_ns\": %llu, \"p999_ns\": %llu}",
                static_cast<unsigned long long>(s.count), s.mean_ns,
                static_cast<unsigned long long>(s.min_ns),
                static_cast<unsigned long long>(s.max_ns),
                static_cast<unsigned long long>(s.p50_ns),
                static_cast<unsigned long long>(s.p90_ns),
                static_cast<unsigned long long>(s.p99_ns),
                static_cast<unsigned long long>(s.p999_ns));
  return buf;
}

}  // namespace hydra::bench
