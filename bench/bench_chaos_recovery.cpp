// Recovery latency of the failover plane: primary loss -> promotion ->
// first successful client write, measured on the virtual clock.
//
// Paper shape (legacy rows): detection is dominated by the coordinator
// session timeout (2s here); promotion plus client re-routing add only a
// small fraction on top, and neither the replica count nor the failure
// flavour (hard crash versus a fenced partition) changes the picture
// materially.
//
// --fast-failover adds rows with the RDMA permission-revocation agreement
// plane enabled (DESIGN.md 14): replicas detect the silent primary by
// missed pulses, fence it by revoking its ring rkeys, and agree on a
// successor with a one-sided CAS ballot -- promotion lands in microseconds
// instead of seconds, and the before/after comparison is written to
// BENCH_failover.json (hydradb-obs-v1).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "obs/plane.hpp"

namespace {

struct Row {
  std::string label;
  bool fast = false;           // fast-failover agreement plane enabled
  double promote_s = 0;        // crash -> failovers() observed
  double first_write_s = 0;    // crash -> first acked post-failover PUT
  double trace_promote_s = -1; // fault -> kPromotionDone, from trace alone
  double gap_hist_us = -1;     // cluster.failover_gap_us histogram max
  std::string obs_json;        // full hydradb-obs-v1 snapshot (--metrics-out)
};

}  // namespace

int main(int argc, char** argv) {
  using namespace hydra;
  std::string metrics_out;
  std::string json_path = "BENCH_failover.json";
  bool fast_rows = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(std::string("--metrics-out=").size());
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (arg == "--fast-failover") {
      fast_rows = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(std::string("--json=").size());
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  bench::ShapeChecker shape;
  std::vector<Row> rows;

  struct Config {
    const char* label;
    int replicas;
    replication::ReplicationMode mode;
    bool partition;  // fence via suppressed heartbeats instead of a crash
    bool fast;       // enable the revocation/ballot agreement plane
  };
  std::vector<Config> configs = {
      {"crash-relaxed-1r", 1, replication::ReplicationMode::kLogRelaxed, false, false},
      {"crash-relaxed-2r", 2, replication::ReplicationMode::kLogRelaxed, false, false},
      {"crash-strict-1r", 1, replication::ReplicationMode::kStrictAck, false, false},
      {"partition-relaxed-1r", 1, replication::ReplicationMode::kLogRelaxed, true, false},
  };
  if (fast_rows) {
    configs.push_back(
        {"fast-relaxed-2r", 2, replication::ReplicationMode::kLogRelaxed, false, true});
    configs.push_back(
        {"fast-strict-2r", 2, replication::ReplicationMode::kStrictAck, false, true});
  }

  for (const auto& cfg : configs) {
    db::ClusterOptions opts;
    opts.server_nodes = 1 + std::max(cfg.replicas, 1);
    opts.shards_per_node = 1;
    opts.total_shards = 1;
    opts.client_nodes = 1;
    opts.clients_per_node = 1;
    opts.replicas = cfg.replicas;
    opts.replication.mode = cfg.mode;
    opts.enable_swat = true;
    opts.fast_failover = cfg.fast;
    opts.client_template.request_timeout = 100 * kMillisecond;
    opts.client_template.max_retries = 100;
    // The obs plane is always attached: by the determinism contract
    // (DESIGN.md §8, obs_test) it cannot perturb the measured history.
    obs::Plane plane;
    opts.obs = &plane;
    db::HydraCluster cluster(opts);

    for (std::uint64_t i = 0; i < 200; ++i) {
      if (cluster.put(format_key(i), synth_value(i)) != Status::kOk) return 1;
    }
    cluster.run_for(50 * kMillisecond);  // drain replication

    const Time crash_at = cluster.scheduler().now();
    if (cfg.partition) {
      cluster.suppress_heartbeats(0, 10 * kSecond);
    } else {
      cluster.crash_primary(0);
    }

    const Time deadline = crash_at + 20 * kSecond;
    while (cluster.failovers() == 0 && cluster.scheduler().now() < deadline &&
           cluster.scheduler().step()) {
    }
    const Time promoted_at = cluster.scheduler().now();

    const Status st = cluster.put("post-failover", "v");
    const Time first_write_at = cluster.scheduler().now();

    Row row;
    row.label = cfg.label;
    row.fast = cfg.fast;
    row.promote_s = static_cast<double>(promoted_at - crash_at) / kSecond;
    row.first_write_s = static_cast<double>(first_write_at - crash_at) / kSecond;

    // Re-derive the promotion latency from trace events alone: the fault
    // marker (crash or heartbeat suppression) to kPromotionDone, with no
    // reference to the measurement variables above.
    const obs::TraceQuery q = plane.query();
    const auto fault = cfg.partition ? q.first(obs::TraceKind::kHeartbeatSuppressed)
                                     : q.first(obs::TraceKind::kCrashInjected);
    const auto done = q.first(obs::TraceKind::kPromotionDone);
    if (fault && done) {
      row.trace_promote_s = static_cast<double>(done->at - fault->at) / kSecond;
    }
    // Promotion also stamps the crash-to-promotion gap into the obs
    // histogram (partition rows never stamp crashed_at, so theirs is empty).
    const auto& gap_hist = plane.metrics().histogram("cluster.failover_gap_us");
    if (gap_hist.count() > 0) {
      row.gap_hist_us = static_cast<double>(gap_hist.max());
    }
    if (!metrics_out.empty()) {
      row.obs_json = plane.json(cluster.scheduler().now());
    }
    rows.push_back(row);

    shape.expect(cluster.failovers() == 1,
                 row.label + ": exactly one promotion happened");
    shape.expect(st == Status::kOk, row.label + ": writes resume after failover");
    shape.expect(row.trace_promote_s >= 0,
                 row.label + ": promotion latency derivable from trace alone");
    shape.expect(std::fabs(row.trace_promote_s - row.promote_s) < 0.05,
                 row.label + ": trace-derived latency matches the measured one");
  }

  const double session_s =
      static_cast<double>(db::ClusterOptions{}.coordinator.session_timeout) / kSecond;
  std::printf("Failover recovery latency (virtual seconds; session timeout %.1fs)\n",
              session_s);
  std::printf("%-24s %12s %14s %12s\n", "scenario", "promotion", "first write",
              "from-trace");
  for (const Row& r : rows) {
    std::printf("%-24s %11.6fs %13.6fs %11.6fs\n", r.label.c_str(), r.promote_s,
                r.first_write_s, r.trace_promote_s);
  }

  if (!metrics_out.empty()) {
    std::FILE* f = std::fopen(metrics_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_chaos_recovery: cannot write %s\n",
                   metrics_out.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"chaos_recovery\",\n  \"scenarios\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"label\": \"%s\", \"promotion_s\": %.6f, "
                   "\"first_write_s\": %.6f, \"trace_promotion_s\": %.6f,\n"
                   "     \"obs\": %s}%s\n",
                   r.label.c_str(), r.promote_s, r.first_write_s, r.trace_promote_s,
                   r.obs_json.c_str(), i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", metrics_out.c_str());
  }

  if (fast_rows) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_chaos_recovery: cannot write %s\n",
                   json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"failover_gap\",\n");
    std::fprintf(f, "  \"schema\": \"hydradb-obs-v1\",\n");
    std::fprintf(f,
                 "  \"workload\": \"200 preload PUTs, 1 shard; kill (or fence) the "
                 "primary, measure crash->promotion->first acked write on the "
                 "virtual clock; legacy rows promote via the 2s coordinator "
                 "session timeout, fast rows via pulse-miss suspicion + rkey "
                 "revocation + CAS ballot\",\n");
    std::fprintf(f,
                 "  \"gap_hist_us\": \"max of the cluster.failover_gap_us obs "
                 "histogram (-1 when the fault never stamped a crash)\",\n");
    std::fprintf(f, "  \"points\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"label\": \"%s\", \"fast_failover\": %s, "
                   "\"promotion_s\": %.6f, \"first_write_s\": %.6f, "
                   "\"trace_promotion_s\": %.6f, \"gap_hist_us\": %.1f}%s\n",
                   r.label.c_str(), r.fast ? "true" : "false", r.promote_s,
                   r.first_write_s, r.trace_promote_s, r.gap_hist_us,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  for (const Row& r : rows) {
    if (r.fast) {
      // The whole point of the agreement plane: promotion no longer waits
      // for the session timeout -- the gap collapses to microseconds.
      shape.expect(r.promote_s < 0.001,
                   r.label + ": fast failover promotes within 1ms virtual");
      shape.expect(r.gap_hist_us >= 0 && r.gap_hist_us < 1000.0,
                   r.label + ": failover_gap_us histogram stays under 1ms");
    } else {
      shape.expect(r.promote_s > session_s,
                   r.label + ": detection cannot beat the session timeout");
      shape.expect(r.promote_s < session_s + 2.0,
                   r.label + ": promotion lands within ~2s of the timeout");
    }
    shape.expect(r.first_write_s - r.promote_s < 1.0,
                 r.label + ": client re-routes within 1s of promotion");
  }
  // Replica count and failure flavour shouldn't move recovery materially.
  shape.expect(rows[1].promote_s < rows[0].promote_s * 1.5,
               "two replicas do not slow down promotion");
  shape.expect(rows[3].promote_s < rows[0].promote_s + 2.0,
               "a fenced partition recovers like a crash (+heartbeat slack)");
  if (fast_rows) {
    // Before/after: the revocation plane beats heartbeat promotion by >1000x.
    shape.expect(rows[4].promote_s * 1000.0 < rows[1].promote_s,
                 "fast failover is at least 1000x faster than session timeout");
  }
  return shape.summarize("chaos_recovery");
}
