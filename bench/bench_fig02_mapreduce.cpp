// Figure 2: MapReduce/Spark acceleration from the HydraDB cache layer.
//
// Each job runs three ways: on in-memory HDFS over kernel TCP (the
// baseline), on HydraDB configured with TCP-like interconnect parameters,
// and on HydraDB over the RDMA fabric. Paper shape: biggest speedups for
// I/O-intensive Hadoop jobs (up to ~18x), modest gains for compute-heavy
// Spark jobs (4-41%), and RDMA above TCP in every single case.
#include <cstdio>
#include <vector>

#include "apps/hdfs_lite.hpp"
#include "apps/mapreduce.hpp"
#include "bench_util.hpp"

namespace {

hydra::db::ClusterOptions cache_options(bool tcp_like) {
  using namespace hydra;
  db::ClusterOptions opts;
  opts.server_nodes = 1;
  opts.shards_per_node = 4;
  opts.client_nodes = 4;
  opts.clients_per_node = 2;
  opts.enable_swat = false;
  opts.shard_template.store.arena_bytes = 768ull << 20;
  opts.shard_template.msg_slot_bytes = 5 << 20;
  opts.shard_template.max_connections = 16;
  opts.client_template.resp_slot_bytes = 5 << 20;
  opts.client_template.max_shard_connections = 8;
  if (tcp_like) {
    // "HydraDB (TCP)": same middleware, interconnect degraded to the
    // kernel stack's latency and effective bandwidth.
    opts.cost.rdma_bytes_per_ns = opts.cost.tcp_bytes_per_ns;
    opts.cost.rdma_propagation = opts.cost.tcp_latency;
    opts.cost.nic_tx_overhead = opts.cost.tcp_kernel_cost;
    opts.cost.nic_rx_overhead = opts.cost.tcp_kernel_cost;
  }
  return opts;
}

}  // namespace

int main() {
  using namespace hydra;
  bench::ShapeChecker shape;

  std::printf("Figure 2: job speedup over in-memory HDFS\n");
  std::printf("%-18s %12s %12s %12s %10s %10s\n", "job", "hdfs_ms", "hydraTCP_ms",
              "hydraRDMA_ms", "spdup_tcp", "spdup_rdma");

  std::vector<double> rdma_speedups, tcp_speedups;
  std::vector<double> io_speedups, spark_speedups;

  for (const auto& job : apps::paper_job_mix()) {
    // Baseline: in-memory HDFS.
    sim::Scheduler sched;
    fabric::Fabric fabric{sched};
    const NodeId dn = fabric.add_node("datanode").id();
    std::vector<NodeId> workers;
    for (int i = 0; i < 4; ++i) workers.push_back(fabric.add_node("worker").id());
    apps::HdfsLite hdfs(sched, fabric, apps::HdfsConfig{dn});
    apps::load_blocks_into_hdfs(hdfs, job);
    const Duration hdfs_ms = apps::run_job_on_hdfs(sched, hdfs, workers, job);

    Duration times[2];  // [0]=tcp-like, [1]=rdma
    for (int variant = 0; variant < 2; ++variant) {
      db::HydraCluster cluster(cache_options(/*tcp_like=*/variant == 0));
      apps::load_blocks_into_hydradb(cluster, job);
      times[variant] = apps::run_job_on_hydradb(cluster, job);
    }

    const double spd_tcp = static_cast<double>(hdfs_ms) / static_cast<double>(times[0]);
    const double spd_rdma = static_cast<double>(hdfs_ms) / static_cast<double>(times[1]);
    std::printf("%-18s %12.2f %12.2f %12.2f %9.2fx %9.2fx\n", job.name.c_str(),
                static_cast<double>(hdfs_ms) / 1e6, static_cast<double>(times[0]) / 1e6,
                static_cast<double>(times[1]) / 1e6, spd_tcp, spd_rdma);

    tcp_speedups.push_back(spd_tcp);
    rdma_speedups.push_back(spd_rdma);
    if (job.compute_per_byte < 0.01) {
      io_speedups.push_back(spd_rdma);
    } else if (job.name.rfind("Spark", 0) == 0) {
      spark_speedups.push_back(spd_rdma);
    }
  }

  for (std::size_t i = 0; i < rdma_speedups.size(); ++i) {
    shape.expect(rdma_speedups[i] > tcp_speedups[i],
                 "RDMA outperforms TCP for every job (paper: all cases)");
  }
  for (const double s : io_speedups) {
    shape.expect(s > 2.0, "I/O-intensive jobs gain severalfold (paper: up to 17.9x)");
  }
  for (const double s : spark_speedups) {
    shape.expect(s > 1.0 && s < 2.5,
                 "compute-heavy Spark jobs gain modestly (paper: 4-41%)");
  }
  double max_io = 0, max_spark = 0;
  for (const double s : io_speedups) max_io = std::max(max_io, s);
  for (const double s : spark_speedups) max_spark = std::max(max_spark, s);
  shape.expect(max_io > max_spark, "I/O-bound jobs benefit most (Amdahl)");
  return shape.summarize("fig02_mapreduce");
}
