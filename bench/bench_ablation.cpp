// Ablations on the design knobs DESIGN.md calls out:
//   1. replication ack interval (the "relaxed" in relaxed request/ack);
//   2. shard poll idle backoff (latency vs wasted polling);
//   3. guardian-word validation vs checksum-per-read consistency (Pilaf);
//   4. lease length bounds (message-path fallbacks vs reclamation lag).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace hydra;

namespace {

double insert_latency_us(replication::ReplicationMode mode, std::uint32_t ack_interval,
                         std::uint64_t* acks_out = nullptr) {
  db::ClusterOptions opts;
  opts.server_nodes = 2;
  opts.shards_per_node = 1;
  opts.total_shards = 1;
  opts.client_nodes = 2;
  opts.clients_per_node = 4;
  opts.enable_swat = false;
  opts.replicas = 1;
  opts.replication.mode = mode;
  opts.replication.ack_interval = ack_interval;
  db::HydraCluster cluster(opts);
  for (int i = 0; i < 2000; ++i) {
    cluster.put(format_key(static_cast<std::uint64_t>(i)), synth_value(static_cast<std::uint64_t>(i)));
  }
  LatencyHistogram hist;
  for (auto* c : cluster.clients()) hist.merge(c->stats().put_latency);
  if (acks_out != nullptr) {
    *acks_out = cluster.shard(0)->replicator()->acks_received();
  }
  return hist.mean() / 1000.0;
}

}  // namespace

int main() {
  bench::ShapeChecker shape;

  // ---------------- 1: ack interval -----------------------------------------
  std::printf("Ablation 1: replication ack interval (relaxed mode)\n");
  std::printf("%-14s %14s %14s\n", "ack_interval", "insert_us", "acks");
  std::vector<double> ack_lat;
  for (const std::uint32_t interval : {1u, 4u, 16u, 64u}) {
    std::uint64_t acks = 0;
    const double us = insert_latency_us(replication::ReplicationMode::kLogRelaxed,
                                        interval, &acks);
    std::printf("%-14u %14.2f %14llu\n", interval, us,
                static_cast<unsigned long long>(acks));
    ack_lat.push_back(us);
  }
  const double strict_us = insert_latency_us(replication::ReplicationMode::kStrictAck, 1);
  std::printf("%-14s %14.2f\n", "strict(ack=1)", strict_us);
  shape.expect(ack_lat.back() <= ack_lat.front() * 1.15,
               "relaxed latency is insensitive to ack interval (acks off critical path)");
  shape.expect(strict_us > ack_lat.back() * 1.4,
               "strict per-record acks stay much slower than any relaxed setting");

  // ---------------- 2: poll idle backoff --------------------------------------
  std::printf("\nAblation 2: shard poll idle backoff\n");
  std::printf("%-14s %14s\n", "backoff_ns", "avg_get_us");
  std::vector<double> backoff_lat;
  for (const Duration backoff : {50u, 100u, 1000u, 5000u}) {
    auto opts = bench::paper_cluster_options();
    opts.shard_template.cpu.idle_backoff = backoff;
    db::HydraCluster cluster(opts);
    auto spec = bench::scaled_spec(0.9, Distribution::kUniform, 5'000, 10'000);
    const auto r = ycsb::run_workload(cluster, spec);
    std::printf("%-14llu %14.2f\n", static_cast<unsigned long long>(backoff), r.avg_get_us);
    backoff_lat.push_back(r.avg_get_us);
  }
  shape.expect(backoff_lat.back() > backoff_lat[1],
               "coarse sleeping inflates latency; 100ns backoff keeps it negligible");

  // ---------------- 3: guardian vs checksum consistency ------------------------
  // Pilaf-style checksums charge every read (CRC over the whole item, both
  // when written and when validated); the guardian word is a single-word
  // check. Model: extra per-byte validate cost on the client.
  std::printf("\nAblation 3: consistency mechanism on the RDMA Read path\n");
  std::printf("%-14s %14s\n", "mechanism", "avg_get_us");
  double lat_guardian = 0, lat_checksum = 0;
  for (int variant = 0; variant < 2; ++variant) {
    auto opts = bench::paper_cluster_options();
    // Few clients: measure the per-read cost itself, not queueing at a
    // saturated NIC (where client-side validation hides in the wait).
    opts.clients_per_node = 2;
    if (variant == 1) {
      // CRC64 over an ~88-byte item at ~1 byte/cycle plus server-side
      // checksum maintenance on every write.
      opts.client_template.decode_cost += 200;
      opts.shard_template.cpu.per_value_byte *= 2.0;
    }
    db::HydraCluster cluster(opts);
    auto spec = bench::scaled_spec(1.0, Distribution::kZipfian, 5'000, 10'000);
    const auto r = ycsb::run_workload(cluster, spec);
    (variant == 0 ? lat_guardian : lat_checksum) = r.avg_get_us;
    std::printf("%-14s %14.2f\n", variant == 0 ? "guardian" : "checksum", r.avg_get_us);
  }
  shape.expect(lat_guardian < lat_checksum,
               "guardian word undercuts per-read checksum validation (paper 4.2.3)");

  // ---------------- 4: lease bounds ----------------------------------------------
  std::printf("\nAblation 4: lease term bounds (read-mostly zipfian churn)\n");
  std::printf("%-18s %12s %12s\n", "min..max lease", "ptr_hits", "ptr_misses");
  std::uint64_t hits_short = 0, hits_long = 0;
  for (int variant = 0; variant < 2; ++variant) {
    auto opts = bench::paper_cluster_options();
    if (variant == 0) {
      opts.shard_template.store.min_lease = kMillisecond;  // pathologically short
      opts.shard_template.store.max_lease = 4 * kMillisecond;
    }
    db::HydraCluster cluster(opts);
    auto spec = bench::scaled_spec(1.0, Distribution::kZipfian, 5'000, 10'000);
    const auto r = ycsb::run_workload(cluster, spec);
    std::printf("%-18s %12llu %12llu\n", variant == 0 ? "1ms..4ms" : "1s..64s",
                static_cast<unsigned long long>(r.ptr_hits),
                static_cast<unsigned long long>(r.ptr_misses));
    (variant == 0 ? hits_short : hits_long) = r.ptr_hits;
  }
  shape.expect(hits_long > hits_short,
               "longer leases keep remote pointers usable (popularity-scaled terms)");

  return shape.summarize("ablation");
}
