#include "cluster/migration.hpp"

namespace hydra::cluster {

MigrationPlan plan_add(const ConsistentHashRing& current, ShardId subject) {
  MigrationPlan plan;
  plan.kind = MigrationKind::kAdd;
  plan.subject = subject;
  plan.before = current;
  plan.after = current;
  plan.after.add_shard(subject);
  for (const ShardId src : current.shards()) {
    if (src == subject) continue;
    plan.flows.push_back({src, subject});
  }
  return plan;
}

MigrationPlan plan_drain(const ConsistentHashRing& current, ShardId subject) {
  MigrationPlan plan;
  plan.kind = MigrationKind::kDrain;
  plan.subject = subject;
  plan.before = current;
  plan.after = current;
  plan.after.remove_shard(subject);
  for (const ShardId dst : plan.after.shards()) {
    plan.flows.push_back({subject, dst});
  }
  return plan;
}

}  // namespace hydra::cluster
