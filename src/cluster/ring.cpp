#include "cluster/ring.hpp"

#include "common/hash.hpp"

namespace hydra::cluster {
namespace {

std::uint64_t vnode_point(ShardId shard, int replica) noexcept {
  return mix64((static_cast<std::uint64_t>(shard) << 32) ^
               static_cast<std::uint64_t>(replica) ^ 0x9E3779B97F4A7C15ULL);
}

}  // namespace

void ConsistentHashRing::add_shard(ShardId shard) {
  if (shards_.contains(shard)) return;
  shards_[shard] = vnodes_;
  for (int i = 0; i < vnodes_; ++i) points_.emplace(vnode_point(shard, i), shard);
  ++version_;
}

void ConsistentHashRing::remove_shard(ShardId shard) {
  if (shards_.erase(shard) == 0) return;
  for (int i = 0; i < vnodes_; ++i) {
    auto it = points_.find(vnode_point(shard, i));
    if (it != points_.end() && it->second == shard) points_.erase(it);
  }
  ++version_;
}

ShardId ConsistentHashRing::owner(std::uint64_t key_hash) const noexcept {
  if (points_.empty()) return kInvalidShard;
  auto it = points_.lower_bound(key_hash);
  if (it == points_.end()) it = points_.begin();  // wrap around
  return it->second;
}

bool ConsistentHashRing::contains(ShardId shard) const noexcept {
  return shards_.contains(shard);
}

std::vector<ShardId> ConsistentHashRing::shards() const {
  std::vector<ShardId> out;
  out.reserve(shards_.size());
  for (const auto& [id, _] : shards_) out.push_back(id);
  return out;
}

}  // namespace hydra::cluster
