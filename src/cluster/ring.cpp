#include "cluster/ring.hpp"

#include <algorithm>

#include "common/hash.hpp"

namespace hydra::cluster {
namespace {

std::uint64_t vnode_point(ShardId shard, int replica) noexcept {
  return mix64((static_cast<std::uint64_t>(shard) << 32) ^
               static_cast<std::uint64_t>(replica) ^ 0x9E3779B97F4A7C15ULL);
}

}  // namespace

std::uint64_t ConsistentHashRing::point(ShardId shard, int replica) const {
  return point_fn_ ? point_fn_(shard, replica) : vnode_point(shard, replica);
}

void ConsistentHashRing::add_shard(ShardId shard) {
  if (shards_.contains(shard)) return;
  shards_[shard] = vnodes_;
  for (int i = 0; i < vnodes_; ++i) {
    std::vector<ShardId>& at = points_[point(shard, i)];
    // Ascending insert keeps the tie-break (lowest ShardId wins) an
    // invariant of the structure rather than a lookup-time decision.
    at.insert(std::upper_bound(at.begin(), at.end(), shard), shard);
  }
  ++version_;
}

void ConsistentHashRing::remove_shard(ShardId shard) {
  if (shards_.erase(shard) == 0) return;
  for (int i = 0; i < vnodes_; ++i) {
    auto it = points_.find(point(shard, i));
    if (it == points_.end()) continue;
    std::vector<ShardId>& at = it->second;
    at.erase(std::remove(at.begin(), at.end(), shard), at.end());
    // A collision runner-up (next-lowest ShardId) inherits the point; the
    // point disappears only when no shard hashes there anymore.
    if (at.empty()) points_.erase(it);
  }
  ++version_;
}

ShardId ConsistentHashRing::owner(std::uint64_t key_hash) const noexcept {
  if (points_.empty()) return kInvalidShard;
  auto it = points_.lower_bound(key_hash);
  if (it == points_.end()) it = points_.begin();  // wrap around
  return it->second.front();
}

bool ConsistentHashRing::contains(ShardId shard) const noexcept {
  return shards_.contains(shard);
}

std::vector<ShardId> ConsistentHashRing::shards() const {
  std::vector<ShardId> out;
  out.reserve(shards_.size());
  for (const auto& [id, _] : shards_) out.push_back(id);
  return out;
}

}  // namespace hydra::cluster
