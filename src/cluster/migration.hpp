// Live-migration planning (DESIGN.md §9): the pure routing arithmetic of an
// elastic membership change, separated from the actors that execute it.
//
// A migration is a transition between two consistent-hash rings -- the
// current one ("before") and the one that will be committed when the data
// has moved ("after"). Every key whose owner differs between the two rings
// is *moving*; each (source, destination) pair with moving keys is a
// *flow*. The plan answers the questions the executor keeps asking --
// "is this key moving?", "which flow carries it?" -- from immutable ring
// copies, so the answers stay stable for the whole protocol even while the
// live ring is later mutated by the commit.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/ring.hpp"
#include "common/types.hpp"

namespace hydra::cluster {

enum class MigrationKind : std::uint8_t {
  kAdd,    ///< a new shard joins and takes ~1/N of every existing shard
  kDrain,  ///< a shard leaves; its ranges scatter over the survivors
};

/// One directed bulk-transfer lane. Add-migrations have one flow per
/// existing shard (all toward the subject); drains have one flow per
/// surviving shard (all out of the subject).
struct MigrationFlowSpec {
  ShardId src = kInvalidShard;
  ShardId dst = kInvalidShard;
};

struct MigrationPlan {
  MigrationKind kind = MigrationKind::kAdd;
  ShardId subject = kInvalidShard;  ///< the shard being added or drained
  ConsistentHashRing before;        ///< routing at protocol start
  ConsistentHashRing after;         ///< routing once committed
  std::vector<MigrationFlowSpec> flows;

  /// Key ownership changes between the two rings.
  [[nodiscard]] bool moving(std::uint64_t key_hash) const {
    return before.owner(key_hash) != after.owner(key_hash);
  }
  /// Key currently lives at `src` and is leaving it.
  [[nodiscard]] bool moving_from(ShardId src, std::uint64_t key_hash) const {
    return before.owner(key_hash) == src && after.owner(key_hash) != src;
  }
  [[nodiscard]] ShardId source_of(std::uint64_t key_hash) const {
    return before.owner(key_hash);
  }
  [[nodiscard]] ShardId target_of(std::uint64_t key_hash) const {
    return after.owner(key_hash);
  }
};

/// Plan adding `subject` (must not be in `current`).
[[nodiscard]] MigrationPlan plan_add(const ConsistentHashRing& current, ShardId subject);

/// Plan draining `subject` (must be in `current`, which must keep >= 1
/// other shard).
[[nodiscard]] MigrationPlan plan_drain(const ConsistentHashRing& current, ShardId subject);

}  // namespace hydra::cluster
