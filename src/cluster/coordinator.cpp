#include "cluster/coordinator.hpp"

#include <utility>

#include "common/logging.hpp"

namespace hydra::cluster {

Coordinator::Coordinator(sim::Scheduler& sched, Config cfg)
    : sim::Actor(sched, "coordinator"), cfg_(cfg) {
  schedule_after(cfg_.sweep_interval, [this] { sweep(); });
}

SessionId Coordinator::open_session(std::string owner) {
  const SessionId id = next_session_++;
  sessions_[id] = Session{std::move(owner), now(), true};
  return id;
}

void Coordinator::heartbeat(SessionId session) {
  auto it = sessions_.find(session);
  if (it != sessions_.end() && it->second.alive) it->second.last_heartbeat = now();
}

void Coordinator::close_session(SessionId session) { expire_session(session); }

bool Coordinator::session_alive(SessionId session) const {
  auto it = sessions_.find(session);
  return it != sessions_.end() && it->second.alive;
}

void Coordinator::create(const std::string& path, std::string data, SessionId session,
                         DoneFn done) {
  schedule_after(cfg_.op_latency, [this, path, data = std::move(data), session,
                                   done = std::move(done)]() mutable {
    const bool ok = !tree_.contains(path) && (session == 0 || session_alive(session));
    if (ok) {
      tree_[path] = Znode{std::move(data), session};
      fire_watches(path, WatchEvent::kCreated);
    }
    if (done) done(ok);
  });
}

void Coordinator::set_data(const std::string& path, std::string data, DoneFn done) {
  schedule_after(cfg_.op_latency, [this, path, data = std::move(data),
                                   done = std::move(done)]() mutable {
    auto it = tree_.find(path);
    const bool ok = it != tree_.end();
    if (ok) {
      it->second.data = std::move(data);
      fire_watches(path, WatchEvent::kChanged);
    }
    if (done) done(ok);
  });
}

void Coordinator::get_data(const std::string& path, GetFn done) {
  schedule_after(cfg_.op_latency, [this, path, done = std::move(done)] {
    auto it = tree_.find(path);
    if (it == tree_.end()) {
      done(false, {});
    } else {
      done(true, it->second.data);
    }
  });
}

void Coordinator::remove(const std::string& path, DoneFn done) {
  schedule_after(cfg_.op_latency, [this, path, done = std::move(done)] {
    const bool ok = tree_.erase(path) > 0;
    if (ok) fire_watches(path, WatchEvent::kDeleted);
    if (done) done(ok);
  });
}

bool Coordinator::exists(const std::string& path) const { return tree_.contains(path); }

std::string Coordinator::data(const std::string& path) const {
  auto it = tree_.find(path);
  return it == tree_.end() ? std::string{} : it->second.data;
}

std::vector<std::string> Coordinator::children(const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto it = tree_.lower_bound(prefix); it != tree_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

void Coordinator::watch(const std::string& path, Watch w) {
  watches_.emplace(path, std::move(w));
}

void Coordinator::watch_prefix(const std::string& prefix, Watch w) {
  prefix_watches_.emplace(prefix, std::move(w));
}

void Coordinator::fire_watches(const std::string& path, WatchEvent event) {
  // Notifications reach watchers one op-latency later, like ZK callbacks.
  auto [lo, hi] = watches_.equal_range(path);
  for (auto it = lo; it != hi; ++it) {
    schedule_after(cfg_.op_latency, [w = it->second, path, event] { w(path, event); });
  }
  for (const auto& [prefix, w] : prefix_watches_) {
    if (path.compare(0, prefix.size(), prefix) == 0) {
      schedule_after(cfg_.op_latency, [w, path, event] { w(path, event); });
    }
  }
}

void Coordinator::expire_session(SessionId id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end() || !it->second.alive) return;
  it->second.alive = false;
  HYDRA_INFO("coordinator: session %llu (%s) expired",
             static_cast<unsigned long long>(id), it->second.owner.c_str());
  // Reap this session's ephemeral nodes; each deletion fires watches, which
  // is how SWAT learns about process death.
  std::vector<std::string> doomed;
  for (const auto& [path, znode] : tree_) {
    if (znode.owner == id) doomed.push_back(path);
  }
  for (const auto& path : doomed) {
    tree_.erase(path);
    fire_watches(path, WatchEvent::kDeleted);
  }
}

void Coordinator::sweep() {
  std::vector<SessionId> expired;
  for (const auto& [id, s] : sessions_) {
    if (s.alive && now() - s.last_heartbeat > cfg_.session_timeout) expired.push_back(id);
  }
  for (const SessionId id : expired) expire_session(id);
  schedule_after(cfg_.sweep_interval, [this] { sweep(); });
}

}  // namespace hydra::cluster
