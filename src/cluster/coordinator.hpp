// ZooKeeper-lite coordination service (paper section 5.1).
//
// HydraDB's HA plane needs exactly the ZooKeeper semantics the paper relies
// on: a consistent view of process status, ephemeral nodes that vanish when
// their owner's session stops heartbeating, and watches that notify the
// SWAT group of status changes. We model the ensemble at the service level
// (a single always-available actor with request latency) rather than
// reimplementing ZAB -- the paper treats the ensemble as a given substrate.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/actor.hpp"

namespace hydra::cluster {

using SessionId = std::uint64_t;

enum class WatchEvent : std::uint8_t { kCreated, kChanged, kDeleted };

constexpr const char* to_string(WatchEvent e) noexcept {
  switch (e) {
    case WatchEvent::kCreated: return "CREATED";
    case WatchEvent::kChanged: return "CHANGED";
    case WatchEvent::kDeleted: return "DELETED";
  }
  return "?";
}

class Coordinator : public sim::Actor {
 public:
  struct Config {
    Duration op_latency = 150 * kMicrosecond;    ///< ensemble round trip
    Duration session_timeout = 2 * kSecond;
    Duration sweep_interval = 500 * kMillisecond;
  };

  /// Persistent watch: fires on every event for the registered path (or,
  /// for prefix watches, any path under the prefix).
  using Watch = std::function<void(const std::string& path, WatchEvent event)>;
  using DoneFn = std::function<void(bool ok)>;
  using GetFn = std::function<void(bool exists, std::string data)>;

  explicit Coordinator(sim::Scheduler& sched) : Coordinator(sched, Config{}) {}
  Coordinator(sim::Scheduler& sched, Config cfg);

  // --- sessions ----------------------------------------------------------
  /// Opens a heartbeat session. The caller must heartbeat at least every
  /// session_timeout or its ephemeral znodes are reaped.
  SessionId open_session(std::string owner);
  void heartbeat(SessionId session);
  void close_session(SessionId session);
  [[nodiscard]] bool session_alive(SessionId session) const;

  // --- znodes ------------------------------------------------------------
  /// Creates a znode; `session` != 0 makes it ephemeral (dies with the
  /// session). Fails if the path exists.
  void create(const std::string& path, std::string data, SessionId session = 0,
              DoneFn done = nullptr);
  /// Sets data on an existing znode (fails if absent).
  void set_data(const std::string& path, std::string data, DoneFn done = nullptr);
  void get_data(const std::string& path, GetFn done);
  void remove(const std::string& path, DoneFn done = nullptr);

  /// Synchronous introspection (tests and same-process consumers).
  [[nodiscard]] bool exists(const std::string& path) const;
  [[nodiscard]] std::string data(const std::string& path) const;
  [[nodiscard]] std::vector<std::string> children(const std::string& prefix) const;

  // --- watches -----------------------------------------------------------
  void watch(const std::string& path, Watch w);
  void watch_prefix(const std::string& prefix, Watch w);

 private:
  struct Znode {
    std::string data;
    SessionId owner = 0;  // 0 = persistent
  };
  struct Session {
    std::string owner;
    Time last_heartbeat = 0;
    bool alive = true;
  };

  void fire_watches(const std::string& path, WatchEvent event);
  void expire_session(SessionId id);
  void sweep();

  Config cfg_;
  std::map<std::string, Znode> tree_;
  std::map<SessionId, Session> sessions_;
  std::multimap<std::string, Watch> watches_;
  std::multimap<std::string, Watch> prefix_watches_;
  SessionId next_session_ = 1;
};

}  // namespace hydra::cluster
