// Consistent-hash ring (Karger et al.), the client-side routing structure.
//
// Clients locate the shard owning a key from the 64-bit hash of the key
// (paper section 4). Virtual nodes smooth the load distribution; the ring
// carries a version so clients can detect stale routing after failover.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.hpp"

namespace hydra::cluster {

class ConsistentHashRing {
 public:
  explicit ConsistentHashRing(int vnodes_per_shard = 64)
      : vnodes_(vnodes_per_shard) {}

  void add_shard(ShardId shard);
  void remove_shard(ShardId shard);

  /// Shard owning this key hash; kInvalidShard when the ring is empty.
  [[nodiscard]] ShardId owner(std::uint64_t key_hash) const noexcept;

  [[nodiscard]] bool contains(ShardId shard) const noexcept;
  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }
  [[nodiscard]] std::vector<ShardId> shards() const;

 private:
  int vnodes_;
  std::map<std::uint64_t, ShardId> points_;
  std::map<ShardId, int> shards_;
  std::uint64_t version_ = 0;
};

}  // namespace hydra::cluster
