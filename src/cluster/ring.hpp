// Consistent-hash ring (Karger et al.), the client-side routing structure.
//
// Clients locate the shard owning a key from the 64-bit hash of the key
// (paper section 4). Virtual nodes smooth the load distribution; the ring
// carries a version so clients can detect stale routing after failover.
//
// Vnode hash collisions (two shards hashing to the same ring point) are
// resolved deterministically: the lowest ShardId serves the point, and the
// runner-up takes over when the winner is removed. Without the tie-break,
// ownership of a contested point depended on insertion order, so two rings
// built from the same shard set could disagree on routing.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/types.hpp"

namespace hydra::cluster {

class ConsistentHashRing {
 public:
  /// Maps (shard, vnode replica) to a ring point. Injectable so collision
  /// handling is testable (64-bit collisions are otherwise unreachable).
  using PointFn = std::function<std::uint64_t(ShardId shard, int replica)>;

  explicit ConsistentHashRing(int vnodes_per_shard = 64, PointFn point_fn = nullptr)
      : vnodes_(vnodes_per_shard), point_fn_(std::move(point_fn)) {}

  void add_shard(ShardId shard);
  void remove_shard(ShardId shard);

  /// Shard owning this key hash; kInvalidShard when the ring is empty.
  [[nodiscard]] ShardId owner(std::uint64_t key_hash) const noexcept;

  [[nodiscard]] bool contains(ShardId shard) const noexcept;
  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }
  [[nodiscard]] std::vector<ShardId> shards() const;

 private:
  [[nodiscard]] std::uint64_t point(ShardId shard, int replica) const;

  int vnodes_;
  PointFn point_fn_;
  /// Shards hashing to each point, ascending: front() serves the point.
  std::map<std::uint64_t, std::vector<ShardId>> points_;
  std::map<ShardId, int> shards_;
  std::uint64_t version_ = 0;
};

}  // namespace hydra::cluster
