#include "replication/primary.hpp"

#include <algorithm>
#include <cstring>

#include "common/logging.hpp"
#include "obs/plane.hpp"

namespace hydra::replication {
namespace {

/// In-place retransmit budget per frame. Real RC hardware retries a bounded
/// number of times before moving the QP to the error state; we mirror that
/// by quarantining the link when a frame refuses to land.
constexpr int kMaxWriteAttempts = 8;

}  // namespace

ReplicationPrimary::ReplicationPrimary(sim::Actor& owner, fabric::Fabric& fabric,
                                       NodeId node, PrimaryConfig cfg)
    : owner_(owner), fabric_(fabric), node_(node), cfg_(cfg) {}

void ReplicationPrimary::add_secondary(SecondaryShard& secondary) {
  // Align the secondary's consumption state with this (possibly new)
  // primary's sequence numbering and ring cursor.
  secondary.reset_stream();
  auto link = std::make_unique<Link>();
  link->secondary = &secondary;
  auto [primary_qp, secondary_qp] = fabric_.connect(node_, secondary.node());
  link->qp = primary_qp;
  link->ring_rkey = secondary.ring_mr()->rkey();
  link->cursor = RingCursor{secondary.ring_mr()->length(), 0};
  link->last_progress = owner_.now();
  link->ack_buf.resize(256);
  link->ack_mr = fabric_.node(node_).register_memory(link->ack_buf);

  Link* raw = link.get();
  link->ack_mr->set_write_hook(
      owner_.guard([this, raw](std::uint64_t, std::uint32_t) { on_ack(*raw); }));
  secondary.attach_primary(secondary_qp, link->ack_mr->addr(0));
  if (cfg_.pulse_interval > 0) {
    // Fast failover on: learn the replica's (lazily registered) failover
    // arena and start pulsing. Off, no arena is ever registered, keeping
    // rkey sequences -- and therefore histories -- byte-identical.
    link->arena_rkey = secondary.failover_arena()->rkey();
  }
  links_.push_back(std::move(link));
  if (cfg_.pulse_interval > 0) arm_pulse_timer();
}

void ReplicationPrimary::remove_secondary(SecondaryShard& secondary) {
  for (auto& link : links_) {
    if (link->secondary == &secondary) {
      quarantine(*link);
      return;
    }
  }
}

std::size_t ReplicationPrimary::secondary_count() const noexcept {
  std::size_t live = 0;
  for (const auto& link : links_) {
    if (!link->dead) ++live;
  }
  return live;
}

void ReplicationPrimary::for_each_live_link(
    const std::function<void(SecondaryShard&, fabric::QueuePair&)>& fn) {
  for (const auto& link : links_) {
    if (link->dead || link->secondary == nullptr || !link->secondary->alive()) continue;
    if (link->qp == nullptr) continue;
    fn(*link->secondary, *link->qp);
  }
}

std::vector<std::uint32_t> ReplicationPrimary::ack_rkeys() const {
  std::vector<std::uint32_t> keys;
  for (const auto& link : links_) {
    if (link->ack_mr != nullptr) keys.push_back(link->ack_mr->rkey());
  }
  return keys;
}

void ReplicationPrimary::replicate(proto::RepRecord rec, std::function<void()> done) {
  const std::size_t live = secondary_count();
  if (live == 0 || cfg_.mode == ReplicationMode::kNone) {
    if (done) done();
    return;
  }
  rec.seq = assign_seq();

  if (cfg_.mode == ReplicationMode::kStrictAck) {
    strict_waiters_.emplace(rec.seq, std::move(done));
    done = nullptr;
  }

  // Relaxed mode: the callback fires once the RDMA Write to every live
  // secondary's ring has completed (one NIC-level round trip, no
  // secondary CPU on the critical path).
  auto remaining = std::make_shared<std::size_t>(live);
  auto on_write = [remaining, done = std::move(done)]() {
    if (--*remaining == 0 && done) done();
  };

  for (auto& link : links_) {
    if (link->dead) continue;
    link->pending.push_back(PendingRecord{rec, 0});
    if (!link->backlog.empty() || !write_record(*link, rec, on_write)) {
      link->backlog.push_back(rec);
      ++backlogged_;
      // on_write stays owed; flush_backlog settles it when space frees.
      link->backlog_completions.push_back(on_write);
    }
    arm_ack_timer(*link);
  }
}

bool ReplicationPrimary::write_record(Link& link, const proto::RepRecord& rec,
                                      std::function<void()> on_write_complete) {
  const auto payload = proto::encode_rep_record(rec);
  const std::uint64_t framed_size = proto::frame_size(payload.size());
  std::uint64_t waste = 0;

  if (link.cursor.needs_wrap(framed_size)) {
    waste = link.cursor.wrap_waste();
    if (link.used_bytes + framed_size + waste > link.cursor.ring_size) {
      link.awaiting_space = true;
      return false;
    }
    // Wrap marker tells the consumer to jump to offset 0.
    std::vector<std::byte> marker(kWrapMarkerBytes);
    proto::encode_frame(marker, {}, kFlagWrap);
    post_frame(link, std::move(marker), link.cursor.offset, 0, {}, 1);
    link.cursor.wrap();
  } else if (link.used_bytes + framed_size > link.cursor.ring_size) {
    link.awaiting_space = true;
    return false;
  }

  ++link.since_ack_request;
  std::uint16_t flags = proto::kFlagNone;
  const bool pressure = link.used_bytes + framed_size > link.cursor.ring_size / 2;
  if (cfg_.mode == ReplicationMode::kStrictAck ||
      link.since_ack_request >= cfg_.ack_interval || pressure) {
    flags |= proto::kFlagAckRequest;
    link.since_ack_request = 0;
  }

  const std::uint64_t at = link.cursor.place(framed_size);
  link.used_bytes += framed_size + waste;
  // Record the ring footprint on the pending entry so the ack can free it.
  for (auto it = link.pending.rbegin(); it != link.pending.rend(); ++it) {
    if (it->rec.seq == rec.seq) {
      it->footprint += framed_size + waste;
      break;
    }
  }

  std::vector<std::byte> frame(framed_size);
  proto::encode_frame(frame, payload, flags);
  post_frame(link, std::move(frame), at, rec.seq, std::move(on_write_complete), 1);
  return true;
}

bool ReplicationPrimary::write_control_frame(Link& link, std::uint16_t flags) {
  const std::uint64_t framed_size = kWrapMarkerBytes;
  std::uint64_t waste = 0;
  if (link.cursor.needs_wrap(framed_size)) {
    waste = link.cursor.wrap_waste();
    if (link.used_bytes + framed_size + waste > link.cursor.ring_size) return false;
    std::vector<std::byte> marker(kWrapMarkerBytes);
    proto::encode_frame(marker, {}, kFlagWrap);
    post_frame(link, std::move(marker), link.cursor.offset, 0, {}, 1);
    link.cursor.wrap();
  } else if (link.used_bytes + framed_size > link.cursor.ring_size) {
    return false;
  }

  const std::uint64_t at = link.cursor.place(framed_size);
  link.used_bytes += framed_size + waste;
  // Charge the control frame to the oldest pending record so the next
  // cumulative ack frees its bytes (callers only probe while records are
  // outstanding).
  if (!link.pending.empty()) link.pending.front().footprint += framed_size + waste;

  std::vector<std::byte> frame(framed_size);
  proto::encode_frame(frame, {}, flags);
  post_frame(link, std::move(frame), at, 0, {}, 1);
  return true;
}

void ReplicationPrimary::post_frame(Link& link, std::vector<std::byte> frame,
                                    std::uint64_t at, std::uint64_t seq,
                                    std::function<void()> settle, int attempt) {
  // The completion owns the frame bytes so a torn or dropped delivery can be
  // retransmitted to the *same* offset: the consumer never advances past an
  // incomplete frame, so rewriting in place is race-free (RC retransmit).
  auto span = std::span<const std::byte>(frame);
  auto handler = owner_.guard(
      [this, lp = &link, frame = std::move(frame), at, seq, settle = std::move(settle),
       attempt](const fabric::Completion& wc) mutable {
        if (wc.status == fabric::WcStatus::kSuccess) {
          lp->last_progress = owner_.now();
          if (settle) settle();
          return;
        }
        on_write_error(*lp, std::move(frame), at, seq, std::move(settle), attempt,
                       wc.status);
      });
  link.qp->post_write(span, fabric::RemoteAddr{link.ring_rkey, at}, seq,
                      [handler = std::move(handler)](const fabric::Completion& wc) mutable {
                        handler(wc);
                      });
}

void ReplicationPrimary::on_write_error(Link& link, std::vector<std::byte> frame,
                                        std::uint64_t at, std::uint64_t seq,
                                        std::function<void()> settle, int attempt,
                                        fabric::WcStatus status) {
  if (link.dead) {
    // Already quarantined; the caller was settled by the quarantine sweep --
    // but this frame's settle travelled with the retry chain, so fire it.
    if (settle) settle();
    return;
  }
  if (link.secondary == nullptr || !link.secondary->alive()) {
    if (settle) link.backlog_completions.push_back(std::move(settle));
    quarantine(link);
    return;
  }
  if (status == fabric::WcStatus::kProtectionError) {
    // A *live* replica completed our write kProtectionError: it revoked the
    // rkey, i.e. the failover plane fenced this primary (DESIGN.md §14). A
    // revoked rkey never heals, so retrying would just burn the retransmit
    // budget before quarantining anyway -- settle now and tell the owner.
    if (settle) link.backlog_completions.push_back(std::move(settle));
    fenced_by_replica(link);
    return;
  }
  if (attempt >= kMaxWriteAttempts) {
    HYDRA_WARN("replication: frame at offset %llu refused to land after %d attempts "
               "(status %d); quarantining link to %s",
               static_cast<unsigned long long>(at), attempt, static_cast<int>(status),
               link.secondary->name().c_str());
    if (settle) link.backlog_completions.push_back(std::move(settle));
    quarantine(link);
    return;
  }
  ++write_retries_;
  if (fabric_.obs() != nullptr) {
    fabric_.obs()->trace(owner_.now(), node_, obs::TraceKind::kRetransmit, obs::kNoShard, at,
                         static_cast<std::uint64_t>(attempt));
  }
  post_frame(link, std::move(frame), at, seq, std::move(settle), attempt + 1);
}

void ReplicationPrimary::flush_backlog(Link& link) {
  link.awaiting_space = false;
  while (!link.backlog.empty()) {
    const proto::RepRecord rec = link.backlog.front();
    auto cb = link.backlog_completions.empty() ? std::function<void()>{}
                                               : link.backlog_completions.front();
    if (!write_record(link, rec, cb)) return;  // still no space
    link.backlog.pop_front();
    if (!link.backlog_completions.empty()) link.backlog_completions.pop_front();
  }
}

void ReplicationPrimary::on_ack(Link& link) {
  if (link.dead) return;
  switch (proto::probe_frame(link.ack_buf)) {
    case proto::FrameState::kEmpty:
      return;  // hook fired for a write we already consumed
    case proto::FrameState::kPartial:
    case proto::FrameState::kMalformed:
      // Torn ack write: the slot is single-producer and the write that tore
      // will never finish, so scrub the slot and ask the secondary to
      // re-acknowledge instead of silently dropping the ack.
      ++torn_acks_;
      if (fabric_.obs() != nullptr) {
        fabric_.obs()->trace(owner_.now(), node_, obs::TraceKind::kTornAck);
      }
      std::fill(link.ack_buf.begin(), link.ack_buf.end(), std::byte{0});
      solicit_ack(link);
      arm_ack_timer(link);
      return;
    case proto::FrameState::kReady:
      break;
  }
  const auto ack = proto::decode_rep_ack(proto::frame_payload(link.ack_buf));
  proto::clear_frame(link.ack_buf);
  if (!ack.has_value()) {
    // Framing intact but the payload didn't decode: treat like a torn ack.
    ++torn_acks_;
    if (fabric_.obs() != nullptr) {
      fabric_.obs()->trace(owner_.now(), node_, obs::TraceKind::kTornAck);
    }
    solicit_ack(link);
    arm_ack_timer(link);
    return;
  }
  ++acks_received_;
  link.last_progress = owner_.now();
  if (fabric_.obs() != nullptr) {
    fabric_.obs()->trace(owner_.now(), node_, obs::TraceKind::kAckReceived, obs::kNoShard,
                         ack->acked_seq, ack->first_failed_seq);
  }

  link.acked_seq = std::max(link.acked_seq, ack->acked_seq);
  while (!link.pending.empty() && link.pending.front().rec.seq <= link.acked_seq) {
    link.used_bytes -= std::min(link.used_bytes, link.pending.front().footprint);
    link.pending.pop_front();
  }

  if (ack->first_failed_seq != 0 && ack->first_failed_seq > link.acked_seq) {
    resend_from(link, ack->first_failed_seq);
  }
  if (!link.backlog.empty()) flush_backlog(link);
  if (cfg_.mode == ReplicationMode::kStrictAck) fire_strict_waiters();
}

void ReplicationPrimary::resend_from(Link& link, std::uint64_t first_failed_seq) {
  HYDRA_DEBUG("replication: rolling back to seq %llu and resending %zu records",
              static_cast<unsigned long long>(first_failed_seq), link.pending.size());
  if (fabric_.obs() != nullptr) {
    fabric_.obs()->trace(owner_.now(), node_, obs::TraceKind::kRollback, obs::kNoShard,
                         first_failed_seq);
  }
  for (auto& p : link.pending) {
    if (p.rec.seq < first_failed_seq) continue;
    ++resends_;
    if (!write_record(link, p.rec, {})) {
      link.backlog.push_back(p.rec);
      link.backlog_completions.push_back({});
    }
  }
}

void ReplicationPrimary::fire_strict_waiters() {
  std::uint64_t min_acked = ~std::uint64_t{0};
  bool any_live = false;
  for (const auto& link : links_) {
    if (link->dead) continue;
    any_live = true;
    min_acked = std::min(min_acked, link->acked_seq);
  }
  // With no live replica left there is nothing to wait for: fire every
  // waiter rather than wedging callers behind a corpse's acked_seq (the
  // write is as durable as a replication factor of zero allows).
  while (!strict_waiters_.empty() &&
         (!any_live || strict_waiters_.begin()->first <= min_acked)) {
    auto done = std::move(strict_waiters_.begin()->second);
    strict_waiters_.erase(strict_waiters_.begin());
    if (done) done();
  }
}

void ReplicationPrimary::quarantine(Link& link) {
  if (link.dead) return;
  link.dead = true;
  ++quarantined_;
  if (fabric_.obs() != nullptr) {
    fabric_.obs()->trace(owner_.now(), node_, obs::TraceKind::kQuarantine, obs::kNoShard,
                         link.secondary != nullptr ? link.secondary->node() : kInvalidNode);
  }
  if (link.ack_mr != nullptr) link.ack_mr->set_write_hook(nullptr);
  HYDRA_DEBUG("replication: quarantining link to %s (%zu completions owed)",
              link.secondary != nullptr ? link.secondary->name().c_str() : "?",
              link.backlog_completions.size());

  // Settle everything owed through this link: the replica is gone and
  // SWAT-level repair (promotion / respawn) restores the factor; the write
  // path must never wedge behind a corpse. If the owning shard itself has
  // crashed (promotion pruning a dead primary's links), the completions die
  // with it instead -- crash semantics, same as every guarded callback.
  auto owed = std::move(link.backlog_completions);
  link.backlog_completions.clear();
  link.backlog.clear();
  link.pending.clear();
  link.used_bytes = 0;
  if (owner_.alive()) {
    for (auto& fn : owed) {
      if (fn) fn();
    }
    fire_strict_waiters();
  }
}

void ReplicationPrimary::solicit_ack(Link& link) {
  if (link.dead || link.pending.empty()) return;
  if (write_control_frame(link, kFlagAckProbe | proto::kFlagAckRequest)) {
    ++ack_probes_;
    if (fabric_.obs() != nullptr) {
      fabric_.obs()->trace(owner_.now(), node_, obs::TraceKind::kAckProbe);
    }
  }
  // On a full ring the probe is retried by the next ack-timer tick.
}

void ReplicationPrimary::arm_ack_timer(Link& link) {
  if (link.ack_timer_armed || cfg_.ack_timeout == 0) return;
  link.ack_timer_armed = true;
  Link* raw = &link;
  owner_.schedule_after(cfg_.ack_timeout, [this, raw] { on_ack_timer(*raw); });
}

void ReplicationPrimary::on_ack_timer(Link& link) {
  link.ack_timer_armed = false;
  if (link.dead || link.pending.empty()) return;  // nothing outstanding
  if (owner_.now() - link.last_progress >= cfg_.ack_timeout) {
    if (link.secondary == nullptr || !link.secondary->alive()) {
      // Dead replica discovered by the deadline probe (it died while we had
      // no writes in flight to observe the failure on).
      quarantine(link);
      return;
    }
    solicit_ack(link);
  }
  arm_ack_timer(link);
}

void ReplicationPrimary::fenced_by_replica(Link& link) {
  ++fence_errors_;
  if (fabric_.obs() != nullptr) {
    fabric_.obs()->trace(owner_.now(), node_, obs::TraceKind::kFenced, obs::kNoShard,
                         /*a=*/3,
                         link.secondary != nullptr ? link.secondary->node() : kInvalidNode);
  }
  // The handler runs *before* quarantine so a self-fencing owner (which
  // kills the shard) makes owner_.alive() false and the quarantine sweep
  // skips settling owed completions -- no acknowledgement ever escapes a
  // fenced primary. Without a handler (standalone engine tests) quarantine
  // settles the waiters as usual.
  if (fence_handler_) fence_handler_();
  quarantine(link);
}

void ReplicationPrimary::arm_pulse_timer() {
  if (pulse_armed_ || cfg_.pulse_interval == 0) return;
  pulse_armed_ = true;
  owner_.schedule_after(cfg_.pulse_interval, [this] { on_pulse_timer(); });
}

void ReplicationPrimary::on_pulse_timer() {
  pulse_armed_ = false;
  // Liveness pulse (DESIGN.md §14): an incrementing word RDMA-Written into
  // each live secondary's failover arena. The arena write hook resets the
  // replica's suspicion deadline, so a healthy primary is never suspected
  // even when the workload leaves its rings idle.
  ++pulse_seq_;
  std::memcpy(pulse_buf_.data(), &pulse_seq_, sizeof(pulse_seq_));
  bool any_pulsed = false;
  for (auto& link : links_) {
    if (link->dead || link->arena_rkey == 0) continue;
    any_pulsed = true;
    Link* raw = link.get();
    raw->qp->post_write(
        std::span<const std::byte>(pulse_buf_),
        fabric::RemoteAddr{raw->arena_rkey, SecondaryShard::kPulseOffset}, 0,
        owner_.guard([this, raw](const fabric::Completion& wc) {
          if (raw->dead) return;
          if (wc.status == fabric::WcStatus::kSuccess) {
            raw->last_progress = owner_.now();
            return;
          }
          if (raw->secondary == nullptr || !raw->secondary->alive()) {
            quarantine(*raw);
            return;
          }
          if (wc.status == fabric::WcStatus::kProtectionError) fenced_by_replica(*raw);
          // kFlushed/kRemoteDead against a still-live replica: transient
          // fault-injection loss; the next pulse re-covers it.
        }));
  }
  if (any_pulsed) arm_pulse_timer();
}

}  // namespace hydra::replication
