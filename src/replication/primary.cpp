#include "replication/primary.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace hydra::replication {

ReplicationPrimary::ReplicationPrimary(sim::Actor& owner, fabric::Fabric& fabric,
                                       NodeId node, PrimaryConfig cfg)
    : owner_(owner), fabric_(fabric), node_(node), cfg_(cfg) {}

void ReplicationPrimary::add_secondary(SecondaryShard& secondary) {
  // Align the secondary's consumption state with this (possibly new)
  // primary's sequence numbering and ring cursor.
  secondary.reset_stream();
  auto link = std::make_unique<Link>();
  link->secondary = &secondary;
  auto [primary_qp, secondary_qp] = fabric_.connect(node_, secondary.node());
  link->qp = primary_qp;
  link->ring_rkey = secondary.ring_mr()->rkey();
  link->cursor = RingCursor{secondary.ring_mr()->length(), 0};
  link->ack_buf.resize(256);
  link->ack_mr = fabric_.node(node_).register_memory(link->ack_buf);

  Link* raw = link.get();
  link->ack_mr->set_write_hook(
      owner_.guard([this, raw](std::uint64_t, std::uint32_t) { on_ack(*raw); }));
  secondary.attach_primary(secondary_qp, link->ack_mr->addr(0));
  links_.push_back(std::move(link));
}

void ReplicationPrimary::replicate(proto::RepRecord rec, std::function<void()> done) {
  if (links_.empty() || cfg_.mode == ReplicationMode::kNone) {
    if (done) done();
    return;
  }
  rec.seq = assign_seq();

  if (cfg_.mode == ReplicationMode::kStrictAck) {
    strict_waiters_.emplace(rec.seq, std::move(done));
    done = nullptr;
  }

  // Relaxed mode: the callback fires once the RDMA Write to every
  // secondary's ring has completed (one NIC-level round trip, no
  // secondary CPU on the critical path).
  auto remaining = std::make_shared<std::size_t>(links_.size());
  auto on_write = [remaining, done = std::move(done)]() {
    if (--*remaining == 0 && done) done();
  };

  for (auto& link : links_) {
    link->pending.push_back(PendingRecord{rec, 0});
    if (!link->backlog.empty() || !write_record(*link, rec, on_write)) {
      link->backlog.push_back(rec);
      ++backlogged_;
      // on_write stays owed; flush_backlog settles it when space frees.
      link->backlog_completions.push_back(on_write);
    }
  }
}

bool ReplicationPrimary::write_record(Link& link, const proto::RepRecord& rec,
                                      std::function<void()> on_write_complete) {
  const auto payload = proto::encode_rep_record(rec);
  const std::uint64_t framed_size = proto::frame_size(payload.size());
  std::uint64_t waste = 0;

  if (link.cursor.needs_wrap(framed_size)) {
    waste = link.cursor.wrap_waste();
    if (link.used_bytes + framed_size + waste > link.cursor.ring_size) {
      link.awaiting_space = true;
      return false;
    }
    // Wrap marker tells the consumer to jump to offset 0.
    std::vector<std::byte> marker(kWrapMarkerBytes);
    proto::encode_frame(marker, {}, kFlagWrap);
    link.qp->post_write(marker, fabric::RemoteAddr{link.ring_rkey, link.cursor.offset});
    link.cursor.wrap();
  } else if (link.used_bytes + framed_size > link.cursor.ring_size) {
    link.awaiting_space = true;
    return false;
  }

  ++link.since_ack_request;
  std::uint16_t flags = proto::kFlagNone;
  const bool pressure = link.used_bytes + framed_size > link.cursor.ring_size / 2;
  if (cfg_.mode == ReplicationMode::kStrictAck ||
      link.since_ack_request >= cfg_.ack_interval || pressure) {
    flags |= proto::kFlagAckRequest;
    link.since_ack_request = 0;
  }

  const std::uint64_t at = link.cursor.place(framed_size);
  link.used_bytes += framed_size + waste;
  // Record the ring footprint on the pending entry so the ack can free it.
  for (auto it = link.pending.rbegin(); it != link.pending.rend(); ++it) {
    if (it->rec.seq == rec.seq) {
      it->footprint += framed_size + waste;
      break;
    }
  }

  std::vector<std::byte> frame(framed_size);
  proto::encode_frame(frame, payload, flags);
  fabric::CompletionFn completion;
  if (on_write_complete) {
    // Even a dead-peer completion settles the caller: a crashed secondary
    // must not wedge the primary (SWAT reconfigures it out of the group).
    completion = [g = owner_.guard(std::move(on_write_complete))](
                     const fabric::Completion&) mutable { g(); };
  }
  link.qp->post_write(frame, fabric::RemoteAddr{link.ring_rkey, at}, rec.seq,
                      std::move(completion));
  return true;
}

void ReplicationPrimary::flush_backlog(Link& link) {
  link.awaiting_space = false;
  while (!link.backlog.empty()) {
    const proto::RepRecord rec = link.backlog.front();
    auto cb = link.backlog_completions.empty() ? std::function<void()>{}
                                               : link.backlog_completions.front();
    if (!write_record(link, rec, cb)) return;  // still no space
    link.backlog.pop_front();
    if (!link.backlog_completions.empty()) link.backlog_completions.pop_front();
  }
}

void ReplicationPrimary::on_ack(Link& link) {
  const auto size = proto::poll_frame(link.ack_buf);
  if (!size.has_value()) return;  // partial write; hook fires again? (single write => complete)
  const auto ack = proto::decode_rep_ack(proto::frame_payload(link.ack_buf));
  proto::clear_frame(link.ack_buf);
  if (!ack.has_value()) return;
  ++acks_received_;

  link.acked_seq = std::max(link.acked_seq, ack->acked_seq);
  while (!link.pending.empty() && link.pending.front().rec.seq <= link.acked_seq) {
    link.used_bytes -= std::min(link.used_bytes, link.pending.front().footprint);
    link.pending.pop_front();
  }

  if (ack->first_failed_seq != 0 && ack->first_failed_seq > link.acked_seq) {
    resend_from(link, ack->first_failed_seq);
  }
  if (!link.backlog.empty()) flush_backlog(link);
  if (cfg_.mode == ReplicationMode::kStrictAck) fire_strict_waiters();
}

void ReplicationPrimary::resend_from(Link& link, std::uint64_t first_failed_seq) {
  HYDRA_DEBUG("replication: rolling back to seq %llu and resending %zu records",
              static_cast<unsigned long long>(first_failed_seq), link.pending.size());
  for (auto& p : link.pending) {
    if (p.rec.seq < first_failed_seq) continue;
    ++resends_;
    if (!write_record(link, p.rec, {})) {
      link.backlog.push_back(p.rec);
      link.backlog_completions.push_back({});
    }
  }
}

void ReplicationPrimary::fire_strict_waiters() {
  if (links_.empty()) return;
  std::uint64_t min_acked = ~std::uint64_t{0};
  for (const auto& link : links_) min_acked = std::min(min_acked, link->acked_seq);
  while (!strict_waiters_.empty() && strict_waiters_.begin()->first <= min_acked) {
    auto done = std::move(strict_waiters_.begin()->second);
    strict_waiters_.erase(strict_waiters_.begin());
    if (done) done();
  }
}

}  // namespace hydra::replication
