#include "replication/secondary.hpp"

#include <string>

#include "common/logging.hpp"
#include "obs/plane.hpp"

namespace hydra::replication {

SecondaryShard::SecondaryShard(sim::Scheduler& sched, fabric::Fabric& fabric,
                               NodeId node, SecondaryConfig cfg)
    : sim::Actor(sched, "secondary-" + std::to_string(cfg.primary_shard)),
      fabric_(fabric),
      node_(node),
      cfg_(cfg),
      store_(std::make_unique<core::KVStore>(cfg.store)),
      ring_(cfg.ring_bytes),
      cursor_{cfg.ring_bytes, 0} {
  ring_mr_ = fabric_.node(node_).register_memory(ring_);
  ring_mr_->set_write_hook(guard([this](std::uint64_t, std::uint32_t) { on_ring_write(); }));
}

void SecondaryShard::attach_primary(fabric::QueuePair* qp_to_primary,
                                    fabric::RemoteAddr ack_slot) {
  qp_to_primary_ = qp_to_primary;
  ack_slot_ = ack_slot;
}

fabric::MemoryRegion* SecondaryShard::promo_slab(std::uint32_t slot_bytes,
                                                 std::uint32_t slots) {
  if (promo_mr_ == nullptr) {
    promo_.assign(static_cast<std::size_t>(slot_bytes) * slots, std::byte{0});
    promo_mr_ = fabric_.node(node_).register_memory(promo_);
  }
  return promo_mr_;
}

fabric::MemoryRegion* SecondaryShard::failover_arena() {
  if (arena_mr_ == nullptr) {
    arena_.assign(kFailoverArenaBytes, std::byte{0});
    arena_mr_ = fabric_.node(node_).register_memory(arena_);
    arena_mr_->set_write_hook(
        guard([this](std::uint64_t, std::uint32_t) { note_liveness(); }));
  }
  return arena_mr_;
}

void SecondaryShard::enable_suspicion(Duration deadline,
                                      std::function<void(SecondaryShard&)> on_suspect) {
  suspicion_deadline_ = deadline;
  on_suspect_ = std::move(on_suspect);
  last_signal_ = now();
  suspected_ = false;
  arm_suspicion_tick();
}

void SecondaryShard::note_liveness() {
  last_signal_ = now();
}

void SecondaryShard::arm_suspicion_tick() {
  if (suspicion_tick_armed_ || suspicion_deadline_ == 0) return;
  suspicion_tick_armed_ = true;
  // Half-deadline ticks bound detection latency at 1.5x the deadline while
  // keeping the tick volume modest.
  schedule_after(suspicion_deadline_ / 2, [this] { suspicion_tick(); });
}

void SecondaryShard::suspicion_tick() {
  suspicion_tick_armed_ = false;
  if (suspected_) return;  // one-shot until reset_stream() re-arms
  const Duration silent = now() - last_signal_;
  if (silent >= suspicion_deadline_) {
    suspected_ = true;
    if (fabric_.obs() != nullptr) {
      fabric_.obs()->trace(now(), node_, obs::TraceKind::kSuspicionRaised,
                           cfg_.primary_shard, static_cast<std::uint64_t>(silent));
    }
    if (on_suspect_) on_suspect_(*this);
    return;  // ticking resumes when a new primary attaches
  }
  arm_suspicion_tick();
}

void SecondaryShard::drain_ring() {
  if (store_ == nullptr) return;
  while (true) {
    std::span<std::byte> at{ring_.data() + cursor_.offset, ring_.size() - cursor_.offset};
    if (!proto::poll_frame(at).has_value()) break;
    consume_frame(at);
  }
  if (fabric_.obs() != nullptr) {
    fabric_.obs()->trace(now(), node_, obs::TraceKind::kRingDrained, cfg_.primary_shard,
                         applied_seq_);
  }
}

std::unique_ptr<core::KVStore> SecondaryShard::release_store() {
  // The ring hook must stop mutating the store we are giving away.
  ring_mr_->set_write_hook(nullptr);
  return std::move(store_);
}

void SecondaryShard::kill() {
  ring_mr_->revoke();
  if (promo_mr_ != nullptr) promo_mr_->revoke();
  if (arena_mr_ != nullptr) arena_mr_->revoke();
  sim::Actor::kill();
}

void SecondaryShard::reset_stream() {
  // Promoted copies belong to the old primary's promotion set; zero the
  // slab so a stale client pointer can never validate against them (the
  // guardian word is gone along with everything else).
  std::fill(promo_.begin(), promo_.end(), std::byte{0});
  std::fill(ring_.begin(), ring_.end(), std::byte{0});
  cursor_ = RingCursor{cfg_.ring_bytes, 0};
  applied_seq_ = 0;
  first_failed_seq_ = 0;
  polling_ = false;
  // Fast failover: a revocation round fenced the old primary by revoking
  // this ring's rkey. The new primary needs a writable ring, so re-register
  // under a fresh rkey -- in-flight ops against the dead rkey keep failing
  // cleanly -- and re-install the consumption hook.
  if (ring_mr_->revoked()) {
    ring_mr_ = fabric_.reregister_mr(node_, ring_mr_);
    ring_mr_->set_write_hook(
        guard([this](std::uint64_t, std::uint32_t) { on_ring_write(); }));
  }
  // New primary, fresh suspicion epoch: clear the pulse/ballot words and
  // resume deadline ticking.
  std::fill(arena_.begin(), arena_.end(), std::byte{0});
  last_signal_ = now();
  suspected_ = false;
  arm_suspicion_tick();
}

void SecondaryShard::on_ring_write() {
  note_liveness();
  if (polling_) return;  // the loop is awake; it will reach the new frame
  polling_ = true;
  schedule_after(cfg_.poll_backoff, [this] { poll_loop(); });
}

void SecondaryShard::poll_loop() {
  std::span<std::byte> at{ring_.data() + cursor_.offset, ring_.size() - cursor_.offset};
  const auto size = proto::poll_frame(at);
  if (!size.has_value()) {
    polling_ = false;  // go idle; the write hook re-arms us
    return;
  }
  const Duration cost = consume_frame(at);
  schedule_after(cost, [this] { poll_loop(); });
}

Duration SecondaryShard::consume_frame(std::span<std::byte> frame) {
  const std::uint16_t flags = proto::frame_flags(frame);
  const auto payload = proto::frame_payload(frame);
  const std::uint64_t framed = proto::frame_size(payload.size());

  if (flags & kFlagWrap) {
    proto::clear_frame(frame);
    cursor_.wrap();
    return cfg_.poll_backoff;  // nominal cost to jump
  }

  if (flags & kFlagAckProbe) {
    // The primary lost (or never got) our last acknowledgement -- a torn
    // ack write, or a stalled stream hitting its ack deadline. Re-send the
    // cumulative state; carries no record, so the sequence stream is
    // untouched.
    proto::clear_frame(frame);
    cursor_.place(framed);
    const Duration cost = cfg_.poll_backoff + cfg_.ack_post_cost;
    schedule_after(cost, [this] { send_ack(); });
    return cost;
  }

  Duration cost = cfg_.apply_base;
  const auto rec = proto::decode_rep_record(payload);
  proto::clear_frame(frame);
  cursor_.place(framed);

  if (!rec.has_value()) {
    // Corrupt record: same treatment as a failed apply.
    if (first_failed_seq_ == 0) first_failed_seq_ = applied_seq_ + 1;
    ++discarded_;
  } else if (first_failed_seq_ != 0 && rec->seq != first_failed_seq_) {
    // Failed earlier: discard followers until the rollback resend arrives.
    ++discarded_;
  } else if (rec->seq <= applied_seq_) {
    ++discarded_;  // duplicate from a resend; idempotent skip
  } else if (rec->seq != applied_seq_ + 1) {
    // Gap: something upstream went missing; refuse and report.
    if (first_failed_seq_ == 0) first_failed_seq_ = applied_seq_ + 1;
    ++discarded_;
  } else if (fail_budget_ > 0) {
    --fail_budget_;
    if (first_failed_seq_ == 0) first_failed_seq_ = rec->seq;
    ++discarded_;
    HYDRA_DEBUG("secondary %s: injected failure at seq %llu", name().c_str(),
                static_cast<unsigned long long>(rec->seq));
  } else {
    // Healthy apply: merge into the replica store with the primary's
    // operation timestamp so lease state replays identically.
    if (rec->op == proto::MsgType::kRemove) {
      store_->remove(rec->key, rec->op_time);
    } else {
      store_->put(rec->key, rec->value, rec->op_time);
    }
    store_->collect_garbage(now());
    applied_seq_ = rec->seq;
    first_failed_seq_ = 0;  // a successful resend clears the failure
    ++applied_records_;
    cost += static_cast<Duration>(cfg_.per_value_byte * static_cast<double>(rec->value.size()));
  }

  if (flags & proto::kFlagAckRequest) {
    // The acknowledgement leaves only after the apply work is done -- the
    // secondary's CPU is on the strict-mode critical path, which is exactly
    // why strict request/acknowledge doubles write latency (Fig 13).
    cost += cfg_.ack_post_cost;
    schedule_after(cost, [this] { send_ack(); });
  }
  return cost;
}

void SecondaryShard::send_ack() {
  if (qp_to_primary_ == nullptr) return;
  proto::RepAck ack;
  ack.acked_seq = applied_seq_;
  ack.first_failed_seq = first_failed_seq_;
  const auto payload = proto::encode_rep_ack(ack);
  std::vector<std::byte> framed(proto::frame_size(payload.size()));
  proto::encode_frame(framed, payload);
  qp_to_primary_->post_write(framed, ack_slot_);
}

}  // namespace hydra::replication
