// Placement arithmetic for the replication ring buffer.
//
// The secondary exposes one large memory chunk; the primary writes framed
// log records into it sequentially and wraps to offset 0 when a record
// would not fit, leaving a 16-byte wrap-marker frame so the consumer knows
// to jump. Producer and consumer run this same deterministic placement
// rule, so no head/tail pointers ever cross the wire.
#pragma once

#include <cstdint>

#include "proto/frame.hpp"

namespace hydra::replication {

/// Flag on a 0-payload frame marking "continue at offset 0".
inline constexpr std::uint16_t kFlagWrap = 1 << 1;

/// Flag on a 0-payload frame asking the secondary to re-send its cumulative
/// acknowledgement. The primary writes one when an expected ack was torn or
/// never arrived (secondary stalled, crashed, or the ack write was lost);
/// it carries no record and does not advance the sequence stream.
inline constexpr std::uint16_t kFlagAckProbe = 1 << 2;

/// Size of the wrap-marker frame.
inline constexpr std::uint64_t kWrapMarkerBytes = proto::frame_size(0);

struct RingCursor {
  std::uint64_t ring_size = 0;
  std::uint64_t offset = 0;

  /// Whether a frame of `framed` bytes placed next would wrap. A data frame
  /// must always leave room for a subsequent wrap marker.
  [[nodiscard]] bool needs_wrap(std::uint64_t framed) const noexcept {
    return offset + framed + kWrapMarkerBytes > ring_size;
  }

  /// Bytes dead at the end of the ring if we wrap now (marker + slack).
  [[nodiscard]] std::uint64_t wrap_waste() const noexcept { return ring_size - offset; }

  void wrap() noexcept { offset = 0; }

  /// Places a frame of `framed` bytes at the current offset and advances.
  std::uint64_t place(std::uint64_t framed) noexcept {
    const std::uint64_t at = offset;
    offset += framed;
    return at;
  }
};

}  // namespace hydra::replication
