// Primary-side replication engine (paper section 5.2).
//
// For every write the primary appends a sequence-numbered log record into
// each secondary's exposed ring via one-sided RDMA Write. Two completion
// policies implement the paper's comparison:
//
//  * kLogRelaxed -- the paper's design: the caller's callback fires when the
//    RDMA Write completes (data durable in the secondary's memory); the
//    secondary's cumulative acknowledgement is only requested every
//    ack_interval records ("several tens") or under ring pressure.
//  * kStrictAck -- the conventional request/acknowledge baseline: every
//    record demands an ack and the callback waits for it.
//
// On an ack reporting a failed record, the primary rolls back to that
// record and resends it and everything after it.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "fabric/fabric.hpp"
#include "proto/messages.hpp"
#include "replication/ring_log.hpp"
#include "replication/secondary.hpp"
#include "sim/actor.hpp"

namespace hydra::replication {

enum class ReplicationMode : std::uint8_t { kNone, kLogRelaxed, kStrictAck };

struct PrimaryConfig {
  ReplicationMode mode = ReplicationMode::kLogRelaxed;
  /// Relaxed mode: how many records between acknowledgement requests.
  std::uint32_t ack_interval = 32;
  /// CPU the owning shard burns per secondary per record (WQE build).
  Duration record_post_cost = 220;
};

class ReplicationPrimary {
 public:
  /// `owner` is the shard actor this engine runs inside: all callbacks are
  /// guarded by its lifetime and all posting happens from its node.
  ReplicationPrimary(sim::Actor& owner, fabric::Fabric& fabric, NodeId node,
                     PrimaryConfig cfg);

  /// Connects a secondary: builds the QP pair, hands the secondary its ack
  /// path, and learns the ring geometry.
  void add_secondary(SecondaryShard& secondary);

  /// Replicates one record to every secondary. `done` fires according to
  /// the configured mode (immediately if there are no secondaries).
  void replicate(proto::RepRecord rec, std::function<void()> done);

  /// Assigns the next sequence number (incremented per replicated record).
  [[nodiscard]] std::uint64_t assign_seq() noexcept { return next_seq_++; }

  [[nodiscard]] std::size_t secondary_count() const noexcept { return links_.size(); }
  [[nodiscard]] const PrimaryConfig& config() const noexcept { return cfg_; }
  /// CPU cost the shard should charge itself per replicated record.
  [[nodiscard]] Duration post_cost() const noexcept {
    return cfg_.record_post_cost * links_.size();
  }

  [[nodiscard]] std::uint64_t resends() const noexcept { return resends_; }
  [[nodiscard]] std::uint64_t acks_received() const noexcept { return acks_received_; }
  [[nodiscard]] std::uint64_t backlogged() const noexcept { return backlogged_; }

 private:
  struct PendingRecord {
    proto::RepRecord rec;
    std::uint64_t footprint = 0;  ///< ring bytes charged until acked
  };

  struct Link {
    SecondaryShard* secondary = nullptr;
    fabric::QueuePair* qp = nullptr;  // primary-side endpoint
    std::uint32_t ring_rkey = 0;
    RingCursor cursor;
    std::uint64_t used_bytes = 0;
    std::uint64_t acked_seq = 0;
    std::uint32_t since_ack_request = 0;
    bool awaiting_space = false;
    std::deque<PendingRecord> pending;
    std::deque<proto::RepRecord> backlog;  // ring-full overflow
    std::deque<std::function<void()>> backlog_completions;
    std::vector<std::byte> ack_buf;
    fabric::MemoryRegion* ack_mr = nullptr;
  };

  /// Writes one record into the link's ring; returns false when the ring
  /// is out of space (caller backlogs).
  bool write_record(Link& link, const proto::RepRecord& rec,
                    std::function<void()> on_write_complete);
  void flush_backlog(Link& link);
  void on_ack(Link& link);
  void resend_from(Link& link, std::uint64_t first_failed_seq);
  void fire_strict_waiters();

  sim::Actor& owner_;
  fabric::Fabric& fabric_;
  NodeId node_;
  PrimaryConfig cfg_;
  std::uint64_t next_seq_ = 1;
  std::vector<std::unique_ptr<Link>> links_;
  /// Strict-mode waiters keyed by sequence number.
  std::map<std::uint64_t, std::function<void()>> strict_waiters_;
  std::uint64_t resends_ = 0;
  std::uint64_t acks_received_ = 0;
  std::uint64_t backlogged_ = 0;
};

}  // namespace hydra::replication
