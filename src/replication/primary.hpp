// Primary-side replication engine (paper section 5.2).
//
// For every write the primary appends a sequence-numbered log record into
// each secondary's exposed ring via one-sided RDMA Write. Two completion
// policies implement the paper's comparison:
//
//  * kLogRelaxed -- the paper's design: the caller's callback fires when the
//    RDMA Write completes (data durable in the secondary's memory); the
//    secondary's cumulative acknowledgement is only requested every
//    ack_interval records ("several tens") or under ring pressure.
//  * kStrictAck -- the conventional request/acknowledge baseline: every
//    record demands an ack and the callback waits for it.
//
// On an ack reporting a failed record, the primary rolls back to that
// record and resends it and everything after it.
//
// Crash handling: a link whose secondary has died is *quarantined* -- it is
// marked dead, every completion owed through it is settled, and it stops
// counting toward strict-ack barriers -- so a replica crash can never wedge
// the primary's write path. Links are never erased (in-flight completion
// lambdas hold pointers into them); quarantine is the terminal state.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "fabric/fabric.hpp"
#include "proto/messages.hpp"
#include "replication/ring_log.hpp"
#include "replication/secondary.hpp"
#include "sim/actor.hpp"

namespace hydra::replication {

enum class ReplicationMode : std::uint8_t { kNone, kLogRelaxed, kStrictAck };

struct PrimaryConfig {
  ReplicationMode mode = ReplicationMode::kLogRelaxed;
  /// Relaxed mode: how many records between acknowledgement requests.
  std::uint32_t ack_interval = 32;
  /// CPU the owning shard burns per secondary per record (WQE build).
  Duration record_post_cost = 220;
  /// Ack-progress deadline: while records are pending and no ack (or write
  /// completion) has arrived for this long, the primary writes an ack-probe
  /// frame to re-solicit the secondary's cumulative ack. This is the
  /// recovery path for torn/lost acks and the liveness probe for stalled
  /// replicas; 0 disables it.
  Duration ack_timeout = 1 * kMillisecond;
  /// Fast-failover liveness pulses (DESIGN.md §14): while positive, the
  /// primary RDMA-Writes an incrementing heartbeat word into each live
  /// secondary's failover arena every pulse_interval, so replicas can run
  /// ring-write suspicion deadlines in the hundreds of microseconds instead
  /// of leaning on the multi-second coordinator session timeout. 0 (the
  /// default) disables pulsing -- no pulse writes, no arena registration --
  /// keeping histories byte-identical to heartbeat-only builds.
  Duration pulse_interval = 0;
};

class ReplicationPrimary {
 public:
  /// `owner` is the shard actor this engine runs inside: all callbacks are
  /// guarded by its lifetime and all posting happens from its node.
  ReplicationPrimary(sim::Actor& owner, fabric::Fabric& fabric, NodeId node,
                     PrimaryConfig cfg);

  /// Connects a secondary: builds the QP pair, hands the secondary its ack
  /// path, and learns the ring geometry.
  void add_secondary(SecondaryShard& secondary);

  /// Quarantines the link carrying `secondary`: settles every completion
  /// owed through it and removes it from strict-ack barriers. Called by
  /// promotion when a replica dies; idempotent and safe for unknown
  /// secondaries.
  void remove_secondary(SecondaryShard& secondary);

  /// Replicates one record to every live secondary. `done` fires according
  /// to the configured mode (immediately if there are no live secondaries).
  void replicate(proto::RepRecord rec, std::function<void()> done);

  /// Assigns the next sequence number (incremented per replicated record).
  [[nodiscard]] std::uint64_t assign_seq() noexcept { return next_seq_++; }

  /// Live (non-quarantined) replicas -- the current replication factor.
  [[nodiscard]] std::size_t secondary_count() const noexcept;
  [[nodiscard]] const PrimaryConfig& config() const noexcept { return cfg_; }
  /// CPU cost the shard should charge itself per replicated record.
  [[nodiscard]] Duration post_cost() const noexcept {
    return cfg_.record_post_cost * secondary_count();
  }

  /// rkeys of the per-link ack landing slots on the primary's node; lets
  /// the chaos harness aim write faults at ack traffic specifically.
  [[nodiscard]] std::vector<std::uint32_t> ack_rkeys() const;

  /// Visits every live (non-quarantined, still-alive) link: the follower
  /// set the hot-key plane may promote readable copies to, together with
  /// the primary-side QP those copies are written through.
  void for_each_live_link(
      const std::function<void(SecondaryShard&, fabric::QueuePair&)>& fn);

  [[nodiscard]] std::uint64_t resends() const noexcept { return resends_; }
  [[nodiscard]] std::uint64_t acks_received() const noexcept { return acks_received_; }
  [[nodiscard]] std::uint64_t backlogged() const noexcept { return backlogged_; }
  [[nodiscard]] std::uint64_t torn_acks() const noexcept { return torn_acks_; }
  [[nodiscard]] std::uint64_t ack_probes() const noexcept { return ack_probes_; }
  [[nodiscard]] std::uint64_t quarantined() const noexcept { return quarantined_; }
  [[nodiscard]] std::uint64_t write_retries() const noexcept { return write_retries_; }
  /// Ring (or pulse) writes that completed kProtectionError against a live
  /// replica: the replica revoked our rkey, i.e. the failover plane fenced
  /// this primary (DESIGN.md §14).
  [[nodiscard]] std::uint64_t fence_errors() const noexcept { return fence_errors_; }

  /// Installs the owner's reaction to being fenced by a replica (a revoked
  /// ring rkey surfacing as kProtectionError). Runs *before* the fenced
  /// link's owed completions would settle, so a self-fencing handler (which
  /// kills the owning shard) guarantees no acknowledgement escapes a fenced
  /// primary.
  void set_fence_handler(std::function<void()> handler) {
    fence_handler_ = std::move(handler);
  }

 private:
  struct PendingRecord {
    proto::RepRecord rec;
    std::uint64_t footprint = 0;  ///< ring bytes charged until acked
  };

  struct Link {
    SecondaryShard* secondary = nullptr;
    fabric::QueuePair* qp = nullptr;  // primary-side endpoint
    std::uint32_t ring_rkey = 0;
    /// Failover-arena rkey on the secondary (pulse word target); 0 when
    /// pulsing is off.
    std::uint32_t arena_rkey = 0;
    RingCursor cursor;
    std::uint64_t used_bytes = 0;
    std::uint64_t acked_seq = 0;
    std::uint32_t since_ack_request = 0;
    bool awaiting_space = false;
    bool dead = false;  ///< quarantined; terminal
    bool ack_timer_armed = false;
    Time last_progress = 0;  ///< last ack or successful write completion
    std::deque<PendingRecord> pending;
    std::deque<proto::RepRecord> backlog;  // ring-full overflow
    std::deque<std::function<void()>> backlog_completions;
    std::vector<std::byte> ack_buf;
    fabric::MemoryRegion* ack_mr = nullptr;
  };

  /// Writes one record into the link's ring; returns false when the ring
  /// is out of space (caller backlogs).
  bool write_record(Link& link, const proto::RepRecord& rec,
                    std::function<void()> on_write_complete);
  /// Writes a zero-payload control frame (wrap already handled inside);
  /// returns false when the ring is out of space.
  bool write_control_frame(Link& link, std::uint16_t flags);
  /// Posts `frame` at ring offset `at` with retransmit-in-place semantics:
  /// a torn or dropped delivery is rewritten to the same offset (the
  /// consumer never advances past an incomplete frame) and `settle` rides
  /// the retry chain, firing on the first successful completion.
  void post_frame(Link& link, std::vector<std::byte> frame, std::uint64_t at,
                  std::uint64_t seq, std::function<void()> settle, int attempt);
  void on_write_error(Link& link, std::vector<std::byte> frame, std::uint64_t at,
                      std::uint64_t seq, std::function<void()> settle, int attempt,
                      fabric::WcStatus status);
  void flush_backlog(Link& link);
  void on_ack(Link& link);
  void resend_from(Link& link, std::uint64_t first_failed_seq);
  void fire_strict_waiters();
  /// Terminal: settles everything owed through the link (see class doc).
  void quarantine(Link& link);
  /// Writes an ack-probe frame asking the secondary to re-acknowledge.
  void solicit_ack(Link& link);
  void arm_ack_timer(Link& link);
  void on_ack_timer(Link& link);
  /// A live replica completed our write kProtectionError: it revoked the
  /// rkey to fence us. Notifies the owner, then quarantines the link.
  void fenced_by_replica(Link& link);
  void arm_pulse_timer();
  void on_pulse_timer();

  sim::Actor& owner_;
  fabric::Fabric& fabric_;
  NodeId node_;
  PrimaryConfig cfg_;
  std::uint64_t next_seq_ = 1;
  std::vector<std::unique_ptr<Link>> links_;
  /// Strict-mode waiters keyed by sequence number.
  std::map<std::uint64_t, std::function<void()>> strict_waiters_;
  std::uint64_t resends_ = 0;
  std::uint64_t acks_received_ = 0;
  std::uint64_t backlogged_ = 0;
  std::uint64_t torn_acks_ = 0;
  std::uint64_t ack_probes_ = 0;
  std::uint64_t quarantined_ = 0;
  std::uint64_t write_retries_ = 0;
  std::uint64_t fence_errors_ = 0;
  std::function<void()> fence_handler_;
  bool pulse_armed_ = false;
  std::uint64_t pulse_seq_ = 0;
  /// Pulse payload buffer (outlives any in-flight pulse write).
  std::vector<std::byte> pulse_buf_ = std::vector<std::byte>(8);
};

}  // namespace hydra::replication
