// Secondary shard: the replication consumer (paper section 5.2).
//
// A secondary is dedicated to one primary: it serves no client requests
// ("single-writer zero-reader"), exposes a large ring-buffer memory region
// into which the primary RDMA-Writes log records, and runs a dedicated
// polling loop that merges records into its own KVStore replica. It
// acknowledges cumulatively when the primary asks, reports the first failed
// record so the primary can roll back and resend, and discards every record
// after a failure until the resend arrives.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/store.hpp"
#include "fabric/fabric.hpp"
#include "proto/messages.hpp"
#include "replication/ring_log.hpp"
#include "sim/actor.hpp"

namespace hydra::replication {

struct SecondaryConfig {
  ShardId primary_shard = 0;
  std::uint32_t ring_bytes = 1 << 20;
  core::StoreConfig store;
  /// CPU per record merge: decode, allocate, index swing on the replica --
  /// comparable to the primary's write path.
  Duration apply_base = 1200;
  double per_value_byte = 0.12;
  Duration poll_backoff = 100;   ///< idle sleep, like the primary's loop
  Duration ack_post_cost = 300;  ///< building + posting the ack write
};

class SecondaryShard : public sim::Actor {
 public:
  SecondaryShard(sim::Scheduler& sched, fabric::Fabric& fabric, NodeId node,
                 SecondaryConfig cfg);

  /// Wire-up performed by the primary side: the QP this secondary uses to
  /// RDMA-Write acknowledgements back, and where they should land.
  void attach_primary(fabric::QueuePair* qp_to_primary, fabric::RemoteAddr ack_slot);

  [[nodiscard]] NodeId node() const noexcept { return node_; }
  [[nodiscard]] fabric::MemoryRegion* ring_mr() noexcept { return ring_mr_; }

  /// Hot-key promo slab (DESIGN.md §12): `slots` fixed-size item slots the
  /// primary RDMA-Writes promoted copies into and clients RDMA-Read from.
  /// Registered lazily on first call -- a cluster that never promotes keeps
  /// its rkey sequence (and thus its event history) byte-identical to a
  /// pre-promotion build. Geometry is fixed by the first call.
  fabric::MemoryRegion* promo_slab(std::uint32_t slot_bytes, std::uint32_t slots);

  /// Failover arena layout (DESIGN.md §14): one 8-byte pulse word the
  /// primary RDMA-Writes liveness heartbeats into, then one 8-byte ballot
  /// word promotion candidates CAS their tokens into.
  static constexpr std::uint64_t kPulseOffset = 0;
  static constexpr std::uint64_t kBallotOffset = 8;
  static constexpr std::uint32_t kFailoverArenaBytes = 16;

  /// Fast-failover arena (DESIGN.md §14). Registered lazily on first call --
  /// same rkey-determinism rule as promo_slab(): a cluster that never turns
  /// fast failover on registers nothing and keeps histories byte-identical.
  fabric::MemoryRegion* failover_arena();

  /// Arms the ring-write suspicion deadline: if neither a ring write nor an
  /// arena pulse lands for `deadline`, `on_suspect` fires exactly once (the
  /// flag re-arms on reset_stream(), i.e. on attachment to a new primary).
  void enable_suspicion(Duration deadline, std::function<void(SecondaryShard&)> on_suspect);
  [[nodiscard]] bool suspected() const noexcept { return suspected_; }

  [[nodiscard]] std::uint64_t applied_seq() const noexcept { return applied_seq_; }
  [[nodiscard]] std::uint64_t applied_records() const noexcept { return applied_records_; }
  [[nodiscard]] std::uint64_t discarded_records() const noexcept { return discarded_; }
  [[nodiscard]] core::KVStore& store() noexcept { return *store_; }

  /// Failure injection: the next `n` records fail to apply (tests the
  /// stop-acking / discard / rollback-resend protocol).
  void fail_next(int n) { fail_budget_ += n; }

  /// Crash recovery: synchronously replays every complete frame still
  /// parked in the ring. Promotion calls this before release_store() so
  /// records the primary acked (write completed) microseconds before dying
  /// are not lost merely because the poll loop had not reached them yet.
  /// Stops at the first incomplete frame -- anything beyond a torn write
  /// was never acknowledged and is the client's retry to re-drive.
  void drain_ring();

  /// Promotion support: hands the replica store to a new primary shard.
  std::unique_ptr<core::KVStore> release_store();

  /// Re-attachment to a *new* primary after failover: the fresh primary
  /// numbers records from 1 and writes the ring from offset 0 again.
  void reset_stream();

  void kill() override;

 private:
  void on_ring_write();
  /// Any primary-originated write landed: reset the suspicion deadline.
  void note_liveness();
  void suspicion_tick();
  void arm_suspicion_tick();
  void poll_loop();
  /// Processes one complete frame at the cursor; returns CPU charged.
  Duration consume_frame(std::span<std::byte> frame);
  void send_ack();

  fabric::Fabric& fabric_;
  NodeId node_;
  SecondaryConfig cfg_;
  std::unique_ptr<core::KVStore> store_;
  std::vector<std::byte> ring_;
  fabric::MemoryRegion* ring_mr_;
  /// Hot-key promo slab; empty/null until promo_slab() is first called.
  std::vector<std::byte> promo_;
  fabric::MemoryRegion* promo_mr_ = nullptr;
  /// Fast-failover arena; empty/null until failover_arena() is first called.
  std::vector<std::byte> arena_;
  fabric::MemoryRegion* arena_mr_ = nullptr;
  RingCursor cursor_;

  /// Suspicion state (fast failover); deadline 0 = disarmed.
  Duration suspicion_deadline_ = 0;
  std::function<void(SecondaryShard&)> on_suspect_;
  Time last_signal_ = 0;
  bool suspected_ = false;
  bool suspicion_tick_armed_ = false;

  fabric::QueuePair* qp_to_primary_ = nullptr;
  fabric::RemoteAddr ack_slot_{};

  std::uint64_t applied_seq_ = 0;
  std::uint64_t first_failed_seq_ = 0;  // 0 = healthy
  std::uint64_t applied_records_ = 0;
  std::uint64_t discarded_ = 0;
  int fail_budget_ = 0;
  bool polling_ = false;
};

}  // namespace hydra::replication
