// Secondary shard: the replication consumer (paper section 5.2).
//
// A secondary is dedicated to one primary: it serves no client requests
// ("single-writer zero-reader"), exposes a large ring-buffer memory region
// into which the primary RDMA-Writes log records, and runs a dedicated
// polling loop that merges records into its own KVStore replica. It
// acknowledges cumulatively when the primary asks, reports the first failed
// record so the primary can roll back and resend, and discards every record
// after a failure until the resend arrives.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/store.hpp"
#include "fabric/fabric.hpp"
#include "proto/messages.hpp"
#include "replication/ring_log.hpp"
#include "sim/actor.hpp"

namespace hydra::replication {

struct SecondaryConfig {
  ShardId primary_shard = 0;
  std::uint32_t ring_bytes = 1 << 20;
  core::StoreConfig store;
  /// CPU per record merge: decode, allocate, index swing on the replica --
  /// comparable to the primary's write path.
  Duration apply_base = 1200;
  double per_value_byte = 0.12;
  Duration poll_backoff = 100;   ///< idle sleep, like the primary's loop
  Duration ack_post_cost = 300;  ///< building + posting the ack write
};

class SecondaryShard : public sim::Actor {
 public:
  SecondaryShard(sim::Scheduler& sched, fabric::Fabric& fabric, NodeId node,
                 SecondaryConfig cfg);

  /// Wire-up performed by the primary side: the QP this secondary uses to
  /// RDMA-Write acknowledgements back, and where they should land.
  void attach_primary(fabric::QueuePair* qp_to_primary, fabric::RemoteAddr ack_slot);

  [[nodiscard]] NodeId node() const noexcept { return node_; }
  [[nodiscard]] fabric::MemoryRegion* ring_mr() noexcept { return ring_mr_; }

  /// Hot-key promo slab (DESIGN.md §12): `slots` fixed-size item slots the
  /// primary RDMA-Writes promoted copies into and clients RDMA-Read from.
  /// Registered lazily on first call -- a cluster that never promotes keeps
  /// its rkey sequence (and thus its event history) byte-identical to a
  /// pre-promotion build. Geometry is fixed by the first call.
  fabric::MemoryRegion* promo_slab(std::uint32_t slot_bytes, std::uint32_t slots);
  [[nodiscard]] std::uint64_t applied_seq() const noexcept { return applied_seq_; }
  [[nodiscard]] std::uint64_t applied_records() const noexcept { return applied_records_; }
  [[nodiscard]] std::uint64_t discarded_records() const noexcept { return discarded_; }
  [[nodiscard]] core::KVStore& store() noexcept { return *store_; }

  /// Failure injection: the next `n` records fail to apply (tests the
  /// stop-acking / discard / rollback-resend protocol).
  void fail_next(int n) { fail_budget_ += n; }

  /// Crash recovery: synchronously replays every complete frame still
  /// parked in the ring. Promotion calls this before release_store() so
  /// records the primary acked (write completed) microseconds before dying
  /// are not lost merely because the poll loop had not reached them yet.
  /// Stops at the first incomplete frame -- anything beyond a torn write
  /// was never acknowledged and is the client's retry to re-drive.
  void drain_ring();

  /// Promotion support: hands the replica store to a new primary shard.
  std::unique_ptr<core::KVStore> release_store();

  /// Re-attachment to a *new* primary after failover: the fresh primary
  /// numbers records from 1 and writes the ring from offset 0 again.
  void reset_stream();

  void kill() override;

 private:
  void on_ring_write();
  void poll_loop();
  /// Processes one complete frame at the cursor; returns CPU charged.
  Duration consume_frame(std::span<std::byte> frame);
  void send_ack();

  fabric::Fabric& fabric_;
  NodeId node_;
  SecondaryConfig cfg_;
  std::unique_ptr<core::KVStore> store_;
  std::vector<std::byte> ring_;
  fabric::MemoryRegion* ring_mr_;
  /// Hot-key promo slab; empty/null until promo_slab() is first called.
  std::vector<std::byte> promo_;
  fabric::MemoryRegion* promo_mr_ = nullptr;
  RingCursor cursor_;

  fabric::QueuePair* qp_to_primary_ = nullptr;
  fabric::RemoteAddr ack_slot_{};

  std::uint64_t applied_seq_ = 0;
  std::uint64_t first_failed_seq_ = 0;  // 0 = healthy
  std::uint64_t applied_records_ = 0;
  std::uint64_t discarded_ = 0;
  int fail_budget_ = 0;
  bool polling_ = false;
};

}  // namespace hydra::replication
