// Call Data Record processing (paper section 2.3).
//
// Stream processing elements (PEs) handle call records under stringent
// requirements: millions of accesses per second across the cluster with
// sub-hundreds-of-microseconds latency. Each record costs two subscriber
// lookups (caller, callee) and one usage update against HydraDB.
#pragma once

#include <cstdint>

#include "common/histogram.hpp"
#include "hydradb/hydra_cluster.hpp"

namespace hydra::apps {

struct CdrConfig {
  int processing_elements = 16;
  std::uint64_t subscriber_count = 100'000;
  int records_per_pe = 500;
  std::size_t subscriber_record_len = 96;  ///< protobuf-style packed profile
  Duration pe_compute = 1 * kMicrosecond;  ///< rating / mediation logic
  std::uint64_t seed = 31;
};

struct CdrResult {
  std::uint64_t records = 0;
  double records_per_sec = 0.0;
  double accesses_per_sec = 0.0;  ///< 3 store accesses per record
  double avg_record_latency_us = 0.0;
  Duration p99_record_latency = 0;
};

/// Preloads subscriber profiles into the cluster.
void load_subscribers(db::HydraCluster& cluster, const CdrConfig& cfg);

/// Runs all PEs to completion and reports stream throughput and per-record
/// latency (lookup caller + lookup callee + update usage).
CdrResult run_cdr(db::HydraCluster& cluster, const CdrConfig& cfg);

}  // namespace hydra::apps
