// G2 Sensemaking driver (paper section 2.2 / Figure 3).
//
// Engines ingest observations; resolving one observation issues a burst of
// entity reads plus an assertion write against the backing store. The
// experiment compares how many engines each backend sustains: a
// transactional in-memory database serializes statements through its lock
// and the TCP stack, while HydraDB serves the same access pattern over
// RDMA with per-shard parallelism.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "hydradb/hydra_cluster.hpp"
#include "sim/mutex.hpp"

namespace hydra::apps {

struct G2Config {
  int engines = 4;
  int observations_per_engine = 300;
  int reads_per_observation = 3;
  int writes_per_observation = 1;
  std::uint64_t entity_count = 20'000;
  std::size_t value_len = 64;
  Duration engine_compute = 3 * kMicrosecond;  ///< assertion-making CPU
  std::uint64_t seed = 11;
};

/// Abstract entity store so the same driver runs against both backends.
class G2Backend {
 public:
  using Done = std::function<void()>;
  virtual ~G2Backend() = default;
  virtual void load(const std::string& key, const std::string& value) = 0;
  virtual void read_entity(int engine, const std::string& key, Done done) = 0;
  virtual void write_assertion(int engine, const std::string& key, const std::string& value,
                               Done done) = 0;
};

/// Transactional in-memory database model (the paper's DB2-style baseline):
/// every statement crosses kernel TCP and serializes through the engine's
/// lock manager.
class InMemoryDbBackend final : public G2Backend {
 public:
  InMemoryDbBackend(sim::Scheduler& sched, fabric::Fabric& fabric, NodeId db_node,
                    std::vector<NodeId> engine_nodes);
  void load(const std::string& key, const std::string& value) override;
  void read_entity(int engine, const std::string& key, Done done) override;
  void write_assertion(int engine, const std::string& key, const std::string& value,
                       Done done) override;

 private:
  void statement(int engine, Duration hold, Done done);

  sim::Scheduler& sched_;
  fabric::Fabric& fabric_;
  NodeId db_node_;
  std::vector<NodeId> engine_nodes_;
  sim::Actor actor_;
  sim::SimMutex lock_manager_;
  std::map<std::string, std::string> table_;
};

/// HydraDB as the complementary real-time store.
class HydraDbBackend final : public G2Backend {
 public:
  explicit HydraDbBackend(db::HydraCluster& cluster) : cluster_(cluster) {}
  void load(const std::string& key, const std::string& value) override {
    cluster_.direct_load(key, value);
  }
  void read_entity(int engine, const std::string& key, Done done) override {
    auto* c = cluster_.clients()[static_cast<std::size_t>(engine) % cluster_.clients().size()];
    c->get(key, [done = std::move(done)](Status, std::string_view) { done(); });
  }
  void write_assertion(int engine, const std::string& key, const std::string& value,
                       Done done) override {
    auto* c = cluster_.clients()[static_cast<std::size_t>(engine) % cluster_.clients().size()];
    c->put(key, value, [done = std::move(done)](Status) { done(); });
  }

 private:
  db::HydraCluster& cluster_;
};

struct G2Result {
  double observations_per_sec = 0.0;
  Duration elapsed = 0;
};

/// Runs all engines to completion; returns aggregate observation throughput.
G2Result run_g2(sim::Scheduler& sched, G2Backend& backend, const G2Config& cfg);

/// Preloads the entity table.
void load_entities(G2Backend& backend, const G2Config& cfg);

}  // namespace hydra::apps
