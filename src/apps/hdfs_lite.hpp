// Mini-HDFS: an in-memory block store served over kernel TCP.
//
// Figure 2's baseline is *in-memory* HDFS -- disks are out of the picture;
// what remains is the TCP/IP stack and the datanode's per-request CPU,
// which is exactly what the HydraDB cache layer removes. Blocks are served
// as single framed messages whose size rides the TCP bandwidth model.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "fabric/fabric.hpp"
#include "sim/actor.hpp"

namespace hydra::apps {

struct HdfsConfig {
  NodeId datanode = 0;
  Duration request_cpu = 15 * kMicrosecond;  ///< namenode lookup + datanode setup
  double per_byte_cpu = 0.3;                 ///< checksums, JVM buffer copies
};

class HdfsLite {
 public:
  using ReadCb = std::function<void(std::uint32_t block_bytes)>;

  HdfsLite(sim::Scheduler& sched, fabric::Fabric& fabric, HdfsConfig cfg);

  /// Registers a block (content is synthetic; only the size matters).
  void put_block(std::uint64_t block_id, std::uint32_t bytes) { blocks_[block_id] = bytes; }
  [[nodiscard]] bool has_block(std::uint64_t block_id) const { return blocks_.contains(block_id); }

  /// Reads a block from `reader_node`; the callback fires when the last
  /// byte has crossed the (TCP) wire.
  void read_block(NodeId reader_node, std::uint64_t block_id, ReadCb cb);

  [[nodiscard]] std::uint64_t reads_served() const noexcept { return reads_; }

 private:
  struct Channel {
    fabric::TcpConn* to_server = nullptr;
    fabric::TcpConn* from_server = nullptr;
    /// Outstanding reads on this stream; TCP ordering makes FIFO matching
    /// correct.
    std::deque<ReadCb> pending;
  };

  Channel& channel_for(NodeId reader);

  sim::Scheduler& sched_;
  fabric::Fabric& fabric_;
  HdfsConfig cfg_;
  sim::Actor datanode_;
  Time server_busy_until_ = 0;  ///< datanode CPU serialization
  std::map<std::uint64_t, std::uint32_t> blocks_;
  std::map<NodeId, Channel> channels_;
  std::uint64_t reads_ = 0;
};

}  // namespace hydra::apps
