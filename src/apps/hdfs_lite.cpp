#include "apps/hdfs_lite.hpp"

#include <algorithm>

namespace hydra::apps {

HdfsLite::HdfsLite(sim::Scheduler& sched, fabric::Fabric& fabric, HdfsConfig cfg)
    : sched_(sched), fabric_(fabric), cfg_(cfg), datanode_(sched, "hdfs-datanode") {}

HdfsLite::Channel& HdfsLite::channel_for(NodeId reader) {
  auto it = channels_.find(reader);
  if (it != channels_.end()) return it->second;
  auto [client_end, server_end] = fabric_.tcp_connect(reader, cfg_.datanode);
  auto& ch = channels_[reader];
  ch.to_server = client_end;
  ch.from_server = server_end;
  Channel* raw = &ch;
  // Completion = the block's last byte crossing the reader's stack: the
  // client end's receive handler fires exactly then.
  client_end->set_handler(datanode_.guard([raw](std::vector<std::byte> msg) {
    if (raw->pending.empty()) return;
    ReadCb cb = std::move(raw->pending.front());
    raw->pending.pop_front();
    cb(static_cast<std::uint32_t>(msg.size()));
  }));
  return ch;
}

void HdfsLite::read_block(NodeId reader_node, std::uint64_t block_id, ReadCb cb) {
  Channel& ch = channel_for(reader_node);
  auto it = blocks_.find(block_id);
  const std::uint32_t bytes = it == blocks_.end() ? 0 : it->second;
  ch.pending.push_back(std::move(cb));

  // Request travels reader -> datanode over TCP (tiny message).
  const Time request_arrives =
      sched_.now() + fabric_.cost().tcp_kernel_cost + fabric_.cost().tcp_latency;
  // Datanode CPU (namenode lookup, checksums, buffer copies) serializes
  // across concurrent readers; the response then streams back over the
  // datanode's shared port at TCP bandwidth.
  const Duration serve_cpu =
      cfg_.request_cpu + static_cast<Duration>(cfg_.per_byte_cpu * static_cast<double>(bytes));
  const Time serve_start = std::max(request_arrives, server_busy_until_);
  server_busy_until_ = serve_start + serve_cpu;
  ++reads_;

  fabric::TcpConn* reply = ch.from_server;
  sched_.at(server_busy_until_, datanode_.guard([reply, bytes] {
    std::vector<std::byte> block(bytes);
    reply->send(block);
  }));
}

}  // namespace hydra::apps
