#include "apps/g2.hpp"

#include "common/keygen.hpp"
#include "common/rng.hpp"

namespace hydra::apps {
namespace {
std::string entity_key(std::uint64_t id) { return "entity/" + format_key(id, 12); }
}  // namespace

InMemoryDbBackend::InMemoryDbBackend(sim::Scheduler& sched, fabric::Fabric& fabric,
                                     NodeId db_node, std::vector<NodeId> engine_nodes)
    : sched_(sched),
      fabric_(fabric),
      db_node_(db_node),
      engine_nodes_(std::move(engine_nodes)),
      actor_(sched, "inmem-db"),
      lock_manager_(sched, /*handoff_cost=*/150) {}

void InMemoryDbBackend::load(const std::string& key, const std::string& value) {
  table_[key] = value;
}

void InMemoryDbBackend::statement(int engine, Duration hold, Done done) {
  (void)engine;
  // Statement path: client library + kernel TCP there and back, plus the
  // lock-serialized execution inside the database engine.
  const Duration network_rtt =
      2 * (fabric_.cost().tcp_kernel_cost + fabric_.cost().tcp_latency);
  lock_manager_.lock(actor_.guard([this, hold, network_rtt, done = std::move(done)] {
    actor_.schedule_after(hold, [this, network_rtt, done = std::move(done)] {
      lock_manager_.unlock();
      sched_.after(network_rtt, std::move(done));
    });
  }));
}

void InMemoryDbBackend::read_entity(int engine, const std::string& key, Done done) {
  (void)table_[key];  // content itself is not the bottleneck
  // SELECT: SQL parse + plan + index + row fetch inside the engine.
  statement(engine, /*hold=*/25 * kMicrosecond, std::move(done));
}

void InMemoryDbBackend::write_assertion(int engine, const std::string& key,
                                        const std::string& value, Done done) {
  table_[key] = value;
  // INSERT: parse + lock upgrade + write-ahead log on the commit path.
  statement(engine, /*hold=*/40 * kMicrosecond, std::move(done));
}

void load_entities(G2Backend& backend, const G2Config& cfg) {
  for (std::uint64_t e = 0; e < cfg.entity_count; ++e) {
    backend.load(entity_key(e), synth_value(e, cfg.value_len));
  }
}

G2Result run_g2(sim::Scheduler& sched, G2Backend& backend, const G2Config& cfg) {
  const Time start = sched.now();
  int remaining = cfg.engines;

  struct Engine {
    int observations_left;
    int phase = 0;  // reads issued within the current observation
    Xoshiro256 rng{0};
  };
  auto engines = std::make_shared<std::vector<Engine>>();
  for (int e = 0; e < cfg.engines; ++e) {
    Engine eng;
    eng.observations_left = cfg.observations_per_engine;
    eng.rng = Xoshiro256(cfg.seed * 7919 + static_cast<std::uint64_t>(e));
    engines->push_back(eng);
  }

  // Observation state machine: R reads -> W writes -> compute -> next.
  std::function<void(int)> step = [&, engines](int e) {
    Engine& eng = (*engines)[static_cast<std::size_t>(e)];
    if (eng.observations_left == 0) {
      --remaining;
      return;
    }
    if (eng.phase < cfg.reads_per_observation) {
      ++eng.phase;
      backend.read_entity(e, entity_key(eng.rng.below(cfg.entity_count)), [&, e] { step(e); });
      return;
    }
    if (eng.phase < cfg.reads_per_observation + cfg.writes_per_observation) {
      ++eng.phase;
      const std::uint64_t id = eng.rng.below(cfg.entity_count);
      backend.write_assertion(e, entity_key(id), synth_value(id ^ 0xA5, cfg.value_len),
                              [&, e] { step(e); });
      return;
    }
    eng.phase = 0;
    --eng.observations_left;
    sched.after(cfg.engine_compute, [&, e] { step(e); });
  };
  for (int e = 0; e < cfg.engines; ++e) step(e);

  while (remaining > 0 && sched.step()) {
  }

  G2Result result;
  result.elapsed = sched.now() - start;
  const double total_obs =
      static_cast<double>(cfg.engines) * static_cast<double>(cfg.observations_per_engine);
  if (result.elapsed > 0) {
    result.observations_per_sec = total_obs * 1e9 / static_cast<double>(result.elapsed);
  }
  return result;
}

}  // namespace hydra::apps
