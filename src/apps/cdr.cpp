#include "apps/cdr.hpp"

#include <functional>
#include <memory>

#include "common/keygen.hpp"
#include "common/rng.hpp"

namespace hydra::apps {
namespace {
std::string subscriber_key(std::uint64_t id) { return "msisdn/" + format_key(id, 12); }
}  // namespace

void load_subscribers(db::HydraCluster& cluster, const CdrConfig& cfg) {
  for (std::uint64_t s = 0; s < cfg.subscriber_count; ++s) {
    cluster.direct_load(subscriber_key(s), synth_value(s, cfg.subscriber_record_len));
  }
}

CdrResult run_cdr(db::HydraCluster& cluster, const CdrConfig& cfg) {
  sim::Scheduler& sched = cluster.scheduler();
  auto& clients = cluster.clients();
  const Time start = sched.now();
  int remaining = cfg.processing_elements;
  LatencyHistogram record_latency;

  struct Pe {
    int records_left;
    int phase = 0;
    Time record_start = 0;
    std::uint64_t caller = 0;
    std::uint64_t callee = 0;
    Xoshiro256 rng{0};
    client::Client* client;
  };
  auto pes = std::make_shared<std::vector<Pe>>();
  for (int p = 0; p < cfg.processing_elements; ++p) {
    Pe pe;
    pe.records_left = cfg.records_per_pe;
    pe.rng = Xoshiro256(cfg.seed * 104729 + static_cast<std::uint64_t>(p));
    pe.client = clients[static_cast<std::size_t>(p) % clients.size()];
    pes->push_back(pe);
  }

  std::function<void(int)> step = [&, pes](int p) {
    Pe& pe = (*pes)[static_cast<std::size_t>(p)];
    switch (pe.phase) {
      case 0: {  // new record: pick parties, look up the caller
        if (pe.records_left == 0) {
          --remaining;
          return;
        }
        pe.record_start = sched.now();
        pe.caller = pe.rng.below(cfg.subscriber_count);
        pe.callee = pe.rng.below(cfg.subscriber_count);
        pe.phase = 1;
        pe.client->get(subscriber_key(pe.caller),
                       [&, p](Status, std::string_view) { step(p); });
        return;
      }
      case 1:  // look up the callee
        pe.phase = 2;
        pe.client->get(subscriber_key(pe.callee),
                       [&, p](Status, std::string_view) { step(p); });
        return;
      case 2:  // update the caller's usage counters
        pe.phase = 3;
        pe.client->update(subscriber_key(pe.caller),
                          synth_value(pe.caller ^ sched.now(), cfg.subscriber_record_len),
                          [&, p](Status) { step(p); });
        return;
      default:  // rating/mediation compute, then the next record
        record_latency.record(sched.now() - pe.record_start);
        --pe.records_left;
        pe.phase = 0;
        sched.after(cfg.pe_compute, [&, p] { step(p); });
        return;
    }
  };
  for (int p = 0; p < cfg.processing_elements; ++p) step(p);

  while (remaining > 0 && sched.step()) {
  }

  CdrResult result;
  result.records = record_latency.count();
  const Duration elapsed = sched.now() - start;
  if (elapsed > 0) {
    result.records_per_sec =
        static_cast<double>(result.records) * 1e9 / static_cast<double>(elapsed);
    result.accesses_per_sec = result.records_per_sec * 3.0;
  }
  result.avg_record_latency_us = record_latency.mean() / 1000.0;
  result.p99_record_latency = record_latency.percentile(99);
  return result;
}

}  // namespace hydra::apps
