#include "apps/mapreduce.hpp"

#include <cstdio>

#include "common/keygen.hpp"

namespace hydra::apps {

std::vector<JobSpec> paper_job_mix() {
  std::vector<JobSpec> jobs;
  // Hadoop, I/O-dominated: the cache layer's best case (paper: up to 17.9x).
  jobs.push_back(JobSpec{"TestDFSIO-read", 8, 4, 4u << 20, 0.0, 100 * kMicrosecond, 1});
  jobs.push_back(JobSpec{"DataLoading", 8, 4, 4u << 20, 0.005, 100 * kMicrosecond, 1});
  // Hadoop with moderate compute.
  jobs.push_back(JobSpec{"WordCount", 8, 3, 4u << 20, 0.5, 200 * kMicrosecond, 1});
  jobs.push_back(JobSpec{"Grep", 8, 3, 4u << 20, 0.35, 200 * kMicrosecond, 1});
  // Spark-style: compute dominates and the working set is small, so the
  // I/O path is a minor fraction (paper: 4-41% gains).
  jobs.push_back(JobSpec{"Spark-PageRank", 4, 1, 4u << 20, 4.0, 500 * kMicrosecond, 1});
  jobs.push_back(JobSpec{"Spark-KMeans", 4, 1, 4u << 20, 5.0, 500 * kMicrosecond, 1});
  return jobs;
}

std::string chunk_key(std::uint64_t block_id, std::uint32_t chunk) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "blk%08llx.%04x",
                static_cast<unsigned long long>(block_id), chunk);
  return buf;
}

void load_blocks_into_hdfs(HdfsLite& hdfs, const JobSpec& job) {
  const std::uint64_t blocks =
      static_cast<std::uint64_t>(job.tasks) * static_cast<std::uint64_t>(job.blocks_per_task);
  for (std::uint64_t b = 0; b < blocks; ++b) hdfs.put_block(b, job.block_bytes);
}

void load_blocks_into_hydradb(db::HydraCluster& cluster, const JobSpec& job,
                              std::uint32_t chunk_bytes) {
  const std::uint64_t blocks =
      static_cast<std::uint64_t>(job.tasks) * static_cast<std::uint64_t>(job.blocks_per_task);
  const std::uint32_t chunks = (job.block_bytes + chunk_bytes - 1) / chunk_bytes;
  const std::string chunk_value(chunk_bytes, 'd');
  for (std::uint64_t b = 0; b < blocks; ++b) {
    for (std::uint32_t c = 0; c < chunks; ++c) {
      cluster.direct_load(chunk_key(b, c), chunk_value);
    }
  }
}

Duration run_job_on_hdfs(sim::Scheduler& sched, HdfsLite& hdfs,
                         const std::vector<NodeId>& task_nodes, const JobSpec& job) {
  const Time start = sched.now();
  int remaining = job.tasks;

  // Each task is a little state machine: read block -> compute -> repeat.
  struct Task {
    int blocks_left;
    int passes_left;
    std::uint64_t next_block;
    std::uint64_t first_block;
    NodeId node;
  };
  auto tasks = std::make_shared<std::vector<Task>>();
  for (int t = 0; t < job.tasks; ++t) {
    Task task;
    task.blocks_left = job.blocks_per_task;
    task.passes_left = job.passes;
    task.first_block = static_cast<std::uint64_t>(t) * static_cast<std::uint64_t>(job.blocks_per_task);
    task.next_block = task.first_block;
    task.node = task_nodes[static_cast<std::size_t>(t) % task_nodes.size()];
    tasks->push_back(task);
  }

  std::function<void(int)> step = [&, tasks](int t) {
    Task& task = (*tasks)[static_cast<std::size_t>(t)];
    if (task.blocks_left == 0) {
      if (--task.passes_left == 0) {
        --remaining;
        return;
      }
      task.blocks_left = job.blocks_per_task;
      task.next_block = task.first_block;
    }
    const std::uint64_t block = task.next_block++;
    --task.blocks_left;
    hdfs.read_block(task.node, block, [&, t](std::uint32_t bytes) {
      const auto compute = static_cast<Duration>(job.compute_per_byte * static_cast<double>(bytes)) +
                           job.task_overhead / std::max(1, job.blocks_per_task);
      sched.after(compute, [&, t] { step(t); });
    });
  };
  for (int t = 0; t < job.tasks; ++t) step(t);

  while (remaining > 0 && sched.step()) {
  }
  return sched.now() - start;
}

Duration run_job_on_hydradb(db::HydraCluster& cluster, const JobSpec& job,
                            std::uint32_t chunk_bytes) {
  sim::Scheduler& sched = cluster.scheduler();
  auto& clients = cluster.clients();
  const Time start = sched.now();
  int remaining = job.tasks;
  const std::uint32_t chunks_per_block = (job.block_bytes + chunk_bytes - 1) / chunk_bytes;

  struct Task {
    int blocks_left;
    int passes_left;
    std::uint64_t next_block;
    std::uint64_t first_block;
    std::uint32_t next_chunk = 0;
    client::Client* client;
  };
  auto tasks = std::make_shared<std::vector<Task>>();
  for (int t = 0; t < job.tasks; ++t) {
    Task task;
    task.blocks_left = job.blocks_per_task;
    task.passes_left = job.passes;
    task.first_block = static_cast<std::uint64_t>(t) * static_cast<std::uint64_t>(job.blocks_per_task);
    task.next_block = task.first_block;
    task.client = clients[static_cast<std::size_t>(t) % clients.size()];
    tasks->push_back(task);
  }

  std::function<void(int)> step = [&, tasks, chunks_per_block](int t) {
    Task& task = (*tasks)[static_cast<std::size_t>(t)];
    if (task.next_chunk == chunks_per_block) {
      // Block finished: charge the task's compute over it.
      task.next_chunk = 0;
      ++task.next_block;
      if (--task.blocks_left == 0) {
        if (--task.passes_left == 0) {
          const auto compute =
              static_cast<Duration>(job.compute_per_byte * static_cast<double>(job.block_bytes));
          sched.after(compute, [&] { --remaining; });
          return;
        }
        task.blocks_left = job.blocks_per_task;
        task.next_block = task.first_block;
      }
      const auto compute =
          static_cast<Duration>(job.compute_per_byte * static_cast<double>(job.block_bytes)) +
          job.task_overhead / std::max(1, job.blocks_per_task);
      sched.after(compute, [&, t] { step(t); });
      return;
    }
    const std::string key = chunk_key(task.next_block, task.next_chunk++);
    task.client->get(key, [&, t](Status, std::string_view) { step(t); });
  };
  for (int t = 0; t < job.tasks; ++t) step(t);

  while (remaining > 0 && sched.step()) {
  }
  return sched.now() - start;
}

}  // namespace hydra::apps
