// MapReduce-style job driver for the Figure 2 experiment.
//
// A job is a set of tasks, each reading input blocks and spending CPU per
// byte. Input comes either from mini-HDFS over TCP (the in-memory-HDFS
// baseline) or from a HydraDB cluster acting as the cache layer, where each
// HDFS block was pre-chunked into 4 MB key-value pairs (section 2.1 / 6).
#pragma once

#include <cstdint>
#include <string>

#include "apps/hdfs_lite.hpp"
#include "hydradb/hydra_cluster.hpp"

namespace hydra::apps {

struct JobSpec {
  std::string name;
  int tasks = 8;
  int blocks_per_task = 4;
  std::uint32_t block_bytes = 4 * 1024 * 1024;
  /// CPU time a task spends per input byte (0 for pure-I/O jobs like
  /// TestDFSIO; larger for compute-heavy Spark-style jobs).
  double compute_per_byte = 0.0;
  /// Fixed per-task compute (job setup, sort buffers, ...).
  Duration task_overhead = 200 * kMicrosecond;
  /// How many times the input set is re-read (iterative Spark jobs read
  /// hot data repeatedly -- where the cache layer shines most).
  int passes = 1;
};

/// Paper-motivated job mix: I/O-dominated Hadoop jobs through
/// compute-dominated Spark analytics.
std::vector<JobSpec> paper_job_mix();

/// Runs the job against mini-HDFS; returns the virtual makespan.
Duration run_job_on_hdfs(sim::Scheduler& sched, HdfsLite& hdfs,
                         const std::vector<NodeId>& task_nodes, const JobSpec& job);

/// Runs the job against a HydraDB cache cluster pre-loaded with the same
/// blocks chunked into `chunk_bytes` values; returns the virtual makespan.
Duration run_job_on_hydradb(db::HydraCluster& cluster, const JobSpec& job,
                            std::uint32_t chunk_bytes = 4 * 1024 * 1024);

/// Pre-loads the job's input blocks.
void load_blocks_into_hdfs(HdfsLite& hdfs, const JobSpec& job);
void load_blocks_into_hydradb(db::HydraCluster& cluster, const JobSpec& job,
                              std::uint32_t chunk_bytes = 4 * 1024 * 1024);

/// Key for chunk `c` of block `b` in the cache layer.
std::string chunk_key(std::uint64_t block_id, std::uint32_t chunk);

}  // namespace hydra::apps
