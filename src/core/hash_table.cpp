#include "core/hash_table.hpp"

#include <bit>
#include <cstring>

#include "common/hash.hpp"
#include "core/item.hpp"

namespace hydra::core {

CompactHashTable::CompactHashTable(Arena& arena, std::size_t min_buckets)
    : arena_(arena) {
  std::size_t n = 1;
  while (n < min_buckets) n <<= 1;
  buckets_.resize(n);
  mask_ = n - 1;
}

std::string_view CompactHashTable::key_at(std::uint64_t item_offset) const noexcept {
  ++full_key_compares_;
  return ItemView(const_cast<std::byte*>(arena_.at(item_offset))).key();
}

bool CompactHashTable::locate(std::uint64_t hash, std::string_view key,
                              Bucket** bucket, int* slot) const {
  const std::uint16_t sig = key_signature(hash);
  const Bucket* b = root_for(hash);
  while (true) {
    ++cacheline_reads_;
    const std::uint8_t occ = occupancy(*b);
    for (int i = 0; i < kSlotsPerBucket; ++i) {
      if ((occ & (1u << i)) == 0) continue;
      const std::uint64_t s = b->slots[i];
      if (slot_sig(s) != sig) continue;
      if (key_at(slot_offset(s)) == key) {
        *bucket = const_cast<Bucket*>(b);
        *slot = i;
        return true;
      }
    }
    const std::uint64_t next = overflow_of(*b);
    if (next == kNoOverflow) return false;
    b = overflow_bucket(next);
  }
}

std::uint64_t CompactHashTable::find(std::uint64_t hash, std::string_view key) const {
  ++lookups_;
  Bucket* b = nullptr;
  int slot = 0;
  if (!locate(hash, key, &b, &slot)) return kNullOffset;
  return slot_offset(b->slots[slot]);
}

CompactHashTable::InsertResult CompactHashTable::insert(std::uint64_t hash,
                                                        std::string_view key,
                                                        std::uint64_t item_offset) {
  ++lookups_;
  const std::uint16_t sig = key_signature(hash);
  Bucket* b = root_for(hash);
  Bucket* free_bucket = nullptr;
  int free_slot = -1;
  Bucket* last = b;
  while (true) {
    ++cacheline_reads_;
    const std::uint8_t occ = occupancy(*b);
    for (int i = 0; i < kSlotsPerBucket; ++i) {
      if ((occ & (1u << i)) == 0) {
        if (free_bucket == nullptr) {
          free_bucket = b;
          free_slot = i;
        }
        continue;
      }
      const std::uint64_t s = b->slots[i];
      if (slot_sig(s) == sig && key_at(slot_offset(s)) == key) {
        return InsertResult::kDuplicate;
      }
    }
    const std::uint64_t next = overflow_of(*b);
    if (next == kNoOverflow) break;
    last = b = overflow_bucket(next);
  }

  if (free_bucket == nullptr) {
    const std::uint64_t off = arena_.allocate(sizeof(Bucket));
    if (off == kNullOffset) return InsertResult::kNoMemory;
    Bucket* fresh = overflow_bucket(off);
    fresh->header = kEmptyHeader;
    std::memset(fresh->slots, 0, sizeof(fresh->slots));
    set_overflow(*last, off);
    ++overflow_buckets_;
    free_bucket = fresh;
    free_slot = 0;
  }
  free_bucket->slots[free_slot] = encode_slot(sig, item_offset);
  set_occupancy_bit(*free_bucket, free_slot, true);
  ++size_;
  return InsertResult::kInserted;
}

std::uint64_t CompactHashTable::replace(std::uint64_t hash, std::string_view key,
                                        std::uint64_t new_offset) {
  ++lookups_;
  Bucket* b = nullptr;
  int slot = 0;
  if (!locate(hash, key, &b, &slot)) return kNullOffset;
  const std::uint64_t old = slot_offset(b->slots[slot]);
  b->slots[slot] = encode_slot(key_signature(hash), new_offset);
  return old;
}

std::uint64_t CompactHashTable::erase(std::uint64_t hash, std::string_view key) {
  ++lookups_;
  Bucket* b = nullptr;
  int slot = 0;
  if (!locate(hash, key, &b, &slot)) return kNullOffset;
  const std::uint64_t old = slot_offset(b->slots[slot]);
  set_occupancy_bit(*b, slot, false);
  b->slots[slot] = 0;
  --size_;
  compact_chain(root_for(hash));
  return old;
}

void CompactHashTable::compact_chain(Bucket* root) {
  // Collect the chain (root + overflow buckets with their arena offsets).
  std::vector<Bucket*> chain{root};
  std::vector<std::uint64_t> offsets{kNoOverflow};
  for (std::uint64_t off = overflow_of(*root); off != kNoOverflow;) {
    Bucket* b = overflow_bucket(off);
    chain.push_back(b);
    offsets.push_back(off);
    off = overflow_of(*b);
  }
  if (chain.size() == 1) return;

  // Pull entries from the tail of the chain into free slots closer to the
  // root, so lookups touch fewer cache lines.
  for (std::size_t tail = chain.size() - 1; tail >= 1; --tail) {
    Bucket& src = *chain[tail];
    for (int i = 0; i < kSlotsPerBucket; ++i) {
      if ((occupancy(src) & (1u << i)) == 0) continue;
      bool moved = false;
      for (std::size_t dst = 0; dst < tail && !moved; ++dst) {
        Bucket& d = *chain[dst];
        for (int j = 0; j < kSlotsPerBucket; ++j) {
          if ((occupancy(d) & (1u << j)) != 0) continue;
          d.slots[j] = src.slots[i];
          set_occupancy_bit(d, j, true);
          set_occupancy_bit(src, i, false);
          src.slots[i] = 0;
          moved = true;
          break;
        }
      }
    }
  }

  // Free empty overflow buckets from the tail; they merge back into the
  // arena ("merges multiple buckets together after the remove operations").
  while (chain.size() > 1 && occupancy(*chain.back()) == 0) {
    arena_.deallocate(offsets.back(), sizeof(Bucket));
    chain.pop_back();
    offsets.pop_back();
    set_overflow(*chain.back(), kNoOverflow);
    --overflow_buckets_;
  }
}

}  // namespace hydra::core
