// The per-shard storage engine: compact hash table + slab arena + guardian
// words + lease-based deferred reclamation (paper sections 4.1.3 and 4.2.3).
//
// The store is deliberately single-threaded: HydraDB's exclusive-partition
// model means one shard thread owns one store outright, so there is no
// internal locking. Virtual time flows in from the caller (the shard actor)
// so lease arithmetic is simulator-driven and deterministic.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <span>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "core/arena.hpp"
#include "core/hash_table.hpp"
#include "core/item.hpp"
#include "index/btree.hpp"

namespace hydra::core {

struct StoreConfig {
  std::size_t arena_bytes = 64ull << 20;
  std::size_t min_buckets = 1 << 16;
  /// Lease term bounds (paper: "varies from 1 second to 64 seconds
  /// according to the approximate popularity of such key").
  Duration min_lease = 1 * kSecond;
  Duration max_lease = 64 * kSecond;
  std::size_t max_key_len = 64 * 1024;
  std::size_t max_val_len = 4ull << 20;
  /// Maintain a B+-tree over the user keys for ordered range scans
  /// (DESIGN.md §13). Default off: with the index disabled the store (and
  /// every layer above it) behaves byte-identically to pre-index builds.
  bool ordered_index = false;
  std::size_t index_fanout = 32;
};

struct StoreStats {
  std::uint64_t inserts = 0;
  std::uint64_t updates = 0;
  std::uint64_t gets = 0;
  std::uint64_t get_misses = 0;
  std::uint64_t removes = 0;
  std::uint64_t oom_failures = 0;
  std::uint64_t reclaimed_items = 0;
};

/// What a server-handled GET returns: enough for the response message *and*
/// for minting a remote pointer (offset/len within the registered arena).
struct GetView {
  std::uint64_t offset = kNullOffset;
  std::uint32_t total_len = 0;
  std::uint64_t version = 0;
  std::uint64_t lease_expiry = 0;
  std::string_view value;
};

class KVStore {
 public:
  explicit KVStore(StoreConfig cfg = {});

  KVStore(const KVStore&) = delete;
  KVStore& operator=(const KVStore&) = delete;

  /// Looks up `key`. When `grant_lease`, bumps popularity and extends the
  /// item's lease from `now` (the server-aware GET path, section 4.2.3).
  Result<GetView> get(std::string_view key, Time now, bool grant_lease = true);

  /// Fails with kExists when the key is present.
  Status insert(std::string_view key, std::string_view value, Time now);
  /// Fails with kNotFound when absent; otherwise an out-of-place update.
  Status update(std::string_view key, std::string_view value, Time now);
  /// Upsert: insert or out-of-place update.
  Status put(std::string_view key, std::string_view value, Time now);
  /// Flips the guardian and defers reclamation until the lease expires.
  Status remove(std::string_view key, Time now);

  /// Extends the lease of `key` from `now` (client renewal messages).
  Status renew_lease(std::string_view key, Time now);

  /// Frees dead items whose lease has expired. Called by the shard's
  /// background reclaimer actor. Returns the number of items freed.
  std::size_t collect_garbage(Time now);

  /// Earliest virtual time at which collect_garbage will free something,
  /// or 0 when the deferred queue is empty (lets the reclaimer sleep).
  [[nodiscard]] Time next_reclaim_due() const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return table_.size(); }
  [[nodiscard]] std::size_t deferred_count() const noexcept { return deferred_.size(); }
  [[nodiscard]] Arena& arena() noexcept { return arena_; }
  [[nodiscard]] CompactHashTable& table() noexcept { return table_; }
  [[nodiscard]] const StoreStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const StoreConfig& config() const noexcept { return config_; }

  /// The ordered index, or nullptr when `StoreConfig::ordered_index` is off.
  [[nodiscard]] index::OrderedIndex* index() noexcept { return index_.get(); }
  [[nodiscard]] const index::OrderedIndex* index() const noexcept { return index_.get(); }

  /// Value of the live item at `offset`. Only valid for offsets the table /
  /// ordered index currently hold (live items are never moved; updates swap
  /// in a fresh item and retire the old offset).
  [[nodiscard]] std::string_view value_at(std::uint64_t offset) {
    return ItemView(arena_.at(offset)).value();
  }

  /// Popularity-scaled lease term: 1s for cold keys doubling up to 64s.
  [[nodiscard]] Duration lease_term(std::uint32_t access_count) const noexcept;

  /// Deterministic walk over every live item: `fn(key, value, version)`.
  /// Table entries always reference live items (updates and removes swap
  /// them out before retiring), so no liveness filtering is needed. Used by
  /// failover to bootstrap a replacement replica's store.
  template <typename Fn>
  void for_each(Fn&& fn) {
    table_.for_each_offset([&](std::uint64_t offset) {
      ItemView view(arena_.at(offset));
      fn(view.key(), view.value(), view.header().version);
    });
  }

 private:
  struct Deferred {
    Time free_after;
    std::uint64_t offset;
    std::uint32_t size;
    bool operator>(const Deferred& o) const noexcept { return free_after > o.free_after; }
  };

  /// Allocates + initializes a fresh item; kNullOffset on OOM.
  std::uint64_t make_item(std::string_view key, std::string_view value,
                          std::uint64_t version, Time now);
  void retire(std::uint64_t offset, Time now);

  StoreConfig config_;
  Arena arena_;
  CompactHashTable table_;
  StoreStats stats_;
  std::priority_queue<Deferred, std::vector<Deferred>, std::greater<>> deferred_;
  std::unique_ptr<index::OrderedIndex> index_;
};

}  // namespace hydra::core
