#include "core/store.hpp"

#include <algorithm>
#include <bit>

#include "common/hash.hpp"

namespace hydra::core {

KVStore::KVStore(StoreConfig cfg)
    : config_(cfg), arena_(cfg.arena_bytes), table_(arena_, cfg.min_buckets) {
  if (config_.ordered_index) {
    index_ = std::make_unique<index::OrderedIndex>(config_.index_fanout);
  }
}

Duration KVStore::lease_term(std::uint32_t access_count) const noexcept {
  // Doubling schedule: count 1 -> min, 2..3 -> 2*min, 4..7 -> 4*min, ...
  const unsigned log2c = access_count == 0 ? 0u : static_cast<unsigned>(std::bit_width(access_count) - 1);
  const Duration term = config_.min_lease << std::min(log2c, 6u);
  return std::min(term, config_.max_lease);
}

std::uint64_t KVStore::make_item(std::string_view key, std::string_view value,
                                 std::uint64_t version, Time now) {
  const std::size_t size = item_size(key.size(), value.size());
  const std::uint64_t offset = arena_.allocate(size);
  if (offset == kNullOffset) {
    ++stats_.oom_failures;
    return kNullOffset;
  }
  ItemView item(arena_.at(offset));
  item.initialize(key, value, version, now + lease_term(1));
  return offset;
}

void KVStore::retire(std::uint64_t offset, Time now) {
  ItemView old(arena_.at(offset));
  old.set_guardian(kGuardianDead);
  // The memory stays intact until every lease that may cover a cached
  // remote pointer has lapsed; only then is reuse safe.
  const Time free_after = std::max<Time>(old.header().lease_expiry, now);
  deferred_.push(Deferred{free_after, offset, static_cast<std::uint32_t>(old.total_size())});
}

Result<GetView> KVStore::get(std::string_view key, Time now, bool grant_lease) {
  ++stats_.gets;
  const std::uint64_t hash = hash_key(key);
  const std::uint64_t offset = table_.find(hash, key);
  if (offset == kNullOffset) {
    ++stats_.get_misses;
    return Status::kNotFound;
  }
  ItemView item(arena_.at(offset));
  ItemHeader& h = item.header();
  if (grant_lease) {
    if (h.access_count != ~std::uint32_t{0}) ++h.access_count;
    h.lease_expiry = std::max<Time>(h.lease_expiry, now + lease_term(h.access_count));
  }
  GetView view;
  view.offset = offset;
  view.total_len = static_cast<std::uint32_t>(item.total_size());
  view.version = h.version;
  view.lease_expiry = h.lease_expiry;
  view.value = item.value();
  return view;
}

Status KVStore::insert(std::string_view key, std::string_view value, Time now) {
  if (key.empty() || key.size() > config_.max_key_len || value.size() > config_.max_val_len) {
    return Status::kInvalidArgument;
  }
  const std::uint64_t hash = hash_key(key);
  if (table_.find(hash, key) != kNullOffset) return Status::kExists;
  const std::uint64_t offset = make_item(key, value, /*version=*/1, now);
  if (offset == kNullOffset) return Status::kOutOfMemory;
  switch (table_.insert(hash, key, offset)) {
    case CompactHashTable::InsertResult::kInserted:
      if (index_) index_->insert_or_assign(key, offset);
      ++stats_.inserts;
      return Status::kOk;
    case CompactHashTable::InsertResult::kDuplicate:
      arena_.deallocate(offset, item_size(key.size(), value.size()));
      return Status::kExists;
    case CompactHashTable::InsertResult::kNoMemory:
      arena_.deallocate(offset, item_size(key.size(), value.size()));
      ++stats_.oom_failures;
      return Status::kOutOfMemory;
  }
  return Status::kInvalidArgument;  // unreachable
}

Status KVStore::update(std::string_view key, std::string_view value, Time now) {
  if (key.empty() || key.size() > config_.max_key_len || value.size() > config_.max_val_len) {
    return Status::kInvalidArgument;
  }
  const std::uint64_t hash = hash_key(key);
  const std::uint64_t old_offset = table_.find(hash, key);
  if (old_offset == kNullOffset) return Status::kNotFound;

  ItemView old(arena_.at(old_offset));
  const std::uint64_t new_version = old.header().version + 1;
  const std::uint32_t popularity = old.header().access_count;

  // Out-of-place: build the new item first, then flip the old guardian and
  // swing the index. A concurrent RDMA Read sees either the old live item,
  // the old dead item, or (via a fresh pointer) the new one -- never a
  // half-written value.
  const std::uint64_t new_offset = make_item(key, value, new_version, now);
  if (new_offset == kNullOffset) return Status::kOutOfMemory;
  ItemView fresh(arena_.at(new_offset));
  fresh.header().access_count = popularity;  // popularity survives updates
  fresh.header().lease_expiry = now + lease_term(popularity);

  retire(old_offset, now);
  table_.replace(hash, key, new_offset);
  if (index_) index_->insert_or_assign(key, new_offset);
  ++stats_.updates;
  return Status::kOk;
}

Status KVStore::put(std::string_view key, std::string_view value, Time now) {
  const Status up = update(key, value, now);
  if (up == Status::kNotFound) return insert(key, value, now);
  return up;
}

Status KVStore::remove(std::string_view key, Time now) {
  const std::uint64_t hash = hash_key(key);
  const std::uint64_t offset = table_.erase(hash, key);
  if (offset == kNullOffset) return Status::kNotFound;
  retire(offset, now);
  if (index_) index_->erase(key);
  ++stats_.removes;
  return Status::kOk;
}

Status KVStore::renew_lease(std::string_view key, Time now) {
  const std::uint64_t hash = hash_key(key);
  const std::uint64_t offset = table_.find(hash, key);
  if (offset == kNullOffset) return Status::kNotFound;
  ItemView item(arena_.at(offset));
  ItemHeader& h = item.header();
  h.lease_expiry = std::max<Time>(h.lease_expiry, now + lease_term(h.access_count));
  return Status::kOk;
}

std::size_t KVStore::collect_garbage(Time now) {
  std::size_t freed = 0;
  while (!deferred_.empty() && deferred_.top().free_after <= now) {
    const Deferred d = deferred_.top();
    deferred_.pop();
    arena_.deallocate(d.offset, d.size);
    ++freed;
    ++stats_.reclaimed_items;
  }
  return freed;
}

Time KVStore::next_reclaim_due() const noexcept {
  return deferred_.empty() ? 0 : deferred_.top().free_after;
}

}  // namespace hydra::core
