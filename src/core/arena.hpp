// Per-shard slab arena.
//
// Each shard owns one contiguous memory arena that is registered with the
// fabric as a single memory region, which is what makes every item in it
// addressable by client RDMA Reads (remote pointer = rkey + 48-bit offset).
// Allocation is slab-style: sizes round up to power-of-two classes with an
// intrusive freelist per class, so allocate/free are O(1) and freed blocks
// are reused without external fragmentation growth.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/item.hpp"

namespace hydra::core {

class Arena {
 public:
  /// Smallest size class; also the alignment of every allocation.
  static constexpr std::size_t kMinClass = 64;
  static constexpr std::size_t kMaxClass = 8 * 1024 * 1024;
  static constexpr int kNumClasses = 18;  // 64 B .. 8 MiB

  explicit Arena(std::size_t capacity);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocates a block of at least `size` bytes; kNullOffset when exhausted.
  [[nodiscard]] std::uint64_t allocate(std::size_t size);

  /// Returns a block obtained from allocate(size) (same `size`).
  void deallocate(std::uint64_t offset, std::size_t size) noexcept;

  [[nodiscard]] std::byte* at(std::uint64_t offset) noexcept { return memory_.data() + offset; }
  [[nodiscard]] const std::byte* at(std::uint64_t offset) const noexcept {
    return memory_.data() + offset;
  }

  /// The whole arena, for memory-region registration.
  [[nodiscard]] std::span<std::byte> bytes() noexcept { return memory_; }

  [[nodiscard]] std::size_t capacity() const noexcept { return memory_.size(); }
  [[nodiscard]] std::size_t bytes_in_use() const noexcept { return in_use_; }
  [[nodiscard]] std::uint64_t allocations() const noexcept { return allocations_; }
  [[nodiscard]] std::uint64_t failed_allocations() const noexcept { return failed_; }

  /// Size-class index for an allocation size (exposed for tests/benches).
  static int class_for(std::size_t size) noexcept;
  static std::size_t class_size(int cls) noexcept { return kMinClass << cls; }

 private:
  std::vector<std::byte> memory_;
  std::size_t bump_ = 0;
  std::size_t in_use_ = 0;
  std::uint64_t allocations_ = 0;
  std::uint64_t failed_ = 0;
  /// Head offset of the intrusive freelist per class (kNullOffset = empty).
  std::array<std::uint64_t, kNumClasses> free_heads_;
};

}  // namespace hydra::core
