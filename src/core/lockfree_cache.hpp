// Lock-free fixed-capacity cache for remote-pointer sharing (paper §4.2.4).
//
// The paper shares one remote-pointer cache among all client processes on a
// machine through a lock-free hash table (Michael, SPAA'02) to avoid locking
// when many clients hit the same pointer. We implement the same contract --
// wait-free readers, lock-free writers, no mutexes anywhere -- with a
// structure better matched to cache semantics: open addressing with
// per-slot seqlocks and bounded probing, where a full probe window evicts
// (it is a cache; dropping an entry only costs a future re-fetch).
//
// This is a *real* concurrent structure (std::atomic, tested with threads),
// even though inside the simulator it is only exercised single-threaded.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "common/hash.hpp"

namespace hydra::core {

template <typename Value>
class LockFreeCache {
  static_assert(std::is_trivially_copyable_v<Value>,
                "seqlock protection requires trivially copyable values");

 public:
  /// Capacity rounds up to a power of two. Keys must be non-zero (0 marks
  /// an empty slot); hash your keys first -- a 64-bit hash is never 0 in
  /// practice, and mix64(k)|1 is an easy guarantee if needed.
  explicit LockFreeCache(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_ = std::vector<Slot>(cap);
    mask_ = cap - 1;
  }

  /// Inserts or refreshes key -> value. May evict a colliding entry when
  /// the probe window is full. Lock-free.
  void put(std::uint64_t key, const Value& value) {
    const std::size_t start = mix64(key) & mask_;
    // Pass 1: refresh an existing entry or claim an empty slot.
    for (std::size_t i = 0; i < kProbeWindow; ++i) {
      Slot& s = slots_[(start + i) & mask_];
      std::uint64_t k = s.key.load(std::memory_order_acquire);
      if (k == key) {
        write_slot(s, key, value);
        return;
      }
      if (k == 0 &&
          s.key.compare_exchange_strong(k, key, std::memory_order_acq_rel)) {
        write_slot(s, key, value);
        size_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      if (k == key) {  // raced: someone else claimed it for our key
        write_slot(s, key, value);
        return;
      }
    }
    // Pass 2: evict within the window (slot chosen by key for determinism).
    Slot& victim = slots_[(start + (key % kProbeWindow)) & mask_];
    begin_write(victim);
    victim.key.store(key, std::memory_order_relaxed);
    store_value(victim, value);
    end_write(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Wait-free lookup; returns true and fills *out on hit.
  bool get(std::uint64_t key, Value* out) const {
    const std::size_t start = mix64(key) & mask_;
    for (std::size_t i = 0; i < kProbeWindow; ++i) {
      const Slot& s = slots_[(start + i) & mask_];
      const std::uint32_t v1 = s.version.load(std::memory_order_acquire);
      if (v1 & 1u) continue;  // mid-write; treat as miss rather than spin
      if (s.key.load(std::memory_order_acquire) != key) continue;
      Value copy = load_value(s);  // may tear; validated by the version re-check
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.version.load(std::memory_order_acquire) == v1 &&
          s.key.load(std::memory_order_relaxed) == key) {
        *out = copy;
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  /// Invalidates key if present (e.g. after observing a dead guardian).
  void erase(std::uint64_t key) {
    const std::size_t start = mix64(key) & mask_;
    for (std::size_t i = 0; i < kProbeWindow; ++i) {
      Slot& s = slots_[(start + i) & mask_];
      if (s.key.load(std::memory_order_acquire) != key) continue;
      begin_write(s);
      s.key.store(0, std::memory_order_relaxed);
      end_write(s);
      size_.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
  }

  /// Sweeps every occupied slot and erases entries for which
  /// `pred(key, value)` returns true; returns how many were dropped. Linear
  /// in capacity -- meant for rare maintenance (e.g. evicting pointers
  /// stamped with a superseded routing epoch), never the data path. Entries
  /// mid-write by a concurrent writer are skipped (they are being refreshed,
  /// so the writer owns their fate).
  template <typename Pred>
  std::size_t erase_if(Pred&& pred) {
    std::size_t erased = 0;
    for (Slot& s : slots_) {
      const std::uint32_t v1 = s.version.load(std::memory_order_acquire);
      if (v1 & 1u) continue;  // writer active; skip
      const std::uint64_t k = s.key.load(std::memory_order_acquire);
      if (k == 0) continue;
      Value copy = load_value(s);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.version.load(std::memory_order_acquire) != v1 ||
          s.key.load(std::memory_order_relaxed) != k) {
        continue;  // torn read; the concurrent writer decides
      }
      if (!pred(k, copy)) continue;
      begin_write(s);
      if (s.key.load(std::memory_order_relaxed) == k) {
        s.key.store(0, std::memory_order_relaxed);
        size_.fetch_sub(1, std::memory_order_relaxed);
        ++erased;
      }
      end_write(s);
    }
    return erased;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }
  [[nodiscard]] std::size_t size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kProbeWindow = 16;

  // The value bytes are staged through relaxed per-word atomics: a reader
  // validating against the seqlock version may still observe a torn value
  // mid-copy (and discard it), but each word access is atomic, so the race
  // window carries no undefined behavior and TSan stays quiet.
  static constexpr std::size_t kValueWords = (sizeof(Value) + 7) / 8;

  struct Slot {
    std::atomic<std::uint64_t> key{0};
    std::atomic<std::uint32_t> version{0};  // seqlock: odd while writing
    std::array<std::atomic<std::uint64_t>, kValueWords> value{};
  };

  static void store_value(Slot& s, const Value& v) noexcept {
    std::uint64_t words[kValueWords] = {};
    std::memcpy(words, &v, sizeof(Value));
    for (std::size_t i = 0; i < kValueWords; ++i) {
      s.value[i].store(words[i], std::memory_order_relaxed);
    }
  }
  static Value load_value(const Slot& s) noexcept {
    std::uint64_t words[kValueWords];
    for (std::size_t i = 0; i < kValueWords; ++i) {
      words[i] = s.value[i].load(std::memory_order_relaxed);
    }
    Value v;
    std::memcpy(&v, words, sizeof(Value));
    return v;
  }

  static void begin_write(Slot& s) noexcept {
    // Spin only against a concurrent writer of the same slot; readers never
    // hold the seqlock, so this is lock-free in the progress-guarantee sense
    // for the system as a whole.
    while (true) {
      std::uint32_t v = s.version.load(std::memory_order_relaxed);
      if ((v & 1u) == 0 &&
          s.version.compare_exchange_weak(v, v + 1, std::memory_order_acq_rel)) {
        return;
      }
    }
  }
  static void end_write(Slot& s) noexcept {
    s.version.fetch_add(1, std::memory_order_release);
  }
  static void write_slot(Slot& s, std::uint64_t key, const Value& value) noexcept {
    begin_write(s);
    s.key.store(key, std::memory_order_relaxed);
    store_value(s, value);
    end_write(s);
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::size_t> size_{0};
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace hydra::core
