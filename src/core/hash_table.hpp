// The cache-friendly compact hash table (paper section 4.1.3, Figure 6).
//
// The main branch is a contiguous array of 64-byte buckets, one cache line
// each. A bucket holds an 8-byte header (7 occupancy bits + 56-bit link to a
// dynamically generated overflow bucket) and 7 slots of 8 bytes: a 16-bit
// key signature plus a 48-bit arena offset of the actual item. A lookup
// resolves in a single cache-line read unless the signature matches (then
// one item dereference for the full-key compare) or the bucket overflowed.
// After removes, overflow chains are compacted and empty overflow buckets
// are merged back into the arena.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/arena.hpp"

namespace hydra::core {

class CompactHashTable {
 public:
  static constexpr int kSlotsPerBucket = 7;

  /// `min_buckets` rounds up to a power of two. Overflow buckets are
  /// allocated from `arena` (64-byte blocks), which must outlive the table.
  CompactHashTable(Arena& arena, std::size_t min_buckets);

  CompactHashTable(const CompactHashTable&) = delete;
  CompactHashTable& operator=(const CompactHashTable&) = delete;

  /// Returns the item offset for `key`, or kNullOffset.
  [[nodiscard]] std::uint64_t find(std::uint64_t hash, std::string_view key) const;

  enum class InsertResult : std::uint8_t { kInserted, kDuplicate, kNoMemory };

  /// Inserts key->offset; kDuplicate/kNoMemory leave the table unchanged
  /// (kNoMemory means the arena could not supply an overflow bucket).
  InsertResult insert(std::uint64_t hash, std::string_view key, std::uint64_t item_offset);

  /// Swaps the offset stored for `key` (out-of-place update); returns the
  /// previous offset, or kNullOffset if the key is absent (nothing stored).
  std::uint64_t replace(std::uint64_t hash, std::string_view key, std::uint64_t new_offset);

  /// Removes the entry; returns the previous offset or kNullOffset.
  std::uint64_t erase(std::uint64_t hash, std::string_view key);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept { return buckets_.size(); }
  [[nodiscard]] std::uint64_t overflow_buckets() const noexcept { return overflow_buckets_; }

  /// Deterministic full-table walk: invokes `fn(item_offset)` for every
  /// occupied slot, in bucket order (main array ascending, then each
  /// overflow chain in link order). The order depends only on the table's
  /// contents, so replaying it reproduces identical state -- which is what
  /// failover state transfer needs.
  template <typename Fn>
  void for_each_offset(Fn&& fn) const {
    for (const Bucket& root : buckets_) {
      const Bucket* b = &root;
      while (true) {
        for (int s = 0; s < kSlotsPerBucket; ++s) {
          if ((occupancy(*b) >> s) & 1) fn(slot_offset(b->slots[s]));
        }
        const std::uint64_t off = overflow_of(*b);
        if (off == kNoOverflow) break;
        b = overflow_bucket(off);
      }
    }
  }

  // Probe-cost telemetry for the cache-friendliness benches.
  [[nodiscard]] std::uint64_t lookups() const noexcept { return lookups_; }
  [[nodiscard]] std::uint64_t cacheline_reads() const noexcept { return cacheline_reads_; }
  [[nodiscard]] std::uint64_t full_key_compares() const noexcept { return full_key_compares_; }

 private:
  struct Bucket {
    std::uint64_t header = kEmptyHeader;
    std::uint64_t slots[kSlotsPerBucket] = {};
  };
  static_assert(sizeof(Bucket) == 64, "bucket must fill one cache line");

  static constexpr std::uint64_t kNoOverflow = (1ULL << 56) - 1;
  static constexpr std::uint64_t kEmptyHeader = kNoOverflow << 8;

  static std::uint8_t occupancy(const Bucket& b) noexcept {
    return static_cast<std::uint8_t>(b.header & 0x7F);
  }
  static std::uint64_t overflow_of(const Bucket& b) noexcept { return b.header >> 8; }
  static void set_occupancy_bit(Bucket& b, int slot, bool on) noexcept {
    if (on) {
      b.header |= (1ULL << slot);
    } else {
      b.header &= ~(1ULL << slot);
    }
  }
  static void set_overflow(Bucket& b, std::uint64_t off) noexcept {
    b.header = (b.header & 0xFFULL) | (off << 8);
  }
  static std::uint64_t encode_slot(std::uint16_t sig, std::uint64_t offset) noexcept {
    return (offset << 16) | sig;
  }
  static std::uint16_t slot_sig(std::uint64_t slot) noexcept {
    return static_cast<std::uint16_t>(slot & 0xFFFF);
  }
  static std::uint64_t slot_offset(std::uint64_t slot) noexcept { return slot >> 16; }

  [[nodiscard]] Bucket* root_for(std::uint64_t hash) noexcept {
    return &buckets_[hash & mask_];
  }
  [[nodiscard]] const Bucket* root_for(std::uint64_t hash) const noexcept {
    return &buckets_[hash & mask_];
  }
  [[nodiscard]] Bucket* overflow_bucket(std::uint64_t off) const noexcept {
    return reinterpret_cast<Bucket*>(arena_.at(off));
  }

  [[nodiscard]] std::string_view key_at(std::uint64_t item_offset) const noexcept;

  /// Locates key; on hit sets *bucket/*slot. Returns false on miss.
  bool locate(std::uint64_t hash, std::string_view key, Bucket** bucket, int* slot) const;

  /// Re-packs a chain after a remove: pulls entries forward into free slots
  /// and returns empty overflow buckets to the arena.
  void compact_chain(Bucket* root);

  Arena& arena_;
  std::vector<Bucket> buckets_;
  std::uint64_t mask_;
  std::size_t size_ = 0;
  std::uint64_t overflow_buckets_ = 0;
  mutable std::uint64_t lookups_ = 0;
  mutable std::uint64_t cacheline_reads_ = 0;
  mutable std::uint64_t full_key_compares_ = 0;
};

}  // namespace hydra::core
