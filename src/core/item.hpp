// On-arena key-value item layout.
//
// Items are the unit of RDMA Read: a client that holds a remote pointer
// fetches the *entire* item (header + key + value + guardian word) in one
// read and validates it locally (paper sections 4.2.2/4.2.3). The layout is
// therefore fully self-describing:
//
//   [ItemHeader][key bytes][value bytes][pad to 8][guardian u64]
//
// The guardian word is flipped from LIVE to DEAD -- never modified in place
// otherwise -- when the item is superseded by an out-of-place update or
// removed. Because RDMA adapters commit a read atomically relative to our
// event granularity, a fetched guardian==LIVE proves the bytes belong to a
// current version.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

#include "common/types.hpp"

namespace hydra::core {

inline constexpr std::uint64_t kGuardianLive = 0x4C49564544415441ULL;  // "LIVEDATA"
inline constexpr std::uint64_t kGuardianDead = 0xDEADDEADDEADDEADULL;

/// 48-bit arena offsets; this sentinel means "no item".
inline constexpr std::uint64_t kNullOffset = (1ULL << 48) - 1;

struct ItemHeader {
  std::uint32_t key_len = 0;
  std::uint32_t val_len = 0;
  std::uint64_t version = 0;       ///< bumped on every out-of-place update
  std::uint64_t lease_expiry = 0;  ///< virtual-time ns; RDMA Read valid until
  std::uint32_t access_count = 0;  ///< popularity proxy feeding the lease term
  std::uint32_t flags = 0;
};
static_assert(sizeof(ItemHeader) == 32);

constexpr std::size_t align8(std::size_t n) noexcept { return (n + 7) & ~std::size_t{7}; }

/// Total on-arena footprint of an item with the given key/value sizes.
constexpr std::size_t item_size(std::size_t key_len, std::size_t val_len) noexcept {
  return align8(sizeof(ItemHeader) + key_len + val_len) + sizeof(std::uint64_t);
}

/// Accessor over raw item bytes (in the arena, or in a client's read buffer).
class ItemView {
 public:
  explicit ItemView(std::byte* bytes) noexcept : bytes_(bytes) {}

  [[nodiscard]] ItemHeader& header() const noexcept {
    return *reinterpret_cast<ItemHeader*>(bytes_);
  }
  [[nodiscard]] std::string_view key() const noexcept {
    return {reinterpret_cast<const char*>(bytes_ + sizeof(ItemHeader)), header().key_len};
  }
  [[nodiscard]] std::string_view value() const noexcept {
    return {reinterpret_cast<const char*>(bytes_ + sizeof(ItemHeader) + header().key_len),
            header().val_len};
  }
  [[nodiscard]] std::size_t total_size() const noexcept {
    return item_size(header().key_len, header().val_len);
  }
  [[nodiscard]] std::size_t guardian_offset() const noexcept {
    return total_size() - sizeof(std::uint64_t);
  }

  [[nodiscard]] std::uint64_t guardian() const noexcept {
    // Acquire pairs with the release in set_guardian: on real hardware the
    // NIC may DMA-read concurrently with the flip.
    return std::atomic_ref<std::uint64_t>(
               *reinterpret_cast<std::uint64_t*>(bytes_ + guardian_offset()))
        .load(std::memory_order_acquire);
  }
  void set_guardian(std::uint64_t g) const noexcept {
    std::atomic_ref<std::uint64_t>(
        *reinterpret_cast<std::uint64_t*>(bytes_ + guardian_offset()))
        .store(g, std::memory_order_release);
  }
  [[nodiscard]] bool live() const noexcept { return guardian() == kGuardianLive; }

  /// Writes a fresh item into `bytes_`. Caller guarantees capacity.
  void initialize(std::string_view key, std::string_view value,
                  std::uint64_t version, std::uint64_t lease_expiry) const noexcept {
    ItemHeader& h = header();
    h.key_len = static_cast<std::uint32_t>(key.size());
    h.val_len = static_cast<std::uint32_t>(value.size());
    h.version = version;
    h.lease_expiry = lease_expiry;
    h.access_count = 1;
    h.flags = 0;
    std::memcpy(bytes_ + sizeof(ItemHeader), key.data(), key.size());
    std::memcpy(bytes_ + sizeof(ItemHeader) + key.size(), value.data(), value.size());
    // Zero the alignment pad so item images compare deterministically.
    const std::size_t payload_end = sizeof(ItemHeader) + key.size() + value.size();
    const std::size_t pad = guardian_offset() - payload_end;
    if (pad != 0) std::memset(bytes_ + payload_end, 0, pad);
    set_guardian(kGuardianLive);
  }

  [[nodiscard]] std::byte* raw() const noexcept { return bytes_; }

 private:
  std::byte* bytes_;
};

/// Validation of an item image fetched via RDMA Read, performed client-side.
enum class ItemValidity : std::uint8_t {
  kValid,
  kDead,         ///< guardian flipped: item was updated or removed
  kKeyMismatch,  ///< memory was reclaimed and reused for another key
  kCorrupt,      ///< lengths inconsistent with the fetched size
};

inline ItemValidity validate_item(std::byte* bytes, std::size_t fetched_len,
                                  std::string_view expected_key) noexcept {
  if (fetched_len < sizeof(ItemHeader) + sizeof(std::uint64_t)) return ItemValidity::kCorrupt;
  ItemView view(bytes);
  const ItemHeader& h = view.header();
  if (item_size(h.key_len, h.val_len) != fetched_len) return ItemValidity::kCorrupt;
  if (view.guardian() != kGuardianLive) return ItemValidity::kDead;
  if (view.key() != expected_key) return ItemValidity::kKeyMismatch;
  return ItemValidity::kValid;
}

}  // namespace hydra::core
