#include "core/arena.hpp"

#include <bit>
#include <cstring>

namespace hydra::core {

Arena::Arena(std::size_t capacity) : memory_(align8(capacity)) {
  free_heads_.fill(kNullOffset);
  // Reserve the first block so that offset 0 is never handed out: several
  // components use offset 0 / kNullOffset as sentinels and a zero remote
  // pointer should never alias a real item.
  bump_ = kMinClass;
}

int Arena::class_for(std::size_t size) noexcept {
  if (size <= kMinClass) return 0;
  const int bits = std::bit_width(size - 1);  // ceil(log2(size))
  return bits - 6;                            // 64 = 2^6
}

std::uint64_t Arena::allocate(std::size_t size) {
  if (size == 0 || size > kMaxClass) {
    ++failed_;
    return kNullOffset;
  }
  const int cls = class_for(size);
  const std::size_t block = class_size(cls);

  std::uint64_t offset = free_heads_[static_cast<std::size_t>(cls)];
  if (offset != kNullOffset) {
    // Pop the intrusive freelist: the first 8 bytes of a free block store
    // the next free offset.
    std::uint64_t next;
    std::memcpy(&next, at(offset), sizeof(next));
    free_heads_[static_cast<std::size_t>(cls)] = next;
  } else {
    if (bump_ + block > memory_.size()) {
      ++failed_;
      return kNullOffset;
    }
    offset = bump_;
    bump_ += block;
  }
  in_use_ += block;
  ++allocations_;
  return offset;
}

void Arena::deallocate(std::uint64_t offset, std::size_t size) noexcept {
  const int cls = class_for(size);
  const std::size_t block = class_size(cls);
  std::uint64_t& head = free_heads_[static_cast<std::size_t>(cls)];
  std::memcpy(at(offset), &head, sizeof(head));
  head = offset;
  in_use_ -= block;
}

}  // namespace hydra::core
