#include "server/pipelined_shard.hpp"

#include <string>
#include <utility>

#include "obs/plane.hpp"

namespace hydra::server {

PipelinedShard::PipelinedShard(sim::Scheduler& sched, fabric::Fabric& fabric,
                               NodeId node, ShardConfig cfg, int dispatchers,
                               int workers)
    : sim::Actor(sched, "pipelined-shard-" + std::to_string(cfg.id)),
      fabric_(fabric),
      node_(node),
      cfg_(cfg),
      store_(std::make_unique<core::KVStore>(cfg.store)),
      msg_region_(static_cast<std::size_t>(cfg.max_connections) * cfg.msg_slot_bytes),
      dispatcher_busy_(static_cast<std::size_t>(dispatchers), false),
      worker_busy_(static_cast<std::size_t>(workers), false) {
  arena_mr_ = fabric_.node(node_).register_memory(store_->arena().bytes());
  msg_mr_ = fabric_.node(node_).register_memory(msg_region_);
  msg_mr_->set_write_hook(
      guard([this](std::uint64_t offset, std::uint32_t) { on_request_write(offset); }));
}

void PipelinedShard::kill() {
  msg_mr_->revoke();
  arena_mr_->revoke();
  sim::Actor::kill();
}

Shard::AcceptResult PipelinedShard::accept(fabric::QueuePair* server_qp,
                                           fabric::RemoteAddr client_resp_slot,
                                           std::uint32_t client_resp_bytes,
                                           ClientId /*client*/) {
  if (conns_.size() >= cfg_.max_connections) return {};
  const auto idx = static_cast<std::uint32_t>(conns_.size());
  conns_.push_back(Connection{server_qp, client_resp_slot, client_resp_bytes});
  dirty_.add_endpoint();
  Shard::AcceptResult res;
  res.req_slot = fabric::RemoteAddr{msg_mr_->rkey(),
                                    static_cast<std::uint64_t>(idx) * cfg_.msg_slot_bytes};
  res.slot_bytes = cfg_.msg_slot_bytes;
  res.arena_rkey = arena_mr_->rkey();
  res.ok = true;
  return res;
}

void PipelinedShard::on_request_write(std::uint64_t offset) {
  const auto idx = static_cast<std::uint32_t>(offset / cfg_.msg_slot_bytes);
  if (!dirty_.mark(idx)) return;
  wake_dispatchers();
}

void PipelinedShard::wake_dispatchers() {
  for (std::size_t d = 0; d < dispatcher_busy_.size(); ++d) {
    if (!dispatcher_busy_[d]) {
      dispatcher_busy_[d] = true;
      schedule_after(cfg_.cpu.idle_backoff, [this, d] { dispatcher_loop(d); });
      return;  // one dispatcher per wake; others wake on further arrivals
    }
  }
}

void PipelinedShard::dispatcher_loop(std::size_t d) {
  Duration scan_cost = 0;
  while (!dirty_.empty()) {
    const std::uint32_t idx = dirty_.pop();
    scan_cost += cfg_.cpu.poll_scan;
    const auto slot = slot_span(idx);
    if (!proto::poll_frame(slot).has_value()) continue;
    auto req = proto::decode_request(proto::frame_payload(slot));
    proto::clear_frame(slot);
    if (!req.has_value()) {
      ++stats_.malformed;
      continue;
    }
    if (fabric_.obs() != nullptr) {
      fabric_.obs()->trace(now(), node_, obs::TraceKind::kRingSweep, cfg_.id, 1, idx);
    }
    // Dispatch: detection plus the enqueue into the shared work queue.
    const Duration cost = scan_cost + cfg_.cpu.dispatch_cost;
    stats_.busy_time += cost;
    schedule_after(cost, [this, d, req = std::move(*req), idx]() mutable {
      work_queue_.emplace_back(std::move(req), idx);
      wake_workers();
      dispatcher_loop(d);
    });
    return;
  }
  stats_.busy_time += scan_cost;
  dispatcher_busy_[d] = false;
}

void PipelinedShard::wake_workers() {
  for (std::size_t w = 0; w < worker_busy_.size(); ++w) {
    if (!worker_busy_[w]) {
      worker_busy_[w] = true;
      schedule_after(0, [this, w] { worker_loop(w); });
      return;
    }
  }
}

void PipelinedShard::worker_loop(std::size_t w) {
  if (work_queue_.empty()) {
    worker_busy_[w] = false;
    return;
  }
  auto [req, idx] = std::move(work_queue_.front());
  work_queue_.pop_front();
  execute(std::move(req), idx, w);
}

void PipelinedShard::execute(proto::Request req, std::uint32_t conn_idx, std::size_t w) {
  const CpuModel& cpu = cfg_.cpu;
  proto::Response resp;
  resp.req_id = req.req_id;
  // The handoff itself costs: dequeue, synchronization, and the request's
  // cache lines migrating from the dispatcher's core to the worker's.
  Duration cost = cpu.handoff_sync;

  switch (req.type) {
    case proto::MsgType::kGet: {
      cost += cpu.base_get;
      auto r = store_->get(req.key, now());
      resp.status = r.status();
      if (r.ok()) {
        resp.value.assign(r.value().value);
        resp.version = r.value().version;
        cost += static_cast<Duration>(cpu.per_value_byte *
                                      static_cast<double>(r.value().value.size()));
        // The pipelined comparator in the paper runs without remote-pointer
        // caching ("Pipeline + RDMA Write"), so no pointer is granted.
      }
      ++stats_.gets;
      break;
    }
    case proto::MsgType::kInsert:
    case proto::MsgType::kUpdate:
    case proto::MsgType::kPut: {
      cost += cpu.base_put +
              static_cast<Duration>(cpu.per_value_byte * static_cast<double>(req.value.size()));
      if (req.type == proto::MsgType::kInsert) {
        resp.status = store_->insert(req.key, req.value, now());
      } else if (req.type == proto::MsgType::kUpdate) {
        resp.status = store_->update(req.key, req.value, now());
      } else {
        resp.status = store_->put(req.key, req.value, now());
      }
      ++stats_.puts;
      break;
    }
    case proto::MsgType::kRemove:
      cost += cpu.base_remove;
      resp.status = store_->remove(req.key, now());
      ++stats_.removes;
      break;
    case proto::MsgType::kScan:
      // The pipelined comparator exists to reproduce Fig 5's point-op loss;
      // range scans are out of its scope. Well-formed, just unsupported.
      resp.status = Status::kInvalidArgument;
      break;
    default:
      resp.status = Status::kInvalidArgument;
      ++stats_.malformed;
      break;
  }

  cost += cpu.post_response;
  stats_.busy_time += cost;
  schedule_after(cost, [this, w, resp = std::move(resp), conn_idx] {
    send_response(resp, conn_idx);
    worker_loop(w);
  });
}

void PipelinedShard::send_response(const proto::Response& resp, std::uint32_t conn_idx) {
  Connection& conn = conns_[conn_idx];
  const auto payload = proto::encode_response(resp);
  const std::size_t framed = proto::frame_size(payload.size());
  if (framed > conn.resp_bytes) return;
  std::vector<std::byte> frame(framed);
  proto::encode_frame(frame, payload);
  conn.qp->post_write(frame, conn.resp_addr);
  ++stats_.responses;
}

}  // namespace hydra::server
