// Pipelined (decoupled I/O + computation) shard -- the Figure 5(a)
// comparator for section 6.2.1.
//
// Dispatcher threads detect requests in the connection buffers and hand
// them to worker threads over an internal queue. Even with 2 dispatchers +
// 2 workers (4x the cores of the single-threaded shard, matching the
// paper's experiment), per-request handoff and synchronization overhead
// makes it lose to the single-threaded design once RDMA removed the I/O
// work that pipelining was supposed to hide.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "core/store.hpp"
#include "fabric/fabric.hpp"
#include "proto/frame.hpp"
#include "proto/messages.hpp"
#include "server/config.hpp"
#include "server/dirty_scheduler.hpp"
#include "server/shard.hpp"
#include "sim/actor.hpp"

namespace hydra::server {

class PipelinedShard : public sim::Actor {
 public:
  PipelinedShard(sim::Scheduler& sched, fabric::Fabric& fabric, NodeId node,
                 ShardConfig cfg, int dispatchers = 2, int workers = 2);

  /// Same wire contract as Shard::accept (polling mode only).
  Shard::AcceptResult accept(fabric::QueuePair* server_qp,
                             fabric::RemoteAddr client_resp_slot,
                             std::uint32_t client_resp_bytes, ClientId client);

  [[nodiscard]] ShardId id() const noexcept { return cfg_.id; }
  [[nodiscard]] core::KVStore& store() noexcept { return *store_; }
  [[nodiscard]] const ShardStats& stats() const noexcept { return stats_; }
  [[nodiscard]] int core_count() const noexcept {
    return static_cast<int>(dispatcher_busy_.size() + worker_busy_.size());
  }

  void kill() override;

 private:
  struct Connection {
    fabric::QueuePair* qp = nullptr;
    fabric::RemoteAddr resp_addr{};
    std::uint32_t resp_bytes = 0;
  };

  [[nodiscard]] std::span<std::byte> slot_span(std::uint32_t idx) noexcept {
    return {msg_region_.data() + static_cast<std::size_t>(idx) * cfg_.msg_slot_bytes,
            cfg_.msg_slot_bytes};
  }

  void on_request_write(std::uint64_t offset);
  void wake_dispatchers();
  void dispatcher_loop(std::size_t d);
  void wake_workers();
  void worker_loop(std::size_t w);
  void execute(proto::Request req, std::uint32_t conn_idx, std::size_t w);
  void send_response(const proto::Response& resp, std::uint32_t conn_idx);

  fabric::Fabric& fabric_;
  NodeId node_;
  ShardConfig cfg_;
  std::unique_ptr<core::KVStore> store_;
  fabric::MemoryRegion* arena_mr_;
  std::vector<std::byte> msg_region_;
  fabric::MemoryRegion* msg_mr_;

  std::vector<Connection> conns_;
  DirtyScheduler dirty_;  ///< shared with Shard; see dirty_scheduler.hpp
  /// Dispatcher -> worker handoff queue (the pipeline's synchronization point).
  std::deque<std::pair<proto::Request, std::uint32_t>> work_queue_;
  std::vector<bool> dispatcher_busy_;
  std::vector<bool> worker_busy_;
  ShardStats stats_;
};

}  // namespace hydra::server
