// Index-driven dirty-ring scheduler shared by both shard variants.
//
// The shard's wakeup path must do O(active) work per wakeup no matter how
// many endpoints are registered: a write hook marks its endpoint dirty in
// O(1) (a flag suppresses duplicates, an index ring preserves FIFO sweep
// order), and the poll loop pops exactly the endpoints that saw traffic.
// Before this existed, Shard and PipelinedShard each carried a copy-pasted
// dirty_flag_/dirty_ pair that could (and did) drift; both now share this
// one implementation, so the legacy single-ring path and the SRQ-style
// mux-group path schedule identically.
//
// Fairness guarantee (DESIGN.md §10): endpoints are swept in the order they
// became dirty (FIFO), and an endpoint re-marked while queued is not
// enqueued twice -- so between two sweeps of one endpoint, every other
// dirty endpoint is swept at least once.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

namespace hydra::server {

class DirtyScheduler {
 public:
  /// Registers one more endpoint (ids are dense, assigned in call order).
  /// Returns the new endpoint's id.
  std::uint32_t add_endpoint() {
    flags_.push_back(false);
    dead_.push_back(false);
    return static_cast<std::uint32_t>(flags_.size() - 1);
  }

  [[nodiscard]] std::size_t endpoints() const noexcept { return flags_.size(); }

  /// Marks an endpoint dirty. Returns true when it was newly marked (the
  /// caller wakes the poll loop); false for duplicates, out-of-range ids
  /// (a write landing past the registered endpoints is ignored, exactly as
  /// the pre-refactor bound check did) and deregistered endpoints.
  bool mark(std::uint32_t id) {
    if (id >= flags_.size() || flags_[id] || dead_[id]) return false;
    flags_[id] = true;
    queue_.push_back(id);
    return true;
  }

  /// Retires an endpoint (its connection closed): any queued dirty mark is
  /// withdrawn immediately and later mark() calls are ignored, so a retired
  /// endpoint can never resurface from the queue. Ids stay dense -- the slot
  /// is not reassigned until reactivate(). Idempotent; out-of-range ignored.
  void deregister(std::uint32_t id) {
    if (id >= flags_.size() || dead_[id]) return;
    dead_[id] = true;
    if (flags_[id]) {
      flags_[id] = false;
      // O(queue) scan; deregistration is a rare control-plane event while
      // the queue holds only currently-dirty endpoints.
      queue_.erase(std::find(queue_.begin(), queue_.end(), id));
    }
  }

  /// Re-arms a deregistered endpoint id for a fresh logical connection
  /// reusing its slot (the mux-group reopen path).
  void reactivate(std::uint32_t id) {
    if (id < flags_.size()) dead_[id] = false;
  }

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t active() const noexcept { return queue_.size(); }

  /// Pops the oldest dirty endpoint and clears its flag (so a write landing
  /// during the sweep re-marks it). Callers must check empty() first.
  std::uint32_t pop() {
    const std::uint32_t id = queue_.front();
    queue_.pop_front();
    flags_[id] = false;
    return id;
  }

 private:
  std::vector<bool> flags_;          // endpoint id -> queued?
  std::vector<bool> dead_;           // endpoint id -> deregistered?
  std::deque<std::uint32_t> queue_;  // dirty ids, FIFO sweep order
};

}  // namespace hydra::server
