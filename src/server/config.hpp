// Server-side configuration: execution mode and CPU cost model.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "core/store.hpp"

namespace hydra::server {

/// How the shard detects and answers requests (Fig 5 / Fig 10 variants).
enum class ServerMode : std::uint8_t {
  /// Paper design: one thread polls per-connection request buffers written
  /// by client RDMA Writes and answers with RDMA Writes.
  kRdmaWritePolling,
  /// Baseline: two-sided verbs Send/Recv for both directions.
  kSendRecv,
};

/// CPU time the shard charges per operation, calibrated so a server-handled
/// small-item GET costs ~0.5-1 us of host work (the regime in which 4 shards
/// saturate around a few Mops like the paper's testbed).
struct CpuModel {
  Duration poll_scan = 40;          ///< checking one connection's buffer
  Duration idle_backoff = 100;      ///< the paper's 100 ns sleep when idle
  Duration base_get = 420;          ///< decode + index lookup + lease update
  /// Writes are markedly heavier than reads (the "asymmetric read/write
  /// performance" of section 6.1): allocate, copy, swing the index, retire
  /// the old version and queue it for reclamation.
  Duration base_put = 950;
  Duration base_remove = 550;
  Duration base_renew = 250;
  double per_value_byte = 0.12;     ///< memcpy-ish cost per payload byte
  Duration post_response = 150;     ///< WQE build + doorbell for the answer
  /// WQE build for a response that shares the sweep's already-rung doorbell
  /// (every response after the first in one ring sweep): no MMIO write, no
  /// fresh descriptor cache miss.
  Duration post_response_batched = 40;
  /// Pipelined comparator: per-request dispatcher work (decode + locked
  /// enqueue) and the dispatcher->worker handoff. The handoff is the killer:
  /// a mutex/condvar (futex-wake) round plus the request's cache lines
  /// migrating between cores costs microseconds -- the synchronization
  /// overhead section 4.1.1 blames for the pipelined model's loss.
  Duration dispatch_cost = 400;
  Duration handoff_sync = 2600;
  /// Transactional commit group (DESIGN.md §11): header decode plus lock +
  /// epoch validation across the group; each op then pays the normal
  /// base_put/base_remove on top.
  Duration base_txn_commit = 600;
  /// Range-scan batch (DESIGN.md §13): token decode + tree descent, then a
  /// per-entry copy-out cost on top (values additionally pay per_value_byte).
  Duration base_scan = 500;
  Duration per_scan_entry = 120;
  /// Re-serializing one leaf into the one-sided mirror (checksum + copies).
  Duration leaf_refresh = 400;
};

struct ShardConfig {
  ShardId id = 0;
  ServerMode mode = ServerMode::kRdmaWritePolling;
  core::StoreConfig store;
  CpuModel cpu;
  /// Per-connection message slot; bounds the largest framed request and
  /// response (raise it for big-value workloads like the MapReduce cache).
  std::uint32_t msg_slot_bytes = 16 * 1024;
  std::uint32_t max_connections = 256;
  /// Request-ring depth provisioned per connection: the shard lays out this
  /// many request slots per accepted client and grants each connection a
  /// window of min(client-requested, ring_slots) outstanding requests. One
  /// slot reproduces the seed's closed-loop wire contract exactly.
  std::uint32_t ring_slots = 8;
  /// Shared request-ring depth per mux group (DESIGN.md §10): the SRQ-style
  /// credit pool all endpoints of one client node draw from. Sized like an
  /// SRQ -- enough for the node's aggregate burst, far less than
  /// endpoints * window dedicated slots would cost.
  std::uint32_t mux_ring_slots = 64;
  /// Admission cap on *live* mux endpoints (logical clients) per shard.
  /// Endpoints are cheap -- no QP, no dedicated ring -- so the cap is a
  /// runaway bound far above production client counts, not a tuning knob;
  /// deactivated endpoint slots are free-listed and reused, so repeated
  /// channel failure/reopen cycles never grow the table.
  std::uint32_t max_mux_endpoints = 1u << 20;
  /// Lock-word arena size for the 2PL transaction layer (DESIGN.md §11):
  /// keys hash onto `hash_key(key) % txn_lock_words` 64-bit words that
  /// clients CAS directly. 0 (the default) disables transactions entirely --
  /// no region is registered, so rkey assignment and event histories are
  /// byte-identical to a build that predates the feature.
  std::uint32_t txn_lock_words = 0;
  /// Hot-key replication plane (DESIGN.md §12): the primary tracks per-key
  /// GET frequency, copies the top `hotkey_top_k` keys' items into its
  /// replication followers' promo slabs and advertises the copies on GET
  /// responses so clients spread one-sided reads across primary + followers.
  /// 0 (the default) disables the plane entirely -- no tracker, no slab
  /// registration, no scan timer -- so rkey assignment and event histories
  /// are byte-identical to a build that predates the feature (same contract
  /// as txn_lock_words above).
  std::uint32_t hotkey_top_k = 0;
  /// Space-saving sketch capacity (distinct keys tracked per interval).
  std::uint32_t hotkey_tracker_capacity = 64;
  /// Minimum per-interval hits before a key qualifies for promotion.
  std::uint32_t hotkey_promote_min_hits = 16;
  /// Promotion scan cadence: each tick promotes the interval's top-k and
  /// restarts the counting window.
  Duration hotkey_scan_interval = 2 * kMillisecond;
  /// Follower promo-slab slot size; bounds the largest promotable item
  /// (header + key + value + guardian, see core/item.hpp).
  std::uint32_t hotkey_slot_bytes = 256;
  /// One-sided scan mirror (DESIGN.md §13): number of leaf pages the shard
  /// keeps serialized in an MR-registered region so clients can RDMA-Read
  /// scan continuations. Only meaningful when `store.ordered_index` is on
  /// (the region is registered iff both hold); with the index off (the
  /// default) no region is registered and no scan code runs, so rkey
  /// assignment and event histories are byte-identical to a build that
  /// predates the feature (same contract as txn_lock_words above).
  std::uint32_t scan_mirror_pages = 64;
  std::uint32_t scan_mirror_page_bytes = 4096;
  /// Cap on entries returned per kScan batch (responses are additionally
  /// bounded by the connection's response-slot byte budget).
  std::uint32_t scan_max_batch = 32;
  /// Whether GET responses mint remote pointers (disabled to measure the
  /// "RDMA Write only" rows of Fig 10).
  bool grant_remote_pointers = true;
  /// Reclaimer cadence: how often the background GC actor wakes at most.
  Duration gc_min_interval = 100 * kMillisecond;
};

}  // namespace hydra::server
