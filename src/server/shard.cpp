#include "server/shard.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/hash.hpp"
#include "common/logging.hpp"
#include "obs/plane.hpp"

namespace hydra::server {

Shard::Shard(sim::Scheduler& sched, fabric::Fabric& fabric, NodeId node,
             ShardConfig cfg, std::unique_ptr<core::KVStore> existing_store)
    : sim::Actor(sched, "shard-" + std::to_string(cfg.id)),
      fabric_(fabric),
      node_(node),
      cfg_(cfg),
      store_(existing_store ? std::move(existing_store)
                            : std::make_unique<core::KVStore>(cfg.store)),
      msg_region_(static_cast<std::size_t>(cfg.max_connections) * cfg.ring_slots *
                  cfg.msg_slot_bytes) {
  // One region spans every item: this is what remote pointers point into.
  arena_mr_ = fabric_.node(node_).register_memory(store_->arena().bytes());
  msg_mr_ = fabric_.node(node_).register_memory(msg_region_);
  msg_mr_->set_write_hook(
      guard([this](std::uint64_t offset, std::uint32_t) { on_request_write(offset); }));
}

void Shard::kill() {
  // Process death deregisters its regions: in-flight client writes and
  // RDMA reads fail with protection errors rather than touching a corpse.
  msg_mr_->revoke();
  arena_mr_->revoke();
  sim::Actor::kill();
}

Shard::AcceptResult Shard::accept(fabric::QueuePair* server_qp,
                                  fabric::RemoteAddr client_resp_slot,
                                  std::uint32_t client_resp_bytes, ClientId client,
                                  std::uint32_t window) {
  if (conns_.size() >= cfg_.max_connections) return {};
  const auto idx = static_cast<std::uint32_t>(conns_.size());
  Connection conn;
  conn.qp = server_qp;
  conn.resp_addr = client_resp_slot;
  conn.resp_bytes = client_resp_bytes;
  conn.window = std::clamp<std::uint32_t>(window, 1, cfg_.ring_slots);
  conn.client = client;
  conns_.push_back(std::move(conn));
  dirty_flag_.push_back(false);
  AcceptResult res;
  res.req_slot =
      fabric::RemoteAddr{msg_mr_->rkey(), static_cast<std::uint64_t>(idx) * conn_stride()};
  res.slot_bytes = cfg_.msg_slot_bytes;
  res.arena_rkey = arena_mr_->rkey();
  res.window = conns_.back().window;
  res.ok = true;
  return res;
}

Shard::AcceptResult Shard::accept_send_recv(fabric::QueuePair* server_qp, ClientId client) {
  if (conns_.size() >= cfg_.max_connections) return {};
  const auto idx = static_cast<std::uint32_t>(conns_.size());
  Connection conn;
  conn.qp = server_qp;
  conn.client = client;
  conn.send_recv = true;
  conn.recv_bufs.resize(8, std::vector<std::byte>(cfg_.msg_slot_bytes));
  conns_.push_back(std::move(conn));
  dirty_flag_.push_back(false);
  Connection& c = conns_.back();
  for (std::size_t i = 0; i < c.recv_bufs.size(); ++i) c.qp->post_recv(c.recv_bufs[i], i);
  c.qp->set_recv_handler(guard([this, idx](const fabric::Completion& wc,
                                           std::span<std::byte> data) {
    auto req = proto::decode_request(data.subspan(0, wc.byte_len));
    // Hand the buffer back to the QP immediately (flow control like real
    // verbs apps that repost inside the completion handler).
    Connection& conn = conns_[idx];
    conn.qp->post_recv(conn.recv_bufs[wc.wr_id], wc.wr_id);
    if (!req.has_value()) {
      ++stats_.malformed;
      return;
    }
    sr_pending_.emplace_back(std::move(*req), idx);
    wake();
  }));
  AcceptResult res;
  res.arena_rkey = arena_mr_->rkey();
  res.slot_bytes = cfg_.msg_slot_bytes;
  res.ok = true;
  return res;
}

void Shard::enable_replication(replication::PrimaryConfig rep_cfg) {
  replicator_ = std::make_unique<replication::ReplicationPrimary>(*this, fabric_, node_, rep_cfg);
}

std::uint32_t Shard::arena_rkey() const noexcept { return arena_mr_->rkey(); }

void Shard::on_request_write(std::uint64_t offset) {
  const auto idx = static_cast<std::uint32_t>(offset / conn_stride());
  if (idx >= conns_.size() || dirty_flag_[idx]) return;
  dirty_flag_[idx] = true;
  dirty_.push_back(idx);
  wake();
}

void Shard::wake() {
  if (busy_) return;
  busy_ = true;
  // The paper's loop sleeps 100ns between empty scans; a fresh arrival is
  // therefore noticed after at most one backoff.
  schedule_after(cfg_.cpu.idle_backoff, [this] { process_loop(); });
}

void Shard::process_loop() {
  // Send/Recv mode: decoded requests queue up from completion handlers.
  if (!sr_pending_.empty()) {
    auto [req, idx] = std::move(sr_pending_.front());
    sr_pending_.pop_front();
    handle(std::move(req), idx, 0, cfg_.cpu.poll_scan, /*batched=*/false);
    return;
  }
  // Requests an earlier sweep already decoded execute before new polling.
  if (!ready_.empty()) {
    ReadyReq r = std::move(ready_.front());
    ready_.pop_front();
    handle(std::move(r.req), r.conn_idx, r.slot, 0, r.batched);
    return;
  }
  // Polling mode: round-robin over connections whose rings saw a write;
  // a dirty connection has all of its occupied slots drained in one sweep.
  Duration scan_cost = 0;
  while (!dirty_.empty()) {
    const std::uint32_t idx = dirty_.front();
    dirty_.pop_front();
    dirty_flag_[idx] = false;
    scan_cost += cfg_.cpu.poll_scan;
    sweep_connection(idx);
    if (!ready_.empty()) {
      ReadyReq r = std::move(ready_.front());
      ready_.pop_front();
      handle(std::move(r.req), r.conn_idx, r.slot, scan_cost, r.batched);
      return;
    }
  }
  charge(scan_cost);
  busy_ = false;  // idle; the write hook re-arms us
}

void Shard::sweep_connection(std::uint32_t idx) {
  const Connection& conn = conns_[idx];
  bool first_in_sweep = true;
  std::uint32_t decoded = 0;
  for (std::uint32_t slot = 0; slot < conn.window; ++slot) {
    const auto span = slot_span(idx, slot);
    switch (proto::probe_frame(span)) {
      case proto::FrameState::kEmpty:
      case proto::FrameState::kPartial:  // still landing; redirtied on commit
        continue;
      case proto::FrameState::kMalformed:
        // Torn or garbage bytes: scrub the whole slot so the ring does not
        // wedge on a head word that lies about its size.
        ++stats_.malformed;
        std::fill(span.begin(), span.end(), std::byte{0});
        continue;
      case proto::FrameState::kReady:
        break;
    }
    auto req = proto::decode_request(proto::frame_payload(span));
    proto::clear_frame(span);
    if (!req.has_value()) {
      ++stats_.malformed;
      continue;
    }
    ready_.push_back(ReadyReq{std::move(*req), idx, slot, !first_in_sweep});
    first_in_sweep = false;
    ++decoded;
  }
  if (decoded > 0 && fabric_.obs() != nullptr) {
    fabric_.obs()->trace(now(), node_, obs::TraceKind::kRingSweep, cfg_.id, decoded, idx);
  }
}

void Shard::handle(proto::Request req, std::uint32_t conn_idx, std::uint32_t slot,
                   Duration cost_so_far, bool batched) {
  const CpuModel& cpu = cfg_.cpu;
  proto::Response resp;
  resp.req_id = req.req_id;
  Duration cost = cost_so_far;
  bool replicate = false;

  const std::uint64_t key_hash =
      (owner_filter_ || migration_forward_) ? hash_key(req.key) : 0;
  if (owner_filter_ && !owner_filter_(key_hash)) {
    // Epoch fencing: this shard no longer (or does not yet) own the key's
    // range. Answer without touching the store -- serving the request would
    // split ownership with the range's new home.
    ++stats_.wrong_owner;
    resp.status = Status::kWrongOwner;
    cost += batched ? cpu.post_response_batched : cpu.post_response;
    charge(cost);
    schedule_after(cost, [this, resp = std::move(resp), conn_idx, slot, batched] {
      send_response(resp, conn_idx, slot, batched);
      process_loop();
    });
    return;
  }

  switch (req.type) {
    case proto::MsgType::kGet: {
      cost += cpu.base_get;
      auto r = store_->get(req.key, now());
      resp.status = r.status();
      if (r.ok()) {
        const core::GetView& view = r.value();
        resp.value.assign(view.value);
        resp.version = view.version;
        cost += static_cast<Duration>(cpu.per_value_byte * static_cast<double>(view.value.size()));
        if (cfg_.grant_remote_pointers) {
          resp.remote_ptr.rkey = arena_mr_->rkey();
          resp.remote_ptr.offset = view.offset;
          resp.remote_ptr.total_len = view.total_len;
          resp.remote_ptr.lease_expiry = view.lease_expiry;
          resp.remote_ptr.version = view.version;
          resp.remote_ptr.shard = cfg_.id;
        }
      }
      ++stats_.gets;
      break;
    }
    case proto::MsgType::kInsert:
    case proto::MsgType::kUpdate:
    case proto::MsgType::kPut: {
      cost += cpu.base_put +
              static_cast<Duration>(cpu.per_value_byte * static_cast<double>(req.value.size()));
      if (req.type == proto::MsgType::kInsert) {
        resp.status = store_->insert(req.key, req.value, now());
      } else if (req.type == proto::MsgType::kUpdate) {
        resp.status = store_->update(req.key, req.value, now());
      } else {
        resp.status = store_->put(req.key, req.value, now());
      }
      replicate = resp.status == Status::kOk;
      ++stats_.puts;
      break;
    }
    case proto::MsgType::kRemove: {
      cost += cpu.base_remove;
      resp.status = store_->remove(req.key, now());
      replicate = resp.status == Status::kOk;
      ++stats_.removes;
      break;
    }
    case proto::MsgType::kRenewLease: {
      cost += cpu.base_renew;
      resp.status = store_->renew_lease(req.key, now());
      if (resp.status == Status::kOk && cfg_.grant_remote_pointers) {
        // Return the refreshed pointer so the client's cache entry reflects
        // the extended lease term.
        auto r = store_->get(req.key, now(), /*grant_lease=*/false);
        if (r.ok()) {
          resp.remote_ptr.rkey = arena_mr_->rkey();
          resp.remote_ptr.offset = r.value().offset;
          resp.remote_ptr.total_len = r.value().total_len;
          resp.remote_ptr.lease_expiry = r.value().lease_expiry;
          resp.remote_ptr.version = r.value().version;
          resp.remote_ptr.shard = cfg_.id;
        }
      }
      ++stats_.renews;
      break;
    }
    default:
      ++stats_.malformed;
      resp.status = Status::kInvalidArgument;
      break;
  }

  cost += batched ? cpu.post_response_batched : cpu.post_response;
  schedule_gc();

  if (replicate && migration_forward_ && forward_moving_(key_hash)) {
    // Dual ownership: the write landed in a range currently being migrated
    // away, so it also rides the migration flow's record ring. Copied
    // before the replicator below moves the key/value out of the request.
    proto::RepRecord fwd;
    fwd.op = req.type == proto::MsgType::kRemove ? proto::MsgType::kRemove
                                                 : proto::MsgType::kPut;
    fwd.op_time = now();
    fwd.key = req.key;
    fwd.value = req.value;
    ++stats_.forwarded;
    migration_forward_(key_hash, std::move(fwd));
  }

  if (replicate && replicator_ != nullptr && replicator_->secondary_count() > 0) {
    cost += replicator_->post_cost();
    proto::RepRecord rec;
    rec.op = req.type == proto::MsgType::kRemove ? proto::MsgType::kRemove : proto::MsgType::kPut;
    rec.op_time = now();
    rec.key = std::move(req.key);
    rec.value = std::move(req.value);

    // The response leaves once BOTH the shard's CPU work is done and the
    // replication policy is satisfied. Under the relaxed log protocol the
    // shard polls the next request as soon as the records are posted (the
    // overlap Fig 13 credits); the conventional strict protocol serializes:
    // the shard cannot move on until the secondary acknowledged.
    const bool blocking =
        replicator_->config().mode == replication::ReplicationMode::kStrictAck;
    auto barrier = std::make_shared<int>(2);
    std::function<void()> arm = guard([this, resp, conn_idx, slot, batched, barrier, blocking] {
      if (--*barrier > 0) return;
      send_response(resp, conn_idx, slot, batched);
      if (blocking) process_loop();
    });
    replicator_->replicate(std::move(rec), arm);
    charge(cost);
    schedule_after(cost, [this, arm, blocking] {
      arm();
      if (!blocking) process_loop();
    });
    return;
  }

  charge(cost);
  schedule_after(cost, [this, resp = std::move(resp), conn_idx, slot, batched] {
    send_response(resp, conn_idx, slot, batched);
    process_loop();
  });
}

void Shard::send_response(const proto::Response& resp, std::uint32_t conn_idx,
                          std::uint32_t slot, bool batched) {
  Connection& conn = conns_[conn_idx];
  // The response lands in the resp-ring slot matching the request's slot,
  // which is exactly what releases that slot pair for reuse at the client.
  const fabric::RemoteAddr dst{conn.resp_addr.rkey,
                               conn.resp_addr.offset +
                                   proto::ring_slot_offset(slot, conn.resp_bytes)};
  const auto payload = proto::encode_response(resp);
  if (conn.send_recv) {
    conn.qp->post_send(payload);
    ++stats_.responses;
    return;
  }
  const std::size_t framed = proto::frame_size(payload.size());
  if (framed > conn.resp_bytes) {
    // Response exceeds the client's slot (value too large for the
    // configured slot size): degrade to an error the client can act on.
    proto::Response err;
    err.req_id = resp.req_id;
    err.status = Status::kInvalidArgument;
    const auto err_payload = proto::encode_response(err);
    std::vector<std::byte> frame(proto::frame_size(err_payload.size()));
    proto::encode_frame(frame, err_payload);
    conn.qp->post_write(frame, dst, 0, nullptr, batched);
    ++stats_.responses;
    if (batched) ++stats_.batched_responses;
    return;
  }
  std::vector<std::byte> frame(framed);
  proto::encode_frame(frame, payload);
  conn.qp->post_write(frame, dst, 0, nullptr, batched);
  ++stats_.responses;
  if (batched) ++stats_.batched_responses;
}

void Shard::schedule_gc() {
  if (gc_scheduled_ || store_->deferred_count() == 0) return;
  gc_scheduled_ = true;
  const Time due = std::max<Time>(store_->next_reclaim_due(), now() + cfg_.gc_min_interval);
  schedule_at(due, [this] {
    // Background reclamation: on real hardware this is a helper thread;
    // here it costs the shard nothing on the request path (paper 4.2.3).
    store_->collect_garbage(now());
    gc_scheduled_ = false;
    schedule_gc();
  });
}

}  // namespace hydra::server
