#include "server/shard.hpp"

#include <algorithm>
#include <cstring>
#include <span>
#include <string>
#include <utility>

#include "common/hash.hpp"
#include "common/logging.hpp"
#include "core/item.hpp"
#include "index/leaf_page.hpp"
#include "obs/plane.hpp"

namespace hydra::server {

Shard::Shard(sim::Scheduler& sched, fabric::Fabric& fabric, NodeId node,
             ShardConfig cfg, std::unique_ptr<core::KVStore> existing_store)
    : sim::Actor(sched, "shard-" + std::to_string(cfg.id)),
      fabric_(fabric),
      node_(node),
      cfg_(cfg),
      store_(existing_store ? std::move(existing_store)
                            : std::make_unique<core::KVStore>(cfg.store)),
      msg_region_(static_cast<std::size_t>(cfg.max_connections) * cfg.ring_slots *
                  cfg.msg_slot_bytes) {
  // One region spans every item: this is what remote pointers point into.
  arena_mr_ = fabric_.node(node_).register_memory(store_->arena().bytes());
  msg_mr_ = fabric_.node(node_).register_memory(msg_region_);
  msg_mr_->set_write_hook(
      guard([this](std::uint64_t offset, std::uint32_t) { on_request_write(offset); }));
  if (cfg_.txn_lock_words > 0) {
    // Registered last and only on demand: a txn-off shard performs exactly
    // the seed's registrations, keeping rkey assignment (and therefore
    // chaos histories) byte-identical. Words start zero = unlocked, which
    // also means a promoted primary's arena never inherits a held lock.
    lock_region_.resize(static_cast<std::size_t>(cfg_.txn_lock_words) * 8);
    lock_mr_ = fabric_.node(node_).register_memory(lock_region_);
  }
  if (cfg_.hotkey_top_k > 0) {
    // Hot-key plane (DESIGN.md §12). The tracker is the only allocation;
    // follower promo slabs register lazily on first promotion, so a shard
    // that never promotes performs exactly the pre-feature registrations.
    hotkey_ = std::make_unique<HotKeyTracker>(cfg_.hotkey_tracker_capacity);
    dead_word_.resize(sizeof(std::uint64_t));
    const std::uint64_t dead = core::kGuardianDead;
    std::memcpy(dead_word_.data(), &dead, sizeof(dead));
  }
  if (cfg_.scan_mirror_pages > 0 && store_->config().ordered_index) {
    // One-sided scan-leaf mirror (DESIGN.md §13). Gated on the ordered
    // index so index-off runs perform exactly the seed's registrations --
    // rkey assignment and event histories stay byte-identical (same
    // contract as txn_lock_words above).
    leaf_region_.resize(static_cast<std::size_t>(cfg_.scan_mirror_pages) *
                        cfg_.scan_mirror_page_bytes);
    leaf_mr_ = fabric_.node(node_).register_memory(leaf_region_);
    mirror_slots_.resize(cfg_.scan_mirror_pages);
  }
}

void Shard::kill() {
  // Process death deregisters its regions: in-flight client writes and
  // RDMA reads fail with protection errors rather than touching a corpse.
  msg_mr_->revoke();
  arena_mr_->revoke();
  if (lock_mr_ != nullptr) lock_mr_->revoke();
  if (leaf_mr_ != nullptr) leaf_mr_->revoke();
  for (Connection& conn : conns_) {
    if (conn.mux && conn.ring_mr != nullptr && !conn.closed) conn.ring_mr->revoke();
  }
  sim::Actor::kill();
}

Shard::AcceptResult Shard::accept(fabric::QueuePair* server_qp,
                                  fabric::RemoteAddr client_resp_slot,
                                  std::uint32_t client_resp_bytes, ClientId client,
                                  std::uint32_t window) {
  if (block_to_conn_.size() >= cfg_.max_connections) return {};
  const auto idx = static_cast<std::uint32_t>(conns_.size());
  const auto block = static_cast<std::uint32_t>(block_to_conn_.size());
  Connection conn;
  conn.qp = server_qp;
  conn.resp_addr = client_resp_slot;
  conn.resp_bytes = client_resp_bytes;
  conn.window = std::clamp<std::uint32_t>(window, 1, cfg_.ring_slots);
  conn.client = client;
  conn.region_block = block;
  conns_.push_back(std::move(conn));
  block_to_conn_.push_back(idx);
  dirty_.add_endpoint();
  AcceptResult res;
  res.req_slot =
      fabric::RemoteAddr{msg_mr_->rkey(), static_cast<std::uint64_t>(block) * conn_stride()};
  res.slot_bytes = cfg_.msg_slot_bytes;
  res.arena_rkey = arena_mr_->rkey();
  res.window = conns_.back().window;
  res.lock_rkey = lock_rkey();
  res.lock_words = lock_word_count();
  res.ok = true;
  return res;
}

Shard::AcceptResult Shard::accept_send_recv(fabric::QueuePair* server_qp, ClientId client) {
  if (block_to_conn_.size() >= cfg_.max_connections) return {};
  const auto idx = static_cast<std::uint32_t>(conns_.size());
  Connection conn;
  conn.qp = server_qp;
  conn.client = client;
  conn.send_recv = true;
  conn.region_block = static_cast<std::uint32_t>(block_to_conn_.size());
  conn.recv_bufs.resize(8, std::vector<std::byte>(cfg_.msg_slot_bytes));
  conns_.push_back(std::move(conn));
  block_to_conn_.push_back(idx);
  dirty_.add_endpoint();
  Connection& c = conns_.back();
  for (std::size_t i = 0; i < c.recv_bufs.size(); ++i) c.qp->post_recv(c.recv_bufs[i], i);
  c.qp->set_recv_handler(guard([this, idx](const fabric::Completion& wc,
                                           std::span<std::byte> data) {
    auto req = proto::decode_request(data.subspan(0, wc.byte_len));
    // Hand the buffer back to the QP immediately (flow control like real
    // verbs apps that repost inside the completion handler).
    Connection& conn = conns_[idx];
    conn.qp->post_recv(conn.recv_bufs[wc.wr_id], wc.wr_id);
    if (!req.has_value()) {
      ++stats_.malformed;
      return;
    }
    sr_pending_.emplace_back(std::move(*req), idx);
    wake();
  }));
  AcceptResult res;
  res.arena_rkey = arena_mr_->rkey();
  res.slot_bytes = cfg_.msg_slot_bytes;
  res.ok = true;
  return res;
}

Shard::MuxGroupResult Shard::accept_mux_group(fabric::QueuePair* qp) {
  // Shared channels pass the same admission gate as dedicated connections:
  // one live group per client node, never unbounded growth across the
  // failure/reopen cycles the chaos families drive.
  if (block_to_conn_.size() + live_mux_groups_ >= cfg_.max_connections) return {};
  std::uint32_t idx;
  if (!free_mux_groups_.empty()) {
    // Reuse a closed group's conns_ slot: same ring bytes, but a *fresh*
    // registration (new rkey), so straggler writes addressed to the dead
    // incarnation still fault on its revoked region.
    idx = free_mux_groups_.back();
    free_mux_groups_.pop_back();
    Connection& c = conns_[idx];
    c.qp = qp;
    c.closed = false;
    std::fill(c.ring->begin(), c.ring->end(), std::byte{0});
    dirty_.reactivate(idx);
  } else {
    idx = static_cast<std::uint32_t>(conns_.size());
    Connection conn;
    conn.qp = qp;
    conn.mux = true;
    conn.ring_slots = std::max<std::uint32_t>(1, cfg_.mux_ring_slots);
    conn.ring = std::make_unique<std::vector<std::byte>>(
        static_cast<std::size_t>(conn.ring_slots) * cfg_.msg_slot_bytes);
    conns_.push_back(std::move(conn));
    dirty_.add_endpoint();
  }
  ++live_mux_groups_;
  Connection& c = conns_[idx];
  c.ring_mr = fabric_.node(node_).register_memory(*c.ring);
  c.ring_mr->set_write_hook(guard([this, idx](std::uint64_t, std::uint32_t) {
    if (dirty_.mark(idx)) wake();
  }));
  MuxGroupResult res;
  res.group = idx;
  res.req_ring = fabric::RemoteAddr{c.ring_mr->rkey(), 0};
  res.slot_bytes = cfg_.msg_slot_bytes;
  res.ring_slots = c.ring_slots;
  res.arena_rkey = arena_mr_->rkey();
  res.lock_rkey = lock_rkey();
  res.lock_words = lock_word_count();
  res.ok = true;
  return res;
}

Shard::MuxEndpointResult Shard::accept_mux_endpoint(std::uint32_t group,
                                                    fabric::RemoteAddr client_resp_slot,
                                                    std::uint32_t client_resp_bytes,
                                                    ClientId client, std::uint32_t window) {
  if (group >= conns_.size() || !conns_[group].mux || conns_[group].closed) return {};
  // Live-endpoint admission bound: a runaway (re)registration loop must not
  // grow the table without limit. Deactivated slots below do not count.
  if (endpoints_.size() - free_endpoints_.size() >= cfg_.max_mux_endpoints) return {};
  MuxEndpoint ep;
  ep.group = group;
  ep.resp_addr = client_resp_slot;
  ep.resp_bytes = client_resp_bytes;
  // An endpoint can never hold more slots than the shared ring has.
  ep.window = std::clamp<std::uint32_t>(window, 1, conns_[group].ring_slots);
  ep.client = client;
  ep.active = true;
  std::uint32_t id;
  if (!free_endpoints_.empty()) {
    id = free_endpoints_.back();
    free_endpoints_.pop_back();
    endpoints_[id] = ep;
  } else {
    id = static_cast<std::uint32_t>(endpoints_.size());
    endpoints_.push_back(ep);
  }
  MuxEndpointResult res;
  res.endpoint = id;
  res.window = ep.window;
  res.ok = true;
  return res;
}

void Shard::close_mux_group(std::uint32_t group) {
  if (group >= conns_.size() || !conns_[group].mux || conns_[group].closed) return;
  Connection& c = conns_[group];
  c.closed = true;
  // Revoking the ring registration makes a straggler client write (issued
  // against the dead QP's successor before the client noticed) fault
  // instead of landing in a ring nobody sweeps.
  c.ring_mr->revoke();
  for (std::uint32_t e = 0; e < endpoints_.size(); ++e) {
    if (endpoints_[e].group == group && endpoints_[e].active) {
      endpoints_[e].active = false;
      free_endpoints_.push_back(e);
    }
  }
  free_mux_groups_.push_back(group);
  if (live_mux_groups_ > 0) --live_mux_groups_;
  // Withdraw any queued dirty mark: the revoked ring can never produce a
  // sweepable frame again, so the retired endpoint must not resurface from
  // the scheduler. accept_mux_group's reuse path reactivates the id.
  dirty_.deregister(group);
}

void Shard::enable_replication(replication::PrimaryConfig rep_cfg) {
  replicator_ = std::make_unique<replication::ReplicationPrimary>(*this, fabric_, node_, rep_cfg);
}

std::uint32_t Shard::arena_rkey() const noexcept { return arena_mr_->rkey(); }

std::uint64_t Shard::lock_word(std::uint32_t idx) const noexcept {
  if (lock_mr_ == nullptr || idx >= cfg_.txn_lock_words) return 0;
  std::uint64_t w = 0;
  std::memcpy(&w, lock_region_.data() + static_cast<std::size_t>(idx) * 8, 8);
  return w;
}

void Shard::on_request_write(std::uint64_t offset) {
  const auto block = static_cast<std::uint32_t>(offset / conn_stride());
  if (block >= block_to_conn_.size()) return;
  if (dirty_.mark(block_to_conn_[block])) wake();
}

void Shard::wake() {
  if (busy_) return;
  busy_ = true;
  // The paper's loop sleeps 100ns between empty scans; a fresh arrival is
  // therefore noticed after at most one backoff.
  schedule_after(cfg_.cpu.idle_backoff, [this] { process_loop(); });
}

void Shard::process_loop() {
  // Send/Recv mode: decoded requests queue up from completion handlers.
  if (!sr_pending_.empty()) {
    auto [req, idx] = std::move(sr_pending_.front());
    sr_pending_.pop_front();
    handle(std::move(req), idx, 0, cfg_.cpu.poll_scan, /*batched=*/false);
    return;
  }
  // Requests an earlier sweep already decoded execute before new polling.
  if (!ready_.empty()) {
    ReadyReq r = std::move(ready_.front());
    ready_.pop_front();
    handle(std::move(r.req), r.conn_idx, r.slot, 0, r.batched, r.endpoint);
    return;
  }
  // Polling mode: round-robin over connections whose rings saw a write;
  // a dirty connection has all of its occupied slots drained in one sweep.
  // The scheduler pops exactly the endpoints that saw traffic, so this is
  // O(active) per wakeup no matter how many connections are registered.
  Duration scan_cost = 0;
  while (!dirty_.empty()) {
    const std::uint32_t idx = dirty_.pop();
    scan_cost += cfg_.cpu.poll_scan;
    sweep_connection(idx);
    if (!ready_.empty()) {
      ReadyReq r = std::move(ready_.front());
      ready_.pop_front();
      handle(std::move(r.req), r.conn_idx, r.slot, scan_cost, r.batched, r.endpoint);
      return;
    }
  }
  charge(scan_cost);
  busy_ = false;  // idle; the write hook re-arms us
}

void Shard::sweep_connection(std::uint32_t idx) {
  if (conns_[idx].mux) {
    sweep_mux_group(idx);
    return;
  }
  const Connection& conn = conns_[idx];
  bool first_in_sweep = true;
  std::uint32_t decoded = 0;
  for (std::uint32_t slot = 0; slot < conn.window; ++slot) {
    const auto span = slot_span(conn.region_block, slot);
    switch (proto::probe_frame(span)) {
      case proto::FrameState::kEmpty:
      case proto::FrameState::kPartial:  // still landing; redirtied on commit
        continue;
      case proto::FrameState::kMalformed:
        // Torn or garbage bytes: scrub the whole slot so the ring does not
        // wedge on a head word that lies about its size.
        ++stats_.malformed;
        std::fill(span.begin(), span.end(), std::byte{0});
        continue;
      case proto::FrameState::kReady:
        break;
    }
    auto req = proto::decode_request(proto::frame_payload(span));
    proto::clear_frame(span);
    if (!req.has_value()) {
      ++stats_.malformed;
      continue;
    }
    ready_.push_back(ReadyReq{std::move(*req), idx, slot, !first_in_sweep});
    first_in_sweep = false;
    ++decoded;
  }
  if (decoded > 0 && fabric_.obs() != nullptr) {
    fabric_.obs()->trace(now(), node_, obs::TraceKind::kRingSweep, cfg_.id, decoded, idx);
  }
}

void Shard::sweep_mux_group(std::uint32_t idx) {
  Connection& conn = conns_[idx];
  if (conn.closed) return;
  bool first_in_sweep = true;
  std::uint32_t decoded = 0;
  std::uint32_t occupied = 0;  // SRQ depth at sweep time (ready + landing)
  for (std::uint32_t slot = 0; slot < conn.ring_slots; ++slot) {
    const auto span = mux_slot_span(conn, slot);
    switch (proto::probe_frame(span)) {
      case proto::FrameState::kEmpty:
        continue;
      case proto::FrameState::kPartial:  // still landing; redirtied on commit
        ++occupied;
        continue;
      case proto::FrameState::kMalformed:
        ++stats_.malformed;
        std::fill(span.begin(), span.end(), std::byte{0});
        continue;
      case proto::FrameState::kReady:
        break;
    }
    ++occupied;
    const auto payload = proto::frame_payload(span);
    const auto hdr = proto::decode_mux_header(payload);
    std::optional<proto::Request> req;
    if (hdr.has_value()) req = proto::decode_request(proto::mux_request_body(payload));
    proto::clear_frame(span);
    if (!req.has_value() || hdr->endpoint >= endpoints_.size() ||
        !endpoints_[hdr->endpoint].active || endpoints_[hdr->endpoint].group != idx ||
        hdr->resp_slot >= endpoints_[hdr->endpoint].window) {
      // Garbage body, unknown endpoint, an endpoint that hopped groups, or a
      // response slot past the endpoint's granted window (a corrupt header
      // must not steer the response RDMA Write outside the endpoint's
      // response ring): drop; the client's timeout path retransmits.
      ++stats_.malformed;
      continue;
    }
    ready_.push_back(ReadyReq{std::move(*req), idx, hdr->resp_slot, !first_in_sweep,
                              hdr->endpoint});
    first_in_sweep = false;
    ++decoded;
    ++stats_.mux_requests;
  }
  if (fabric_.obs() != nullptr) {
    if (decoded > 0) {
      fabric_.obs()->trace(now(), node_, obs::TraceKind::kRingSweep, cfg_.id, decoded, idx);
    }
    fabric_.obs()->trace(now(), node_, obs::TraceKind::kSrqDepth, cfg_.id, occupied, idx);
  }
}

void Shard::handle(proto::Request req, std::uint32_t conn_idx, std::uint32_t slot,
                   Duration cost_so_far, bool batched, std::uint32_t endpoint) {
  if (req.type == proto::MsgType::kScan) {
    // Scans dispatch before the per-key owner filter: the request's key is a
    // range position, not an owned key, and the handler runs its own epoch
    // fence against the continuation token.
    handle_scan(std::move(req), conn_idx, slot, cost_so_far, batched, endpoint);
    return;
  }
  const CpuModel& cpu = cfg_.cpu;
  proto::Response resp;
  resp.req_id = req.req_id;
  Duration cost = cost_so_far;
  bool replicate = false;

  const std::uint64_t key_hash =
      (owner_filter_ || migration_forward_) ? hash_key(req.key) : 0;
  if (owner_filter_ && !owner_filter_(key_hash)) {
    // Epoch fencing: this shard no longer (or does not yet) own the key's
    // range. Answer without touching the store -- serving the request would
    // split ownership with the range's new home.
    ++stats_.wrong_owner;
    resp.status = Status::kWrongOwner;
    cost += batched ? cpu.post_response_batched : cpu.post_response;
    charge(cost);
    schedule_after(cost, [this, resp = std::move(resp), conn_idx, slot, batched, endpoint] {
      send_response(resp, conn_idx, slot, batched, endpoint);
      process_loop();
    });
    return;
  }

  switch (req.type) {
    case proto::MsgType::kGet: {
      cost += cpu.base_get;
      auto r = store_->get(req.key, now());
      resp.status = r.status();
      if (r.ok()) {
        const core::GetView& view = r.value();
        resp.value.assign(view.value);
        resp.version = view.version;
        cost += static_cast<Duration>(cpu.per_value_byte * static_cast<double>(view.value.size()));
        if (cfg_.grant_remote_pointers) {
          resp.remote_ptr.rkey = arena_mr_->rkey();
          resp.remote_ptr.offset = view.offset;
          resp.remote_ptr.total_len = view.total_len;
          resp.remote_ptr.lease_expiry = view.lease_expiry;
          resp.remote_ptr.version = view.version;
          resp.remote_ptr.shard = cfg_.id;
        }
      }
      ++stats_.gets;
      if (hotkey_ != nullptr && r.ok()) hotkey_note_get(req.key, resp.version, resp);
      break;
    }
    case proto::MsgType::kInsert:
    case proto::MsgType::kUpdate:
    case proto::MsgType::kPut: {
      cost += cpu.base_put +
              static_cast<Duration>(cpu.per_value_byte * static_cast<double>(req.value.size()));
      if (req.type == proto::MsgType::kInsert) {
        resp.status = store_->insert(req.key, req.value, now());
      } else if (req.type == proto::MsgType::kUpdate) {
        resp.status = store_->update(req.key, req.value, now());
      } else {
        resp.status = store_->put(req.key, req.value, now());
      }
      replicate = resp.status == Status::kOk;
      ++stats_.puts;
      break;
    }
    case proto::MsgType::kRemove: {
      cost += cpu.base_remove;
      resp.status = store_->remove(req.key, now());
      replicate = resp.status == Status::kOk;
      ++stats_.removes;
      break;
    }
    case proto::MsgType::kRenewLease: {
      cost += cpu.base_renew;
      resp.status = store_->renew_lease(req.key, now());
      if (resp.status == Status::kOk && cfg_.grant_remote_pointers) {
        // Return the refreshed pointer so the client's cache entry reflects
        // the extended lease term.
        auto r = store_->get(req.key, now(), /*grant_lease=*/false);
        if (r.ok()) {
          resp.remote_ptr.rkey = arena_mr_->rkey();
          resp.remote_ptr.offset = r.value().offset;
          resp.remote_ptr.total_len = r.value().total_len;
          resp.remote_ptr.lease_expiry = r.value().lease_expiry;
          resp.remote_ptr.version = r.value().version;
          resp.remote_ptr.shard = cfg_.id;
          // Renewals are the hot-key tracker's only visibility into
          // one-sided read traffic (RDMA GETs never reach this handler), so
          // they count as reads -- and the refreshed cache entry must carry
          // the current promotion set, not silently wipe it.
          if (hotkey_ != nullptr) hotkey_note_get(req.key, r.value().version, resp);
        }
      }
      ++stats_.renews;
      break;
    }
    case proto::MsgType::kTxnCommit:
      // Multi-key commit group: validated and applied all-or-nothing in its
      // own handler (which also owns the replication barrier).
      handle_txn_commit(std::move(req), conn_idx, slot, cost, batched, endpoint);
      return;
    default:
      ++stats_.malformed;
      resp.status = Status::kInvalidArgument;
      break;
  }

  cost += batched ? cpu.post_response_batched : cpu.post_response;
  schedule_gc();

  if (replicate && migration_forward_ && forward_moving_(key_hash)) {
    // Dual ownership: the write landed in a range currently being migrated
    // away, so it also rides the migration flow's record ring. Copied
    // before the replicator below moves the key/value out of the request.
    proto::RepRecord fwd;
    fwd.op = req.type == proto::MsgType::kRemove ? proto::MsgType::kRemove
                                                 : proto::MsgType::kPut;
    fwd.op_time = now();
    fwd.key = req.key;
    fwd.value = req.value;
    ++stats_.forwarded;
    migration_forward_(key_hash, std::move(fwd));
  }

  // Hot-key invalidation: a write to a promoted key must flip every follower
  // copy's guardian to DEAD *before* the ack leaves, or a client could read
  // the superseded value from a follower after observing the write
  // acknowledged. The kill completions therefore join the ack barrier.
  std::shared_ptr<Promotion> promo;
  if (hotkey_ != nullptr && replicate) promo = take_promotion_for_write(req.key);
  const int kills = promo != nullptr ? static_cast<int>(promo->targets.size()) : 0;

  if (replicate && replicator_ != nullptr && replicator_->secondary_count() > 0) {
    cost += replicator_->post_cost();
    proto::RepRecord rec;
    rec.op = req.type == proto::MsgType::kRemove ? proto::MsgType::kRemove : proto::MsgType::kPut;
    rec.op_time = now();
    rec.key = std::move(req.key);
    rec.value = std::move(req.value);

    // The response leaves once BOTH the shard's CPU work is done and the
    // replication policy is satisfied. Under the relaxed log protocol the
    // shard polls the next request as soon as the records are posted (the
    // overlap Fig 13 credits); the conventional strict protocol serializes:
    // the shard cannot move on until the secondary acknowledged.
    const bool blocking =
        replicator_->config().mode == replication::ReplicationMode::kStrictAck;
    auto barrier = std::make_shared<int>(2 + kills);
    std::function<void()> arm =
        guard([this, resp, conn_idx, slot, batched, endpoint, barrier, blocking] {
          if (--*barrier > 0) return;
          send_response(resp, conn_idx, slot, batched, endpoint);
          if (blocking) process_loop();
        });
    if (promo != nullptr) post_promotion_kills(promo, arm);
    replicator_->replicate(std::move(rec), arm);
    charge(cost);
    schedule_after(cost, [this, arm, blocking] {
      arm();
      if (!blocking) process_loop();
    });
    return;
  }

  if (kills > 0) {
    // No replication stream to wait on, but the advertised copies still
    // must die before the ack: same barrier shape, CPU + kill completions.
    auto barrier = std::make_shared<int>(1 + kills);
    std::function<void()> arm =
        guard([this, resp, conn_idx, slot, batched, endpoint, barrier] {
          if (--*barrier > 0) return;
          send_response(resp, conn_idx, slot, batched, endpoint);
        });
    post_promotion_kills(promo, arm);
    charge(cost);
    schedule_after(cost, [this, arm] {
      arm();
      process_loop();
    });
    return;
  }

  charge(cost);
  schedule_after(cost, [this, resp = std::move(resp), conn_idx, slot, batched, endpoint] {
    send_response(resp, conn_idx, slot, batched, endpoint);
    process_loop();
  });
}

void Shard::handle_txn_commit(proto::Request req, std::uint32_t conn_idx, std::uint32_t slot,
                              Duration cost, bool batched, std::uint32_t endpoint) {
  const CpuModel& cpu = cfg_.cpu;
  proto::Response resp;
  resp.req_id = req.req_id;
  cost += cpu.base_txn_commit;

  auto respond = [this, conn_idx, slot, batched, endpoint](proto::Response r, Duration c) {
    charge(c);
    schedule_after(c, [this, r = std::move(r), conn_idx, slot, batched, endpoint] {
      send_response(r, conn_idx, slot, batched, endpoint);
      process_loop();
    });
  };

  const auto* value_bytes = reinterpret_cast<const std::byte*>(req.value.data());
  auto txn = proto::decode_txn_commit({value_bytes, req.value.size()});
  if (!txn.has_value() || txn->ops.empty() || lock_mr_ == nullptr) {
    // Garbage payload, an empty group, or a commit aimed at a shard that
    // never provisioned lock words: refuse before touching anything.
    ++stats_.malformed;
    resp.status = Status::kInvalidArgument;
    cost += batched ? cpu.post_response_batched : cpu.post_response;
    respond(std::move(resp), cost);
    return;
  }

  const std::uint64_t txn_id = txn->hdr.txn_id;
  auto reject = [&](Status why) {
    if (why == Status::kWrongOwner) {
      ++stats_.wrong_owner;
    } else {
      ++stats_.txn_conflicts;
    }
    if (fabric_.obs() != nullptr) {
      fabric_.obs()->trace(now(), node_, obs::TraceKind::kTxnCommitRejected, cfg_.id, txn_id,
                           static_cast<std::uint64_t>(why));
    }
    resp.status = why;
    cost += batched ? cpu.post_response_batched : cpu.post_response;
    respond(std::move(resp), cost);
  };

  // Validation order: epoch fence first (a promotion/migration the client
  // has not seen invalidates its whole lock set), then per-key ownership,
  // then every lock word. Nothing applies unless all three pass for the
  // entire group -- the all-or-nothing half of the invariant.
  if (epoch_source_ && txn->hdr.epoch != epoch_source_()) {
    reject(Status::kTxnConflict);
    return;
  }
  std::vector<std::uint64_t> hashes;
  hashes.reserve(txn->ops.size());
  for (const auto& op : txn->ops) hashes.push_back(hash_key(op.key));
  if (owner_filter_) {
    for (const std::uint64_t h : hashes) {
      if (!owner_filter_(h)) {
        reject(Status::kWrongOwner);
        return;
      }
    }
  }
  const std::uint64_t held = std::uint64_t{1} << 63;
  for (const std::uint64_t h : hashes) {
    const auto widx = static_cast<std::uint32_t>(h % cfg_.txn_lock_words);
    if (lock_word(widx) != (held | txn_id)) {
      reject(Status::kTxnConflict);
      return;
    }
  }

  // Apply the whole group in this single invocation: the shard is one
  // logical thread, so no reader or rival commit can interleave. A store
  // failure mid-group (arena exhaustion) rolls the applied prefix back so
  // partial application is impossible even then.
  struct Undo {
    std::string key;
    bool existed = false;
    std::string old_value;
  };
  std::vector<Undo> undo;
  undo.reserve(txn->ops.size());
  Status fail = Status::kOk;
  for (const auto& op : txn->ops) {
    Undo u;
    u.key = op.key;
    auto cur = store_->get(op.key, now(), /*grant_lease=*/false);
    if (cur.ok()) {
      u.existed = true;
      u.old_value.assign(cur.value().value);
    }
    Status st;
    if (op.op == proto::MsgType::kRemove) {
      cost += cpu.base_remove;
      st = store_->remove(op.key, now());
      if (st == Status::kNotFound) st = Status::kOk;  // desired end state holds
    } else {
      cost += cpu.base_put +
              static_cast<Duration>(cpu.per_value_byte * static_cast<double>(op.value.size()));
      st = store_->put(op.key, op.value, now());
    }
    if (st != Status::kOk) {
      fail = st;
      break;
    }
    undo.push_back(std::move(u));
  }
  if (fail != Status::kOk) {
    for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
      if (it->existed) {
        store_->put(it->key, it->old_value, now());
      } else {
        store_->remove(it->key, now());
      }
    }
    reject(fail);
    return;
  }

  ++stats_.txn_commits;
  if (fabric_.obs() != nullptr) {
    fabric_.obs()->trace(now(), node_, obs::TraceKind::kTxnCommitApplied, cfg_.id, txn_id,
                         txn->ops.size());
  }
  resp.status = Status::kOk;
  cost += batched ? cpu.post_response_batched : cpu.post_response;
  schedule_gc();

  // Dual-ownership catch-up, per op, exactly as the single-key PUT path.
  if (migration_forward_) {
    for (std::size_t i = 0; i < txn->ops.size(); ++i) {
      if (!forward_moving_(hashes[i])) continue;
      proto::RepRecord fwd;
      fwd.op = txn->ops[i].op == proto::MsgType::kRemove ? proto::MsgType::kRemove
                                                         : proto::MsgType::kPut;
      fwd.op_time = now();
      fwd.key = txn->ops[i].key;
      fwd.value = txn->ops[i].value;
      ++stats_.forwarded;
      migration_forward_(hashes[i], std::move(fwd));
    }
  }

  // Hot-key invalidation across the whole group: every promoted key the
  // commit touched loses its follower copies before the commit ack leaves
  // (same pre-ack guardian-kill rule as the single-key write path).
  std::vector<std::shared_ptr<Promotion>> promos;
  int kills = 0;
  if (hotkey_ != nullptr) {
    for (const auto& op : txn->ops) {
      if (auto p = take_promotion_for_write(op.key)) {
        kills += static_cast<int>(p->targets.size());
        promos.push_back(std::move(p));
      }
    }
  }

  if (replicator_ != nullptr && replicator_->secondary_count() > 0) {
    // Every op of the group rides the replication ring before the ack
    // leaves (group-sized barrier): an acked commit therefore survives a
    // primary kill in its entirety, never as a partial group.
    cost += replicator_->post_cost() * txn->ops.size();
    const bool blocking =
        replicator_->config().mode == replication::ReplicationMode::kStrictAck;
    auto barrier = std::make_shared<int>(static_cast<int>(txn->ops.size()) + 1 + kills);
    std::function<void()> arm =
        guard([this, resp, conn_idx, slot, batched, endpoint, barrier, blocking] {
          if (--*barrier > 0) return;
          send_response(resp, conn_idx, slot, batched, endpoint);
          if (blocking) process_loop();
        });
    for (const auto& p : promos) post_promotion_kills(p, arm);
    for (auto& op : txn->ops) {
      proto::RepRecord rec;
      rec.op = op.op == proto::MsgType::kRemove ? proto::MsgType::kRemove : proto::MsgType::kPut;
      rec.op_time = now();
      rec.key = std::move(op.key);
      rec.value = std::move(op.value);
      replicator_->replicate(std::move(rec), arm);
    }
    charge(cost);
    schedule_after(cost, [this, arm, blocking] {
      arm();
      if (!blocking) process_loop();
    });
    return;
  }

  if (kills > 0) {
    auto barrier = std::make_shared<int>(1 + kills);
    std::function<void()> arm =
        guard([this, resp, conn_idx, slot, batched, endpoint, barrier] {
          if (--*barrier > 0) return;
          send_response(resp, conn_idx, slot, batched, endpoint);
        });
    for (const auto& p : promos) post_promotion_kills(p, arm);
    charge(cost);
    schedule_after(cost, [this, arm] {
      arm();
      process_loop();
    });
    return;
  }

  respond(std::move(resp), cost);
}

void Shard::handle_scan(proto::Request req, std::uint32_t conn_idx, std::uint32_t slot,
                        Duration cost, bool batched, std::uint32_t endpoint) {
  const CpuModel& cpu = cfg_.cpu;
  proto::Response resp;
  resp.req_id = req.req_id;
  cost += cpu.base_scan;

  auto respond = [this, conn_idx, slot, batched, endpoint](proto::Response r, Duration c) {
    charge(c);
    schedule_after(c, [this, r = std::move(r), conn_idx, slot, batched, endpoint] {
      send_response(r, conn_idx, slot, batched, endpoint);
      process_loop();
    });
  };

  const auto* value_bytes = reinterpret_cast<const std::byte*>(req.value.data());
  const auto sreq = proto::decode_scan_req({value_bytes, req.value.size()});
  index::OrderedIndex* idx = store_->index();
  if (!sreq.has_value() || idx == nullptr) {
    // Garbage payload or a scan aimed at a shard without an ordered index:
    // refuse before touching anything (mirrors the kTxnCommit discipline).
    ++stats_.malformed;
    resp.status = Status::kInvalidArgument;
    cost += batched ? cpu.post_response_batched : cpu.post_response;
    respond(std::move(resp), cost);
    return;
  }

  // Epoch fence: a continuation token minted under an older routing epoch may
  // straddle a migration seal or a promotion; the client must re-resolve and
  // resume rather than trust a stale shard set.
  const std::uint64_t live_epoch = epoch_source_ ? epoch_source_() : 0;
  if (sreq->epoch != live_epoch) {
    ++stats_.scan_token_rejects;
    if (fabric_.obs() != nullptr) {
      fabric_.obs()->trace(now(), node_, obs::TraceKind::kScanTokenRejected, cfg_.id,
                           sreq->epoch, live_epoch);
    }
    resp.status = Status::kWrongOwner;
    cost += batched ? cpu.post_response_batched : cpu.post_response;
    respond(std::move(resp), cost);
    return;
  }

  // The batch must fit the requester's response slot -- leave margin for the
  // response envelope + frame so send_response never degrades a scan.
  std::uint32_t resp_bytes = conns_[conn_idx].resp_bytes;
  if (endpoint != kNoEndpoint && endpoint < endpoints_.size()) {
    resp_bytes = endpoints_[endpoint].resp_bytes;
  }
  const std::size_t budget = resp_bytes > 192 ? resp_bytes - 192 : 0;
  const std::uint32_t limit =
      std::min(std::max<std::uint32_t>(sreq->limit, 1), cfg_.scan_max_batch);
  const bool exclusive = (sreq->flags & proto::kScanFlagExclusive) != 0;

  proto::ScanResp body;
  body.epoch = live_epoch;
  std::size_t bytes_used = 0;
  std::uint64_t payload_bytes = 0;
  bool more = false;
  idx->scan(req.key, exclusive, [&](std::string_view k, std::uint64_t off) {
    const std::string_view v = store_->value_at(off);
    const std::size_t entry_bytes = 8 + k.size() + v.size();
    // Always admit the first entry even past the byte budget: a zero-entry
    // not-done response would make the client re-issue the same token forever.
    if (body.entries.size() >= limit ||
        (!body.entries.empty() && bytes_used + entry_bytes > budget)) {
      more = true;
      return false;
    }
    body.entries.emplace_back(std::string(k), std::string(v));
    bytes_used += entry_bytes;
    payload_bytes += v.size();
    return true;
  });
  body.done = !more;
  cost += cpu.per_scan_entry * static_cast<Duration>(body.entries.size()) +
          static_cast<Duration>(cpu.per_value_byte * static_cast<double>(payload_bytes));

  // When the batch stops mid-range, hand the client a one-sided hint for the
  // leaf holding the continuation so short follow-ups can skip the shard CPU.
  if (!body.done && leaf_mr_ != nullptr && !body.entries.empty()) {
    if (auto leaf = idx->leaf_for(body.entries.back().first, /*exclusive=*/true)) {
      if (auto hint = refresh_leaf_mirror(*leaf, live_epoch, cost)) body.hint = *hint;
    }
  }

  ++stats_.scans;
  stats_.scan_entries += body.entries.size();
  if (fabric_.obs() != nullptr) {
    fabric_.obs()->trace(now(), node_, obs::TraceKind::kScanHandled, cfg_.id,
                         body.entries.size(), body.done ? 1 : 0);
  }
  const auto enc = proto::encode_scan_resp(body);
  resp.status = Status::kOk;
  resp.value.assign(reinterpret_cast<const char*>(enc.data()), enc.size());
  cost += batched ? cpu.post_response_batched : cpu.post_response;
  respond(std::move(resp), cost);
}

std::optional<proto::ScanLeafHint> Shard::refresh_leaf_mirror(
    const index::OrderedIndex::LeafRef& leaf, std::uint64_t epoch, Duration& cost) {
  if (leaf_mr_ == nullptr || mirror_slots_.empty()) return std::nullopt;
  std::vector<std::pair<std::string_view, std::string_view>> kv;
  kv.reserve(leaf.entries->size());
  for (const auto& e : *leaf.entries) kv.emplace_back(e.key, store_->value_at(e.offset));
  if (index::leaf_page_bytes(kv) > cfg_.scan_mirror_page_bytes) {
    ++stats_.scan_leaf_oversize;
    return std::nullopt;
  }

  std::uint32_t mslot;
  const auto it = mirror_slot_of_.find(leaf.id);
  if (it != mirror_slot_of_.end()) {
    mslot = it->second;
  } else {
    // Round-robin eviction keeps the mirror O(pages) regardless of tree size;
    // a stale victim page simply fails its version check client-side.
    mslot = mirror_clock_++ % static_cast<std::uint32_t>(mirror_slots_.size());
    if (mirror_slots_[mslot].used) mirror_slot_of_.erase(mirror_slots_[mslot].leaf_id);
    mirror_slot_of_[leaf.id] = mslot;
    mirror_slots_[mslot] = MirrorSlot{};
  }
  MirrorSlot& ms = mirror_slots_[mslot];
  if (!ms.used || ms.leaf_version != leaf.version || ms.epoch != epoch) {
    const std::size_t off =
        static_cast<std::size_t>(mslot) * cfg_.scan_mirror_page_bytes;
    std::span<std::byte> page{leaf_region_.data() + off, cfg_.scan_mirror_page_bytes};
    if (!index::encode_leaf_page(page, leaf.id, leaf.version, epoch, leaf.last, kv)) {
      return std::nullopt;
    }
    ms.used = true;
    ms.leaf_id = leaf.id;
    ms.leaf_version = leaf.version;
    ms.epoch = epoch;
    ++stats_.scan_leaf_refreshes;
    cost += cfg_.cpu.leaf_refresh;
  }

  proto::ScanLeafHint hint;
  hint.node = node_;
  hint.rkey = leaf_mr_->rkey();
  hint.offset = static_cast<std::uint64_t>(mslot) * cfg_.scan_mirror_page_bytes;
  hint.len = cfg_.scan_mirror_page_bytes;
  hint.leaf_id = leaf.id;
  hint.leaf_version = leaf.version;
  return hint;
}

void Shard::send_response(const proto::Response& resp, std::uint32_t conn_idx,
                          std::uint32_t slot, bool batched, std::uint32_t endpoint) {
  Connection& conn = conns_[conn_idx];
  // Mux requests answer into the *endpoint's* private response ring; the
  // shared group QP carries the write. If the group died while the request
  // was executing, drop the response -- the endpoint retransmits through a
  // fresh channel and the (idempotent-at-the-client) retry re-answers.
  fabric::RemoteAddr resp_base = conn.resp_addr;
  std::uint32_t resp_bytes = conn.resp_bytes;
  if (endpoint != kNoEndpoint) {
    if (conn.closed || endpoint >= endpoints_.size() || !endpoints_[endpoint].active) return;
    resp_base = endpoints_[endpoint].resp_addr;
    resp_bytes = endpoints_[endpoint].resp_bytes;
  }
  // The response lands in the resp-ring slot matching the request's slot,
  // which is exactly what releases that slot pair for reuse at the client.
  const fabric::RemoteAddr dst{resp_base.rkey,
                               resp_base.offset + proto::ring_slot_offset(slot, resp_bytes)};
  const auto payload = proto::encode_response(resp);
  if (conn.send_recv) {
    conn.qp->post_send(payload);
    ++stats_.responses;
    return;
  }
  const std::size_t framed = proto::frame_size(payload.size());
  if (framed > resp_bytes) {
    // Response exceeds the client's slot (value too large for the
    // configured slot size): degrade to an error the client can act on.
    proto::Response err;
    err.req_id = resp.req_id;
    err.status = Status::kInvalidArgument;
    const auto err_payload = proto::encode_response(err);
    std::vector<std::byte> frame(proto::frame_size(err_payload.size()));
    proto::encode_frame(frame, err_payload);
    conn.qp->post_write(frame, dst, 0, nullptr, batched);
    ++stats_.responses;
    if (batched) ++stats_.batched_responses;
    return;
  }
  std::vector<std::byte> frame(framed);
  proto::encode_frame(frame, payload);
  conn.qp->post_write(frame, dst, 0, nullptr, batched);
  ++stats_.responses;
  if (batched) ++stats_.batched_responses;
}

// --- hot-key replication plane (DESIGN.md §12) -----------------------------

void Shard::hotkey_note_get(const std::string& key, std::uint64_t version,
                            proto::Response& resp) {
  // Lazy epoch demotion: a routing-epoch advance (a promotion elsewhere, a
  // migration commit) retires every advertisement minted under the old
  // ownership map before anything else is advertised under the new one.
  if (epoch_source_) {
    const std::uint64_t e = epoch_source_();
    if (e != hotkey_epoch_seen_) {
      hotkey_epoch_seen_ = e;
      demote_all(/*reason=*/1);
    }
  }
  hotkey_->record(key);
  if (!hotkey_scan_armed_) {
    hotkey_scan_armed_ = true;
    schedule_after(cfg_.hotkey_scan_interval, [this] { hotkey_scan(); });
  }
  if (!cfg_.grant_remote_pointers) return;
  const auto it = promotions_.find(key);
  if (it == promotions_.end() || !it->second->live || it->second->version != version) return;
  resp.replicas = it->second->replicas;
  ++stats_.hotkey_advertised;
}

void Shard::hotkey_scan() {
  hotkey_scan_armed_ = false;
  if (epoch_source_) {
    const std::uint64_t e = epoch_source_();
    if (e != hotkey_epoch_seen_) {
      hotkey_epoch_seen_ = e;
      demote_all(/*reason=*/1);
    }
  }
  const bool had_traffic = hotkey_->total() > 0;
  const auto top = hotkey_->top(cfg_.hotkey_top_k, cfg_.hotkey_promote_min_hits);
  hotkey_->clear();

  // Demote promotions that cooled off this interval: stop advertising,
  // poison the copies, then free their slots. The kill is not optional:
  // clients hold the advertisement until their lease runs out, so after a
  // kill-free demotion a write would find no promotion to invalidate and
  // ack while a straggler still reads the superseded value off a follower.
  std::vector<std::shared_ptr<Promotion>> cooled;
  for (const auto& [key, p] : promotions_) {
    bool still_hot = false;
    for (const auto& e : top) {
      if (e.key == key) {
        still_hot = true;
        break;
      }
    }
    if (!still_hot) cooled.push_back(p);
  }
  for (const auto& p : cooled) retire_promotion(p, /*reason=*/2);

  for (const auto& e : top) {
    if (promotions_.count(e.key) != 0) continue;
    promote_key(e.key);
  }

  if (had_traffic || !promotions_.empty()) {
    hotkey_scan_armed_ = true;
    schedule_after(cfg_.hotkey_scan_interval, [this] { hotkey_scan(); });
  }
}

void Shard::promote_key(const std::string& key) {
  if (replicator_ == nullptr) return;
  // Claim a slab slot (same index on every follower).
  std::uint32_t slot;
  if (!free_promo_slots_.empty()) {
    slot = free_promo_slots_.back();
    free_promo_slots_.pop_back();
  } else if (promo_slots_used_ < cfg_.hotkey_top_k) {
    slot = promo_slots_used_++;
  } else {
    return;  // slab full; retry next interval once something demotes
  }
  auto reclaim = [this, slot] { free_promo_slots_.push_back(slot); };

  auto r = store_->get(key, now(), /*grant_lease=*/false);
  if (!r.ok()) {
    reclaim();
    return;
  }
  const core::GetView& view = r.value();
  const std::size_t len = core::item_size(key.size(), view.value.size());
  if (len > cfg_.hotkey_slot_bytes) {
    reclaim();
    return;  // item does not fit a slab slot; never promotable
  }

  auto p = std::make_shared<Promotion>();
  p->key = key;
  p->key_hash = hash_key(key);
  p->slot = slot;
  p->version = view.version;
  p->image.assign(len, std::byte{0});
  core::ItemView(p->image.data())
      .initialize(key, view.value, view.version, view.lease_expiry);

  replicator_->for_each_live_link(
      [&](replication::SecondaryShard& sec, fabric::QueuePair& qp) {
        if (p->targets.size() >= proto::kMaxReplicaPtrs) return;
        fabric::MemoryRegion* mr =
            sec.promo_slab(cfg_.hotkey_slot_bytes, cfg_.hotkey_top_k);
        Promotion::Target t;
        t.sec = &sec;
        t.qp = &qp;
        t.node = sec.node();
        t.rkey = mr->rkey();
        t.offset = static_cast<std::uint64_t>(slot) * cfg_.hotkey_slot_bytes;
        p->targets.push_back(t);
      });
  if (p->targets.empty()) {
    reclaim();
    return;  // no live followers to host a copy
  }

  promotions_.emplace(key, p);
  for (const auto& t : p->targets) {
    ++p->pending;
    t.qp->post_write(
        p->image, fabric::RemoteAddr{t.rkey, t.offset}, 0,
        guard([this, p](const fabric::Completion& wc) {
          if (wc.status != fabric::WcStatus::kSuccess) {
            // Follower died (or its channel tore) mid-copy: abort the whole
            // promotion -- a partial copy set must never be advertised.
            if (!p->retired) retire_promotion(p, /*reason=*/2);
            promotion_op_done(p);
            return;
          }
          promotion_op_done(p);
          if (p->retired || p->pending != 0 || p->live) return;
          // Every copy landed: go live and start advertising.
          p->live = true;
          p->replicas.reserve(p->targets.size());
          for (const auto& tgt : p->targets) {
            proto::ReplicaPtr rp;
            rp.node = tgt.node;
            rp.rkey = tgt.rkey;
            rp.offset = tgt.offset;
            rp.total_len = static_cast<std::uint32_t>(p->image.size());
            p->replicas.push_back(rp);
          }
          ++stats_.hotkey_promotions;
          if (fabric_.obs() != nullptr) {
            fabric_.obs()->trace(now(), node_, obs::TraceKind::kHotKeyPromoted, cfg_.id,
                                 p->key_hash, p->replicas.size());
          }
        }));
  }
}

void Shard::withdraw_promotions(std::uint64_t reason) {
  for (const auto& [key, p] : promotions_) {
    if (p->retired) continue;  // already traced its own demotion
    p->retired = true;
    p->live = false;
    ++stats_.hotkey_demotions;
    if (fabric_.obs() != nullptr) {
      fabric_.obs()->trace(now(), node_, obs::TraceKind::kHotKeyDemoted, cfg_.id,
                           p->key_hash, reason);
    }
  }
  promotions_.clear();
}

void Shard::demote_all(std::uint64_t reason) {
  std::vector<std::shared_ptr<Promotion>> all;
  all.reserve(promotions_.size());
  for (const auto& [key, p] : promotions_) all.push_back(p);
  for (const auto& p : all) retire_promotion(p, reason);
}

void Shard::retire_promotion(const std::shared_ptr<Promotion>& p, std::uint64_t reason) {
  if (p->retired) return;
  const bool advertised = p->live && !p->targets.empty();
  p->retired = true;
  p->live = false;
  ++stats_.hotkey_demotions;
  if (fabric_.obs() != nullptr) {
    fabric_.obs()->trace(now(), node_, obs::TraceKind::kHotKeyDemoted, cfg_.id, p->key_hash,
                         reason);
  }
  if (advertised) {
    // Clients keep the advertisement until their lease expires, so the
    // copies must fail closed before the slot can be reused -- otherwise a
    // post-demotion write finds no promotion to invalidate and acks while a
    // follower still serves the superseded value. The promotion stays in
    // promotions_ (dying, never advertised again) until the last kill
    // drains through promotion_op_done, so a racing write can still find it
    // and join the kill barrier.
    post_promotion_kills(p, [] {});
    return;
  }
  if (p->pending == 0) release_promo_slot(p);
}

std::shared_ptr<Shard::Promotion> Shard::take_promotion_for_write(const std::string& key) {
  const auto it = promotions_.find(key);
  if (it == promotions_.end()) return nullptr;
  std::shared_ptr<Promotion> p = it->second;
  if (p->retired) {
    // A cooldown/epoch demotion already posted guardian kills that are
    // still in flight. The write still must not ack before the copies are
    // dead: the caller posts one more (idempotent) kill per target, whose
    // completion orders after the in-flight one on the same QP.
    return p->targets.empty() ? nullptr : p;
  }
  const bool was_live = p->live;
  p->retired = true;
  p->live = false;
  ++stats_.hotkey_demotions;
  if (fabric_.obs() != nullptr) {
    fabric_.obs()->trace(now(), node_, obs::TraceKind::kHotKeyDemoted, cfg_.id, p->key_hash,
                         /*reason=*/0);
  }
  if (!was_live || p->targets.empty()) {
    // Never advertised (copy still in flight or aborted): no client can
    // hold a pointer to the copies, so no kill gates the ack. The slot
    // frees when the last in-flight copy lands.
    if (p->pending == 0) release_promo_slot(p);
    return nullptr;
  }
  return p;  // caller posts guardian kills before acking
}

void Shard::post_promotion_kills(const std::shared_ptr<Promotion>& p,
                                 const std::function<void()>& settle) {
  for (std::size_t i = 0; i < p->targets.size(); ++i) {
    ++p->pending;
    ++stats_.hotkey_invalidations;
    if (fabric_.obs() != nullptr) {
      fabric_.obs()->trace(now(), node_, obs::TraceKind::kHotKeyInvalidated, cfg_.id,
                           p->key_hash, p->targets[i].node);
    }
    post_one_kill(p, i, 1, settle);
  }
}

void Shard::post_one_kill(const std::shared_ptr<Promotion>& p, std::size_t target_idx,
                          int attempt, std::function<void()> settle) {
  constexpr int kMaxKillAttempts = 8;
  const Promotion::Target& t = p->targets[target_idx];
  // The guardian word lives in the image's last 8 bytes; flipping it to
  // DEAD makes every client-side validate_item() of the copy fail closed.
  const fabric::RemoteAddr dst{t.rkey,
                               t.offset + p->image.size() - sizeof(std::uint64_t)};
  t.qp->post_write(
      dead_word_, dst, 0,
      guard([this, p, target_idx, attempt,
             settle = std::move(settle)](const fabric::Completion& wc) mutable {
        const Promotion::Target& tgt = p->targets[target_idx];
        const bool follower_dead = tgt.sec == nullptr || !tgt.sec->alive();
        if (wc.status == fabric::WcStatus::kSuccess || follower_dead ||
            attempt >= kMaxKillAttempts) {
          // Success, or the follower is a corpse (its promo slab's
          // registration is revoked, so any client read faults instead of
          // returning the copy -- the invalidation goal holds vacuously).
          if (wc.status != fabric::WcStatus::kSuccess && !follower_dead &&
              attempt >= kMaxKillAttempts) {
            HYDRA_WARN("hotkey: guardian kill refused to land after %d attempts "
                       "(status %d) toward node %llu",
                       attempt, static_cast<int>(wc.status),
                       static_cast<unsigned long long>(tgt.node));
          }
          settle();
          promotion_op_done(p);
          return;
        }
        post_one_kill(p, target_idx, attempt + 1, std::move(settle));
      }));
}

void Shard::promotion_op_done(const std::shared_ptr<Promotion>& p) {
  if (p->pending > 0) --p->pending;
  if (p->retired && p->pending == 0) release_promo_slot(p);
}

void Shard::release_promo_slot(const std::shared_ptr<Promotion>& p) {
  if (p->slot_released) return;
  p->slot_released = true;
  free_promo_slots_.push_back(p->slot);
  // Dying promotions linger in the map until their kills drain (so racing
  // writes can join the kill barrier); drop the entry now that it is inert.
  const auto it = promotions_.find(p->key);
  if (it != promotions_.end() && it->second == p) promotions_.erase(it);
}

void Shard::schedule_gc() {
  if (gc_scheduled_ || store_->deferred_count() == 0) return;
  gc_scheduled_ = true;
  const Time due = std::max<Time>(store_->next_reclaim_due(), now() + cfg_.gc_min_interval);
  schedule_at(due, [this] {
    // Background reclamation: on real hardware this is a helper thread;
    // here it costs the shard nothing on the request path (paper 4.2.3).
    store_->collect_garbage(now());
    gc_scheduled_ = false;
    schedule_gc();
  });
}

}  // namespace hydra::server
