// Hot-key frequency tracking (DESIGN.md §12).
//
// A small space-saving top-k sketch (Metwally et al., "Efficient computation
// of frequent and top-k elements in data streams"): a bounded key -> counter
// map; when a new key arrives into a full sketch it *replaces* the
// minimum-count entry and inherits its count + 1, so genuinely hot keys can
// never be starved out by a long tail of singletons. The shard records every
// GET into the sketch and periodically promotes the top-k survivors.
//
// Deterministic: ties broken by insertion order (std::map iteration order is
// keyed on the key string), no clocks, no randomness.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace hydra::server {

class HotKeyTracker {
 public:
  explicit HotKeyTracker(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

  /// Records one access. O(log capacity) on hit, O(capacity) on replacement
  /// (bounded by the sketch size, never by the keyspace).
  void record(std::string_view key) {
    ++total_;
    if (auto it = counts_.find(key); it != counts_.end()) {
      ++it->second;
      return;
    }
    if (counts_.size() < capacity_) {
      counts_.emplace(std::string(key), 1);
      return;
    }
    // Space-saving replacement: evict the minimum-count entry; the newcomer
    // inherits min+1 (an upper bound on its true count).
    auto min_it = counts_.begin();
    for (auto it = std::next(counts_.begin()); it != counts_.end(); ++it) {
      if (it->second < min_it->second) min_it = it;
    }
    const std::uint64_t inherited = min_it->second + 1;
    counts_.erase(min_it);
    counts_.emplace(std::string(key), inherited);
  }

  struct Entry {
    std::string key;
    std::uint64_t count = 0;
  };

  /// The k highest-count keys with count >= min_hits, hottest first. Ties
  /// broken lexicographically for determinism.
  [[nodiscard]] std::vector<Entry> top(std::size_t k, std::uint64_t min_hits = 1) const {
    std::vector<Entry> out;
    out.reserve(counts_.size());
    for (const auto& [key, count] : counts_) {
      if (count >= min_hits) out.push_back({key, count});
    }
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
      return a.count != b.count ? a.count > b.count : a.key < b.key;
    });
    if (out.size() > k) out.resize(k);
    return out;
  }

  /// Restarts the counting window (promotion decisions are per-interval, so
  /// a key that cooled off stops being advertised within one scan period).
  void clear() {
    counts_.clear();
    total_ = 0;
  }

  [[nodiscard]] std::size_t size() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

 private:
  std::size_t capacity_;
  std::map<std::string, std::uint64_t, std::less<>> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace hydra::server
