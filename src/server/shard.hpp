// The shard: HydraDB's server-side unit of execution (paper section 4.1.1).
//
// One shard == one core == one partition. A single logical thread detects
// requests by polling per-connection request rings (filled by client RDMA
// Writes), executes them against its exclusively-owned KVStore, and answers
// with an RDMA Write into the matching slot of the client's response ring.
// A wakeup sweeps every occupied slot of a dirty connection at once, and
// all responses after the sweep's first share one doorbell (batched WQE
// cost). There are no locks anywhere on this path. The same class also
// supports the two-sided Send/Recv mode used as the Figure 10 baseline.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include <map>
#include <string>

#include "core/store.hpp"
#include "fabric/fabric.hpp"
#include "proto/frame.hpp"
#include "proto/messages.hpp"
#include "replication/primary.hpp"
#include "server/config.hpp"
#include "server/dirty_scheduler.hpp"
#include "server/hotkey.hpp"
#include "sim/actor.hpp"

namespace hydra::server {

struct ShardStats {
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;  ///< insert + update + upsert
  std::uint64_t removes = 0;
  std::uint64_t renews = 0;
  std::uint64_t malformed = 0;
  std::uint64_t wrong_owner = 0;  ///< requests rejected by the owner filter
  std::uint64_t forwarded = 0;    ///< writes forwarded to a migration flow
  std::uint64_t responses = 0;
  std::uint64_t batched_responses = 0;  ///< responses sharing a sweep's doorbell
  std::uint64_t mux_requests = 0;  ///< requests demultiplexed off shared rings
  std::uint64_t txn_commits = 0;   ///< commit groups applied atomically
  std::uint64_t txn_conflicts = 0; ///< commit groups refused (lock/epoch)
  // Hot-key replication plane (DESIGN.md §12).
  std::uint64_t hotkey_promotions = 0;    ///< keys that went live on followers
  std::uint64_t hotkey_demotions = 0;     ///< promotions withdrawn (any reason)
  std::uint64_t hotkey_invalidations = 0; ///< guardian-kill writes posted pre-ack
  std::uint64_t hotkey_advertised = 0;    ///< GET responses carrying replica ptrs
  // Ordered index + range scans (DESIGN.md §13).
  std::uint64_t scans = 0;                ///< kScan batches served
  std::uint64_t scan_entries = 0;         ///< entries returned across batches
  std::uint64_t scan_token_rejects = 0;   ///< continuation tokens refused (epoch)
  std::uint64_t scan_leaf_refreshes = 0;  ///< leaf pages (re)serialized to the mirror
  std::uint64_t scan_leaf_oversize = 0;   ///< leaves too big for a mirror page
  Duration busy_time = 0;  ///< virtual CPU time charged to this core
};

class Shard : public sim::Actor {
 public:
  /// `existing_store` supports failover promotion: a secondary's replica
  /// store becomes this primary's store. Pass nullptr to start empty.
  Shard(sim::Scheduler& sched, fabric::Fabric& fabric, NodeId node, ShardConfig cfg,
        std::unique_ptr<core::KVStore> existing_store = nullptr);

  // --- connection management ---------------------------------------------
  struct AcceptResult {
    fabric::RemoteAddr req_slot;  ///< base of the client's request ring
    std::uint32_t slot_bytes = 0;
    std::uint32_t arena_rkey = 0;  ///< region containing RDMA-readable items
    /// Granted ring depth: min(client-requested, config ring_slots). Request
    /// slot i lives at req_slot.offset + i * slot_bytes and its response is
    /// written to the client's resp ring at the same slot index.
    std::uint32_t window = 1;
    /// Lock-word arena (DESIGN.md §11): 0/0 when transactions are disabled.
    std::uint32_t lock_rkey = 0;
    std::uint32_t lock_words = 0;
    bool ok = false;
  };

  /// Polling-mode accept: the shard dedicates a request-ring of `window`
  /// slots to this connection and remembers where responses go
  /// (`client_resp_slot` is the base of an equally deep response ring of
  /// `client_resp_bytes`-sized slots).
  AcceptResult accept(fabric::QueuePair* server_qp, fabric::RemoteAddr client_resp_slot,
                      std::uint32_t client_resp_bytes, ClientId client,
                      std::uint32_t window = 1);

  /// Send/Recv-mode accept (Fig 10 baseline): posts receive buffers and
  /// answers via post_send.
  AcceptResult accept_send_recv(fabric::QueuePair* server_qp, ClientId client);

  // --- QP multiplexing (DESIGN.md §10) -------------------------------------
  struct MuxGroupResult {
    std::uint32_t group = 0;      ///< group id, passed to accept_mux_endpoint
    fabric::RemoteAddr req_ring;  ///< base of the shared request ring
    std::uint32_t slot_bytes = 0;
    std::uint32_t ring_slots = 0;  ///< shared ring depth == SRQ credit pool
    std::uint32_t arena_rkey = 0;
    /// Lock-word arena (DESIGN.md §11): 0/0 when transactions are disabled.
    std::uint32_t lock_rkey = 0;
    std::uint32_t lock_words = 0;
    bool ok = false;
  };
  struct MuxEndpointResult {
    std::uint32_t endpoint = 0;
    std::uint32_t window = 1;  ///< granted per-endpoint flow credits
    bool ok = false;
  };

  /// Registers one shared request ring ("SRQ") served over `qp`. All
  /// endpoints of one client node share this ring: frames carry a MuxHeader
  /// naming the endpoint and its response slot.
  MuxGroupResult accept_mux_group(fabric::QueuePair* qp);

  /// Adds a logical client endpoint to an existing mux group. Responses are
  /// RDMA-written into slot MuxHeader::resp_slot of the endpoint's private
  /// response ring at `client_resp_slot` (`window` slots of
  /// `client_resp_bytes` each).
  MuxEndpointResult accept_mux_endpoint(std::uint32_t group,
                                        fabric::RemoteAddr client_resp_slot,
                                        std::uint32_t client_resp_bytes, ClientId client,
                                        std::uint32_t window = 1);

  /// Tears down a mux group (client node reclaimed the shared QP): revokes
  /// the shared ring's memory registration so in-flight client writes fault
  /// instead of landing, and deactivates every endpoint riding the group.
  void close_mux_group(std::uint32_t group);

  // --- replication ---------------------------------------------------------
  void enable_replication(replication::PrimaryConfig cfg);
  [[nodiscard]] replication::ReplicationPrimary* replicator() noexcept {
    return replicator_.get();
  }

  // --- ownership + live migration (DESIGN.md §9) ---------------------------
  using KeyPredicate = std::function<bool(std::uint64_t key_hash)>;
  using MigrationForward =
      std::function<void(std::uint64_t key_hash, proto::RepRecord rec)>;

  /// Epoch fencing at the message path: when set and `owns(hash)` is false,
  /// keyed requests answer kWrongOwner without touching the store, so a
  /// client routed by a stale ring re-resolves instead of reading or
  /// writing a range this shard no longer serves. Null accepts everything.
  void set_owner_filter(KeyPredicate owns) { owner_filter_ = std::move(owns); }

  /// Dual-ownership catch-up: while a migration is copying this shard's
  /// moving range, every successfully applied write whose key satisfies
  /// `moving` is also handed to `forward` (which replicates it down the
  /// migration flow), so updates racing the bulk copy are never lost.
  void set_migration_forward(KeyPredicate moving, MigrationForward forward) {
    forward_moving_ = std::move(moving);
    migration_forward_ = std::move(forward);
  }
  void clear_migration_forward() {
    forward_moving_ = nullptr;
    migration_forward_ = nullptr;
  }

  /// rkey of the item arena remote pointers reference (what clients RDMA
  /// Read); exposed so tests can assert no read ever targets a stale rkey.
  [[nodiscard]] std::uint32_t arena_rkey() const noexcept;

  /// Post-failover accounting for a shard that is already dead: records the
  /// withdrawal of its whole hot-key promotion set (kHotKeyDemoted with the
  /// given reason) without posting guardian kills -- the successor's stream
  /// attach has zeroed every follower slab, so the copies cannot validate
  /// anyway. Safe to call on a killed actor; idempotent.
  void withdraw_promotions(std::uint64_t reason);

  /// rkey of the one-sided scan-leaf mirror (DESIGN.md §13); 0 when the
  /// ordered index or the mirror is disabled. Exposed so chaos can target
  /// torn-read injection at leaf pages specifically.
  [[nodiscard]] std::uint32_t scan_leaf_rkey() const noexcept {
    return leaf_mr_ != nullptr ? leaf_mr_->rkey() : 0;
  }

  // --- transactions (DESIGN.md §11) ----------------------------------------
  /// Commit-time epoch fence: a kTxnCommit whose header epoch differs from
  /// `epoch()` is refused with kTxnConflict before anything applies, so a
  /// commit can never land through a promotion/migration it predates. Null
  /// (the default) skips the check.
  using EpochFn = std::function<std::uint64_t()>;
  void set_epoch_source(EpochFn epoch) { epoch_source_ = std::move(epoch); }

  /// Lock-word arena accessors for invariant scans ("no lock word leaked
  /// held after recovery"). Count is 0 when transactions are disabled.
  [[nodiscard]] std::uint32_t lock_word_count() const noexcept {
    return lock_mr_ != nullptr ? cfg_.txn_lock_words : 0;
  }
  [[nodiscard]] std::uint64_t lock_word(std::uint32_t idx) const noexcept;
  [[nodiscard]] std::uint32_t lock_rkey() const noexcept {
    return lock_mr_ != nullptr ? lock_mr_->rkey() : 0;
  }

  // --- accessors -----------------------------------------------------------
  [[nodiscard]] ShardId id() const noexcept { return cfg_.id; }
  [[nodiscard]] NodeId node() const noexcept { return node_; }
  [[nodiscard]] core::KVStore& store() noexcept { return *store_; }
  [[nodiscard]] const ShardStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ShardConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::size_t connection_count() const noexcept { return conns_.size(); }

  void kill() override;

 private:
  static constexpr std::uint32_t kNoEndpoint = 0xffffffffu;

  struct Connection {
    fabric::QueuePair* qp = nullptr;
    fabric::RemoteAddr resp_addr{};  ///< base of the client's response ring
    std::uint32_t resp_bytes = 0;    ///< per-slot bytes of that ring
    std::uint32_t window = 1;        ///< granted ring depth
    ClientId client = 0;
    bool send_recv = false;
    std::uint32_t region_block = 0;  ///< this connection's block in msg_region_
    /// Send/Recv mode owns its receive buffers (re-posted after use).
    std::vector<std::vector<std::byte>> recv_bufs;
    // Mux groups own a shared request ring instead of a block of
    // msg_region_; frames there carry a MuxHeader for demultiplexing.
    bool mux = false;
    bool closed = false;
    std::uint32_t ring_slots = 0;
    std::unique_ptr<std::vector<std::byte>> ring;  ///< heap: stable across conns_ growth
    fabric::MemoryRegion* ring_mr = nullptr;
  };

  /// A logical client endpoint riding a mux group's shared ring.
  struct MuxEndpoint {
    std::uint32_t group = 0;  ///< index into conns_
    fabric::RemoteAddr resp_addr{};
    std::uint32_t resp_bytes = 0;
    std::uint32_t window = 1;
    ClientId client = 0;
    bool active = false;
  };

  /// A decoded request waiting for the shard core; `batched` marks every
  /// request after the first of one ring sweep, whose response shares the
  /// sweep's doorbell. `endpoint` is kNoEndpoint on the legacy path and a
  /// mux endpoint id for requests demultiplexed off a shared ring.
  struct ReadyReq {
    proto::Request req;
    std::uint32_t conn_idx = 0;
    std::uint32_t slot = 0;
    bool batched = false;
    std::uint32_t endpoint = kNoEndpoint;
  };

  /// Bytes one connection's request ring occupies in msg_region_.
  [[nodiscard]] std::size_t conn_stride() const noexcept {
    return static_cast<std::size_t>(cfg_.ring_slots) * cfg_.msg_slot_bytes;
  }
  [[nodiscard]] std::span<std::byte> slot_span(std::uint32_t block, std::uint32_t slot) noexcept {
    return {msg_region_.data() + static_cast<std::size_t>(block) * conn_stride() +
                proto::ring_slot_offset(slot, cfg_.msg_slot_bytes),
            cfg_.msg_slot_bytes};
  }
  [[nodiscard]] std::span<std::byte> mux_slot_span(Connection& conn,
                                                   std::uint32_t slot) noexcept {
    return {conn.ring->data() + proto::ring_slot_offset(slot, cfg_.msg_slot_bytes),
            cfg_.msg_slot_bytes};
  }

  void on_request_write(std::uint64_t offset);
  void wake();
  void process_loop();
  void sweep_connection(std::uint32_t idx);
  void sweep_mux_group(std::uint32_t idx);
  void handle(proto::Request req, std::uint32_t conn_idx, std::uint32_t slot,
              Duration cost_so_far, bool batched, std::uint32_t endpoint = kNoEndpoint);
  /// kTxnCommit: validates epoch + ownership + lock words for the whole
  /// group, then applies every op in this one invocation (all-or-nothing;
  /// a mid-group store failure rolls the applied prefix back).
  void handle_txn_commit(proto::Request req, std::uint32_t conn_idx, std::uint32_t slot,
                         Duration cost, bool batched, std::uint32_t endpoint);
  /// kScan: validates the continuation token's epoch against the live
  /// routing epoch, walks the ordered index from the resume key, and -- when
  /// more entries remain -- refreshes + advertises the continuation leaf's
  /// mirror page for one-sided pickup.
  void handle_scan(proto::Request req, std::uint32_t conn_idx, std::uint32_t slot,
                   Duration cost, bool batched, std::uint32_t endpoint);
  /// (Re)serializes `leaf` into the mirror when its cached (id, version,
  /// epoch) stamp is stale; returns the advertisement, or nullopt when the
  /// mirror is off or the leaf outgrows a page.
  std::optional<proto::ScanLeafHint> refresh_leaf_mirror(
      const index::OrderedIndex::LeafRef& leaf, std::uint64_t epoch, Duration& cost);
  void send_response(const proto::Response& resp, std::uint32_t conn_idx,
                     std::uint32_t slot, bool batched, std::uint32_t endpoint = kNoEndpoint);
  void charge(Duration cost) noexcept { stats_.busy_time += cost; }
  void schedule_gc();

  // --- hot-key replication plane (DESIGN.md §12) ---------------------------
  /// One promoted key: the slab slot it occupies on every follower, the
  /// advertisement clients receive, and the copy/kill writes still in
  /// flight. Held by shared_ptr so completion lambdas outlive retirement.
  struct Promotion {
    std::string key;
    std::uint64_t key_hash = 0;
    std::uint32_t slot = 0;       ///< slab slot index (same on every follower)
    std::uint64_t version = 0;    ///< item version the copies carry
    bool live = false;            ///< advertised to clients
    bool retired = false;         ///< withdrawn; terminal
    bool slot_released = false;
    int pending = 0;              ///< in-flight one-sided copy/kill writes
    std::vector<std::byte> image; ///< the item image written to followers
    std::vector<proto::ReplicaPtr> replicas;  ///< what GETs advertise
    /// Copy/kill destinations captured at promotion time -- kills must reach
    /// every follower that ever held the copy, even one quarantined since.
    struct Target {
      replication::SecondaryShard* sec = nullptr;
      fabric::QueuePair* qp = nullptr;
      NodeId node = kInvalidNode;
      std::uint32_t rkey = 0;
      std::uint64_t offset = 0;
    };
    std::vector<Target> targets;
  };

  /// GET-path hook: records the access, lazily arms the scan timer, demotes
  /// on an observed epoch advance, and fills `resp` with the key's live
  /// advertisement (if any).
  void hotkey_note_get(const std::string& key, std::uint64_t version,
                       proto::Response& resp);
  /// Periodic scan: demote cooled keys, promote the interval's top-k.
  void hotkey_scan();
  void promote_key(const std::string& key);
  /// Withdraws every promotion (routing epoch advanced / shard dying).
  /// `reason` follows kHotKeyDemoted's b argument.
  void demote_all(std::uint64_t reason);
  /// Write-path demotion: retires `key`'s promotion and returns it when
  /// guardian kills must gate the ack (it was live); nullptr otherwise.
  std::shared_ptr<Promotion> take_promotion_for_write(const std::string& key);
  /// Posts one guardian-kill write per recorded target; `settle` fires once
  /// per target (success, peer death, or retry exhaustion) -- the ack
  /// barrier counts each target once.
  void post_promotion_kills(const std::shared_ptr<Promotion>& p,
                            const std::function<void()>& settle);
  void post_one_kill(const std::shared_ptr<Promotion>& p, std::size_t target_idx,
                     int attempt, std::function<void()> settle);
  /// Copy/kill completion bookkeeping: frees the slab slot when the last
  /// in-flight write of a retired promotion lands.
  void promotion_op_done(const std::shared_ptr<Promotion>& p);
  void release_promo_slot(const std::shared_ptr<Promotion>& p);
  void retire_promotion(const std::shared_ptr<Promotion>& p, std::uint64_t reason);

  fabric::Fabric& fabric_;
  NodeId node_;
  ShardConfig cfg_;
  std::unique_ptr<core::KVStore> store_;
  fabric::MemoryRegion* arena_mr_;

  std::vector<std::byte> msg_region_;
  fabric::MemoryRegion* msg_mr_;

  /// 2PL lock words clients CAS one-sidedly; registered only when
  /// cfg_.txn_lock_words > 0 so txn-off runs keep the seed's rkey sequence.
  std::vector<std::byte> lock_region_;
  fabric::MemoryRegion* lock_mr_ = nullptr;
  EpochFn epoch_source_;

  /// One-sided scan-leaf mirror (DESIGN.md §13): fixed page slots holding
  /// serialized B+-tree leaves. Registered only when the ordered index and
  /// cfg_.scan_mirror_pages are both on, so index-off runs keep the seed's
  /// rkey sequence.
  struct MirrorSlot {
    std::uint64_t leaf_id = 0;
    std::uint64_t leaf_version = 0;
    std::uint64_t epoch = 0;
    bool used = false;
  };
  std::vector<std::byte> leaf_region_;
  fabric::MemoryRegion* leaf_mr_ = nullptr;
  std::vector<MirrorSlot> mirror_slots_;
  std::map<std::uint64_t, std::uint32_t> mirror_slot_of_;  ///< leaf id -> slot
  std::uint32_t mirror_clock_ = 0;  ///< round-robin eviction cursor

  std::vector<Connection> conns_;
  /// Maps msg_region_ block index -> conns_ index for legacy connections
  /// (identical when no mux groups interleave with accepts).
  std::vector<std::uint32_t> block_to_conn_;
  DirtyScheduler dirty_;
  std::vector<MuxEndpoint> endpoints_;
  /// conns_ slots of closed mux groups, reused by the next accept_mux_group
  /// (same ring bytes, fresh registration) so reopen cycles do not grow
  /// conns_ -- and counted against max_connections while live.
  std::vector<std::uint32_t> free_mux_groups_;
  std::uint32_t live_mux_groups_ = 0;
  /// Deactivated MuxEndpoint slots, reused on the next registration.
  std::vector<std::uint32_t> free_endpoints_;
  /// Requests decoded by a ring sweep, waiting for the shard core.
  std::deque<ReadyReq> ready_;
  /// Send/Recv mode: decoded requests waiting for the shard thread.
  std::deque<std::pair<proto::Request, std::uint32_t>> sr_pending_;
  bool busy_ = false;
  bool gc_scheduled_ = false;

  std::unique_ptr<replication::ReplicationPrimary> replicator_;
  KeyPredicate owner_filter_;
  KeyPredicate forward_moving_;
  MigrationForward migration_forward_;

  /// Hot-key plane state; hotkey_ is null when cfg_.hotkey_top_k == 0 and
  /// every hook below is gated on it, so a promotion-off shard runs the
  /// exact pre-feature code path.
  std::unique_ptr<HotKeyTracker> hotkey_;
  std::map<std::string, std::shared_ptr<Promotion>, std::less<>> promotions_;
  std::vector<std::uint32_t> free_promo_slots_;
  std::uint32_t promo_slots_used_ = 0;
  bool hotkey_scan_armed_ = false;
  std::uint64_t hotkey_epoch_seen_ = 0;
  /// 8-byte kGuardianDead image the kill writes snapshot from.
  std::vector<std::byte> dead_word_;

  ShardStats stats_;
};

}  // namespace hydra::server
