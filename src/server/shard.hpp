// The shard: HydraDB's server-side unit of execution (paper section 4.1.1).
//
// One shard == one core == one partition. A single logical thread detects
// requests by polling per-connection request buffers (filled by client RDMA
// Writes), executes them against its exclusively-owned KVStore, and answers
// with an RDMA Write into the client's response buffer. There are no locks
// anywhere on this path. The same class also supports the two-sided
// Send/Recv mode used as the Figure 10 baseline.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "core/store.hpp"
#include "fabric/fabric.hpp"
#include "proto/frame.hpp"
#include "proto/messages.hpp"
#include "replication/primary.hpp"
#include "server/config.hpp"
#include "sim/actor.hpp"

namespace hydra::server {

struct ShardStats {
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;  ///< insert + update + upsert
  std::uint64_t removes = 0;
  std::uint64_t renews = 0;
  std::uint64_t malformed = 0;
  std::uint64_t responses = 0;
  Duration busy_time = 0;  ///< virtual CPU time charged to this core
};

class Shard : public sim::Actor {
 public:
  /// `existing_store` supports failover promotion: a secondary's replica
  /// store becomes this primary's store. Pass nullptr to start empty.
  Shard(sim::Scheduler& sched, fabric::Fabric& fabric, NodeId node, ShardConfig cfg,
        std::unique_ptr<core::KVStore> existing_store = nullptr);

  // --- connection management ---------------------------------------------
  struct AcceptResult {
    fabric::RemoteAddr req_slot;  ///< where the client RDMA-Writes requests
    std::uint32_t slot_bytes = 0;
    std::uint32_t arena_rkey = 0;  ///< region containing RDMA-readable items
    bool ok = false;
  };

  /// Polling-mode accept: the shard dedicates a request-buffer slot to this
  /// connection and remembers where responses go.
  AcceptResult accept(fabric::QueuePair* server_qp, fabric::RemoteAddr client_resp_slot,
                      std::uint32_t client_resp_bytes, ClientId client);

  /// Send/Recv-mode accept (Fig 10 baseline): posts receive buffers and
  /// answers via post_send.
  AcceptResult accept_send_recv(fabric::QueuePair* server_qp, ClientId client);

  // --- replication ---------------------------------------------------------
  void enable_replication(replication::PrimaryConfig cfg);
  [[nodiscard]] replication::ReplicationPrimary* replicator() noexcept {
    return replicator_.get();
  }

  // --- accessors -----------------------------------------------------------
  [[nodiscard]] ShardId id() const noexcept { return cfg_.id; }
  [[nodiscard]] NodeId node() const noexcept { return node_; }
  [[nodiscard]] core::KVStore& store() noexcept { return *store_; }
  [[nodiscard]] const ShardStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ShardConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::size_t connection_count() const noexcept { return conns_.size(); }

  void kill() override;

 private:
  struct Connection {
    fabric::QueuePair* qp = nullptr;
    fabric::RemoteAddr resp_addr{};
    std::uint32_t resp_bytes = 0;
    ClientId client = 0;
    bool send_recv = false;
    /// Send/Recv mode owns its receive buffers (re-posted after use).
    std::vector<std::vector<std::byte>> recv_bufs;
  };

  [[nodiscard]] std::span<std::byte> slot_span(std::uint32_t idx) noexcept {
    return {msg_region_.data() + static_cast<std::size_t>(idx) * cfg_.msg_slot_bytes,
            cfg_.msg_slot_bytes};
  }

  void on_request_write(std::uint64_t offset);
  void wake();
  void process_loop();
  void handle(proto::Request req, std::uint32_t conn_idx, Duration cost_so_far);
  void send_response(const proto::Response& resp, std::uint32_t conn_idx);
  void charge(Duration cost) noexcept { stats_.busy_time += cost; }
  void schedule_gc();

  fabric::Fabric& fabric_;
  NodeId node_;
  ShardConfig cfg_;
  std::unique_ptr<core::KVStore> store_;
  fabric::MemoryRegion* arena_mr_;

  std::vector<std::byte> msg_region_;
  fabric::MemoryRegion* msg_mr_;

  std::vector<Connection> conns_;
  std::vector<bool> dirty_flag_;
  std::deque<std::uint32_t> dirty_;
  /// Send/Recv mode: decoded requests waiting for the shard thread.
  std::deque<std::pair<proto::Request, std::uint32_t>> sr_pending_;
  bool busy_ = false;
  bool gc_scheduled_ = false;

  std::unique_ptr<replication::ReplicationPrimary> replicator_;
  ShardStats stats_;
};

}  // namespace hydra::server
