// Chaos harness for ordered range scans across live migration (DESIGN.md
// §13) -- the scan-mid-migration family.
//
// A ScanSchedule composes faults -- live expansion (add_shard_live) and
// drain (drain_shard_live) migrations, source/destination primary kills,
// SWAT-member kills, heartbeat suppression (fencing + epoch bump) and torn
// one-sided leaf-page reads -- fired at parameterized points of a two-role
// workload: one client streams INSERTs of brand-new keys while another
// issues seeded range scans the whole time. The ScanChaosRunner executes
// the workload against a fresh ordered-index cluster, injects the faults,
// lets failover/migration settle, and verifies per completed scan:
//
//   1. no duplicate key: the merged result is strictly ascending (the
//      dual-ownership window of a migration must be deduplicated);
//   2. no lost key: every key whose INSERT was acked before the scan was
//      issued and that falls inside the scan's observed window appears;
//   3. no phantom: every returned (key, value) pair is one the workload
//      actually wrote;
//   4. nothing wedges: every operation callback eventually fires;
//
// plus cluster-level post-conditions: a probe PUT succeeds and a final
// full-range scan audit sees every acked key exactly once. Everything
// flows from (schedule, seed) through the virtual clock, so the report's
// history string is byte-identical across runs of the same inputs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace hydra::obs {
class Plane;
}  // namespace hydra::obs

namespace hydra::chaos {

enum class ScanFaultKind : std::uint8_t {
  kAddShard,     ///< start a live expansion migration
  kDrainShard,   ///< start draining an original shard out of the ring
  kKillSource,   ///< crash an original (migration-source) primary
  kKillDest,     ///< crash the shard spawned by kAddShard (no-op before it)
  kKillSwatMember,
  kSuppressHeartbeats,  ///< fence an original primary: epoch-bump demotion
  kTornLeafReads,       ///< garble a share of one-sided leaf-page reads
};

[[nodiscard]] const char* to_string(ScanFaultKind kind) noexcept;

struct ScanFault {
  ScanFaultKind kind = ScanFaultKind::kAddShard;
  int index = 0;  ///< source-shard / SWAT-member index
  /// Fires `delay` of virtual time after the operation with this global
  /// issue index starts.
  std::uint32_t at_op = 0;
  Duration delay = 0;
  Duration duration = 0;        ///< suppression length / torn-read window
  std::uint32_t percent = 50;   ///< torn-read probability (kTornLeafReads)
};

struct ScanSchedule {
  std::string name;
  std::uint32_t inserts = 150;     ///< client 0: INSERT stream length
  std::uint32_t scans = 80;        ///< client 1: scan stream length
  /// Per-scan limit drawn in [1, max]. Deliberately larger than
  /// shards x the runner's scan batch so scans need continuation rounds --
  /// that is where tokens straddle epoch bumps and leaf hints get consumed.
  std::uint32_t max_scan_limit = 48;
  int server_nodes = 3;            ///< one original shard per node
  int replicas = 2;
  int swat_members = 2;
  bool leaf_reads = true;          ///< one-sided leaf-page continuations on
  std::vector<ScanFault> faults;

  /// The scripted families: fault-free merge baseline, scans across a live
  /// expansion, scans across a live drain, destination and source kills
  /// mid-copy, a drain overlapping a SWAT leadership gap, torn leaf reads,
  /// and a migration + fencing + torn-read composition.
  static std::vector<ScanSchedule> scripted();

  /// Seeded-random composition over the same fault alphabet.
  static ScanSchedule random(std::uint64_t seed);
};

struct ScanRunReport {
  /// Deterministic textual log; byte-identical across runs of one
  /// (schedule, seed), with or without an observability plane attached.
  std::string history;
  std::vector<std::string> violations;
  std::uint64_t puts_acked = 0;
  std::uint64_t scans_acked = 0;   ///< scans completing kOk
  std::uint64_t scan_entries = 0;  ///< entries across all acked scans
  std::uint64_t wedged = 0;
  std::uint64_t lost_keys = 0;     ///< invariant-2 violations (also listed)
  std::uint64_t dup_keys = 0;      ///< invariant-1 violations (also listed)
  std::uint64_t phantoms = 0;      ///< invariant-3 violations (also listed)
  std::uint64_t failovers = 0;
  // Plane activity post-settle.
  std::uint64_t scan_restarts = 0;
  std::uint64_t scan_leaf_reads = 0;
  std::uint64_t scan_leaf_fallbacks = 0;
  std::uint64_t scan_token_rejects = 0;
  std::uint64_t torn_reads = 0;

  [[nodiscard]] bool passed() const noexcept { return violations.empty(); }
};

class ScanChaosRunner {
 public:
  /// Runs `schedule` against a fresh cluster; `seed` drives the insert
  /// order, scan start points and any randomized schedule parameters.
  static ScanRunReport run(const ScanSchedule& schedule, std::uint64_t seed,
                           obs::Plane* plane = nullptr);
};

}  // namespace hydra::chaos
