#include "chaos/failover_chaos.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <utility>

#include "common/rng.hpp"
#include "hydradb/hydra_cluster.hpp"
#include "obs/plane.hpp"

namespace hydra::chaos {
namespace {

using replication::ReplicationMode;

/// Virtual time granted after the workload: long enough for the legacy
/// session-timeout fallback (~2.45 s) to finish when a round aborts, not just
/// the microsecond fast path.
constexpr Duration kSettle = 6 * kSecond;
constexpr Time kWorkloadTimeLimit = 120 * kSecond;
constexpr std::uint64_t kWorkloadStepLimit = 40'000'000;

#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

const char* mode_name(ReplicationMode m) {
  switch (m) {
    case ReplicationMode::kNone: return "none";
    case ReplicationMode::kLogRelaxed: return "relaxed";
    case ReplicationMode::kStrictAck: return "strict";
  }
  return "unknown";
}

std::string hex16(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::vector<FailoverSchedule> FailoverSchedule::scripted() {
  std::vector<FailoverSchedule> out;

  {
    // The headline case: the primary dies while ring writes are on the wire.
    // Both replicas miss the pulse deadline, revoke, and race CAS ballots;
    // the winner must promote within the microsecond bound.
    FailoverSchedule s;
    s.name = "fast-kill-mid-ring-write";
    s.faults.push_back({.kind = FaultKind::kKillPrimary, .at_op = 12,
                        .delay = 2 * kMicrosecond});
    out.push_back(std::move(s));
  }
  {
    // Strict acks in flight when the primary dies: client retries (not the
    // dead primary's half-finished pipeline) re-drive the records on the
    // promoted replica, and any probe retransmit that lands after the
    // revocation must surface as a fabric permission error, never wedge.
    FailoverSchedule s;
    s.name = "fast-kill-strict-inflight";
    s.mode = ReplicationMode::kStrictAck;
    s.faults.push_back({.kind = FaultKind::kKillPrimary, .at_op = 10,
                        .delay = 2 * kMicrosecond});
    out.push_back(std::move(s));
  }
  {
    // A torn revocation: the verb applies at the owner but its confirmation
    // is lost. The retry re-revokes an already-revoked region (idempotent)
    // and the round still completes fast.
    FailoverSchedule s;
    s.name = "fast-torn-revocation";
    s.faults.push_back({.kind = FaultKind::kTearRevocation, .index = 1, .at_op = 12});
    s.faults.push_back({.kind = FaultKind::kKillPrimary, .at_op = 12,
                        .delay = 2 * kMicrosecond});
    out.push_back(std::move(s));
  }
  {
    // A dropped revocation: the verb is lost entirely; the retry must
    // deliver and the round still beats the millisecond bound.
    FailoverSchedule s;
    s.name = "fast-dropped-revocation";
    s.faults.push_back({.kind = FaultKind::kDropRevocation, .index = 1, .at_op = 12});
    s.faults.push_back({.kind = FaultKind::kKillPrimary, .at_op = 12,
                        .delay = 2 * kMicrosecond});
    out.push_back(std::move(s));
  }
  {
    // Revocation storm: every revoke verb is dropped, the retry budget
    // exhausts, every round aborts -- the legacy session-timeout promotion
    // must still recover the shard (the fallback ordering argument).
    FailoverSchedule s;
    s.name = "fast-revocation-storm-falls-back";
    s.expect_fast = false;
    s.faults.push_back({.kind = FaultKind::kDropRevocation, .index = 64, .at_op = 10});
    s.faults.push_back({.kind = FaultKind::kKillPrimary, .at_op = 10,
                        .delay = 2 * kMicrosecond});
    out.push_back(std::move(s));
  }
  {
    // Split suspicion: three replicas all suspect at once and cast ballots
    // against the same decision arena; exactly one may win its round.
    FailoverSchedule s;
    s.name = "fast-split-ballots";
    s.replicas = 3;
    s.faults.push_back({.kind = FaultKind::kKillPrimary, .at_op = 12,
                        .delay = 2 * kMicrosecond});
    out.push_back(std::move(s));
  }
  {
    // The SWAT leader dies in the same instant as the primary: the agreement
    // round must not depend on coordinator liveness (SWAT only publishes the
    // epoch, and any member can).
    FailoverSchedule s;
    s.name = "fast-swat-kill-mid-round";
    s.swat_members = 3;
    s.faults.push_back({.kind = FaultKind::kKillPrimary, .at_op = 10,
                        .delay = 2 * kMicrosecond});
    s.faults.push_back({.kind = FaultKind::kKillSwatMember, .index = 0, .at_op = 10});
    out.push_back(std::move(s));
  }
  {
    // Legacy/fast interplay: heartbeat suppression past the session timeout
    // self-fences the primary (the legacy path), which silences its pulses
    // -- the fast plane must then promote off the resulting suspicion
    // without double-promoting against SWAT's own reaction.
    FailoverSchedule s;
    s.name = "fast-suppression-interplay";
    s.ops = 50;
    s.faults.push_back({.kind = FaultKind::kSuppressHeartbeats, .at_op = 10,
                        .duration = 3 * kSecond});
    out.push_back(std::move(s));
  }
  {
    // Composed with a live add-migration: the victim is a copy source, so
    // the flow must be rebuilt from the fast-promoted replica and the
    // migration still commit.
    FailoverSchedule s;
    s.name = "fast-composed-with-migration";
    s.ops = 48;
    s.migrate = true;
    s.migrate_at_op = 6;
    s.faults.push_back({.kind = FaultKind::kKillPrimary, .at_op = 10,
                        .delay = 300 * kMicrosecond});
    out.push_back(std::move(s));
  }
  return out;
}

FailoverSchedule FailoverSchedule::random(std::uint64_t seed) {
  // Decorrelate from the runner's value stream, which hashes the raw seed.
  Xoshiro256 rng(seed * 0xD6E8FEB86659FD93ULL + 0x2545F4914F6CDD1DULL);
  FailoverSchedule s;
  s.name = "ff-random-" + std::to_string(seed);
  s.ops = 30 + static_cast<std::uint32_t>(rng.below(31));
  s.replicas = 2 + static_cast<int>(rng.below(2));
  s.mode = rng.below(2) == 0 ? ReplicationMode::kStrictAck : ReplicationMode::kLogRelaxed;

  // Every random schedule kills the primary -- the family is about the
  // agreement round, and the other kinds compose around that kill.
  const std::uint32_t kill_op = 5 + static_cast<std::uint32_t>(rng.below(s.ops - 5));
  const auto tears = static_cast<int>(rng.below(3));
  const auto drops = static_cast<int>(rng.below(3));
  // Worst case puts every unconfirmed verb on one target consecutively; the
  // round survives while that streak stays under the retry budget (3).
  s.expect_fast = tears + drops < 3;
  if (tears > 0) {
    s.faults.push_back({.kind = FaultKind::kTearRevocation, .index = tears, .at_op = kill_op});
  }
  if (drops > 0) {
    s.faults.push_back({.kind = FaultKind::kDropRevocation, .index = drops, .at_op = kill_op});
  }
  if (s.replicas == 3 && rng.below(4) == 0) {
    // One replica is already a corpse when suspicion fires; the round must
    // skip it as a revocation target and still agree among the survivors.
    s.faults.push_back({.kind = FaultKind::kKillSecondary, .index = 2,
                        .at_op = kill_op > 5 ? kill_op - 3 : 0,
                        .delay = static_cast<Duration>(rng.below(20 * kMicrosecond))});
  }
  s.faults.push_back({.kind = FaultKind::kKillPrimary, .at_op = kill_op,
                      .delay = static_cast<Duration>(rng.below(50 * kMicrosecond))});
  if (rng.below(4) == 0) {
    s.swat_members = 3;
    s.faults.push_back({.kind = FaultKind::kKillSwatMember, .index = 0, .at_op = kill_op,
                        .delay = static_cast<Duration>(rng.below(100 * kMicrosecond))});
  }
  return s;
}

FailoverReport FailoverChaosRunner::run(const FailoverSchedule& schedule,
                                        std::uint64_t seed, obs::Plane* plane) {
  FailoverSchedule plan = schedule;
  plan.ops = std::max<std::uint32_t>(plan.ops, 2);
  plan.migrate_at_op = std::min(plan.migrate_at_op, plan.ops - 1);
  for (Fault& f : plan.faults) f.at_op = std::min(f.at_op, plan.ops - 1);

  FailoverReport report;
  std::string& hist = report.history;
  auto violation = [&](std::string text) {
    hist += "violation: " + text + "\n";
    report.violations.push_back(std::move(text));
  };

  // The trace-driven invariants need a plane even when the caller attached
  // none; an internal one is free because attaching a plane never perturbs
  // the virtual-time history (DESIGN.md §8).
  obs::Plane local_plane;
  obs::Plane* pl = plane != nullptr ? plane : &local_plane;

  db::ClusterOptions opts;
  opts.server_nodes = 1 + std::max(plan.replicas, 1);
  opts.shards_per_node = 1;
  opts.total_shards = 1;
  opts.client_nodes = 1;
  opts.clients_per_node = 1;
  opts.replicas = plan.replicas;
  opts.replication.mode = plan.mode;
  opts.enable_swat = true;
  opts.swat_members = plan.swat_members;
  opts.fast_failover = true;
  opts.shard_template.store.arena_bytes = 16 << 20;
  opts.shard_template.store.min_buckets = 1 << 12;
  opts.client_template.request_timeout = 100 * kMillisecond;
  opts.client_template.max_retries = 100;
  opts.obs = pl;

  db::HydraCluster cluster(opts);
  sim::Scheduler& sched = cluster.scheduler();

  appendf(hist, "run schedule=%s seed=%llu ops=%u mode=%s replicas=%d swat=%d fast=1\n",
          plan.name.c_str(), static_cast<unsigned long long>(seed), plan.ops,
          mode_name(plan.mode), plan.replicas, plan.swat_members);

  // --- revocation wire faults: armed in order, consumed one per verb -------
  std::vector<FaultKind> armed_revoke;
  cluster.fabric().set_revoke_fault_hook(
      [&](NodeId owner, std::uint32_t rkey) -> fabric::RevokeFault {
        if (armed_revoke.empty()) return {};
        const FaultKind k = armed_revoke.front();
        armed_revoke.erase(armed_revoke.begin());
        fabric::RevokeFault rf;
        rf.kind = k == FaultKind::kTearRevocation ? fabric::RevokeFault::Kind::kTorn
                                                  : fabric::RevokeFault::Kind::kDrop;
        appendf(hist, "t=%llu revoke-fault %s owner=%u rkey=%u\n",
                static_cast<unsigned long long>(sched.now()), to_string(k),
                static_cast<unsigned>(owner), rkey);
        return rf;
      });

  // --- fault application ----------------------------------------------------
  Time first_kill = 0;
  bool recovery_pending = false;
  std::uint64_t failovers_at_kill = 0;
  bool killed_a_primary = false;
  bool killed_a_secondary = false;

  auto apply_fault = [&](const Fault& f) {
    appendf(hist, "t=%llu fault %s shard=%u idx=%d\n",
            static_cast<unsigned long long>(sched.now()), to_string(f.kind),
            static_cast<unsigned>(f.shard), f.index);
    pl->trace(sched.now(), kInvalidNode, obs::TraceKind::kFaultInjected, f.shard,
              static_cast<std::uint64_t>(f.kind),
              static_cast<std::uint64_t>(static_cast<unsigned>(f.index)));
    switch (f.kind) {
      case FaultKind::kKillPrimary: {
        auto* sh = cluster.shard(f.shard);
        if (sh != nullptr && sh->alive()) {
          killed_a_primary = true;
          if (first_kill == 0) {
            first_kill = sched.now();
            recovery_pending = true;
            failovers_at_kill = cluster.failovers();
          }
          cluster.crash_primary(f.shard);
        }
        break;
      }
      case FaultKind::kKillSecondary:
        killed_a_secondary = true;
        cluster.crash_secondary(f.shard, f.index);
        break;
      case FaultKind::kKillSwatMember:
        cluster.kill_swat_member(f.index);
        break;
      case FaultKind::kSuppressHeartbeats:
        cluster.suppress_heartbeats(f.shard, f.duration);
        break;
      case FaultKind::kTearRevocation:
      case FaultKind::kDropRevocation: {
        const int n = std::max(1, f.index);
        for (int i = 0; i < n; ++i) armed_revoke.push_back(f.kind);
        break;
      }
      default:  // record/ack wire faults belong to the base failover harness
        break;
    }
  };

  // --- workload: closed-loop unique-key PUTs --------------------------------
  Xoshiro256 value_rng(seed);
  std::vector<OpRecord> ops(plan.ops);
  for (std::uint32_t i = 0; i < plan.ops; ++i) {
    ops[i].idx = i;
    ops[i].key = "ff-" + std::to_string(i);
    ops[i].value = "v-" + hex16(value_rng());
  }

  std::uint32_t completed = 0;
  ShardId subject = kInvalidShard;
  bool migration_started = false;
  client::Client* cl = cluster.clients().front();
  std::function<void(std::uint32_t)> issue = [&](std::uint32_t i) {
    if (i >= plan.ops) return;
    if (plan.migrate && i == plan.migrate_at_op) {
      subject = cluster.add_shard_live();
      migration_started = subject != kInvalidShard;
      appendf(hist, "t=%llu migrate op=add subject=%u started=%d\n",
              static_cast<unsigned long long>(sched.now()),
              static_cast<unsigned>(subject), migration_started ? 1 : 0);
    }
    appendf(hist, "t=%llu op=%u issue key=%s\n",
            static_cast<unsigned long long>(sched.now()), i, ops[i].key.c_str());
    for (const Fault& f : plan.faults) {
      if (f.at_op != i) continue;
      const Fault* fp = &f;
      sched.after(f.delay, [&apply_fault, fp] { apply_fault(*fp); });
    }
    cl->put(ops[i].key, ops[i].value, [&, i](Status st) {
      ops[i].status = st;
      ops[i].completed = true;
      ops[i].done_at = sched.now();
      ++completed;
      appendf(hist, "t=%llu op=%u done status=%s\n",
              static_cast<unsigned long long>(sched.now()), i,
              std::string(to_string(st)).c_str());
      issue(i + 1);
    });
  };
  issue(0);

  // Snapshot of the trace query taken the moment the failover is observed.
  // The per-node trace rings are bounded (O(1) tracing), and once promoted
  // the new primary pulses every pulse_interval -- tens of thousands of
  // kWritePosted records during the settle window would evict the
  // suspicion/revocation/ballot records the ordering invariants need. The
  // snapshot lands within one scheduler step of the promotion, long before
  // eviction can reach it.
  std::optional<obs::TraceQuery> recovery_q;
  auto note_recovery = [&] {
    if (recovery_pending && cluster.failovers() > failovers_at_kill) {
      recovery_pending = false;
      recovery_q.emplace(pl->query());
      appendf(hist, "t=%llu failover-complete recovery=%llu\n",
              static_cast<unsigned long long>(sched.now()),
              static_cast<unsigned long long>(sched.now() - first_kill));
    }
  };

  std::uint64_t steps = 0;
  while (completed < plan.ops && sched.now() < kWorkloadTimeLimit &&
         steps < kWorkloadStepLimit) {
    if (!sched.step()) break;
    ++steps;
    note_recovery();
  }

  // Let a composed migration finish before settling (it may be waiting out
  // the promotion it was composed against).
  while (migration_started && cluster.migration_active() &&
         sched.now() < kWorkloadTimeLimit && sched.step()) {
    note_recovery();
  }
  const Time settle_end = sched.now() + kSettle;
  while (sched.now() < settle_end && sched.step()) note_recovery();

  // --- invariant 2: no wedged operations ------------------------------------
  for (const OpRecord& op : ops) {
    if (op.completed) continue;
    ++report.wedged_ops;
    violation("op " + std::to_string(op.idx) + " (" + op.key +
              ") never completed: callback wedged");
  }

  // --- invariant 1: every acked PUT readable with its exact value -----------
  for (const OpRecord& op : ops) {
    if (!op.completed || op.status != Status::kOk) continue;
    ++report.acked_puts;
    Status st = Status::kOk;
    auto v = cluster.get(op.key, 0, &st);
    if (!v.has_value()) {
      violation("acked op " + std::to_string(op.idx) + " (" + op.key +
                ") unreadable after failover: " + std::string(to_string(st)));
    } else if (*v != op.value) {
      violation("acked op " + std::to_string(op.idx) + " (" + op.key +
                ") returned a different value");
    }
  }

  // --- availability + replication factor ------------------------------------
  report.failovers = cluster.failovers();
  if (auto* ff = cluster.fast_failover()) {
    report.fast_promotions = ff->promotions();
    report.rounds_started = ff->rounds_started();
    report.rounds_aborted = ff->rounds_aborted();
    report.ballots_lost = ff->ballots_lost();
  }
  report.revocations = cluster.fabric().stats().rkey_revocations;

  const Status probe = cluster.put("ff-probe", "alive");
  appendf(hist, "t=%llu probe-put status=%s\n",
          static_cast<unsigned long long>(sched.now()),
          std::string(to_string(probe)).c_str());
  if (probe != Status::kOk) {
    violation("probe PUT failed: shard not writable after faults (" +
              std::string(to_string(probe)) + ")");
  }
  if (killed_a_primary && (cluster.shard(0) == nullptr || !cluster.shard(0)->alive())) {
    violation("primary was killed and no promotion ever completed");
  }
  if (report.failovers > 0 && !killed_a_secondary) {
    std::size_t live = 0;
    for (auto* sec : cluster.secondaries_of(0)) live += sec->alive() ? 1 : 0;
    if (live != static_cast<std::size_t>(opts.replicas)) {
      violation("replication factor " + std::to_string(live) + " != " +
                std::to_string(opts.replicas) + " after promotion");
    }
  }
  if (plan.migrate && migration_started && cluster.migration_active()) {
    violation("composed migration never committed");
  }

  // --- failover-specific trace invariants -----------------------------------
  const obs::TraceQuery q = pl->query();

  // At most one primary per epoch, part 1: routing epochs publish strictly
  // monotonically (a regressing or duplicated epoch means two promotions
  // fought over the same slot).
  bool first_epoch = true;
  std::uint64_t prev_epoch = 0;
  for (const obs::TraceRecord& r : q.of(obs::TraceKind::kEpochPublished)) {
    if (!first_epoch && r.a <= prev_epoch) {
      violation("routing epoch published non-monotonically: " +
                std::to_string(r.a) + " after " + std::to_string(prev_epoch));
    }
    prev_epoch = r.a;
    first_epoch = false;
  }
  // Part 2: the victim shard's epochs pair 1:1 with its promotions -- a
  // double promotion would publish two epochs for one death (the legacy and
  // fast paths racing past the double-promotion guard).
  const std::size_t promos = q.count(obs::TraceKind::kPromotionDone, 0);
  const std::size_t epochs = q.count(obs::TraceKind::kEpochPublished, 0);
  if (promos != epochs) {
    violation("shard 0 published " + std::to_string(epochs) + " epochs for " +
              std::to_string(promos) + " promotions");
  }

  // Gap and protocol-ordering checks read the recovery-time snapshot: the
  // failover records are near the kill, and by settle's end the promoted
  // primary's pulse traffic has evicted them from the bounded node rings.
  const obs::TraceQuery& fq = recovery_q.has_value() ? *recovery_q : q;

  // The failover gap: first primary crash to that shard's promotion.
  if (killed_a_primary) {
    std::optional<obs::TraceRecord> crash;
    for (const obs::TraceRecord& r : fq.of(obs::TraceKind::kCrashInjected)) {
      if (r.a == 0) {  // a=0: primary crash
        crash = r;
        break;
      }
    }
    const std::optional<obs::TraceRecord> done =
        crash.has_value()
            ? fq.first_after(obs::TraceKind::kPromotionDone, crash->seq, crash->shard)
            : std::nullopt;
    if (crash.has_value() && done.has_value()) {
      report.failover_gap = done->at - crash->at;
      appendf(hist, "failover-gap=%llu\n",
              static_cast<unsigned long long>(report.failover_gap));
      if (plan.expect_fast && report.failover_gap > kMillisecond) {
        violation("fast failover gap " + std::to_string(report.failover_gap) +
                  "ns exceeds the 1ms bound");
      }
    } else if (!done.has_value()) {
      violation("primary crash has no matching promotion trace");
    }
  }

  // Protocol ordering whenever the fast path actually promoted:
  // suspicion -> revocation -> ballot -> promotion.
  if (report.fast_promotions > 0) {
    if (!fq.happened_before(obs::TraceKind::kSuspicionRaised, obs::TraceKind::kRkeyRevoked)) {
      violation("revocation preceded suspicion");
    }
    if (!fq.happened_before(obs::TraceKind::kRkeyRevoked, obs::TraceKind::kBallotCast)) {
      violation("ballot preceded revocation");
    }
    if (!fq.happened_before(obs::TraceKind::kBallotCast, obs::TraceKind::kPromotionDone)) {
      violation("promotion preceded ballot");
    }
    if (fq.count(obs::TraceKind::kBallotWon) == 0) {
      violation("fast promotion without a winning ballot");
    }
  }

  appendf(hist,
          "end t=%llu failovers=%llu fast=%llu aborted=%llu revoked=%llu acked=%llu "
          "wedged=%llu violations=%zu\n",
          static_cast<unsigned long long>(sched.now()),
          static_cast<unsigned long long>(report.failovers),
          static_cast<unsigned long long>(report.fast_promotions),
          static_cast<unsigned long long>(report.rounds_aborted),
          static_cast<unsigned long long>(report.revocations),
          static_cast<unsigned long long>(report.acked_puts),
          static_cast<unsigned long long>(report.wedged_ops), report.violations.size());
  return report;
}

}  // namespace hydra::chaos
