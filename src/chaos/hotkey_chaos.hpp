// Chaos harness for the skew-aware hot-key replication plane (DESIGN.md
// §12) -- the hotkey family.
//
// A HotKeySchedule composes faults -- primary kills while promoted copies
// are live, destination-replica kills mid-promotion copy, heartbeat
// suppression (fencing + epoch bump), shared mux-QP deaths -- fired at
// parameterized points of a skewed multi-client GET/PUT workload that keeps
// the promotion plane hot. The HotKeyChaosRunner executes the workload
// against a fresh HydraCluster, injects the faults, lets the failover plane
// settle, and verifies:
//
//   1. no stale read, ever: a GET acked kOk returns a value at least as new
//      as the latest PUT on that key acked before the GET was issued --
//      whether it was served by the primary, a promoted follower copy, or
//      the message path, and across write-invalidation and kEpochPublished;
//   2. operation callbacks always eventually fire -- never wedge;
//   3. the cluster stays writable after the faults (probe PUT).
//
// Everything flows from (schedule, seed) through the virtual clock, so the
// report's history string is byte-identical across runs of the same inputs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace hydra::obs {
class Plane;
}  // namespace hydra::obs

namespace hydra::chaos {

enum class HotKeyFaultKind : std::uint8_t {
  kKillPrimary,         ///< crash the hot key's primary (copies may be live)
  kKillSecondary,       ///< crash a promotion destination (mid-copy window)
  kKillSwatMember,      ///< crash a SWAT member (leadership-gap window)
  kKillMuxChannel,      ///< abruptly kill the shared mux QP
  kSuppressHeartbeats,  ///< mute heartbeats: fence + epoch bump demotion
};

[[nodiscard]] const char* to_string(HotKeyFaultKind kind) noexcept;

struct HotKeyFault {
  HotKeyFaultKind kind = HotKeyFaultKind::kKillPrimary;
  /// Kill faults target the shard owning the hottest key (resolved at fire
  /// time, since key->shard placement is a hash artifact).
  int index = 0;  ///< secondary index / SWAT member / client-node index
  /// Fires `delay` of virtual time after the operation with this global
  /// issue index starts.
  std::uint32_t at_op = 0;
  Duration delay = 0;
  Duration duration = 0;  ///< heartbeat suppression length
};

struct HotKeySchedule {
  std::string name;
  int clients = 3;             ///< closed-loop clients (client 0 also writes)
  std::uint32_t ops_per_client = 150;
  std::uint32_t universe = 8;  ///< hot-key universe size (hk-0 .. hk-N-1)
  std::uint32_t hot_percent = 70;  ///< share of reads hitting hk-0
  std::uint32_t write_every = 0;   ///< client 0 PUTs every N ops (0 = never)
  int server_nodes = 3;
  int replicas = 2;
  int swat_members = 2;
  bool mux = false;  ///< run over QP-multiplexed connections
  std::vector<HotKeyFault> faults;

  /// The scripted families: fault-free promotion baseline, write-invalidate
  /// vs concurrent replica reads, destination killed mid-promotion copy,
  /// primary killed with copies live, a fencing epoch bump demoting live
  /// promotions, and a mux-channel death under replica reads.
  static std::vector<HotKeySchedule> scripted();

  /// Seeded-random composition over the same fault alphabet.
  static HotKeySchedule random(std::uint64_t seed);
};

struct HotKeyRunReport {
  /// Deterministic textual log; byte-identical across runs of one
  /// (schedule, seed), with or without an observability plane attached.
  std::string history;
  std::vector<std::string> violations;
  std::uint64_t gets_acked = 0;
  std::uint64_t puts_acked = 0;
  std::uint64_t wedged = 0;
  std::uint64_t stale_reads = 0;  ///< invariant-1 violations (also listed)
  std::uint64_t failovers = 0;
  // Plane activity, summed over live shards / all clients post-settle.
  std::uint64_t promotions = 0;
  std::uint64_t demotions = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t replica_hits = 0;

  [[nodiscard]] bool passed() const noexcept { return violations.empty(); }
};

class HotKeyChaosRunner {
 public:
  /// Runs `schedule` against a fresh cluster; `seed` drives value payloads
  /// and any randomized schedule parameters.
  static HotKeyRunReport run(const HotKeySchedule& schedule, std::uint64_t seed,
                             obs::Plane* plane = nullptr);
};

}  // namespace hydra::chaos
