// Deterministic chaos harness for the failover plane (DESIGN.md section 7).
//
// A ChaosSchedule composes faults -- process kills (primary, secondary,
// SWAT member), torn/dropped RDMA writes on the replication rings and ack
// slots, heartbeat suppression -- fired at parameterized points of a
// scripted PUT workload. The ChaosRunner executes the workload against a
// fresh HydraCluster, injects the faults, lets the failover plane settle,
// and then asks the HistoryChecker to verify the three invariants the paper
// implies:
//
//   1. every acked PUT is readable (with its exact value) after failover;
//   2. operation callbacks always eventually fire or fail -- never wedge;
//   3. the replication factor is restored to opts.replicas after promotion.
//
// Everything flows from the schedule plus a seed through hydra::sim's
// virtual clock, so a run is reproducible byte-for-byte: the report's
// history string is identical across runs with the same (schedule, seed).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "replication/primary.hpp"

namespace hydra::obs {
class Plane;
}  // namespace hydra::obs

namespace hydra::chaos {

enum class FaultKind : std::uint8_t {
  kKillPrimary,         ///< crash a shard's primary process
  kKillSecondary,       ///< crash one replica (primary must self-discover)
  kKillSwatMember,      ///< crash a SWAT member (leadership-gap window)
  kTearRecordWrite,     ///< next record-ring RDMA write commits a prefix
  kDropRecordWrite,     ///< next record-ring RDMA write commits nothing
  kTearAckWrite,        ///< next ack RDMA write commits a prefix
  kDropAckWrite,        ///< next ack RDMA write commits nothing
  kSuppressHeartbeats,  ///< mute a primary's coordinator heartbeats
  kFailApply,           ///< inject replica apply failures (forces rollback)
  kKillMuxChannel,      ///< abruptly kill a client node's shared mux QP
  kTearRevocation,      ///< next rkey revocation applies but loses its confirm
  kDropRevocation,      ///< next rkey revocation is lost entirely (forces retry)
};

[[nodiscard]] const char* to_string(FaultKind kind) noexcept;

struct Fault {
  FaultKind kind = FaultKind::kKillPrimary;
  ShardId shard = 0;
  int index = 0;  ///< secondary index / SWAT member index / fail count
  /// Fires `delay` of virtual time after operation `at_op` is issued --
  /// op-indexed so schedules compose with any workload length, delayed so
  /// kills land mid-operation rather than between operations.
  std::uint32_t at_op = 0;
  Duration delay = 0;
  Duration duration = 0;         ///< heartbeat suppression length
  std::uint32_t torn_bytes = 8;  ///< committed prefix for tear faults
};

struct ChaosSchedule {
  std::string name;
  std::vector<Fault> faults;
  std::uint32_t ops = 60;  ///< acked-PUT workload length
  replication::ReplicationMode mode = replication::ReplicationMode::kLogRelaxed;
  int replicas = 1;
  int swat_members = 2;
  /// Run the workload over QP-multiplexed connections (DESIGN.md §10);
  /// required by kKillMuxChannel faults.
  bool mux = false;

  /// The scripted families covering every fault point the issue names:
  /// primary kill mid-PUT and mid-rollback, secondary kill mid-replay,
  /// torn/dropped ack and record writes, heartbeat suppression, SWAT-member
  /// kill during a failover.
  static std::vector<ChaosSchedule> scripted();

  /// Seeded-random composition over the same fault alphabet.
  static ChaosSchedule random(std::uint64_t seed);
};

/// One operation's fate, as the client observed it.
struct OpRecord {
  std::uint32_t idx = 0;
  std::string key;
  std::string value;
  Status status = Status::kTimeout;
  bool completed = false;  ///< callback fired (any status)
  Time done_at = 0;
};

struct RunReport {
  /// Deterministic textual log of everything that happened (ops, faults,
  /// probes, verdicts); byte-identical across runs of the same seed.
  std::string history;
  /// Human-readable invariant violations; empty means the run passed.
  std::vector<std::string> violations;
  std::uint64_t failovers = 0;
  std::uint64_t acked_puts = 0;
  std::uint64_t wedged_ops = 0;
  /// Virtual time from the first primary kill to the failover completing
  /// (0 when the schedule kills no primary or no failover happened).
  Duration recovery_time = 0;

  [[nodiscard]] bool passed() const noexcept { return violations.empty(); }
};

class ChaosRunner {
 public:
  /// Runs `schedule` against a fresh cluster; `seed` drives both the value
  /// payloads and any randomized schedule parameters. `plane` (optional)
  /// attaches an observability plane to the cluster; the report's history is
  /// byte-identical with or without it (the golden-determinism contract).
  static RunReport run(const ChaosSchedule& schedule, std::uint64_t seed,
                       obs::Plane* plane = nullptr);
};

// --- live-migration chaos (DESIGN.md section 9) -----------------------------

enum class MigrationOp : std::uint8_t {
  kAdd,    ///< spawn a new shard and rebalance ~1/N of every range onto it
  kDrain,  ///< move everything off an existing shard, then retire it
};

[[nodiscard]] const char* to_string(MigrationOp op) noexcept;

/// A chaos scenario for the elastic-membership plane: a closed-loop
/// PUT+readback workload runs across a multi-shard cluster while one live
/// migration executes, with kill faults landing on the migration's source,
/// its destination, or the SWAT team mid-copy. Fault timing reuses the
/// op-indexed Fault mechanics; only the process-kill and heartbeat kinds are
/// meaningful here (wire faults are the failover harness's concern).
struct MigrationSchedule {
  std::string name;
  MigrationOp op = MigrationOp::kAdd;
  int initial_shards = 3;
  int replicas = 1;
  int swat_members = 2;
  /// Keys direct-loaded before the clock starts; sized so the bulk copy
  /// spans many manager ticks and faults can land mid-copy.
  std::uint32_t preload = 1536;
  std::uint32_t ops = 72;           ///< closed-loop PUT(+readback GET) pairs
  std::uint32_t migrate_at_op = 8;  ///< trigger the add/drain when this op issues
  ShardId drain_victim = 1;         ///< shard drained when op == kDrain
  /// For an add, the subject shard's id is `initial_shards` (shard ids are
  /// append-only), so faults can target it before it exists; they are
  /// skipped if it still does not when they fire.
  std::vector<Fault> faults;

  /// The scripted families the issue names: clean add and drain, source
  /// killed mid-copy, destination killed mid-copy, drain victim killed
  /// mid-drain, and a SWAT leadership gap overlapping a source kill.
  static std::vector<MigrationSchedule> scripted();

  /// Seeded-random composition over the same alphabet.
  static MigrationSchedule random(std::uint64_t seed);
};

struct MigrationReport {
  /// Deterministic textual log; byte-identical across runs of the same
  /// (schedule, seed), with or without an observability plane attached.
  std::string history;
  std::vector<std::string> violations;
  std::uint64_t acked_puts = 0;
  std::uint64_t readbacks = 0;  ///< mid-migration GETs issued by the workload
  std::uint64_t wedged_ops = 0;
  std::uint64_t failovers = 0;
  std::uint64_t keys_moved = 0;
  std::uint64_t flow_restarts = 0;
  std::uint64_t forwarded = 0;            ///< dual-ownership catch-up records
  std::uint64_t epoch_invalidations = 0;  ///< cached pointers dropped by clients
  std::uint64_t epoch_before = 0;
  std::uint64_t epoch_after = 0;
  bool migration_completed = false;
  /// Virtual time from the add/drain call to the commit (0 if never done).
  Duration migration_time = 0;

  [[nodiscard]] bool passed() const noexcept { return violations.empty(); }
};

class MigrationChaosRunner {
 public:
  /// Runs `schedule` against a fresh cluster and verifies the elastic
  /// invariants: no wedged ops, every acked PUT (and preloaded key) readable
  /// with its exact value after the final epoch, each key held by exactly
  /// one ring member's store, the migration committed with the routing
  /// epoch bumped, and the subject retired (drain) or serving (add).
  static MigrationReport run(const MigrationSchedule& schedule, std::uint64_t seed,
                             obs::Plane* plane = nullptr);
};

}  // namespace hydra::chaos
