#include "chaos/scan_chaos.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <type_traits>
#include <utility>

#include "common/rng.hpp"
#include "hydradb/hydra_cluster.hpp"

namespace hydra::chaos {

const char* to_string(ScanFaultKind kind) noexcept {
  switch (kind) {
    case ScanFaultKind::kAddShard: return "add-shard";
    case ScanFaultKind::kDrainShard: return "drain-shard";
    case ScanFaultKind::kKillSource: return "kill-source";
    case ScanFaultKind::kKillDest: return "kill-dest";
    case ScanFaultKind::kKillSwatMember: return "kill-swat-member";
    case ScanFaultKind::kSuppressHeartbeats: return "suppress-heartbeats";
    case ScanFaultKind::kTornLeafReads: return "torn-leaf-reads";
  }
  return "unknown";
}

namespace {

/// Failover (session timeout 2s) + migration copy + retry backoffs.
constexpr Duration kSettle = 6 * kSecond;
constexpr Time kWorkloadTimeLimit = 120 * kSecond;
constexpr std::uint64_t kWorkloadStepLimit = 40'000'000;

#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

/// Scan keys are zero-padded so lexicographic order == numeric order; the
/// invariant checks lean on that.
std::string scan_key(std::uint32_t idx) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "sk-%06u", idx);
  return buf;
}

std::string scan_value(std::uint32_t idx, std::uint64_t salt) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "sv%06u-%016llx", idx,
                static_cast<unsigned long long>(salt));
  return buf;
}

/// Parses "sk-NNNNNN" back to NNNNNN; nullopt for any foreign shape.
std::optional<std::uint32_t> parse_scan_key(const std::string& key) {
  if (key.size() != 9 || key.compare(0, 3, "sk-") != 0) return std::nullopt;
  std::uint32_t idx = 0;
  for (std::size_t i = 3; i < key.size(); ++i) {
    if (key[i] < '0' || key[i] > '9') return std::nullopt;
    idx = idx * 10 + static_cast<std::uint32_t>(key[i] - '0');
  }
  return idx;
}

}  // namespace

std::vector<ScanSchedule> ScanSchedule::scripted() {
  std::vector<ScanSchedule> out;
  {
    // Fault-free cross-shard merge baseline: inserts race scans, nothing
    // else. Establishes that the cursor alone never loses/dups a key.
    ScanSchedule s;
    s.name = "scan-baseline";
    out.push_back(std::move(s));
  }
  {
    // Live expansion: a new shard joins and ~1/N of every range migrates
    // while scans stream. The commit's epoch bump must restart cursors
    // without dropping or duplicating across the handover.
    ScanSchedule s;
    s.name = "scan-add-shard-live";
    s.faults.push_back({.kind = ScanFaultKind::kAddShard, .at_op = 30});
    out.push_back(std::move(s));
  }
  {
    // Live drain: an original shard empties onto the survivors and leaves
    // the ring; scans spanning the drain see every key exactly once.
    ScanSchedule s;
    s.name = "scan-drain-shard-live";
    s.faults.push_back({.kind = ScanFaultKind::kDrainShard, .index = 0,
                        .at_op = 30});
    out.push_back(std::move(s));
  }
  {
    // The expansion destination dies mid-copy: the migration aborts and
    // the half-copied shard must never serve (or leak into) a scan.
    ScanSchedule s;
    s.name = "scan-add-kill-dest";
    s.faults.push_back({.kind = ScanFaultKind::kAddShard, .at_op = 20});
    s.faults.push_back({.kind = ScanFaultKind::kKillDest, .at_op = 45,
                        .delay = 10 * kMicrosecond});
    out.push_back(std::move(s));
  }
  {
    // A migration source dies mid-copy: failover promotes a replica and
    // scans targeting the dead primary restart against the new epoch.
    ScanSchedule s;
    s.name = "scan-add-kill-source";
    s.faults.push_back({.kind = ScanFaultKind::kAddShard, .at_op = 20});
    s.faults.push_back({.kind = ScanFaultKind::kKillSource, .index = 1,
                        .at_op = 50, .delay = 20 * kMicrosecond});
    out.push_back(std::move(s));
  }
  {
    // Drain overlapping a SWAT leadership gap: promotions stall for the
    // gap; scans must keep restarting (not wedge) until the plane recovers.
    ScanSchedule s;
    s.name = "scan-drain-swat-gap";
    s.swat_members = 3;
    s.faults.push_back({.kind = ScanFaultKind::kDrainShard, .index = 0,
                        .at_op = 25});
    s.faults.push_back({.kind = ScanFaultKind::kKillSource, .index = 1,
                        .at_op = 55, .delay = 20 * kMicrosecond});
    s.faults.push_back({.kind = ScanFaultKind::kKillSwatMember, .index = 0,
                        .at_op = 55, .delay = 1900 * kMillisecond});
    out.push_back(std::move(s));
  }
  {
    // Torn one-sided leaf reads the whole run: every garbled page must be
    // caught by the client-side checksum and fall back to the message path.
    ScanSchedule s;
    s.name = "scan-torn-leaf-reads";
    s.faults.push_back({.kind = ScanFaultKind::kTornLeafReads, .at_op = 0,
                        .duration = 120 * kSecond, .percent = 60});
    out.push_back(std::move(s));
  }
  {
    // The kitchen sink: expansion + fencing epoch bump + torn leaf reads.
    ScanSchedule s;
    s.name = "scan-migration-fence-torn";
    s.faults.push_back({.kind = ScanFaultKind::kTornLeafReads, .at_op = 0,
                        .duration = 120 * kSecond, .percent = 40});
    s.faults.push_back({.kind = ScanFaultKind::kAddShard, .at_op = 25});
    s.faults.push_back({.kind = ScanFaultKind::kSuppressHeartbeats, .index = 2,
                        .at_op = 60, .duration = 3 * kSecond});
    out.push_back(std::move(s));
  }
  return out;
}

ScanSchedule ScanSchedule::random(std::uint64_t seed) {
  Xoshiro256 rng(seed * 0xBF58476D1CE4E5B9ULL + 0x94D049BB133111EBULL);
  ScanSchedule s;
  s.name = "scan-random-" + std::to_string(seed);
  s.inserts = 100 + static_cast<std::uint32_t>(rng.below(100));
  s.scans = 50 + static_cast<std::uint32_t>(rng.below(60));
  s.max_scan_limit = 16 + static_cast<std::uint32_t>(rng.below(48));
  s.leaf_reads = rng.below(4) != 0;
  const std::uint32_t total = s.inserts + s.scans;
  auto op_point = [&] { return static_cast<std::uint32_t>(rng.below(total)); };

  // At most one migration at a time is supported; pick one (or none).
  const std::uint64_t mig = rng.below(3);
  if (mig == 1) {
    s.faults.push_back({.kind = ScanFaultKind::kAddShard, .at_op = op_point()});
    if (rng.below(3) == 0) {
      s.faults.push_back({.kind = ScanFaultKind::kKillDest, .at_op = op_point(),
                          .delay = static_cast<Duration>(rng.below(50 * kMicrosecond))});
    }
  } else if (mig == 2) {
    s.faults.push_back({.kind = ScanFaultKind::kDrainShard,
                        .index = static_cast<int>(rng.below(3)),
                        .at_op = op_point()});
  }
  if (rng.below(3) == 0) {
    s.faults.push_back({.kind = ScanFaultKind::kKillSource,
                        .index = static_cast<int>(rng.below(3)),
                        .at_op = op_point(),
                        .delay = static_cast<Duration>(rng.below(100 * kMicrosecond))});
    if (rng.below(3) == 0) {
      s.swat_members = 3;
      s.faults.push_back({.kind = ScanFaultKind::kKillSwatMember, .index = 0,
                          .at_op = op_point(),
                          .delay = 1500 * kMillisecond + rng.below(kSecond)});
    }
  }
  if (rng.below(4) == 0) {
    s.faults.push_back({.kind = ScanFaultKind::kSuppressHeartbeats,
                        .index = static_cast<int>(rng.below(3)),
                        .at_op = op_point(),
                        .duration = kSecond + rng.below(3 * kSecond)});
  }
  if (s.leaf_reads && rng.below(2) == 0) {
    s.faults.push_back({.kind = ScanFaultKind::kTornLeafReads, .at_op = 0,
                        .duration = 120 * kSecond,
                        .percent = 20 + static_cast<std::uint32_t>(rng.below(60))});
  }
  return s;
}

ScanRunReport ScanChaosRunner::run(const ScanSchedule& schedule, std::uint64_t seed,
                                   obs::Plane* plane) {
  ScanSchedule plan = schedule;
  plan.inserts = std::max<std::uint32_t>(plan.inserts, 1);
  plan.scans = std::max<std::uint32_t>(plan.scans, 1);
  plan.max_scan_limit = std::max<std::uint32_t>(plan.max_scan_limit, 1);
  const std::uint32_t total_ops = plan.inserts + plan.scans;
  for (ScanFault& f : plan.faults) f.at_op = std::min(f.at_op, total_ops - 1);

  ScanRunReport report;
  std::string& hist = report.history;
  auto violation = [&](std::string text) {
    hist += "violation: " + text + "\n";
    report.violations.push_back(std::move(text));
  };

  db::ClusterOptions opts;
  opts.server_nodes = plan.server_nodes;
  opts.shards_per_node = 1;
  opts.client_nodes = 1;
  opts.clients_per_node = 2;  // client 0 inserts, client 1 scans
  opts.replicas = plan.replicas;
  opts.enable_swat = true;
  opts.swat_members = plan.swat_members;
  opts.client_rdma_read = true;
  opts.ordered_index = true;
  opts.client_template.scan_leaf_reads = plan.leaf_reads;
  // Small batches force multi-round continuations: tokens live across epoch
  // bumps and leaf hints actually get consumed, which is the whole point of
  // this family.
  opts.client_template.scan_batch = 4;
  opts.client_template.request_timeout = 100 * kMillisecond;
  opts.client_template.max_retries = 100;
  opts.obs = plane;

  db::HydraCluster cluster(opts);
  sim::Scheduler& sched = cluster.scheduler();
  const int original_shards = static_cast<int>(cluster.shard_count());

  appendf(hist, "run schedule=%s seed=%llu inserts=%u scans=%u max-limit=%u "
                "leaf-reads=%d shards=%d\n",
          plan.name.c_str(), static_cast<unsigned long long>(seed), plan.inserts,
          plan.scans, plan.max_scan_limit, plan.leaf_reads ? 1 : 0, original_shards);

  // --- fault machinery ------------------------------------------------------
  ShardId added_shard = kInvalidShard;
  // The torn-read rng outlives apply_fault's frame (the hook keeps firing
  // until the window closes), hence the shared_ptr capture.
  auto torn_rng = std::make_shared<Xoshiro256>(seed ^ 0xC2B2AE3D27D4EB4FULL);

  auto apply_fault = [&](const ScanFault& f) {
    appendf(hist, "t=%llu fault %s idx=%d\n",
            static_cast<unsigned long long>(sched.now()), to_string(f.kind), f.index);
    auto original = [&](int idx) {
      return static_cast<ShardId>(idx % original_shards);
    };
    switch (f.kind) {
      case ScanFaultKind::kAddShard: {
        added_shard = cluster.add_shard_live();
        appendf(hist, "t=%llu add-shard -> %d\n",
                static_cast<unsigned long long>(sched.now()),
                added_shard == kInvalidShard ? -1 : static_cast<int>(added_shard));
        break;
      }
      case ScanFaultKind::kDrainShard: {
        const bool ok = cluster.drain_shard_live(original(f.index));
        appendf(hist, "t=%llu drain-shard %u -> %d\n",
                static_cast<unsigned long long>(sched.now()),
                static_cast<unsigned>(original(f.index)), ok ? 1 : 0);
        break;
      }
      case ScanFaultKind::kKillSource: {
        const ShardId id = original(f.index);
        auto* sh = cluster.shard(id);
        if (sh != nullptr && sh->alive() && !cluster.shard_retired(id)) {
          cluster.crash_primary(id);
        }
        break;
      }
      case ScanFaultKind::kKillDest: {
        if (added_shard == kInvalidShard) break;
        auto* sh = cluster.shard(added_shard);
        if (sh != nullptr && sh->alive()) cluster.crash_primary(added_shard);
        break;
      }
      case ScanFaultKind::kKillSwatMember:
        cluster.kill_swat_member(f.index);
        break;
      case ScanFaultKind::kSuppressHeartbeats:
        cluster.suppress_heartbeats(original(f.index), f.duration);
        break;
      case ScanFaultKind::kTornLeafReads: {
        const std::uint32_t percent = std::min<std::uint32_t>(f.percent, 100);
        cluster.fabric().set_read_fault_hook(
            [&cluster, torn_rng, percent](NodeId, NodeId, const fabric::RemoteAddr& addr,
                                          std::uint32_t size) {
              // Only leaf-page mirror reads are torn: match the target rkey
              // against every live shard's mirror registration.
              bool leaf = false;
              for (ShardId s = 0; s < static_cast<ShardId>(cluster.shard_count());
                   ++s) {
                auto* sh = cluster.shard(s);
                if (sh != nullptr && sh->alive() && sh->scan_leaf_rkey() != 0 &&
                    sh->scan_leaf_rkey() == addr.rkey) {
                  leaf = true;
                  break;
                }
              }
              fabric::ReadFault fault;
              if (leaf && torn_rng->below(100) < percent) {
                fault.kind = fabric::ReadFault::Kind::kTorn;
                // Tear inside the header/early payload: the read spans the
                // whole mirror slot, so tearing the unused slack past the
                // encoded prefix would corrupt nothing.
                fault.torn_bytes = static_cast<std::uint32_t>(
                    torn_rng->below(std::min<std::uint32_t>(size, 64)));
              }
              return fault;
            });
        sched.after(f.duration, [&cluster] {
          cluster.fabric().set_read_fault_hook(nullptr);
        });
        break;
      }
    }
  };

  // --- workload plan --------------------------------------------------------
  // Client 0 inserts every key exactly once, in a seeded shuffle so the key
  // space fills non-monotonically; values are a pure function of
  // (seed, key), making the phantom check exact.
  Xoshiro256 rng(seed);
  std::vector<std::uint32_t> insert_order(plan.inserts);
  for (std::uint32_t i = 0; i < plan.inserts; ++i) insert_order[i] = i;
  for (std::uint32_t i = plan.inserts; i > 1; --i) {
    std::swap(insert_order[i - 1], insert_order[rng.below(i)]);
  }
  std::vector<std::string> values(plan.inserts);
  for (std::uint32_t i = 0; i < plan.inserts; ++i) values[i] = scan_value(i, rng());

  struct PlannedScan {
    std::uint32_t start = 0;
    std::uint32_t limit = 1;
  };
  std::vector<PlannedScan> scan_plan(plan.scans);
  for (auto& ps : scan_plan) {
    ps.start = static_cast<std::uint32_t>(rng.below(plan.inserts));
    ps.limit = 1 + static_cast<std::uint32_t>(rng.below(plan.max_scan_limit));
  }

  // --- closed-loop issue ----------------------------------------------------
  std::set<std::uint32_t> acked;  ///< key indices whose INSERT acked kOk
  std::uint32_t global_issue = 0;
  std::uint32_t completed = 0;
  std::uint32_t put_cursor = 0;
  std::uint32_t scan_cursor = 0;
  std::uint64_t scan_failures = 0;

  auto arm_faults = [&](std::uint32_t issue_idx) {
    for (const ScanFault& f : plan.faults) {
      if (f.at_op != issue_idx) continue;
      const ScanFault* fp = &f;
      sched.after(f.delay, [&apply_fault, fp] { apply_fault(*fp); });
    }
  };

  client::Client* writer = cluster.clients()[0];
  client::Client* scanner = cluster.clients()[1];

  std::function<void()> drive_put = [&] {
    if (put_cursor >= plan.inserts) return;
    const std::uint32_t key_idx = insert_order[put_cursor++];
    const std::uint32_t issue_idx = global_issue++;
    arm_faults(issue_idx);
    appendf(hist, "t=%llu op=%u put sk-%06u\n",
            static_cast<unsigned long long>(sched.now()), issue_idx, key_idx);
    writer->put(scan_key(key_idx), values[key_idx], [&, key_idx, issue_idx](Status st) {
      ++completed;
      if (st == Status::kOk) {
        ++report.puts_acked;
        acked.insert(key_idx);
      }
      appendf(hist, "t=%llu op=%u put-done status=%s\n",
              static_cast<unsigned long long>(sched.now()), issue_idx,
              std::string(to_string(st)).c_str());
      drive_put();
    });
  };

  // Verifies one completed scan against the acked-set snapshot taken when
  // it was issued. `context` labels the violation text.
  auto check_scan = [&](const std::string& context, const std::string& start_key,
                        std::uint32_t limit, const std::vector<std::uint32_t>& snapshot,
                        const client::Client::ScanEntries& entries) {
    // Invariant 1: strictly ascending (covers both ordering and dups).
    for (std::size_t i = 1; i < entries.size(); ++i) {
      if (entries[i - 1].first < entries[i].first) continue;
      ++report.dup_keys;
      violation(context + ": result not strictly ascending at [" +
                std::to_string(i) + "]: \"" + entries[i - 1].first +
                "\" then \"" + entries[i].first + "\"");
    }
    // Invariant 3: no phantoms -- every entry is a planned (key, value).
    for (const auto& [k, v] : entries) {
      const auto idx = parse_scan_key(k);
      if (!idx.has_value() || *idx >= plan.inserts) {
        ++report.phantoms;
        violation(context + ": phantom key \"" + k + "\"");
        continue;
      }
      if (k < start_key) {
        ++report.lost_keys;
        violation(context + ": key \"" + k + "\" precedes scan start \"" +
                  start_key + "\"");
      }
      if (v != values[*idx]) {
        ++report.phantoms;
        violation(context + ": key \"" + k + "\" carries foreign value \"" + v +
                  "\"");
      }
    }
    // Invariant 2: no lost key inside the observed window. When the limit
    // was filled the window closes at the last returned key; otherwise the
    // scan claims to have exhausted the range.
    const bool window_closed = entries.size() >= limit;
    const std::string upper = window_closed && !entries.empty()
                                  ? entries.back().first
                                  : std::string();
    for (const std::uint32_t idx : snapshot) {
      const std::string key = scan_key(idx);
      if (key < start_key) continue;
      if (window_closed && key > upper) continue;
      const bool present = std::binary_search(
          entries.begin(), entries.end(), key,
          [](const auto& a, const auto& b) {
            if constexpr (std::is_same_v<std::decay_t<decltype(a)>, std::string>) {
              return a < b.first;
            } else {
              return a.first < b;
            }
          });
      if (!present) {
        ++report.lost_keys;
        violation(context + ": acked key \"" + key +
                  "\" missing from scan window [\"" + start_key + "\", " +
                  (window_closed ? "\"" + upper + "\"" : "inf") + "]");
      }
    }
  };

  std::function<void()> drive_scan = [&] {
    if (scan_cursor >= plan.scans) return;
    const PlannedScan ps = scan_plan[scan_cursor];
    const std::uint32_t scan_idx = scan_cursor++;
    const std::uint32_t issue_idx = global_issue++;
    arm_faults(issue_idx);
    const std::string start_key = scan_key(ps.start);
    auto snapshot = std::make_shared<std::vector<std::uint32_t>>(acked.begin(),
                                                                 acked.end());
    appendf(hist, "t=%llu op=%u scan start=sk-%06u limit=%u acked=%zu\n",
            static_cast<unsigned long long>(sched.now()), issue_idx, ps.start,
            ps.limit, snapshot->size());
    scanner->scan(start_key, ps.limit,
                  [&, scan_idx, issue_idx, start_key, ps, snapshot](
                      Status st, client::Client::ScanEntries entries) {
                    ++completed;
                    appendf(hist, "t=%llu op=%u scan-done status=%s entries=%zu\n",
                            static_cast<unsigned long long>(sched.now()), issue_idx,
                            std::string(to_string(st)).c_str(), entries.size());
                    if (st == Status::kOk) {
                      ++report.scans_acked;
                      report.scan_entries += entries.size();
                      check_scan("scan " + std::to_string(scan_idx), start_key,
                                 ps.limit, *snapshot, entries);
                    } else {
                      ++scan_failures;
                    }
                    drive_scan();
                  });
  };

  drive_put();
  drive_scan();

  std::uint64_t steps = 0;
  while (completed < total_ops && sched.now() < kWorkloadTimeLimit &&
         steps < kWorkloadStepLimit) {
    if (!sched.step()) break;
    ++steps;
  }
  const Time settle_end = sched.now() + kSettle;
  while (sched.now() < settle_end && sched.step()) {
  }
  cluster.fabric().set_read_fault_hook(nullptr);

  // --- invariant 4: every callback fired ------------------------------------
  if (completed < total_ops) {
    report.wedged = total_ops - completed;
    violation(std::to_string(report.wedged) +
              " operation(s) never completed: callback wedged");
  }

  // --- cluster still writable ----------------------------------------------
  const Status probe = cluster.put("scan-probe", "alive");
  appendf(hist, "t=%llu probe-put status=%s\n",
          static_cast<unsigned long long>(sched.now()),
          std::string(to_string(probe)).c_str());
  if (probe != Status::kOk) {
    violation("probe PUT failed: cluster not writable after faults (" +
              std::string(to_string(probe)) + ")");
  }

  // --- final audit: a full-range scan sees every acked key exactly once ----
  {
    std::vector<std::pair<std::string, std::string>> out;
    const Status st = cluster.scan(scan_key(0), plan.inserts + 8, &out, 1);
    appendf(hist, "t=%llu audit-scan status=%s entries=%zu acked=%zu\n",
            static_cast<unsigned long long>(sched.now()),
            std::string(to_string(st)).c_str(), out.size(), acked.size());
    if (st != Status::kOk) {
      violation("final audit scan failed: " + std::string(to_string(st)));
    } else {
      const std::vector<std::uint32_t> all_acked(acked.begin(), acked.end());
      check_scan("audit", scan_key(0), plan.inserts + 8, all_acked, out);
    }
  }

  // --- bookkeeping ----------------------------------------------------------
  report.failovers = cluster.failovers();
  report.torn_reads = cluster.fabric().stats().torn_reads;
  for (ShardId s = 0; s < static_cast<ShardId>(cluster.shard_count()); ++s) {
    auto* sh = cluster.shard(s);
    if (sh == nullptr || !sh->alive()) continue;
    report.scan_token_rejects += sh->stats().scan_token_rejects;
  }
  for (const auto* cl : cluster.clients()) {
    report.scan_restarts += cl->stats().scan_restarts;
    report.scan_leaf_reads += cl->stats().scan_leaf_reads;
    report.scan_leaf_fallbacks += cl->stats().scan_leaf_fallbacks;
  }

  appendf(hist,
          "end t=%llu puts=%llu scans=%llu scan-failures=%llu entries=%llu "
          "wedged=%llu lost=%llu dup=%llu phantom=%llu failovers=%llu "
          "restarts=%llu leaf-reads=%llu leaf-fallbacks=%llu token-rejects=%llu "
          "torn=%llu violations=%zu\n",
          static_cast<unsigned long long>(sched.now()),
          static_cast<unsigned long long>(report.puts_acked),
          static_cast<unsigned long long>(report.scans_acked),
          static_cast<unsigned long long>(scan_failures),
          static_cast<unsigned long long>(report.scan_entries),
          static_cast<unsigned long long>(report.wedged),
          static_cast<unsigned long long>(report.lost_keys),
          static_cast<unsigned long long>(report.dup_keys),
          static_cast<unsigned long long>(report.phantoms),
          static_cast<unsigned long long>(report.failovers),
          static_cast<unsigned long long>(report.scan_restarts),
          static_cast<unsigned long long>(report.scan_leaf_reads),
          static_cast<unsigned long long>(report.scan_leaf_fallbacks),
          static_cast<unsigned long long>(report.scan_token_rejects),
          static_cast<unsigned long long>(report.torn_reads),
          report.violations.size());
  return report;
}

}  // namespace hydra::chaos
