#include "chaos/chaos.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <memory>
#include <optional>
#include <utility>

#include "common/rng.hpp"
#include "hydradb/hydra_cluster.hpp"
#include "hydradb/swat.hpp"

namespace hydra::chaos {

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kKillPrimary: return "kill-primary";
    case FaultKind::kKillSecondary: return "kill-secondary";
    case FaultKind::kKillSwatMember: return "kill-swat-member";
    case FaultKind::kTearRecordWrite: return "tear-record-write";
    case FaultKind::kDropRecordWrite: return "drop-record-write";
    case FaultKind::kTearAckWrite: return "tear-ack-write";
    case FaultKind::kDropAckWrite: return "drop-ack-write";
    case FaultKind::kSuppressHeartbeats: return "suppress-heartbeats";
    case FaultKind::kFailApply: return "fail-apply";
    case FaultKind::kKillMuxChannel: return "kill-mux-channel";
    case FaultKind::kTearRevocation: return "tear-revocation";
    case FaultKind::kDropRevocation: return "drop-revocation";
  }
  return "unknown";
}

namespace {

using replication::ReplicationMode;

/// Virtual time granted after the workload for failovers to finish (session
/// timeout 2s + sweep + watch + promotion leaves ample slack).
constexpr Duration kSettle = 6 * kSecond;
/// Wedge detection: a workload that has not completed by this much virtual
/// time (or this many events) is stuck -- invariant 2 is violated.
constexpr Time kWorkloadTimeLimit = 120 * kSecond;
constexpr std::uint64_t kWorkloadStepLimit = 40'000'000;

#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

const char* mode_name(ReplicationMode m) {
  switch (m) {
    case ReplicationMode::kNone: return "none";
    case ReplicationMode::kLogRelaxed: return "relaxed";
    case ReplicationMode::kStrictAck: return "strict";
  }
  return "unknown";
}

bool is_ack_fault(FaultKind k) {
  return k == FaultKind::kTearAckWrite || k == FaultKind::kDropAckWrite;
}

std::string hex16(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::vector<ChaosSchedule> ChaosSchedule::scripted() {
  std::vector<ChaosSchedule> out;

  {
    // The headline crash: the primary dies while a PUT is on the wire.
    ChaosSchedule s;
    s.name = "primary-kill-mid-put";
    s.ops = 40;
    s.mode = ReplicationMode::kLogRelaxed;
    s.replicas = 1;
    s.faults.push_back({.kind = FaultKind::kKillPrimary, .at_op = 12,
                        .delay = 2 * kMicrosecond});
    out.push_back(std::move(s));
  }
  {
    // Replica apply failures force the rollback-resend protocol, and the
    // primary dies while that rollback is still in flight. Strict mode keeps
    // the affected records unacknowledged, so the client's retries (not the
    // half-finished rollback) are what re-drive them on the new primary.
    ChaosSchedule s;
    s.name = "primary-kill-mid-rollback";
    s.ops = 30;
    s.mode = ReplicationMode::kStrictAck;
    s.replicas = 1;
    s.faults.push_back({.kind = FaultKind::kFailApply, .index = 0, .at_op = 10});
    s.faults.push_back({.kind = FaultKind::kKillPrimary, .at_op = 10,
                        .delay = 200 * kMicrosecond});
    out.push_back(std::move(s));
  }
  {
    // A replica dies mid-replay with strict acks outstanding: the primary
    // must quarantine the corpse and fire the strict waiters, never wedge.
    ChaosSchedule s;
    s.name = "secondary-kill-mid-replay";
    s.ops = 40;
    s.mode = ReplicationMode::kStrictAck;
    s.replicas = 2;
    s.faults.push_back({.kind = FaultKind::kKillSecondary, .index = 1,
                        .at_op = 15, .delay = 5 * kMicrosecond});
    out.push_back(std::move(s));
  }
  {
    // Acks themselves are RDMA writes: tear one and drop another. The
    // ack-deadline probe must recover both without a single client timeout
    // budget being exhausted.
    ChaosSchedule s;
    s.name = "torn-and-dropped-ack";
    s.ops = 40;
    s.mode = ReplicationMode::kStrictAck;
    s.replicas = 1;
    s.faults.push_back({.kind = FaultKind::kTearAckWrite, .at_op = 10,
                        .torn_bytes = 12});
    s.faults.push_back({.kind = FaultKind::kDropAckWrite, .at_op = 25});
    out.push_back(std::move(s));
  }
  {
    // Torn and dropped log-record writes: the in-place retransmit path must
    // heal the ring hole before the completion (and thus the client ack).
    ChaosSchedule s;
    s.name = "torn-and-dropped-record";
    s.ops = 40;
    s.mode = ReplicationMode::kLogRelaxed;
    s.replicas = 1;
    s.faults.push_back({.kind = FaultKind::kTearRecordWrite, .at_op = 8,
                        .torn_bytes = 16});
    s.faults.push_back({.kind = FaultKind::kDropRecordWrite, .at_op = 20});
    out.push_back(std::move(s));
  }
  {
    // Heartbeat suppression past the session timeout: the shard must be
    // fenced (not split-brained) and a replica promoted under it.
    ChaosSchedule s;
    s.name = "heartbeat-suppression-fences";
    s.ops = 50;
    s.mode = ReplicationMode::kLogRelaxed;
    s.replicas = 1;
    s.faults.push_back({.kind = FaultKind::kSuppressHeartbeats, .at_op = 10,
                        .duration = 3 * kSecond});
    out.push_back(std::move(s));
  }
  {
    // The shared mux QP carrying every co-located client's traffic dies
    // abruptly -- twice -- while PUTs are on the wire. The mux layer is not
    // told; endpoints must discover the corpse by timeout, tear the channel
    // down, re-establish lazily and retransmit. No acked write may be lost.
    ChaosSchedule s;
    s.name = "mux-channel-kill-mid-put";
    s.ops = 40;
    s.mode = ReplicationMode::kLogRelaxed;
    s.replicas = 1;
    s.mux = true;
    s.faults.push_back({.kind = FaultKind::kKillMuxChannel, .at_op = 10,
                        .delay = 2 * kMicrosecond});
    s.faults.push_back({.kind = FaultKind::kKillMuxChannel, .at_op = 25,
                        .delay = 2 * kMicrosecond});
    out.push_back(std::move(s));
  }
  {
    // The SWAT leader is a corpse (znode lingering until session expiry)
    // when the primary's death event arrives -- the leadership-gap window.
    // The pending-death set must hold the event until member 1 takes over.
    ChaosSchedule s;
    s.name = "swat-leader-dead-during-failover";
    s.ops = 40;
    s.mode = ReplicationMode::kLogRelaxed;
    s.replicas = 1;
    s.swat_members = 3;
    s.faults.push_back({.kind = FaultKind::kKillPrimary, .at_op = 10});
    s.faults.push_back({.kind = FaultKind::kKillSwatMember, .index = 0,
                        .at_op = 10, .delay = 1900 * kMillisecond});
    out.push_back(std::move(s));
  }
  return out;
}

ChaosSchedule ChaosSchedule::random(std::uint64_t seed) {
  // Decorrelate from the runner's value stream, which hashes the raw seed.
  Xoshiro256 rng(seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
  ChaosSchedule s;
  s.name = "random-" + std::to_string(seed);
  s.ops = 30 + static_cast<std::uint32_t>(rng.below(31));

  // Safety rules keeping the invariants meaningful (never a schedule whose
  // data loss is *correct* behaviour):
  //  * secondary kills only with two replicas, and only replica #1, so a
  //    live replica always remains for promotion;
  //  * injected apply failures force strict mode -- under relaxed acks a
  //    primary death racing an unfinished rollback may legitimately lose
  //    acked records (the durability trade the paper makes explicit).
  const bool kill_secondary = rng.below(3) == 0;
  s.replicas = kill_secondary ? 2 : 1 + static_cast<int>(rng.below(2));
  const bool fail_apply = rng.below(4) == 0;
  s.mode = (fail_apply || rng.below(2) == 0) ? ReplicationMode::kStrictAck
                                             : ReplicationMode::kLogRelaxed;
  const bool kill_primary = rng.below(2) == 0;
  const bool kill_swat = kill_primary && rng.below(3) == 0;
  const bool suppress = rng.below(3) == 0;

  auto op_point = [&] { return static_cast<std::uint32_t>(rng.below(s.ops)); };
  auto small_delay = [&] { return static_cast<Duration>(rng.below(50 * kMicrosecond)); };

  // One or two wire faults in every schedule.
  const int wire_faults = 1 + static_cast<int>(rng.below(2));
  for (int i = 0; i < wire_faults; ++i) {
    static constexpr FaultKind kWire[] = {
        FaultKind::kTearRecordWrite, FaultKind::kDropRecordWrite,
        FaultKind::kTearAckWrite, FaultKind::kDropAckWrite};
    s.faults.push_back({.kind = kWire[rng.below(4)], .at_op = op_point(),
                        .torn_bytes = 8 + static_cast<std::uint32_t>(rng.below(40))});
  }
  if (fail_apply) {
    s.faults.push_back({.kind = FaultKind::kFailApply, .index = 0, .at_op = op_point()});
  }
  if (kill_secondary) {
    s.faults.push_back({.kind = FaultKind::kKillSecondary, .index = 1,
                        .at_op = op_point(), .delay = small_delay()});
  }
  if (kill_primary) {
    s.faults.push_back({.kind = FaultKind::kKillPrimary, .at_op = op_point(),
                        .delay = small_delay()});
  }
  if (kill_swat) {
    // A dead SWAT leader's znode lingers ~2s; killing it around the primary's
    // session expiry maximises the leadership-gap overlap.
    s.faults.push_back({.kind = FaultKind::kKillSwatMember, .index = 0,
                        .at_op = op_point(),
                        .delay = 1500 * kMillisecond + rng.below(kSecond)});
  }
  if (suppress) {
    // Sometimes short (benign blip), sometimes past the session timeout
    // (fencing + promotion).
    s.faults.push_back({.kind = FaultKind::kSuppressHeartbeats, .at_op = op_point(),
                        .duration = kSecond + rng.below(3 * kSecond)});
  }
  return s;
}

RunReport ChaosRunner::run(const ChaosSchedule& schedule, std::uint64_t seed,
                           obs::Plane* plane) {
  // Normalized local copy: fault op indices are clamped into the workload so
  // every fault is guaranteed to fire.
  ChaosSchedule plan = schedule;
  for (Fault& f : plan.faults) f.at_op = std::min(f.at_op, plan.ops - 1);

  RunReport report;
  std::string& hist = report.history;
  auto violation = [&](std::string text) {
    hist += "violation: " + text + "\n";
    report.violations.push_back(std::move(text));
  };

  db::ClusterOptions opts;
  opts.server_nodes = 1 + std::max(plan.replicas, 1);
  opts.shards_per_node = 1;
  opts.total_shards = 1;
  opts.client_nodes = 1;
  opts.clients_per_node = 1;
  opts.replicas = plan.replicas;
  opts.replication.mode = plan.mode;
  opts.enable_swat = true;
  opts.swat_members = plan.swat_members;
  opts.shard_template.store.arena_bytes = 16 << 20;
  opts.shard_template.store.min_buckets = 1 << 12;
  // Patient enough to ride through a failover, quick enough to retry often.
  opts.client_template.request_timeout = 100 * kMillisecond;
  opts.client_template.max_retries = 100;
  opts.mux_connections = plan.mux;
  opts.obs = plane;

  db::HydraCluster cluster(opts);
  sim::Scheduler& sched = cluster.scheduler();

  appendf(hist, "run schedule=%s seed=%llu ops=%u mode=%s replicas=%d swat=%d\n",
          plan.name.c_str(), static_cast<unsigned long long>(seed), plan.ops,
          mode_name(plan.mode), plan.replicas, plan.swat_members);

  // --- wire faults: armed one-shot, matched by destination rkey ------------
  std::vector<Fault> armed;
  cluster.fabric().set_write_fault_hook(
      [&](NodeId, NodeId dst, const fabric::RemoteAddr& addr,
          std::uint32_t size) -> fabric::WriteFault {
        if (armed.empty()) return {};
        for (auto it = armed.begin(); it != armed.end(); ++it) {
          bool match = false;
          if (is_ack_fault(it->kind)) {
            auto* sh = cluster.shard(it->shard);
            if (sh != nullptr && sh->replicator() != nullptr && dst == sh->node()) {
              for (const std::uint32_t rk : sh->replicator()->ack_rkeys()) {
                if (rk == addr.rkey) {
                  match = true;
                  break;
                }
              }
            }
          } else {
            for (auto* sec : cluster.secondaries_of(it->shard)) {
              if (sec->alive() && dst == sec->node() && sec->ring_mr() != nullptr &&
                  sec->ring_mr()->rkey() == addr.rkey) {
                match = true;
                break;
              }
            }
          }
          if (!match) continue;
          fabric::WriteFault wf;
          const bool tear = it->kind == FaultKind::kTearRecordWrite ||
                            it->kind == FaultKind::kTearAckWrite;
          wf.kind = tear ? fabric::WriteFault::Kind::kTorn
                         : fabric::WriteFault::Kind::kDrop;
          wf.torn_bytes = std::min(it->torn_bytes, size);
          appendf(hist, "t=%llu wire-fault %s rkey=%u size=%u torn=%u\n",
                  static_cast<unsigned long long>(sched.now()), to_string(it->kind),
                  addr.rkey, size, wf.torn_bytes);
          armed.erase(it);
          return wf;
        }
        return {};
      });

  // --- fault application ----------------------------------------------------
  Time first_kill = 0;
  bool recovery_pending = false;
  std::uint64_t failovers_at_kill = 0;
  bool killed_a_primary = false;
  bool killed_a_secondary = false;

  auto apply_fault = [&](const Fault& f) {
    appendf(hist, "t=%llu fault %s shard=%u idx=%d\n",
            static_cast<unsigned long long>(sched.now()), to_string(f.kind),
            static_cast<unsigned>(f.shard), f.index);
    if (plane != nullptr) {
      plane->trace(sched.now(), kInvalidNode, obs::TraceKind::kFaultInjected, f.shard,
                   static_cast<std::uint64_t>(f.kind),
                   static_cast<std::uint64_t>(static_cast<unsigned>(f.index)));
    }
    switch (f.kind) {
      case FaultKind::kKillPrimary: {
        auto* sh = cluster.shard(f.shard);
        if (sh != nullptr && sh->alive()) {
          killed_a_primary = true;
          if (first_kill == 0) {
            first_kill = sched.now();
            recovery_pending = true;
            failovers_at_kill = cluster.failovers();
          }
          cluster.crash_primary(f.shard);
        }
        break;
      }
      case FaultKind::kKillSecondary:
        killed_a_secondary = true;
        cluster.crash_secondary(f.shard, f.index);
        break;
      case FaultKind::kKillSwatMember:
        cluster.kill_swat_member(f.index);
        break;
      case FaultKind::kTearRecordWrite:
      case FaultKind::kDropRecordWrite:
      case FaultKind::kTearAckWrite:
      case FaultKind::kDropAckWrite:
        armed.push_back(f);
        break;
      case FaultKind::kSuppressHeartbeats:
        cluster.suppress_heartbeats(f.shard, f.duration);
        break;
      case FaultKind::kFailApply: {
        auto secs = cluster.secondaries_of(f.shard);
        if (f.index >= 0 && static_cast<std::size_t>(f.index) < secs.size() &&
            secs[static_cast<std::size_t>(f.index)]->alive()) {
          secs[static_cast<std::size_t>(f.index)]->fail_next(3);
        }
        break;
      }
      case FaultKind::kKillMuxChannel:
        // Abrupt shared-QP death: the mux layer is NOT notified. Any write
        // in flight on the channel flushes without committing; endpoints
        // discover the corpse by timeout and re-establish lazily.
        cluster.kill_mux_channel(f.index, f.shard);
        break;
      case FaultKind::kTearRevocation:
      case FaultKind::kDropRevocation:
        // Revocation wire faults only make sense against the fast-failover
        // agreement plane; FailoverChaosRunner arms them. The legacy runner
        // never schedules them -- ignore rather than crash on a stray plan.
        break;
    }
  };

  // --- workload: closed-loop unique-key PUTs --------------------------------
  // Unique keys, each written exactly once, make invariant 1 exact: an acked
  // "chaos-<i>" must read back as precisely its seeded value.
  Xoshiro256 value_rng(seed);
  std::vector<OpRecord> ops(plan.ops);
  for (std::uint32_t i = 0; i < plan.ops; ++i) {
    ops[i].idx = i;
    ops[i].key = "chaos-" + std::to_string(i);
    ops[i].value = "v-" + hex16(value_rng());
  }

  // Closed loop: op i+1 is issued by op i's completion callback. Everything
  // fires inside the drive loops below, so plain reference captures are safe
  // (and cycle-free, unlike a shared_ptr self-capture).
  std::uint32_t completed = 0;
  client::Client* cl = cluster.clients().front();
  std::function<void(std::uint32_t)> issue = [&](std::uint32_t i) {
    if (i >= plan.ops) return;
    appendf(hist, "t=%llu op=%u issue key=%s\n",
            static_cast<unsigned long long>(sched.now()), i, ops[i].key.c_str());
    for (const Fault& f : plan.faults) {
      if (f.at_op != i) continue;
      const Fault* fp = &f;
      sched.after(f.delay, [&apply_fault, fp] { apply_fault(*fp); });
    }
    cl->put(ops[i].key, ops[i].value, [&, i](Status st) {
      ops[i].status = st;
      ops[i].completed = true;
      ops[i].done_at = sched.now();
      ++completed;
      appendf(hist, "t=%llu op=%u done status=%s\n",
              static_cast<unsigned long long>(sched.now()), i,
              std::string(to_string(st)).c_str());
      issue(i + 1);
    });
  };
  issue(0);

  auto note_recovery = [&] {
    if (recovery_pending && cluster.failovers() > failovers_at_kill) {
      recovery_pending = false;
      report.recovery_time = sched.now() - first_kill;
      appendf(hist, "t=%llu failover-complete recovery=%llu\n",
              static_cast<unsigned long long>(sched.now()),
              static_cast<unsigned long long>(report.recovery_time));
    }
  };

  std::uint64_t steps = 0;
  while (completed < plan.ops && sched.now() < kWorkloadTimeLimit &&
         steps < kWorkloadStepLimit) {
    if (!sched.step()) break;
    ++steps;
    note_recovery();
  }

  // --- settle: let failovers, retransmits and respawns finish ---------------
  const Time settle_end = sched.now() + kSettle;
  while (sched.now() < settle_end && sched.step()) note_recovery();

  // --- invariant 2: no wedged operations ------------------------------------
  for (const OpRecord& op : ops) {
    if (op.completed) continue;
    ++report.wedged_ops;
    violation("op " + std::to_string(op.idx) + " (" + op.key +
              ") never completed: callback wedged");
  }

  // --- invariant 1: every acked PUT readable with its exact value -----------
  for (const OpRecord& op : ops) {
    if (!op.completed || op.status != Status::kOk) continue;
    ++report.acked_puts;
    Status st = Status::kOk;
    auto v = cluster.get(op.key, 0, &st);
    if (!v.has_value()) {
      violation("acked op " + std::to_string(op.idx) + " (" + op.key +
                ") unreadable after faults: " + std::string(to_string(st)));
    } else if (*v != op.value) {
      violation("acked op " + std::to_string(op.idx) + " (" + op.key +
                ") returned a different value");
    }
  }

  // --- invariant 3: replication factor + availability restored --------------
  report.failovers = cluster.failovers();
  const Status probe = cluster.put("chaos-probe", "alive");
  appendf(hist, "t=%llu probe-put status=%s\n",
          static_cast<unsigned long long>(sched.now()),
          std::string(to_string(probe)).c_str());
  if (probe != Status::kOk) {
    violation("probe PUT failed: shard not writable after faults (" +
              std::string(to_string(probe)) + ")");
  }
  if (killed_a_primary && (cluster.shard(0) == nullptr || !cluster.shard(0)->alive())) {
    violation("primary was killed and no promotion ever completed");
  }
  if (report.failovers > 0 && !killed_a_secondary) {
    // A secondary killed *after* the last promotion legitimately degrades the
    // factor (only promotions respawn); restrict the check to schedules where
    // the factor must come back exactly.
    std::size_t live = 0;
    for (auto* sec : cluster.secondaries_of(0)) live += sec->alive() ? 1 : 0;
    if (live != static_cast<std::size_t>(opts.replicas)) {
      violation("replication factor " + std::to_string(live) + " != " +
                std::to_string(opts.replicas) + " after promotion");
    }
  }

  appendf(hist, "end t=%llu failovers=%llu acked=%llu wedged=%llu violations=%zu\n",
          static_cast<unsigned long long>(sched.now()),
          static_cast<unsigned long long>(report.failovers),
          static_cast<unsigned long long>(report.acked_puts),
          static_cast<unsigned long long>(report.wedged_ops),
          report.violations.size());
  return report;
}

// --- live-migration chaos ----------------------------------------------------

const char* to_string(MigrationOp op) noexcept {
  switch (op) {
    case MigrationOp::kAdd: return "add";
    case MigrationOp::kDrain: return "drain";
  }
  return "unknown";
}

std::vector<MigrationSchedule> MigrationSchedule::scripted() {
  std::vector<MigrationSchedule> out;
  // Kill delays are sized for the default copy cadence (a few thousand
  // preloaded keys, 16 records per 200us tick) so they land mid-copy.
  {
    MigrationSchedule s;
    s.name = "add-clean";
    out.push_back(std::move(s));
  }
  {
    MigrationSchedule s;
    s.name = "drain-clean";
    s.op = MigrationOp::kDrain;
    out.push_back(std::move(s));
  }
  {
    // A copy source dies mid-copy: its flow must be rebuilt from the
    // promoted replica (fresh sink, fresh snapshot) and still commit.
    MigrationSchedule s;
    s.name = "add-kill-source";
    s.faults.push_back({.kind = FaultKind::kKillPrimary, .shard = 0, .at_op = 8,
                        .delay = 400 * kMicrosecond});
    out.push_back(std::move(s));
  }
  {
    // The brand-new destination dies mid-copy: the commit must wait for its
    // replica to be promoted, then merge into the promoted store.
    MigrationSchedule s;
    s.name = "add-kill-destination";
    s.faults.push_back({.kind = FaultKind::kKillPrimary, .shard = 3, .at_op = 8,
                        .delay = 500 * kMicrosecond});
    out.push_back(std::move(s));
  }
  {
    // The drain victim (source of every flow) dies mid-drain.
    MigrationSchedule s;
    s.name = "drain-kill-victim";
    s.op = MigrationOp::kDrain;
    s.faults.push_back({.kind = FaultKind::kKillPrimary, .shard = 1, .at_op = 8,
                        .delay = 400 * kMicrosecond});
    out.push_back(std::move(s));
  }
  {
    // One of the drain's destinations dies mid-copy.
    MigrationSchedule s;
    s.name = "drain-kill-destination";
    s.op = MigrationOp::kDrain;
    s.faults.push_back({.kind = FaultKind::kKillPrimary, .shard = 2, .at_op = 8,
                        .delay = 500 * kMicrosecond});
    out.push_back(std::move(s));
  }
  {
    // SWAT leadership gap overlapping a source kill: the death event pends
    // until member 1 takes over, stretching the migration stall by ~2s.
    MigrationSchedule s;
    s.name = "add-kill-swat-and-source";
    s.swat_members = 3;
    s.faults.push_back({.kind = FaultKind::kKillSwatMember, .index = 0, .at_op = 8});
    s.faults.push_back({.kind = FaultKind::kKillPrimary, .shard = 0, .at_op = 8,
                        .delay = 300 * kMicrosecond});
    out.push_back(std::move(s));
  }
  return out;
}

MigrationSchedule MigrationSchedule::random(std::uint64_t seed) {
  Xoshiro256 rng(seed * 0xBF58476D1CE4E5B9ULL + 0x94D049BB133111EBULL);
  MigrationSchedule s;
  s.name = "mig-random-" + std::to_string(seed);
  s.op = rng.below(2) == 0 ? MigrationOp::kAdd : MigrationOp::kDrain;
  s.initial_shards = 2 + static_cast<int>(rng.below(3));
  s.replicas = 1 + static_cast<int>(rng.below(2));
  s.preload = 512 + static_cast<std::uint32_t>(rng.below(1537));
  s.ops = 48 + static_cast<std::uint32_t>(rng.below(49));
  s.migrate_at_op = 4 + static_cast<std::uint32_t>(rng.below(s.ops / 3));
  s.drain_victim = static_cast<ShardId>(rng.below(s.initial_shards));

  const ShardId n = static_cast<ShardId>(s.initial_shards);
  const auto kill_delay = [&] {
    return static_cast<Duration>(100 * kMicrosecond + rng.below(2 * kMillisecond));
  };
  switch (rng.below(4)) {
    case 0:  // clean run
      break;
    case 1: {  // kill a source mid-copy
      const ShardId src = s.op == MigrationOp::kAdd
                              ? static_cast<ShardId>(rng.below(n))
                              : s.drain_victim;
      s.faults.push_back({.kind = FaultKind::kKillPrimary, .shard = src,
                          .at_op = s.migrate_at_op, .delay = kill_delay()});
      break;
    }
    case 2: {  // kill a destination mid-copy
      const ShardId dst =
          s.op == MigrationOp::kAdd
              ? n
              : static_cast<ShardId>((s.drain_victim + 1 + rng.below(n - 1)) % n);
      s.faults.push_back({.kind = FaultKind::kKillPrimary, .shard = dst,
                          .at_op = s.migrate_at_op, .delay = kill_delay()});
      break;
    }
    default: {  // SWAT leadership gap + source kill
      s.swat_members = 3;
      const ShardId src = s.op == MigrationOp::kAdd
                              ? static_cast<ShardId>(rng.below(n))
                              : s.drain_victim;
      s.faults.push_back(
          {.kind = FaultKind::kKillSwatMember, .index = 0, .at_op = s.migrate_at_op});
      s.faults.push_back({.kind = FaultKind::kKillPrimary, .shard = src,
                          .at_op = s.migrate_at_op, .delay = kill_delay()});
      break;
    }
  }
  return s;
}

MigrationReport MigrationChaosRunner::run(const MigrationSchedule& schedule,
                                          std::uint64_t seed, obs::Plane* plane) {
  MigrationSchedule plan = schedule;
  plan.ops = std::max<std::uint32_t>(plan.ops, 2);
  plan.migrate_at_op = std::min(plan.migrate_at_op, plan.ops - 1);
  for (Fault& f : plan.faults) f.at_op = std::min(f.at_op, plan.ops - 1);
  plan.drain_victim = static_cast<ShardId>(
      plan.drain_victim % static_cast<ShardId>(plan.initial_shards));

  MigrationReport report;
  std::string& hist = report.history;
  auto violation = [&](std::string text) {
    hist += "violation: " + text + "\n";
    report.violations.push_back(std::move(text));
  };

  db::ClusterOptions opts;
  opts.server_nodes = plan.initial_shards;
  opts.shards_per_node = 1;
  opts.total_shards = plan.initial_shards;
  opts.client_nodes = 1;
  opts.clients_per_node = 1;
  opts.replicas = plan.replicas;
  opts.replication.mode = ReplicationMode::kLogRelaxed;
  opts.enable_swat = true;
  opts.swat_members = plan.swat_members;
  opts.shard_template.store.arena_bytes = 16 << 20;
  opts.shard_template.store.min_buckets = 1 << 12;
  opts.client_template.request_timeout = 100 * kMillisecond;
  opts.client_template.max_retries = 100;
  opts.obs = plane;

  db::HydraCluster cluster(opts);
  sim::Scheduler& sched = cluster.scheduler();
  report.epoch_before = cluster.routing_epoch();

  appendf(hist, "run schedule=%s seed=%llu op=%s shards=%d replicas=%d preload=%u ops=%u\n",
          plan.name.c_str(), static_cast<unsigned long long>(seed),
          to_string(plan.op), plan.initial_shards, plan.replicas, plan.preload,
          plan.ops);

  // --- preload: the dataset the bulk copy will move --------------------------
  Xoshiro256 preload_rng(seed ^ 0xA5A5A5A5A5A5A5A5ULL);
  std::vector<std::pair<std::string, std::string>> expected;
  expected.reserve(plan.preload + plan.ops);
  for (std::uint32_t i = 0; i < plan.preload; ++i) {
    std::string key = "pre-" + std::to_string(i);
    std::string value = "p-" + hex16(preload_rng());
    cluster.direct_load(key, value);
    expected.emplace_back(std::move(key), std::move(value));
  }

  // --- fault application -----------------------------------------------------
  auto apply_fault = [&](const Fault& f) {
    appendf(hist, "t=%llu fault %s shard=%u idx=%d\n",
            static_cast<unsigned long long>(sched.now()), to_string(f.kind),
            static_cast<unsigned>(f.shard), f.index);
    if (plane != nullptr) {
      plane->trace(sched.now(), kInvalidNode, obs::TraceKind::kFaultInjected, f.shard,
                   static_cast<std::uint64_t>(f.kind),
                   static_cast<std::uint64_t>(static_cast<unsigned>(f.index)));
    }
    switch (f.kind) {
      case FaultKind::kKillPrimary: {
        auto* sh = cluster.shard(f.shard);
        if (sh != nullptr && sh->alive()) cluster.crash_primary(f.shard);
        break;
      }
      case FaultKind::kKillSecondary:
        cluster.crash_secondary(f.shard, f.index);
        break;
      case FaultKind::kKillSwatMember:
        cluster.kill_swat_member(f.index);
        break;
      case FaultKind::kSuppressHeartbeats:
        cluster.suppress_heartbeats(f.shard, f.duration);
        break;
      default:  // wire/apply faults belong to the failover harness
        break;
    }
  };

  // --- workload: closed-loop unique-key PUTs, each chased by a readback -----
  // The readback GETs are what exercise cached remote pointers across the
  // epoch bump: a stale pointer must be invalidated, never silently read.
  struct MigOp {
    OpRecord put;
    bool get_issued = false;
    bool get_done = false;
    std::string get_key;
    std::string get_expected;
  };
  Xoshiro256 value_rng(seed);
  Xoshiro256 read_rng(seed * 0x2545F4914F6CDD1DULL + 1);
  std::vector<MigOp> ops(plan.ops);
  for (std::uint32_t i = 0; i < plan.ops; ++i) {
    ops[i].put.idx = i;
    ops[i].put.key = "mig-" + std::to_string(i);
    ops[i].put.value = "v-" + hex16(value_rng());
  }

  std::uint32_t completed = 0;
  ShardId subject = kInvalidShard;
  bool migration_started = false;
  Time migrate_called_at = 0;
  client::Client* cl = cluster.clients().front();

  std::function<void(std::uint32_t)> issue = [&](std::uint32_t i) {
    if (i >= plan.ops) return;
    if (i == plan.migrate_at_op) {
      if (plan.op == MigrationOp::kAdd) {
        subject = cluster.add_shard_live();
        migration_started = subject != kInvalidShard;
      } else {
        subject = plan.drain_victim;
        migration_started = cluster.drain_shard_live(subject);
      }
      migrate_called_at = sched.now();
      appendf(hist, "t=%llu migrate op=%s subject=%u started=%d\n",
              static_cast<unsigned long long>(sched.now()), to_string(plan.op),
              static_cast<unsigned>(subject), migration_started ? 1 : 0);
    }
    for (const Fault& f : plan.faults) {
      if (f.at_op != i) continue;
      const Fault* fp = &f;
      sched.after(f.delay, [&apply_fault, fp] { apply_fault(*fp); });
    }
    appendf(hist, "t=%llu op=%u issue key=%s\n",
            static_cast<unsigned long long>(sched.now()), i, ops[i].put.key.c_str());
    cl->put(ops[i].put.key, ops[i].put.value, [&, i](Status st) {
      ops[i].put.status = st;
      ops[i].put.completed = true;
      ops[i].put.done_at = sched.now();
      appendf(hist, "t=%llu op=%u done status=%s\n",
              static_cast<unsigned long long>(sched.now()), i,
              std::string(to_string(st)).c_str());

      // Readback of an already-settled key (preloaded, or an earlier op
      // whose PUT was acked): must return exactly the written value even
      // while ownership is in motion.
      std::uint64_t pick = read_rng.below(plan.preload + i);
      if (pick >= plan.preload) {
        const std::uint32_t j = static_cast<std::uint32_t>(pick - plan.preload);
        if (ops[j].put.status == Status::kOk) {
          ops[i].get_key = ops[j].put.key;
          ops[i].get_expected = ops[j].put.value;
        } else {
          pick = j % plan.preload;  // deterministic fallback
        }
      }
      if (ops[i].get_key.empty()) {
        ops[i].get_key = expected[static_cast<std::size_t>(pick)].first;
        ops[i].get_expected = expected[static_cast<std::size_t>(pick)].second;
      }
      ops[i].get_issued = true;
      ++report.readbacks;
      cl->get(ops[i].get_key, [&, i](Status gst, std::string_view value) {
        ops[i].get_done = true;
        if (gst != Status::kOk) {
          violation("readback of " + ops[i].get_key + " failed mid-migration: " +
                    std::string(to_string(gst)));
        } else if (value != ops[i].get_expected) {
          violation("readback of " + ops[i].get_key +
                    " returned a different value mid-migration");
        }
        ++completed;
        issue(i + 1);
      });
    });
  };
  issue(0);

  bool migration_done_seen = false;
  auto note_migration = [&] {
    if (migration_started && !migration_done_seen && !cluster.migration_active()) {
      migration_done_seen = true;
      report.migration_time = sched.now() - migrate_called_at;
      appendf(hist, "t=%llu migrate-settled duration=%llu\n",
              static_cast<unsigned long long>(sched.now()),
              static_cast<unsigned long long>(report.migration_time));
    }
  };

  std::uint64_t steps = 0;
  while (completed < plan.ops && sched.now() < kWorkloadTimeLimit &&
         steps < kWorkloadStepLimit) {
    if (!sched.step()) break;
    ++steps;
    note_migration();
  }

  // Let the migration finish (it may still be copying or waiting out a
  // promotion), then settle failovers and respawns.
  while (cluster.migration_active() && sched.now() < kWorkloadTimeLimit &&
         sched.step()) {
    note_migration();
  }
  const Time settle_end = sched.now() + kSettle;
  while (sched.now() < settle_end && sched.step()) note_migration();

  // --- invariant: no wedged operations ---------------------------------------
  for (const MigOp& op : ops) {
    if (!op.put.completed) {
      ++report.wedged_ops;
      violation("op " + std::to_string(op.put.idx) + " (" + op.put.key +
                ") PUT never completed: callback wedged");
    } else if (op.get_issued && !op.get_done) {
      ++report.wedged_ops;
      violation("op " + std::to_string(op.put.idx) + " readback (" + op.get_key +
                ") never completed: callback wedged");
    }
  }

  // --- invariant: the migration committed and bumped the epoch ---------------
  const db::MigrationStats& mstats = cluster.migration_stats();
  report.migration_completed = mstats.completed > 0;
  report.keys_moved = mstats.keys_moved;
  report.flow_restarts = mstats.flow_restarts;
  report.forwarded = mstats.forwarded;
  report.failovers = cluster.failovers();
  report.epoch_after = cluster.routing_epoch();
  for (auto* c : cluster.clients()) {
    report.epoch_invalidations += c->stats().epoch_invalidations;
  }
  if (!migration_started) {
    violation("migration never started (add/drain call rejected)");
  } else {
    if (!report.migration_completed) violation("migration never committed");
    if (mstats.aborted > 0) violation("migration aborted");
    if (report.migration_completed && report.epoch_after <= report.epoch_before) {
      violation("commit did not bump the routing epoch");
    }
  }
  if (report.migration_completed) {
    if (plan.op == MigrationOp::kAdd && !cluster.ring().contains(subject)) {
      violation("added shard missing from the committed ring");
    }
    if (plan.op == MigrationOp::kDrain &&
        (cluster.ring().contains(subject) || !cluster.shard_retired(subject))) {
      violation("drained shard still present after commit");
    }
  }

  // --- invariant: every settled key readable, held by exactly one owner ------
  for (std::uint32_t i = 0; i < plan.ops; ++i) {
    if (ops[i].put.completed && ops[i].put.status == Status::kOk) {
      ++report.acked_puts;
      expected.emplace_back(ops[i].put.key, ops[i].put.value);
    }
  }
  std::uint64_t subject_owned = 0;
  const std::vector<ShardId> members = cluster.ring().shards();
  for (const auto& [key, value] : expected) {
    Status st = Status::kOk;
    auto v = cluster.get(key, 0, &st);
    if (!v.has_value()) {
      violation("key " + key + " unreadable after commit: " +
                std::string(to_string(st)));
      continue;
    }
    if (*v != value) {
      violation("key " + key + " returned a different value after commit");
      continue;
    }
    const ShardId owner = cluster.owner_of(key);
    if (owner == subject) ++subject_owned;
    for (const ShardId member : members) {
      auto* sh = cluster.shard(member);
      if (sh == nullptr || !sh->alive()) {
        violation("ring member " + std::to_string(member) + " not serving");
        break;
      }
      auto view = sh->store().get(key, sched.now(), /*grant_lease=*/false);
      if (member == owner) {
        if (!view.ok()) {
          violation("key " + key + " lost: owner " + std::to_string(owner) +
                    " does not hold it");
        } else if (view.value().value != value) {
          violation("key " + key + " stale in owner store");
        }
      } else if (view.ok()) {
        violation("key " + key + " double-owned: shard " + std::to_string(member) +
                  " still holds it (owner " + std::to_string(owner) + ")");
      }
    }
  }
  if (report.migration_completed && plan.op == MigrationOp::kAdd &&
      subject_owned == 0) {
    violation("added shard owns none of the dataset");
  }

  appendf(hist,
          "end t=%llu moved=%llu restarts=%llu forwarded=%llu failovers=%llu "
          "acked=%llu epoch=%llu->%llu violations=%zu\n",
          static_cast<unsigned long long>(sched.now()),
          static_cast<unsigned long long>(report.keys_moved),
          static_cast<unsigned long long>(report.flow_restarts),
          static_cast<unsigned long long>(report.forwarded),
          static_cast<unsigned long long>(report.failovers),
          static_cast<unsigned long long>(report.acked_puts),
          static_cast<unsigned long long>(report.epoch_before),
          static_cast<unsigned long long>(report.epoch_after),
          report.violations.size());
  return report;
}

}  // namespace hydra::chaos
