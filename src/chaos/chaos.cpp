#include "chaos/chaos.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <memory>
#include <optional>
#include <utility>

#include "common/rng.hpp"
#include "hydradb/hydra_cluster.hpp"
#include "hydradb/swat.hpp"

namespace hydra::chaos {

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kKillPrimary: return "kill-primary";
    case FaultKind::kKillSecondary: return "kill-secondary";
    case FaultKind::kKillSwatMember: return "kill-swat-member";
    case FaultKind::kTearRecordWrite: return "tear-record-write";
    case FaultKind::kDropRecordWrite: return "drop-record-write";
    case FaultKind::kTearAckWrite: return "tear-ack-write";
    case FaultKind::kDropAckWrite: return "drop-ack-write";
    case FaultKind::kSuppressHeartbeats: return "suppress-heartbeats";
    case FaultKind::kFailApply: return "fail-apply";
  }
  return "unknown";
}

namespace {

using replication::ReplicationMode;

/// Virtual time granted after the workload for failovers to finish (session
/// timeout 2s + sweep + watch + promotion leaves ample slack).
constexpr Duration kSettle = 6 * kSecond;
/// Wedge detection: a workload that has not completed by this much virtual
/// time (or this many events) is stuck -- invariant 2 is violated.
constexpr Time kWorkloadTimeLimit = 120 * kSecond;
constexpr std::uint64_t kWorkloadStepLimit = 40'000'000;

#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

const char* mode_name(ReplicationMode m) {
  switch (m) {
    case ReplicationMode::kNone: return "none";
    case ReplicationMode::kLogRelaxed: return "relaxed";
    case ReplicationMode::kStrictAck: return "strict";
  }
  return "unknown";
}

bool is_ack_fault(FaultKind k) {
  return k == FaultKind::kTearAckWrite || k == FaultKind::kDropAckWrite;
}

std::string hex16(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::vector<ChaosSchedule> ChaosSchedule::scripted() {
  std::vector<ChaosSchedule> out;

  {
    // The headline crash: the primary dies while a PUT is on the wire.
    ChaosSchedule s;
    s.name = "primary-kill-mid-put";
    s.ops = 40;
    s.mode = ReplicationMode::kLogRelaxed;
    s.replicas = 1;
    s.faults.push_back({.kind = FaultKind::kKillPrimary, .at_op = 12,
                        .delay = 2 * kMicrosecond});
    out.push_back(std::move(s));
  }
  {
    // Replica apply failures force the rollback-resend protocol, and the
    // primary dies while that rollback is still in flight. Strict mode keeps
    // the affected records unacknowledged, so the client's retries (not the
    // half-finished rollback) are what re-drive them on the new primary.
    ChaosSchedule s;
    s.name = "primary-kill-mid-rollback";
    s.ops = 30;
    s.mode = ReplicationMode::kStrictAck;
    s.replicas = 1;
    s.faults.push_back({.kind = FaultKind::kFailApply, .index = 0, .at_op = 10});
    s.faults.push_back({.kind = FaultKind::kKillPrimary, .at_op = 10,
                        .delay = 200 * kMicrosecond});
    out.push_back(std::move(s));
  }
  {
    // A replica dies mid-replay with strict acks outstanding: the primary
    // must quarantine the corpse and fire the strict waiters, never wedge.
    ChaosSchedule s;
    s.name = "secondary-kill-mid-replay";
    s.ops = 40;
    s.mode = ReplicationMode::kStrictAck;
    s.replicas = 2;
    s.faults.push_back({.kind = FaultKind::kKillSecondary, .index = 1,
                        .at_op = 15, .delay = 5 * kMicrosecond});
    out.push_back(std::move(s));
  }
  {
    // Acks themselves are RDMA writes: tear one and drop another. The
    // ack-deadline probe must recover both without a single client timeout
    // budget being exhausted.
    ChaosSchedule s;
    s.name = "torn-and-dropped-ack";
    s.ops = 40;
    s.mode = ReplicationMode::kStrictAck;
    s.replicas = 1;
    s.faults.push_back({.kind = FaultKind::kTearAckWrite, .at_op = 10,
                        .torn_bytes = 12});
    s.faults.push_back({.kind = FaultKind::kDropAckWrite, .at_op = 25});
    out.push_back(std::move(s));
  }
  {
    // Torn and dropped log-record writes: the in-place retransmit path must
    // heal the ring hole before the completion (and thus the client ack).
    ChaosSchedule s;
    s.name = "torn-and-dropped-record";
    s.ops = 40;
    s.mode = ReplicationMode::kLogRelaxed;
    s.replicas = 1;
    s.faults.push_back({.kind = FaultKind::kTearRecordWrite, .at_op = 8,
                        .torn_bytes = 16});
    s.faults.push_back({.kind = FaultKind::kDropRecordWrite, .at_op = 20});
    out.push_back(std::move(s));
  }
  {
    // Heartbeat suppression past the session timeout: the shard must be
    // fenced (not split-brained) and a replica promoted under it.
    ChaosSchedule s;
    s.name = "heartbeat-suppression-fences";
    s.ops = 50;
    s.mode = ReplicationMode::kLogRelaxed;
    s.replicas = 1;
    s.faults.push_back({.kind = FaultKind::kSuppressHeartbeats, .at_op = 10,
                        .duration = 3 * kSecond});
    out.push_back(std::move(s));
  }
  {
    // The SWAT leader is a corpse (znode lingering until session expiry)
    // when the primary's death event arrives -- the leadership-gap window.
    // The pending-death set must hold the event until member 1 takes over.
    ChaosSchedule s;
    s.name = "swat-leader-dead-during-failover";
    s.ops = 40;
    s.mode = ReplicationMode::kLogRelaxed;
    s.replicas = 1;
    s.swat_members = 3;
    s.faults.push_back({.kind = FaultKind::kKillPrimary, .at_op = 10});
    s.faults.push_back({.kind = FaultKind::kKillSwatMember, .index = 0,
                        .at_op = 10, .delay = 1900 * kMillisecond});
    out.push_back(std::move(s));
  }
  return out;
}

ChaosSchedule ChaosSchedule::random(std::uint64_t seed) {
  // Decorrelate from the runner's value stream, which hashes the raw seed.
  Xoshiro256 rng(seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
  ChaosSchedule s;
  s.name = "random-" + std::to_string(seed);
  s.ops = 30 + static_cast<std::uint32_t>(rng.below(31));

  // Safety rules keeping the invariants meaningful (never a schedule whose
  // data loss is *correct* behaviour):
  //  * secondary kills only with two replicas, and only replica #1, so a
  //    live replica always remains for promotion;
  //  * injected apply failures force strict mode -- under relaxed acks a
  //    primary death racing an unfinished rollback may legitimately lose
  //    acked records (the durability trade the paper makes explicit).
  const bool kill_secondary = rng.below(3) == 0;
  s.replicas = kill_secondary ? 2 : 1 + static_cast<int>(rng.below(2));
  const bool fail_apply = rng.below(4) == 0;
  s.mode = (fail_apply || rng.below(2) == 0) ? ReplicationMode::kStrictAck
                                             : ReplicationMode::kLogRelaxed;
  const bool kill_primary = rng.below(2) == 0;
  const bool kill_swat = kill_primary && rng.below(3) == 0;
  const bool suppress = rng.below(3) == 0;

  auto op_point = [&] { return static_cast<std::uint32_t>(rng.below(s.ops)); };
  auto small_delay = [&] { return static_cast<Duration>(rng.below(50 * kMicrosecond)); };

  // One or two wire faults in every schedule.
  const int wire_faults = 1 + static_cast<int>(rng.below(2));
  for (int i = 0; i < wire_faults; ++i) {
    static constexpr FaultKind kWire[] = {
        FaultKind::kTearRecordWrite, FaultKind::kDropRecordWrite,
        FaultKind::kTearAckWrite, FaultKind::kDropAckWrite};
    s.faults.push_back({.kind = kWire[rng.below(4)], .at_op = op_point(),
                        .torn_bytes = 8 + static_cast<std::uint32_t>(rng.below(40))});
  }
  if (fail_apply) {
    s.faults.push_back({.kind = FaultKind::kFailApply, .index = 0, .at_op = op_point()});
  }
  if (kill_secondary) {
    s.faults.push_back({.kind = FaultKind::kKillSecondary, .index = 1,
                        .at_op = op_point(), .delay = small_delay()});
  }
  if (kill_primary) {
    s.faults.push_back({.kind = FaultKind::kKillPrimary, .at_op = op_point(),
                        .delay = small_delay()});
  }
  if (kill_swat) {
    // A dead SWAT leader's znode lingers ~2s; killing it around the primary's
    // session expiry maximises the leadership-gap overlap.
    s.faults.push_back({.kind = FaultKind::kKillSwatMember, .index = 0,
                        .at_op = op_point(),
                        .delay = 1500 * kMillisecond + rng.below(kSecond)});
  }
  if (suppress) {
    // Sometimes short (benign blip), sometimes past the session timeout
    // (fencing + promotion).
    s.faults.push_back({.kind = FaultKind::kSuppressHeartbeats, .at_op = op_point(),
                        .duration = kSecond + rng.below(3 * kSecond)});
  }
  return s;
}

RunReport ChaosRunner::run(const ChaosSchedule& schedule, std::uint64_t seed,
                           obs::Plane* plane) {
  // Normalized local copy: fault op indices are clamped into the workload so
  // every fault is guaranteed to fire.
  ChaosSchedule plan = schedule;
  for (Fault& f : plan.faults) f.at_op = std::min(f.at_op, plan.ops - 1);

  RunReport report;
  std::string& hist = report.history;
  auto violation = [&](std::string text) {
    hist += "violation: " + text + "\n";
    report.violations.push_back(std::move(text));
  };

  db::ClusterOptions opts;
  opts.server_nodes = 1 + std::max(plan.replicas, 1);
  opts.shards_per_node = 1;
  opts.total_shards = 1;
  opts.client_nodes = 1;
  opts.clients_per_node = 1;
  opts.replicas = plan.replicas;
  opts.replication.mode = plan.mode;
  opts.enable_swat = true;
  opts.swat_members = plan.swat_members;
  opts.shard_template.store.arena_bytes = 16 << 20;
  opts.shard_template.store.min_buckets = 1 << 12;
  // Patient enough to ride through a failover, quick enough to retry often.
  opts.client_template.request_timeout = 100 * kMillisecond;
  opts.client_template.max_retries = 100;
  opts.obs = plane;

  db::HydraCluster cluster(opts);
  sim::Scheduler& sched = cluster.scheduler();

  appendf(hist, "run schedule=%s seed=%llu ops=%u mode=%s replicas=%d swat=%d\n",
          plan.name.c_str(), static_cast<unsigned long long>(seed), plan.ops,
          mode_name(plan.mode), plan.replicas, plan.swat_members);

  // --- wire faults: armed one-shot, matched by destination rkey ------------
  std::vector<Fault> armed;
  cluster.fabric().set_write_fault_hook(
      [&](NodeId, NodeId dst, const fabric::RemoteAddr& addr,
          std::uint32_t size) -> fabric::WriteFault {
        if (armed.empty()) return {};
        for (auto it = armed.begin(); it != armed.end(); ++it) {
          bool match = false;
          if (is_ack_fault(it->kind)) {
            auto* sh = cluster.shard(it->shard);
            if (sh != nullptr && sh->replicator() != nullptr && dst == sh->node()) {
              for (const std::uint32_t rk : sh->replicator()->ack_rkeys()) {
                if (rk == addr.rkey) {
                  match = true;
                  break;
                }
              }
            }
          } else {
            for (auto* sec : cluster.secondaries_of(it->shard)) {
              if (sec->alive() && dst == sec->node() && sec->ring_mr() != nullptr &&
                  sec->ring_mr()->rkey() == addr.rkey) {
                match = true;
                break;
              }
            }
          }
          if (!match) continue;
          fabric::WriteFault wf;
          const bool tear = it->kind == FaultKind::kTearRecordWrite ||
                            it->kind == FaultKind::kTearAckWrite;
          wf.kind = tear ? fabric::WriteFault::Kind::kTorn
                         : fabric::WriteFault::Kind::kDrop;
          wf.torn_bytes = std::min(it->torn_bytes, size);
          appendf(hist, "t=%llu wire-fault %s rkey=%u size=%u torn=%u\n",
                  static_cast<unsigned long long>(sched.now()), to_string(it->kind),
                  addr.rkey, size, wf.torn_bytes);
          armed.erase(it);
          return wf;
        }
        return {};
      });

  // --- fault application ----------------------------------------------------
  Time first_kill = 0;
  bool recovery_pending = false;
  std::uint64_t failovers_at_kill = 0;
  bool killed_a_primary = false;
  bool killed_a_secondary = false;

  auto apply_fault = [&](const Fault& f) {
    appendf(hist, "t=%llu fault %s shard=%u idx=%d\n",
            static_cast<unsigned long long>(sched.now()), to_string(f.kind),
            static_cast<unsigned>(f.shard), f.index);
    if (plane != nullptr) {
      plane->trace(sched.now(), kInvalidNode, obs::TraceKind::kFaultInjected, f.shard,
                   static_cast<std::uint64_t>(f.kind),
                   static_cast<std::uint64_t>(static_cast<unsigned>(f.index)));
    }
    switch (f.kind) {
      case FaultKind::kKillPrimary: {
        auto* sh = cluster.shard(f.shard);
        if (sh != nullptr && sh->alive()) {
          killed_a_primary = true;
          if (first_kill == 0) {
            first_kill = sched.now();
            recovery_pending = true;
            failovers_at_kill = cluster.failovers();
          }
          cluster.crash_primary(f.shard);
        }
        break;
      }
      case FaultKind::kKillSecondary:
        killed_a_secondary = true;
        cluster.crash_secondary(f.shard, f.index);
        break;
      case FaultKind::kKillSwatMember:
        cluster.kill_swat_member(f.index);
        break;
      case FaultKind::kTearRecordWrite:
      case FaultKind::kDropRecordWrite:
      case FaultKind::kTearAckWrite:
      case FaultKind::kDropAckWrite:
        armed.push_back(f);
        break;
      case FaultKind::kSuppressHeartbeats:
        cluster.suppress_heartbeats(f.shard, f.duration);
        break;
      case FaultKind::kFailApply: {
        auto secs = cluster.secondaries_of(f.shard);
        if (f.index >= 0 && static_cast<std::size_t>(f.index) < secs.size() &&
            secs[static_cast<std::size_t>(f.index)]->alive()) {
          secs[static_cast<std::size_t>(f.index)]->fail_next(3);
        }
        break;
      }
    }
  };

  // --- workload: closed-loop unique-key PUTs --------------------------------
  // Unique keys, each written exactly once, make invariant 1 exact: an acked
  // "chaos-<i>" must read back as precisely its seeded value.
  Xoshiro256 value_rng(seed);
  std::vector<OpRecord> ops(plan.ops);
  for (std::uint32_t i = 0; i < plan.ops; ++i) {
    ops[i].idx = i;
    ops[i].key = "chaos-" + std::to_string(i);
    ops[i].value = "v-" + hex16(value_rng());
  }

  // Closed loop: op i+1 is issued by op i's completion callback. Everything
  // fires inside the drive loops below, so plain reference captures are safe
  // (and cycle-free, unlike a shared_ptr self-capture).
  std::uint32_t completed = 0;
  client::Client* cl = cluster.clients().front();
  std::function<void(std::uint32_t)> issue = [&](std::uint32_t i) {
    if (i >= plan.ops) return;
    appendf(hist, "t=%llu op=%u issue key=%s\n",
            static_cast<unsigned long long>(sched.now()), i, ops[i].key.c_str());
    for (const Fault& f : plan.faults) {
      if (f.at_op != i) continue;
      const Fault* fp = &f;
      sched.after(f.delay, [&apply_fault, fp] { apply_fault(*fp); });
    }
    cl->put(ops[i].key, ops[i].value, [&, i](Status st) {
      ops[i].status = st;
      ops[i].completed = true;
      ops[i].done_at = sched.now();
      ++completed;
      appendf(hist, "t=%llu op=%u done status=%s\n",
              static_cast<unsigned long long>(sched.now()), i,
              std::string(to_string(st)).c_str());
      issue(i + 1);
    });
  };
  issue(0);

  auto note_recovery = [&] {
    if (recovery_pending && cluster.failovers() > failovers_at_kill) {
      recovery_pending = false;
      report.recovery_time = sched.now() - first_kill;
      appendf(hist, "t=%llu failover-complete recovery=%llu\n",
              static_cast<unsigned long long>(sched.now()),
              static_cast<unsigned long long>(report.recovery_time));
    }
  };

  std::uint64_t steps = 0;
  while (completed < plan.ops && sched.now() < kWorkloadTimeLimit &&
         steps < kWorkloadStepLimit) {
    if (!sched.step()) break;
    ++steps;
    note_recovery();
  }

  // --- settle: let failovers, retransmits and respawns finish ---------------
  const Time settle_end = sched.now() + kSettle;
  while (sched.now() < settle_end && sched.step()) note_recovery();

  // --- invariant 2: no wedged operations ------------------------------------
  for (const OpRecord& op : ops) {
    if (op.completed) continue;
    ++report.wedged_ops;
    violation("op " + std::to_string(op.idx) + " (" + op.key +
              ") never completed: callback wedged");
  }

  // --- invariant 1: every acked PUT readable with its exact value -----------
  for (const OpRecord& op : ops) {
    if (!op.completed || op.status != Status::kOk) continue;
    ++report.acked_puts;
    Status st = Status::kOk;
    auto v = cluster.get(op.key, 0, &st);
    if (!v.has_value()) {
      violation("acked op " + std::to_string(op.idx) + " (" + op.key +
                ") unreadable after faults: " + std::string(to_string(st)));
    } else if (*v != op.value) {
      violation("acked op " + std::to_string(op.idx) + " (" + op.key +
                ") returned a different value");
    }
  }

  // --- invariant 3: replication factor + availability restored --------------
  report.failovers = cluster.failovers();
  const Status probe = cluster.put("chaos-probe", "alive");
  appendf(hist, "t=%llu probe-put status=%s\n",
          static_cast<unsigned long long>(sched.now()),
          std::string(to_string(probe)).c_str());
  if (probe != Status::kOk) {
    violation("probe PUT failed: shard not writable after faults (" +
              std::string(to_string(probe)) + ")");
  }
  if (killed_a_primary && (cluster.shard(0) == nullptr || !cluster.shard(0)->alive())) {
    violation("primary was killed and no promotion ever completed");
  }
  if (report.failovers > 0 && !killed_a_secondary) {
    // A secondary killed *after* the last promotion legitimately degrades the
    // factor (only promotions respawn); restrict the check to schedules where
    // the factor must come back exactly.
    std::size_t live = 0;
    for (auto* sec : cluster.secondaries_of(0)) live += sec->alive() ? 1 : 0;
    if (live != static_cast<std::size_t>(opts.replicas)) {
      violation("replication factor " + std::to_string(live) + " != " +
                std::to_string(opts.replicas) + " after promotion");
    }
  }

  appendf(hist, "end t=%llu failovers=%llu acked=%llu wedged=%llu violations=%zu\n",
          static_cast<unsigned long long>(sched.now()),
          static_cast<unsigned long long>(report.failovers),
          static_cast<unsigned long long>(report.acked_puts),
          static_cast<unsigned long long>(report.wedged_ops),
          report.violations.size());
  return report;
}

}  // namespace hydra::chaos
