#include "chaos/hotkey_chaos.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>

#include "common/rng.hpp"
#include "hydradb/hydra_cluster.hpp"

namespace hydra::chaos {

const char* to_string(HotKeyFaultKind kind) noexcept {
  switch (kind) {
    case HotKeyFaultKind::kKillPrimary: return "kill-primary";
    case HotKeyFaultKind::kKillSecondary: return "kill-secondary";
    case HotKeyFaultKind::kKillSwatMember: return "kill-swat-member";
    case HotKeyFaultKind::kKillMuxChannel: return "kill-mux-channel";
    case HotKeyFaultKind::kSuppressHeartbeats: return "suppress-heartbeats";
  }
  return "unknown";
}

namespace {

/// Failover (session timeout 2s) plus retry backoffs need ample slack.
constexpr Duration kSettle = 6 * kSecond;
constexpr Time kWorkloadTimeLimit = 120 * kSecond;
constexpr std::uint64_t kWorkloadStepLimit = 40'000'000;

#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

std::string hot_key(std::uint32_t idx) { return "hk-" + std::to_string(idx); }

/// Values carry their per-key version up front so the no-stale-read check
/// can compare what a GET returned against what was acked at issue time.
std::string versioned_value(std::uint32_t version, std::uint64_t salt) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "v%06u-%016llx", version,
                static_cast<unsigned long long>(salt));
  return buf;
}

std::uint32_t parse_version(const std::string& value) {
  if (value.size() < 2 || value[0] != 'v') return 0;
  return static_cast<std::uint32_t>(std::strtoul(value.c_str() + 1, nullptr, 10));
}

/// One operation of the workload, fully precomputed before the clock starts
/// so keys and values never depend on execution interleaving.
struct PlannedOp {
  int client = 0;
  bool put = false;
  std::string key;
  std::uint32_t version = 0;  ///< PUT payload version
  std::string value;          ///< PUT payload
  std::uint32_t global_idx = 0;
  Status status = Status::kTimeout;
  bool completed = false;
};

}  // namespace

std::vector<HotKeySchedule> HotKeySchedule::scripted() {
  std::vector<HotKeySchedule> out;
  {
    // Fault-free promotion baseline: skewed reads promote the hot keys and
    // a healthy share of GETs serve from follower copies.
    HotKeySchedule s;
    s.name = "hotkey-baseline";
    out.push_back(std::move(s));
  }
  {
    // Write-invalidate vs concurrent replica reads: client 0 keeps
    // rewriting the hot key while the others hammer one-sided reads of its
    // promoted copies. Every copy must die before the PUT acks.
    HotKeySchedule s;
    s.name = "hotkey-write-invalidate-race";
    s.clients = 4;
    s.write_every = 6;
    out.push_back(std::move(s));
  }
  {
    // A promotion destination dies in the mid-copy window (promotions are
    // re-attempted every scan, so some copy write is always in flight
    // early on). Partial copy sets must never be advertised.
    HotKeySchedule s;
    s.name = "hotkey-kill-dest-mid-promotion";
    s.write_every = 10;
    s.faults.push_back({.kind = HotKeyFaultKind::kKillSecondary, .index = 0,
                        .at_op = 12, .delay = 5 * kMicrosecond});
    out.push_back(std::move(s));
  }
  {
    // The hot key's primary dies while promoted copies are live. The
    // promoted successor knows nothing of the old promotion set; clients
    // must drop it at the epoch bump, not read the orphaned copies.
    HotKeySchedule s;
    s.name = "hotkey-kill-primary-copies-live";
    s.write_every = 10;
    s.faults.push_back({.kind = HotKeyFaultKind::kKillPrimary,
                        .at_op = 60, .delay = 20 * kMicrosecond});
    out.push_back(std::move(s));
  }
  {
    // Fencing epoch bump with no crash: suppressed heartbeats expire the
    // session, SWAT promotes a replica -- possibly one *holding a copy* --
    // and every promoted pointer must demote at kEpochPublished.
    HotKeySchedule s;
    s.name = "hotkey-fence-demotes";
    s.write_every = 12;
    s.faults.push_back({.kind = HotKeyFaultKind::kSuppressHeartbeats,
                        .at_op = 40, .duration = 3 * kSecond});
    out.push_back(std::move(s));
  }
  {
    // The shared mux QP dies while replica reads ride the node's read
    // channels; endpoints re-establish and no read wedges.
    HotKeySchedule s;
    s.name = "hotkey-mux-channel-kill";
    s.mux = true;
    s.write_every = 8;
    s.faults.push_back({.kind = HotKeyFaultKind::kKillMuxChannel,
                        .at_op = 50, .delay = 10 * kMicrosecond});
    out.push_back(std::move(s));
  }
  {
    // Primary kill overlapping a SWAT leadership gap: promotions stay
    // orphaned for the whole gap; reads must fail over, never read stale.
    HotKeySchedule s;
    s.name = "hotkey-kill-primary-swat-gap";
    s.swat_members = 3;
    s.write_every = 10;
    s.faults.push_back({.kind = HotKeyFaultKind::kKillPrimary,
                        .at_op = 50, .delay = 20 * kMicrosecond});
    s.faults.push_back({.kind = HotKeyFaultKind::kKillSwatMember, .index = 0,
                        .at_op = 50, .delay = 1900 * kMillisecond});
    out.push_back(std::move(s));
  }
  return out;
}

HotKeySchedule HotKeySchedule::random(std::uint64_t seed) {
  Xoshiro256 rng(seed * 0xA24BAED4963EE407ULL + 0x9FB21C651E98DF25ULL);
  HotKeySchedule s;
  s.name = "hotkey-random-" + std::to_string(seed);
  s.clients = 2 + static_cast<int>(rng.below(3));
  s.ops_per_client = 100 + static_cast<std::uint32_t>(rng.below(100));
  s.universe = 4 + static_cast<std::uint32_t>(rng.below(8));
  s.hot_percent = 50 + static_cast<std::uint32_t>(rng.below(40));
  s.write_every = rng.below(3) == 0 ? 0 : 4 + static_cast<std::uint32_t>(rng.below(12));
  s.mux = rng.below(3) == 0;
  const std::uint32_t total =
      static_cast<std::uint32_t>(s.clients) * s.ops_per_client;
  auto op_point = [&] { return static_cast<std::uint32_t>(rng.below(total)); };

  // A destination kill consumes one replica; keep one live so the hot
  // shard never loses redundancy entirely when the primary also dies.
  const bool kill_secondary = rng.below(3) == 0;
  s.replicas = 2;
  const bool kill_primary = rng.below(2) == 0;
  const bool kill_swat = kill_primary && rng.below(3) == 0;

  if (kill_secondary) {
    s.faults.push_back({.kind = HotKeyFaultKind::kKillSecondary, .index = 0,
                        .at_op = op_point(),
                        .delay = static_cast<Duration>(rng.below(50 * kMicrosecond))});
  }
  if (kill_primary) {
    s.faults.push_back({.kind = HotKeyFaultKind::kKillPrimary,
                        .at_op = op_point(),
                        .delay = static_cast<Duration>(rng.below(100 * kMicrosecond))});
  }
  if (kill_swat) {
    s.swat_members = 3;
    s.faults.push_back({.kind = HotKeyFaultKind::kKillSwatMember, .index = 0,
                        .at_op = op_point(),
                        .delay = 1500 * kMillisecond + rng.below(kSecond)});
  }
  if (s.mux && rng.below(2) == 0) {
    s.faults.push_back({.kind = HotKeyFaultKind::kKillMuxChannel,
                        .at_op = op_point(),
                        .delay = static_cast<Duration>(rng.below(50 * kMicrosecond))});
  }
  if (rng.below(4) == 0) {
    s.faults.push_back({.kind = HotKeyFaultKind::kSuppressHeartbeats,
                        .at_op = op_point(),
                        .duration = kSecond + rng.below(3 * kSecond)});
  }
  return s;
}

HotKeyRunReport HotKeyChaosRunner::run(const HotKeySchedule& schedule,
                                       std::uint64_t seed, obs::Plane* plane) {
  HotKeySchedule plan = schedule;
  const std::uint32_t total_ops =
      static_cast<std::uint32_t>(plan.clients) * plan.ops_per_client;
  for (HotKeyFault& f : plan.faults) f.at_op = std::min(f.at_op, total_ops - 1);
  plan.universe = std::max<std::uint32_t>(plan.universe, 1);

  HotKeyRunReport report;
  std::string& hist = report.history;
  auto violation = [&](std::string text) {
    hist += "violation: " + text + "\n";
    report.violations.push_back(std::move(text));
  };

  db::ClusterOptions opts;
  opts.server_nodes = plan.server_nodes;
  opts.shards_per_node = 1;
  opts.client_nodes = 1;
  opts.clients_per_node = plan.clients;
  opts.replicas = plan.replicas;
  opts.enable_swat = true;
  opts.swat_members = plan.swat_members;
  opts.client_rdma_read = true;
  opts.mux_connections = plan.mux;
  opts.shard_template.grant_remote_pointers = true;
  // Short leases force frequent renewals -- the message-path traffic that
  // carries promotion sets to clients holding cached pointers.
  opts.shard_template.store.min_lease = 20 * kMillisecond;
  opts.shard_template.store.max_lease = 50 * kMillisecond;
  opts.shard_template.hotkey_top_k = 4;
  opts.shard_template.hotkey_tracker_capacity = 32;
  opts.shard_template.hotkey_promote_min_hits = 3;
  // One-sided GETs complete in ~1.3us here, so a whole schedule spans only a
  // few hundred microseconds; the scan must tick many times inside that
  // window or promotions would land after the workload already drained.
  opts.shard_template.hotkey_scan_interval = 25 * kMicrosecond;
  opts.client_template.request_timeout = 100 * kMillisecond;
  opts.client_template.max_retries = 100;
  opts.obs = plane;

  db::HydraCluster cluster(opts);
  sim::Scheduler& sched = cluster.scheduler();

  appendf(hist, "run schedule=%s seed=%llu ops=%u clients=%d universe=%u hot=%u%% "
                "write-every=%u mux=%d\n",
          plan.name.c_str(), static_cast<unsigned long long>(seed), total_ops,
          plan.clients, plan.universe, plan.hot_percent, plan.write_every,
          plan.mux ? 1 : 0);

  // All faults aim at the shard owning the hottest key; resolve it up front
  // (placement is a hash artifact the schedule cannot know).
  const ShardId hot_shard = cluster.owner_of(hot_key(0));
  appendf(hist, "hot-shard=%u\n", static_cast<unsigned>(hot_shard));

  auto apply_fault = [&](const HotKeyFault& f) {
    appendf(hist, "t=%llu fault %s idx=%d\n",
            static_cast<unsigned long long>(sched.now()), to_string(f.kind), f.index);
    switch (f.kind) {
      case HotKeyFaultKind::kKillPrimary: {
        auto* sh = cluster.shard(hot_shard);
        if (sh != nullptr && sh->alive()) cluster.crash_primary(hot_shard);
        break;
      }
      case HotKeyFaultKind::kKillSecondary:
        cluster.crash_secondary(hot_shard, f.index);
        break;
      case HotKeyFaultKind::kKillSwatMember:
        cluster.kill_swat_member(f.index);
        break;
      case HotKeyFaultKind::kKillMuxChannel:
        cluster.kill_mux_channel(f.index, hot_shard);
        break;
      case HotKeyFaultKind::kSuppressHeartbeats:
        cluster.suppress_heartbeats(hot_shard, f.duration);
        break;
    }
  };

  // --- workload plan --------------------------------------------------------
  // Skewed read stream per client; client 0 interleaves PUTs that bump a
  // per-key version. Every value is a pure function of (seed, key, version),
  // so the stale-read check is exact under any interleaving.
  Xoshiro256 value_rng(seed);
  std::map<std::string, std::uint32_t> planned_version;
  std::vector<PlannedOp> ops;
  ops.reserve(total_ops);
  for (int c = 0; c < plan.clients; ++c) {
    for (std::uint32_t t = 0; t < plan.ops_per_client; ++t) {
      PlannedOp op;
      op.client = c;
      std::uint32_t key_idx = 0;
      if (plan.universe > 1 && value_rng.below(100) >= plan.hot_percent) {
        key_idx = 1 + static_cast<std::uint32_t>(value_rng.below(plan.universe - 1));
      }
      op.key = hot_key(key_idx);
      if (c == 0 && plan.write_every > 0 && (t + 1) % plan.write_every == 0) {
        // Writes bias to the hot key too: invalidation must race the reads.
        if (value_rng.below(3) != 0) op.key = hot_key(0);
        op.put = true;
        op.version = ++planned_version[op.key];
        op.value = versioned_value(op.version, value_rng());
      }
      ops.push_back(std::move(op));
    }
  }

  // Preload the universe at version 0 so cold GETs hit.
  for (std::uint32_t k = 0; k < plan.universe; ++k) {
    cluster.direct_load(hot_key(k), versioned_value(0, value_rng()));
  }

  // --- closed-loop issue, one stream per client -----------------------------
  // latest_acked[key] advances when a PUT callback fires kOk; each GET
  // snapshots it at issue time as the floor its result must meet.
  std::map<std::string, std::uint32_t> latest_acked;
  std::uint32_t global_issue = 0;
  std::uint32_t completed = 0;
  std::vector<std::uint32_t> cursor(static_cast<std::size_t>(plan.clients), 0);
  std::function<void(int)> drive = [&](int c) {
    const std::uint32_t t = cursor[static_cast<std::size_t>(c)];
    if (t >= plan.ops_per_client) return;
    ++cursor[static_cast<std::size_t>(c)];
    PlannedOp& p = ops[static_cast<std::size_t>(c) * plan.ops_per_client + t];
    p.global_idx = global_issue++;
    for (const HotKeyFault& f : plan.faults) {
      if (f.at_op != p.global_idx) continue;
      const HotKeyFault* fp = &f;
      sched.after(f.delay, [&apply_fault, fp] { apply_fault(*fp); });
    }
    PlannedOp* rec = &p;  // stable: ops never reallocates after the plan pass
    client::Client* cl = cluster.clients()[static_cast<std::size_t>(c)];
    if (p.put) {
      appendf(hist, "t=%llu op=%u client=%d put %s v%u\n",
              static_cast<unsigned long long>(sched.now()), p.global_idx, c,
              p.key.c_str(), p.version);
      cl->put(p.key, p.value, [&, rec, c](Status st) {
        rec->status = st;
        rec->completed = true;
        ++completed;
        if (st == Status::kOk) {
          ++report.puts_acked;
          auto& acked = latest_acked[rec->key];
          acked = std::max(acked, rec->version);
        }
        appendf(hist, "t=%llu op=%u client=%d put-done status=%s\n",
                static_cast<unsigned long long>(sched.now()), rec->global_idx, c,
                std::string(to_string(st)).c_str());
        drive(c);
      });
    } else {
      const std::uint32_t floor = latest_acked[p.key];
      appendf(hist, "t=%llu op=%u client=%d get %s floor=v%u\n",
              static_cast<unsigned long long>(sched.now()), p.global_idx, c,
              p.key.c_str(), floor);
      cl->get(p.key, [&, rec, c, floor](Status st, std::string_view value) {
        rec->status = st;
        rec->completed = true;
        ++completed;
        std::uint32_t got = 0;
        if (st == Status::kOk) {
          ++report.gets_acked;
          got = parse_version(std::string(value));
          if (got < floor) {
            ++report.stale_reads;
            violation("stale read: op " + std::to_string(rec->global_idx) +
                      " key " + rec->key + " returned v" + std::to_string(got) +
                      " but v" + std::to_string(floor) +
                      " was acked before the GET was issued");
          }
        }
        appendf(hist, "t=%llu op=%u client=%d get-done status=%s v%u\n",
                static_cast<unsigned long long>(sched.now()), rec->global_idx, c,
                std::string(to_string(st)).c_str(), got);
        drive(c);
      });
    }
  };
  for (int c = 0; c < plan.clients; ++c) drive(c);

  std::uint64_t steps = 0;
  while (completed < total_ops && sched.now() < kWorkloadTimeLimit &&
         steps < kWorkloadStepLimit) {
    if (!sched.step()) break;
    ++steps;
  }
  const Time settle_end = sched.now() + kSettle;
  while (sched.now() < settle_end && sched.step()) {
  }

  // --- invariant 2: every callback fired ------------------------------------
  for (const PlannedOp& p : ops) {
    if (p.completed) continue;
    ++report.wedged;
    violation("op " + std::to_string(p.global_idx) + " client=" +
              std::to_string(p.client) + " never completed: callback wedged");
  }

  // --- invariant 3: cluster still writable ----------------------------------
  const Status probe = cluster.put("hotkey-probe", "alive");
  appendf(hist, "t=%llu probe-put status=%s\n",
          static_cast<unsigned long long>(sched.now()),
          std::string(to_string(probe)).c_str());
  if (probe != Status::kOk) {
    violation("probe PUT failed: cluster not writable after faults (" +
              std::string(to_string(probe)) + ")");
  }

  // --- final-value audit: post-settle reads see the newest acked version ----
  for (std::uint32_t k = 0; k < plan.universe; ++k) {
    const std::string key = hot_key(k);
    const std::uint32_t floor = latest_acked[key];
    Status st = Status::kOk;
    auto got = cluster.get(key, 0, &st);
    if (!got.has_value()) {
      violation("preloaded key " + key + " unreadable after settle: " +
                std::string(to_string(st)));
      continue;
    }
    if (parse_version(*got) < floor) {
      ++report.stale_reads;
      violation("post-settle read of " + key + " returned v" +
                std::to_string(parse_version(*got)) + " < acked v" +
                std::to_string(floor));
    }
  }

  // --- bookkeeping ----------------------------------------------------------
  report.failovers = cluster.failovers();
  for (ShardId s = 0; s < static_cast<ShardId>(cluster.shard_count()); ++s) {
    auto* sh = cluster.shard(s);
    if (sh == nullptr || !sh->alive()) continue;
    report.promotions += sh->stats().hotkey_promotions;
    report.demotions += sh->stats().hotkey_demotions;
    report.invalidations += sh->stats().hotkey_invalidations;
  }
  for (const auto* cl : cluster.clients()) {
    report.replica_hits += cl->stats().replica_hits;
  }

  appendf(hist,
          "end t=%llu gets=%llu puts=%llu wedged=%llu stale=%llu failovers=%llu "
          "promotions=%llu demotions=%llu invalidations=%llu replica-hits=%llu "
          "violations=%zu\n",
          static_cast<unsigned long long>(sched.now()),
          static_cast<unsigned long long>(report.gets_acked),
          static_cast<unsigned long long>(report.puts_acked),
          static_cast<unsigned long long>(report.wedged),
          static_cast<unsigned long long>(report.stale_reads),
          static_cast<unsigned long long>(report.failovers),
          static_cast<unsigned long long>(report.promotions),
          static_cast<unsigned long long>(report.demotions),
          static_cast<unsigned long long>(report.invalidations),
          static_cast<unsigned long long>(report.replica_hits),
          report.violations.size());
  return report;
}

}  // namespace hydra::chaos
