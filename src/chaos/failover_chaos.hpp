// Chaos scenarios for the fast-failover plane (DESIGN.md §14).
//
// A FailoverSchedule runs the closed-loop PUT workload against a cluster
// with ClusterOptions::fast_failover enabled and injects the fault points
// the agreement protocol must survive: the primary killed mid-ring-write,
// torn and dropped permission-revocation verbs, both replicas suspecting at
// once (split CAS ballots), a SWAT-member kill mid-round, and the whole
// dance composed with a live add-migration. The runner verifies the chaos
// invariants plus the failover-specific ones:
//
//   1. every acked PUT is readable (with its exact value) after the round;
//   2. operation callbacks always eventually fire or fail -- never wedge;
//   3. at most one primary per epoch: routing epochs publish strictly
//      monotonically and each of the victim shard's epochs pairs with
//      exactly one promotion;
//   4. when the fast path is expected to win, the crash-to-promotion gap
//      stays under one millisecond of virtual time (versus ~2.45 s for the
//      legacy session-timeout path, which stays armed as the fallback).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/chaos.hpp"

namespace hydra::obs {
class Plane;
}  // namespace hydra::obs

namespace hydra::chaos {

struct FailoverSchedule {
  std::string name;
  std::uint32_t ops = 40;  ///< acked-PUT workload length
  replication::ReplicationMode mode = replication::ReplicationMode::kLogRelaxed;
  int replicas = 2;
  int swat_members = 2;
  /// False when the scheduled faults are designed to exhaust the revocation
  /// retry budget: the round aborts, the legacy session-timeout path
  /// promotes, and the <1 ms gap bound is waived for the run.
  bool expect_fast = true;
  /// Compose with a live add-migration triggered when op `migrate_at_op`
  /// issues (the subject shard's id is 1; the victim stays shard 0).
  bool migrate = false;
  std::uint32_t migrate_at_op = 6;
  /// Reuses the chaos Fault mechanics. kTearRevocation / kDropRevocation
  /// faults arm `max(1, index)` one-shot wire faults against subsequent
  /// revoke verbs, consumed in order.
  std::vector<Fault> faults;

  /// The scripted families the issue names: primary kill mid-ring-write
  /// (relaxed and strict), torn revocation, dropped revocation, a
  /// revocation storm that forces the legacy fallback, split ballots with
  /// three suspecting replicas, SWAT leader killed mid-round, heartbeat
  /// suppression interplay, and the migration composition.
  static std::vector<FailoverSchedule> scripted();

  /// Seeded-random composition over the same fault alphabet.
  static FailoverSchedule random(std::uint64_t seed);
};

struct FailoverReport {
  /// Deterministic textual log; byte-identical across runs of the same
  /// (schedule, seed), with or without an external observability plane.
  std::string history;
  std::vector<std::string> violations;
  std::uint64_t failovers = 0;        ///< legacy + fast promotions
  std::uint64_t fast_promotions = 0;  ///< rounds that won the ballot and promoted
  std::uint64_t rounds_started = 0;   ///< suspicion rounds opened (≥2 = a race)
  std::uint64_t rounds_aborted = 0;
  std::uint64_t ballots_lost = 0;     ///< CAS ballots that saw another winner
  std::uint64_t revocations = 0;  ///< revoke verbs that applied at the owner
  std::uint64_t acked_puts = 0;
  std::uint64_t wedged_ops = 0;
  /// Virtual time from the first primary kill to that shard's promotion
  /// completing (0 when no primary was killed or no promotion happened).
  Duration failover_gap = 0;

  [[nodiscard]] bool passed() const noexcept { return violations.empty(); }
};

class FailoverChaosRunner {
 public:
  /// Runs `schedule` against a fresh fast-failover cluster; `seed` drives the
  /// value payloads. `plane` (optional) substitutes for the runner's internal
  /// observability plane -- the trace-driven invariants read whichever plane
  /// is attached, and the history is byte-identical either way.
  static FailoverReport run(const FailoverSchedule& schedule, std::uint64_t seed,
                            obs::Plane* plane = nullptr);
};

}  // namespace hydra::chaos
