// Discrete-event scheduler with a virtual nanosecond clock.
//
// Every component of the simulated cluster (shards, clients, NICs,
// coordinators, background reclaimers) advances by scheduling callbacks
// here. Events with equal timestamps execute in scheduling order (stable
// (time, seq) ordering), which together with seeded RNGs makes entire runs
// deterministic (DESIGN.md §6).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace hydra::sim {

using EventFn = std::function<void()>;

/// Opaque handle for cancelling a scheduled event.
struct EventId {
  std::uint32_t slot = ~std::uint32_t{0};
  std::uint32_t generation = 0;
  [[nodiscard]] bool valid() const noexcept { return slot != ~std::uint32_t{0}; }
};

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules `fn` at absolute virtual time `when` (clamped to now()).
  EventId at(Time when, EventFn fn);
  /// Schedules `fn` after `delay` nanoseconds of virtual time.
  EventId after(Duration delay, EventFn fn) { return at(now_ + delay, std::move(fn)); }

  /// Cancels a pending event; no-op if it already fired or was cancelled.
  void cancel(EventId id) noexcept;

  /// Executes the next event. Returns false when the queue is empty.
  bool step();
  /// Runs until the event queue drains.
  void run();
  /// Runs events with timestamp <= deadline; the clock ends at `deadline`
  /// even if the queue drains earlier.
  void run_until(Time deadline);
  /// Convenience: run_until(now() + d).
  void run_for(Duration d) { run_until(now_ + d); }

  [[nodiscard]] std::uint64_t events_executed() const noexcept { return executed_; }
  [[nodiscard]] std::size_t pending() const noexcept { return live_events_; }

 private:
  struct HeapEntry {
    Time when;
    std::uint64_t seq;
    std::uint32_t slot;
    bool operator>(const HeapEntry& o) const noexcept {
      return when != o.when ? when > o.when : seq > o.seq;
    }
  };
  struct Slot {
    EventFn fn;
    std::uint32_t generation = 0;
    bool armed = false;
  };

  std::uint32_t acquire_slot();

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_events_ = 0;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace hydra::sim
