// Simulated mutex with FIFO handoff.
//
// The baseline systems (memcached-like store, the "in-memory DB" of the G2
// experiment) are throttled by lock contention on real hardware; SimMutex
// reproduces that serialization in virtual time: an acquire either succeeds
// immediately or queues behind the current owner, and each handoff charges a
// configurable arbitration cost.
#pragma once

#include <cstdint>
#include <deque>

#include "sim/scheduler.hpp"

namespace hydra::sim {

class SimMutex {
 public:
  explicit SimMutex(Scheduler& sched, Duration handoff_cost = 80)
      : sched_(sched), handoff_cost_(handoff_cost) {}

  /// Requests the lock; `on_acquired` runs (possibly immediately via an
  /// event at the current time) once this requester owns the lock.
  void lock(EventFn on_acquired);

  /// Releases the lock, waking the next FIFO waiter after the handoff cost.
  void unlock();

  [[nodiscard]] bool locked() const noexcept { return locked_; }
  [[nodiscard]] std::size_t waiters() const noexcept { return waiters_.size(); }
  [[nodiscard]] std::uint64_t contended_acquires() const noexcept { return contended_; }
  [[nodiscard]] Duration total_wait() const noexcept { return total_wait_; }

 private:
  struct Waiter {
    EventFn fn;
    Time enqueued;
  };

  Scheduler& sched_;
  Duration handoff_cost_;
  bool locked_ = false;
  std::deque<Waiter> waiters_;
  std::uint64_t contended_ = 0;
  Duration total_wait_ = 0;
};

}  // namespace hydra::sim
