#include "sim/mutex.hpp"

#include <utility>

namespace hydra::sim {

void SimMutex::lock(EventFn on_acquired) {
  if (!locked_) {
    locked_ = true;
    sched_.at(sched_.now(), std::move(on_acquired));
    return;
  }
  ++contended_;
  waiters_.push_back(Waiter{std::move(on_acquired), sched_.now()});
}

void SimMutex::unlock() {
  if (waiters_.empty()) {
    locked_ = false;
    return;
  }
  Waiter next = std::move(waiters_.front());
  waiters_.pop_front();
  total_wait_ += sched_.now() - next.enqueued;
  // Lock stays held; ownership transfers to the waiter after arbitration.
  sched_.after(handoff_cost_, std::move(next.fn));
}

}  // namespace hydra::sim
