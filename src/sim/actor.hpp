// Actor base: a simulated process whose pending callbacks die with it.
//
// Killing an actor (crash injection, failover tests) atomically invalidates
// everything it scheduled, mirroring a real process whose threads stop
// executing at crash time.
#pragma once

#include <memory>
#include <string>
#include <utility>

#include "sim/scheduler.hpp"

namespace hydra::sim {

class Actor {
 public:
  Actor(Scheduler& sched, std::string name)
      : sched_(sched), name_(std::move(name)) {}
  virtual ~Actor() { *alive_ = false; }

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] bool alive() const noexcept { return *alive_; }
  [[nodiscard]] Scheduler& scheduler() noexcept { return sched_; }
  [[nodiscard]] Time now() const noexcept { return sched_.now(); }

  /// Simulates a process crash: pending and future callbacks are dropped.
  virtual void kill() { *alive_ = false; }

  /// Wraps any callable so it only runs while this actor is alive. Useful
  /// when handing callbacks to other components (NIC completion handlers,
  /// memory-region write hooks, coordinator watches).
  template <typename F>
  [[nodiscard]] auto guard(F fn) const {
    return [alive = std::weak_ptr<bool>(alive_), fn = std::move(fn)](auto&&... args) mutable {
      if (const auto a = alive.lock(); a && *a) fn(std::forward<decltype(args)>(args)...);
    };
  }

  /// Schedules `fn` after `delay`, skipped if this actor has died meanwhile.
  EventId schedule_after(Duration delay, EventFn fn) {
    return sched_.after(delay, guard(std::move(fn)));
  }
  EventId schedule_at(Time when, EventFn fn) {
    return sched_.at(when, guard(std::move(fn)));
  }

 private:
  Scheduler& sched_;
  std::string name_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace hydra::sim
