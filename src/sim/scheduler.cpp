#include "sim/scheduler.hpp"

#include <utility>

namespace hydra::sim {

std::uint32_t Scheduler::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t s = free_slots_.back();
    free_slots_.pop_back();
    return s;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

EventId Scheduler::at(Time when, EventFn fn) {
  if (when < now_) when = now_;
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.armed = true;
  heap_.push(HeapEntry{when, next_seq_++, slot});
  ++live_events_;
  return EventId{slot, s.generation};
}

void Scheduler::cancel(EventId id) noexcept {
  if (!id.valid() || id.slot >= slots_.size()) return;
  Slot& s = slots_[id.slot];
  if (s.armed && s.generation == id.generation) {
    s.armed = false;
    s.fn = nullptr;
    --live_events_;
    // The heap entry stays and is skipped when popped.
  }
}

bool Scheduler::step() {
  while (!heap_.empty()) {
    const HeapEntry top = heap_.top();
    heap_.pop();
    Slot& s = slots_[top.slot];
    if (!s.armed) {  // cancelled
      ++s.generation;
      free_slots_.push_back(top.slot);
      continue;
    }
    now_ = top.when;
    EventFn fn = std::move(s.fn);
    s.fn = nullptr;
    s.armed = false;
    ++s.generation;
    free_slots_.push_back(top.slot);
    --live_events_;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Scheduler::run() {
  while (step()) {
  }
}

void Scheduler::run_until(Time deadline) {
  while (!heap_.empty()) {
    // Peek past cancelled entries without executing anything late.
    const HeapEntry top = heap_.top();
    if (!slots_[top.slot].armed) {
      heap_.pop();
      ++slots_[top.slot].generation;
      free_slots_.push_back(top.slot);
      continue;
    }
    if (top.when > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace hydra::sim
