#include "txn/txn.hpp"

#include <algorithm>
#include <utility>

#include "common/hash.hpp"
#include "fabric/queue_pair.hpp"

namespace hydra::txn {

namespace {

std::string to_payload(const proto::TxnCommit& txn) {
  const std::vector<std::byte> enc = proto::encode_txn_commit(txn);
  return {reinterpret_cast<const char*>(enc.data()), enc.size()};
}

}  // namespace

TxnClient::TxnClient(sim::Scheduler& sched, client::Client& data, TxnOptions opts,
                     TxnIdSource ids)
    : sim::Actor(sched, "txn-client-" + std::to_string(data.id())),
      data_(data),
      opts_(opts),
      ids_(std::move(ids)) {}

void TxnClient::run(std::vector<proto::TxnOp> ops, Callback cb) {
  ++stats_.started;
  auto t = std::make_shared<Txn>();
  t->id = (*ids_)++;
  t->mode = opts_.mode;
  t->ops = std::move(ops);
  t->cb = std::move(cb);
  txn_ = t;
  if (t->ops.empty()) {
    finish(t, Status::kOk);
    return;
  }
  begin_attempt(t);
}

Duration TxnClient::backoff(const TxnPtr& t) const noexcept {
  // Grows with the restart count and desynchronises contending clients with
  // a deterministic per-txn jitter -- no wall clock, no global randomness.
  const auto growth = static_cast<Duration>(std::min(t->restarts, opts_.backoff_growth));
  return opts_.restart_backoff * (1 + growth) +
         static_cast<Duration>(t->id % 13) * kMicrosecond;
}

void TxnClient::begin_attempt(const TxnPtr& t) {
  if (t != txn_) return;
  ++t->attempt;
  t->epoch = epoch_source_ ? epoch_source_() : 0;
  t->locks.clear();
  t->next_lock = 0;
  t->wire_left = opts_.wire_retries;
  t->groups.clear();
  t->reads.assign(
      static_cast<std::size_t>(std::count_if(
          t->ops.begin(), t->ops.end(),
          [](const proto::TxnOp& op) { return op.op == proto::MsgType::kGet; })),
      std::string());
  t->reads_pending = 0;
  t->commits_pending = 0;
  t->commit_status = Status::kOk;

  // Lock plan: every op's key maps to (owning shard, word index); the plan
  // is sorted and deduped so two keys sharing a word are locked once and
  // every contender walks words in the same global order.
  for (const proto::TxnOp& op : t->ops) {
    const std::uint64_t h = hash_key(op.key);
    const ShardId shard = resolver_ ? resolver_(h) : kInvalidShard;
    if (shard == kInvalidShard) {
      finish(t, Status::kDisconnected);
      return;
    }
    client::Client::TxnWire wire = data_.txn_wire(shard);
    if (!wire.ok) {
      // Unreachable (mid-failover) or txn arena disabled. The arena size is
      // a deploy-time constant, so a connected wire with lock_words == 0
      // means transactions are off for good -- fail instead of spinning.
      if (wire.qp != nullptr && wire.lock_words == 0) {
        finish(t, Status::kInvalidArgument);
        return;
      }
      ++stats_.wire_errors;
      restart(t);
      return;
    }
    t->locks.push_back({shard, static_cast<std::uint32_t>(h % wire.lock_words), false});
    if (op.op != proto::MsgType::kGet) {
      proto::TxnCommit& g = t->groups[shard];
      g.hdr.txn_id = t->id;
      g.hdr.mode = t->mode;
      g.hdr.epoch = t->epoch;
      g.ops.push_back(op);
    }
  }
  std::sort(t->locks.begin(), t->locks.end(), [](const Lock& a, const Lock& b) {
    return a.shard != b.shard ? a.shard < b.shard : a.widx < b.widx;
  });
  t->locks.erase(std::unique(t->locks.begin(), t->locks.end(),
                             [](const Lock& a, const Lock& b) {
                               return a.shard == b.shard && a.widx == b.widx;
                             }),
                 t->locks.end());
  for (auto& [shard, g] : t->groups) {
    g.hdr.op_count = static_cast<std::uint32_t>(g.ops.size());
  }
  acquire_next(t);
}

void TxnClient::acquire_next(const TxnPtr& t) {
  if (t != txn_) return;
  if (t->next_lock >= t->locks.size()) {
    read_phase(t);
    return;
  }
  t->wait_left = opts_.wait_retries;
  post_lock_cas(t, t->next_lock);
}

void TxnClient::post_lock_cas(const TxnPtr& t, std::size_t idx) {
  if (t != txn_) return;
  Lock& lk = t->locks[idx];
  client::Client::TxnWire wire = data_.txn_wire(lk.shard);
  if (!wire.ok) {
    ++stats_.wire_errors;
    if (--t->wire_left > 0) {
      schedule_after(backoff(t), [this, t, idx, attempt = t->attempt] {
        if (t == txn_ && attempt == t->attempt) post_lock_cas(t, idx);
      });
    } else {
      restart(t);
    }
    return;
  }
  lk.maybe_held = true;  // posted at least once: release on every exit path
  ++stats_.lock_cas;
  const std::uint64_t want = kLockHeldBit | t->id;
  wire.qp->post_cas(
      {wire.lock_rkey, static_cast<std::uint64_t>(lk.widx) * 8}, 0, want, t->id,
      guard([this, t, idx, want, attempt = t->attempt](const fabric::Completion& c) {
        if (t != txn_ || attempt != t->attempt) return;
        if (c.status != fabric::WcStatus::kSuccess) {
          // Flushed/torn: the CAS may or may not have executed. The word is
          // already in the maybe-held set; reconnect and re-post -- a retry
          // that finds our own id in the word below counts as acquired.
          ++stats_.wire_errors;
          data_.invalidate_connection(t->locks[idx].shard);
          if (--t->wire_left > 0) {
            schedule_after(backoff(t), [this, t, idx, attempt] {
              if (t == txn_ && attempt == t->attempt) post_lock_cas(t, idx);
            });
          } else {
            restart(t);
          }
          return;
        }
        if (c.old_value == 0 || c.old_value == want) {
          ++t->next_lock;
          acquire_next(t);
          return;
        }
        on_lock_conflict(t, idx, c.old_value);
      }));
}

void TxnClient::on_lock_conflict(const TxnPtr& t, std::size_t idx,
                                 std::uint64_t old_word) {
  ++stats_.conflicts;
  const std::uint64_t holder = old_word & ~kLockHeldBit;
  if (t->mode == proto::TxnMode::kWaitDie && t->id < holder) {
    // Older than the holder: wait. The holder is younger, so it can never
    // wait on us in turn -- it finishes (or dies) and the word frees up.
    if (probe_) probe_(t->id, holder, false);
    ++stats_.waits;
    if (--t->wait_left > 0) {
      schedule_after(opts_.wait_backoff, [this, t, idx, attempt = t->attempt] {
        if (t == txn_ && attempt == t->attempt) post_lock_cas(t, idx);
      });
      return;
    }
    restart(t);  // wait budget spent; not a die -- just try again later
    return;
  }
  // NO_WAIT always dies on conflict; WAIT_DIE dies when younger or same age.
  if (probe_) probe_(t->id, holder, true);
  ++stats_.died;
  restart(t);
}

void TxnClient::read_phase(const TxnPtr& t) {
  if (t != txn_) return;
  std::size_t get_idx = 0;
  std::vector<std::pair<std::size_t, std::string>> gets;
  for (const proto::TxnOp& op : t->ops) {
    if (op.op == proto::MsgType::kGet) gets.emplace_back(get_idx++, op.key);
  }
  if (gets.empty()) {
    commit_phase(t);
    return;
  }
  t->reads_pending = gets.size();
  for (auto& [slot, key] : gets) {
    data_.get(key, guard([this, t, slot = slot, attempt = t->attempt](
                             Status st, std::string_view value) {
      if (t != txn_ || attempt != t->attempt) return;
      if (st == Status::kOk) {
        t->reads[slot].assign(value);
      } else if (st != Status::kNotFound) {
        ++stats_.wire_errors;
        restart(t);
        return;
      }
      if (--t->reads_pending == 0) commit_phase(t);
    }));
  }
}

void TxnClient::commit_phase(const TxnPtr& t) {
  if (t != txn_) return;
  // Client-side validate: the epoch this attempt locked (and will stamp its
  // commits) under must still be live. The shard re-checks at apply time,
  // so this is an optimisation, not the fence itself.
  if (epoch_source_ && epoch_source_() != t->epoch) {
    ++stats_.epoch_restarts;
    restart(t);
    return;
  }
  if (t->groups.empty()) {  // read-only transaction
    finish(t, Status::kOk);
    return;
  }
  t->commits_pending = t->groups.size();
  for (auto& [shard, group] : t->groups) {
    data_.txn_commit(group.ops.front().key, to_payload(group),
                     guard([this, t, attempt = t->attempt](Status st) {
                       if (t != txn_ || attempt != t->attempt) return;
                       if (st != Status::kOk && t->commit_status == Status::kOk) {
                         t->commit_status = st;
                       }
                       if (--t->commits_pending > 0) return;
                       if (t->commit_status == Status::kOk) {
                         finish(t, Status::kOk);
                       } else {
                         // Roll forward: re-lock and re-commit the same
                         // values under the new epoch. Re-applying a group
                         // that already committed is idempotent, so the
                         // acked outcome is always all-or-nothing.
                         ++stats_.commit_rejects;
                         restart(t);
                       }
                     }));
  }
}

void TxnClient::restart(const TxnPtr& t) {
  if (t != txn_) return;
  ++t->attempt;  // invalidate every in-flight completion of this attempt
  ++t->restarts;
  ++stats_.restarts;
  if (t->restarts > opts_.max_restarts) {
    finish(t, Status::kTxnConflict);
    return;
  }
  release_locks(t, guard([this, t] {
    if (t != txn_) return;
    schedule_after(backoff(t), [this, t] { begin_attempt(t); });
  }));
}

void TxnClient::finish(const TxnPtr& t, Status status) {
  if (t != txn_) return;
  ++t->attempt;
  release_locks(t, guard([this, t, status] {
    if (t != txn_) return;
    txn_ = nullptr;
    if (status == Status::kOk) {
      ++stats_.committed;
    } else {
      ++stats_.failed;
    }
    if (t->cb) t->cb(status, std::move(t->reads));
  }));
}

void TxnClient::release_locks(const TxnPtr& t, std::function<void()> done) {
  auto job = std::make_shared<ReleaseJob>();
  job->id = t->id;
  for (Lock& lk : t->locks) {
    if (!lk.maybe_held) continue;
    job->words.push_back({lk.shard, lk.widx, opts_.wire_retries});
    lk.maybe_held = false;
  }
  if (job->words.empty()) {
    done();
    return;
  }
  job->pending = job->words.size();
  job->done = std::move(done);
  for (std::size_t i = 0; i < job->words.size(); ++i) release_one(job, i);
}

// Per-word release: CAS(held|id -> 0). Success settles the word no matter
// what it held (anything but our word means it was never ours, or a promoted
// arena already starts zeroed). Protection/remote-dead means the arena is
// gone -- also settled, benignly: the next incarnation starts zeroed. Only a
// flushed CAS retries, through a fresh connection, so a mux-channel death
// with the shard still alive can never leak a held word.
void TxnClient::release_one(const std::shared_ptr<ReleaseJob>& job, std::size_t i) {
  auto settle = [this, job] {
    if (--job->pending == 0) job->done();
  };
  const ReleaseJob::Word& w = job->words[i];
  client::Client::TxnWire wire = data_.txn_wire(w.shard);
  if (!wire.ok) {
    if (--job->words[i].budget > 0) {
      schedule_after(opts_.restart_backoff, [this, job, i] { release_one(job, i); });
    } else {
      ++stats_.unlock_giveups;
      settle();
    }
    return;
  }
  ++stats_.unlock_cas;
  wire.qp->post_cas(
      {wire.lock_rkey, static_cast<std::uint64_t>(w.widx) * 8},
      kLockHeldBit | job->id, 0, job->id,
      guard([this, job, settle, i, shard = w.shard](const fabric::Completion& c) {
        if (c.status == fabric::WcStatus::kFlushed) {
          data_.invalidate_connection(shard);
          if (--job->words[i].budget > 0) {
            schedule_after(opts_.restart_backoff,
                           [this, job, i] { release_one(job, i); });
            return;
          }
          ++stats_.unlock_giveups;
        }
        settle();
      }));
}

}  // namespace hydra::txn
