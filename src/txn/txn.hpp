// Multi-key transactions over one-sided lock words (DESIGN.md §11).
//
// Two-phase locking driven entirely by RDMA atomics: every key maps to one
// 8-byte lock word in its owning shard's lock arena, and a TxnClient
// acquires the whole (sorted, deduped) lock set with one-sided CAS before
// touching any data. Conflict policy is selectable per TxnOptions:
//
//   NO_WAIT   -- any lost CAS aborts the attempt immediately;
//   WAIT_DIE  -- an older requester (smaller txn id) retries the CAS until
//                the younger holder unlocks; a younger requester dies.
//
// Both are deadlock-free (WAIT_DIE by age ordering, NO_WAIT trivially), so
// a lock word can never be wedged by scheduling alone. After the lock
// point the client reads its read set through the normal data path (the
// remote-pointer cache accelerates repeat reads), validates the routing
// epoch it locked under, and drives one kTxnCommit per shard group; the
// shard re-validates epoch + ownership + lock words and applies the group
// all-or-nothing ahead of its replication barrier. A commit rejected by a
// failover or migration fence is rolled FORWARD: the attempt restarts --
// re-resolving, re-locking, re-committing the same values idempotently --
// so an acknowledged transaction is always fully applied on every owning
// shard, and an unacknowledged one never acknowledges a partial state.
// Torn lock CAS safety: every word a CAS was ever *posted* against is
// treated as possibly-held and released on the way out, and a re-posted
// acquire treats old == (held | own id) as success.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "client/client.hpp"
#include "common/types.hpp"
#include "proto/messages.hpp"
#include "sim/actor.hpp"

namespace hydra::txn {

/// A held lock word carries this bit plus the holder's txn id.
inline constexpr std::uint64_t kLockHeldBit = std::uint64_t{1} << 63;

struct TxnOptions {
  proto::TxnMode mode = proto::TxnMode::kNoWait;
  /// Attempt restarts (conflict aborts, epoch fences, commit rejects, wire
  /// errors) before the transaction fails terminally with kTxnConflict.
  int max_restarts = 64;
  /// Base backoff between attempts; scaled by a deterministic jitter drawn
  /// from the txn id so contending clients desynchronise.
  Duration restart_backoff = 50 * kMicrosecond;
  /// Backoff grows linearly with the attempt's restart count up to
  /// 1 + backoff_growth times the base. 0 = constant backoff (the classic
  /// thrashing NO_WAIT the bench contrasts against WAIT_DIE).
  int backoff_growth = 16;
  /// WAIT_DIE: CAS retries an older requester spends waiting on one lock
  /// before it gives up and restarts the attempt.
  int wait_retries = 256;
  Duration wait_backoff = 20 * kMicrosecond;
  /// Wire-error retries (flushed/torn CAS, dead QP) per attempt and per
  /// unlock word; each retry re-establishes the connection first.
  int wire_retries = 64;
};

struct TxnStats {
  std::uint64_t started = 0;
  std::uint64_t committed = 0;
  std::uint64_t failed = 0;     ///< terminal non-kOk completions
  std::uint64_t restarts = 0;   ///< attempts after the first
  std::uint64_t conflicts = 0;  ///< lock CAS lost to a rival holder
  std::uint64_t died = 0;       ///< conflict aborts (NO_WAIT all, WAIT_DIE younger)
  std::uint64_t waits = 0;      ///< WAIT_DIE older-waits CAS retries
  std::uint64_t lock_cas = 0;
  std::uint64_t unlock_cas = 0;
  std::uint64_t wire_errors = 0;     ///< CAS completions != kSuccess
  std::uint64_t commit_rejects = 0;  ///< kTxnCommit answered non-kOk
  std::uint64_t epoch_restarts = 0;  ///< client-side validate failures
  std::uint64_t unlock_giveups = 0;  ///< arena unreachable past the budget
};

/// Drives one transaction at a time through an existing data-plane client.
class TxnClient : public sim::Actor {
 public:
  using Resolver = std::function<ShardId(std::uint64_t key_hash)>;
  using EpochSource = std::function<std::uint64_t()>;
  /// Fired on every lock conflict decision: (requester txn id, holder txn
  /// id, requester aborted). The WAIT_DIE / NO_WAIT property tests hang
  /// their abort-order assertions off this.
  using ConflictProbe =
      std::function<void(std::uint64_t requester, std::uint64_t holder, bool died)>;
  /// (final status, read results aligned with the kGet ops in op order).
  using Callback = std::function<void(Status, std::vector<std::string>)>;
  /// Shared monotonic id source: ids double as WAIT_DIE age stamps, so all
  /// TxnClients contending on one cluster must share one source.
  using TxnIdSource = std::shared_ptr<std::uint64_t>;

  static TxnIdSource make_id_source() { return std::make_shared<std::uint64_t>(1); }

  TxnClient(sim::Scheduler& sched, client::Client& data, TxnOptions opts, TxnIdSource ids);

  void set_resolver(Resolver r) { resolver_ = std::move(r); }
  void set_epoch_source(EpochSource e) { epoch_source_ = std::move(e); }
  void set_conflict_probe(ConflictProbe p) { probe_ = std::move(p); }

  /// Runs `ops` as one transaction. kGet ops contribute a slot to the
  /// callback's read vector; kPut/kRemove ops are applied atomically across
  /// every involved shard. One transaction in flight per TxnClient.
  void run(std::vector<proto::TxnOp> ops, Callback cb);

  [[nodiscard]] bool idle() const noexcept { return txn_ == nullptr; }
  [[nodiscard]] const TxnStats& stats() const noexcept { return stats_; }

 private:
  struct Lock {
    ShardId shard = kInvalidShard;
    std::uint32_t widx = 0;
    bool maybe_held = false;  ///< a CAS was posted: release on the way out
  };
  struct Txn {
    std::uint64_t id = 0;
    proto::TxnMode mode = proto::TxnMode::kNoWait;
    std::vector<proto::TxnOp> ops;
    Callback cb;
    int restarts = 0;
    /// Bumped at every attempt start; stale completions compare and drop.
    std::uint64_t attempt = 0;
    std::uint64_t epoch = 0;
    std::vector<Lock> locks;
    std::size_t next_lock = 0;
    int wait_left = 0;  ///< WAIT_DIE budget for the lock being acquired
    int wire_left = 0;
    std::map<ShardId, proto::TxnCommit> groups;
    std::vector<std::string> reads;
    std::size_t reads_pending = 0;
    std::size_t commits_pending = 0;
    Status commit_status = Status::kOk;
  };
  using TxnPtr = std::shared_ptr<Txn>;

  void begin_attempt(const TxnPtr& t);
  void acquire_next(const TxnPtr& t);
  void post_lock_cas(const TxnPtr& t, std::size_t idx);
  void on_lock_conflict(const TxnPtr& t, std::size_t idx, std::uint64_t old_word);
  void read_phase(const TxnPtr& t);
  void commit_phase(const TxnPtr& t);
  /// Releases every possibly-held lock, then restarts the attempt (or fails
  /// terminally once the restart budget is spent).
  void restart(const TxnPtr& t);
  /// Releases every possibly-held lock, then completes the transaction.
  void finish(const TxnPtr& t, Status status);
  /// Fire-and-track release of all maybe-held words; `done` runs when every
  /// word is confirmed released or its arena is confirmed gone. The job is
  /// detached from the Txn so the next attempt can rebuild its lock plan
  /// while stale releases drain.
  struct ReleaseJob {
    struct Word {
      ShardId shard = kInvalidShard;
      std::uint32_t widx = 0;
      int budget = 0;
    };
    std::uint64_t id = 0;
    std::vector<Word> words;
    std::size_t pending = 0;
    std::function<void()> done;
  };
  void release_locks(const TxnPtr& t, std::function<void()> done);
  void release_one(const std::shared_ptr<ReleaseJob>& job, std::size_t i);
  [[nodiscard]] Duration backoff(const TxnPtr& t) const noexcept;

  client::Client& data_;
  TxnOptions opts_;
  TxnIdSource ids_;
  Resolver resolver_;
  EpochSource epoch_source_;
  ConflictProbe probe_;
  TxnPtr txn_;
  TxnStats stats_;
};

}  // namespace hydra::txn
