// Chaos harness for the transaction layer (DESIGN.md §11) -- the
// txn-kill-mid-commit family.
//
// A TxnSchedule composes faults -- primary / secondary / SWAT kills, shared
// mux-QP deaths, torn or dropped lock-arena atomics, heartbeat suppression,
// a live migration -- fired at parameterized points of a multi-client,
// multi-shard transactional workload. The TxnChaosRunner executes the
// workload against a fresh HydraCluster, injects the faults, lets the
// failover plane settle, and verifies the transactional invariants:
//
//   1. every transaction callback eventually fires -- never wedges;
//   2. an acked transaction is all-or-nothing: every key it wrote reads
//      back with exactly its value (or its deletion), on every shard it
//      touched, even after failover or mid-migration re-routing;
//   3. no lock word is leaked held: post-settle, every live shard's lock
//      arena is all zeroes;
//   4. abort-order discipline: NO_WAIT never waits; WAIT_DIE never kills
//      an older transaction on behalf of a younger holder.
//
// Everything flows from (schedule, seed) through the virtual clock, so the
// report's history string is byte-identical across runs of the same inputs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "proto/messages.hpp"

namespace hydra::obs {
class Plane;
}  // namespace hydra::obs

namespace hydra::txn {

enum class TxnFaultKind : std::uint8_t {
  kKillPrimary,         ///< crash a shard's primary mid-transaction
  kKillSecondary,       ///< crash one replica (commit barrier must not wedge)
  kKillSwatMember,      ///< crash a SWAT member (leadership-gap window)
  kKillMuxChannel,      ///< abruptly kill the shared mux QP
  kTearAtomic,          ///< next lock-arena atomic executes but flushes
  kDropAtomic,          ///< next lock-arena atomic never executes
  kSuppressHeartbeats,  ///< mute a primary's heartbeats (fencing path)
};

[[nodiscard]] const char* to_string(TxnFaultKind kind) noexcept;

struct TxnFault {
  TxnFaultKind kind = TxnFaultKind::kKillPrimary;
  ShardId shard = 0;
  int index = 0;  ///< secondary / SWAT-member / client-node index
  /// Fires `delay` of virtual time after the transaction with this global
  /// issue index starts -- so kills land between lock-acquire and unlock.
  std::uint32_t at_txn = 0;
  Duration delay = 0;
  Duration duration = 0;  ///< heartbeat suppression length
};

struct TxnSchedule {
  static constexpr std::uint32_t kNoMigration = 0xFFFFFFFFU;

  std::string name;
  proto::TxnMode mode = proto::TxnMode::kNoWait;
  int txn_clients = 3;
  std::uint32_t txns_per_client = 8;
  std::uint32_t keys_per_txn = 4;  ///< fresh keys each txn writes
  int shards = 2;
  int replicas = 1;
  int swat_members = 2;
  std::uint32_t lock_words = 128;  ///< per-shard lock arena size
  bool mux = false;                ///< run over QP-multiplexed connections
  /// 0 = disjoint keys per transaction (exact-value invariant); > 0 = keys
  /// drawn from a universe this small (contention / abort-order runs).
  std::uint32_t hot_keys = 0;
  /// Trigger add_shard_live() when this global txn index issues.
  std::uint32_t migrate_at_txn = kNoMigration;
  std::vector<TxnFault> faults;

  /// The scripted families: baselines + contention in both lock modes, the
  /// txn-kill-mid-commit kills (primary, SWAT gap, secondary), torn and
  /// dropped lock/unlock atomics, a mux-channel death, and a live
  /// migration overlapping the workload.
  static std::vector<TxnSchedule> scripted();

  /// Seeded-random composition over the same fault alphabet.
  static TxnSchedule random(std::uint64_t seed);
};

struct TxnRunReport {
  /// Deterministic textual log; byte-identical across runs of one
  /// (schedule, seed), with or without an observability plane attached.
  std::string history;
  std::vector<std::string> violations;
  std::uint64_t acked = 0;       ///< transactions completed kOk
  std::uint64_t failed = 0;      ///< transactions completed non-kOk
  std::uint64_t wedged = 0;      ///< callbacks that never fired
  std::uint64_t failovers = 0;
  std::uint64_t conflicts = 0;   ///< lock CAS conflicts across all clients
  std::uint64_t died = 0;        ///< conflict aborts
  std::uint64_t waits = 0;       ///< WAIT_DIE older-waits retries
  std::uint64_t restarts = 0;
  std::uint64_t torn_atomics = 0;
  std::uint64_t dropped_atomics = 0;
  std::uint64_t lock_leaks = 0;  ///< non-zero words found post-settle
  bool migration_completed = false;

  [[nodiscard]] bool passed() const noexcept { return violations.empty(); }
};

class TxnChaosRunner {
 public:
  /// Runs `schedule` against a fresh cluster; `seed` drives value payloads
  /// and any randomized schedule parameters.
  static TxnRunReport run(const TxnSchedule& schedule, std::uint64_t seed,
                          obs::Plane* plane = nullptr);
};

}  // namespace hydra::txn
