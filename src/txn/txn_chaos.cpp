#include "txn/txn_chaos.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "common/rng.hpp"
#include "hydradb/hydra_cluster.hpp"
#include "txn/txn.hpp"

namespace hydra::txn {

const char* to_string(TxnFaultKind kind) noexcept {
  switch (kind) {
    case TxnFaultKind::kKillPrimary: return "kill-primary";
    case TxnFaultKind::kKillSecondary: return "kill-secondary";
    case TxnFaultKind::kKillSwatMember: return "kill-swat-member";
    case TxnFaultKind::kKillMuxChannel: return "kill-mux-channel";
    case TxnFaultKind::kTearAtomic: return "tear-atomic";
    case TxnFaultKind::kDropAtomic: return "drop-atomic";
    case TxnFaultKind::kSuppressHeartbeats: return "suppress-heartbeats";
  }
  return "unknown";
}

namespace {

/// Failover (session timeout 2s) + unlock retries need ample slack.
constexpr Duration kSettle = 6 * kSecond;
constexpr Time kWorkloadTimeLimit = 120 * kSecond;
constexpr std::uint64_t kWorkloadStepLimit = 40'000'000;

#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

std::string hex16(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

const char* mode_name(proto::TxnMode m) {
  return m == proto::TxnMode::kWaitDie ? "wait-die" : "no-wait";
}

/// One transaction of the workload, fully precomputed before the clock
/// starts so values never depend on execution interleaving.
struct TxnPlanned {
  int client = 0;
  std::uint32_t local_idx = 0;
  std::uint32_t global_idx = 0;
  std::vector<proto::TxnOp> ops;
  Status status = Status::kTimeout;
  bool completed = false;
};

}  // namespace

std::vector<TxnSchedule> TxnSchedule::scripted() {
  std::vector<TxnSchedule> out;
  for (const proto::TxnMode mode : {proto::TxnMode::kNoWait, proto::TxnMode::kWaitDie}) {
    const std::string suffix = mode == proto::TxnMode::kWaitDie ? "-wait-die" : "-no-wait";
    {
      // Fault-free multi-shard baseline: every txn commits, nothing leaks.
      TxnSchedule s;
      s.name = "txn-baseline" + suffix;
      s.mode = mode;
      out.push_back(std::move(s));
    }
    {
      // Hot-key contention: the abort-order discipline under fire.
      TxnSchedule s;
      s.name = "txn-contention" + suffix;
      s.mode = mode;
      s.txn_clients = 4;
      s.keys_per_txn = 3;
      s.hot_keys = 8;
      s.lock_words = 8;  // word collisions guaranteed
      out.push_back(std::move(s));
    }
    {
      // The headline chaos: the primary dies between lock-acquire and
      // unlock, while commits are on the wire. Acked txns must survive the
      // promotion whole; every lock word the corpse held dies with it.
      TxnSchedule s;
      s.name = "txn-kill-mid-commit" + suffix;
      s.mode = mode;
      s.faults.push_back({.kind = TxnFaultKind::kKillPrimary, .shard = 0,
                          .at_txn = 8, .delay = 40 * kMicrosecond});
      out.push_back(std::move(s));
    }
  }
  {
    // SWAT leadership gap overlapping the primary kill: the death event
    // pends ~2s until member 1 takes over; txns stall, then roll forward.
    TxnSchedule s;
    s.name = "txn-kill-mid-commit-swat-gap";
    s.swat_members = 3;
    s.faults.push_back({.kind = TxnFaultKind::kKillPrimary, .shard = 0,
                        .at_txn = 8, .delay = 40 * kMicrosecond});
    s.faults.push_back({.kind = TxnFaultKind::kKillSwatMember, .index = 0,
                        .at_txn = 8, .delay = 1900 * kMillisecond});
    out.push_back(std::move(s));
  }
  {
    // A replica dies with group commit barriers outstanding: the primary
    // must quarantine the corpse and still ack -- never wedge a commit.
    TxnSchedule s;
    s.name = "txn-kill-secondary-mid-commit";
    s.replicas = 2;
    s.faults.push_back({.kind = TxnFaultKind::kKillSecondary, .index = 1,
                        .at_txn = 8, .delay = 20 * kMicrosecond});
    out.push_back(std::move(s));
  }
  {
    // A dropped lock CAS: the verb never executes, the initiator sees a
    // flush and must re-post (finding the word still free).
    TxnSchedule s;
    s.name = "txn-drop-lock-cas";
    s.faults.push_back({.kind = TxnFaultKind::kDropAtomic, .shard = 0, .at_txn = 6});
    out.push_back(std::move(s));
  }
  {
    // A torn lock CAS: the verb executes but the completion flushes, so
    // the client holds a lock it cannot confirm. The maybe-held set must
    // treat old == own-word as acquired on retry and release it on abort.
    TxnSchedule s;
    s.name = "txn-tear-lock-cas";
    s.faults.push_back({.kind = TxnFaultKind::kTearAtomic, .shard = 0, .at_txn = 6});
    out.push_back(std::move(s));
  }
  {
    // An atomic fault landing late in a txn's life -- on the unlock path.
    // The release loop must retry through a fresh connection until the
    // word is confirmed clear; a leaked word fails invariant 3.
    TxnSchedule s;
    s.name = "txn-drop-unlock-cas";
    s.faults.push_back({.kind = TxnFaultKind::kDropAtomic, .shard = 0, .at_txn = 6,
                        .delay = 300 * kMicrosecond});
    out.push_back(std::move(s));
  }
  {
    // The shared mux QP carrying all lock + commit traffic dies abruptly.
    TxnSchedule s;
    s.name = "txn-mux-channel-kill";
    s.mux = true;
    s.faults.push_back({.kind = TxnFaultKind::kKillMuxChannel, .shard = 0,
                        .at_txn = 8, .delay = 30 * kMicrosecond});
    out.push_back(std::move(s));
  }
  {
    // Heartbeat suppression past the session timeout: the primary fences
    // itself; in-flight txns re-lock against the promoted arena.
    TxnSchedule s;
    s.name = "txn-heartbeat-fence";
    s.faults.push_back({.kind = TxnFaultKind::kSuppressHeartbeats, .shard = 0,
                        .at_txn = 6, .duration = 3 * kSecond});
    out.push_back(std::move(s));
  }
  {
    // A live migration overlapping the workload: the epoch fence rejects
    // commits stamped before the bump and txns re-resolve onto the new
    // ring -- mid-migration, a group may even split across more shards.
    TxnSchedule s;
    s.name = "txn-migrate-mid-txn";
    s.txns_per_client = 10;
    s.migrate_at_txn = 6;
    out.push_back(std::move(s));
  }
  return out;
}

TxnSchedule TxnSchedule::random(std::uint64_t seed) {
  Xoshiro256 rng(seed * 0xD6E8FEB86659FD93ULL + 0x8CB92BA72F3D8DD7ULL);
  TxnSchedule s;
  s.name = "txn-random-" + std::to_string(seed);
  s.mode = rng.below(2) == 0 ? proto::TxnMode::kNoWait : proto::TxnMode::kWaitDie;
  s.txn_clients = 2 + static_cast<int>(rng.below(3));
  s.txns_per_client = 6 + static_cast<std::uint32_t>(rng.below(7));
  s.keys_per_txn = 2 + static_cast<std::uint32_t>(rng.below(4));
  s.shards = 1 + static_cast<int>(rng.below(3));
  s.mux = rng.below(3) == 0;
  const std::uint32_t total = static_cast<std::uint32_t>(s.txn_clients) * s.txns_per_client;
  auto txn_point = [&] { return static_cast<std::uint32_t>(rng.below(total)); };

  // Safety rules mirroring the failover harness: a live replica must always
  // remain, so secondary kills force two replicas and only kill #1.
  const bool kill_secondary = rng.below(4) == 0;
  s.replicas = kill_secondary ? 2 : 1 + static_cast<int>(rng.below(2));
  const bool kill_primary = rng.below(2) == 0;
  const bool kill_swat = kill_primary && rng.below(3) == 0;

  if (rng.below(3) == 0) {
    // Contention run: shrink the key universe and the lock arena.
    s.hot_keys = 6 + static_cast<std::uint32_t>(rng.below(8));
    s.keys_per_txn = std::min(s.keys_per_txn, s.hot_keys);
    s.lock_words = 8 + static_cast<std::uint32_t>(rng.below(16));
  }
  // Zero to two lock-arena atomic faults in every schedule.
  const int atomics = static_cast<int>(rng.below(3));
  for (int i = 0; i < atomics; ++i) {
    s.faults.push_back(
        {.kind = rng.below(2) == 0 ? TxnFaultKind::kTearAtomic : TxnFaultKind::kDropAtomic,
         .shard = static_cast<ShardId>(rng.below(static_cast<std::uint64_t>(s.shards))),
         .at_txn = txn_point(),
         .delay = static_cast<Duration>(rng.below(400 * kMicrosecond))});
  }
  if (kill_secondary) {
    s.faults.push_back({.kind = TxnFaultKind::kKillSecondary,
                        .shard = static_cast<ShardId>(rng.below(static_cast<std::uint64_t>(s.shards))),
                        .index = 1, .at_txn = txn_point(),
                        .delay = static_cast<Duration>(rng.below(50 * kMicrosecond))});
  }
  if (kill_primary) {
    s.faults.push_back({.kind = TxnFaultKind::kKillPrimary,
                        .shard = static_cast<ShardId>(rng.below(static_cast<std::uint64_t>(s.shards))),
                        .at_txn = txn_point(),
                        .delay = static_cast<Duration>(rng.below(100 * kMicrosecond))});
  }
  if (kill_swat) {
    s.swat_members = 3;
    s.faults.push_back({.kind = TxnFaultKind::kKillSwatMember, .index = 0,
                        .at_txn = txn_point(),
                        .delay = 1500 * kMillisecond + rng.below(kSecond)});
  }
  if (s.mux && rng.below(3) == 0) {
    s.faults.push_back({.kind = TxnFaultKind::kKillMuxChannel,
                        .shard = static_cast<ShardId>(rng.below(static_cast<std::uint64_t>(s.shards))),
                        .at_txn = txn_point(),
                        .delay = static_cast<Duration>(rng.below(50 * kMicrosecond))});
  }
  if (rng.below(4) == 0) {
    s.faults.push_back({.kind = TxnFaultKind::kSuppressHeartbeats,
                        .shard = static_cast<ShardId>(rng.below(static_cast<std::uint64_t>(s.shards))),
                        .at_txn = txn_point(),
                        .duration = kSecond + rng.below(3 * kSecond)});
  }
  return s;
}

TxnRunReport TxnChaosRunner::run(const TxnSchedule& schedule, std::uint64_t seed,
                                 obs::Plane* plane) {
  TxnSchedule plan = schedule;
  const std::uint32_t total_txns =
      static_cast<std::uint32_t>(plan.txn_clients) * plan.txns_per_client;
  for (TxnFault& f : plan.faults) f.at_txn = std::min(f.at_txn, total_txns - 1);
  if (plan.migrate_at_txn != TxnSchedule::kNoMigration) {
    plan.migrate_at_txn = std::min(plan.migrate_at_txn, total_txns - 1);
  }
  if (plan.hot_keys > 0) plan.keys_per_txn = std::min(plan.keys_per_txn, plan.hot_keys);

  TxnRunReport report;
  std::string& hist = report.history;
  auto violation = [&](std::string text) {
    hist += "violation: " + text + "\n";
    report.violations.push_back(std::move(text));
  };

  db::ClusterOptions opts;
  opts.server_nodes = plan.shards;
  opts.shards_per_node = 1;
  opts.total_shards = plan.shards;
  opts.client_nodes = 1;
  opts.clients_per_node = plan.txn_clients;
  opts.replicas = plan.replicas;
  opts.enable_swat = true;
  opts.swat_members = plan.swat_members;
  opts.shard_template.store.arena_bytes = 16 << 20;
  opts.shard_template.store.min_buckets = 1 << 12;
  opts.shard_template.txn_lock_words = plan.lock_words;
  opts.client_template.request_timeout = 100 * kMillisecond;
  opts.client_template.max_retries = 100;
  opts.mux_connections = plan.mux;
  opts.obs = plane;

  db::HydraCluster cluster(opts);
  sim::Scheduler& sched = cluster.scheduler();
  const std::size_t shards_before = cluster.shard_count();

  appendf(hist, "run schedule=%s seed=%llu txns=%u mode=%s shards=%d replicas=%d hot=%u mux=%d\n",
          plan.name.c_str(), static_cast<unsigned long long>(seed), total_txns,
          mode_name(plan.mode), plan.shards, plan.replicas, plan.hot_keys,
          plan.mux ? 1 : 0);

  // --- atomic wire faults: armed one-shot, matched by lock-arena rkey ------
  std::vector<TxnFault> armed;
  cluster.fabric().set_write_fault_hook(
      [&](NodeId, NodeId, const fabric::RemoteAddr& addr,
          std::uint32_t size) -> fabric::WriteFault {
        if (armed.empty() || size != 8) return {};
        for (auto it = armed.begin(); it != armed.end(); ++it) {
          auto* sh = cluster.shard(it->shard);
          if (sh == nullptr || sh->lock_rkey() == 0 || sh->lock_rkey() != addr.rkey) {
            continue;
          }
          fabric::WriteFault wf;
          wf.kind = it->kind == TxnFaultKind::kTearAtomic
                        ? fabric::WriteFault::Kind::kTorn
                        : fabric::WriteFault::Kind::kDrop;
          appendf(hist, "t=%llu atomic-fault %s rkey=%u\n",
                  static_cast<unsigned long long>(sched.now()), to_string(it->kind),
                  addr.rkey);
          armed.erase(it);
          return wf;
        }
        return {};
      });

  // --- fault application ----------------------------------------------------
  auto apply_fault = [&](const TxnFault& f) {
    appendf(hist, "t=%llu fault %s shard=%u idx=%d\n",
            static_cast<unsigned long long>(sched.now()), to_string(f.kind),
            static_cast<unsigned>(f.shard), f.index);
    switch (f.kind) {
      case TxnFaultKind::kKillPrimary: {
        auto* sh = cluster.shard(f.shard);
        if (sh != nullptr && sh->alive()) cluster.crash_primary(f.shard);
        break;
      }
      case TxnFaultKind::kKillSecondary:
        cluster.crash_secondary(f.shard, f.index);
        break;
      case TxnFaultKind::kKillSwatMember:
        cluster.kill_swat_member(f.index);
        break;
      case TxnFaultKind::kKillMuxChannel:
        cluster.kill_mux_channel(f.index, f.shard);
        break;
      case TxnFaultKind::kTearAtomic:
      case TxnFaultKind::kDropAtomic:
        armed.push_back(f);
        break;
      case TxnFaultKind::kSuppressHeartbeats:
        cluster.suppress_heartbeats(f.shard, f.duration);
        break;
    }
  };

  // --- workload plan --------------------------------------------------------
  // Disjoint mode: txn (c, t) writes keys txn-c<c>-t<t>-k<i>, reads one and
  // removes one key of the client's previous txn. Every value is a pure
  // function of (seed, c, t, i), so roll-forward re-commits re-apply
  // identical bytes and the final-state check is exact.
  // Hot mode: keys come from a tiny shared universe; values stay unique per
  // txn so any committed value is traceable to its writer.
  Xoshiro256 value_rng(seed);
  std::vector<TxnPlanned> txns;
  txns.reserve(total_txns);
  for (int c = 0; c < plan.txn_clients; ++c) {
    for (std::uint32_t t = 0; t < plan.txns_per_client; ++t) {
      TxnPlanned p;
      p.client = c;
      p.local_idx = t;
      std::set<std::string> used;
      for (std::uint32_t k = 0; k < plan.keys_per_txn; ++k) {
        std::string key;
        if (plan.hot_keys > 0) {
          do {
            key = "hot-" + std::to_string(value_rng.below(plan.hot_keys));
          } while (!used.insert(key).second);
        } else {
          key = "txn-c" + std::to_string(c) + "-t" + std::to_string(t) + "-k" +
                std::to_string(k);
        }
        p.ops.push_back({proto::MsgType::kPut, std::move(key), "v-" + hex16(value_rng())});
      }
      if (plan.hot_keys == 0 && t > 0 && plan.keys_per_txn >= 2) {
        const std::string prev =
            "txn-c" + std::to_string(c) + "-t" + std::to_string(t - 1) + "-k";
        p.ops.push_back({proto::MsgType::kGet, prev + "0", ""});
        p.ops.push_back({proto::MsgType::kRemove, prev + "1", ""});
      }
      txns.push_back(std::move(p));
    }
  }

  // --- transaction clients --------------------------------------------------
  TxnOptions topts;
  topts.mode = plan.mode;
  topts.max_restarts = 400;
  topts.restart_backoff = 2 * kMillisecond;
  topts.wait_retries = 400;
  topts.wait_backoff = 50 * kMicrosecond;
  topts.wire_retries = 64;

  auto ids = TxnClient::make_id_source();
  bool order_violation = false;
  std::vector<std::unique_ptr<TxnClient>> drivers;
  for (int c = 0; c < plan.txn_clients; ++c) {
    auto d = std::make_unique<TxnClient>(sched, *cluster.clients()[static_cast<std::size_t>(c)],
                                         topts, ids);
    d->set_resolver([&cluster](std::uint64_t h) { return cluster.ring().owner(h); });
    d->set_epoch_source([&cluster] { return cluster.routing_epoch(); });
    d->set_conflict_probe([&](std::uint64_t requester, std::uint64_t holder, bool died) {
      if (plan.mode == proto::TxnMode::kNoWait && !died) order_violation = true;
      if (plan.mode == proto::TxnMode::kWaitDie && died && requester < holder) {
        order_violation = true;
      }
    });
    drivers.push_back(std::move(d));
  }

  // --- closed-loop issue, one stream per client -----------------------------
  std::uint32_t global_issue = 0;
  std::uint32_t completed = 0;
  std::vector<std::uint32_t> cursor(static_cast<std::size_t>(plan.txn_clients), 0);
  std::function<void(int)> drive = [&](int c) {
    const std::uint32_t t = cursor[static_cast<std::size_t>(c)];
    if (t >= plan.txns_per_client) return;
    ++cursor[static_cast<std::size_t>(c)];
    TxnPlanned& p = txns[static_cast<std::size_t>(c) * plan.txns_per_client + t];
    p.global_idx = global_issue++;
    appendf(hist, "t=%llu txn=%u client=%d issue ops=%zu\n",
            static_cast<unsigned long long>(sched.now()), p.global_idx, c, p.ops.size());
    for (const TxnFault& f : plan.faults) {
      if (f.at_txn != p.global_idx) continue;
      const TxnFault* fp = &f;
      sched.after(f.delay, [&apply_fault, fp] { apply_fault(*fp); });
    }
    if (plan.migrate_at_txn == p.global_idx) {
      const ShardId added = cluster.add_shard_live();
      appendf(hist, "t=%llu migrate add shard=%u\n",
              static_cast<unsigned long long>(sched.now()), static_cast<unsigned>(added));
    }
    TxnPlanned* rec = &p;  // stable: txns never reallocates after the plan pass
    drivers[static_cast<std::size_t>(c)]->run(
        p.ops, [&, rec, c](Status st, std::vector<std::string>) {
          rec->status = st;
          rec->completed = true;
          ++completed;
          appendf(hist, "t=%llu txn=%u client=%d done status=%s\n",
                  static_cast<unsigned long long>(sched.now()), rec->global_idx, c,
                  std::string(to_string(st)).c_str());
          drive(c);
        });
  };
  for (int c = 0; c < plan.txn_clients; ++c) drive(c);

  std::uint64_t steps = 0;
  while (completed < total_txns && sched.now() < kWorkloadTimeLimit &&
         steps < kWorkloadStepLimit) {
    if (!sched.step()) break;
    ++steps;
  }
  const Time settle_end = sched.now() + kSettle;
  while (sched.now() < settle_end && sched.step()) {
  }

  // --- invariant 1: every callback fired ------------------------------------
  for (const TxnPlanned& p : txns) {
    if (p.completed) continue;
    ++report.wedged;
    violation("txn client=" + std::to_string(p.client) + " local=" +
              std::to_string(p.local_idx) + " never completed: callback wedged");
  }
  for (const TxnPlanned& p : txns) {
    if (!p.completed) continue;
    if (p.status == Status::kOk) {
      ++report.acked;
    } else {
      ++report.failed;
    }
  }

  // --- invariant 2: acked txns all-or-nothing with exact values -------------
  if (plan.hot_keys == 0) {
    // Per-client serial replay of *acked* txns yields the expected final
    // state; any key a non-acked txn ever touched is tainted (its fate is
    // legitimately unknown) and excluded.
    std::map<std::string, std::pair<bool, std::string>> expected;  // present?, value
    std::set<std::string> tainted;
    for (const TxnPlanned& p : txns) {
      for (const proto::TxnOp& op : p.ops) {
        if (op.op == proto::MsgType::kGet) continue;
        if (!p.completed || p.status != Status::kOk) {
          tainted.insert(op.key);
          continue;
        }
        if (op.op == proto::MsgType::kRemove) {
          expected[op.key] = {false, ""};
        } else {
          expected[op.key] = {true, op.value};
        }
      }
    }
    for (const auto& [key, want] : expected) {
      if (tainted.count(key) != 0) continue;
      Status st = Status::kOk;
      auto got = cluster.get(key, 0, &st);
      if (want.first) {
        if (!got.has_value()) {
          violation("acked key " + key + " unreadable after faults: " +
                    std::string(to_string(st)));
        } else if (*got != want.second) {
          violation("acked key " + key + " returned a different value");
        }
      } else if (got.has_value()) {
        violation("acked remove of " + key + " resurfaced a value");
      }
    }
  } else {
    // Contention runs overwrite keys concurrently; the exact winner is
    // schedule-dependent, but any surviving value must trace to some
    // transaction that actually wrote that key -- no torn or invented data.
    std::map<std::string, std::set<std::string>> writers;
    for (const TxnPlanned& p : txns) {
      for (const proto::TxnOp& op : p.ops) {
        if (op.op == proto::MsgType::kPut) writers[op.key].insert(op.value);
      }
    }
    for (const auto& [key, values] : writers) {
      auto got = cluster.get(key, 0, nullptr);
      if (got.has_value() && values.count(*got) == 0) {
        violation("hot key " + key + " holds a value no transaction wrote");
      }
    }
  }

  // --- invariant 3: no lock word leaked held --------------------------------
  for (ShardId s = 0; s < static_cast<ShardId>(cluster.shard_count()); ++s) {
    auto* sh = cluster.shard(s);
    if (sh == nullptr || !sh->alive()) continue;
    for (std::uint32_t w = 0; w < sh->lock_word_count(); ++w) {
      const std::uint64_t word = sh->lock_word(w);
      if (word == 0) continue;
      ++report.lock_leaks;
      violation("shard " + std::to_string(s) + " lock word " + std::to_string(w) +
                " leaked held by txn " + std::to_string(word & ~kLockHeldBit));
    }
  }

  // --- invariant 4: abort-order discipline ----------------------------------
  if (order_violation) {
    violation(plan.mode == proto::TxnMode::kNoWait
                  ? "NO_WAIT transaction waited on a conflict"
                  : "WAIT_DIE killed an older transaction for a younger holder");
  }

  // --- availability + bookkeeping -------------------------------------------
  report.failovers = cluster.failovers();
  const Status probe = cluster.put("txn-probe", "alive");
  appendf(hist, "t=%llu probe-put status=%s\n",
          static_cast<unsigned long long>(sched.now()),
          std::string(to_string(probe)).c_str());
  if (probe != Status::kOk) {
    violation("probe PUT failed: cluster not writable after faults (" +
              std::string(to_string(probe)) + ")");
  }
  if (plan.migrate_at_txn != TxnSchedule::kNoMigration) {
    report.migration_completed =
        cluster.shard_count() > shards_before && !cluster.migration_active();
    if (!report.migration_completed) violation("migration never committed");
  }
  for (const auto& d : drivers) {
    report.conflicts += d->stats().conflicts;
    report.died += d->stats().died;
    report.waits += d->stats().waits;
    report.restarts += d->stats().restarts;
  }
  report.torn_atomics = cluster.fabric().stats().torn_atomics;
  report.dropped_atomics = cluster.fabric().stats().dropped_atomics;

  appendf(hist,
          "end t=%llu acked=%llu failed=%llu wedged=%llu failovers=%llu conflicts=%llu "
          "died=%llu waits=%llu leaks=%llu violations=%zu\n",
          static_cast<unsigned long long>(sched.now()),
          static_cast<unsigned long long>(report.acked),
          static_cast<unsigned long long>(report.failed),
          static_cast<unsigned long long>(report.wedged),
          static_cast<unsigned long long>(report.failovers),
          static_cast<unsigned long long>(report.conflicts),
          static_cast<unsigned long long>(report.died),
          static_cast<unsigned long long>(report.waits),
          static_cast<unsigned long long>(report.lock_leaks),
          report.violations.size());
  return report;
}

}  // namespace hydra::txn
