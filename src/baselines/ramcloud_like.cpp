// RAMCloud-architecture baseline: native InfiniBand transport (two-sided
// verbs) with a dispatch thread that hands requests to worker threads, and
// a log-structured write path. Faster than the TCP systems thanks to verbs,
// slower than HydraDB because every request crosses the dispatch handoff
// and the two-sided completion path (and reads cannot bypass the CPU).
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/baseline.hpp"
#include "proto/messages.hpp"
#include "sim/actor.hpp"

namespace hydra::baselines {
namespace {

class RamcloudLike final : public BaselineStore {
 public:
  RamcloudLike(sim::Scheduler& sched, fabric::Fabric& fabric, BaselineConfig cfg)
      : sched_(sched),
        fabric_(fabric),
        cfg_(cfg),
        actor_(sched, "ramcloud-server"),
        workers_(static_cast<std::size_t>(cfg.parallelism)) {}

  const char* name() const override { return "ramcloud-like"; }

  void load(const std::string& key, const std::string& value) override {
    table_[key] = value;
  }

  void get(int client_idx, std::string key, GetCb cb) override {
    submit(client_idx, proto::MsgType::kGet, std::move(key), {}, std::move(cb), nullptr);
  }

  void update(int client_idx, std::string key, std::string value, PutCb cb) override {
    submit(client_idx, proto::MsgType::kUpdate, std::move(key), std::move(value), nullptr,
           std::move(cb));
  }

 private:
  struct ClientSide {
    fabric::QueuePair* qp = nullptr;
    std::vector<std::vector<std::byte>> recv_bufs;
    GetCb get_cb;
    PutCb put_cb;
  };
  struct ServerConn {
    fabric::QueuePair* qp = nullptr;
    std::vector<std::vector<std::byte>> recv_bufs;
  };
  struct Worker {
    bool busy = false;
    std::deque<std::pair<proto::Request, int>> queue;
  };

  ClientSide& conn_for(int client_idx) {
    if (static_cast<std::size_t>(client_idx) >= clients_.size()) {
      clients_.resize(static_cast<std::size_t>(client_idx) + 1);
    }
    ClientSide& c = clients_[static_cast<std::size_t>(client_idx)];
    if (c.qp == nullptr) {
      const NodeId cnode =
          cfg_.client_nodes[static_cast<std::size_t>(client_idx) % cfg_.client_nodes.size()];
      auto [client_end, server_end] = fabric_.connect(cnode, cfg_.server_node);
      c.qp = client_end;
      c.recv_bufs.resize(4, std::vector<std::byte>(16 * 1024));
      for (std::size_t i = 0; i < c.recv_bufs.size(); ++i) c.qp->post_recv(c.recv_bufs[i], i);
      c.qp->set_recv_handler(actor_.guard(
          [this, client_idx](const fabric::Completion& wc, std::span<std::byte> data) {
            ClientSide& cs = clients_[static_cast<std::size_t>(client_idx)];
            auto resp = proto::decode_response(data.subspan(0, wc.byte_len));
            cs.qp->post_recv(cs.recv_bufs[wc.wr_id], wc.wr_id);
            if (resp.has_value()) on_client_response(client_idx, std::move(*resp));
          }));

      server_conns_.push_back(ServerConn{server_end, {}});
      ServerConn& sc = server_conns_.back();
      sc.recv_bufs.resize(8, std::vector<std::byte>(16 * 1024));
      for (std::size_t i = 0; i < sc.recv_bufs.size(); ++i) sc.qp->post_recv(sc.recv_bufs[i], i);
      const int conn_id = static_cast<int>(server_conns_.size()) - 1;
      sc.qp->set_recv_handler(actor_.guard(
          [this, conn_id](const fabric::Completion& wc, std::span<std::byte> data) {
            ServerConn& s = server_conns_[static_cast<std::size_t>(conn_id)];
            auto req = proto::decode_request(data.subspan(0, wc.byte_len));
            s.qp->post_recv(s.recv_bufs[wc.wr_id], wc.wr_id);
            if (req.has_value()) dispatch(std::move(*req), conn_id);
          }));
    }
    return c;
  }

  void submit(int client_idx, proto::MsgType type, std::string key, std::string value,
              GetCb gcb, PutCb pcb) {
    ClientSide& c = conn_for(client_idx);
    c.get_cb = std::move(gcb);
    c.put_cb = std::move(pcb);
    proto::Request req;
    req.type = type;
    req.client = static_cast<ClientId>(client_idx);
    req.key = std::move(key);
    req.value = std::move(value);
    auto payload = proto::encode_request(req);
    fabric::QueuePair* qp = c.qp;
    sched_.after(cfg_.client_cost,
                 actor_.guard([qp, payload = std::move(payload)] { qp->post_send(payload); }));
  }

  /// RAMCloud's dispatch thread: polls completions and hands off to a
  /// worker; the handoff is serialized through the single dispatch core.
  void dispatch(proto::Request req, int conn_id) {
    dispatch_queue_.emplace_back(std::move(req), conn_id);
    if (!dispatch_busy_) {
      dispatch_busy_ = true;
      dispatch_loop();
    }
  }

  void dispatch_loop() {
    if (dispatch_queue_.empty()) {
      dispatch_busy_ = false;
      return;
    }
    auto [req, conn_id] = std::move(dispatch_queue_.front());
    dispatch_queue_.pop_front();
    actor_.schedule_after(cfg_.dispatch_cost, [this, req = std::move(req), conn_id]() mutable {
      Worker& w = workers_[static_cast<std::size_t>(conn_id) % workers_.size()];
      w.queue.emplace_back(std::move(req), conn_id);
      if (!w.busy) {
        w.busy = true;
        worker_loop(w);
      }
      dispatch_loop();
    });
  }

  void worker_loop(Worker& w) {
    if (w.queue.empty()) {
      w.busy = false;
      return;
    }
    auto [req, conn_id] = std::move(w.queue.front());
    w.queue.pop_front();
    Duration cost = cfg_.parse_cost + cfg_.store_op_cost + cfg_.respond_cost;
    if (req.type != proto::MsgType::kGet) {
      cost += cfg_.log_append_cost +
              static_cast<Duration>(cfg_.per_value_byte * static_cast<double>(req.value.size()));
    }
    actor_.schedule_after(cost, [this, &w, req = std::move(req), conn_id] {
      proto::Response resp;
      resp.req_id = req.req_id;
      if (req.type == proto::MsgType::kGet) {
        auto it = table_.find(req.key);
        if (it == table_.end()) {
          resp.status = Status::kNotFound;
        } else {
          resp.value = it->second;
        }
      } else {
        table_[req.key] = req.value;
      }
      server_conns_[static_cast<std::size_t>(conn_id)].qp->post_send(
          proto::encode_response(resp));
      worker_loop(w);
    });
  }

  void on_client_response(int client_idx, proto::Response resp) {
    sched_.after(cfg_.client_cost, actor_.guard([this, client_idx, resp = std::move(resp)] {
      ClientSide& c = clients_[static_cast<std::size_t>(client_idx)];
      if (c.get_cb) {
        auto cb = std::move(c.get_cb);
        c.get_cb = nullptr;
        cb(resp.status, resp.value);
      } else if (c.put_cb) {
        auto cb = std::move(c.put_cb);
        c.put_cb = nullptr;
        cb(resp.status);
      }
    }));
  }

  sim::Scheduler& sched_;
  fabric::Fabric& fabric_;
  BaselineConfig cfg_;
  sim::Actor actor_;
  std::unordered_map<std::string, std::string> table_;
  std::vector<Worker> workers_;
  std::vector<ClientSide> clients_;
  std::vector<ServerConn> server_conns_;
  std::deque<std::pair<proto::Request, int>> dispatch_queue_;
  bool dispatch_busy_ = false;
};

}  // namespace

std::unique_ptr<BaselineStore> make_ramcloud_like(sim::Scheduler& sched,
                                                  fabric::Fabric& fabric,
                                                  BaselineConfig cfg) {
  return std::make_unique<RamcloudLike>(sched, fabric, cfg);
}

}  // namespace hydra::baselines
