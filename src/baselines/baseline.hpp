// Architectural re-implementations of the Figure 9 comparison systems.
//
// The paper compares HydraDB with Memcached v1.4.21 (over IPoIB), Redis
// v2.8.17 (8 instances over IPoIB, client-side sharding) and RAMCloud
// (native InfiniBand transport). What separates the four is architecture --
// kernel TCP vs verbs, lock-based multithreading vs single-threaded loops
// vs dispatch/worker pipelines -- so that is what these classes reproduce,
// with per-op CPU costs calibrated to the same regime as HydraDB's shards.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "fabric/fabric.hpp"
#include "sim/scheduler.hpp"

namespace hydra::baselines {

struct BaselineConfig {
  NodeId server_node = 0;
  std::vector<NodeId> client_nodes;
  /// Memcached: worker threads; Redis: instances; RAMCloud: worker threads.
  int parallelism = 8;

  // CPU cost model (server side).
  Duration parse_cost = 350;
  Duration store_op_cost = 450;
  Duration respond_cost = 300;
  Duration lock_hold_extra = 150;    ///< memcached: LRU/refcount work under lock
  Duration dispatch_cost = 400;      ///< ramcloud: dispatch->worker handoff
  Duration log_append_cost = 400;    ///< ramcloud: log-structured write path
  Duration client_cost = 250;        ///< client-side request/response handling
  double per_value_byte = 0.15;
};

/// Closed-loop driver interface shared by all baselines (and by the
/// HydraDB adapter in the benches): one outstanding op per client index.
class BaselineStore {
 public:
  using GetCb = std::function<void(Status, std::string_view)>;
  using PutCb = std::function<void(Status)>;

  virtual ~BaselineStore() = default;

  /// Direct preload, bypassing the network (mirrors the YCSB load phase).
  virtual void load(const std::string& key, const std::string& value) = 0;
  virtual void get(int client_idx, std::string key, GetCb cb) = 0;
  virtual void update(int client_idx, std::string key, std::string value, PutCb cb) = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

std::unique_ptr<BaselineStore> make_memcached_like(sim::Scheduler& sched,
                                                   fabric::Fabric& fabric,
                                                   BaselineConfig cfg);
std::unique_ptr<BaselineStore> make_redis_like(sim::Scheduler& sched,
                                               fabric::Fabric& fabric,
                                               BaselineConfig cfg);
std::unique_ptr<BaselineStore> make_ramcloud_like(sim::Scheduler& sched,
                                                  fabric::Fabric& fabric,
                                                  BaselineConfig cfg);

}  // namespace hydra::baselines
