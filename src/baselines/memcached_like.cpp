// Memcached-architecture baseline: multi-threaded server sharing one
// lock-protected hash table + LRU, speaking kernel TCP (IPoIB in the
// paper's setup). Its bottlenecks under load are the kernel stack's
// per-message latency/CPU and lock contention between worker threads.
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/baseline.hpp"
#include "proto/messages.hpp"
#include "sim/actor.hpp"
#include "sim/mutex.hpp"

namespace hydra::baselines {
namespace {

class MemcachedLike final : public BaselineStore {
 public:
  MemcachedLike(sim::Scheduler& sched, fabric::Fabric& fabric, BaselineConfig cfg)
      : sched_(sched),
        fabric_(fabric),
        cfg_(cfg),
        server_(sched, "memcached-server"),
        lock_(sched, /*handoff_cost=*/80),
        workers_(static_cast<std::size_t>(cfg.parallelism)) {}

  const char* name() const override { return "memcached-like"; }

  void load(const std::string& key, const std::string& value) override {
    table_[key] = value;
  }

  void get(int client_idx, std::string key, GetCb cb) override {
    submit(client_idx, proto::MsgType::kGet, std::move(key), {}, std::move(cb), nullptr);
  }

  void update(int client_idx, std::string key, std::string value, PutCb cb) override {
    submit(client_idx, proto::MsgType::kUpdate, std::move(key), std::move(value), nullptr,
           std::move(cb));
  }

 private:
  struct ClientSide {
    fabric::TcpConn* conn = nullptr;  // client endpoint
    GetCb get_cb;
    PutCb put_cb;
  };
  struct Job {
    proto::Request req;
    int conn_idx;
  };
  struct Worker {
    bool busy = false;
    std::deque<Job> queue;
  };

  ClientSide& conn_for(int client_idx) {
    if (static_cast<std::size_t>(client_idx) >= clients_.size()) {
      clients_.resize(static_cast<std::size_t>(client_idx) + 1);
    }
    ClientSide& c = clients_[static_cast<std::size_t>(client_idx)];
    if (c.conn == nullptr) {
      const NodeId cnode =
          cfg_.client_nodes[static_cast<std::size_t>(client_idx) % cfg_.client_nodes.size()];
      auto [client_end, server_end] = fabric_.tcp_connect(cnode, cfg_.server_node);
      c.conn = client_end;
      server_conns_.push_back(server_end);
      const int conn_idx = static_cast<int>(server_conns_.size()) - 1;
      server_end->set_handler(server_.guard([this, conn_idx](std::vector<std::byte> msg) {
        on_server_message(conn_idx, std::move(msg));
      }));
      client_end->set_handler(server_.guard([this, client_idx](std::vector<std::byte> msg) {
        on_client_response(client_idx, std::move(msg));
      }));
    }
    return c;
  }

  void submit(int client_idx, proto::MsgType type, std::string key, std::string value,
              GetCb gcb, PutCb pcb) {
    ClientSide& c = conn_for(client_idx);
    c.get_cb = std::move(gcb);
    c.put_cb = std::move(pcb);
    proto::Request req;
    req.type = type;
    req.client = static_cast<ClientId>(client_idx);
    req.key = std::move(key);
    req.value = std::move(value);
    // Client burns its own syscall cost, then the message rides the stack.
    sched_.after(cfg_.client_cost, server_.guard([this, client_idx] {
      clients_[static_cast<std::size_t>(client_idx)].conn->send(pending_frames_[static_cast<std::size_t>(client_idx)]);
    }));
    if (pending_frames_.size() <= static_cast<std::size_t>(client_idx)) {
      pending_frames_.resize(static_cast<std::size_t>(client_idx) + 1);
    }
    pending_frames_[static_cast<std::size_t>(client_idx)] = proto::encode_request(req);
  }

  void on_server_message(int conn_idx, std::vector<std::byte> msg) {
    auto req = proto::decode_request(msg);
    if (!req.has_value()) return;
    Worker& w = workers_[static_cast<std::size_t>(conn_idx) % workers_.size()];
    w.queue.push_back(Job{std::move(*req), conn_idx});
    if (!w.busy) {
      w.busy = true;
      worker_run(w);
    }
  }

  void worker_run(Worker& w) {
    if (w.queue.empty()) {
      w.busy = false;
      return;
    }
    Job job = std::move(w.queue.front());
    w.queue.pop_front();
    // Kernel receive path + parse, then the global lock serializes the
    // actual table access across all workers.
    const Duration pre = fabric_.cost().tcp_kernel_cost + cfg_.parse_cost;
    server_.schedule_after(pre, [this, &w, job = std::move(job)]() mutable {
      lock_.lock(server_.guard([this, &w, job = std::move(job)]() mutable {
        const Duration hold =
            cfg_.store_op_cost + cfg_.lock_hold_extra +
            static_cast<Duration>(cfg_.per_value_byte *
                                  static_cast<double>(job.req.value.size()));
        server_.schedule_after(hold, [this, &w, job = std::move(job)]() mutable {
          proto::Response resp;
          resp.req_id = job.req.req_id;
          if (job.req.type == proto::MsgType::kGet) {
            auto it = table_.find(job.req.key);
            if (it == table_.end()) {
              resp.status = Status::kNotFound;
            } else {
              resp.value = it->second;
            }
          } else {
            table_[job.req.key] = job.req.value;
          }
          lock_.unlock();
          server_.schedule_after(cfg_.respond_cost, [this, &w, job, resp = std::move(resp)] {
            server_conns_[static_cast<std::size_t>(job.conn_idx)]->send(
                proto::encode_response(resp));
            worker_run(w);
          });
        });
      }));
    });
  }

  void on_client_response(int client_idx, std::vector<std::byte> msg) {
    auto resp = proto::decode_response(msg);
    if (!resp.has_value()) return;
    sched_.after(cfg_.client_cost, server_.guard([this, client_idx, resp = std::move(*resp)] {
      ClientSide& c = clients_[static_cast<std::size_t>(client_idx)];
      if (c.get_cb) {
        auto cb = std::move(c.get_cb);
        c.get_cb = nullptr;
        cb(resp.status, resp.value);
      } else if (c.put_cb) {
        auto cb = std::move(c.put_cb);
        c.put_cb = nullptr;
        cb(resp.status);
      }
    }));
  }

  sim::Scheduler& sched_;
  fabric::Fabric& fabric_;
  BaselineConfig cfg_;
  sim::Actor server_;
  sim::SimMutex lock_;
  std::vector<Worker> workers_;
  std::unordered_map<std::string, std::string> table_;
  std::vector<ClientSide> clients_;
  std::vector<fabric::TcpConn*> server_conns_;
  std::vector<std::vector<std::byte>> pending_frames_;
};

}  // namespace

std::unique_ptr<BaselineStore> make_memcached_like(sim::Scheduler& sched,
                                                   fabric::Fabric& fabric,
                                                   BaselineConfig cfg) {
  return std::make_unique<MemcachedLike>(sched, fabric, cfg);
}

}  // namespace hydra::baselines
