// Redis-architecture baseline: N single-threaded instances over kernel TCP,
// sharded on the client side (the paper runs 8 instances with fine-grained
// client-side sharding). No locks -- each instance's event loop serializes
// its own requests; skew concentrates load on few instances.
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/baseline.hpp"
#include "common/hash.hpp"
#include "proto/messages.hpp"
#include "sim/actor.hpp"

namespace hydra::baselines {
namespace {

class RedisLike final : public BaselineStore {
 public:
  RedisLike(sim::Scheduler& sched, fabric::Fabric& fabric, BaselineConfig cfg)
      : sched_(sched),
        fabric_(fabric),
        cfg_(cfg),
        actor_(sched, "redis-server"),
        instances_(static_cast<std::size_t>(cfg.parallelism)) {}

  const char* name() const override { return "redis-like"; }

  void load(const std::string& key, const std::string& value) override {
    instance_for(key).table[key] = value;
  }

  void get(int client_idx, std::string key, GetCb cb) override {
    submit(client_idx, proto::MsgType::kGet, std::move(key), {}, std::move(cb), nullptr);
  }

  void update(int client_idx, std::string key, std::string value, PutCb cb) override {
    submit(client_idx, proto::MsgType::kUpdate, std::move(key), std::move(value), nullptr,
           std::move(cb));
  }

 private:
  struct Instance {
    std::unordered_map<std::string, std::string> table;
    bool busy = false;
    std::deque<std::pair<proto::Request, int>> queue;  // (request, conn id)
  };
  struct ClientSide {
    std::vector<fabric::TcpConn*> conns;  // one per instance, lazily built
    GetCb get_cb;
    PutCb put_cb;
  };
  struct ServerConn {
    fabric::TcpConn* conn = nullptr;
  };

  Instance& instance_for(const std::string& key) {
    return instances_[hash_key(key) % instances_.size()];
  }
  std::size_t instance_index(const std::string& key) {
    return hash_key(key) % instances_.size();
  }

  fabric::TcpConn* conn_for(int client_idx, std::size_t instance) {
    if (static_cast<std::size_t>(client_idx) >= clients_.size()) {
      clients_.resize(static_cast<std::size_t>(client_idx) + 1);
    }
    ClientSide& c = clients_[static_cast<std::size_t>(client_idx)];
    if (c.conns.size() < instances_.size()) c.conns.resize(instances_.size(), nullptr);
    if (c.conns[instance] == nullptr) {
      const NodeId cnode =
          cfg_.client_nodes[static_cast<std::size_t>(client_idx) % cfg_.client_nodes.size()];
      auto [client_end, server_end] = fabric_.tcp_connect(cnode, cfg_.server_node);
      c.conns[instance] = client_end;
      server_conns_.push_back(ServerConn{server_end});
      const int conn_id = static_cast<int>(server_conns_.size()) - 1;
      server_end->set_handler(
          actor_.guard([this, instance, conn_id](std::vector<std::byte> msg) {
            on_server_message(instance, conn_id, std::move(msg));
          }));
      client_end->set_handler(actor_.guard([this, client_idx](std::vector<std::byte> msg) {
        on_client_response(client_idx, std::move(msg));
      }));
    }
    return c.conns[instance];
  }

  void submit(int client_idx, proto::MsgType type, std::string key, std::string value,
              GetCb gcb, PutCb pcb) {
    const std::size_t inst = instance_index(key);
    fabric::TcpConn* conn = conn_for(client_idx, inst);
    ClientSide& c = clients_[static_cast<std::size_t>(client_idx)];
    c.get_cb = std::move(gcb);
    c.put_cb = std::move(pcb);
    proto::Request req;
    req.type = type;
    req.client = static_cast<ClientId>(client_idx);
    req.key = std::move(key);
    req.value = std::move(value);
    auto frame = proto::encode_request(req);
    sched_.after(cfg_.client_cost, actor_.guard([conn, frame = std::move(frame)] {
      conn->send(frame);
    }));
  }

  void on_server_message(std::size_t instance, int conn_id, std::vector<std::byte> msg) {
    auto req = proto::decode_request(msg);
    if (!req.has_value()) return;
    Instance& inst = instances_[instance];
    inst.queue.emplace_back(std::move(*req), conn_id);
    if (!inst.busy) {
      inst.busy = true;
      event_loop(instance);
    }
  }

  void event_loop(std::size_t instance) {
    Instance& inst = instances_[instance];
    if (inst.queue.empty()) {
      inst.busy = false;
      return;
    }
    auto [req, conn_id] = std::move(inst.queue.front());
    inst.queue.pop_front();
    const Duration cost =
        fabric_.cost().tcp_kernel_cost + cfg_.parse_cost + cfg_.store_op_cost +
        cfg_.respond_cost +
        static_cast<Duration>(cfg_.per_value_byte * static_cast<double>(req.value.size()));
    actor_.schedule_after(cost, [this, instance, conn_id, req = std::move(req)] {
      Instance& i2 = instances_[instance];
      proto::Response resp;
      resp.req_id = req.req_id;
      if (req.type == proto::MsgType::kGet) {
        auto it = i2.table.find(req.key);
        if (it == i2.table.end()) {
          resp.status = Status::kNotFound;
        } else {
          resp.value = it->second;
        }
      } else {
        i2.table[req.key] = req.value;
      }
      server_conns_[static_cast<std::size_t>(conn_id)].conn->send(proto::encode_response(resp));
      event_loop(instance);
    });
  }

  void on_client_response(int client_idx, std::vector<std::byte> msg) {
    auto resp = proto::decode_response(msg);
    if (!resp.has_value()) return;
    sched_.after(cfg_.client_cost, actor_.guard([this, client_idx, resp = std::move(*resp)] {
      ClientSide& c = clients_[static_cast<std::size_t>(client_idx)];
      if (c.get_cb) {
        auto cb = std::move(c.get_cb);
        c.get_cb = nullptr;
        cb(resp.status, resp.value);
      } else if (c.put_cb) {
        auto cb = std::move(c.put_cb);
        c.put_cb = nullptr;
        cb(resp.status);
      }
    }));
  }

  sim::Scheduler& sched_;
  fabric::Fabric& fabric_;
  BaselineConfig cfg_;
  sim::Actor actor_;
  std::vector<Instance> instances_;
  std::vector<ClientSide> clients_;
  std::vector<ServerConn> server_conns_;
};

}  // namespace

std::unique_ptr<BaselineStore> make_redis_like(sim::Scheduler& sched,
                                               fabric::Fabric& fabric, BaselineConfig cfg) {
  return std::make_unique<RedisLike>(sched, fabric, cfg);
}

}  // namespace hydra::baselines
