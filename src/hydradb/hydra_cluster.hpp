// HydraCluster: the top-level public API.
//
// Composes the whole middleware -- fabric, shards (with replication),
// clients, coordinator and SWAT -- into one simulated deployment, mirroring
// the paper's testbed layout (dedicated server machines, client machines,
// coordination machines). This is the entry point examples, tests and
// benches build on.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "client/client.hpp"
#include "cluster/coordinator.hpp"
#include "cluster/ring.hpp"
#include "hydradb/fast_failover.hpp"
#include "hydradb/migration.hpp"
#include "fabric/fabric.hpp"
#include "obs/plane.hpp"
#include "replication/primary.hpp"
#include "replication/secondary.hpp"
#include "server/pipelined_shard.hpp"
#include "server/shard.hpp"
#include "sim/scheduler.hpp"

namespace hydra::db {

struct ClusterOptions {
  // Topology (paper defaults: 1 server machine with 4 shards, 50 clients
  // on 5 machines, coordination on separate machines).
  int server_nodes = 1;
  int shards_per_node = 4;
  /// Overrides server_nodes * shards_per_node when positive (e.g. one shard
  /// whose secondaries live on otherwise idle machines, as in Fig 13).
  int total_shards = -1;
  int client_nodes = 5;
  int clients_per_node = 10;
  /// Place client processes on the server nodes instead of dedicated ones
  /// (the colocated setup of the Fig 12 scale-out experiment).
  bool colocate_clients = false;

  // Replication / HA.
  int replicas = 0;  ///< secondaries per primary shard
  replication::PrimaryConfig replication;
  bool enable_swat = true;
  int swat_members = 2;

  // Execution-model variants (Fig 10).
  server::ServerMode server_mode = server::ServerMode::kRdmaWritePolling;
  bool pipelined_servers = false;
  int pipeline_dispatchers = 2;
  int pipeline_workers = 2;
  bool client_rdma_read = true;
  /// One shared pointer cache per client node (section 4.2.4) versus an
  /// exclusive cache per client (the secure-isolation configuration).
  bool share_pointer_cache = true;
  /// QP multiplexing (DESIGN.md §10): all clients on one node share a
  /// single physical QP + SRQ-style shared request ring per destination
  /// shard, with lazy establishment and idle reclamation -- the connection
  /// scalability mode. Off = the legacy one-QP-per-client wiring.
  bool mux_connections = false;
  client::NodeMuxConfig mux;
  /// Ordered index + range scans (DESIGN.md §13). Forces
  /// shard_template.store.ordered_index on for every spawned shard (and
  /// secondary) so kScan and the one-sided leaf mirror work cluster-wide.
  /// Off (the default) keeps histories byte-identical to pre-feature builds.
  bool ordered_index = false;
  /// Fast failover (DESIGN.md §14): microsecond-scale crash promotion via
  /// ring-write suspicion deadlines, RDMA permission-revocation fencing and
  /// one-sided CAS ballots, with SWAT's session-timeout promotion demoted to
  /// the fallback. Off (the default) registers no arenas, writes no pulses
  /// and runs no rounds -- histories stay byte-identical to legacy builds.
  bool fast_failover = false;
  FastFailoverConfig fast;

  server::ShardConfig shard_template;
  client::ClientConfig client_template;
  fabric::CostModel cost;
  cluster::Coordinator::Config coordinator;

  /// Observability plane (caller-owned, must outlive the cluster). Null
  /// disables all instrumentation; enabling it must not change the
  /// simulation's virtual-time history (DESIGN.md §8).
  obs::Plane* obs = nullptr;
};

class SwatTeam;

class HydraCluster {
 public:
  explicit HydraCluster(ClusterOptions opts);
  ~HydraCluster();

  HydraCluster(const HydraCluster&) = delete;
  HydraCluster& operator=(const HydraCluster&) = delete;

  // --- access --------------------------------------------------------------
  [[nodiscard]] sim::Scheduler& scheduler() noexcept { return sched_; }
  [[nodiscard]] fabric::Fabric& fabric() noexcept { return fabric_; }
  [[nodiscard]] obs::Plane* obs() const noexcept { return opts_.obs; }
  [[nodiscard]] cluster::Coordinator& coordinator() noexcept { return *coordinator_; }
  [[nodiscard]] const ClusterOptions& options() const noexcept { return opts_; }

  [[nodiscard]] std::size_t shard_count() const noexcept { return primaries_.size(); }
  [[nodiscard]] server::Shard* shard(ShardId id) noexcept;
  [[nodiscard]] std::vector<client::Client*>& clients() noexcept { return client_ptrs_; }
  [[nodiscard]] std::vector<replication::SecondaryShard*> secondaries_of(ShardId id);
  [[nodiscard]] const cluster::ConsistentHashRing& ring() const noexcept { return ring_; }
  [[nodiscard]] const std::vector<NodeId>& server_nodes() const noexcept {
    return server_node_ids_;
  }

  /// The shard a key routes to (what clients resolve through the ring).
  [[nodiscard]] ShardId owner_of(std::string_view key) const;

  // --- synchronous convenience (examples / tests) --------------------------
  // Each helper drives the simulator until the operation's callback fires.
  Status put(std::string key, std::string value, int client_idx = 0);
  Status insert(std::string key, std::string value, int client_idx = 0);
  Status remove(std::string key, int client_idx = 0);
  std::optional<std::string> get(std::string key, int client_idx = 0,
                                 Status* status_out = nullptr);
  /// Ordered cross-shard range scan (requires options().ordered_index): up
  /// to `limit` entries starting at `start_key`, merged ascending across
  /// every live shard. Drives the simulator until the cursor completes.
  Status scan(std::string start_key, std::uint32_t limit,
              std::vector<std::pair<std::string, std::string>>* out, int client_idx = 0);

  /// Preloads records directly into the owning shards' stores (and their
  /// secondaries), bypassing the network -- the paper pre-generates and
  /// pre-loads its YCSB datasets the same way before measuring.
  void direct_load(std::string_view key, std::string_view value);

  // --- failure injection ----------------------------------------------------
  /// Crashes a primary shard process (actor + its heartbeats). With SWAT
  /// enabled, a secondary is promoted automatically.
  void crash_primary(ShardId id);
  /// Crashes one of a shard's secondaries (by index into secondaries_of).
  /// The primary is NOT told: it discovers the corpse through write errors
  /// or the ack deadline and quarantines the link, like a real deployment.
  void crash_secondary(ShardId id, int idx);
  /// Crashes a SWAT member (its /swat/ znode lingers until session timeout,
  /// which is exactly the leadership gap the pending-death set covers).
  void kill_swat_member(int idx);
  /// Chaos: abruptly kills the shared QP carrying client node
  /// `client_node_idx`'s mux traffic to `shard`, WITHOUT notifying the mux
  /// layer (models an async QP error). In-flight writes flush; endpoints
  /// notice via timeout, tear the channel down and re-establish lazily.
  /// False when no live channel exists.
  bool kill_mux_channel(int client_node_idx, ShardId shard);
  /// The shared-channel pool of a client node (nullptr when mux is off).
  [[nodiscard]] client::NodeMux* node_mux(int client_node_idx) noexcept;
  /// Mutes a primary's coordinator heartbeats for `d` of virtual time. Past
  /// the session timeout this fences the shard: the next heartbeat tick
  /// notices the expired session and the primary kills itself, so a
  /// suppressed-but-running primary can never split-brain with its
  /// promoted replica.
  void suppress_heartbeats(ShardId id, Duration d);
  [[nodiscard]] std::uint64_t failovers() const noexcept;
  /// Monotonic routing epoch, bumped (and published to /routing/version)
  /// on every successful promotion.
  [[nodiscard]] std::uint64_t routing_epoch() const noexcept { return routing_epoch_; }
  [[nodiscard]] SwatTeam* swat() noexcept { return swat_.get(); }
  [[nodiscard]] FastFailover* fast_failover() noexcept { return fast_.get(); }
  /// True while a fast-failover agreement round for `id` is in flight; SWAT
  /// consults this to defer legacy timeout promotion (double-promotion guard).
  [[nodiscard]] bool fast_round_active(ShardId id) const noexcept {
    return fast_ != nullptr && fast_->round_active(id);
  }
  /// True when `id` currently has a live primary whose coordinator session
  /// is also alive -- i.e. nothing about the shard needs reacting to. SWAT
  /// uses this to discard death events a fast promotion already resolved
  /// (the re-registered znode may still be in flight at redrain time).
  [[nodiscard]] bool primary_healthy(ShardId id) const noexcept;
  [[nodiscard]] std::uint32_t shard_generation(ShardId id) const noexcept {
    return id < primaries_.size() ? primaries_[id].generation : 0;
  }

  // --- elastic membership (DESIGN.md §9) -----------------------------------
  /// Spawns a brand-new shard (own machine, configured replica count) and
  /// starts migrating ~1/N of every existing shard's keys toward it while
  /// the cluster keeps serving. The shard joins the ring -- and the routing
  /// epoch is bumped -- only when the copy has been sealed and merged.
  /// Returns kInvalidShard when a migration is already running (one at a
  /// time) or the cluster runs pipelined comparator shards.
  ShardId add_shard_live();
  /// Starts draining every key off `victim` onto the surviving shards; the
  /// victim leaves the ring and is retired at commit. False when the shard
  /// cannot be drained (unknown, retired, last shard, migration running).
  bool drain_shard_live(ShardId victim);
  [[nodiscard]] bool migration_active() const noexcept {
    return migration_ != nullptr && migration_->active();
  }
  [[nodiscard]] const MigrationStats& migration_stats() const noexcept {
    return migration_->stats();
  }
  /// True when `id` was drained (or its add-migration aborted) and no
  /// longer participates in the cluster.
  [[nodiscard]] bool shard_retired(ShardId id) const noexcept {
    return id < primaries_.size() && primaries_[id].retired;
  }

  /// Runs the simulator for `d` of virtual time.
  void run_for(Duration d) { sched_.run_for(d); }

 private:
  friend class SwatTeam;
  friend class MigrationManager;
  friend class FastFailover;

  struct ShardSlot {
    std::unique_ptr<server::Shard> primary;
    std::unique_ptr<server::PipelinedShard> pipelined;
    NodeId node = kInvalidNode;
    std::vector<std::unique_ptr<replication::SecondaryShard>> secondaries;
    cluster::SessionId session = 0;
    std::uint32_t generation = 0;
    Time heartbeat_muted_until = 0;  ///< chaos: skip heartbeats until then
    /// When crash_primary last killed this slot's primary; promotion stamps
    /// the crash-to-recovery gap into the failover_gap histogram and clears
    /// it. 0 = no unrecovered crash.
    Time crashed_at = 0;
    /// Drained out of the cluster: never promoted, never reconnected.
    bool retired = false;
  };

  void spawn_primary(ShardId id, NodeId node, std::unique_ptr<core::KVStore> store);
  /// Mirrors live actor stats into the obs registry (exporter body).
  void export_metrics();
  /// Spawns one replacement secondary for `id`, attaches it to the current
  /// primary's log stream and bootstrap-copies the primary's store into it.
  void spawn_secondary(ShardId id);
  void start_heartbeat(ShardId id);
  void wire_client(client::Client& c);
  bool connect_client(ShardId shard, client::Client& c, fabric::RemoteAddr resp_slot,
                      std::uint32_t resp_bytes, std::uint32_t window,
                      client::ShardConnection* out);
  /// Invoked by SWAT (legacy timeout path) and FastFailover (agreement
  /// rounds, which pass the ballot-winning replica as `preferred`). Returns
  /// false when there is nothing to do (primary still alive -- duplicate
  /// event) or nothing to promote.
  bool promote_secondary(ShardId id, replication::SecondaryShard* preferred = nullptr);
  /// Epoch-fencing predicate every primary's owner filter consults: the
  /// *live* ring owns the key and no migration seal excludes it.
  [[nodiscard]] bool shard_owns(ShardId id, std::uint64_t key_hash) const;
  /// Permanently removes a shard from the cluster (drain commit / add
  /// abort): closes its session, reaps its znode, buries its processes.
  void retire_shard(ShardId id);

  ClusterOptions opts_;
  sim::Scheduler sched_;
  fabric::Fabric fabric_;
  std::vector<NodeId> server_node_ids_;
  std::vector<NodeId> client_node_ids_;
  std::unique_ptr<cluster::Coordinator> coordinator_;
  std::unique_ptr<SwatTeam> swat_;
  std::unique_ptr<MigrationManager> migration_;
  std::unique_ptr<FastFailover> fast_;
  cluster::ConsistentHashRing ring_;
  std::vector<ShardSlot> primaries_;
  std::uint64_t routing_epoch_ = 0;
  std::vector<std::unique_ptr<client::Client>> clients_;
  std::vector<client::Client*> client_ptrs_;
  std::map<NodeId, std::shared_ptr<client::Client::RemotePtrCache>> node_caches_;
  /// Per-client-node shared QP channel pools (mux_connections mode).
  std::map<NodeId, std::unique_ptr<client::NodeMux>> node_muxes_;
  /// Cached one-sided read QPs for hot-key replica reads when muxing is
  /// off: one per (client node, target node), reopened if the pair dies.
  std::map<std::pair<NodeId, NodeId>, fabric::QueuePair*> read_qps_;
  /// Crashed actors: kept allocated so in-flight fabric ops referencing
  /// their (revoked) regions never touch freed memory.
  std::vector<std::unique_ptr<sim::Actor>> graveyard_;
  /// Self-rescheduling heartbeat closures (one per spawned primary); owned
  /// here because pending events reference them by pointer.
  std::vector<std::unique_ptr<std::function<void()>>> heartbeats_;
};

}  // namespace hydra::db
