#include "hydradb/swat.hpp"

#include <string>

#include "common/logging.hpp"
#include "hydradb/hydra_cluster.hpp"

namespace hydra::db {
namespace {

/// Extracts the shard id from "/shards/<id>/primary". The path comes out of
/// the coordinator tree, which any session can populate -- parse it like
/// untrusted input instead of letting std::stoul throw on garbage.
/// kInvalidShard on malformed input.
ShardId parse_shard_path(const std::string& path) {
  constexpr std::string_view kPrefix = "/shards/";
  if (path.compare(0, kPrefix.size(), kPrefix) != 0) return kInvalidShard;
  const std::size_t start = kPrefix.size();
  const std::size_t end = path.find('/', start);
  const std::string num =
      path.substr(start, end == std::string::npos ? std::string::npos : end - start);
  if (num.empty() || num.size() > 9 ||
      num.find_first_not_of("0123456789") != std::string::npos) {
    return kInvalidShard;
  }
  return static_cast<ShardId>(std::stoul(num));
}

}  // namespace

SwatTeam::SwatTeam(HydraCluster& cluster, int members) : cluster_(cluster) {
  for (int i = 0; i < members; ++i) {
    members_.push_back(std::make_unique<Member>(*this, i));
  }
}

void SwatTeam::kill_member(int idx) {
  if (idx >= 0 && idx < static_cast<int>(members_.size())) members_[idx]->kill();
}

int SwatTeam::leader() const {
  // Leadership = lowest-index member whose ephemeral znode still exists.
  for (const auto& m : members_) {
    if (cluster_.coordinator().exists("/swat/" + std::to_string(m->index()))) {
      return m->index();
    }
  }
  return -1;
}

bool SwatTeam::handle_primary_death(const std::string& path) {
  const ShardId id = parse_shard_path(path);
  if (id == kInvalidShard) {
    HYDRA_WARN("SWAT: ignoring malformed shard znode path '%s'", path.c_str());
    return false;
  }
  HYDRA_INFO("SWAT: detected death of shard %u primary, reacting", id);
  if (cluster_.obs() != nullptr) {
    cluster_.obs()->trace(cluster_.scheduler().now(), kInvalidNode,
                          obs::TraceKind::kPrimaryDeathObserved, id);
  }
  if (!cluster_.promote_secondary(id)) return false;
  ++failovers_;
  return true;
}

void SwatTeam::drain_pending() {
  const auto pending = std::move(pending_);
  pending_.clear();
  for (const auto& path : pending) {
    // A successful promotion re-registers the znode; skip those.
    if (cluster_.coordinator().exists(path)) continue;
    // Double-promotion guard (DESIGN.md §14): while a fast-failover
    // agreement round runs for this shard -- e.g. the session expired *mid
    // round* -- the legacy timeout promotion must not race it. Keep the
    // event pending; the round's completion re-drains us, at which point a
    // successful fast promotion makes this a duplicate event and an aborted
    // round falls back to the path below.
    const ShardId id = parse_shard_path(path);
    if (id != kInvalidShard && cluster_.fast_round_active(id)) {
      pending_.insert(path);
      continue;
    }
    // A fast round that won while this event sat deferred re-registers the
    // znode, but that create is a coordinator op with latency and the
    // round-end redrain can run before it lands -- the exists() probe above
    // would miss it. The shard itself is the ground truth: a live primary
    // with a live session means the death this event reported is already
    // handled, so the event is stale and dropped rather than re-queued.
    if (id != kInvalidShard && cluster_.primary_healthy(id)) continue;
    handle_primary_death(path);
  }
}

SwatTeam::Member::Member(SwatTeam& team, int idx)
    : sim::Actor(team.cluster_.scheduler(), "swat-" + std::to_string(idx)),
      team_(team),
      idx_(idx) {
  cluster::Coordinator& coord = team_.cluster_.coordinator();
  session_ = coord.open_session(name());
  coord.create("/swat/" + std::to_string(idx_), "member", session_);
  coord.watch_prefix("/shards/",
                     [this](const std::string& path, cluster::WatchEvent event) {
                       if (alive()) on_shard_event(path, event);
                     });
  coord.watch_prefix("/swat/",
                     [this](const std::string& path, cluster::WatchEvent event) {
                       if (alive()) on_swat_event(path, event);
                     });
  heartbeat_loop();
}

void SwatTeam::Member::heartbeat_loop() {
  team_.cluster_.coordinator().heartbeat(session_);
  schedule_after(team_.cluster_.options().coordinator.session_timeout / 4,
                 [this] { heartbeat_loop(); });
}

void SwatTeam::Member::on_shard_event(const std::string& path,
                                      cluster::WatchEvent event) {
  if (event != cluster::WatchEvent::kDeleted) return;
  if (path.find("/primary") == std::string::npos) return;
  // Record first, react second: if the recorded leader is already a corpse
  // (its znode outlives it until session timeout), the event stays pending
  // and is re-drained when the dead leader's znode is reaped.
  team_.pending_.insert(path);
  // Only the current leader reacts; followers observe the same event but
  // defer (split-brain is prevented by the coordinator's single view).
  if (team_.leader() != idx_) return;
  team_.drain_pending();
}

void SwatTeam::Member::on_swat_event(const std::string& path,
                                     cluster::WatchEvent event) {
  (void)path;
  if (event != cluster::WatchEvent::kDeleted) return;
  // A member died; if leadership just passed to us, act on everything the
  // old leader left behind.
  if (team_.leader() != idx_) return;
  team_.drain_pending();
}

}  // namespace hydra::db
