#include "hydradb/swat.hpp"

#include <string>

#include "common/logging.hpp"
#include "hydradb/hydra_cluster.hpp"

namespace hydra::db {

SwatTeam::SwatTeam(HydraCluster& cluster, int members) : cluster_(cluster) {
  for (int i = 0; i < members; ++i) {
    members_.push_back(std::make_unique<Member>(*this, i));
  }
}

void SwatTeam::kill_member(int idx) {
  if (idx >= 0 && idx < static_cast<int>(members_.size())) members_[idx]->kill();
}

int SwatTeam::leader() const {
  // Leadership = lowest-index member whose ephemeral znode still exists.
  for (const auto& m : members_) {
    if (cluster_.coordinator().exists("/swat/" + std::to_string(m->index()))) {
      return m->index();
    }
  }
  return -1;
}

void SwatTeam::handle_primary_death(const std::string& path) {
  // Extract the shard id from "/shards/<id>/primary".
  const std::size_t start = std::string("/shards/").size();
  const std::size_t end = path.find('/', start);
  const ShardId id = static_cast<ShardId>(std::stoul(path.substr(start, end - start)));
  ++failovers_;
  HYDRA_INFO("SWAT: detected death of shard %u primary, reacting", id);
  cluster_.promote_secondary(id);
}

SwatTeam::Member::Member(SwatTeam& team, int idx)
    : sim::Actor(team.cluster_.scheduler(), "swat-" + std::to_string(idx)),
      team_(team),
      idx_(idx) {
  cluster::Coordinator& coord = team_.cluster_.coordinator();
  session_ = coord.open_session(name());
  coord.create("/swat/" + std::to_string(idx_), "member", session_);
  coord.watch_prefix("/shards/",
                     [this](const std::string& path, cluster::WatchEvent event) {
                       if (alive()) on_shard_event(path, event);
                     });
  heartbeat_loop();
}

void SwatTeam::Member::heartbeat_loop() {
  team_.cluster_.coordinator().heartbeat(session_);
  schedule_after(team_.cluster_.options().coordinator.session_timeout / 4,
                 [this] { heartbeat_loop(); });
}

void SwatTeam::Member::on_shard_event(const std::string& path,
                                      cluster::WatchEvent event) {
  if (event != cluster::WatchEvent::kDeleted) return;
  if (path.find("/primary") == std::string::npos) return;
  // Only the current leader reacts; followers observe the same event but
  // defer (split-brain is prevented by the coordinator's single view).
  if (team_.leader() != idx_) return;
  team_.handle_primary_death(path);
}

}  // namespace hydra::db
