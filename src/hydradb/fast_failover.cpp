#include "hydradb/fast_failover.hpp"

#include "common/logging.hpp"
#include "hydradb/hydra_cluster.hpp"
#include "hydradb/swat.hpp"

namespace hydra::db {

FastFailover::FastFailover(HydraCluster& cluster, FastFailoverConfig cfg)
    : cluster_(cluster), cfg_(cfg) {}

void FastFailover::attach_secondary(ShardId id, replication::SecondaryShard& sec) {
  const Duration deadline =
      cfg_.pulse_interval * static_cast<Duration>(cfg_.missed_pulses);
  sec.enable_suspicion(
      deadline, [this, id](replication::SecondaryShard& s) { on_suspect(id, s); });
}

void FastFailover::on_suspect(ShardId id, replication::SecondaryShard& sec) {
  if (!sec.alive()) return;
  auto& slots = cluster_.primaries_;
  if (id >= slots.size() || slots[id].retired) return;
  auto& slot = slots[id];

  ++rounds_started_;
  ++active_rounds_[id];
  auto r = std::make_shared<Round>();
  r->shard = id;
  r->candidate = &sec;
  r->generation = slot.generation;
  // Fence first, ask questions later: revoke the suspected primary's write
  // permission to EVERY live replica ring. Once all revocations apply, no
  // replicated write can complete, so no acknowledgement can escape --
  // fail-stop holds even if the suspicion was wrong (the primary was merely
  // slow, or chaos ate its pulses). Availability costs a promotion; safety
  // costs nothing.
  for (auto& s : slot.secondaries) {
    if (s->alive()) r->targets.push_back(s.get());
  }
  if (r->targets.empty()) {
    abort_round(r);
    return;
  }
  HYDRA_INFO("fast-failover: shard %u suspected by node %u; revoking %zu ring rkeys",
             id, sec.node(), r->targets.size());
  r->revocations_left = r->targets.size();
  for (auto* t : r->targets) revoke_target(r, t, 1);
}

void FastFailover::revoke_target(const std::shared_ptr<Round>& r,
                                 replication::SecondaryShard* target, int attempt) {
  const std::uint32_t rkey = target->ring_mr()->rkey();
  cluster_.fabric_.revoke_rkey(
      target->node(), rkey, cfg_.revoke_latency,
      [this, r, target, attempt](bool confirmed) {
        if (r->done) return;
        if (confirmed) {
          one_revocation_done(r);
          return;
        }
        if (!target->alive()) {
          // A dead replica cannot receive (let alone acknowledge) a write;
          // its ring needs no fencing. Count it revoked.
          one_revocation_done(r);
          return;
        }
        if (attempt >= cfg_.max_revoke_attempts) {
          // A live ring we cannot confirm fenced: promotion would risk a
          // not-actually-fenced primary acking writes behind our back.
          // Abort; the legacy session-timeout path remains armed.
          HYDRA_WARN("fast-failover: shard %u revocation unconfirmed after %d "
                     "attempts; aborting round",
                     r->shard, attempt);
          abort_round(r);
          return;
        }
        // Torn delivery: the verb is idempotent, so re-revoking a region the
        // lost confirmation already revoked simply confirms it.
        revoke_target(r, target, attempt + 1);
      });
}

void FastFailover::one_revocation_done(const std::shared_ptr<Round>& r) {
  if (--r->revocations_left == 0) cast_ballot(r);
}

void FastFailover::cast_ballot(const std::shared_ptr<Round>& r) {
  auto& slot = cluster_.primaries_[r->shard];
  if (slot.retired || slot.generation != r->generation || !r->candidate->alive()) {
    abort_round(r);
    return;
  }
  // The decision arena is the first live replica's (slot order is shared
  // cluster state, so concurrent candidate rounds of one generation resolve
  // to the same arena and the CAS serializes them; cross-generation races
  // are caught by the generation check at completion).
  replication::SecondaryShard* decider = nullptr;
  for (auto& s : slot.secondaries) {
    if (s->alive()) {
      decider = s.get();
      break;
    }
  }
  if (decider == nullptr) {
    abort_round(r);
    return;
  }
  fabric::MemoryRegion* arena = decider->failover_arena();
  const std::uint64_t token = static_cast<std::uint64_t>(r->candidate->node()) + 1;
  auto [cq, sq] = cluster_.fabric_.connect(r->candidate->node(), decider->node());
  (void)sq;
  if (cluster_.obs() != nullptr) {
    cluster_.obs()->trace(cluster_.sched_.now(), r->candidate->node(),
                          obs::TraceKind::kBallotCast, r->shard, token, arena->rkey());
  }
  cq->post_cas(
      fabric::RemoteAddr{arena->rkey(), replication::SecondaryShard::kBallotOffset},
      /*compare=*/0, /*swap=*/token, /*wr_id=*/0,
      [this, r, cq, token](const fabric::Completion& wc) {
        cluster_.fabric_.disconnect(cq);
        if (r->done) return;
        if (wc.status != fabric::WcStatus::kSuccess) {
          // Decision replica died (or chaos flushed the atomic) mid-round.
          abort_round(r);
          return;
        }
        if (wc.old_value != 0 && wc.old_value != token) {
          ++ballots_lost_;
          if (cluster_.obs() != nullptr) {
            cluster_.obs()->trace(cluster_.sched_.now(), r->candidate->node(),
                                  obs::TraceKind::kBallotLost, r->shard, token,
                                  wc.old_value);
          }
          // The winner's round performs the promotion; just step aside.
          r->done = true;
          end_round(r->shard);
          return;
        }
        if (cluster_.obs() != nullptr) {
          cluster_.obs()->trace(cluster_.sched_.now(), r->candidate->node(),
                                obs::TraceKind::kBallotWon, r->shard, token);
        }
        complete_round(r);
      });
}

void FastFailover::complete_round(const std::shared_ptr<Round>& r) {
  r->done = true;
  auto& slot = cluster_.primaries_[r->shard];
  if (slot.retired || slot.generation != r->generation || !r->candidate->alive()) {
    ++rounds_aborted_;
    end_round(r->shard);
    return;
  }
  // A still-running primary here means the suspicion was wrong about the
  // *process* but the fencing already happened: its ring rkeys are revoked,
  // so it cannot complete another replicated write -- it is operationally
  // dead. Kill it before promoting so promote_secondary's duplicate-event
  // check sees a corpse rather than refusing and stranding the shard.
  if (slot.primary != nullptr && slot.primary->alive()) {
    HYDRA_WARN("fast-failover: shard %u primary still running but fenced; killing",
               r->shard);
    if (cluster_.obs() != nullptr) {
      cluster_.obs()->trace(cluster_.sched_.now(), kInvalidNode, obs::TraceKind::kFenced,
                            r->shard, 2);
    }
    slot.primary->kill();
  }
  if (cluster_.promote_secondary(r->shard, r->candidate)) {
    ++promotions_;
  } else {
    ++rounds_aborted_;
  }
  end_round(r->shard);
}

void FastFailover::abort_round(const std::shared_ptr<Round>& r) {
  r->done = true;
  ++rounds_aborted_;
  end_round(r->shard);
}

void FastFailover::end_round(ShardId id) {
  auto it = active_rounds_.find(id);
  if (it != active_rounds_.end() && --it->second <= 0) active_rounds_.erase(it);
  // Release the double-promotion guard: any primary-death znode deletion
  // SWAT deferred while this round ran is re-drained now. If we promoted,
  // the re-drain sees a live primary (or a re-registered znode) and no-ops;
  // if we aborted, the legacy path takes over from here.
  if (cluster_.swat_ != nullptr) cluster_.swat_->redrain();
}

}  // namespace hydra::db
