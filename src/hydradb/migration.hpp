// MigrationManager: the coordinator-driven executor of live shard
// migrations (DESIGN.md §9).
//
// Protocol phases, per migration:
//
//   prepare    begin_add()/begin_drain() freezes a MigrationPlan (before and
//              after ring copies) and builds one *flow* per (src, dst) pair:
//              a staging SecondaryShard ("sink") on the destination's node
//              plus a ReplicationPrimary ("link") running inside the source
//              shard's actor, reusing the record-ring transfer machinery --
//              retransmit-in-place, cumulative acks, backlog -- for the bulk
//              copy.
//   copy       each manager tick posts a bounded batch of snapshot keys down
//              the link, re-reading the source store at post time. The
//              source keeps serving the moving range; every write it applies
//              there is *also* forwarded down the matching flow
//              (dual-ownership catch-up), and the FIFO ring makes the last
//              write win at the sink.
//   seal       once every snapshot is fully posted, sources start answering
//              kWrongOwner for moving keys (no new writes can race) while
//              in-flight ring records settle.
//   commit     sinks drain + merge into the destination primaries (and their
//              replicas), the live ring is mutated, the routing epoch is
//              bumped and published -- which invalidates every cached remote
//              pointer into the moved ranges -- and, for a drain, the
//              subject shard is retired.
//
// Crash tolerance: a source crash invalidates its flow (the link's pending
// completions die with the shard actor); the flow is rebuilt from scratch --
// fresh sink, fresh link under the promoted primary, fresh snapshot -- so a
// key removed during the gap can never be resurrected from a stale sink. A
// destination crash just delays the commit until SWAT promotes a replica.
// A migration that stops making progress (e.g. a shard with no promotable
// replica) aborts without mutating the ring.
//
// The manager schedules events only while a migration is active, so idle
// clusters keep byte-identical event histories with or without it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/migration.hpp"
#include "obs/trace.hpp"
#include "proto/messages.hpp"
#include "replication/primary.hpp"
#include "replication/secondary.hpp"
#include "sim/actor.hpp"

namespace hydra::db {

class HydraCluster;

struct MigrationStats {
  std::uint64_t started = 0;
  std::uint64_t completed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t flow_restarts = 0;  ///< flows rebuilt after a source crash
  std::uint64_t keys_moved = 0;     ///< keys merged into destinations
  std::uint64_t bytes_moved = 0;    ///< key+value bytes of those merges
  std::uint64_t forwarded = 0;      ///< dual-ownership records forwarded
};

class MigrationManager : public sim::Actor {
 public:
  struct Config {
    Duration tick = 200 * kMicrosecond;  ///< protocol pump interval
    int copy_batch = 16;                 ///< snapshot records posted per tick
    /// Abort when no flow makes observable progress for this long.
    Duration stall_timeout = 30 * kSecond;
  };

  explicit MigrationManager(HydraCluster& cluster);
  MigrationManager(HydraCluster& cluster, Config cfg);

  /// Starts migrating ~1/N of every existing shard's keys toward `subject`
  /// (already spawned, not yet in the ring). False if a migration is active.
  bool begin_add(ShardId subject);
  /// Starts draining every key off `subject` (in the ring, primary alive).
  bool begin_drain(ShardId subject);

  [[nodiscard]] bool active() const noexcept { return phase_ != Phase::kIdle; }
  /// True when the seal is up and `shard` must reject `key_hash`: it is the
  /// pre-migration owner of a moving key whose new owner is about to be
  /// committed. Consulted by the owner filter on every request.
  [[nodiscard]] bool sealed_rejects(ShardId shard, std::uint64_t key_hash) const {
    return sealed_ && plan_.moving_from(shard, key_hash);
  }
  [[nodiscard]] const MigrationStats& stats() const noexcept { return stats_; }

 private:
  enum class Phase : std::uint8_t { kIdle, kCopy, kSealWait };

  /// One (src, dst) transfer lane. `sink` and `link` are rebuilt wholesale
  /// when the source crashes; retired instances stay allocated in
  /// `retired_` because in-flight fabric ops may still reference them.
  struct Flow {
    ShardId src = kInvalidShard;
    ShardId dst = kInvalidShard;
    std::uint32_t src_gen = 0;  ///< source generation the flow was built under
    bool started = false;       ///< sink/link built, hook installed, snapshot taken
    bool copied = false;        ///< snapshot fully posted (kMigrationCopied traced)
    std::vector<std::string> keys;  ///< moving-key snapshot
    std::size_t next = 0;           ///< snapshot cursor
    std::uint64_t posted = 0;       ///< records sent down the link (copy + forward)
    /// Records posted whose ring write has not completed yet. shared_ptr so
    /// completions of a retired flow decrement a counter nothing reads.
    std::shared_ptr<std::uint64_t> inflight;
    std::unique_ptr<replication::SecondaryShard> sink;
    std::unique_ptr<replication::ReplicationPrimary> link;
  };

  bool begin(cluster::MigrationPlan plan);
  void tick();
  void start_flow(Flow& flow);
  void invalidate_flow(Flow& flow);
  void pump_flow(Flow& flow);
  /// Dual-ownership hook body: routes a write applied at `src` to the flow
  /// whose destination owns the key post-migration.
  void forward_from(ShardId src, std::uint64_t key_hash, proto::RepRecord rec);
  void seal();
  void finalize();
  void abort(std::uint64_t reason);
  void retire_flow(Flow& flow);
  [[nodiscard]] bool flow_settled(const Flow& flow) const;
  void trace(obs::TraceKind kind, std::uint64_t shard, std::uint64_t a = 0,
             std::uint64_t b = 0);

  HydraCluster& cluster_;
  Config cfg_;
  Phase phase_ = Phase::kIdle;
  bool sealed_ = false;
  cluster::MigrationPlan plan_;
  std::vector<Flow> flows_;
  /// Per-migration merge totals (reported in kMigrationDone).
  std::uint64_t run_keys_ = 0;
  std::uint64_t run_bytes_ = 0;
  /// Stall detection: progress signature + ticks it has been unchanged.
  std::uint64_t progress_sig_ = 0;
  std::uint64_t stalled_ticks_ = 0;
  /// Sinks/links of finished or rebuilt flows: dead but still addressable.
  std::vector<std::unique_ptr<replication::SecondaryShard>> retired_sinks_;
  std::vector<std::unique_ptr<replication::ReplicationPrimary>> retired_links_;
  MigrationStats stats_;
};

}  // namespace hydra::db
