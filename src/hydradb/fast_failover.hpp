// Fast failover (DESIGN.md §14): RDMA-native fail-stop agreement.
//
// Replaces heartbeat-timeout promotion on the detection/agreement path.
// Replicas detect primary silence through missed ring-write deadlines (the
// primary pulses an incrementing word into each replica's failover arena
// between real ring writes), then run a *permission-revocation round*: the
// suspecting replica revokes the suspected primary's write access to every
// replica record ring, so a fenced primary physically cannot complete -- and
// therefore cannot acknowledge -- another replicated write, regardless of
// how wrong the suspicion was. Only then do candidates agree on a promotion
// winner with a one-sided CAS ballot in the decision replica's arena. The
// coordinator (SWAT) keeps membership/epoch publication duty; its legacy
// timeout promotion stays armed as the fallback when a round aborts.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "replication/secondary.hpp"

namespace hydra::db {

class HydraCluster;

struct FastFailoverConfig {
  /// Primary liveness pulse period (fans into PrimaryConfig::pulse_interval).
  Duration pulse_interval = 50 * kMicrosecond;
  /// Ring-write deadline = pulse_interval * missed_pulses.
  int missed_pulses = 4;
  /// One-way latency of the MR-permission revocation verb.
  Duration revoke_latency = 3 * kMicrosecond;
  /// Unconfirmed revocations retried this many times before the round
  /// aborts and the legacy session-timeout path takes over.
  int max_revoke_attempts = 3;
};

/// Per-cluster manager: arms suspicion deadlines on every secondary and runs
/// the suspicion -> revoke -> ballot -> promote rounds.
class FastFailover {
 public:
  FastFailover(HydraCluster& cluster, FastFailoverConfig cfg);

  /// Arms the ring-write suspicion deadline on a (newly attached) replica.
  void attach_secondary(ShardId id, replication::SecondaryShard& sec);

  /// True while any agreement round for `id` is in flight -- SWAT defers
  /// legacy timeout promotion for the shard until the round ends (the
  /// double-promotion guard).
  [[nodiscard]] bool round_active(ShardId id) const noexcept {
    return active_rounds_.count(id) != 0;
  }

  [[nodiscard]] std::uint64_t promotions() const noexcept { return promotions_; }
  [[nodiscard]] std::uint64_t rounds_started() const noexcept { return rounds_started_; }
  [[nodiscard]] std::uint64_t rounds_aborted() const noexcept { return rounds_aborted_; }
  [[nodiscard]] std::uint64_t ballots_lost() const noexcept { return ballots_lost_; }

 private:
  struct Round {
    ShardId shard = 0;
    replication::SecondaryShard* candidate = nullptr;
    /// Shard generation at suspicion time; a mismatch at any later step
    /// means someone else already promoted -- the round is stale and aborts.
    std::uint32_t generation = 0;
    std::vector<replication::SecondaryShard*> targets;
    std::size_t revocations_left = 0;
    bool done = false;  ///< aborted or completed; late completions no-op
  };

  void on_suspect(ShardId id, replication::SecondaryShard& sec);
  void revoke_target(const std::shared_ptr<Round>& r,
                     replication::SecondaryShard* target, int attempt);
  void one_revocation_done(const std::shared_ptr<Round>& r);
  void cast_ballot(const std::shared_ptr<Round>& r);
  void complete_round(const std::shared_ptr<Round>& r);
  void abort_round(const std::shared_ptr<Round>& r);
  /// Decrements the shard's active-round count and re-drains SWAT's pending
  /// deaths (legacy promotions deferred by the double-promotion guard).
  void end_round(ShardId id);

  HydraCluster& cluster_;
  FastFailoverConfig cfg_;
  /// Concurrent round count per shard (both replicas may suspect at once).
  std::map<ShardId, int> active_rounds_;
  std::uint64_t promotions_ = 0;
  std::uint64_t rounds_started_ = 0;
  std::uint64_t rounds_aborted_ = 0;
  std::uint64_t ballots_lost_ = 0;
};

}  // namespace hydra::db
