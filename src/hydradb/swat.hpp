// SWAT -- the Status Watcher and reAct Team (paper section 5.1).
//
// SWAT members watch the coordinator's /shards/ subtree. When a primary's
// ephemeral znode disappears (its heartbeat session expired after a crash),
// the current SWAT leader selects a secondary, promotes it to primary,
// updates the routing metadata, and re-wires replication. SWAT leadership
// itself is ephemeral: members hold /swat/<idx> znodes and the lowest
// surviving index acts; killing the leader hands the role to the next one.
//
// Leadership gap handling: a crashed leader's /swat/ znode survives until
// its session times out, so a primary-death event can arrive while the
// recorded leader is a corpse. Every member therefore records the event in
// the team's pending set, and the set is re-drained whenever a /swat/ znode
// dies -- the member that just inherited leadership reacts to deletions the
// old leader never got to handle.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/coordinator.hpp"
#include "sim/actor.hpp"

namespace hydra::db {

class HydraCluster;

class SwatTeam {
 public:
  SwatTeam(HydraCluster& cluster, int members);

  /// Crash-injects a SWAT member; the remaining members keep reacting.
  void kill_member(int idx);

  [[nodiscard]] std::uint64_t failovers() const noexcept { return failovers_; }
  [[nodiscard]] int leader() const;
  /// Primary-death events observed but not yet acted on by any leader.
  [[nodiscard]] std::size_t pending_deaths() const noexcept { return pending_.size(); }

  /// Re-drains the pending-death set. Called by the fast-failover plane when
  /// an agreement round ends: any legacy promotion deferred by the
  /// double-promotion guard either no-ops (the round promoted; the znode is
  /// re-registered or the new primary is alive) or proceeds as the fallback
  /// (the round aborted).
  void redrain() { drain_pending(); }

 private:
  class Member : public sim::Actor {
   public:
    Member(SwatTeam& team, int idx);
    void on_shard_event(const std::string& path, cluster::WatchEvent event);
    void on_swat_event(const std::string& path, cluster::WatchEvent event);
    [[nodiscard]] int index() const noexcept { return idx_; }

   private:
    void heartbeat_loop();
    SwatTeam& team_;
    int idx_;
    cluster::SessionId session_;
  };

  /// Acts on one recorded death; returns whether a promotion happened.
  bool handle_primary_death(const std::string& path);
  /// Replays every pending death (skipping shards whose primary znode has
  /// been re-registered by a successful promotion meanwhile).
  void drain_pending();

  HydraCluster& cluster_;
  std::vector<std::unique_ptr<Member>> members_;
  std::set<std::string> pending_;
  std::uint64_t failovers_ = 0;
};

}  // namespace hydra::db
