// SWAT -- the Status Watcher and reAct Team (paper section 5.1).
//
// SWAT members watch the coordinator's /shards/ subtree. When a primary's
// ephemeral znode disappears (its heartbeat session expired after a crash),
// the current SWAT leader selects a secondary, promotes it to primary,
// updates the routing metadata, and re-wires replication. SWAT leadership
// itself is ephemeral: members hold /swat/<idx> znodes and the lowest
// surviving index acts; killing the leader hands the role to the next one.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/coordinator.hpp"
#include "sim/actor.hpp"

namespace hydra::db {

class HydraCluster;

class SwatTeam {
 public:
  SwatTeam(HydraCluster& cluster, int members);

  /// Crash-injects a SWAT member; the remaining members keep reacting.
  void kill_member(int idx);

  [[nodiscard]] std::uint64_t failovers() const noexcept { return failovers_; }
  [[nodiscard]] int leader() const;

 private:
  class Member : public sim::Actor {
   public:
    Member(SwatTeam& team, int idx);
    void on_shard_event(const std::string& path, cluster::WatchEvent event);
    [[nodiscard]] int index() const noexcept { return idx_; }

   private:
    void heartbeat_loop();
    SwatTeam& team_;
    int idx_;
    cluster::SessionId session_;
  };

  void handle_primary_death(const std::string& path);

  HydraCluster& cluster_;
  std::vector<std::unique_ptr<Member>> members_;
  std::uint64_t failovers_ = 0;
};

}  // namespace hydra::db
