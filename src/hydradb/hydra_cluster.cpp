#include "hydradb/hydra_cluster.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/hash.hpp"
#include "common/logging.hpp"
#include "hydradb/swat.hpp"

namespace hydra::db {
namespace {
constexpr std::uint64_t kSyncStepLimit = 50'000'000;  // safety net for sync helpers
}

HydraCluster::HydraCluster(ClusterOptions opts)
    : opts_(std::move(opts)), fabric_(sched_, opts_.cost) {
  // Ordered-index opt-in fans out through the shard template so primaries,
  // secondaries (whose stores may be promoted), and migration-spawned shards
  // all agree on whether the index exists.
  if (opts_.ordered_index) opts_.shard_template.store.ordered_index = true;
  // Fast-failover opt-in fans into the replication template: a positive
  // pulse interval is what makes primaries register (and pulse) the
  // replicas' failover arenas. Off, nothing new is registered and histories
  // stay byte-identical to legacy builds.
  if (opts_.fast_failover) opts_.replication.pulse_interval = opts_.fast.pulse_interval;
  fabric_.set_obs(opts_.obs);
  if (opts_.obs != nullptr) {
    opts_.obs->add_exporter(this, [this] { export_metrics(); });
  }
  // --- machines -------------------------------------------------------------
  for (int n = 0; n < opts_.server_nodes; ++n) {
    server_node_ids_.push_back(fabric_.add_node("server-" + std::to_string(n)).id());
  }
  if (opts_.colocate_clients) {
    client_node_ids_ = server_node_ids_;
  } else {
    for (int n = 0; n < opts_.client_nodes; ++n) {
      client_node_ids_.push_back(fabric_.add_node("client-" + std::to_string(n)).id());
    }
  }
  fabric_.add_node("coordination");  // the ZooKeeper/SWAT machines
  coordinator_ = std::make_unique<cluster::Coordinator>(sched_, opts_.coordinator);
  // Persistent znode carrying the routing epoch; promotions set_data() it,
  // which would silently fail if nothing ever created the node.
  coordinator_->create("/routing/version", "0");

  // Created before the shard loop so every initial secondary gets its
  // suspicion deadline armed at attach time.
  if (opts_.fast_failover) fast_ = std::make_unique<FastFailover>(*this, opts_.fast);

  // --- shards ---------------------------------------------------------------
  const int total_shards = opts_.total_shards > 0
                               ? opts_.total_shards
                               : opts_.server_nodes * opts_.shards_per_node;
  primaries_.resize(static_cast<std::size_t>(total_shards));
  for (int s = 0; s < total_shards; ++s) {
    const auto id = static_cast<ShardId>(s);
    const NodeId node = server_node_ids_[static_cast<std::size_t>(s) % server_node_ids_.size()];
    primaries_[id].node = node;
    spawn_primary(id, node, nullptr);
    ring_.add_shard(id);

    // Secondaries live on *other* server nodes when possible (a replica on
    // the same machine would not survive a machine loss).
    for (int r = 0; r < opts_.replicas; ++r) {
      NodeId sec_node = node;
      if (server_node_ids_.size() > 1) {
        sec_node = server_node_ids_[(static_cast<std::size_t>(s) + 1 + static_cast<std::size_t>(r)) %
                                    server_node_ids_.size()];
      }
      replication::SecondaryConfig sec_cfg;
      sec_cfg.primary_shard = id;
      sec_cfg.store = opts_.shard_template.store;
      auto secondary = std::make_unique<replication::SecondaryShard>(sched_, fabric_, sec_node, sec_cfg);
      primaries_[id].primary->replicator()->add_secondary(*secondary);
      if (fast_ != nullptr) fast_->attach_secondary(id, *secondary);
      primaries_[id].secondaries.push_back(std::move(secondary));
    }
  }

  // --- SWAT -----------------------------------------------------------------
  if (opts_.enable_swat) swat_ = std::make_unique<SwatTeam>(*this, opts_.swat_members);

  // --- migration ------------------------------------------------------------
  // Always present but event-silent until add_shard_live()/drain_shard_live()
  // starts a protocol, so it cannot perturb non-migrating histories.
  migration_ = std::make_unique<MigrationManager>(*this);

  // --- QP multiplexing --------------------------------------------------------
  if (opts_.mux_connections) {
    for (NodeId node : client_node_ids_) {
      if (node_muxes_.count(node) != 0) continue;  // colocated dedupe
      auto mux = std::make_unique<client::NodeMux>(sched_, node, opts_.mux);
      mux->set_obs(opts_.obs);
      mux->set_opener([this, node](ShardId shard, client::NodeMux::MuxWire* out) {
        if (shard >= primaries_.size()) return false;
        ShardSlot& slot = primaries_[shard];
        if (slot.primary == nullptr || !slot.primary->alive()) return false;
        auto [cq, sq] = fabric_.connect(node, slot.node);
        auto res = slot.primary->accept_mux_group(sq);
        if (!res.ok) {
          fabric_.disconnect(cq);
          return false;
        }
        out->qp = cq;
        out->group = res.group;
        out->req_ring = res.req_ring;
        out->slot_bytes = res.slot_bytes;
        out->ring_slots = res.ring_slots;
        out->arena_rkey = res.arena_rkey;
        out->lock_rkey = res.lock_rkey;
        out->lock_words = res.lock_words;
        out->owner_generation = slot.generation;
        out->qp_generation = cq->generation();
        return true;
      });
      mux->set_closer([this](ShardId shard, const client::NodeMux::MuxWire& wire) {
        // Only tell the shard to drop the group when it is still the same
        // incarnation the group was opened against: a promoted replacement
        // primary hands out its own group ids from zero.
        if (shard < primaries_.size() && primaries_[shard].primary != nullptr &&
            primaries_[shard].primary->alive() &&
            primaries_[shard].generation == wire.owner_generation) {
          primaries_[shard].primary->close_mux_group(wire.group);
        }
        // The QP slot may have been reclaimed (chaos async error) and handed
        // to a *new* connection by the fabric pool before this closer ran:
        // only tear down the incarnation the channel actually opened.
        if (wire.qp != nullptr && wire.qp->open() &&
            wire.qp->generation() == wire.qp_generation) {
          fabric_.disconnect(wire.qp);
        }
      });
      // One-sided read channels for hot-key replica reads: plain QPs to the
      // follower's node (no mux group -- the reads target a registered promo
      // slab, not a shard's request ring), reaped on idle unless pinned.
      mux->set_read_opener([this, node](NodeId target) -> fabric::QueuePair* {
        auto [cq, sq] = fabric_.connect(node, target);
        (void)sq;
        return cq;
      });
      mux->set_read_closer(
          [this](NodeId, fabric::QueuePair* qp, std::uint32_t qp_generation) {
            // The fabric pool may already have reused this slot for a newer
            // connection; only tear down the incarnation we actually opened.
            if (qp != nullptr && qp->open() && qp->generation() == qp_generation) {
              fabric_.disconnect(qp);
            }
          });
      node_muxes_[node] = std::move(mux);
    }
  }

  // --- clients ---------------------------------------------------------------
  const int total_clients =
      static_cast<int>(client_node_ids_.size()) * opts_.clients_per_node;
  for (int c = 0; c < total_clients; ++c) {
    const NodeId node =
        client_node_ids_[static_cast<std::size_t>(c) % client_node_ids_.size()];
    client::ClientConfig ccfg = opts_.client_template;
    ccfg.id = static_cast<ClientId>(c);
    ccfg.use_rdma_read = opts_.client_rdma_read;
    ccfg.use_send_recv = opts_.server_mode == server::ServerMode::kSendRecv;

    std::shared_ptr<client::Client::RemotePtrCache> cache;
    if (opts_.share_pointer_cache) {
      auto& slot = node_caches_[node];
      if (!slot) slot = std::make_shared<client::Client::RemotePtrCache>(64 * 1024);
      cache = slot;
    }
    clients_.push_back(
        std::make_unique<client::Client>(sched_, fabric_, node, ccfg, std::move(cache)));
    wire_client(*clients_.back());
    client_ptrs_.push_back(clients_.back().get());
  }
}

HydraCluster::~HydraCluster() {
  // Freeze the final stats into the registry, then unregister: the plane
  // outlives the cluster and must not call into a corpse.
  if (opts_.obs != nullptr) {
    opts_.obs->collect();
    opts_.obs->remove_exporters(this);
  }
  // Drain nothing: pending events hold references into members that are
  // about to die, but they are only destroyed, never executed, once the
  // scheduler goes away with us.
}

void HydraCluster::export_metrics() {
  obs::Registry& reg = opts_.obs->metrics();
  const fabric::FabricStats& fs = fabric_.stats();
  reg.counter("fabric.rdma_writes").set(fs.rdma_writes);
  reg.counter("fabric.rdma_reads").set(fs.rdma_reads);
  reg.counter("fabric.sends").set(fs.sends);
  reg.counter("fabric.tcp_messages").set(fs.tcp_messages);
  reg.counter("fabric.protection_errors").set(fs.protection_errors);
  reg.counter("fabric.dead_peer_errors").set(fs.dead_peer_errors);
  reg.counter("fabric.torn_writes").set(fs.torn_writes);
  reg.counter("fabric.dropped_writes").set(fs.dropped_writes);
  reg.counter("fabric.rdma_atomics").set(fs.rdma_atomics);
  reg.counter("fabric.torn_reads").set(fs.torn_reads);
  reg.counter("fabric.torn_atomics").set(fs.torn_atomics);
  reg.counter("fabric.dropped_atomics").set(fs.dropped_atomics);
  reg.counter("fabric.qp_connects").set(fs.qp_connects);
  reg.counter("fabric.qp_disconnects").set(fs.qp_disconnects);
  reg.counter("fabric.qp_slot_reuses").set(fs.qp_slot_reuses);
  reg.counter("fabric.rkey_revocations").set(fs.rkey_revocations);
  reg.counter("fabric.rkey_reregistrations").set(fs.rkey_reregistrations);
  reg.counter("fabric.revoke_faults").set(fs.revoke_faults);
  for (std::size_t n = 0; n < fabric_.node_count(); ++n) {
    const fabric::Nic& nic = fabric_.node(static_cast<NodeId>(n)).nic();
    const std::string p = "node." + std::to_string(n) + ".";
    reg.counter(p + "tx_ops").set(nic.tx_ops);
    reg.counter(p + "rx_ops").set(nic.rx_ops);
    reg.counter(p + "tx_bytes").set(nic.tx_bytes);
    reg.counter(p + "rx_bytes").set(nic.rx_bytes);
  }
  for (std::size_t s = 0; s < primaries_.size(); ++s) {
    const std::string p = "shard." + std::to_string(s) + ".";
    const server::ShardStats* st = nullptr;
    if (primaries_[s].primary != nullptr) {
      st = &primaries_[s].primary->stats();
    } else if (primaries_[s].pipelined != nullptr) {
      st = &primaries_[s].pipelined->stats();
    }
    if (st == nullptr) continue;
    reg.counter(p + "gets").set(st->gets);
    reg.counter(p + "puts").set(st->puts);
    reg.counter(p + "removes").set(st->removes);
    reg.counter(p + "responses").set(st->responses);
    reg.counter(p + "batched_responses").set(st->batched_responses);
    reg.counter(p + "mux_requests").set(st->mux_requests);
    reg.counter(p + "malformed").set(st->malformed);
    reg.counter(p + "wrong_owner").set(st->wrong_owner);
    reg.counter(p + "forwarded").set(st->forwarded);
    reg.counter(p + "txn_commits").set(st->txn_commits);
    reg.counter(p + "txn_conflicts").set(st->txn_conflicts);
    reg.counter(p + "busy_time_ns").set(st->busy_time);
    reg.counter(p + "hotkey_promotions").set(st->hotkey_promotions);
    reg.counter(p + "hotkey_demotions").set(st->hotkey_demotions);
    reg.counter(p + "hotkey_invalidations").set(st->hotkey_invalidations);
    reg.counter(p + "hotkey_advertised").set(st->hotkey_advertised);
    reg.counter(p + "scans").set(st->scans);
    reg.counter(p + "scan_entries").set(st->scan_entries);
    reg.counter(p + "scan_token_rejects").set(st->scan_token_rejects);
    reg.counter(p + "scan_leaf_refreshes").set(st->scan_leaf_refreshes);
    reg.counter(p + "scan_leaf_oversize").set(st->scan_leaf_oversize);
    reg.gauge(p + "generation").set(primaries_[s].generation);
    if (primaries_[s].primary != nullptr &&
        primaries_[s].primary->replicator() != nullptr) {
      const replication::ReplicationPrimary& rep = *primaries_[s].primary->replicator();
      reg.counter(p + "rep.write_retries").set(rep.write_retries());
      reg.counter(p + "rep.torn_acks").set(rep.torn_acks());
      reg.counter(p + "rep.ack_probes").set(rep.ack_probes());
      reg.counter(p + "rep.resends").set(rep.resends());
      reg.counter(p + "rep.acks_received").set(rep.acks_received());
      reg.counter(p + "rep.quarantined").set(rep.quarantined());
      reg.gauge(p + "rep.secondaries").set(
          static_cast<std::int64_t>(rep.secondary_count()));
    }
  }
  for (std::size_t c = 0; c < client_ptrs_.size(); ++c) {
    const client::ClientStats& cs = client_ptrs_[c]->stats();
    const std::string p = "client." + std::to_string(c) + ".";
    reg.counter(p + "gets").set(cs.gets);
    reg.counter(p + "puts").set(cs.puts);
    reg.counter(p + "removes").set(cs.removes);
    reg.counter(p + "ptr_hits").set(cs.ptr_hits);
    reg.counter(p + "ptr_misses").set(cs.ptr_misses);
    reg.counter(p + "epoch_invalidations").set(cs.epoch_invalidations);
    reg.counter(p + "stale_evicted").set(cs.stale_evicted);
    reg.counter(p + "replica_hits").set(cs.replica_hits);
    reg.counter(p + "wrong_owner_redirects").set(cs.wrong_owner_redirects);
    reg.counter(p + "timeouts").set(cs.timeouts);
    reg.counter(p + "retries").set(cs.retries);
    reg.counter(p + "failures").set(cs.failures);
    reg.counter(p + "scans").set(cs.scans);
    reg.counter(p + "scan_batches").set(cs.scan_batches);
    reg.counter(p + "scan_entries").set(cs.scan_entries);
    reg.counter(p + "scan_leaf_reads").set(cs.scan_leaf_reads);
    reg.counter(p + "scan_leaf_fallbacks").set(cs.scan_leaf_fallbacks);
    reg.counter(p + "scan_restarts").set(cs.scan_restarts);
    reg.histogram(p + "get_latency") = cs.get_latency;
    reg.histogram(p + "put_latency") = cs.put_latency;
    reg.histogram(p + "scan_latency") = cs.scan_latency;
  }
  for (const auto& [node, mux] : node_muxes_) {
    const client::NodeMuxStats& ms = mux->stats();
    const std::string p = "mux." + std::to_string(node) + ".";
    reg.counter(p + "channels_opened").set(ms.channels_opened);
    reg.counter(p + "reclaimed_idle").set(ms.reclaimed_idle);
    reg.counter(p + "reclaimed_failure").set(ms.reclaimed_failure);
    reg.counter(p + "credit_waits").set(ms.credit_waits);
    reg.counter(p + "read_channels_opened").set(ms.read_channels_opened);
    reg.counter(p + "reclaimed_read_idle").set(ms.reclaimed_read_idle);
    reg.counter(p + "read_reap_deferred").set(ms.read_reap_deferred);
  }
  reg.gauge("cluster.routing_epoch").set(static_cast<std::int64_t>(routing_epoch_));
  reg.counter("cluster.failovers").set(failovers());
  if (fast_ != nullptr) {
    reg.counter("cluster.fast.promotions").set(fast_->promotions());
    reg.counter("cluster.fast.rounds_started").set(fast_->rounds_started());
    reg.counter("cluster.fast.rounds_aborted").set(fast_->rounds_aborted());
    reg.counter("cluster.fast.ballots_lost").set(fast_->ballots_lost());
  }
  if (migration_ != nullptr) {
    const MigrationStats& ms = migration_->stats();
    reg.counter("cluster.migration.started").set(ms.started);
    reg.counter("cluster.migration.completed").set(ms.completed);
    reg.counter("cluster.migration.aborted").set(ms.aborted);
    reg.counter("cluster.migration.flow_restarts").set(ms.flow_restarts);
    reg.counter("cluster.migration.keys_moved").set(ms.keys_moved);
    reg.counter("cluster.migration.bytes_moved").set(ms.bytes_moved);
    reg.counter("cluster.migration.forwarded").set(ms.forwarded);
  }
}

void HydraCluster::spawn_primary(ShardId id, NodeId node,
                                 std::unique_ptr<core::KVStore> store) {
  ShardSlot& slot = primaries_[id];
  server::ShardConfig cfg = opts_.shard_template;
  cfg.id = id;
  cfg.mode = opts_.server_mode;
  if (opts_.pipelined_servers) {
    slot.pipelined = std::make_unique<server::PipelinedShard>(
        sched_, fabric_, node, cfg, opts_.pipeline_dispatchers, opts_.pipeline_workers);
  } else {
    slot.primary =
        std::make_unique<server::Shard>(sched_, fabric_, node, cfg, std::move(store));
    slot.primary->enable_replication(opts_.replication);
    if (opts_.fast_failover && slot.primary->replicator() != nullptr) {
      // Self-fencing on revocation: the first kProtectionError from a live
      // replica means the failover plane revoked our rkeys. The handler runs
      // before the fenced link's owed completions settle, so killing the
      // shard here guarantees no acknowledgement ever escapes a fenced
      // primary (clients recover via timeout + retry against the successor).
      server::Shard* raw = slot.primary.get();
      slot.primary->replicator()->set_fence_handler([this, id, raw] {
        if (!raw->alive()) return;
        HYDRA_WARN("shard %u: replica revoked our ring rkey; self-fencing", id);
        raw->kill();
      });
    }
    // Epoch fencing at the message path: every request is checked against
    // the *live* ring, so a client routed by stale metadata is redirected
    // instead of silently served by a shard that lost the range.
    slot.primary->set_owner_filter(
        [this, id](std::uint64_t key_hash) { return shard_owns(id, key_hash); });
    // Commit-time epoch fence for the transaction layer: a multi-key commit
    // whose header predates the live routing epoch is refused whole.
    slot.primary->set_epoch_source([this] { return routing_epoch_; });
  }
  slot.node = node;
  ++slot.generation;
  start_heartbeat(id);
}

void HydraCluster::start_heartbeat(ShardId id) {
  ShardSlot& slot = primaries_[id];
  if (slot.primary == nullptr) return;  // pipelined comparator runs without HA
  slot.session = coordinator_->open_session("shard-" + std::to_string(id));
  const std::string path = "/shards/" + std::to_string(id) + "/primary";
  if (coordinator_->exists(path)) {
    // Stale znode from the crashed predecessor: take it over.
    coordinator_->remove(path);
  }
  coordinator_->create(path, std::to_string(slot.node), slot.session);

  // Heartbeats are scheduled through the shard actor, so they stop the
  // instant the process "crashes" -- exactly how a real ZK session dies.
  // The closure re-schedules itself, so the cluster owns it (a shared_ptr
  // self-capture would be an unreclaimable cycle).
  server::Shard* shard = slot.primary.get();
  const cluster::SessionId session = slot.session;
  heartbeats_.push_back(std::make_unique<std::function<void()>>());
  auto* beat = heartbeats_.back().get();
  *beat = [this, id, shard, session, beat] {
    if (!coordinator_->session_alive(session)) {
      // Fencing: our session expired, so SWAT is promoting (or has promoted)
      // a replica. A primary that kept serving here would split-brain with
      // it -- a real ZK client gets SESSION_EXPIRED and must halt.
      HYDRA_WARN("shard %u: coordinator session expired; self-fencing", id);
      if (opts_.obs != nullptr) {
        opts_.obs->trace(sched_.now(), kInvalidNode, obs::TraceKind::kFenced, id, 1);
      }
      shard->kill();
      return;
    }
    if (sched_.now() >= primaries_[id].heartbeat_muted_until) {
      coordinator_->heartbeat(session);
    }
    shard->schedule_after(opts_.coordinator.session_timeout / 4, *beat);
  };
  shard->schedule_after(opts_.coordinator.session_timeout / 4, *beat);
}

void HydraCluster::wire_client(client::Client& c) {
  c.set_resolver([this](std::uint64_t key_hash) { return ring_.owner(key_hash); });
  // Pull-based epoch subscription: the client reads the current routing
  // epoch synchronously before every one-sided read, so there is no
  // publish-latency window in which a fenced primary's rkey can be read.
  c.set_epoch_source([this] { return routing_epoch_; });
  c.set_connector([this](ShardId shard, client::Client& self, fabric::RemoteAddr resp_slot,
                         std::uint32_t resp_bytes, std::uint32_t window,
                         client::ShardConnection* out) {
    return connect_client(shard, self, resp_slot, resp_bytes, window, out);
  });
  // Scan fan-out targets the *ring members*: a mid-migration destination is
  // deliberately excluded until commit (its copy is partial; every key it
  // holds is still owned -- and scannable -- at the source), and the commit's
  // epoch bump restarts live cursors against the updated set.
  c.set_shard_lister([this] { return ring_.shards(); });
  // Channels for one-sided reads of promoted hot-key copies on follower
  // nodes. In mux mode the node's mux pool owns them (pinned while a read
  // is in flight so the idle reaper cannot reclaim the QP under it); in
  // direct mode the cluster keeps one cached QP per node pair.
  c.set_replica_connector([this, &c](NodeId target) {
    client::Client::ReplicaWire wire;
    if (opts_.mux_connections) {
      auto it = node_muxes_.find(c.node());
      if (it == node_muxes_.end()) return wire;
      client::NodeMux* mux = it->second.get();
      wire.qp = mux->begin_replica_read(target);
      if (wire.qp != nullptr) {
        wire.release = [mux, target] { mux->end_replica_read(target); };
      }
      return wire;
    }
    const auto key = std::make_pair(c.node(), target);
    auto it = read_qps_.find(key);
    if (it != read_qps_.end() && (it->second == nullptr || !it->second->open())) {
      read_qps_.erase(it);  // died under chaos; reconnect below
      it = read_qps_.end();
    }
    if (it == read_qps_.end()) {
      auto [cq, sq] = fabric_.connect(c.node(), target);
      (void)sq;
      it = read_qps_.emplace(key, cq).first;
    }
    wire.qp = it->second;
    return wire;
  });
}

bool HydraCluster::connect_client(ShardId shard_id, client::Client& c,
                                  fabric::RemoteAddr resp_slot, std::uint32_t resp_bytes,
                                  std::uint32_t window, client::ShardConnection* out) {
  if (shard_id >= primaries_.size()) return false;
  ShardSlot& slot = primaries_[shard_id];

  if (slot.pipelined != nullptr) {
    auto [cq, sq] = fabric_.connect(c.node(), slot.node);
    auto res = slot.pipelined->accept(sq, resp_slot, resp_bytes, c.id());
    if (!res.ok) return false;
    out->qp = cq;
    out->req_slot = res.req_slot;
    out->req_slot_bytes = res.slot_bytes;
    out->arena_rkey = res.arena_rkey;
    out->window = 1;  // the pipelined comparator keeps the single-slot contract
    out->send_recv = false;
    return true;
  }
  if (slot.primary == nullptr || !slot.primary->alive()) return false;

  if (opts_.mux_connections && opts_.server_mode != server::ServerMode::kSendRecv) {
    // Endpoint over the node's shared channel: lazily establishes the
    // shared QP + mux group on first use, then registers this client's
    // private response ring as one more endpoint riding it.
    client::NodeMux* mux = node_muxes_[c.node()].get();
    client::NodeMux::Channel* ch = mux->channel_to(shard_id);
    if (ch == nullptr) return false;
    auto res = slot.primary->accept_mux_endpoint(ch->wire.group, resp_slot, resp_bytes,
                                                 c.id(), window);
    if (!res.ok) {
      // Stale channel (e.g. its primary failed over and the group id means
      // nothing to the successor): tear it down so the retry reopens fresh.
      mux->report_failure(shard_id, ch->generation);
      return false;
    }
    out->qp = ch->wire.qp;
    out->req_slot = ch->wire.req_ring;
    out->req_slot_bytes = ch->wire.slot_bytes;
    out->arena_rkey = ch->wire.arena_rkey;
    out->lock_rkey = ch->wire.lock_rkey;
    out->lock_words = ch->wire.lock_words;
    out->window = res.window;
    out->send_recv = false;
    out->mux = true;
    out->endpoint = res.endpoint;
    out->mux_generation = ch->generation;
    out->mux_node = mux;
    return true;
  }

  auto [cq, sq] = fabric_.connect(c.node(), slot.node);
  if (opts_.server_mode == server::ServerMode::kSendRecv) {
    auto res = slot.primary->accept_send_recv(sq, c.id());
    if (!res.ok) return false;
    out->qp = cq;
    out->arena_rkey = res.arena_rkey;
    out->window = window;  // Send/Recv has no ring; window just caps in-flight
    out->send_recv = true;
    return true;
  }
  auto res = slot.primary->accept(sq, resp_slot, resp_bytes, c.id(), window);
  if (!res.ok) return false;
  out->qp = cq;
  out->req_slot = res.req_slot;
  out->req_slot_bytes = res.slot_bytes;
  out->arena_rkey = res.arena_rkey;
  out->lock_rkey = res.lock_rkey;
  out->lock_words = res.lock_words;
  out->window = res.window;
  out->send_recv = false;
  return true;
}

server::Shard* HydraCluster::shard(ShardId id) noexcept {
  return id < primaries_.size() ? primaries_[id].primary.get() : nullptr;
}

client::NodeMux* HydraCluster::node_mux(int client_node_idx) noexcept {
  if (client_node_idx < 0 ||
      static_cast<std::size_t>(client_node_idx) >= client_node_ids_.size()) {
    return nullptr;
  }
  auto it = node_muxes_.find(client_node_ids_[static_cast<std::size_t>(client_node_idx)]);
  return it == node_muxes_.end() ? nullptr : it->second.get();
}

bool HydraCluster::kill_mux_channel(int client_node_idx, ShardId shard) {
  client::NodeMux* mux = node_mux(client_node_idx);
  if (mux == nullptr) return false;
  client::NodeMux::Channel* ch = mux->peek_channel(shard);
  if (ch == nullptr || !ch->open || ch->wire.qp == nullptr ||
      !ch->wire.qp->open() || ch->wire.qp->generation() != ch->wire.qp_generation) {
    // Channel gone, or its QP slot was already reclaimed and reused by a
    // newer connection -- killing it now would hit an unrelated pair.
    return false;
  }
  // Abrupt asynchronous QP error: the fabric closes both ends without the
  // mux layer hearing about it. In-flight ops flush, endpoints time out,
  // report the failure, and re-establish lazily.
  fabric_.disconnect(ch->wire.qp);
  return true;
}

std::vector<replication::SecondaryShard*> HydraCluster::secondaries_of(ShardId id) {
  std::vector<replication::SecondaryShard*> out;
  for (auto& s : primaries_[id].secondaries) out.push_back(s.get());
  return out;
}

ShardId HydraCluster::owner_of(std::string_view key) const {
  return ring_.owner(hash_key(key));
}

// ---------------------------------------------------------------- sync ops

namespace {
template <typename Pred>
bool drive_until(sim::Scheduler& sched, const Pred& done) {
  std::uint64_t steps = 0;
  while (!done()) {
    if (!sched.step() || ++steps > kSyncStepLimit) return false;
  }
  return true;
}
}  // namespace

Status HydraCluster::put(std::string key, std::string value, int client_idx) {
  std::optional<Status> result;
  client_ptrs_[static_cast<std::size_t>(client_idx)]->put(
      std::move(key), std::move(value), [&](Status s) { result = s; });
  drive_until(sched_, [&] { return result.has_value(); });
  return result.value_or(Status::kTimeout);
}

Status HydraCluster::insert(std::string key, std::string value, int client_idx) {
  std::optional<Status> result;
  client_ptrs_[static_cast<std::size_t>(client_idx)]->insert(
      std::move(key), std::move(value), [&](Status s) { result = s; });
  drive_until(sched_, [&] { return result.has_value(); });
  return result.value_or(Status::kTimeout);
}

Status HydraCluster::remove(std::string key, int client_idx) {
  std::optional<Status> result;
  client_ptrs_[static_cast<std::size_t>(client_idx)]->remove(
      std::move(key), [&](Status s) { result = s; });
  drive_until(sched_, [&] { return result.has_value(); });
  return result.value_or(Status::kTimeout);
}

std::optional<std::string> HydraCluster::get(std::string key, int client_idx,
                                             Status* status_out) {
  std::optional<Status> status;
  std::string value;
  client_ptrs_[static_cast<std::size_t>(client_idx)]->get(
      std::move(key), [&](Status s, std::string_view v) {
        status = s;
        value.assign(v);
      });
  drive_until(sched_, [&] { return status.has_value(); });
  if (status_out != nullptr) *status_out = status.value_or(Status::kTimeout);
  if (!status.has_value() || *status != Status::kOk) return std::nullopt;
  return value;
}

Status HydraCluster::scan(std::string start_key, std::uint32_t limit,
                          std::vector<std::pair<std::string, std::string>>* out,
                          int client_idx) {
  std::optional<Status> status;
  client_ptrs_[static_cast<std::size_t>(client_idx)]->scan(
      std::move(start_key), limit,
      [&](Status s, client::Client::ScanEntries entries) {
        status = s;
        if (out != nullptr) *out = std::move(entries);
      });
  drive_until(sched_, [&] { return status.has_value(); });
  return status.value_or(Status::kTimeout);
}

void HydraCluster::direct_load(std::string_view key, std::string_view value) {
  const ShardId id = owner_of(key);
  ShardSlot& slot = primaries_[id];
  if (slot.pipelined != nullptr) {
    slot.pipelined->store().put(key, value, sched_.now());
    return;
  }
  slot.primary->store().put(key, value, sched_.now());
  for (auto& sec : slot.secondaries) sec->store().put(key, value, sched_.now());
}

// ---------------------------------------------------------------- failover

void HydraCluster::crash_primary(ShardId id) {
  ShardSlot& slot = primaries_[id];
  if (slot.primary == nullptr) return;
  HYDRA_INFO("crash injection: killing primary of shard %u", id);
  if (opts_.obs != nullptr) {
    opts_.obs->trace(sched_.now(), kInvalidNode, obs::TraceKind::kCrashInjected, id, 0, 0);
  }
  slot.crashed_at = sched_.now();
  slot.primary->kill();  // heartbeats stop; session expires; SWAT reacts
}

void HydraCluster::crash_secondary(ShardId id, int idx) {
  if (id >= primaries_.size()) return;
  ShardSlot& slot = primaries_[id];
  if (idx < 0 || idx >= static_cast<int>(slot.secondaries.size())) return;
  replication::SecondaryShard* sec = slot.secondaries[static_cast<std::size_t>(idx)].get();
  if (!sec->alive()) return;
  HYDRA_INFO("crash injection: killing secondary %d of shard %u", idx, id);
  if (opts_.obs != nullptr) {
    opts_.obs->trace(sched_.now(), kInvalidNode, obs::TraceKind::kCrashInjected, id, 1,
                     static_cast<std::uint64_t>(idx));
  }
  sec->kill();
}

void HydraCluster::kill_swat_member(int idx) {
  if (opts_.obs != nullptr && swat_) {
    opts_.obs->trace(sched_.now(), kInvalidNode, obs::TraceKind::kCrashInjected, obs::kNoShard,
                     2, static_cast<std::uint64_t>(idx));
  }
  if (swat_) swat_->kill_member(idx);
}

void HydraCluster::suppress_heartbeats(ShardId id, Duration d) {
  if (id >= primaries_.size()) return;
  HYDRA_INFO("chaos: muting heartbeats of shard %u for %llu ns", id,
             static_cast<unsigned long long>(d));
  if (opts_.obs != nullptr) {
    opts_.obs->trace(sched_.now(), kInvalidNode, obs::TraceKind::kHeartbeatSuppressed, id, d);
  }
  primaries_[id].heartbeat_muted_until = sched_.now() + d;
}

std::uint64_t HydraCluster::failovers() const noexcept {
  return (swat_ ? swat_->failovers() : 0) + (fast_ ? fast_->promotions() : 0);
}

bool HydraCluster::primary_healthy(ShardId id) const noexcept {
  if (id >= primaries_.size()) return false;
  const ShardSlot& slot = primaries_[id];
  return slot.primary != nullptr && slot.primary->alive() &&
         coordinator_->session_alive(slot.session);
}

bool HydraCluster::promote_secondary(ShardId id,
                                     replication::SecondaryShard* preferred) {
  if (id >= primaries_.size()) return false;
  ShardSlot& slot = primaries_[id];
  // A retired shard's znode deletion is expected teardown, not a death to
  // react to; promoting it would resurrect a drained range.
  if (slot.retired) return false;
  const bool primary_running = slot.primary != nullptr && slot.primary->alive();
  if (primary_running && coordinator_->session_alive(slot.session)) {
    // Duplicate or stale death event (e.g. the watch for a znode the new
    // primary re-registered moments later); nothing to do.
    return false;
  }
  if (opts_.obs != nullptr) {
    opts_.obs->trace(sched_.now(), kInvalidNode, obs::TraceKind::kPromotionStart, id);
  }
  if (primary_running) {
    // The process is still running but its session expired -- its heartbeats
    // were suppressed (partition, GC pause). The self-fencing check only
    // runs at heartbeat-tick granularity, so SWAT may react to the reaped
    // znode first; promoting underneath a still-serving primary would
    // split-brain, and refusing to promote would strand the shard (the
    // death event has already been consumed from the pending set). Fence it
    // here, then proceed with the promotion.
    HYDRA_WARN("shard %u: fencing still-running primary with expired session", id);
    if (opts_.obs != nullptr) {
      opts_.obs->trace(sched_.now(), kInvalidNode, obs::TraceKind::kFenced, id, 2);
    }
    slot.primary->kill();
  }
  slot.heartbeat_muted_until = 0;  // suppression targeted the old process

  // A secondary that died mid-replay cannot be promoted and must not stay
  // in the replica set; quarantine its link and bury it.
  for (auto it = slot.secondaries.begin(); it != slot.secondaries.end();) {
    if ((*it)->alive()) {
      ++it;
      continue;
    }
    if (slot.primary != nullptr && slot.primary->replicator() != nullptr) {
      slot.primary->replicator()->remove_secondary(**it);
    }
    graveyard_.push_back(std::move(*it));
    it = slot.secondaries.erase(it);
  }
  if (slot.secondaries.empty()) {
    HYDRA_WARN("shard %u lost its primary and has no live secondary to promote", id);
    return false;
  }
  // A ballot winner (fast failover) promotes itself specifically; rotate it
  // to the front. If it died since the ballot, fall back to slot order.
  if (preferred != nullptr) {
    for (auto it = slot.secondaries.begin(); it != slot.secondaries.end(); ++it) {
      if (it->get() == preferred) {
        std::rotate(slot.secondaries.begin(), it, it + 1);
        break;
      }
    }
  }
  auto secondary = std::move(slot.secondaries.front());
  slot.secondaries.erase(slot.secondaries.begin());
  const NodeId new_node = secondary->node();
  // Replay acked records its poll loop had not reached yet (see drain_ring).
  secondary->drain_ring();
  auto store = secondary->release_store();
  secondary->kill();
  graveyard_.push_back(std::move(secondary));  // its ring MR stays mapped

  HYDRA_INFO("SWAT: promoting secondary on node %u to primary of shard %u", new_node, id);
  // The dead primary's buffers stay allocated (its regions are revoked, so
  // in-flight remote ops fail cleanly instead of scribbling on a corpse).
  server::Shard* fallen = slot.primary.get();
  graveyard_.push_back(std::move(slot.primary));
  spawn_primary(id, new_node, std::move(store));

  // Remaining secondaries re-attach to the new primary's log stream.
  for (auto& sec : slot.secondaries) {
    slot.primary->replicator()->add_secondary(*sec);
  }
  // Restore the configured replication factor: every promotion consumes one
  // replica, so without respawning, repeated failovers would walk the shard
  // down to zero redundancy.
  while (static_cast<int>(slot.secondaries.size()) < opts_.replicas) {
    spawn_secondary(id);
  }
  // Publish new routing metadata; clients re-resolve lazily via timeouts.
  ++routing_epoch_;
  coordinator_->set_data("/routing/version", std::to_string(routing_epoch_));
  if (opts_.obs != nullptr) {
    opts_.obs->trace(sched_.now(), kInvalidNode, obs::TraceKind::kEpochPublished, id,
                     routing_epoch_);
    opts_.obs->trace(sched_.now(), kInvalidNode, obs::TraceKind::kPromotionDone, id,
                     new_node);
  }
  // The fallen primary's hot-key promotion set dies with its epoch, exactly
  // as a migration epoch demotes: the re-attached secondaries' slabs were
  // zeroed by reset_stream above, and this records the withdrawal (b=1)
  // after the epoch publish so trace order pins epoch -> demotion.
  if (fallen != nullptr) fallen->withdraw_promotions(/*reason=*/1);
  if (slot.crashed_at != 0) {
    if (opts_.obs != nullptr) {
      opts_.obs->metrics()
          .histogram("cluster.failover_gap_us")
          .record((sched_.now() - slot.crashed_at) / 1000);
    }
    slot.crashed_at = 0;
  }
  return true;
}

void HydraCluster::spawn_secondary(ShardId id) {
  ShardSlot& slot = primaries_[id];
  // Place the replica off the primary's machine when the cluster has more
  // than one server node, like the initial layout does.
  NodeId sec_node = slot.node;
  if (server_node_ids_.size() > 1) {
    std::size_t at = 0;
    for (std::size_t i = 0; i < server_node_ids_.size(); ++i) {
      if (server_node_ids_[i] == slot.node) at = i;
    }
    sec_node = server_node_ids_[(at + 1 + slot.secondaries.size()) % server_node_ids_.size()];
  }
  replication::SecondaryConfig sec_cfg;
  sec_cfg.primary_shard = id;
  sec_cfg.store = opts_.shard_template.store;
  auto secondary =
      std::make_unique<replication::SecondaryShard>(sched_, fabric_, sec_node, sec_cfg);
  slot.primary->replicator()->add_secondary(*secondary);
  if (fast_ != nullptr) fast_->attach_secondary(id, *secondary);
  // Bootstrap state transfer: copy the primary's current contents before any
  // new log records replay on top (all within this event, so nothing can
  // slip in between). Acked writes the replica never saw thus survive the
  // *next* failover too.
  core::KVStore& src = slot.primary->store();
  core::KVStore& dst = secondary->store();
  const Time now = sched_.now();
  src.for_each([&](std::string_view key, std::string_view value, std::uint64_t) {
    dst.put(key, value, now);
  });
  if (opts_.obs != nullptr) {
    opts_.obs->trace(sched_.now(), kInvalidNode, obs::TraceKind::kSecondaryRespawned, id,
                     sec_node);
  }
  slot.secondaries.push_back(std::move(secondary));
}

// ---------------------------------------------------------------- migration

bool HydraCluster::shard_owns(ShardId id, std::uint64_t key_hash) const {
  // Consult the *live* ring, not a snapshot: after a migration commits, the
  // old owner rejects moved keys with no further bookkeeping, and a shard
  // that later regains a range starts accepting it again automatically.
  if (ring_.owner(key_hash) != id) return false;
  return !(migration_ != nullptr && migration_->sealed_rejects(id, key_hash));
}

ShardId HydraCluster::add_shard_live() {
  if (opts_.pipelined_servers || migration_->active()) return kInvalidShard;
  const auto id = static_cast<ShardId>(primaries_.size());
  // Elastic scale-out: the newcomer gets its own fresh machine, like a node
  // joining the paper's testbed.
  const NodeId node =
      fabric_.add_node("server-" + std::to_string(server_node_ids_.size())).id();
  server_node_ids_.push_back(node);
  primaries_.emplace_back();
  primaries_.back().node = node;
  spawn_primary(id, node, nullptr);
  for (int r = 0; r < opts_.replicas; ++r) spawn_secondary(id);
  if (!migration_->begin_add(id)) {
    retire_shard(id);
    return kInvalidShard;
  }
  return id;
}

bool HydraCluster::drain_shard_live(ShardId victim) {
  if (opts_.pipelined_servers || migration_->active()) return false;
  if (victim >= primaries_.size() || primaries_[victim].retired) return false;
  return migration_->begin_drain(victim);
}

void HydraCluster::retire_shard(ShardId id) {
  if (id >= primaries_.size()) return;
  ShardSlot& slot = primaries_[id];
  if (slot.retired) return;
  // Mark first: the session close below deletes the ephemeral znode, which
  // wakes SWAT, whose promotion attempt must see the retired flag.
  slot.retired = true;
  HYDRA_INFO("retiring shard %u", id);
  coordinator_->close_session(slot.session);
  const std::string path = "/shards/" + std::to_string(id) + "/primary";
  if (coordinator_->exists(path)) coordinator_->remove(path);
  for (auto& sec : slot.secondaries) {
    sec->kill();
    graveyard_.push_back(std::move(sec));
  }
  slot.secondaries.clear();
  if (slot.primary != nullptr) {
    slot.primary->kill();
    graveyard_.push_back(std::move(slot.primary));
  }
}

}  // namespace hydra::db
