#include "hydradb/migration.hpp"

#include <string>
#include <utility>

#include "common/hash.hpp"
#include "common/logging.hpp"
#include "hydradb/hydra_cluster.hpp"
#include "obs/plane.hpp"

namespace hydra::db {

MigrationManager::MigrationManager(HydraCluster& cluster)
    : MigrationManager(cluster, Config{}) {}

MigrationManager::MigrationManager(HydraCluster& cluster, Config cfg)
    : sim::Actor(cluster.scheduler(), "migration-mgr"), cluster_(cluster), cfg_(cfg) {}

void MigrationManager::trace(obs::TraceKind kind, std::uint64_t shard, std::uint64_t a,
                             std::uint64_t b) {
  if (cluster_.obs() != nullptr) {
    cluster_.obs()->trace(now(), kInvalidNode, kind, shard, a, b);
  }
}

bool MigrationManager::begin_add(ShardId subject) {
  if (cluster_.ring_.contains(subject)) return false;
  return begin(cluster::plan_add(cluster_.ring_, subject));
}

bool MigrationManager::begin_drain(ShardId subject) {
  if (!cluster_.ring_.contains(subject) || cluster_.ring_.shard_count() < 2) return false;
  server::Shard* victim = cluster_.shard(subject);
  if (victim == nullptr || !victim->alive()) return false;
  return begin(cluster::plan_drain(cluster_.ring_, subject));
}

bool MigrationManager::begin(cluster::MigrationPlan plan) {
  if (active()) return false;
  plan_ = std::move(plan);
  phase_ = Phase::kCopy;
  sealed_ = false;
  run_keys_ = 0;
  run_bytes_ = 0;
  progress_sig_ = 0;
  stalled_ticks_ = 0;
  flows_.clear();
  for (const cluster::MigrationFlowSpec& spec : plan_.flows) {
    Flow flow;
    flow.src = spec.src;
    flow.dst = spec.dst;
    flow.inflight = std::make_shared<std::uint64_t>(0);
    flows_.push_back(std::move(flow));
  }
  ++stats_.started;
  HYDRA_INFO("migration: %s shard %u (%zu flows)",
             plan_.kind == cluster::MigrationKind::kAdd ? "adding" : "draining",
             plan_.subject, flows_.size());
  trace(obs::TraceKind::kMigrationStart, plan_.subject,
        plan_.kind == cluster::MigrationKind::kAdd ? 0 : 1, flows_.size());
  schedule_after(cfg_.tick, [this] { tick(); });
  return true;
}

void MigrationManager::start_flow(Flow& flow) {
  server::Shard* src = cluster_.shard(flow.src);
  flow.src_gen = cluster_.shard_generation(flow.src);

  replication::SecondaryConfig sink_cfg;
  sink_cfg.primary_shard = flow.dst;
  sink_cfg.store = cluster_.opts_.shard_template.store;
  flow.sink = std::make_unique<replication::SecondaryShard>(
      scheduler(), cluster_.fabric(), cluster_.primaries_[flow.dst].node, sink_cfg);

  // The link runs inside the source shard's actor: if the source crashes,
  // every pending completion dies with it and the flow is rebuilt.
  replication::PrimaryConfig link_cfg;
  link_cfg.mode = replication::ReplicationMode::kLogRelaxed;
  link_cfg.ack_interval = 16;
  flow.link = std::make_unique<replication::ReplicationPrimary>(*src, cluster_.fabric(),
                                                                src->node(), link_cfg);
  flow.link->add_secondary(*flow.sink);

  // Install the dual-ownership hook *before* snapshotting: a write landing
  // between the two is both forwarded and (as the key's current value)
  // re-read by the copy cursor -- either way the sink converges on it.
  const ShardId src_id = flow.src;
  src->set_migration_forward(
      [this, src_id](std::uint64_t h) {
        return active() && !sealed_ && plan_.moving_from(src_id, h);
      },
      [this, src_id](std::uint64_t h, proto::RepRecord rec) {
        forward_from(src_id, h, std::move(rec));
      });

  flow.keys.clear();
  src->store().for_each([&](std::string_view key, std::string_view, std::uint64_t) {
    const std::uint64_t h = hash_key(key);
    if (plan_.moving_from(flow.src, h) && plan_.target_of(h) == flow.dst) {
      flow.keys.emplace_back(key);
    }
  });
  flow.next = 0;
  flow.posted = 0;
  flow.copied = false;
  flow.inflight = std::make_shared<std::uint64_t>(0);
  flow.started = true;
}

void MigrationManager::invalidate_flow(Flow& flow) {
  HYDRA_WARN("migration: source shard %u crashed; rebuilding flow to %u", flow.src,
             flow.dst);
  retire_flow(flow);
  flow.started = false;
  flow.copied = false;
  flow.keys.clear();
  flow.next = 0;
  flow.posted = 0;
  flow.inflight = std::make_shared<std::uint64_t>(0);
  ++stats_.flow_restarts;
  trace(obs::TraceKind::kMigrationRestarted, flow.src, 0, flow.dst);
  // Records lost with the crashed source reopen the copy phase.
  if (phase_ == Phase::kSealWait) phase_ = Phase::kCopy;
}

void MigrationManager::retire_flow(Flow& flow) {
  if (flow.sink) {
    flow.sink->kill();
    retired_sinks_.push_back(std::move(flow.sink));
  }
  if (flow.link) retired_links_.push_back(std::move(flow.link));
}

void MigrationManager::pump_flow(Flow& flow) {
  if (flow.copied) return;
  server::Shard* src = cluster_.shard(flow.src);
  // Self-throttle on write completions so the sink ring backlog stays
  // bounded no matter how large the snapshot is.
  int budget = cfg_.copy_batch;
  while (budget > 0 && flow.next < flow.keys.size() &&
         *flow.inflight < 2u * static_cast<std::uint32_t>(cfg_.copy_batch)) {
    const std::string& key = flow.keys[flow.next++];
    // Re-read at post time: the source kept serving writes, so the snapshot
    // is a key list, not a value list (last writer wins at the sink).
    auto view = src->store().get(key, now(), /*grant_lease=*/false);
    if (!view.ok()) continue;  // removed since the snapshot; forward covered it
    proto::RepRecord rec;
    rec.op = proto::MsgType::kPut;
    rec.op_time = now();
    rec.key = key;
    rec.value.assign(view.value().value);
    ++flow.posted;
    auto inflight = flow.inflight;
    ++*inflight;
    flow.link->replicate(std::move(rec), [inflight] { --*inflight; });
    --budget;
  }
  if (flow.next == flow.keys.size() && !flow.copied) {
    flow.copied = true;
    trace(obs::TraceKind::kMigrationCopied, flow.src, flow.posted, flow.dst);
  }
}

void MigrationManager::forward_from(ShardId src, std::uint64_t key_hash,
                                    proto::RepRecord rec) {
  for (Flow& flow : flows_) {
    if (flow.src != src || plan_.target_of(key_hash) != flow.dst) continue;
    if (!flow.started || cluster_.shard_generation(src) != flow.src_gen) return;
    ++flow.posted;
    ++stats_.forwarded;
    auto inflight = flow.inflight;
    ++*inflight;
    flow.link->replicate(std::move(rec), [inflight] { --*inflight; });
    return;
  }
}

bool MigrationManager::flow_settled(const Flow& flow) const {
  return flow.started && flow.next == flow.keys.size() && *flow.inflight == 0 &&
         flow.sink->applied_seq() == flow.posted;
}

void MigrationManager::tick() {
  if (phase_ == Phase::kIdle) return;

  for (Flow& flow : flows_) {
    if (flow.started && cluster_.shard_generation(flow.src) != flow.src_gen) {
      invalidate_flow(flow);
    }
    server::Shard* src = cluster_.shard(flow.src);
    const bool src_ok = src != nullptr && src->alive();
    if (!flow.started && src_ok) start_flow(flow);
    if (flow.started && src_ok && phase_ == Phase::kCopy) pump_flow(flow);
  }

  if (phase_ == Phase::kCopy) {
    bool all_copied = true;
    for (const Flow& flow : flows_) {
      if (!flow.started || !flow.copied) all_copied = false;
    }
    if (all_copied) seal();
  } else if (phase_ == Phase::kSealWait) {
    // Both endpoints must be live: the destination to receive the merge,
    // the source so moved keys can be scrubbed from its store (a source
    // that dies here is rebuilt from its promoted replica first).
    bool ready = true;
    for (const Flow& flow : flows_) {
      server::Shard* src = cluster_.shard(flow.src);
      server::Shard* dst = cluster_.shard(flow.dst);
      if (!flow_settled(flow) || dst == nullptr || !dst->alive() || src == nullptr ||
          !src->alive()) {
        ready = false;
      }
    }
    if (ready) finalize();
  }

  if (phase_ == Phase::kIdle) return;  // finalize/abort ended the migration

  // Stall detection: the signature folds in every monotonic counter a
  // healthy migration advances; when none moves for stall_timeout, no
  // promotion or ack is coming (e.g. a source with no promotable replica).
  std::uint64_t sig = static_cast<std::uint64_t>(phase_) ^ (stats_.flow_restarts << 8);
  for (const Flow& flow : flows_) {
    sig = sig * 1099511628211ULL + flow.posted + flow.next + *flow.inflight +
          (flow.sink ? flow.sink->applied_seq() : 0) + (flow.started ? 1 : 0);
  }
  if (sig == progress_sig_) {
    if (++stalled_ticks_ * cfg_.tick >= cfg_.stall_timeout) {
      abort(1);
      return;
    }
  } else {
    progress_sig_ = sig;
    stalled_ticks_ = 0;
  }
  schedule_after(cfg_.tick, [this] { tick(); });
}

void MigrationManager::seal() {
  sealed_ = true;
  phase_ = Phase::kSealWait;
  // From this event on the owner filter answers kWrongOwner for moving keys
  // at their sources, so no write can race the remaining in-flight records;
  // the hooks are dead weight and can go.
  for (Flow& flow : flows_) {
    server::Shard* src = cluster_.shard(flow.src);
    if (src != nullptr && src->alive()) src->clear_migration_forward();
  }
  trace(obs::TraceKind::kMigrationSealed, plan_.subject);
}

void MigrationManager::finalize() {
  const Time t = now();
  for (Flow& flow : flows_) {
    // Replays any complete frame the sink's poll loop had not reached (a
    // no-op here given the settle condition, but kept for symmetry with
    // promotion's crash path).
    flow.sink->drain_ring();
    server::Shard* dst = cluster_.shard(flow.dst);
    server::Shard* src = cluster_.shard(flow.src);
    HydraCluster::ShardSlot& dst_slot = cluster_.primaries_[flow.dst];
    HydraCluster::ShardSlot& src_slot = cluster_.primaries_[flow.src];
    flow.sink->store().for_each(
        [&](std::string_view key, std::string_view value, std::uint64_t) {
          dst->store().put(key, value, t);
          for (auto& sec : dst_slot.secondaries) {
            if (sec->alive()) sec->store().put(key, value, t);
          }
          ++run_keys_;
          run_bytes_ += key.size() + value.size();
        });
    if (plan_.kind == cluster::MigrationKind::kAdd) {
      // Scrub moved keys out of the source (and its replicas): after the
      // commit exactly one ring member holds each key. A drain retires the
      // whole source below, so no scrub is needed there.
      flow.sink->store().for_each(
          [&](std::string_view key, std::string_view, std::uint64_t) {
            src->store().remove(key, t);
            for (auto& sec : src_slot.secondaries) {
              if (sec->alive()) sec->store().remove(key, t);
            }
          });
    }
  }

  // Commit: mutate the live ring, bump + publish the routing epoch. Clients
  // re-resolve moved keys on their next request, and every cached remote
  // pointer into the moved ranges dies at the epoch check.
  if (plan_.kind == cluster::MigrationKind::kAdd) {
    cluster_.ring_.add_shard(plan_.subject);
  } else {
    cluster_.ring_.remove_shard(plan_.subject);
  }
  ++cluster_.routing_epoch_;
  cluster_.coordinator_->set_data("/routing/version",
                                  std::to_string(cluster_.routing_epoch_));
  trace(obs::TraceKind::kEpochPublished, plan_.subject, cluster_.routing_epoch_);
  trace(obs::TraceKind::kMigrationDone, plan_.subject, run_keys_, run_bytes_);
  HYDRA_INFO("migration: committed %s of shard %u (%llu keys, %llu bytes)",
             plan_.kind == cluster::MigrationKind::kAdd ? "add" : "drain",
             plan_.subject, static_cast<unsigned long long>(run_keys_),
             static_cast<unsigned long long>(run_bytes_));

  sealed_ = false;
  stats_.keys_moved += run_keys_;
  stats_.bytes_moved += run_bytes_;
  if (plan_.kind == cluster::MigrationKind::kDrain) {
    cluster_.retire_shard(plan_.subject);
  }
  for (Flow& flow : flows_) retire_flow(flow);
  flows_.clear();
  phase_ = Phase::kIdle;
  ++stats_.completed;
}

void MigrationManager::abort(std::uint64_t reason) {
  HYDRA_WARN("migration: aborting %s of shard %u (reason %llu)",
             plan_.kind == cluster::MigrationKind::kAdd ? "add" : "drain",
             plan_.subject, static_cast<unsigned long long>(reason));
  trace(obs::TraceKind::kMigrationAborted, plan_.subject, reason);
  for (Flow& flow : flows_) {
    server::Shard* src = cluster_.shard(flow.src);
    if (src != nullptr && src->alive()) src->clear_migration_forward();
    retire_flow(flow);
  }
  flows_.clear();
  sealed_ = false;
  phase_ = Phase::kIdle;
  ++stats_.aborted;
  // An aborted add leaves the ring untouched; the never-routed subject is
  // retired so it does not linger as a half-member.
  if (plan_.kind == cluster::MigrationKind::kAdd) {
    cluster_.retire_shard(plan_.subject);
  }
}

}  // namespace hydra::db
