#include "fabric/tcp.hpp"

#include <algorithm>

#include "fabric/fabric.hpp"

namespace hydra::fabric {

Time TcpConn::send(std::span<const std::byte> message) {
  Fabric& f = *fabric_;
  sim::Scheduler& sched = f.sched_;
  const CostModel& cm = f.cost_;
  ++f.stats_.tcp_messages;

  std::vector<std::byte> data(message.begin(), message.end());

  // Sender burns kernel CPU for the syscall/stack path, then the bytes
  // serialize through the node's shared port at the stack's bandwidth.
  const Time sent_done = sched.now() + cm.tcp_kernel_cost;
  Nic& tx = f.node(local_).nic();
  const Time wire_start = std::max(sent_done, tx.tcp_tx_free);
  tx.tcp_tx_free = wire_start + cm.tcp_wire_time(data.size());
  Time deliver = tx.tcp_tx_free + cm.tcp_latency;
  deliver = std::max(deliver, last_delivery_);  // stream ordering
  last_delivery_ = deliver;

  sched.at(deliver, [this, &f, data = std::move(data)]() mutable {
    if (!f.node(remote_).alive()) return;  // receiver crashed: bytes vanish
    if (peer_->handler_) peer_->handler_(std::move(data));
  });
  return sent_done;
}

}  // namespace hydra::fabric
