#include "fabric/fabric.hpp"

#include "obs/plane.hpp"

namespace hydra::fabric {

MemoryRegion* Node::register_memory(std::span<std::byte> bytes) {
  regions_.push_back(std::make_unique<MemoryRegion>(id_, next_rkey_++, bytes));
  return regions_.back().get();
}

MemoryRegion* Node::find_region(std::uint32_t rkey) noexcept {
  // Linear scan: nodes register a handful of large regions (arena, message
  // buffers, replication ring), so this is not on any hot path that matters
  // and keeps rkeys dense and debuggable.
  for (const auto& mr : regions_) {
    if (mr->rkey() == rkey) return mr.get();
  }
  return nullptr;
}

Node& Fabric::add_node(std::string name) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(id, std::move(name)));
  return *nodes_.back();
}

std::pair<QueuePair*, QueuePair*> Fabric::connect(NodeId a, NodeId b) {
  ++stats_.qp_connects;
  const std::uint32_t id = next_qp_id_;
  next_qp_id_ += 2;
  QueuePair* qa = nullptr;
  QueuePair* qb = nullptr;
  if (!qp_pool_.empty()) {
    // Recycle a reclaimed pair: fresh ids and a bumped generation keep any
    // op still draining through the old incarnation from committing here.
    ++stats_.qp_slot_reuses;
    std::tie(qa, qb) = qp_pool_.back();
    qp_pool_.pop_back();
    qa->reopen(id, a, b);
    qb->reopen(id + 1, b, a);
    if (obs_ != nullptr) {
      obs_->trace(sched_.now(), a, obs::TraceKind::kQpReused, obs::kNoShard, id,
                  qp_pool_.size());
    }
  } else {
    qps_.push_back(std::make_unique<QueuePair>(*this, id, a, b));
    qa = qps_.back().get();
    qps_.push_back(std::make_unique<QueuePair>(*this, id + 1, b, a));
    qb = qps_.back().get();
    qa->peer_ = qb;
    qb->peer_ = qa;
  }
  ++nodes_[a]->nic().qp_count;
  ++nodes_[b]->nic().qp_count;
  return {qa, qb};
}

void Fabric::disconnect(QueuePair* qp) {
  if (qp == nullptr || !qp->open()) return;
  QueuePair* peer = qp->peer_;
  ++stats_.qp_disconnects;
  --nodes_[qp->local_node()]->nic().qp_count;
  --nodes_[peer->local_node()]->nic().qp_count;
  qp->close();
  peer->close();
  qp_pool_.emplace_back(qp, peer);
  if (obs_ != nullptr) {
    obs_->trace(sched_.now(), qp->local_node(), obs::TraceKind::kQpReclaimed, obs::kNoShard,
                qp->id(), live_qp_pairs());
  }
}

void Fabric::revoke_rkey(NodeId owner, std::uint32_t rkey, Duration latency,
                         std::function<void(bool confirmed)> on_done) {
  sched_.after(latency, [this, owner, rkey, on_done = std::move(on_done)] {
    Node& n = *nodes_[owner];
    MemoryRegion* mr = n.alive() ? n.find_region(rkey) : nullptr;
    if (mr == nullptr) {
      // Dead owner or unknown rkey: nothing to revoke, nothing to confirm.
      if (on_done) on_done(false);
      return;
    }
    const RevokeFault fault = revoke_fault_ ? revoke_fault_(owner, rkey) : RevokeFault{};
    const bool applied = fault.kind != RevokeFault::Kind::kDrop;
    const bool confirmed = fault.kind == RevokeFault::Kind::kDeliver;
    if (applied) {
      if (!mr->revoked()) ++stats_.rkey_revocations;
      mr->revoke();
    }
    if (fault.kind != RevokeFault::Kind::kDeliver) ++stats_.revoke_faults;
    if (obs_ != nullptr) {
      obs_->trace(sched_.now(), owner, obs::TraceKind::kRkeyRevoked, obs::kNoShard, rkey,
                  static_cast<std::uint64_t>(fault.kind));
    }
    if (on_done) on_done(confirmed);
  });
}

MemoryRegion* Fabric::reregister_mr(NodeId owner, MemoryRegion* old) {
  if (old == nullptr) return nullptr;
  if (!old->revoked()) old->revoke();
  MemoryRegion* fresh = nodes_[owner]->register_memory(old->slice(0, old->length()));
  ++stats_.rkey_reregistrations;
  if (obs_ != nullptr) {
    obs_->trace(sched_.now(), owner, obs::TraceKind::kRkeyReregistered, obs::kNoShard,
                fresh->rkey(), old->rkey());
  }
  return fresh;
}

std::pair<TcpConn*, TcpConn*> Fabric::tcp_connect(NodeId a, NodeId b) {
  const auto id = static_cast<std::uint32_t>(tcp_conns_.size());
  tcp_conns_.push_back(std::make_unique<TcpConn>(*this, id, a, b));
  TcpConn* ca = tcp_conns_.back().get();
  tcp_conns_.push_back(std::make_unique<TcpConn>(*this, id + 1, b, a));
  TcpConn* cb = tcp_conns_.back().get();
  ca->peer_ = cb;
  cb->peer_ = ca;
  return {ca, cb};
}

}  // namespace hydra::fabric
