#include "fabric/fabric.hpp"

namespace hydra::fabric {

MemoryRegion* Node::register_memory(std::span<std::byte> bytes) {
  regions_.push_back(std::make_unique<MemoryRegion>(id_, next_rkey_++, bytes));
  return regions_.back().get();
}

MemoryRegion* Node::find_region(std::uint32_t rkey) noexcept {
  // Linear scan: nodes register a handful of large regions (arena, message
  // buffers, replication ring), so this is not on any hot path that matters
  // and keeps rkeys dense and debuggable.
  for (const auto& mr : regions_) {
    if (mr->rkey() == rkey) return mr.get();
  }
  return nullptr;
}

Node& Fabric::add_node(std::string name) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(id, std::move(name)));
  return *nodes_.back();
}

std::pair<QueuePair*, QueuePair*> Fabric::connect(NodeId a, NodeId b) {
  const auto id = static_cast<std::uint32_t>(qps_.size());
  qps_.push_back(std::make_unique<QueuePair>(*this, id, a, b));
  QueuePair* qa = qps_.back().get();
  qps_.push_back(std::make_unique<QueuePair>(*this, id + 1, b, a));
  QueuePair* qb = qps_.back().get();
  qa->peer_ = qb;
  qb->peer_ = qa;
  ++nodes_[a]->nic().qp_count;
  ++nodes_[b]->nic().qp_count;
  return {qa, qb};
}

std::pair<TcpConn*, TcpConn*> Fabric::tcp_connect(NodeId a, NodeId b) {
  const auto id = static_cast<std::uint32_t>(tcp_conns_.size());
  tcp_conns_.push_back(std::make_unique<TcpConn>(*this, id, a, b));
  TcpConn* ca = tcp_conns_.back().get();
  tcp_conns_.push_back(std::make_unique<TcpConn>(*this, id + 1, b, a));
  TcpConn* cb = tcp_conns_.back().get();
  ca->peer_ = cb;
  cb->peer_ = ca;
  return {ca, cb};
}

}  // namespace hydra::fabric
