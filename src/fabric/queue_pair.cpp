#include "fabric/queue_pair.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>

#include "fabric/fabric.hpp"
#include "obs/plane.hpp"

namespace hydra::fabric {
namespace {

Duration scaled(Duration base, double penalty) noexcept {
  return static_cast<Duration>(static_cast<double>(base) * penalty);
}

}  // namespace

void QueuePair::post_write(std::span<const std::byte> src, RemoteAddr dst,
                           std::uint64_t wr_id, CompletionFn on_done, bool batched) {
  if (!open_) {
    flush_completion(WcOp::kWrite, wr_id, static_cast<std::uint32_t>(src.size()),
                     std::move(on_done));
    return;
  }
  Fabric& f = *fabric_;
  sim::Scheduler& sched = f.sched_;
  const CostModel& cm = f.cost_;
  ++f.stats_.rdma_writes;

  // Snapshot the source: as-if the NIC DMA-read the buffer at post time.
  std::vector<std::byte> data(src.begin(), src.end());
  const auto size = static_cast<std::uint32_t>(data.size());

  if (f.obs_) {
    f.obs_->trace(sched.now(), local_,
                  batched ? obs::TraceKind::kDoorbellBatched : obs::TraceKind::kWritePosted,
                  obs::kNoShard, size, dst.rkey);
  }

  // Initiator NIC send engine: WQE processing plus wire serialization.
  Nic& tx = f.node(local_).nic();
  const double pen_tx = cm.qp_penalty(tx.qp_count);
  const Time tx_start = std::max(sched.now(), tx.tx_free);
  tx.tx_free = tx_start + scaled(cm.tx_overhead(batched), pen_tx) + cm.rdma_wire_time(size);
  ++tx.tx_ops;
  tx.tx_bytes += size;

  const Time arrival = tx.tx_free + cm.rdma_propagation;

  // Target NIC receive/DMA engine.
  Nic& rx = f.node(remote_).nic();
  const double pen_rx = cm.qp_penalty(rx.qp_count);
  Time commit = std::max(arrival, rx.rx_free) + scaled(cm.nic_rx_overhead, pen_rx);
  rx.rx_free = commit;
  ++rx.rx_ops;
  rx.rx_bytes += size;

  // RC ordering: writes on one QP become visible in posted order.
  commit = std::max(commit, last_commit_);
  last_commit_ = commit;

  sched.at(commit, [this, &f, &sched, data = std::move(data), dst, wr_id,
                    on_done = std::move(on_done), size, gen = generation_]() mutable {
    const CostModel& cost = f.cost_;
    if (!open_ || generation_ != gen) {
      // QP torn down (or its slot recycled) while the op was in flight: the
      // bytes never land and the WR flushes back to the initiator.
      if (on_done) on_done(Completion{WcOp::kWrite, WcStatus::kFlushed, wr_id, 0});
      return;
    }
    Node& rem = f.node(remote_);
    if (!rem.alive()) {
      ++f.stats_.dead_peer_errors;
      if (f.obs_) {
        f.obs_->trace(sched.now(), local_, obs::TraceKind::kWriteDeadPeer, obs::kNoShard, size);
      }
      if (on_done) {
        sched.after(cost.peer_timeout, [on_done = std::move(on_done), wr_id, size] {
          on_done(Completion{WcOp::kWrite, WcStatus::kRemoteDead, wr_id, size});
        });
      }
      return;
    }
    WriteFault fault;
    if (f.write_fault_) fault = f.write_fault_(local_, remote_, dst, size);
    MemoryRegion* mr = rem.find_region(dst.rkey);
    if (mr == nullptr || !mr->contains(dst.offset, size)) {
      ++f.stats_.protection_errors;
      if (on_done) {
        sched.after(cost.rdma_propagation, [on_done = std::move(on_done), wr_id, size] {
          on_done(Completion{WcOp::kWrite, WcStatus::kProtectionError, wr_id, size});
        });
      }
      return;
    }
    if (fault.kind != WriteFault::Kind::kDeliver) {
      // Fault injection: commit a prefix (torn) or nothing (dropped), then
      // surface a flush error to the initiator after the retry timeout --
      // RC never delivers a success completion for a write that did not
      // fully land.
      const std::uint32_t committed =
          fault.kind == WriteFault::Kind::kTorn ? std::min(fault.torn_bytes, size) : 0;
      if (fault.kind == WriteFault::Kind::kTorn) {
        ++f.stats_.torn_writes;
      } else {
        ++f.stats_.dropped_writes;
      }
      if (f.obs_) {
        f.obs_->trace(sched.now(), remote_, obs::TraceKind::kWriteFaulted, obs::kNoShard,
                      committed, dst.rkey);
      }
      if (committed > 0) {
        std::memcpy(mr->base() + dst.offset, data.data(), committed);
        if (mr->write_hook()) mr->write_hook()(dst.offset, committed);
      }
      if (on_done) {
        sched.after(cost.peer_timeout, [on_done = std::move(on_done), wr_id, committed] {
          on_done(Completion{WcOp::kWrite, WcStatus::kFlushed, wr_id, committed});
        });
      }
      return;
    }
    std::memcpy(mr->base() + dst.offset, data.data(), size);
    if (f.obs_) {
      f.obs_->trace(sched.now(), remote_, obs::TraceKind::kWriteCommitted, obs::kNoShard, size,
                    dst.rkey);
    }
    if (mr->write_hook()) mr->write_hook()(dst.offset, size);
    if (on_done) {
      sched.after(cost.rdma_propagation, [on_done = std::move(on_done), wr_id, size] {
        on_done(Completion{WcOp::kWrite, WcStatus::kSuccess, wr_id, size});
      });
    }
  });
}

void QueuePair::post_read(std::span<std::byte> dst, RemoteAddr src,
                          std::uint64_t wr_id, CompletionFn on_done) {
  if (!open_) {
    flush_completion(WcOp::kRead, wr_id, static_cast<std::uint32_t>(dst.size()),
                     std::move(on_done));
    return;
  }
  Fabric& f = *fabric_;
  sim::Scheduler& sched = f.sched_;
  const CostModel& cm = f.cost_;
  ++f.stats_.rdma_reads;

  const auto size = static_cast<std::uint32_t>(dst.size());
  constexpr std::uint32_t kReadRequestBytes = 16;

  if (f.obs_) {
    f.obs_->trace(sched.now(), local_, obs::TraceKind::kReadPosted, obs::kNoShard, size,
                  src.rkey);
  }

  // Request WQE leaves through the initiator's send engine.
  Nic& tx = f.node(local_).nic();
  const double pen_tx = cm.qp_penalty(tx.qp_count);
  const Time tx_start = std::max(sched.now(), tx.tx_free);
  tx.tx_free = tx_start + scaled(cm.nic_tx_overhead, pen_tx) + cm.rdma_wire_time(kReadRequestBytes);
  ++tx.tx_ops;
  tx.tx_bytes += kReadRequestBytes;

  const Time req_arrival = tx.tx_free + cm.rdma_propagation;

  // Target NIC serves the read entirely in hardware: it DMA-reads the
  // registered memory and streams the response without touching the CPU.
  Nic& rnic = f.node(remote_).nic();
  const double pen_r = cm.qp_penalty(rnic.qp_count);
  const Time serve_start =
      std::max(req_arrival + scaled(cm.nic_rx_overhead, pen_r), rnic.tx_free);
  rnic.tx_free = serve_start + scaled(cm.nic_tx_overhead, pen_r) + cm.rdma_wire_time(size);
  ++rnic.tx_ops;
  rnic.tx_bytes += size;

  const Time resp_arrival = rnic.tx_free + cm.rdma_propagation;

  Nic& lrx = f.node(local_).nic();
  const Time done = std::max(resp_arrival, lrx.rx_free) + scaled(cm.nic_rx_overhead, pen_tx);
  lrx.rx_free = done;
  ++lrx.rx_ops;
  lrx.rx_bytes += size;

  // Two-phase: target memory is observed at serve time, the initiator's
  // buffer is filled at completion time.
  auto snapshot = std::make_shared<std::vector<std::byte>>();
  auto failure = std::make_shared<WcStatus>(WcStatus::kSuccess);

  sched.at(serve_start, [this, &f, src, size, snapshot, failure, gen = generation_] {
    if (!open_ || generation_ != gen) {
      *failure = WcStatus::kFlushed;
      return;
    }
    Node& rem = f.node(remote_);
    if (!rem.alive()) {
      ++f.stats_.dead_peer_errors;
      *failure = WcStatus::kRemoteDead;
      return;
    }
    MemoryRegion* mr = rem.find_region(src.rkey);
    if (mr == nullptr || !mr->contains(src.offset, size)) {
      ++f.stats_.protection_errors;
      *failure = WcStatus::kProtectionError;
      return;
    }
    snapshot->assign(mr->base() + src.offset, mr->base() + src.offset + size);
    if (f.read_fault_) {
      const ReadFault rf = f.read_fault_(local_, remote_, src, size);
      if (rf.kind == ReadFault::Kind::kTorn) {
        // Delivered as kSuccess with the bytes past the torn prefix garbled:
        // only the reader's own validation (checksums, guardians) can tell.
        ++f.stats_.torn_reads;
        for (std::size_t i = rf.torn_bytes; i < snapshot->size(); ++i) {
          (*snapshot)[i] ^= std::byte{0xA5};
        }
        if (f.obs_) {
          f.obs_->trace(f.sched_.now(), local_, obs::TraceKind::kReadFaulted,
                        obs::kNoShard, rf.torn_bytes, src.rkey);
        }
      }
    }
  });

  const Time completion_time =
      done;  // success path; errors surface after the retransmit timeout
  sched.at(completion_time, [this, &sched, &f, dst, wr_id, size, snapshot, failure,
                             on_done = std::move(on_done), gen = generation_]() mutable {
    if (!open_ || generation_ != gen) *failure = WcStatus::kFlushed;
    if (f.obs_) {
      f.obs_->trace(sched.now(), local_, obs::TraceKind::kReadCompleted, obs::kNoShard, size,
                    static_cast<std::uint64_t>(*failure != WcStatus::kSuccess));
    }
    if (*failure != WcStatus::kSuccess) {
      if (on_done == nullptr) return;
      if (*failure == WcStatus::kFlushed) {
        // Local teardown, not a remote fault: no retransmit timeout to wait.
        on_done(Completion{WcOp::kRead, WcStatus::kFlushed, wr_id, size});
        return;
      }
      sched.after(f.cost_.peer_timeout,
                  [on_done = std::move(on_done), wr_id, size, st = *failure] {
                    on_done(Completion{WcOp::kRead, st, wr_id, size});
                  });
      return;
    }
    std::memcpy(dst.data(), snapshot->data(), size);
    if (on_done) on_done(Completion{WcOp::kRead, WcStatus::kSuccess, wr_id, size});
  });
}

void QueuePair::post_cas(RemoteAddr dst, std::uint64_t compare, std::uint64_t swap,
                         std::uint64_t wr_id, CompletionFn on_done) {
  post_atomic(WcOp::kCas, dst, compare, swap, wr_id, std::move(on_done));
}

void QueuePair::post_faa(RemoteAddr dst, std::uint64_t add,
                         std::uint64_t wr_id, CompletionFn on_done) {
  post_atomic(WcOp::kFaa, dst, 0, add, wr_id, std::move(on_done));
}

void QueuePair::post_atomic(WcOp op, RemoteAddr dst, std::uint64_t compare,
                            std::uint64_t operand, std::uint64_t wr_id,
                            CompletionFn on_done) {
  constexpr std::uint32_t kAtomicBytes = 8;
  if (!open_) {
    flush_completion(op, wr_id, kAtomicBytes, std::move(on_done));
    return;
  }
  Fabric& f = *fabric_;
  sim::Scheduler& sched = f.sched_;
  const CostModel& cm = f.cost_;
  ++f.stats_.rdma_atomics;

  const std::uint64_t is_faa = op == WcOp::kFaa ? 1 : 0;
  if (f.obs_) {
    f.obs_->trace(sched.now(), local_, obs::TraceKind::kAtomicPosted, obs::kNoShard, is_faa,
                  dst.rkey);
  }

  // Same shape as post_write's pipeline: request WQE through the initiator's
  // send engine, execute at the target NIC, response rides back. The target
  // additionally pays atomic_extra for the HCA's serialised read-modify-write
  // unit.
  Nic& tx = f.node(local_).nic();
  const double pen_tx = cm.qp_penalty(tx.qp_count);
  const Time tx_start = std::max(sched.now(), tx.tx_free);
  tx.tx_free = tx_start + scaled(cm.nic_tx_overhead, pen_tx) + cm.rdma_wire_time(kAtomicBytes);
  ++tx.tx_ops;
  tx.tx_bytes += kAtomicBytes;

  const Time arrival = tx.tx_free + cm.rdma_propagation;

  Nic& rx = f.node(remote_).nic();
  const double pen_rx = cm.qp_penalty(rx.qp_count);
  Time commit = std::max(arrival, rx.rx_free) + scaled(cm.nic_rx_overhead, pen_rx) +
                scaled(cm.atomic_extra, pen_rx);
  rx.rx_free = commit;
  ++rx.rx_ops;
  rx.rx_bytes += kAtomicBytes;

  // Atomics obey the same posted-order visibility as writes on this QP.
  commit = std::max(commit, last_commit_);
  last_commit_ = commit;

  sched.at(commit, [this, &f, &sched, op, dst, compare, operand, wr_id, is_faa,
                    on_done = std::move(on_done), gen = generation_]() mutable {
    const CostModel& cost = f.cost_;
    if (!open_ || generation_ != gen) {
      if (on_done) on_done(Completion{op, WcStatus::kFlushed, wr_id, 0});
      return;
    }
    Node& rem = f.node(remote_);
    if (!rem.alive()) {
      ++f.stats_.dead_peer_errors;
      if (f.obs_) {
        f.obs_->trace(sched.now(), local_, obs::TraceKind::kWriteDeadPeer, obs::kNoShard,
                      kAtomicBytes);
      }
      if (on_done) {
        sched.after(cost.peer_timeout, [on_done = std::move(on_done), op, wr_id] {
          on_done(Completion{op, WcStatus::kRemoteDead, wr_id, kAtomicBytes});
        });
      }
      return;
    }
    WriteFault fault;
    if (f.write_fault_) fault = f.write_fault_(local_, remote_, dst, kAtomicBytes);
    MemoryRegion* mr = rem.find_region(dst.rkey);
    if (mr == nullptr || !mr->contains(dst.offset, kAtomicBytes)) {
      ++f.stats_.protection_errors;
      if (on_done) {
        sched.after(cost.rdma_propagation, [on_done = std::move(on_done), op, wr_id] {
          on_done(Completion{op, WcStatus::kProtectionError, wr_id, kAtomicBytes});
        });
      }
      return;
    }
    if (fault.kind == WriteFault::Kind::kDrop) {
      // Dropped atomic: never executes; the initiator's WR flushes after the
      // retransmission timeout, exactly like a dropped write.
      ++f.stats_.dropped_atomics;
      if (f.obs_) {
        f.obs_->trace(sched.now(), remote_, obs::TraceKind::kAtomicFaulted, obs::kNoShard, 0,
                      dst.rkey);
      }
      if (on_done) {
        sched.after(cost.peer_timeout, [on_done = std::move(on_done), op, wr_id] {
          on_done(Completion{op, WcStatus::kFlushed, wr_id, 0});
        });
      }
      return;
    }
    // Execute the read-modify-write. The event loop is the serialisation
    // point, so the load-compare/add-store below is atomic by construction.
    std::uint64_t old = 0;
    std::memcpy(&old, mr->base() + dst.offset, kAtomicBytes);
    std::uint64_t neu = old;
    bool mutated = false;
    if (op == WcOp::kCas) {
      if (old == compare) {
        neu = operand;
        mutated = true;
      }
    } else {
      neu = old + operand;
      mutated = true;
    }
    if (mutated) {
      std::memcpy(mr->base() + dst.offset, &neu, kAtomicBytes);
      if (mr->write_hook()) mr->write_hook()(dst.offset, kAtomicBytes);
    }
    if (fault.kind == WriteFault::Kind::kTorn) {
      // Torn atomic: the op *executed* at the target (an atomic is
      // indivisible; there is no partial-word state) but the response to
      // the initiator is lost, so the WR flushes and the caller cannot
      // know whether it took effect.
      ++f.stats_.torn_atomics;
      if (f.obs_) {
        f.obs_->trace(sched.now(), remote_, obs::TraceKind::kAtomicFaulted, obs::kNoShard, 1,
                      dst.rkey);
      }
      if (on_done) {
        sched.after(cost.peer_timeout, [on_done = std::move(on_done), op, wr_id] {
          on_done(Completion{op, WcStatus::kFlushed, wr_id, 0});
        });
      }
      return;
    }
    if (f.obs_) {
      f.obs_->trace(sched.now(), remote_, obs::TraceKind::kAtomicCommitted, obs::kNoShard,
                    is_faa, dst.rkey);
    }
    if (on_done) {
      sched.after(cost.rdma_propagation, [on_done = std::move(on_done), op, wr_id, old] {
        Completion c{op, WcStatus::kSuccess, wr_id, kAtomicBytes};
        c.old_value = old;
        on_done(c);
      });
    }
  });
}

void QueuePair::post_send(std::span<const std::byte> msg,
                          std::uint64_t wr_id, CompletionFn on_done) {
  if (!open_) {
    flush_completion(WcOp::kSend, wr_id, static_cast<std::uint32_t>(msg.size()),
                     std::move(on_done));
    return;
  }
  Fabric& f = *fabric_;
  sim::Scheduler& sched = f.sched_;
  const CostModel& cm = f.cost_;
  ++f.stats_.sends;

  std::vector<std::byte> data(msg.begin(), msg.end());
  const auto size = static_cast<std::uint32_t>(data.size());

  if (f.obs_) {
    f.obs_->trace(sched.now(), local_, obs::TraceKind::kSendPosted, obs::kNoShard, size);
  }

  Nic& tx = f.node(local_).nic();
  const double pen_tx = cm.qp_penalty(tx.qp_count);
  const Time tx_start = std::max(sched.now(), tx.tx_free);
  tx.tx_free = tx_start + scaled(cm.nic_tx_overhead, pen_tx) + cm.two_sided_extra +
               cm.rdma_wire_time(size);
  ++tx.tx_ops;
  tx.tx_bytes += size;

  const Time arrival = tx.tx_free + cm.rdma_propagation;

  Nic& rx = f.node(remote_).nic();
  const double pen_rx = cm.qp_penalty(rx.qp_count);
  Time commit = std::max(arrival, rx.rx_free) + scaled(cm.nic_rx_overhead, pen_rx) +
                cm.two_sided_extra;
  rx.rx_free = commit;
  ++rx.rx_ops;
  rx.rx_bytes += size;

  commit = std::max(commit, last_commit_);
  last_commit_ = commit;

  sched.at(commit, [this, &f, &sched, data = std::move(data), wr_id,
                    on_done = std::move(on_done), size, commit, gen = generation_]() mutable {
    const CostModel& cost = f.cost_;
    if (!open_ || generation_ != gen) {
      if (on_done) on_done(Completion{WcOp::kSend, WcStatus::kFlushed, wr_id, 0});
      return;
    }
    if (!f.node(remote_).alive()) {
      ++f.stats_.dead_peer_errors;
      if (on_done) {
        sched.after(cost.peer_timeout, [on_done = std::move(on_done), wr_id, size] {
          on_done(Completion{WcOp::kSend, WcStatus::kRemoteDead, wr_id, size});
        });
      }
      return;
    }
    peer_->deliver_send(std::move(data), commit);
    if (on_done) {
      sched.after(cost.rdma_propagation, [on_done = std::move(on_done), wr_id, size] {
        on_done(Completion{WcOp::kSend, WcStatus::kSuccess, wr_id, size});
      });
    }
  });
}

void QueuePair::deliver_send(std::vector<std::byte> data, Time commit_time) {
  if (!open_) return;  // closed endpoint: inbound sends are silently flushed
  if (recv_queue_.empty()) {
    // Receiver-not-ready: hold the message until a receive is posted,
    // modelling RNR retry without loss.
    pending_sends_.push_back(PendingSend{std::move(data), commit_time});
    return;
  }
  RecvBuf rb = recv_queue_.front();
  recv_queue_.pop_front();
  const auto len = static_cast<std::uint32_t>(std::min(data.size(), rb.buf.size()));
  std::memcpy(rb.buf.data(), data.data(), len);
  if (fabric_->obs_) {
    fabric_->obs_->trace(fabric_->sched_.now(), local_, obs::TraceKind::kSendDelivered,
                         obs::kNoShard, len);
  }
  if (recv_handler_) {
    recv_handler_(Completion{WcOp::kRecv, WcStatus::kSuccess, rb.wr_id, len},
                  rb.buf.subspan(0, len));
  }
}

void QueuePair::close() {
  open_ = false;
  ++generation_;
  last_commit_ = 0;
  recv_queue_.clear();
  pending_sends_.clear();
  recv_handler_ = nullptr;
}

void QueuePair::reopen(std::uint32_t id, NodeId local, NodeId remote) {
  id_ = id;
  local_ = local;
  remote_ = remote;
  open_ = true;
  ++generation_;
  last_commit_ = 0;
}

void QueuePair::flush_completion(WcOp op, std::uint64_t wr_id, std::uint32_t size,
                                 CompletionFn on_done) {
  if (!on_done) return;
  fabric_->sched_.after(0, [on_done = std::move(on_done), op, wr_id, size] {
    on_done(Completion{op, WcStatus::kFlushed, wr_id, size});
  });
}

void QueuePair::post_recv(std::span<std::byte> buf, std::uint64_t wr_id) {
  if (!open_) return;
  recv_queue_.push_back(RecvBuf{buf, wr_id});
  if (!pending_sends_.empty()) {
    PendingSend ps = std::move(pending_sends_.front());
    pending_sends_.pop_front();
    // Deliver in a fresh event to avoid reentrancy surprises for callers.
    fabric_->sched_.after(0, [this, data = std::move(ps.data), t = ps.commit_time]() mutable {
      deliver_send(std::move(data), t);
    });
  }
}

}  // namespace hydra::fabric
