// Reliable-connected queue pairs: the verbs-like data-plane API.
//
// Semantics reproduced from RC verbs:
//  * one-sided RDMA Write / Read move real bytes to/from registered remote
//    memory with zero involvement of the remote CPU;
//  * writes on one QP commit to remote memory **in posted order** (the
//    property the indicator-encapsulated message format depends on);
//  * two-sided Send consumes a posted Receive at the responder;
//  * ops toward a dead peer complete with kRemoteDead after a timeout.
//
// Divergence from hardware, documented in DESIGN.md: source buffers are
// snapshotted at post time (as if the NIC DMA-read them instantly), and an
// RDMA Read observes target memory atomically at the moment the target NIC
// serves it. Read-write races across ops still occur and are what the
// guardian-word machinery handles.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "fabric/memory_region.hpp"

namespace hydra::fabric {

class Fabric;

enum class WcOp : std::uint8_t { kWrite, kRead, kSend, kRecv, kCas, kFaa };

enum class WcStatus : std::uint8_t {
  kSuccess = 0,
  kProtectionError,  ///< rkey unknown or access outside registered bounds
  kRemoteDead,       ///< retransmit exhaustion talking to a crashed peer
  kFlushed,          ///< QP torn down with the op still outstanding
};

constexpr const char* to_string(WcStatus s) noexcept {
  switch (s) {
    case WcStatus::kSuccess: return "SUCCESS";
    case WcStatus::kProtectionError: return "PROTECTION_ERROR";
    case WcStatus::kRemoteDead: return "REMOTE_DEAD";
    case WcStatus::kFlushed: return "FLUSHED";
  }
  return "?";
}

/// Work completion, delivered to the initiator's callback.
struct Completion {
  WcOp op = WcOp::kWrite;
  WcStatus status = WcStatus::kSuccess;
  std::uint64_t wr_id = 0;
  std::uint32_t byte_len = 0;
  /// Atomic verbs only (kCas/kFaa, status kSuccess): the 64-bit value the
  /// target word held immediately before the atomic executed.
  std::uint64_t old_value = 0;
};

using CompletionFn = std::function<void(const Completion&)>;
/// Responder-side delivery of a Send into a posted Receive buffer.
using RecvHandler = std::function<void(const Completion&, std::span<std::byte> data)>;

class QueuePair {
 public:
  QueuePair(Fabric& fabric, std::uint32_t id, NodeId local, NodeId remote)
      : fabric_(&fabric), id_(id), local_(local), remote_(remote) {}

  QueuePair(const QueuePair&) = delete;
  QueuePair& operator=(const QueuePair&) = delete;

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] NodeId local_node() const noexcept { return local_; }
  [[nodiscard]] NodeId remote_node() const noexcept { return remote_; }
  [[nodiscard]] QueuePair* peer() const noexcept { return peer_; }
  /// False once the QP has been torn down via Fabric::disconnect. Ops posted
  /// on (or still in flight through) a closed QP complete with kFlushed.
  [[nodiscard]] bool open() const noexcept { return open_; }
  /// Bumped on every teardown/reuse; in-flight ops compare it at commit time
  /// so a recycled QP slot can never deliver a stale op's bytes.
  [[nodiscard]] std::uint32_t generation() const noexcept { return generation_; }

  /// One-sided write of `src` into the peer's (rkey, offset). `on_done` is
  /// optional (pass nullptr for unsignalled writes, the common case for
  /// message passing where the response buffer is the acknowledgement).
  /// `batched` marks a WQE posted in the same doorbell batch as the
  /// initiator's previous post: it pays the reduced per-WQE overhead of the
  /// cost model's doorbell-batching discount.
  void post_write(std::span<const std::byte> src, RemoteAddr dst,
                  std::uint64_t wr_id = 0, CompletionFn on_done = nullptr,
                  bool batched = false);

  /// One-sided read of `dst.size()` bytes from the peer's (rkey, offset).
  void post_read(std::span<std::byte> dst, RemoteAddr src,
                 std::uint64_t wr_id = 0, CompletionFn on_done = nullptr);

  /// One-sided 8-byte compare-and-swap on the peer's (rkey, offset): iff the
  /// target word equals `compare`, it becomes `swap`. The pre-op word comes
  /// back in Completion::old_value (the CAS succeeded iff old_value ==
  /// compare). Rides the same posted-order commit pipeline as writes, and
  /// the fabric write-fault hook applies: a torn atomic *executes* at the
  /// target but its completion flushes (the initiator cannot learn the
  /// outcome); a dropped atomic does not execute and flushes.
  void post_cas(RemoteAddr dst, std::uint64_t compare, std::uint64_t swap,
                std::uint64_t wr_id = 0, CompletionFn on_done = nullptr);

  /// One-sided 8-byte fetch-and-add; same semantics/faulting as post_cas.
  void post_faa(RemoteAddr dst, std::uint64_t add,
                std::uint64_t wr_id = 0, CompletionFn on_done = nullptr);

  /// Two-sided send; consumes a Receive posted on the peer QP.
  void post_send(std::span<const std::byte> msg,
                 std::uint64_t wr_id = 0, CompletionFn on_done = nullptr);

  /// Posts a receive buffer for inbound Sends.
  void post_recv(std::span<std::byte> buf, std::uint64_t wr_id = 0);

  /// Handler invoked when a Send lands in one of our posted Receives.
  void set_recv_handler(RecvHandler handler) { recv_handler_ = std::move(handler); }

  [[nodiscard]] std::size_t posted_recvs() const noexcept { return recv_queue_.size(); }

 private:
  friend class Fabric;

  struct RecvBuf {
    std::span<std::byte> buf;
    std::uint64_t wr_id;
  };
  struct PendingSend {
    std::vector<std::byte> data;
    Time commit_time;
  };

  /// Shared pipeline for post_cas/post_faa: for kCas `operand` is the swap
  /// value, for kFaa the addend (and `compare` is ignored).
  void post_atomic(WcOp op, RemoteAddr dst, std::uint64_t compare,
                   std::uint64_t operand, std::uint64_t wr_id, CompletionFn on_done);

  void deliver_send(std::vector<std::byte> data, Time commit_time);
  /// Tears the endpoint down: pending receives and RNR-held sends are
  /// dropped, the recv handler is cleared, and the generation advances so
  /// in-flight ops flush instead of committing.
  void close();
  /// Re-arms a closed endpoint for a fresh logical connection (slot reuse).
  void reopen(std::uint32_t id, NodeId local, NodeId remote);
  /// Immediately flushes `on_done` for an op that hit a closed QP.
  void flush_completion(WcOp op, std::uint64_t wr_id, std::uint32_t size,
                        CompletionFn on_done);

  Fabric* fabric_;
  std::uint32_t id_;
  NodeId local_;
  NodeId remote_;
  QueuePair* peer_ = nullptr;
  bool open_ = true;
  std::uint32_t generation_ = 0;
  /// Commit time of the last in-order operation targeting the peer.
  Time last_commit_ = 0;
  std::deque<RecvBuf> recv_queue_;
  std::deque<PendingSend> pending_sends_;  // RNR: sends waiting for a recv
  RecvHandler recv_handler_;
};

}  // namespace hydra::fabric
