// The simulated cluster interconnect: nodes, NICs, QPs and TCP channels.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "fabric/cost_model.hpp"
#include "fabric/memory_region.hpp"
#include "fabric/queue_pair.hpp"
#include "fabric/tcp.hpp"
#include "sim/scheduler.hpp"

namespace hydra::obs {
class Plane;
}  // namespace hydra::obs

namespace hydra::fabric {

/// Per-node NIC state: independent tx/rx serialization and QP census.
struct Nic {
  Time tx_free = 0;  ///< earliest time the send engine is idle
  Time rx_free = 0;  ///< earliest time the receive/DMA engine is idle
  /// Kernel-TCP (IPoIB) streams share the same physical port but run at the
  /// stack's effective bandwidth; serialized separately from verbs traffic.
  Time tcp_tx_free = 0;
  std::uint32_t qp_count = 0;
  std::uint64_t tx_ops = 0;
  std::uint64_t rx_ops = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_bytes = 0;
};

class Node {
 public:
  Node(NodeId id, std::string name) : id_(id), name_(std::move(name)) {}

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] bool alive() const noexcept { return alive_; }
  [[nodiscard]] Nic& nic() noexcept { return nic_; }
  [[nodiscard]] const Nic& nic() const noexcept { return nic_; }

  /// Registers caller-owned bytes for remote access; the region handle
  /// stays valid for the node's lifetime.
  MemoryRegion* register_memory(std::span<std::byte> bytes);
  [[nodiscard]] MemoryRegion* find_region(std::uint32_t rkey) noexcept;

 private:
  friend class Fabric;
  NodeId id_;
  std::string name_;
  bool alive_ = true;
  Nic nic_;
  std::uint32_t next_rkey_ = 1;
  std::vector<std::unique_ptr<MemoryRegion>> regions_;
};

/// Aggregate traffic counters, useful for asserting e.g. "RDMA Read GETs
/// issue zero requests to the server CPU".
struct FabricStats {
  std::uint64_t rdma_writes = 0;
  std::uint64_t rdma_reads = 0;
  std::uint64_t sends = 0;
  std::uint64_t tcp_messages = 0;
  std::uint64_t protection_errors = 0;
  std::uint64_t dead_peer_errors = 0;
  std::uint64_t torn_writes = 0;     ///< fault-injected partial commits
  std::uint64_t dropped_writes = 0;  ///< fault-injected lost writes
  std::uint64_t qp_connects = 0;     ///< QP pairs established (incl. reuses)
  std::uint64_t qp_disconnects = 0;  ///< QP pairs reclaimed via disconnect()
  std::uint64_t qp_slot_reuses = 0;  ///< connects served from the free pool
  std::uint64_t rdma_atomics = 0;    ///< CAS + FAA verbs posted
  /// Fault-injected atomics. A "torn" atomic *executes* at the target but
  /// its completion flushes (the initiator cannot learn the outcome); a
  /// dropped atomic never executes and flushes.
  std::uint64_t torn_atomics = 0;
  std::uint64_t dropped_atomics = 0;
  std::uint64_t torn_reads = 0;  ///< fault-injected corrupted read snapshots
  /// MR-permission verbs (fail-stop fencing, DESIGN.md §14).
  std::uint64_t rkey_revocations = 0;     ///< revoke_rkey verbs that applied
  std::uint64_t rkey_reregistrations = 0; ///< reregister_mr fresh-rkey grants
  std::uint64_t revoke_faults = 0;        ///< fault-injected torn/dropped revocations
};

/// Fault-injection verdict for one RDMA Write, decided at commit time.
/// `kTorn` commits only the first `torn_bytes` of the payload (modelling the
/// crash window in which a one-sided write is partially applied) and `kDrop`
/// commits nothing; both complete the initiator's WR with kFlushed after the
/// retransmission timeout, the way real RC hardware surfaces a write that
/// never fully landed.
struct WriteFault {
  enum class Kind : std::uint8_t { kDeliver, kTorn, kDrop };
  Kind kind = Kind::kDeliver;
  std::uint32_t torn_bytes = 0;
};

/// Chaos hook consulted once per RDMA Write as it commits to the target.
using WriteFaultHook = std::function<WriteFault(
    NodeId src, NodeId dst, const RemoteAddr& addr, std::uint32_t size)>;

/// Fault-injection verdict for one RDMA Read, decided when the target
/// snapshot is taken. `kTorn` delivers the first `torn_bytes` intact and
/// garbles the rest, completing kSuccess: it models the crash/rebind window
/// in which a reader races a concurrent overwrite of the target region, so
/// the *reader-side* validation (page checksums, guardian words) is what
/// must catch it.
struct ReadFault {
  enum class Kind : std::uint8_t { kDeliver, kTorn };
  Kind kind = Kind::kDeliver;
  std::uint32_t torn_bytes = 8;
};

/// Chaos hook consulted once per RDMA Read as its target snapshot is taken.
using ReadFaultHook = std::function<ReadFault(
    NodeId src, NodeId dst, const RemoteAddr& addr, std::uint32_t size)>;

/// Fault-injection verdict for one MR-permission revocation. `kTorn` applies
/// the revocation but loses the confirmation (the initiator must retry a
/// verb that already took effect -- revoking a revoked region is
/// idempotent); `kDrop` neither applies nor confirms.
struct RevokeFault {
  enum class Kind : std::uint8_t { kDeliver, kTorn, kDrop };
  Kind kind = Kind::kDeliver;
};

/// Chaos hook consulted once per revoke_rkey verb as it reaches the owner.
using RevokeFaultHook = std::function<RevokeFault(NodeId owner, std::uint32_t rkey)>;

class Fabric {
 public:
  explicit Fabric(sim::Scheduler& sched, CostModel cost = {})
      : sched_(sched), cost_(cost) {}

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  [[nodiscard]] sim::Scheduler& scheduler() noexcept { return sched_; }
  [[nodiscard]] const CostModel& cost() const noexcept { return cost_; }
  [[nodiscard]] CostModel& cost() noexcept { return cost_; }

  Node& add_node(std::string name);
  [[nodiscard]] Node& node(NodeId id) noexcept { return *nodes_[id]; }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

  /// Creates a connected RC queue-pair pair between two (possibly equal)
  /// nodes. Both endpoints stay owned by the fabric.
  std::pair<QueuePair*, QueuePair*> connect(NodeId a, NodeId b);

  /// Tears down a QP pair created by connect(): both endpoints close (ops
  /// still in flight complete kFlushed, never committing), both NICs'
  /// qp_count drops, and the object pair goes to a free pool that connect()
  /// reuses — so long-running reclamation keeps memory bounded. Passing
  /// either endpoint of the pair is fine; a second disconnect is a no-op.
  void disconnect(QueuePair* qp);

  /// QP pairs currently established (connects minus disconnects).
  [[nodiscard]] std::size_t live_qp_pairs() const noexcept {
    return static_cast<std::size_t>(stats_.qp_connects - stats_.qp_disconnects);
  }

  /// Creates a connected TCP channel pair between two nodes.
  std::pair<TcpConn*, TcpConn*> tcp_connect(NodeId a, NodeId b);

  /// Crash injection: the node stops committing inbound ops; initiators
  /// talking to it start completing with kRemoteDead after peer_timeout.
  void kill_node(NodeId id) { nodes_[id]->alive_ = false; }
  void revive_node(NodeId id) { nodes_[id]->alive_ = true; }

  /// Installs (or clears, with nullptr) the chaos write-fault hook. The hook
  /// runs at commit time of every RDMA Write, after the dead-peer check but
  /// before protection validation, so it can tear or drop otherwise-valid
  /// writes deterministically.
  void set_write_fault_hook(WriteFaultHook hook) { write_fault_ = std::move(hook); }

  /// Installs (or clears, with nullptr) the chaos read-fault hook, consulted
  /// when an RDMA Read snapshots its target bytes.
  void set_read_fault_hook(ReadFaultHook hook) { read_fault_ = std::move(hook); }

  /// Installs (or clears, with nullptr) the chaos revocation-fault hook,
  /// consulted once per revoke_rkey verb as it reaches the region owner.
  void set_revoke_fault_hook(RevokeFaultHook hook) { revoke_fault_ = std::move(hook); }

  /// MR-permission verb (fail-stop fencing, DESIGN.md §14): after `latency`,
  /// revokes remote access to `rkey` on `owner` so in-flight and future
  /// one-sided ops against it complete kProtectionError -- the fenced writer
  /// physically cannot land another byte. `on_done(confirmed)` fires on the
  /// virtual clock: false means the verb could not be confirmed (dead owner,
  /// unknown rkey, or an injected torn/dropped delivery) and the caller
  /// should retry -- the verb is idempotent, so confirming an
  /// already-revoked region reports success.
  void revoke_rkey(NodeId owner, std::uint32_t rkey, Duration latency,
                   std::function<void(bool confirmed)> on_done);

  /// Re-registers a revoked region's bytes under a fresh rkey (what a new
  /// lease holder does after fencing its predecessor). The old region stays
  /// mapped -- in-flight ops addressing the dead rkey keep failing cleanly --
  /// and the caller must re-install any write hook on the returned region.
  MemoryRegion* reregister_mr(NodeId owner, MemoryRegion* old);

  [[nodiscard]] const FabricStats& stats() const noexcept { return stats_; }

  /// Attaches (or detaches, with nullptr) an observability plane. The plane
  /// is a passive sink -- fabric behaviour is identical with or without it.
  void set_obs(obs::Plane* plane) noexcept { obs_ = plane; }
  [[nodiscard]] obs::Plane* obs() const noexcept { return obs_; }

 private:
  friend class QueuePair;
  friend class TcpConn;

  sim::Scheduler& sched_;
  CostModel cost_;
  FabricStats stats_;
  WriteFaultHook write_fault_;
  ReadFaultHook read_fault_;
  RevokeFaultHook revoke_fault_;
  obs::Plane* obs_ = nullptr;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<QueuePair>> qps_;
  /// Closed QP pairs awaiting reuse, stored as the (a->b, b->a) endpoints.
  std::vector<std::pair<QueuePair*, QueuePair*>> qp_pool_;
  std::uint32_t next_qp_id_ = 0;
  std::vector<std::unique_ptr<TcpConn>> tcp_conns_;
};

}  // namespace hydra::fabric
