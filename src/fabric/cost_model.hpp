// Timing model of the simulated interconnect.
//
// Calibrated to the paper's testbed magnitudes: 40 Gbps ConnectX-3
// InfiniBand (1-3 us small-message round trips for verbs) versus IPoIB /
// kernel TCP (~100 us round trips, per-message kernel CPU burn). Absolute
// numbers are not the reproduction target -- the *ratios* between transports
// and the saturation behaviours are (DESIGN.md §1).
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/types.hpp"

namespace hydra::fabric {

struct CostModel {
  // --- RDMA (verbs) path -------------------------------------------------
  /// Wire bandwidth in bytes per nanosecond (5 B/ns = 40 Gbps).
  double rdma_bytes_per_ns = 5.0;
  /// One-way propagation incl. switch traversal.
  Duration rdma_propagation = 350;
  /// Initiator NIC work per WQE (doorbell, DMA setup).
  Duration nic_tx_overhead = 140;
  /// Initiator NIC work for a WQE posted in the same doorbell batch as its
  /// predecessor: the MMIO doorbell write and DMA descriptor fetch are
  /// amortized over the batch (HERD-style doorbell batching), leaving only
  /// the per-WQE processing slice.
  Duration nic_tx_batched_overhead = 35;
  /// Target NIC work per inbound op (packet processing, DMA placement).
  Duration nic_rx_overhead = 90;
  /// Extra per-side cost of two-sided Send/Recv versus one-sided Write:
  /// receive WQE consumption and CQE generation at the responder plus the
  /// heavier completion path at the initiator (HERD's observation that
  /// one-sided write outperforms two-sided verbs).
  Duration two_sided_extra = 1000;
  /// Extra target-NIC cost of an atomic verb (CAS / Fetch-and-Add) over a
  /// plain 8-byte write: the HCA serialises atomics through its internal
  /// read-modify-write unit (PCIe round trip to host memory plus the
  /// serialisation slot), which is why atomics lag writes on real HCAs.
  Duration atomic_extra = 120;

  // --- NIC queue-pair scaling penalty (paper §6.3) -----------------------
  // Beyond a threshold the HCA's QP state no longer fits its on-chip cache
  // and every op pays progressively more; this is what saturates scale-up
  // past ~5 shards (shards x clients connections). The paper's base config
  // (50 clients x 4 shards = 200 QPs) sits below the knee; 60 clients x 5+
  // shards crosses it.
  std::uint32_t qp_penalty_threshold = 280;
  double qp_penalty_slope = 0.008;
  double qp_penalty_cap = 2.5;
  // Second knee: past a few thousand QPs the HCA's ICM/translation caches
  // thrash outright (RDMAvisor's deployment wall), so the flat plateau above
  // the first cap gives way to a steeper climb toward a much higher ceiling.
  // Identity for qp_count <= qp_extreme_threshold, so every pre-existing
  // workload (max ~500 QPs) is untouched.
  std::uint32_t qp_extreme_threshold = 2048;
  double qp_extreme_slope = 0.002;
  double qp_extreme_cap = 12.0;

  // --- TCP / IPoIB path ---------------------------------------------------
  /// One-way latency through both kernel stacks plus the wire.
  Duration tcp_latency = 40'000;
  /// Effective stream bandwidth (IPoIB reaches a fraction of link rate).
  double tcp_bytes_per_ns = 0.6;
  /// CPU time the sender/receiver burns per message in the kernel path;
  /// charged by the endpoint actors, exposed here so all users agree.
  Duration tcp_kernel_cost = 2'500;

  // --- Failure detection ---------------------------------------------------
  /// Time until an op posted toward a dead peer completes with an error
  /// (models RC retransmit exhaustion).
  Duration peer_timeout = 500 * kMicrosecond;

  [[nodiscard]] double qp_penalty(std::uint32_t qp_count) const noexcept {
    if (qp_count <= qp_penalty_threshold) return 1.0;
    const double f = 1.0 + qp_penalty_slope * static_cast<double>(qp_count - qp_penalty_threshold);
    const double tier1 = std::min(f, qp_penalty_cap);
    if (qp_count <= qp_extreme_threshold) return tier1;
    const double g =
        tier1 + qp_extreme_slope * static_cast<double>(qp_count - qp_extreme_threshold);
    // The extreme cap can be configured below where tier 1 tops out; clamp
    // against max(cap, tier1) so the function stays continuous at the second
    // knee and monotone non-decreasing for every parameterisation.
    return std::min(g, std::max(qp_extreme_cap, tier1));
  }

  /// Per-WQE initiator overhead, discounted when the WQE rides an already
  /// rung doorbell (`batched`).
  [[nodiscard]] Duration tx_overhead(bool batched) const noexcept {
    return batched ? nic_tx_batched_overhead : nic_tx_overhead;
  }

  [[nodiscard]] Duration rdma_wire_time(std::uint64_t bytes) const noexcept {
    return static_cast<Duration>(static_cast<double>(bytes) / rdma_bytes_per_ns);
  }
  [[nodiscard]] Duration tcp_wire_time(std::uint64_t bytes) const noexcept {
    return static_cast<Duration>(static_cast<double>(bytes) / tcp_bytes_per_ns);
  }
};

}  // namespace hydra::fabric
