// Kernel-TCP / IPoIB transport model, used by the baseline systems
// (memcached-like, redis-like, mini-HDFS) and by HydraDB's own TCP fallback.
//
// Compared to the RDMA path it adds tens of microseconds of stack latency
// and burns tcp_kernel_cost of CPU per message on each endpoint -- the two
// effects the paper identifies as the reason TCP key-value stores cannot
// exploit fast interconnects.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace hydra::fabric {

class Fabric;

class TcpConn {
 public:
  using Handler = std::function<void(std::vector<std::byte> message)>;

  TcpConn(Fabric& fabric, std::uint32_t id, NodeId local, NodeId remote)
      : fabric_(&fabric), id_(id), local_(local), remote_(remote) {}

  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] NodeId local_node() const noexcept { return local_; }
  [[nodiscard]] NodeId remote_node() const noexcept { return remote_; }
  [[nodiscard]] TcpConn* peer() const noexcept { return peer_; }

  /// Sends one framed message; the peer's handler runs at delivery time.
  /// Messages on one connection arrive in order. Returns the virtual time
  /// at which the sender's syscall path is done (callers charging CPU for
  /// the kernel send path should busy themselves until then).
  Time send(std::span<const std::byte> message);

  /// Installs the receive callback (the "application read loop").
  void set_handler(Handler handler) { handler_ = std::move(handler); }

 private:
  friend class Fabric;

  Fabric* fabric_;
  std::uint32_t id_;
  NodeId local_;
  NodeId remote_;
  TcpConn* peer_ = nullptr;
  Time last_delivery_ = 0;
  Handler handler_;
};

}  // namespace hydra::fabric
