// Registered memory regions -- the unit of RDMA addressability.
//
// A region wraps caller-owned bytes; remote peers address it by (rkey,
// offset) and the fabric validates every access against the registered
// bounds, the way an HCA enforces protection.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>

#include "common/types.hpp"

namespace hydra::fabric {

/// Remote address: rkey selects the region on the QP's remote node.
struct RemoteAddr {
  std::uint32_t rkey = 0;
  std::uint64_t offset = 0;
};

class MemoryRegion {
 public:
  MemoryRegion(NodeId node, std::uint32_t rkey, std::span<std::byte> bytes)
      : node_(node), rkey_(rkey), bytes_(bytes) {}

  [[nodiscard]] NodeId node() const noexcept { return node_; }
  [[nodiscard]] std::uint32_t rkey() const noexcept { return rkey_; }
  [[nodiscard]] std::byte* base() const noexcept { return bytes_.data(); }
  [[nodiscard]] std::size_t length() const noexcept { return bytes_.size(); }

  [[nodiscard]] bool contains(std::uint64_t offset, std::size_t len) const noexcept {
    return !revoked_ && offset <= bytes_.size() && len <= bytes_.size() - offset;
  }

  /// Deregisters the region, as a dying process would: in-flight remote
  /// accesses complete with protection errors instead of touching memory
  /// the owner may have freed.
  void revoke() noexcept {
    revoked_ = true;
    write_hook_ = nullptr;
  }
  [[nodiscard]] bool revoked() const noexcept { return revoked_; }

  [[nodiscard]] std::span<std::byte> slice(std::uint64_t offset, std::size_t len) const noexcept {
    return bytes_.subspan(offset, len);
  }

  [[nodiscard]] RemoteAddr addr(std::uint64_t offset = 0) const noexcept {
    return RemoteAddr{rkey_, offset};
  }

  /// Invoked (at commit time) whenever a remote RDMA Write lands in this
  /// region. Server shards use it to model their polling loops without a
  /// literal 100ns busy-poll event storm (see server/shard.cpp).
  using WriteHook = std::function<void(std::uint64_t offset, std::uint32_t len)>;
  void set_write_hook(WriteHook hook) { write_hook_ = std::move(hook); }
  [[nodiscard]] const WriteHook& write_hook() const noexcept { return write_hook_; }

 private:
  NodeId node_;
  std::uint32_t rkey_;
  std::span<std::byte> bytes_;
  WriteHook write_hook_;
  bool revoked_ = false;
};

}  // namespace hydra::fabric
