#include "index/leaf_page.hpp"

#include <cstring>
#include <limits>

namespace hydra::index {

namespace {

// Header layout (kLeafPageHeaderBytes = 48, little-endian):
//   [0]  magic          u32
//   [4]  count          u32
//   [8]  leaf_id        u64
//   [16] leaf_version   u64
//   [24] epoch          u64
//   [32] payload_bytes  u32   (entry region length, header excluded)
//   [36] flags          u32   (bit0: last leaf on this shard)
//   [40] checksum       u64   (FNV-1a over header-with-checksum-zeroed + payload)
// Entries: repeated { klen u16, vlen u32, key bytes, value bytes }.
constexpr std::size_t kEntryOverhead = 6;
constexpr std::size_t kChecksumOffset = 40;

void put_u16(std::byte* p, std::uint16_t v) { std::memcpy(p, &v, sizeof v); }
void put_u32(std::byte* p, std::uint32_t v) { std::memcpy(p, &v, sizeof v); }
void put_u64(std::byte* p, std::uint64_t v) { std::memcpy(p, &v, sizeof v); }

std::uint16_t get_u16(const std::byte* p) {
  std::uint16_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}
std::uint32_t get_u32(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}
std::uint64_t get_u64(const std::byte* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

std::uint64_t fnv1a(std::uint64_t h, const std::byte* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(p[i]));
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::uint64_t page_checksum(std::span<const std::byte> encoded) {
  // Header with the checksum field treated as zero, then the payload.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  h = fnv1a(h, encoded.data(), kChecksumOffset);
  const std::byte zeros[8] = {};
  h = fnv1a(h, zeros, sizeof zeros);
  h = fnv1a(h, encoded.data() + kLeafPageHeaderBytes,
            encoded.size() - kLeafPageHeaderBytes);
  return h;
}

}  // namespace

std::size_t leaf_page_bytes(
    const std::vector<std::pair<std::string_view, std::string_view>>& entries) {
  std::size_t n = kLeafPageHeaderBytes;
  for (const auto& [k, v] : entries) n += kEntryOverhead + k.size() + v.size();
  return n;
}

bool encode_leaf_page(
    std::span<std::byte> out, std::uint64_t leaf_id, std::uint64_t leaf_version,
    std::uint64_t epoch, bool last,
    const std::vector<std::pair<std::string_view, std::string_view>>& entries) {
  const std::size_t total = leaf_page_bytes(entries);
  if (out.size() < total) return false;
  std::size_t off = kLeafPageHeaderBytes;
  for (const auto& [k, v] : entries) {
    if (k.size() > std::numeric_limits<std::uint16_t>::max() ||
        v.size() > std::numeric_limits<std::uint32_t>::max()) {
      return false;
    }
    put_u16(out.data() + off, static_cast<std::uint16_t>(k.size()));
    put_u32(out.data() + off + 2, static_cast<std::uint32_t>(v.size()));
    std::memcpy(out.data() + off + kEntryOverhead, k.data(), k.size());
    std::memcpy(out.data() + off + kEntryOverhead + k.size(), v.data(), v.size());
    off += kEntryOverhead + k.size() + v.size();
  }
  put_u32(out.data(), kLeafPageMagic);
  put_u32(out.data() + 4, static_cast<std::uint32_t>(entries.size()));
  put_u64(out.data() + 8, leaf_id);
  put_u64(out.data() + 16, leaf_version);
  put_u64(out.data() + 24, epoch);
  put_u32(out.data() + 32, static_cast<std::uint32_t>(total - kLeafPageHeaderBytes));
  put_u32(out.data() + 36, last ? kLeafPageFlagLast : 0);
  put_u64(out.data() + kChecksumOffset, 0);
  put_u64(out.data() + kChecksumOffset, page_checksum(out.first(total)));
  return true;
}

std::optional<LeafPage> decode_leaf_page(std::span<const std::byte> bytes) {
  if (bytes.size() < kLeafPageHeaderBytes) return std::nullopt;
  if (get_u32(bytes.data()) != kLeafPageMagic) return std::nullopt;
  const std::uint32_t count = get_u32(bytes.data() + 4);
  const std::uint32_t payload_bytes = get_u32(bytes.data() + 32);
  if (payload_bytes > bytes.size() - kLeafPageHeaderBytes) return std::nullopt;
  // Each entry needs at least its length fields; reject absurd counts before
  // walking (or allocating for) the payload.
  if (static_cast<std::uint64_t>(count) * kEntryOverhead > payload_bytes) {
    return std::nullopt;
  }
  const std::uint32_t flags = get_u32(bytes.data() + 36);
  if ((flags & ~kLeafPageFlagLast) != 0) return std::nullopt;

  const std::span<const std::byte> encoded =
      bytes.first(kLeafPageHeaderBytes + payload_bytes);
  if (get_u64(bytes.data() + kChecksumOffset) != page_checksum(encoded)) {
    return std::nullopt;
  }

  LeafPage page;
  page.leaf_id = get_u64(bytes.data() + 8);
  page.leaf_version = get_u64(bytes.data() + 16);
  page.epoch = get_u64(bytes.data() + 24);
  page.last = (flags & kLeafPageFlagLast) != 0;
  page.entries.reserve(count);
  std::size_t off = kLeafPageHeaderBytes;
  const std::size_t end = kLeafPageHeaderBytes + payload_bytes;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (end - off < kEntryOverhead) return std::nullopt;
    const std::uint16_t klen = get_u16(bytes.data() + off);
    const std::uint32_t vlen = get_u32(bytes.data() + off + 2);
    off += kEntryOverhead;
    if (end - off < static_cast<std::size_t>(klen) + vlen) return std::nullopt;
    const char* kp = reinterpret_cast<const char*>(bytes.data() + off);
    const char* vp = kp + klen;
    page.entries.emplace_back(std::string(kp, klen), std::string(vp, vlen));
    off += static_cast<std::size_t>(klen) + vlen;
  }
  if (off != end) return std::nullopt;  // undeclared trailing bytes in the payload
  return page;
}

}  // namespace hydra::index
