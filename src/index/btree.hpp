// Per-shard ordered index (DESIGN.md §13): an in-memory B+-tree keyed on the
// user key whose leaf entries point at KVStore arena items by offset. The
// KVStore maintains it inline on every mutation (insert/update/remove), so
// every write path -- message handlers, txn apply/undo, replication replay,
// migration merge + scrub, direct loads -- keeps it consistent for free.
//
// Leaves carry a monotonically increasing id and a version counter bumped on
// every entry mutation (including splits/merges/borrows), which is what the
// shard's one-sided leaf-page mirror keys its staleness check on: a mirrored
// page whose (id, version) no longer matches the live leaf is re-serialized
// before being advertised to clients.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hydra::index {

class OrderedIndex {
 public:
  struct Entry {
    std::string key;
    std::uint64_t offset = 0;  ///< arena offset of the live KVStore item
  };

  /// A read-only view of one leaf, stable until the next tree mutation.
  struct LeafRef {
    std::uint64_t id = 0;
    std::uint64_t version = 0;
    bool last = false;  ///< no leaf follows in the chain
    const std::vector<Entry>* entries = nullptr;
  };

  /// `fanout` bounds both leaf entries and inner-node children; the minimum
  /// fill is fanout/2. Small fanouts (4..8) are for tests that want to force
  /// deep trees and frequent splits/merges.
  explicit OrderedIndex(std::size_t fanout = 32);
  ~OrderedIndex();

  OrderedIndex(const OrderedIndex&) = delete;
  OrderedIndex& operator=(const OrderedIndex&) = delete;

  /// Inserts `key` or reassigns its offset. Returns true when the key is new.
  bool insert_or_assign(std::string_view key, std::uint64_t offset);

  /// Removes `key`; returns false when absent.
  bool erase(std::string_view key);

  [[nodiscard]] std::optional<std::uint64_t> find(std::string_view key) const;

  /// In-order walk starting at the first key >= `from` (or > `from` when
  /// `exclusive`); stops when `fn` returns false.
  void scan(std::string_view from, bool exclusive,
            const std::function<bool(std::string_view key, std::uint64_t offset)>& fn) const;

  /// The leaf holding the first entry >= `from` (> when `exclusive`);
  /// nullopt when no such entry exists.
  [[nodiscard]] std::optional<LeafRef> leaf_for(std::string_view from, bool exclusive) const;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t leaf_count() const noexcept;
  [[nodiscard]] std::size_t fanout() const noexcept { return fanout_; }

  /// Structural self-check: key order within and across leaves, separator
  /// bounds, uniform leaf depth, fill bounds on non-root nodes, leaf-chain
  /// integrity (next/prev consistent, in key order), size consistency.
  /// Returns an empty string when every invariant holds, else a description
  /// of the first violation found.
  [[nodiscard]] std::string check_invariants() const;

 private:
  struct Node;
  struct Leaf;
  struct Inner;

  Leaf* leaf_lower_bound(std::string_view key) const;
  void destroy(Node* n);

  // Insert/erase recursion helpers (defined in btree.cpp).
  struct SplitResult;
  bool insert_rec(Node* n, std::string_view key, std::uint64_t offset,
                  std::optional<SplitResult>& split);
  bool erase_rec(Node* n, std::string_view key);
  void rebalance_child(Inner* parent, std::size_t ci);

  std::size_t fanout_;
  std::size_t size_ = 0;
  Node* root_ = nullptr;
  std::uint64_t next_leaf_id_ = 1;
};

}  // namespace hydra::index
