// One-sided-traversable leaf page layout (DESIGN.md §13). The shard
// serializes B+-tree leaves into a small MR-registered mirror region;
// clients RDMA-Read a whole page and validate it locally: magic, FNV-1a
// checksum over the encoded prefix, (leaf_id, leaf_version) against the
// hint that advertised the page, and the routing epoch stamped at
// serialization time. Any mismatch (torn read, slot reuse, stale mirror,
// epoch advance) falls back to the message path, which is always correct.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hydra::index {

inline constexpr std::uint32_t kLeafPageMagic = 0x484C4631;  // "HLF1"
inline constexpr std::size_t kLeafPageHeaderBytes = 48;
inline constexpr std::uint32_t kLeafPageFlagLast = 1;  ///< no leaf follows on this shard

struct LeafPage {
  std::uint64_t leaf_id = 0;
  std::uint64_t leaf_version = 0;
  std::uint64_t epoch = 0;  ///< routing epoch at serialization time
  bool last = false;
  std::vector<std::pair<std::string, std::string>> entries;  ///< (key, value), sorted
};

/// Encoded size for the given entries, header included.
[[nodiscard]] std::size_t leaf_page_bytes(
    const std::vector<std::pair<std::string_view, std::string_view>>& entries);

/// Serializes a page into `out` (which may be larger; the slack past the
/// encoded prefix is ignored by the decoder). Returns false when `out` is
/// too small or an entry overflows the length fields.
bool encode_leaf_page(std::span<std::byte> out, std::uint64_t leaf_id,
                      std::uint64_t leaf_version, std::uint64_t epoch, bool last,
                      const std::vector<std::pair<std::string_view, std::string_view>>& entries);

/// Hardened decode: every length is bounds-checked against the declared
/// payload, the checksum must match, and the entry region must be consumed
/// exactly. Returns nullopt on any inconsistency -- never a wild read.
[[nodiscard]] std::optional<LeafPage> decode_leaf_page(std::span<const std::byte> bytes);

}  // namespace hydra::index
