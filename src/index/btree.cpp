#include "index/btree.hpp"

#include <algorithm>
#include <cassert>

namespace hydra::index {

struct OrderedIndex::Node {
  bool is_leaf;
  explicit Node(bool leaf) : is_leaf(leaf) {}
};

struct OrderedIndex::Leaf : Node {
  Leaf() : Node(true) {}
  std::uint64_t id = 0;
  std::uint64_t version = 0;
  std::vector<Entry> entries;
  Leaf* next = nullptr;
  Leaf* prev = nullptr;
};

struct OrderedIndex::Inner : Node {
  Inner() : Node(false) {}
  // children.size() == keys.size() + 1; every key in children[i+1]'s subtree
  // is >= keys[i], every key in children[i]'s subtree is < keys[i].
  std::vector<std::string> keys;
  std::vector<Node*> children;
};

struct OrderedIndex::SplitResult {
  std::string separator;  ///< min key routed to the new right sibling
  Node* right = nullptr;
};

namespace {

struct EntryKeyLess {
  bool operator()(const OrderedIndex::Entry& e, std::string_view k) const {
    return e.key < k;
  }
  bool operator()(std::string_view k, const OrderedIndex::Entry& e) const {
    return k < e.key;
  }
};

}  // namespace

OrderedIndex::OrderedIndex(std::size_t fanout) : fanout_(fanout < 4 ? 4 : fanout) {
  Leaf* leaf = new Leaf();
  leaf->id = next_leaf_id_++;
  root_ = leaf;
}

OrderedIndex::~OrderedIndex() { destroy(root_); }

void OrderedIndex::destroy(Node* n) {
  if (n == nullptr) return;
  if (!n->is_leaf) {
    Inner* in = static_cast<Inner*>(n);
    for (Node* c : in->children) destroy(c);
    delete in;
  } else {
    delete static_cast<Leaf*>(n);
  }
}

// Child index for `key` under the separator convention above: the first
// separator > key bounds the child from the right; equal keys route right.
static std::size_t child_index(const std::vector<std::string>& keys, std::string_view key) {
  std::size_t lo = 0, hi = keys.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (key < keys[mid]) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

OrderedIndex::Leaf* OrderedIndex::leaf_lower_bound(std::string_view key) const {
  Node* n = root_;
  while (!n->is_leaf) {
    Inner* in = static_cast<Inner*>(n);
    n = in->children[child_index(in->keys, key)];
  }
  return static_cast<Leaf*>(n);
}

bool OrderedIndex::insert_or_assign(std::string_view key, std::uint64_t offset) {
  std::optional<SplitResult> split;
  const bool inserted = insert_rec(root_, key, offset, split);
  if (split.has_value()) {
    Inner* new_root = new Inner();
    new_root->keys.push_back(std::move(split->separator));
    new_root->children.push_back(root_);
    new_root->children.push_back(split->right);
    root_ = new_root;
  }
  if (inserted) ++size_;
  return inserted;
}

bool OrderedIndex::insert_rec(Node* n, std::string_view key, std::uint64_t offset,
                              std::optional<SplitResult>& split) {
  if (n->is_leaf) {
    Leaf* leaf = static_cast<Leaf*>(n);
    auto it = std::lower_bound(leaf->entries.begin(), leaf->entries.end(), key,
                               EntryKeyLess{});
    ++leaf->version;
    if (it != leaf->entries.end() && it->key == key) {
      it->offset = offset;
      return false;
    }
    leaf->entries.insert(it, Entry{std::string(key), offset});
    if (leaf->entries.size() > fanout_) {
      // Split: left keeps the lower half, a fresh leaf takes the rest.
      const std::size_t keep = leaf->entries.size() / 2;
      Leaf* right = new Leaf();
      right->id = next_leaf_id_++;
      right->version = 1;
      right->entries.assign(std::make_move_iterator(leaf->entries.begin() + keep),
                            std::make_move_iterator(leaf->entries.end()));
      leaf->entries.resize(keep);
      right->next = leaf->next;
      right->prev = leaf;
      if (leaf->next != nullptr) leaf->next->prev = right;
      leaf->next = right;
      split = SplitResult{right->entries.front().key, right};
    }
    return true;
  }

  Inner* in = static_cast<Inner*>(n);
  const std::size_t ci = child_index(in->keys, key);
  std::optional<SplitResult> child_split;
  const bool inserted = insert_rec(in->children[ci], key, offset, child_split);
  if (child_split.has_value()) {
    in->keys.insert(in->keys.begin() + static_cast<std::ptrdiff_t>(ci),
                    std::move(child_split->separator));
    in->children.insert(in->children.begin() + static_cast<std::ptrdiff_t>(ci) + 1,
                        child_split->right);
    if (in->children.size() > fanout_) {
      const std::size_t mid = in->children.size() / 2;  // promote keys[mid-1]
      Inner* right = new Inner();
      right->children.assign(in->children.begin() + static_cast<std::ptrdiff_t>(mid),
                             in->children.end());
      right->keys.assign(
          std::make_move_iterator(in->keys.begin() + static_cast<std::ptrdiff_t>(mid)),
          std::make_move_iterator(in->keys.end()));
      std::string sep = std::move(in->keys[mid - 1]);
      in->children.resize(mid);
      in->keys.resize(mid - 1);
      split = SplitResult{std::move(sep), right};
    }
  }
  return inserted;
}

bool OrderedIndex::erase(std::string_view key) {
  const bool removed = erase_rec(root_, key);
  if (removed) {
    --size_;
    // Collapse an inner root left with a single child.
    while (!root_->is_leaf && static_cast<Inner*>(root_)->children.size() == 1) {
      Inner* old = static_cast<Inner*>(root_);
      root_ = old->children[0];
      delete old;
    }
  }
  return removed;
}

bool OrderedIndex::erase_rec(Node* n, std::string_view key) {
  if (n->is_leaf) {
    Leaf* leaf = static_cast<Leaf*>(n);
    auto it = std::lower_bound(leaf->entries.begin(), leaf->entries.end(), key,
                               EntryKeyLess{});
    if (it == leaf->entries.end() || it->key != key) return false;
    leaf->entries.erase(it);
    ++leaf->version;
    return true;
  }
  Inner* in = static_cast<Inner*>(n);
  const std::size_t ci = child_index(in->keys, key);
  const bool removed = erase_rec(in->children[ci], key);
  if (removed) rebalance_child(in, ci);
  return removed;
}

void OrderedIndex::rebalance_child(Inner* parent, std::size_t ci) {
  Node* child = parent->children[ci];
  const std::size_t min_fill = fanout_ / 2;
  const bool underfull = child->is_leaf
                             ? static_cast<Leaf*>(child)->entries.size() < min_fill
                             : static_cast<Inner*>(child)->children.size() < min_fill;
  if (!underfull) return;

  const std::size_t li = ci > 0 ? ci - 1 : ci;       // left node of the merged pair
  const std::size_t ri = li + 1;                     // right node of the pair
  Node* left = parent->children[li];
  Node* right = parent->children[ri];

  if (child->is_leaf) {
    Leaf* l = static_cast<Leaf*>(left);
    Leaf* r = static_cast<Leaf*>(right);
    Leaf* c = static_cast<Leaf*>(child);
    Leaf* sib = c == l ? r : l;
    if (sib->entries.size() > min_fill) {
      // Borrow one entry across the boundary; the separator between the
      // pair becomes the right node's new minimum.
      if (sib == l) {
        c->entries.insert(c->entries.begin(), std::move(l->entries.back()));
        l->entries.pop_back();
      } else {
        c->entries.push_back(std::move(r->entries.front()));
        r->entries.erase(r->entries.begin());
      }
      ++l->version;
      ++r->version;
      parent->keys[li] = r->entries.front().key;
      return;
    }
    // Merge right into left; the right leaf dies.
    l->entries.insert(l->entries.end(), std::make_move_iterator(r->entries.begin()),
                      std::make_move_iterator(r->entries.end()));
    ++l->version;
    l->next = r->next;
    if (r->next != nullptr) r->next->prev = l;
    delete r;
  } else {
    Inner* l = static_cast<Inner*>(left);
    Inner* r = static_cast<Inner*>(right);
    Inner* c = static_cast<Inner*>(child);
    Inner* sib = c == l ? r : l;
    if (sib->children.size() > min_fill) {
      // Rotate one child through the parent separator.
      if (sib == l) {
        c->keys.insert(c->keys.begin(), std::move(parent->keys[li]));
        c->children.insert(c->children.begin(), l->children.back());
        parent->keys[li] = std::move(l->keys.back());
        l->keys.pop_back();
        l->children.pop_back();
      } else {
        c->keys.push_back(std::move(parent->keys[li]));
        c->children.push_back(r->children.front());
        parent->keys[li] = std::move(r->keys.front());
        r->keys.erase(r->keys.begin());
        r->children.erase(r->children.begin());
      }
      return;
    }
    // Merge: left + separator + right.
    l->keys.push_back(std::move(parent->keys[li]));
    l->keys.insert(l->keys.end(), std::make_move_iterator(r->keys.begin()),
                   std::make_move_iterator(r->keys.end()));
    l->children.insert(l->children.end(), r->children.begin(), r->children.end());
    delete r;
  }
  parent->keys.erase(parent->keys.begin() + static_cast<std::ptrdiff_t>(li));
  parent->children.erase(parent->children.begin() + static_cast<std::ptrdiff_t>(ri));
}

std::optional<std::uint64_t> OrderedIndex::find(std::string_view key) const {
  Leaf* leaf = leaf_lower_bound(key);
  auto it =
      std::lower_bound(leaf->entries.begin(), leaf->entries.end(), key, EntryKeyLess{});
  if (it != leaf->entries.end() && it->key == key) return it->offset;
  return std::nullopt;
}

void OrderedIndex::scan(
    std::string_view from, bool exclusive,
    const std::function<bool(std::string_view, std::uint64_t)>& fn) const {
  Leaf* leaf = leaf_lower_bound(from);
  auto it = exclusive ? std::upper_bound(leaf->entries.begin(), leaf->entries.end(),
                                         from, EntryKeyLess{})
                      : std::lower_bound(leaf->entries.begin(), leaf->entries.end(),
                                         from, EntryKeyLess{});
  while (leaf != nullptr) {
    for (; it != leaf->entries.end(); ++it) {
      if (!fn(it->key, it->offset)) return;
    }
    leaf = leaf->next;
    if (leaf != nullptr) it = leaf->entries.begin();
  }
}

std::optional<OrderedIndex::LeafRef> OrderedIndex::leaf_for(std::string_view from,
                                                            bool exclusive) const {
  Leaf* leaf = leaf_lower_bound(from);
  auto it = exclusive ? std::upper_bound(leaf->entries.begin(), leaf->entries.end(),
                                         from, EntryKeyLess{})
                      : std::lower_bound(leaf->entries.begin(), leaf->entries.end(),
                                         from, EntryKeyLess{});
  while (leaf != nullptr && it == leaf->entries.end()) {
    leaf = leaf->next;
    if (leaf != nullptr) it = leaf->entries.begin();
  }
  if (leaf == nullptr) return std::nullopt;
  return LeafRef{leaf->id, leaf->version, leaf->next == nullptr, &leaf->entries};
}

std::size_t OrderedIndex::leaf_count() const noexcept {
  std::size_t n = 0;
  Node* node = root_;
  while (!node->is_leaf) node = static_cast<Inner*>(node)->children.front();
  for (const Leaf* l = static_cast<Leaf*>(node); l != nullptr; l = l->next) ++n;
  return n;
}

namespace {

struct CheckState {
  std::string error;
  std::size_t entries = 0;
  int leaf_depth = -1;
  const OrderedIndex::Entry* prev_entry = nullptr;

  void fail(std::string msg) {
    if (error.empty()) error = std::move(msg);
  }
};

}  // namespace

std::string OrderedIndex::check_invariants() const {
  CheckState st;
  const std::size_t min_fill = fanout_ / 2;

  // Recursive structural walk with separator bounds. lower/upper are
  // half-open: every key in the subtree must satisfy lower <= key < upper.
  std::vector<const Leaf*> leaves_in_order;
  auto walk = [&](auto&& self, const Node* n, int depth, const std::string* lower,
                  const std::string* upper, bool is_root) -> void {
    if (!st.error.empty()) return;
    if (n->is_leaf) {
      const Leaf* leaf = static_cast<const Leaf*>(n);
      if (st.leaf_depth < 0) {
        st.leaf_depth = depth;
      } else if (depth != st.leaf_depth) {
        st.fail("leaf depth not uniform");
        return;
      }
      if (!is_root && leaf->entries.size() < min_fill) st.fail("leaf underfull");
      if (leaf->entries.size() > fanout_) st.fail("leaf overfull");
      for (const Entry& e : leaf->entries) {
        if (lower != nullptr && e.key < *lower) st.fail("leaf key below separator");
        if (upper != nullptr && e.key >= *upper) st.fail("leaf key above separator");
        if (st.prev_entry != nullptr && st.prev_entry->key >= e.key) {
          st.fail("keys not strictly ascending");
        }
        st.prev_entry = &e;
        ++st.entries;
      }
      leaves_in_order.push_back(leaf);
      return;
    }
    const Inner* in = static_cast<const Inner*>(n);
    if (in->children.size() != in->keys.size() + 1) {
      st.fail("inner children/keys size mismatch");
      return;
    }
    if (is_root ? in->children.size() < 2 : in->children.size() < min_fill) {
      st.fail("inner underfull");
    }
    if (in->children.size() > fanout_) st.fail("inner overfull");
    for (std::size_t i = 0; i + 1 < in->keys.size(); ++i) {
      if (in->keys[i] >= in->keys[i + 1]) st.fail("separators not ascending");
    }
    for (std::size_t i = 0; i < in->children.size(); ++i) {
      const std::string* lo = i == 0 ? lower : &in->keys[i - 1];
      const std::string* hi = i == in->keys.size() ? upper : &in->keys[i];
      self(self, in->children[i], depth + 1, lo, hi, false);
    }
  };
  walk(walk, root_, 0, nullptr, nullptr, true);
  if (!st.error.empty()) return st.error;

  if (st.entries != size_) return "size() does not match entry count";

  // Leaf chain must enumerate exactly the in-order leaves, linked both ways.
  const Leaf* chain = leaves_in_order.empty() ? nullptr : leaves_in_order.front();
  if (chain != nullptr && chain->prev != nullptr) return "first leaf has prev";
  for (std::size_t i = 0; i < leaves_in_order.size(); ++i) {
    if (chain != leaves_in_order[i]) return "leaf chain diverges from tree order";
    const Leaf* next = chain->next;
    if (i + 1 < leaves_in_order.size()) {
      if (next == nullptr) return "leaf chain ends early";
      if (next->prev != chain) return "leaf chain prev link broken";
    } else if (next != nullptr) {
      return "leaf chain runs past the last leaf";
    }
    chain = next;
  }
  return {};
}

}  // namespace hydra::index
