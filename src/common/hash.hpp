// 64-bit hashing used for key routing, bucket indexing and slot signatures.
//
// HydraDB routes a key-value item to a shard by the 64-bit hashcode of its
// key (paper section 4.1.1) and stores a 16-bit signature of the same hash in
// each hash-table slot (section 4.1.3).  All consumers derive from this one
// function so that routing, indexing and signatures always agree.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace hydra {

/// xxHash64-style avalanche mix of a single 64-bit value.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Hashes an arbitrary byte string to 64 bits (xx64-inspired, unseeded).
std::uint64_t hash_bytes(const void* data, std::size_t len) noexcept;

inline std::uint64_t hash_key(std::string_view key) noexcept {
  return hash_bytes(key.data(), key.size());
}

/// The 16-bit slot signature: the *top* bits of the hash, which are not the
/// ones used for bucket selection (low bits), so signature collisions are
/// independent of bucket collisions.
constexpr std::uint16_t key_signature(std::uint64_t hash) noexcept {
  return static_cast<std::uint16_t>(hash >> 48);
}

/// FNV-1a, used by the YCSB scrambled-Zipfian generator (matches YCSB's
/// FNVhash64 so generated key popularity ranks line up with the original).
constexpr std::uint64_t fnv1a64(std::uint64_t v) noexcept {
  constexpr std::uint64_t kOffset = 0xCBF29CE484222325ULL;
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  std::uint64_t h = kOffset;
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= kPrime;
  }
  return h;
}

}  // namespace hydra
