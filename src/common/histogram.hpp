// Log-bucketed latency histogram (HDR-style) for virtual-time measurements.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace hydra {

/// Records durations with ~1.5% relative precision using logarithmic
/// buckets; supports mean, percentile and merge. All values in nanoseconds.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void record(Duration ns) noexcept;
  void merge(const LatencyHistogram& other) noexcept;
  void reset() noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] Duration min() const noexcept { return count_ ? min_ : 0; }
  [[nodiscard]] Duration max() const noexcept { return max_; }
  /// p in [0,100]; returns an upper bound of the bucket containing the
  /// requested percentile.
  [[nodiscard]] Duration percentile(double p) const noexcept;

 private:
  // 64 exponents x 16 linear sub-buckets covers [1ns, 2^64ns).
  static constexpr int kSubBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBits;
  static constexpr int kNumBuckets = 64 * kSubBuckets;

  static int bucket_for(Duration ns) noexcept;
  static Duration bucket_upper(int bucket) noexcept;

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  Duration min_ = ~Duration{0};
  Duration max_ = 0;
};

}  // namespace hydra
