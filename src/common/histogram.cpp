#include "common/histogram.hpp"

#include <algorithm>
#include <bit>

namespace hydra {

LatencyHistogram::LatencyHistogram() : buckets_(kNumBuckets, 0) {}

int LatencyHistogram::bucket_for(Duration ns) noexcept {
  if (ns < kSubBuckets) return static_cast<int>(ns);
  const int exponent = 63 - std::countl_zero(ns);
  const int sub = static_cast<int>((ns >> (exponent - kSubBits)) & (kSubBuckets - 1));
  return (exponent - kSubBits + 1) * kSubBuckets + sub;
}

Duration LatencyHistogram::bucket_upper(int bucket) noexcept {
  if (bucket < kSubBuckets) return static_cast<Duration>(bucket);
  const int exponent = bucket / kSubBuckets + kSubBits - 1;
  const int sub = bucket % kSubBuckets;
  return ((static_cast<Duration>(kSubBuckets + sub) << (exponent - kSubBits)) |
          ((Duration{1} << (exponent - kSubBits)) - 1));
}

void LatencyHistogram::record(Duration ns) noexcept {
  ++buckets_[static_cast<std::size_t>(bucket_for(ns))];
  ++count_;
  sum_ += static_cast<double>(ns);
  min_ = std::min(min_, ns);
  max_ = std::max(max_, ns);
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void LatencyHistogram::reset() noexcept {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = ~Duration{0};
  max_ = 0;
}

double LatencyHistogram::mean() const noexcept {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

Duration LatencyHistogram::percentile(double p) const noexcept {
  if (count_ == 0) return 0;
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target) {
      return std::min(bucket_upper(i), max_);
    }
  }
  return max_;
}

}  // namespace hydra
