#include "common/keygen.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>

#include "common/hash.hpp"

namespace hydra {
namespace {

double zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
  }
  return sum;
}

}  // namespace

ZipfianChooser::ZipfianChooser(std::uint64_t count, double theta)
    : count_(count), theta_(theta) {
  assert(count_ > 0);
  zeta2theta_ = zeta(2, theta_);
  zetan_ = zeta(count_, theta_);
  harmonic_ = std::abs(1.0 - theta_) < kHarmonicEpsilon;
  if (count_ < 2 || harmonic_) {
    // alpha/eta are only meaningful for the Gray et al. inversion, which
    // requires theta != 1 (exponent 1/(1-theta)) and at least two records
    // (eta divides by 1 - zeta(2)/zeta(n), which is <= 0 when n < 2).
    return;
  }
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(count_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

std::uint64_t ZipfianChooser::next(Xoshiro256& rng) {
  if (count_ < 2) return 0;
  // Gray et al. rejection-free inversion, identical to YCSB's ZipfianGenerator.
  const double u = rng.uniform();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  if (harmonic_) {
    // theta -> 1 limit: zeta degenerates to the harmonic series, whose
    // continuous CDF inverse is count^u (the "pure Zipf" branch in Gray
    // et al.). The two head branches above stay exact.
    const auto r = static_cast<std::uint64_t>(
        std::pow(static_cast<double>(count_), u));
    return r >= count_ ? count_ - 1 : r;
  }
  const auto r = static_cast<std::uint64_t>(
      static_cast<double>(count_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return r >= count_ ? count_ - 1 : r;
}

ScrambledZipfianChooser::ScrambledZipfianChooser(std::uint64_t count, double theta)
    : inner_(count, theta), count_(count) {}

std::uint64_t ScrambledZipfianChooser::next(Xoshiro256& rng) {
  const std::uint64_t rank = inner_.next(rng);
  return fnv1a64(rank) % count_;
}

std::string format_key(std::uint64_t index, std::size_t key_len) {
  // "user" prefix plus zero-padded digits, like YCSB's keys, padded/truncated
  // to exactly key_len bytes so the wire format sees fixed-size keys.
  char buf[32];
  const int n = std::snprintf(buf, sizeof(buf), "user%012llu",
                              static_cast<unsigned long long>(index));
  std::string key(buf, static_cast<std::size_t>(n));
  key.resize(key_len, 'x');
  return key;
}

std::string synth_value(std::uint64_t index, std::size_t value_len) {
  std::string value(value_len, '\0');
  SplitMix64 sm(index ^ 0x5A5A5A5A5A5A5A5AULL);
  for (std::size_t i = 0; i < value_len; ++i) {
    value[i] = static_cast<char>('a' + (sm.next() % 26));
  }
  return value;
}

HotspotChooser::HotspotChooser(std::uint64_t count, double data_fraction,
                               double opn_fraction)
    : count_(count), opn_fraction_(opn_fraction) {
  assert(count_ > 0);
  hot_count_ = static_cast<std::uint64_t>(static_cast<double>(count_) * data_fraction);
  if (hot_count_ == 0) hot_count_ = 1;
  if (hot_count_ > count_) hot_count_ = count_;
}

std::uint64_t HotspotChooser::next(Xoshiro256& rng) {
  if (hot_count_ >= count_) return rng.below(count_);
  if (rng.uniform() < opn_fraction_) return rng.below(hot_count_);
  return hot_count_ + rng.below(count_ - hot_count_);
}

std::unique_ptr<KeyChooser> make_chooser(Distribution d, std::uint64_t count,
                                         double theta, double hotspot_data_fraction,
                                         double hotspot_opn_fraction) {
  switch (d) {
    case Distribution::kUniform:
      return std::make_unique<UniformChooser>(count);
    case Distribution::kHotspot:
      return std::make_unique<HotspotChooser>(count, hotspot_data_fraction,
                                              hotspot_opn_fraction);
    case Distribution::kZipfian:
      break;
  }
  return std::make_unique<ScrambledZipfianChooser>(count, theta);
}

}  // namespace hydra
