#include "common/keygen.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>

#include "common/hash.hpp"

namespace hydra {
namespace {

double zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
  }
  return sum;
}

}  // namespace

ZipfianChooser::ZipfianChooser(std::uint64_t count, double theta)
    : count_(count), theta_(theta) {
  assert(count_ > 0);
  zeta2theta_ = zeta(2, theta_);
  zetan_ = zeta(count_, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(count_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

std::uint64_t ZipfianChooser::next(Xoshiro256& rng) {
  // Gray et al. rejection-free inversion, identical to YCSB's ZipfianGenerator.
  const double u = rng.uniform();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto r = static_cast<std::uint64_t>(
      static_cast<double>(count_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return r >= count_ ? count_ - 1 : r;
}

ScrambledZipfianChooser::ScrambledZipfianChooser(std::uint64_t count, double theta)
    : inner_(count, theta), count_(count) {}

std::uint64_t ScrambledZipfianChooser::next(Xoshiro256& rng) {
  const std::uint64_t rank = inner_.next(rng);
  return fnv1a64(rank) % count_;
}

std::string format_key(std::uint64_t index, std::size_t key_len) {
  // "user" prefix plus zero-padded digits, like YCSB's keys, padded/truncated
  // to exactly key_len bytes so the wire format sees fixed-size keys.
  char buf[32];
  const int n = std::snprintf(buf, sizeof(buf), "user%012llu",
                              static_cast<unsigned long long>(index));
  std::string key(buf, static_cast<std::size_t>(n));
  key.resize(key_len, 'x');
  return key;
}

std::string synth_value(std::uint64_t index, std::size_t value_len) {
  std::string value(value_len, '\0');
  SplitMix64 sm(index ^ 0x5A5A5A5A5A5A5A5AULL);
  for (std::size_t i = 0; i < value_len; ++i) {
    value[i] = static_cast<char>('a' + (sm.next() % 26));
  }
  return value;
}

std::unique_ptr<KeyChooser> make_chooser(Distribution d, std::uint64_t count,
                                         double theta) {
  if (d == Distribution::kUniform) {
    return std::make_unique<UniformChooser>(count);
  }
  return std::make_unique<ScrambledZipfianChooser>(count, theta);
}

}  // namespace hydra
