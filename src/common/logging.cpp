#include "common/logging.hpp"

#include <atomic>
#include <cstdarg>
#include <cstring>

namespace hydra {
namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() noexcept { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }
void set_log_level(LogLevel level) noexcept { g_level.store(static_cast<int>(level), std::memory_order_relaxed); }

namespace detail {

std::string format_args(const char* fmt, ...) {
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

void log_line(LogLevel level, const char* file, int line, const std::string& msg) {
  const char* base = std::strrchr(file, '/');
  base = base ? base + 1 : file;
  std::fprintf(stderr, "[%-5s] %s:%d: %s\n", level_name(level), base, line, msg.c_str());
}

}  // namespace detail
}  // namespace hydra
