// Fundamental value types shared by every HydraDB module.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace hydra {

/// Virtual-time instant in nanoseconds since simulation start.
using Time = std::uint64_t;
/// Virtual-time duration in nanoseconds.
using Duration = std::uint64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1000 * kNanosecond;
inline constexpr Duration kMillisecond = 1000 * kMicrosecond;
inline constexpr Duration kSecond = 1000 * kMillisecond;

/// Identifies a simulated machine in the cluster.
using NodeId = std::uint32_t;
/// Identifies a shard (primary or secondary) cluster-wide.
using ShardId = std::uint32_t;
/// Identifies a client process cluster-wide.
using ClientId = std::uint32_t;

inline constexpr NodeId kInvalidNode = ~NodeId{0};
inline constexpr ShardId kInvalidShard = ~ShardId{0};

/// Operation outcome codes used across the client/server protocol.
enum class Status : std::uint8_t {
  kOk = 0,
  kNotFound,        ///< key does not exist
  kExists,          ///< INSERT of a key that already exists
  kStale,           ///< RDMA Read observed a flipped guardian word
  kNoLease,         ///< remote pointer lease expired, message path required
  kWrongShard,      ///< request routed to a shard that does not own the key
  kOutOfMemory,     ///< shard arena exhausted
  kTimeout,         ///< peer did not answer (crash suspected)
  kDisconnected,    ///< queue pair to the peer is in error state
  kInvalidArgument, ///< malformed request (e.g. oversized key)
  kRetry,           ///< transient condition, caller should re-issue
  kWrongOwner,      ///< shard no longer owns the key's range (re-resolve route)
  kTxnConflict,     ///< 2PL conflict: lock held / epoch moved; txn must abort
};

constexpr std::string_view to_string(Status s) noexcept {
  switch (s) {
    case Status::kOk: return "OK";
    case Status::kNotFound: return "NOT_FOUND";
    case Status::kExists: return "EXISTS";
    case Status::kStale: return "STALE";
    case Status::kNoLease: return "NO_LEASE";
    case Status::kWrongShard: return "WRONG_SHARD";
    case Status::kOutOfMemory: return "OUT_OF_MEMORY";
    case Status::kTimeout: return "TIMEOUT";
    case Status::kDisconnected: return "DISCONNECTED";
    case Status::kInvalidArgument: return "INVALID_ARGUMENT";
    case Status::kRetry: return "RETRY";
    case Status::kWrongOwner: return "WRONG_OWNER";
    case Status::kTxnConflict: return "TXN_CONFLICT";
  }
  return "UNKNOWN";
}

/// A minimal value-or-status carrier for APIs that return data.
template <typename T>
class Result {
 public:
  Result(Status s) : status_(s) {}  // NOLINT(google-explicit-constructor)
  Result(T value) : status_(Status::kOk), value_(std::move(value)) {}  // NOLINT

  [[nodiscard]] bool ok() const noexcept { return status_ == Status::kOk; }
  [[nodiscard]] Status status() const noexcept { return status_; }
  [[nodiscard]] const T& value() const& noexcept { return value_; }
  [[nodiscard]] T& value() & noexcept { return value_; }
  [[nodiscard]] T&& value() && noexcept { return std::move(value_); }

 private:
  Status status_;
  T value_{};
};

}  // namespace hydra
