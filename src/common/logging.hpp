// Minimal leveled logging. Defaults to WARN so tests and benches stay quiet;
// examples raise the level to narrate what the cluster is doing.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

namespace hydra {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

namespace detail {
void log_line(LogLevel level, const char* file, int line, const std::string& msg);
std::string format_args(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
}  // namespace detail

#define HYDRA_LOG(level, ...)                                              \
  do {                                                                     \
    if (static_cast<int>(level) >= static_cast<int>(::hydra::log_level())) \
      ::hydra::detail::log_line(level, __FILE__, __LINE__,                 \
                                ::hydra::detail::format_args(__VA_ARGS__)); \
  } while (0)

#define HYDRA_DEBUG(...) HYDRA_LOG(::hydra::LogLevel::kDebug, __VA_ARGS__)
#define HYDRA_INFO(...) HYDRA_LOG(::hydra::LogLevel::kInfo, __VA_ARGS__)
#define HYDRA_WARN(...) HYDRA_LOG(::hydra::LogLevel::kWarn, __VA_ARGS__)
#define HYDRA_ERROR(...) HYDRA_LOG(::hydra::LogLevel::kError, __VA_ARGS__)

}  // namespace hydra
