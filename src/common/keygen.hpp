// YCSB-style request key generators (paper section 6: Zipfian and Uniform).
//
// The Zipfian generator follows Gray et al. ("Quickly generating
// billion-record synthetic databases"), the same construction YCSB uses,
// including the "scrambled" variant that spreads the popular items across
// the key space via FNV hashing so popularity is uncorrelated with insertion
// order.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.hpp"

namespace hydra {

/// Interface for drawing record indices in [0, count).
class KeyChooser {
 public:
  virtual ~KeyChooser() = default;
  /// Draws the next record index.
  virtual std::uint64_t next(Xoshiro256& rng) = 0;
  /// Number of distinct records this chooser draws from.
  [[nodiscard]] virtual std::uint64_t record_count() const noexcept = 0;
};

/// Uniform choice over [0, count).
class UniformChooser final : public KeyChooser {
 public:
  explicit UniformChooser(std::uint64_t count) : count_(count) {}
  std::uint64_t next(Xoshiro256& rng) override { return rng.below(count_); }
  [[nodiscard]] std::uint64_t record_count() const noexcept override { return count_; }

 private:
  std::uint64_t count_;
};

/// Zipfian choice over [0, count) with exponent theta (YCSB default 0.99).
/// Rank 0 is the most popular item.
class ZipfianChooser : public KeyChooser {
 public:
  explicit ZipfianChooser(std::uint64_t count, double theta = kDefaultTheta);
  std::uint64_t next(Xoshiro256& rng) override;
  [[nodiscard]] std::uint64_t record_count() const noexcept override { return count_; }

  static constexpr double kDefaultTheta = 0.99;
  /// theta within this distance of 1.0 switches to the harmonic-limit
  /// inversion: the Gray et al. exponent 1/(1-theta) blows up at 1.
  static constexpr double kHarmonicEpsilon = 1e-6;

 private:
  std::uint64_t count_;
  double theta_;
  bool harmonic_ = false;  ///< theta ~= 1: invert via count^u instead of alpha
  double alpha_ = 0.0;
  double zetan_;
  double eta_ = 0.0;
  double zeta2theta_;
};

/// Scrambled Zipfian: Zipfian ranks pushed through FNV so that the popular
/// records are scattered uniformly over the record id space (YCSB semantics).
class ScrambledZipfianChooser final : public KeyChooser {
 public:
  explicit ScrambledZipfianChooser(std::uint64_t count,
                                   double theta = ZipfianChooser::kDefaultTheta);
  std::uint64_t next(Xoshiro256& rng) override;
  [[nodiscard]] std::uint64_t record_count() const noexcept override { return count_; }

 private:
  ZipfianChooser inner_;
  std::uint64_t count_;
};

/// Formats record index `i` as the fixed-width YCSB-style key used throughout
/// the evaluation (16-byte keys, paper section 6).
std::string format_key(std::uint64_t index, std::size_t key_len = 16);

/// Deterministically synthesizes the value payload for record `i`.
std::string synth_value(std::uint64_t index, std::size_t value_len = 32);

/// Hotspot choice: `opn_fraction` of operations land uniformly inside the
/// hot set (the first `data_fraction` of the records), the rest uniformly
/// over the cold remainder (YCSB `hotspot` request distribution).
class HotspotChooser final : public KeyChooser {
 public:
  HotspotChooser(std::uint64_t count, double data_fraction = kDefaultDataFraction,
                 double opn_fraction = kDefaultOpnFraction);
  std::uint64_t next(Xoshiro256& rng) override;
  [[nodiscard]] std::uint64_t record_count() const noexcept override { return count_; }
  [[nodiscard]] std::uint64_t hot_count() const noexcept { return hot_count_; }

  static constexpr double kDefaultDataFraction = 0.2;
  static constexpr double kDefaultOpnFraction = 0.8;

 private:
  std::uint64_t count_;
  std::uint64_t hot_count_;
  double opn_fraction_;
};

enum class Distribution : std::uint8_t { kUniform, kZipfian, kHotspot };

constexpr const char* to_string(Distribution d) noexcept {
  switch (d) {
    case Distribution::kUniform: return "uniform";
    case Distribution::kZipfian: return "zipfian";
    case Distribution::kHotspot: return "hotspot";
  }
  return "?";
}

/// Factory matching the request distributions. The hotspot fractions are
/// ignored for uniform/zipfian.
std::unique_ptr<KeyChooser> make_chooser(
    Distribution d, std::uint64_t count,
    double theta = ZipfianChooser::kDefaultTheta,
    double hotspot_data_fraction = HotspotChooser::kDefaultDataFraction,
    double hotspot_opn_fraction = HotspotChooser::kDefaultOpnFraction);

}  // namespace hydra
