// Single-producer single-consumer ring buffer.
//
// Used by the pipelined-shard comparator (Fig 5a) for dispatcher->worker
// handoff, and unit-tested with real threads since it is a genuine
// concurrent structure independent of the simulator.
#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <optional>
#include <utility>
#include <vector>

namespace hydra {

/// Destructive interference distance on the x86_64 targets we model; fixed
/// rather than std::hardware_destructive_interference_size so the layout is
/// stable across compiler versions (it also matches the paper's 64-byte
/// cache-line bucket design).
inline constexpr std::size_t kCacheLine = 64;

/// Bounded lock-free SPSC queue; capacity rounded up to a power of two.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when full.
  bool try_push(T value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head - tail_.load(std::memory_order_acquire) > mask_) return false;
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns nullopt when empty.
  std::optional<T> try_pop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return std::nullopt;
    T value = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return value;
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};
};

}  // namespace hydra
