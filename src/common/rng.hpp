// Deterministic pseudo-random number generation.
//
// Every random decision in the simulator flows from a seeded Xoshiro256**
// stream so that a given seed reproduces a run byte-for-byte (DESIGN.md §6).
#pragma once

#include <cstdint>

namespace hydra {

/// SplitMix64 — used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — fast, high-quality, 2^256-period generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x1D2B3C4D5E6F7081ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    // 128-bit multiply keeps the mapping unbiased enough for simulation use.
    const unsigned __int128 m =
        static_cast<unsigned __int128>((*this)()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace hydra
