#include "client/scan_cursor.hpp"

#include <algorithm>
#include <utility>

#include "index/leaf_page.hpp"
#include "obs/plane.hpp"

namespace hydra::client {

void Client::scan(std::string start_key, std::uint32_t limit, ScanResultFn cb) {
  ScanCursor::start(*this, std::move(start_key), limit, std::move(cb));
}

void ScanCursor::start(Client& client, std::string start_key, std::uint32_t limit,
                       Client::ScanResultFn cb) {
  auto cursor = std::shared_ptr<ScanCursor>(
      new ScanCursor(client, std::move(start_key), limit, std::move(cb)));
  cursor->self_ = cursor;
  cursor->begin();
}

ScanCursor::ScanCursor(Client& client, std::string start_key, std::uint32_t limit,
                       Client::ScanResultFn cb)
    : client_(client),
      start_(std::move(start_key)),
      limit_(limit),
      cb_(std::move(cb)),
      started_(client.now()) {}

void ScanCursor::begin() {
  if (limit_ == 0) {
    finish(Status::kOk);
    return;
  }
  epoch_ = client_.routing_epoch();
  const std::vector<ShardId> shards = client_.shard_list();
  if (shards.empty()) {
    finish(Status::kDisconnected);
    return;
  }
  streams_.clear();
  streams_.reserve(shards.size());
  for (const ShardId shard : shards) {
    Stream s;
    s.shard = shard;
    // After a restart, every stream resumes strictly past the last key the
    // *merge* emitted -- buffered-but-unemitted entries were discarded and
    // will be re-fetched, which is what makes restarts drop/dup-free.
    s.resume = emitted_any_ ? last_emitted_ : start_;
    s.exclusive = emitted_any_;
    streams_.push_back(std::move(s));
  }
  pump();
}

void ScanCursor::restart() {
  if (finished_) return;
  ++client_.mutable_stats().scan_restarts;
  if (++restarts_ > client_.config().max_scan_restarts) {
    finish(Status::kTimeout);
    return;
  }
  ++generation_;
  begin();
}

void ScanCursor::pump() {
  if (finished_) return;
  while (true) {
    if (out_.size() >= limit_) {
      finish(Status::kOk);
      return;
    }
    // Phase 1: every unfinished, unbuffered stream must be fetching. The
    // merge may not emit while any of them is outstanding -- it could still
    // produce the global minimum.
    bool waiting = false;
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      Stream& s = streams_[i];
      if (s.done || !s.buffer.empty()) continue;
      if (!s.inflight) fetch(i);
      waiting = true;
    }
    if (waiting) return;
    // Phase 2: all streams are done or buffered; emit the smallest head.
    std::size_t best = streams_.size();
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      if (streams_[i].buffer.empty()) continue;
      if (best == streams_.size() ||
          streams_[i].buffer.front().first < streams_[best].buffer.front().first) {
        best = i;
      }
    }
    if (best == streams_.size()) {
      finish(Status::kOk);  // every shard exhausted before `limit`
      return;
    }
    auto kv = std::move(streams_[best].buffer.front());
    streams_[best].buffer.pop_front();
    // Strictly-ascending emit: a key at or below the last emitted one is a
    // dual-ownership duplicate (the migration copy window briefly exposes
    // moved keys on source and destination alike) -- drop it.
    if (emitted_any_ && kv.first <= last_emitted_) continue;
    last_emitted_ = kv.first;
    emitted_any_ = true;
    out_.push_back(std::move(kv));
  }
}

void ScanCursor::fetch(std::size_t idx) {
  Stream& s = streams_[idx];
  s.inflight = true;
  const std::uint64_t gen = generation_;
  auto self = shared_from_this();

  if (client_.config().scan_leaf_reads && s.hint.valid()) {
    // Single-shot hint: consume it now so a validation failure naturally
    // falls back to the message path on the next fetch.
    const proto::ScanLeafHint hint = s.hint;
    s.hint = proto::ScanLeafHint{};
    client_.leaf_read(hint.node, fabric::RemoteAddr{hint.rkey, hint.offset}, hint.len,
                      [this, self, idx, gen, hint](Status st, std::vector<std::byte> page) {
                        on_leaf_page(idx, gen, hint, st, std::move(page));
                      });
    return;
  }

  proto::ScanReq sreq;
  sreq.epoch = epoch_;
  const std::uint32_t need =
      limit_ - static_cast<std::uint32_t>(std::min<std::size_t>(out_.size(), limit_));
  sreq.limit = std::max<std::uint32_t>(1, std::min(client_.config().scan_batch, need));
  sreq.flags = s.exclusive ? proto::kScanFlagExclusive : std::uint8_t{0};
  client_.scan_shard(s.shard, s.resume, sreq,
                     [this, self, idx, gen](Status st, const proto::ScanResp& resp) {
                       on_batch(idx, gen, st, resp);
                     });
}

void ScanCursor::on_batch(std::size_t idx, std::uint64_t gen, Status st,
                          const proto::ScanResp& resp) {
  if (finished_ || gen != generation_) return;
  Stream& s = streams_[idx];
  s.inflight = false;
  if (st == Status::kWrongOwner || st == Status::kTimeout || st == Status::kDisconnected) {
    // Epoch fence, a mid-scan failover, or a drained shard: the whole shard
    // set may have changed; re-resolve and resume from the merge position.
    restart();
    return;
  }
  if (st != Status::kOk) {
    finish(st);
    return;
  }
  if (resp.entries.empty() && !resp.done) {
    // A live shard never answers "not done" with zero entries; treat the
    // contradiction like a lost response rather than spinning on it.
    restart();
    return;
  }
  for (const auto& [key, value] : resp.entries) {
    s.resume = key;
    s.exclusive = true;
    s.buffer.emplace_back(key, value);
  }
  s.done = resp.done;
  if (!resp.done && resp.hint.valid()) s.hint = resp.hint;
  pump();
}

void ScanCursor::on_leaf_page(std::size_t idx, std::uint64_t gen,
                              proto::ScanLeafHint hint, Status st,
                              std::vector<std::byte> page) {
  if (finished_ || gen != generation_) return;
  Stream& s = streams_[idx];
  s.inflight = false;
  ClientStats& stats = client_.mutable_stats();
  obs::Plane* obs = client_.fabric().obs();

  auto fall_back = [&] {
    // The page failed to arrive or to validate (torn read, version moved,
    // stale epoch, slot reused for another leaf): the hint was consumed, so
    // pump() re-fetches this position through the message path.
    ++stats.scan_leaf_fallbacks;
    if (obs != nullptr) {
      obs->trace(client_.now(), client_.node(), obs::TraceKind::kScanLeafFallback,
                 s.shard, hint.leaf_id, 0);
    }
    pump();
  };

  if (st != Status::kOk) {
    fall_back();
    return;
  }
  const auto decoded = index::decode_leaf_page({page.data(), page.size()});
  if (!decoded.has_value() || decoded->leaf_id != hint.leaf_id ||
      decoded->leaf_version != hint.leaf_version || decoded->epoch != epoch_) {
    fall_back();
    return;
  }
  // Structural re-check: entries must be strictly ascending (a checksum
  // collision shield; also what lets the merge trust the buffered order).
  std::vector<std::pair<std::string, std::string>> fresh;
  std::string_view prev{};
  bool first = true;
  for (const auto& [key, value] : decoded->entries) {
    if (!first && key <= prev) {
      fall_back();
      return;
    }
    prev = key;
    first = false;
    if (key > s.resume) fresh.emplace_back(key, value);
  }
  if (fresh.empty() && !decoded->last) {
    // Deletions emptied our window into this leaf; let the message path
    // walk to the successor (guaranteed progress, unlike re-reading).
    pump();
    return;
  }
  ++stats.scan_leaf_reads;
  stats.scan_entries += fresh.size();
  if (obs != nullptr) {
    obs->trace(client_.now(), client_.node(), obs::TraceKind::kScanLeafRead, s.shard,
               hint.leaf_id, fresh.size());
  }
  for (auto& [key, value] : fresh) {
    s.resume = key;
    s.exclusive = true;
    s.buffer.emplace_back(std::move(key), std::move(value));
  }
  if (decoded->last) s.done = true;
  pump();
}

void ScanCursor::finish(Status st) {
  if (finished_) return;
  finished_ = true;
  ClientStats& stats = client_.mutable_stats();
  ++stats.scans;
  stats.scan_latency.record(client_.now() - started_);
  auto cb = std::move(cb_);
  const auto self = std::move(self_);  // keep *this alive through the callback
  if (cb) cb(st, std::move(out_));
}

}  // namespace hydra::client
