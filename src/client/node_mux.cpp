#include "client/node_mux.hpp"

#include <utility>

#include "obs/plane.hpp"

namespace hydra::client {

NodeMux::NodeMux(sim::Scheduler& sched, NodeId node, NodeMuxConfig cfg)
    : sim::Actor(sched, "mux-" + std::to_string(node)), node_(node), cfg_(cfg) {}

NodeMux::Channel* NodeMux::channel_to(ShardId shard) {
  auto it = channels_.find(shard);
  if (it != channels_.end() && it->second.open) {
    it->second.last_activity = now();
    return &it->second;
  }
  if (!opener_) return nullptr;
  Channel& ch = channels_[shard];  // keeps its generation across reopens
  MuxWire wire;
  if (!opener_(shard, &wire)) return nullptr;
  ch.wire = wire;
  ++ch.generation;
  ch.open = true;
  ch.slot_busy.assign(wire.ring_slots, false);
  ch.next_slot = 0;
  ch.in_flight = 0;
  ch.last_activity = now();
  ++stats_.channels_opened;
  if (obs_ != nullptr) {
    obs_->trace(now(), node_, obs::TraceKind::kMuxChannelOpened, shard, wire.group);
  }
  if (!reaper_armed_) {
    reaper_armed_ = true;
    schedule_after(cfg_.reap_interval, [this] { reap_loop(); });
  }
  return &ch;
}

bool NodeMux::live(ShardId shard, std::uint64_t generation) const {
  auto it = channels_.find(shard);
  return it != channels_.end() && it->second.open && it->second.generation == generation;
}

void NodeMux::acquire(ShardId shard, std::uint64_t generation, SlotCallback cb) {
  auto it = channels_.find(shard);
  if (it == channels_.end() || !it->second.open || it->second.generation != generation) {
    cb(nullptr, 0);
    return;
  }
  Channel& ch = it->second;
  ch.last_activity = now();
  for (std::uint32_t i = 0; i < ch.slot_busy.size(); ++i) {
    const auto s = static_cast<std::uint32_t>((ch.next_slot + i) % ch.slot_busy.size());
    if (!ch.slot_busy[s]) {
      ch.slot_busy[s] = true;
      ch.next_slot = (s + 1) % static_cast<std::uint32_t>(ch.slot_busy.size());
      ++ch.in_flight;
      cb(&ch, s);
      return;
    }
  }
  // Shared ring full: every credit is carrying someone's request. Park the
  // requester; release() hands the freed slot straight to the oldest waiter.
  ++stats_.credit_waits;
  ch.waiters.push_back(std::move(cb));
}

void NodeMux::release(ShardId shard, std::uint64_t generation, std::uint32_t slot) {
  auto it = channels_.find(shard);
  if (it == channels_.end() || !it->second.open || it->second.generation != generation) {
    return;  // channel died since; teardown already recycled the credits
  }
  recycle(it->second, slot);
}

void NodeMux::recycle(Channel& ch, std::uint32_t slot) {
  if (!ch.open) return;  // teardown already recycled the credits
  ch.last_activity = now();
  if (!ch.waiters.empty()) {
    // Hand the slot over without ever marking it free: FIFO credit flow.
    auto cb = std::move(ch.waiters.front());
    ch.waiters.pop_front();
    cb(&ch, slot);
    return;
  }
  if (slot < ch.slot_busy.size()) ch.slot_busy[slot] = false;
  if (ch.in_flight > 0) --ch.in_flight;
}

fabric::QueuePair* NodeMux::begin_replica_read(NodeId node) {
  auto it = read_channels_.find(node);
  if (it == read_channels_.end() || !it->second.open) {
    if (!read_opener_) return nullptr;
    fabric::QueuePair* qp = read_opener_(node);
    if (qp == nullptr) return nullptr;
    ReadChannel& ch = read_channels_[node];
    ch.qp = qp;
    ch.qp_generation = qp->generation();
    ch.open = true;
    ch.read_refs = 0;
    ++stats_.read_channels_opened;
    it = read_channels_.find(node);
    if (!reaper_armed_) {
      reaper_armed_ = true;
      schedule_after(cfg_.reap_interval, [this] { reap_loop(); });
    }
  }
  ReadChannel& ch = it->second;
  ch.last_activity = now();
  ++ch.read_refs;
  return ch.qp;
}

void NodeMux::end_replica_read(NodeId node) {
  auto it = read_channels_.find(node);
  if (it == read_channels_.end()) return;
  ReadChannel& ch = it->second;
  if (ch.read_refs > 0) --ch.read_refs;
  ch.last_activity = now();
}

void NodeMux::report_failure(ShardId shard, std::uint64_t generation) {
  auto it = channels_.find(shard);
  if (it == channels_.end() || !it->second.open || it->second.generation != generation) {
    return;
  }
  close_channel(shard, it->second, /*failure=*/true);
}

void NodeMux::close_channel(ShardId shard, Channel& ch, bool failure) {
  ch.open = false;
  ++ch.generation;  // acquires/releases against the old incarnation no-op
  if (closer_) closer_(shard, ch.wire);
  ch.wire.qp = nullptr;
  ch.slot_busy.clear();
  ch.in_flight = 0;
  if (failure) {
    ++stats_.reclaimed_failure;
  } else {
    ++stats_.reclaimed_idle;
  }
  if (obs_ != nullptr) {
    obs_->trace(now(), node_, obs::TraceKind::kMuxChannelReclaimed, shard, ch.wire.group,
                failure ? 1 : 0);
  }
  // Waiters never get a credit from this incarnation; they re-establish.
  auto waiters = std::move(ch.waiters);
  ch.waiters.clear();
  for (auto& cb : waiters) cb(nullptr, 0);
}

void NodeMux::reap_loop() {
  bool any_open = false;
  for (auto& [shard, ch] : channels_) {
    if (!ch.open) continue;
    if (ch.in_flight == 0 && ch.waiters.empty() &&
        now() - ch.last_activity >= cfg_.idle_timeout) {
      close_channel(shard, ch, /*failure=*/false);
    } else {
      any_open = true;
    }
  }
  for (auto& [node, ch] : read_channels_) {
    if (!ch.open) continue;
    if (now() - ch.last_activity < cfg_.idle_timeout) {
      any_open = true;
      continue;
    }
    if (ch.read_refs > 0) {
      // Idle past the timeout but a replica read is still in flight on
      // this QP. Reclaiming now would flush the read mid-air (the race
      // this refcount exists to close): defer until the pin drops.
      ++stats_.read_reap_deferred;
      any_open = true;
      continue;
    }
    ch.open = false;
    if (read_closer_) read_closer_(node, ch.qp, ch.qp_generation);
    ch.qp = nullptr;
    ++stats_.reclaimed_read_idle;
  }
  if (any_open) {
    schedule_after(cfg_.reap_interval, [this] { reap_loop(); });
  } else {
    reaper_armed_ = false;  // channel_to re-arms on the next open
  }
}

}  // namespace hydra::client
