// Cross-shard scan cursor (DESIGN.md §13).
//
// A scan fans out across every live shard (range ownership is scattered by
// consistent hashing, so any shard may own any key of the range) and k-way
// merges the per-shard ordered streams into one ascending sequence. Each
// stream alternates between the always-correct kScan message path and --
// when the shard advertises a fresh leaf-page hint -- a one-sided RDMA Read
// of the mirrored B+-tree leaf, validated client-side by checksum and
// (leaf id, version, epoch) stamp; any validation failure silently falls
// back to the message path.
//
// Routing-epoch advances (failover promotions, live-migration commits)
// invalidate every outstanding continuation token: the affected shard
// answers kWrongOwner, and the cursor restarts against the refreshed epoch
// and shard list, resuming *exclusively* from the last key it emitted -- so
// an observer never sees a dropped or duplicated key across the transition.
// Keys the dual-ownership window makes visible on two shards at once are
// deduplicated by the merge's strictly-ascending emit rule.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "client/client.hpp"

namespace hydra::client {

class ScanCursor : public std::enable_shared_from_this<ScanCursor> {
 public:
  /// Starts a self-owning cursor: it keeps itself alive until the final
  /// callback fires (Client::scan is the public face of this).
  static void start(Client& client, std::string start_key, std::uint32_t limit,
                    Client::ScanResultFn cb);

 private:
  struct Stream {
    ShardId shard = kInvalidShard;
    std::string resume;       ///< last key consumed from this shard
    bool exclusive = false;   ///< resume strictly after `resume`
    bool done = false;        ///< shard exhausted (no more fetches)
    bool inflight = false;
    std::deque<std::pair<std::string, std::string>> buffer;
    proto::ScanLeafHint hint{};  ///< valid() => one-sided continuation armed
  };

  ScanCursor(Client& client, std::string start_key, std::uint32_t limit,
             Client::ScanResultFn cb);

  /// (Re)builds the stream set from the live epoch + shard list, resuming
  /// exclusively from the last emitted key when anything was emitted.
  void begin();
  void restart();
  /// Merge driver: keeps every unfinished stream either buffered or
  /// fetching, and emits the global minimum only when no stream could still
  /// produce a smaller key.
  void pump();
  void fetch(std::size_t idx);
  void on_batch(std::size_t idx, std::uint64_t gen, Status st,
                const proto::ScanResp& resp);
  void on_leaf_page(std::size_t idx, std::uint64_t gen, proto::ScanLeafHint hint,
                    Status st, std::vector<std::byte> page);
  void finish(Status st);

  Client& client_;
  std::string start_;
  std::uint32_t limit_;
  Client::ScanResultFn cb_;
  Time started_ = 0;
  std::uint64_t epoch_ = 0;
  std::vector<Stream> streams_;
  Client::ScanEntries out_;
  std::string last_emitted_;
  bool emitted_any_ = false;
  int restarts_ = 0;
  /// Bumped on every restart so stale in-flight callbacks are ignored.
  std::uint64_t generation_ = 0;
  bool finished_ = false;
  std::shared_ptr<ScanCursor> self_;
};

}  // namespace hydra::client
