// Per-client-node QP multiplexer (DESIGN.md §10).
//
// Every client process on one node shares a single physical QP (and a
// single SRQ-style shared request ring) per destination shard, instead of
// one QP per client: with thousands of co-located clients this is what
// keeps the server NIC's connection state (and its qp_penalty) bounded.
// Channels open lazily on first use, hand out shared-ring slots as flow
// credits (a full ring parks the requester on a waiter list), and are
// reclaimed when idle -- returning their QPs to the fabric's reuse pool --
// or torn down on failure so endpoints re-establish and retransmit.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "fabric/fabric.hpp"
#include "sim/actor.hpp"

namespace hydra::client {

struct NodeMuxConfig {
  /// Close a channel with no in-flight credits after this much inactivity.
  Duration idle_timeout = 10 * kMillisecond;
  /// How often the reaper scans for idle channels.
  Duration reap_interval = 5 * kMillisecond;
};

struct NodeMuxStats {
  std::uint64_t channels_opened = 0;
  std::uint64_t reclaimed_idle = 0;
  std::uint64_t reclaimed_failure = 0;
  std::uint64_t credit_waits = 0;  ///< acquires that parked on a full ring
  std::uint64_t read_channels_opened = 0;
  std::uint64_t reclaimed_read_idle = 0;
  /// Reap passes that found a read channel idle past the timeout but pinned
  /// by an in-flight replica read, and left it alone.
  std::uint64_t read_reap_deferred = 0;
};

class NodeMux : public sim::Actor {
 public:
  /// What the cluster-side opener fills in when establishing a channel:
  /// the client end of the shared QP plus the shard's mux-group grant.
  struct MuxWire {
    fabric::QueuePair* qp = nullptr;
    std::uint32_t group = 0;  ///< shard-side mux-group id
    fabric::RemoteAddr req_ring{};
    std::uint32_t slot_bytes = 0;
    std::uint32_t ring_slots = 0;
    std::uint32_t arena_rkey = 0;
    /// Lock-word arena of the shard (DESIGN.md §11); 0/0 = txn disabled.
    std::uint32_t lock_rkey = 0;
    std::uint32_t lock_words = 0;
    /// The shard incarnation the group was opened against (a failover spawns
    /// a fresh primary whose group ids restart); the closer checks it before
    /// telling "the" shard to drop the group.
    std::uint32_t owner_generation = 0;
    /// The QP's incarnation at open time. Fabric QP slots are pooled and
    /// reused, so the closer must no-op when the pointer now carries a
    /// different (later-established) connection.
    std::uint32_t qp_generation = 0;
  };

  struct Channel {
    MuxWire wire;
    /// Bumped on every (re)open; clients snapshot it when they register an
    /// endpoint and check it before touching the channel again, so nothing
    /// rides a channel that died and was re-established behind their back.
    std::uint64_t generation = 0;
    bool open = false;
    std::vector<bool> slot_busy;  ///< shared-ring credit pool
    std::uint32_t next_slot = 0;
    std::uint32_t in_flight = 0;
    Time last_activity = 0;
    /// Requests parked while the shared ring was full, woken per release.
    std::deque<std::function<void(Channel*, std::uint32_t)>> waiters;
  };

  /// One-sided read channel to a *node* (not a shard): hot-key replica
  /// reads (DESIGN.md §12) target follower promo slabs on whichever nodes
  /// host the copies, so they get their own lazily opened QPs, reaped on
  /// idle like mux channels -- but never while a read is in flight.
  struct ReadChannel {
    fabric::QueuePair* qp = nullptr;
    /// QP incarnation at open time; the closer checks it so a pooled slot
    /// reused for a later connection is never disconnected by mistake.
    std::uint32_t qp_generation = 0;
    bool open = false;
    /// One-sided replica reads posted but not yet completed. The idle
    /// reaper defers reclamation while this is non-zero: a read posted
    /// just before the reap tick would otherwise be flushed mid-flight.
    std::uint32_t read_refs = 0;
    Time last_activity = 0;
  };

  /// Establishes the shared QP + mux group for a shard; false if the shard
  /// is currently unreachable.
  using Opener = std::function<bool(ShardId shard, MuxWire* out)>;
  /// Releases the shard-side group and the shared QP (fabric disconnect).
  using Closer = std::function<void(ShardId shard, const MuxWire& wire)>;
  /// acquire() continuation: the channel and a claimed ring slot, or
  /// (nullptr, 0) when the channel died before a credit freed up.
  using SlotCallback = std::function<void(Channel*, std::uint32_t slot)>;
  /// Connects a one-sided read QP to `node`; nullptr when unreachable.
  using ReadOpener = std::function<fabric::QueuePair*(NodeId node)>;
  /// Disconnects a read QP iff its generation still matches `qp_generation`.
  using ReadCloser =
      std::function<void(NodeId node, fabric::QueuePair* qp, std::uint32_t qp_generation)>;

  NodeMux(sim::Scheduler& sched, NodeId node, NodeMuxConfig cfg);

  void set_opener(Opener o) { opener_ = std::move(o); }
  void set_closer(Closer c) { closer_ = std::move(c); }
  void set_read_opener(ReadOpener o) { read_opener_ = std::move(o); }
  void set_read_closer(ReadCloser c) { read_closer_ = std::move(c); }
  void set_obs(obs::Plane* obs) noexcept { obs_ = obs; }

  /// Returns the (lazily opened) channel to `shard`; nullptr when the
  /// opener fails. The caller snapshots channel->generation.
  Channel* channel_to(ShardId shard);

  /// Looks up the channel without establishing one (chaos/test hook);
  /// nullptr when none was ever opened.
  [[nodiscard]] Channel* peek_channel(ShardId shard) {
    auto it = channels_.find(shard);
    return it == channels_.end() ? nullptr : &it->second;
  }

  /// True when the channel the caller registered against (generation
  /// `generation`) is still the live one.
  [[nodiscard]] bool live(ShardId shard, std::uint64_t generation) const;

  /// Claims a shared-ring slot on the channel, now or when one frees up.
  /// The callback fires with (nullptr, 0) if `generation` is stale or the
  /// channel dies while waiting.
  void acquire(ShardId shard, std::uint64_t generation, SlotCallback cb);

  /// Returns a slot claimed by acquire() (response received or request
  /// abandoned). No-op when `generation` is stale -- teardown already
  /// recycled every credit.
  void release(ShardId shard, std::uint64_t generation, std::uint32_t slot);

  /// Channel-keyed credit give-back for callers holding the Channel* an
  /// acquire() callback handed them (e.g. the logical connection vanished
  /// while the credit was being granted). Identical flow to release():
  /// the freed slot goes to the oldest parked waiter first, so a credit
  /// returned this way can never strand the waiter queue.
  void recycle(Channel& ch, std::uint32_t slot);

  /// Pins (lazily opening) the read channel to `node` for one one-sided
  /// replica read and returns its QP; nullptr when the opener fails. The
  /// caller must balance with exactly one end_replica_read(node) once the
  /// read completes (success or failure) -- the pin is what keeps the idle
  /// reaper from reclaiming the QP under the in-flight read.
  fabric::QueuePair* begin_replica_read(NodeId node);
  void end_replica_read(NodeId node);

  /// Test/chaos hook: the read channel to `node`, or nullptr if never opened.
  [[nodiscard]] ReadChannel* peek_read_channel(NodeId node) {
    auto it = read_channels_.find(node);
    return it == read_channels_.end() ? nullptr : &it->second;
  }

  /// A client timed out on this channel: the shared QP is presumed dead.
  /// Tears the channel down (all endpoints re-establish lazily and
  /// retransmit). No-op when `generation` is stale.
  void report_failure(ShardId shard, std::uint64_t generation);

  [[nodiscard]] const NodeMuxStats& stats() const noexcept { return stats_; }
  [[nodiscard]] NodeId node() const noexcept { return node_; }

 private:
  void close_channel(ShardId shard, Channel& ch, bool failure);
  void reap_loop();

  NodeId node_;
  NodeMuxConfig cfg_;
  Opener opener_;
  Closer closer_;
  ReadOpener read_opener_;
  ReadCloser read_closer_;
  obs::Plane* obs_ = nullptr;
  std::map<ShardId, Channel> channels_;
  std::map<NodeId, ReadChannel> read_channels_;
  bool reaper_armed_ = false;
  NodeMuxStats stats_;
};

}  // namespace hydra::client
