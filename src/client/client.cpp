#include "client/client.hpp"

#include <algorithm>
#include <utility>

#include "common/hash.hpp"
#include "common/logging.hpp"
#include "core/item.hpp"
#include "obs/plane.hpp"

namespace hydra::client {

Client::Client(sim::Scheduler& sched, fabric::Fabric& fabric, NodeId node,
               ClientConfig cfg, std::shared_ptr<RemotePtrCache> pointer_cache)
    : sim::Actor(sched, "client-" + std::to_string(cfg.id)),
      fabric_(fabric),
      node_(node),
      cfg_([&cfg] {
        cfg.window = std::max<std::uint32_t>(cfg.window, 1);
        return cfg;
      }()),
      cache_(pointer_cache ? std::move(pointer_cache)
                           : std::make_shared<RemotePtrCache>(64 * 1024)),
      resp_region_(static_cast<std::size_t>(cfg_.max_shard_connections) *
                   cfg_.window * cfg_.resp_slot_bytes) {
  resp_mr_ = fabric_.node(node_).register_memory(resp_region_);
  resp_mr_->set_write_hook(
      guard([this](std::uint64_t offset, std::uint32_t) { on_response_write(offset); }));
  for (std::uint32_t i = 0; i < cfg_.max_shard_connections; ++i) free_blocks_.push_back(i);
}

// ---------------------------------------------------------------- public ops

void Client::get(std::string key, GetCallback cb) {
  PendingOp op;
  op.req.type = proto::MsgType::kGet;
  op.req.client = cfg_.id;
  op.req.key = std::move(key);
  op.get_cb = std::move(cb);
  op.issued = now();

  if (cfg_.use_rdma_read) {
    const std::uint64_t h = hash_key(op.req.key);
    CachedPtr entry;
    if (cache_->get(h, &entry)) {
      const std::uint64_t epoch = current_epoch();
      if (entry.primary.epoch != epoch) {
        // The routing epoch moved past this pointer's lease (failover
        // promotion or migration commit): its rkey may reference memory a
        // fenced primary no longer owns, so it must never be read again.
        cache_->erase(h);
        ++stats_.epoch_invalidations;
        if (epoch != last_swept_epoch_) {
          // First stale hit under the new epoch: sweep the whole cache of
          // entries leased under superseded epochs. They used to linger --
          // skipped on every lookup but never erased -- holding slots
          // hostage until eviction pressure happened to land on them.
          last_swept_epoch_ = epoch;
          stats_.stale_evicted += cache_->erase_if(
              [epoch](std::uint64_t, const CachedPtr& v) {
                return v.primary.epoch != epoch;
              });
        }
      } else if (entry.primary.lease_expiry > now() + cfg_.lease_safety_margin) {
        // Strict >: a lease expiring exactly at the assumed read-completion
        // time (now + margin) counts as expired and takes the message path.
        if (replica_connector_ && entry.replica_count > 0) {
          // Promoted key: spread one-sided reads round-robin across the
          // primary and its advertised follower copies (DESIGN.md §12).
          const std::uint32_t fan =
              std::min<std::uint32_t>(entry.replica_count,
                                      proto::kMaxReplicaPtrs) + 1;
          const auto pick = static_cast<std::uint32_t>(replica_rr_++ % fan);
          if (pick > 0) {
            try_replica_read(h, entry, pick - 1, std::move(op));
            return;
          }
        }
        try_rdma_read(h, entry.primary, std::move(op));
        return;
      }
    }
    ++stats_.ptr_misses;
  }
  submit(std::move(op));
}

void Client::put(std::string key, std::string value, OpCallback cb) {
  PendingOp op;
  op.req.type = proto::MsgType::kPut;
  op.req.client = cfg_.id;
  op.req.key = std::move(key);
  op.req.value = std::move(value);
  op.op_cb = std::move(cb);
  op.issued = now();
  submit(std::move(op));
}

void Client::insert(std::string key, std::string value, OpCallback cb) {
  PendingOp op;
  op.req.type = proto::MsgType::kInsert;
  op.req.client = cfg_.id;
  op.req.key = std::move(key);
  op.req.value = std::move(value);
  op.op_cb = std::move(cb);
  op.issued = now();
  submit(std::move(op));
}

void Client::update(std::string key, std::string value, OpCallback cb) {
  PendingOp op;
  op.req.type = proto::MsgType::kUpdate;
  op.req.client = cfg_.id;
  op.req.key = std::move(key);
  op.req.value = std::move(value);
  op.op_cb = std::move(cb);
  op.issued = now();
  submit(std::move(op));
}

void Client::remove(std::string key, OpCallback cb) {
  PendingOp op;
  op.req.type = proto::MsgType::kRemove;
  op.req.client = cfg_.id;
  op.req.key = std::move(key);
  op.op_cb = std::move(cb);
  op.issued = now();
  submit(std::move(op));
}

void Client::renew_lease(std::string key, OpCallback cb) {
  PendingOp op;
  op.req.type = proto::MsgType::kRenewLease;
  op.req.client = cfg_.id;
  op.req.key = std::move(key);
  op.op_cb = std::move(cb);
  op.issued = now();
  submit(std::move(op));
}

// --------------------------------------------------------------- range scans

void Client::scan_shard(ShardId shard, std::string start_key, const proto::ScanReq& sreq,
                        ScanRespCallback cb) {
  PendingOp op;
  op.req.type = proto::MsgType::kScan;
  op.req.client = cfg_.id;
  op.req.key = std::move(start_key);
  const auto payload = proto::encode_scan_req(sreq);
  op.req.value.assign(reinterpret_cast<const char*>(payload.data()), payload.size());
  op.scan_cb = std::move(cb);
  op.target = shard;
  op.issued = now();
  submit(std::move(op));
}

void Client::leaf_read(NodeId node, fabric::RemoteAddr addr, std::uint32_t len,
                       LeafReadCallback cb) {
  if (!replica_connector_) {
    if (cb) cb(Status::kDisconnected, {});
    return;
  }
  ReplicaWire wire = replica_connector_(node);
  if (wire.qp == nullptr) {
    if (cb) cb(Status::kDisconnected, {});
    return;
  }
  auto buf = std::make_shared<std::vector<std::byte>>(len);
  auto cb_holder = std::make_shared<LeafReadCallback>(std::move(cb));
  wire.qp->post_read(
      *buf, addr, next_req_id_++,
      guard([this, buf, cb_holder, release = std::move(wire.release)](
                const fabric::Completion& wc) {
        // Release the channel pin first, exactly like try_replica_read: the
        // idle reaper must not stay blocked if the scan path errors out.
        if (release) release();
        if (wc.status != fabric::WcStatus::kSuccess) {
          (*cb_holder)(Status::kDisconnected, {});
          return;
        }
        schedule_after(cfg_.decode_cost, [buf, cb_holder] {
          (*cb_holder)(Status::kOk, std::move(*buf));
        });
      }));
}

// -------------------------------------------------------------- transactions

Client::TxnWire Client::txn_wire(ShardId shard) {
  TxnWire wire;
  Conn* conn = connection_to(shard);
  if (conn == nullptr) return wire;
  if (conn->wire.mux &&
      !conn->wire.mux_node->live(shard, conn->wire.mux_generation)) {
    // Same staleness rule as try_rdma_read: never hand out a QP belonging
    // to a channel that was reclaimed behind this endpoint's back.
    salvage_connection(shard);
    return wire;
  }
  if (conn->wire.lock_words == 0) {
    // Reachable but transactions are off: expose the QP so callers can tell
    // "arena disabled" (terminal) from "shard unreachable" (retryable).
    wire.qp = conn->wire.qp;
    return wire;
  }
  wire.qp = conn->wire.qp;
  wire.lock_rkey = conn->wire.lock_rkey;
  wire.lock_words = conn->wire.lock_words;
  wire.ok = true;
  return wire;
}

void Client::invalidate_connection(ShardId shard) { salvage_connection(shard); }

void Client::txn_commit(std::string routing_key, std::string payload, OpCallback cb) {
  PendingOp op;
  op.req.type = proto::MsgType::kTxnCommit;
  op.req.client = cfg_.id;
  op.req.key = std::move(routing_key);
  op.req.value = std::move(payload);
  op.op_cb = std::move(cb);
  op.issued = now();
  submit(std::move(op));
}

// ---------------------------------------------------------------- RDMA read

void Client::try_rdma_read(std::uint64_t key_hash, const proto::RemotePtr& ptr,
                           PendingOp op) {
  Conn* conn = connection_to(ptr.shard);
  if (conn != nullptr && conn->wire.mux &&
      !conn->wire.mux_node->live(ptr.shard, conn->wire.mux_generation)) {
    // The shared channel this endpoint registered against was reclaimed;
    // its QP may already carry someone else's traffic. Salvage (not drop):
    // other slots on this logical connection may still hold in-flight or
    // queued ops whose callbacks must re-submit, not silently vanish.
    salvage_connection(ptr.shard);
    conn = nullptr;
  }
  if (conn == nullptr) {
    ++stats_.ptr_misses;
    submit(std::move(op));
    return;
  }
  // The read buffer lives in the completion closure; items are fetched
  // whole (header + key + value + guardian) and validated locally.
  auto buf = std::make_shared<std::vector<std::byte>>(ptr.total_len);
  auto op_holder = std::make_shared<PendingOp>(std::move(op));
  conn->wire.qp->post_read(
      *buf, fabric::RemoteAddr{ptr.rkey, ptr.offset}, next_req_id_++,
      guard([this, buf, op_holder, key_hash, ptr](const fabric::Completion& wc) {
        if (wc.status != fabric::WcStatus::kSuccess) {
          // Shard unreachable: treat like a miss; the message path will
          // retry/re-route through the failover machinery.
          cache_->erase(key_hash);
          ++stats_.ptr_misses;
          submit(std::move(*op_holder));
          return;
        }
        schedule_after(cfg_.decode_cost, [this, buf, op_holder, key_hash, ptr] {
          const core::ItemValidity validity =
              core::validate_item(buf->data(), buf->size(), op_holder->req.key);
          if (validity == core::ItemValidity::kValid) {
            ++stats_.ptr_hits;
            ++stats_.gets;
            core::ItemView item(buf->data());
            stats_.get_latency.record(now() - op_holder->issued);
            maybe_auto_renew(op_holder->req.key, ptr);
            if (op_holder->get_cb) op_holder->get_cb(Status::kOk, item.value());
            return;
          }
          // Outdated or reclaimed: invalidate and fall back to a GET
          // message to fetch the latest version (paper section 4.2.3).
          ++stats_.invalid_hits;
          cache_->erase(key_hash);
          submit(std::move(*op_holder));
        });
      }));
}

void Client::try_replica_read(std::uint64_t key_hash, const CachedPtr& entry,
                              std::uint32_t replica_idx, PendingOp op) {
  const proto::ReplicaPtr rep = entry.replicas[replica_idx];
  ReplicaWire wire = replica_connector_(rep.node);
  if (wire.qp == nullptr) {
    // No channel to the follower right now (node dead, mux saturated):
    // fall back to the primary copy rather than the message path -- the
    // primary pointer is still lease-valid.
    try_rdma_read(key_hash, entry.primary, std::move(op));
    return;
  }
  auto buf = std::make_shared<std::vector<std::byte>>(rep.total_len);
  auto op_holder = std::make_shared<PendingOp>(std::move(op));
  wire.qp->post_read(
      *buf, fabric::RemoteAddr{rep.rkey, rep.offset}, next_req_id_++,
      guard([this, buf, op_holder, key_hash, rep, prim = entry.primary,
             release = std::move(wire.release)](const fabric::Completion& wc) {
        // Release the channel pin before anything else: the reaper must not
        // stay blocked if the completion path re-submits or errors out.
        if (release) release();
        if (wc.status != fabric::WcStatus::kSuccess) {
          cache_->erase(key_hash);
          ++stats_.ptr_misses;
          submit(std::move(*op_holder));
          return;
        }
        schedule_after(cfg_.decode_cost, [this, buf, op_holder, key_hash, rep,
                                          prim] {
          const core::ItemValidity validity =
              core::validate_item(buf->data(), buf->size(), op_holder->req.key);
          if (validity == core::ItemValidity::kValid) {
            ++stats_.ptr_hits;
            ++stats_.replica_hits;
            ++stats_.gets;
            core::ItemView item(buf->data());
            stats_.get_latency.record(now() - op_holder->issued);
            if (fabric_.obs() != nullptr) {
              fabric_.obs()->trace(now(), node_, obs::TraceKind::kReplicaReadHit,
                                   prim.shard, key_hash, rep.node);
            }
            maybe_auto_renew(op_holder->req.key, prim);
            if (op_holder->get_cb) op_holder->get_cb(Status::kOk, item.value());
            return;
          }
          // Dead guardian or mismatch: the copy was invalidated by a write
          // or demotion. Drop the whole entry (primary included -- the next
          // GET response re-advertises whatever is still promoted).
          ++stats_.invalid_hits;
          cache_->erase(key_hash);
          submit(std::move(*op_holder));
        });
      }));
}

void Client::maybe_auto_renew(const std::string& key, const proto::RemotePtr& ptr) {
  if (!cfg_.auto_renew) return;
  // Renew when less than a quarter of the lease term remains, so pointers
  // for keys this client keeps reading stay valid (C-Hint-style renewal).
  const Duration remaining = ptr.lease_expiry > now() ? ptr.lease_expiry - now() : 0;
  if (remaining > kSecond / 4) return;
  ++stats_.renews_sent;
  renew_lease(key, nullptr);
}

// ---------------------------------------------------------------- messaging

Client::Conn* Client::connection_to(ShardId shard) {
  auto it = conns_.find(shard);
  if (it != conns_.end()) return it->second.get();
  if (!connector_ || free_blocks_.empty()) return nullptr;

  auto conn = std::make_unique<Conn>();
  conn->resp_block = free_blocks_.back();
  const fabric::RemoteAddr resp_addr =
      resp_mr_->addr(static_cast<std::uint64_t>(conn->resp_block) * block_stride());
  if (!connector_(shard, *this, resp_addr, cfg_.resp_slot_bytes, cfg_.window,
                  &conn->wire)) {
    return nullptr;
  }
  free_blocks_.pop_back();
  block_to_shard_[conn->resp_block] = shard;
  conn->window = std::clamp<std::uint32_t>(conn->wire.window, 1, cfg_.window);
  conn->slots.resize(conn->window);

  if (conn->wire.send_recv) {
    conn->recv_bufs.resize(std::max<std::size_t>(8, conn->window),
                           std::vector<std::byte>(cfg_.resp_slot_bytes));
    for (std::size_t i = 0; i < conn->recv_bufs.size(); ++i) {
      conn->wire.qp->post_recv(conn->recv_bufs[i], i);
    }
    Conn* raw = conn.get();
    conn->wire.qp->set_recv_handler(
        guard([this, shard, raw](const fabric::Completion& wc, std::span<std::byte> data) {
          auto resp = proto::decode_response(data.subspan(0, wc.byte_len));
          raw->wire.qp->post_recv(raw->recv_bufs[wc.wr_id], wc.wr_id);
          if (resp.has_value()) handle_response(shard, *raw, *resp);
        }));
  }
  Conn* raw = conn.get();
  conns_[shard] = std::move(conn);
  return raw;
}

void Client::drop_connection(ShardId shard) {
  auto it = conns_.find(shard);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;
  for (Slot& s : conn.slots) {
    scheduler().cancel(s.timeout);
    if (s.busy && s.holds_ring_slot && conn.wire.mux && conn.wire.mux_node != nullptr) {
      // Return credits still held on a live channel (no-op if the channel
      // itself died -- teardown already recycled them).
      conn.wire.mux_node->release(shard, conn.wire.mux_generation, s.mux_ring_slot);
    }
  }
  // Scrub the response ring so a later connection reusing this block never
  // sees a stale landed frame.
  for (std::uint32_t s = 0; s < cfg_.window; ++s) {
    auto span = resp_slot(conn.resp_block, s);
    std::fill(span.begin(), span.end(), std::byte{0});
  }
  free_blocks_.push_back(conn.resp_block);
  block_to_shard_.erase(conn.resp_block);
  conns_.erase(it);
}

void Client::submit(PendingOp op) {
  // Scans carry an explicit destination: their key is a range position, so
  // hash-routing it through the resolver would be meaningless.
  const bool routed = op.req.type != proto::MsgType::kScan;
  if (routed && !resolver_) {
    complete(op, Status::kDisconnected, {});
    return;
  }
  const ShardId shard = routed ? resolver_(hash_key(op.req.key)) : op.target;
  if (shard == kInvalidShard) {
    complete(op, Status::kDisconnected, {});
    return;
  }
  Conn* conn = connection_to(shard);
  if (conn == nullptr) {
    // No route right now (mid-failover): retry shortly rather than fail.
    if (++op.retries > cfg_.max_retries) {
      complete(op, Status::kTimeout, {});
      return;
    }
    ++stats_.retries;
    schedule_after(cfg_.request_timeout / 4,
                   [this, op = std::move(op)]() mutable { submit(std::move(op)); });
    return;
  }
  if (conn->in_flight >= conn->window) {
    conn->queue.push_back(std::move(op));
    return;
  }
  issue(shard, *conn, std::move(op));
}

void Client::issue(ShardId shard, Conn& conn, PendingOp op) {
  // Claim the next free ring slot (round-robin from the cursor; responses
  // may complete out of order, so free slots need not be contiguous).
  std::uint32_t slot_idx = conn.window;
  for (std::uint32_t i = 0; i < conn.window; ++i) {
    const std::uint32_t s = (conn.next_slot + i) % conn.window;
    if (!conn.slots[s].busy) {
      slot_idx = s;
      break;
    }
  }
  if (slot_idx == conn.window) {  // no free slot (callers check in_flight)
    conn.queue.push_back(std::move(op));
    return;
  }
  Slot& slot = conn.slots[slot_idx];
  slot.busy = true;
  slot.op = std::move(op);
  slot.op.req.req_id = next_req_id_++;
  conn.next_slot = (slot_idx + 1) % conn.window;
  ++conn.in_flight;
  stats_.max_in_flight = std::max(stats_.max_in_flight, conn.in_flight);
  post_slot(shard, slot_idx);
}

void Client::post_slot(ShardId shard, std::uint32_t slot_idx) {
  auto it = conns_.find(shard);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;
  Slot& slot = conn.slots[slot_idx];

  if (conn.wire.mux) {
    // Mux path: the request travels the node's shared ring, enveloped so
    // the shard can route the response back to this endpoint's slot.
    const proto::MuxHeader hdr{conn.wire.endpoint, slot_idx};
    const auto payload = proto::encode_mux_request(hdr, slot.op.req);
    const std::size_t framed_size = proto::frame_size(payload.size());
    if (framed_size > conn.wire.req_slot_bytes) {
      PendingOp op = std::move(slot.op);
      slot.busy = false;
      --conn.in_flight;
      complete(op, Status::kInvalidArgument, {});
      return;
    }
    std::vector<std::byte> frame(framed_size);
    proto::encode_frame(frame, payload);
    schedule_after(cfg_.issue_cost, [this, shard, slot_idx, frame = std::move(frame)]() mutable {
      post_mux_slot(shard, slot_idx, std::move(frame));
    });
    return;
  }

  const auto payload = proto::encode_request(slot.op.req);

  if (conn.wire.send_recv) {
    schedule_after(cfg_.issue_cost, [this, shard, slot_idx, payload] {
      auto cit = conns_.find(shard);  // connection may have been torn down
      if (cit == conns_.end() || slot_idx >= cit->second->slots.size()) return;
      Conn& c = *cit->second;
      if (!c.slots[slot_idx].busy) return;
      c.wire.qp->post_send(payload);
      c.slots[slot_idx].timeout =
          schedule_after(cfg_.request_timeout, [this, shard] { on_timeout(shard); });
    });
    return;
  }

  const std::size_t framed_size = proto::frame_size(payload.size());
  if (framed_size > conn.wire.req_slot_bytes) {
    PendingOp op = std::move(slot.op);
    slot.busy = false;
    --conn.in_flight;
    complete(op, Status::kInvalidArgument, {});
    return;
  }
  std::vector<std::byte> frame(framed_size);
  proto::encode_frame(frame, payload);
  schedule_after(cfg_.issue_cost, [this, shard, slot_idx, frame = std::move(frame)] {
    auto cit = conns_.find(shard);
    if (cit == conns_.end() || slot_idx >= cit->second->slots.size()) return;
    Conn& c = *cit->second;
    if (!c.slots[slot_idx].busy) return;
    const fabric::RemoteAddr dst{
        c.wire.req_slot.rkey,
        c.wire.req_slot.offset +
            proto::ring_slot_offset(slot_idx, c.wire.req_slot_bytes)};
    c.wire.qp->post_write(frame, dst);
    c.slots[slot_idx].timeout =
        schedule_after(cfg_.request_timeout, [this, shard] { on_timeout(shard); });
  });
}

void Client::post_mux_slot(ShardId shard, std::uint32_t slot_idx,
                           std::vector<std::byte> frame) {
  auto it = conns_.find(shard);
  if (it == conns_.end() || slot_idx >= it->second->slots.size()) return;
  Conn& conn = *it->second;
  if (!conn.slots[slot_idx].busy) return;
  // Claim a shared-ring credit (SRQ-style flow control). A full ring parks
  // us on the channel's waiter list; a dead channel hands back nullptr and
  // the op re-submits through a freshly established channel.
  NodeMux* mux = conn.wire.mux_node;
  mux->acquire(
      shard, conn.wire.mux_generation,
      guard([this, mux, shard, slot_idx, frame = std::move(frame)](NodeMux::Channel* ch,
                                                                   std::uint32_t ring_slot) {
        auto cit = conns_.find(shard);
        if (cit == conns_.end() || slot_idx >= cit->second->slots.size() ||
            !cit->second->slots[slot_idx].busy) {
          // The logical connection vanished while we waited for a credit;
          // give the credit back through the channel's release flow so it
          // reaches the oldest parked waiter instead of stranding them.
          if (ch != nullptr) mux->recycle(*ch, ring_slot);
          return;
        }
        Conn& c = *cit->second;
        if (ch == nullptr) {
          // Channel died while we waited: the endpoint registration died
          // with it, so every op on this logical connection re-submits
          // through a freshly established channel.
          salvage_connection(shard);
          return;
        }
        Slot& slot = c.slots[slot_idx];
        slot.holds_ring_slot = true;
        slot.mux_ring_slot = ring_slot;
        const fabric::RemoteAddr dst{
            c.wire.req_slot.rkey,
            c.wire.req_slot.offset +
                proto::ring_slot_offset(ring_slot, c.wire.req_slot_bytes)};
        ch->wire.qp->post_write(frame, dst);
        slot.timeout =
            schedule_after(cfg_.request_timeout, [this, shard] { on_timeout(shard); });
      }));
}

void Client::salvage_connection(ShardId shard) {
  auto it = conns_.find(shard);
  if (it == conns_.end()) return;
  std::vector<PendingOp> to_retry;
  for (Slot& s : it->second->slots) {
    if (s.busy) to_retry.push_back(std::move(s.op));
  }
  for (auto& queued : it->second->queue) to_retry.push_back(std::move(queued));
  drop_connection(shard);
  for (auto& op : to_retry) retry_or_fail(std::move(op));
}

void Client::retry_or_fail(PendingOp op) {
  if (++op.retries > cfg_.max_retries) {
    complete(op, Status::kTimeout, {});
    return;
  }
  ++stats_.retries;
  schedule_after(cfg_.request_timeout / 4,
                 [this, op = std::move(op)]() mutable { submit(std::move(op)); });
}

void Client::on_response_write(std::uint64_t offset) {
  const auto block = static_cast<std::uint32_t>(offset / block_stride());
  const auto unit = static_cast<std::uint32_t>(offset / cfg_.resp_slot_bytes);
  const std::uint32_t slot = unit - block * cfg_.window;
  auto sit = block_to_shard_.find(block);
  if (sit == block_to_shard_.end()) return;
  const ShardId shard = sit->second;
  auto cit = conns_.find(shard);
  if (cit == conns_.end()) return;
  Conn& conn = *cit->second;

  const auto span = resp_slot(conn.resp_block, slot);
  switch (proto::probe_frame(span)) {
    case proto::FrameState::kEmpty:
    case proto::FrameState::kPartial:
      return;  // frame still landing
    case proto::FrameState::kMalformed:
      proto::clear_frame(span);  // scrub garbage so the slot stays usable
      return;
    case proto::FrameState::kReady:
      break;
  }
  auto resp = proto::decode_response(proto::frame_payload(span));
  proto::clear_frame(span);
  if (!resp.has_value()) return;
  handle_response(shard, conn, *resp);
}

void Client::handle_response(ShardId shard, Conn& conn, const proto::Response& resp) {
  // Match the response to its in-flight slot by req_id: with window > 1
  // completions can arrive in any order.
  std::uint32_t slot_idx = conn.window;
  for (std::uint32_t i = 0; i < conn.window; ++i) {
    if (conn.slots[i].busy && conn.slots[i].op.req.req_id == resp.req_id) {
      slot_idx = i;
      break;
    }
  }
  if (slot_idx == conn.window) return;  // stale (timed out / retried already)
  Slot& slot = conn.slots[slot_idx];
  for (std::uint32_t i = 0; i < conn.window; ++i) {
    if (i != slot_idx && conn.slots[i].busy &&
        conn.slots[i].op.req.req_id < resp.req_id) {
      ++stats_.ooo_responses;
      break;
    }
  }
  scheduler().cancel(slot.timeout);
  PendingOp op = std::move(slot.op);
  slot.busy = false;
  if (slot.holds_ring_slot) {
    // The shard consumed the shared-ring frame before answering: the
    // credit flows back to the channel (or straight to its oldest waiter).
    slot.holds_ring_slot = false;
    conn.wire.mux_node->release(shard, conn.wire.mux_generation, slot.mux_ring_slot);
  }
  --conn.in_flight;

  // Cache/refresh the granted remote pointer (GET and lease-renew paths),
  // stamped with the epoch it was leased under so a later epoch bump
  // invalidates it before the next one-sided read.
  if (cfg_.use_rdma_read && resp.remote_ptr.valid()) {
    CachedPtr entry;
    entry.primary = resp.remote_ptr;
    entry.primary.epoch = current_epoch();
    // Hot-key promotion set: the shard advertises follower copies alongside
    // the primary pointer; cache them so subsequent one-sided GETs can fan
    // out. An empty set (the common case) leaves replica_count == 0.
    for (const auto& rp : resp.replicas) {
      if (entry.replica_count >= proto::kMaxReplicaPtrs) break;
      if (!rp.valid()) continue;
      entry.replicas[entry.replica_count++] = rp;
    }
    cache_->put(hash_key(op.req.key), entry);
  }

  // Refill the ring from the overflow queue before running the callback.
  while (conn.in_flight < conn.window && !conn.queue.empty()) {
    PendingOp next = std::move(conn.queue.front());
    conn.queue.pop_front();
    issue(shard, conn, std::move(next));
  }

  if (resp.status == Status::kWrongOwner &&
      op.req.type != proto::MsgType::kTxnCommit &&
      op.req.type != proto::MsgType::kScan) {
    // (kScan and kTxnCommit treat kWrongOwner as terminal: the caller must
    // re-plan against the new epoch, not blindly re-route.)
    // The shard fenced this key's range (a migration or promotion raced the
    // request). Drop any pointer into the old owner and re-resolve after a
    // short backoff -- the routing table flips within the seal window.
    cache_->erase(hash_key(op.req.key));
    ++stats_.wrong_owner_redirects;
    if (++op.retries > cfg_.max_retries) {
      schedule_after(cfg_.decode_cost, [this, op = std::move(op)]() mutable {
        complete(op, Status::kWrongOwner, {});
      });
      return;
    }
    ++stats_.retries;
    schedule_after(cfg_.request_timeout / 4,
                   [this, op = std::move(op)]() mutable { submit(std::move(op)); });
    return;
  }

  schedule_after(cfg_.decode_cost,
                 [this, op = std::move(op), resp = std::move(resp)]() mutable {
                   complete(op, resp.status, resp.value);
                 });
}

void Client::on_timeout(ShardId shard) {
  auto it = conns_.find(shard);
  if (it == conns_.end() || it->second->in_flight == 0) return;
  ++stats_.timeouts;
  if (fabric_.obs() != nullptr) {
    fabric_.obs()->trace(now(), node_, obs::TraceKind::kClientTimeout, shard,
                         it->second->in_flight);
  }

  // A mux timeout indicts the *shared* QP, not just this endpoint: report
  // it so the channel is torn down and every endpoint re-establishes
  // lazily (their own timeouts salvage their in-flight ops).
  if (it->second->wire.mux && it->second->wire.mux_node != nullptr) {
    it->second->wire.mux_node->report_failure(shard, it->second->wire.mux_generation);
  }

  // Salvage every in-flight slot and everything queued on this connection,
  // tear it down, and re-resolve: after a failover the shard's primary
  // lives elsewhere.
  salvage_connection(shard);
}

void Client::complete(PendingOp& op, Status status, std::string_view value) {
  const Duration latency = now() - op.issued;
  if (status != Status::kOk && status != Status::kNotFound &&
      status != Status::kExists && status != Status::kTxnConflict) {
    ++stats_.failures;
  }
  switch (op.req.type) {
    case proto::MsgType::kGet:
      ++stats_.gets;
      stats_.get_latency.record(latency);
      if (op.get_cb) op.get_cb(status, value);
      return;
    case proto::MsgType::kScan: {
      ++stats_.scan_batches;
      if (!op.scan_cb) return;
      proto::ScanResp body;
      if (status == Status::kOk) {
        const auto* bytes = reinterpret_cast<const std::byte*>(value.data());
        auto decoded = proto::decode_scan_resp({bytes, value.size()});
        if (!decoded.has_value()) {
          op.scan_cb(Status::kInvalidArgument, body);
          return;
        }
        stats_.scan_entries += decoded->entries.size();
        op.scan_cb(Status::kOk, *decoded);
        return;
      }
      op.scan_cb(status, body);
      return;
    }
    case proto::MsgType::kInsert:
    case proto::MsgType::kUpdate:
    case proto::MsgType::kPut:
      ++stats_.puts;
      stats_.put_latency.record(latency);
      break;
    case proto::MsgType::kRemove:
      ++stats_.removes;
      stats_.put_latency.record(latency);
      break;
    default:
      break;
  }
  if (op.op_cb) op.op_cb(status);
}

}  // namespace hydra::client
