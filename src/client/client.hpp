// HydraDB client library (paper sections 4.2.1, 4.2.2, 4.2.3, 4.2.4).
//
// The client routes keys with consistent hashing, passes messages over
// RDMA-Write-driven request/response rings (up to `window` outstanding
// requests per shard connection, each in its own indicator-encapsulated
// slot, matched to responses by req_id so completions may arrive out of
// order), and accelerates repeat GETs with cached remote pointers: while
// the lease holds, the value is fetched by one-sided RDMA Read and
// validated locally via the guardian word; a dead guardian falls back to
// the message path and invalidates the cached pointer. Co-located clients
// may share one lock-free pointer cache. window=1 degenerates to the
// paper's closed-loop one-request-at-a-time wire behaviour.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "client/node_mux.hpp"
#include "common/histogram.hpp"
#include "core/lockfree_cache.hpp"
#include "fabric/fabric.hpp"
#include "proto/frame.hpp"
#include "proto/messages.hpp"
#include "sim/actor.hpp"

namespace hydra::client {

struct ClientConfig {
  ClientId id = 0;
  /// Remote-pointer caching + RDMA Read GETs (off = "RDMA Write Only").
  bool use_rdma_read = true;
  /// Two-sided Send/Recv transport instead of RDMA-Write message passing.
  bool use_send_recv = false;
  /// Fire-and-forget lease renewals when a hit's remaining lease runs low.
  bool auto_renew = true;
  std::uint32_t resp_slot_bytes = 16 * 1024;
  std::uint32_t max_shard_connections = 128;
  /// Outstanding requests kept in flight per shard connection (request-ring
  /// depth the client asks for; the shard may grant less). 1 = the paper's
  /// closed-loop behaviour.
  std::uint32_t window = 8;
  Duration issue_cost = 150;    ///< building + posting a request
  Duration decode_cost = 120;   ///< parsing a response / validating a read
  Duration request_timeout = 5 * kMillisecond;
  int max_retries = 8;
  /// Do not RDMA-read when the lease has less than this margin remaining.
  Duration lease_safety_margin = 50 * kMicrosecond;
  /// Range scans (DESIGN.md §13): follow shard-advertised leaf-page hints
  /// with one-sided RDMA Reads (off = every continuation rides the message
  /// path; the paper's "RDMA Write only" analogue for scans).
  bool scan_leaf_reads = true;
  /// Entries requested per kScan batch (the shard additionally caps this).
  std::uint32_t scan_batch = 32;
  /// Cursor-level restarts (epoch bumps, drained shards) before a scan
  /// gives up with kTimeout.
  int max_scan_restarts = 32;
};

struct ClientStats {
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t removes = 0;
  std::uint64_t ptr_hits = 0;      ///< GETs served by a valid RDMA Read
  std::uint64_t invalid_hits = 0;  ///< RDMA Read found dead/mismatched item
  std::uint64_t ptr_misses = 0;    ///< GET without a usable cached pointer
  /// Replica-read hits: ptr_hits served from a promoted follower copy
  /// rather than the primary's arena (DESIGN.md §12).
  std::uint64_t replica_hits = 0;
  /// Cached pointers discarded because the routing epoch advanced past the
  /// epoch they were leased under (failover or migration invalidation).
  std::uint64_t epoch_invalidations = 0;
  /// Stale-epoch entries reclaimed by the cache-wide sweep that follows the
  /// first stale hit after an epoch advance (they used to linger, skipped
  /// but never erased, until eviction pressure found them).
  std::uint64_t stale_evicted = 0;
  /// kWrongOwner answers that sent the op back through the resolver.
  std::uint64_t wrong_owner_redirects = 0;
  std::uint64_t renews_sent = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t retries = 0;
  std::uint64_t failures = 0;
  /// Largest number of simultaneously in-flight requests observed on any
  /// single connection (1 on a closed-loop / window=1 run).
  std::uint32_t max_in_flight = 0;
  /// Responses that completed a request other than the oldest in-flight one
  /// on their connection (only possible with window > 1).
  std::uint64_t ooo_responses = 0;
  // Range scans (DESIGN.md §13).
  std::uint64_t scans = 0;          ///< ScanCursor scans completed (any status)
  std::uint64_t scan_batches = 0;   ///< kScan message batches completed
  std::uint64_t scan_entries = 0;   ///< entries returned across all batches
  std::uint64_t scan_leaf_reads = 0;      ///< continuations served one-sidedly
  std::uint64_t scan_leaf_fallbacks = 0;  ///< leaf pages that failed validation
  std::uint64_t scan_restarts = 0;        ///< cursor re-resolves (epoch/ownership)
  LatencyHistogram get_latency;
  LatencyHistogram put_latency;
  LatencyHistogram scan_latency;  ///< full ScanCursor completion latency
};

/// One pointer-cache entry: the primary's remote pointer plus any promoted
/// follower copies advertised with it (DESIGN.md §12). Fixed-size and
/// trivially copyable so the lock-free cache's seqlock protection applies;
/// the round-robin cursor spreading reads across the fan-out lives in the
/// Client, never in the shared entry.
struct CachedPtr {
  proto::RemotePtr primary;
  std::array<proto::ReplicaPtr, proto::kMaxReplicaPtrs> replicas{};
  std::uint32_t replica_count = 0;
};

/// Everything the harness hands back when a client connects to a shard.
struct ShardConnection {
  fabric::QueuePair* qp = nullptr;      ///< client-side endpoint
  fabric::RemoteAddr req_slot{};        ///< base of the request ring
  std::uint32_t req_slot_bytes = 0;     ///< per-slot bytes of that ring
  std::uint32_t arena_rkey = 0;
  /// Lock-word arena of the shard (DESIGN.md §11); 0/0 = txn disabled.
  std::uint32_t lock_rkey = 0;
  std::uint32_t lock_words = 0;
  /// Ring depth the shard granted (<= the window the client requested).
  std::uint32_t window = 1;
  bool send_recv = false;
  // QP multiplexing (DESIGN.md §10): this logical connection is an endpoint
  // riding its node's shared channel to the shard. `req_slot` then names
  // the *shared* request ring; requests claim a slot of it per issue.
  bool mux = false;
  std::uint32_t endpoint = 0;        ///< shard-side mux endpoint id
  std::uint64_t mux_generation = 0;  ///< channel incarnation registered against
  NodeMux* mux_node = nullptr;       ///< the node's shared channel pool
};

class Client : public sim::Actor {
 public:
  using RemotePtrCache = core::LockFreeCache<CachedPtr>;
  /// key hash -> owning shard (consistent-hash ring lookup).
  using Resolver = std::function<ShardId(std::uint64_t key_hash)>;
  /// Builds a fresh connection to a shard's *current* primary. The client
  /// passes the base of its response ring (`window` slots of
  /// `resp_slot_bytes` each) and the ring depth it wants; returns false if
  /// the shard is (currently) unreachable.
  using Connector = std::function<bool(ShardId shard, Client& self,
                                       fabric::RemoteAddr resp_slot,
                                       std::uint32_t resp_slot_bytes,
                                       std::uint32_t window,
                                       ShardConnection* out)>;

  using GetCallback = std::function<void(Status, std::string_view value)>;
  using OpCallback = std::function<void(Status)>;
  /// Per-batch scan answer: the decoded kScanResp (entries + done + leaf
  /// hint), or an empty one on error.
  using ScanRespCallback = std::function<void(Status, const proto::ScanResp&)>;
  /// Raw one-sided leaf-page read; the buffer is the registered mirror page.
  using LeafReadCallback = std::function<void(Status, std::vector<std::byte>)>;
  /// Cross-shard merged scan result (ScanCursor, DESIGN.md §13).
  using ScanEntries = std::vector<std::pair<std::string, std::string>>;
  using ScanResultFn = std::function<void(Status, ScanEntries)>;
  /// Live shard set for cross-shard scan fan-out (retired shards excluded).
  using ShardLister = std::function<std::vector<ShardId>()>;
  /// Current routing epoch (monotonic; bumped by failover promotions and
  /// migration commits). Pulled synchronously before every one-sided read,
  /// so there is no window where a pointer leased under epoch N can be
  /// read after the bump to N+1 -- the invalidation the paper's one-sided
  /// design needs to stay linearizable across ownership changes.
  using EpochSource = std::function<std::uint64_t()>;

  Client(sim::Scheduler& sched, fabric::Fabric& fabric, NodeId node, ClientConfig cfg,
         std::shared_ptr<RemotePtrCache> pointer_cache = nullptr);

  /// Acquired per one-sided replica read: the QP to post on plus a release
  /// hook fired when the read completes (under mux it pins the shared read
  /// channel against the idle reaper for the read's lifetime). A null qp
  /// means no path to that follower right now -- the read falls back to the
  /// primary.
  struct ReplicaWire {
    fabric::QueuePair* qp = nullptr;
    std::function<void()> release;
  };
  using ReplicaConnector = std::function<ReplicaWire(NodeId node)>;

  void set_resolver(Resolver r) { resolver_ = std::move(r); }
  void set_connector(Connector c) { connector_ = std::move(c); }
  void set_epoch_source(EpochSource e) { epoch_source_ = std::move(e); }
  void set_replica_connector(ReplicaConnector c) { replica_connector_ = std::move(c); }
  void set_shard_lister(ShardLister l) { shard_lister_ = std::move(l); }

  // --- data-plane operations (asynchronous, callbacks in virtual time) ----
  void get(std::string key, GetCallback cb);
  void put(std::string key, std::string value, OpCallback cb);      ///< upsert
  void insert(std::string key, std::string value, OpCallback cb);
  void update(std::string key, std::string value, OpCallback cb);
  void remove(std::string key, OpCallback cb);
  void renew_lease(std::string key, OpCallback cb);

  // --- range scans (src/index, DESIGN.md §13) ----------------------------
  /// Ordered cross-shard scan: merges per-shard streams into ascending key
  /// order, surviving routing-epoch advances (failover, live migration)
  /// without dropping or duplicating keys. At most `limit` entries.
  void scan(std::string start_key, std::uint32_t limit, ScanResultFn cb);
  /// One kScan batch against an *explicit* shard (scans are range-routed by
  /// the cursor, not hash-routed by the resolver). kWrongOwner is terminal
  /// here, like kTxnCommit: the cursor must re-resolve the shard set.
  void scan_shard(ShardId shard, std::string start_key, const proto::ScanReq& sreq,
                  ScanRespCallback cb);
  /// One-sided RDMA Read of a shard's mirrored leaf page (rides the replica
  /// read channels). kDisconnected when no path to `node` exists right now.
  void leaf_read(NodeId node, fabric::RemoteAddr addr, std::uint32_t len,
                 LeafReadCallback cb);

  // --- transaction support (src/txn, DESIGN.md §11) ----------------------
  /// One-sided view of a shard's lock-word arena, riding the same QP the
  /// logical connection uses (the shared channel QP under mux). `ok` is
  /// false when the shard is unreachable or its txn arena is disabled.
  struct TxnWire {
    fabric::QueuePair* qp = nullptr;
    std::uint32_t lock_rkey = 0;
    std::uint32_t lock_words = 0;
    bool ok = false;
  };
  /// Establishes (or reuses) the connection to `shard` and returns the
  /// lock-arena coordinates for one-sided CAS lock traffic.
  TxnWire txn_wire(ShardId shard);
  /// Tears the logical connection to `shard` down and retries everything
  /// in flight on it (txn layer calls this when lock CAS traffic hits a
  /// dead QP so the next txn_wire() re-establishes).
  void invalidate_connection(ShardId shard);
  /// Sends a kTxnCommit carrying an encoded proto::TxnCommit as its value,
  /// routed by `routing_key` (any key of the commit group -- the shard
  /// re-validates per-key ownership). Unlike data ops, a kWrongOwner answer
  /// is terminal: the txn layer must re-plan the whole group, not blindly
  /// re-route a multi-key commit.
  void txn_commit(std::string routing_key, std::string payload, OpCallback cb);

  [[nodiscard]] ClientId id() const noexcept { return cfg_.id; }
  [[nodiscard]] NodeId node() const noexcept { return node_; }
  [[nodiscard]] const ClientStats& stats() const noexcept { return stats_; }
  [[nodiscard]] ClientStats& mutable_stats() noexcept { return stats_; }
  [[nodiscard]] RemotePtrCache& pointer_cache() noexcept { return *cache_; }
  [[nodiscard]] const ClientConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] fabric::Fabric& fabric() noexcept { return fabric_; }
  [[nodiscard]] std::uint64_t routing_epoch() const { return current_epoch(); }
  [[nodiscard]] std::vector<ShardId> shard_list() const {
    return shard_lister_ ? shard_lister_() : std::vector<ShardId>{};
  }

 private:
  struct PendingOp {
    proto::Request req;
    GetCallback get_cb;
    OpCallback op_cb;
    ScanRespCallback scan_cb;
    /// kScan only: explicit destination shard (scans bypass the resolver).
    ShardId target = kInvalidShard;
    Time issued = 0;
    int retries = 0;
  };

  /// One ring-slot pair: a request in flight and its private timeout.
  struct Slot {
    bool busy = false;
    PendingOp op;
    sim::EventId timeout{};
    /// Mux mode: the shared-ring credit this request occupies on the wire
    /// (claimed at issue, returned when the response lands).
    bool holds_ring_slot = false;
    std::uint32_t mux_ring_slot = 0;
  };

  struct Conn {
    ShardConnection wire;
    std::uint32_t resp_block = 0;   ///< index of this conn's resp-ring block
    std::uint32_t window = 1;       ///< granted ring depth (slots.size())
    std::uint32_t in_flight = 0;
    std::uint32_t next_slot = 0;    ///< round-robin cursor over ring slots
    std::vector<Slot> slots;
    std::deque<PendingOp> queue;    ///< overflow beyond the window
    std::vector<std::vector<std::byte>> recv_bufs;  // send/recv mode
  };

  /// Per-connection resp-ring block size in bytes (cfg window slots; a
  /// connection granted a smaller window simply leaves the tail unused).
  [[nodiscard]] std::size_t block_stride() const noexcept {
    return static_cast<std::size_t>(cfg_.window) * cfg_.resp_slot_bytes;
  }
  [[nodiscard]] std::span<std::byte> resp_slot(std::uint32_t block, std::uint32_t slot) noexcept {
    return {resp_region_.data() + static_cast<std::size_t>(block) * block_stride() +
                proto::ring_slot_offset(slot, cfg_.resp_slot_bytes),
            cfg_.resp_slot_bytes};
  }

  Conn* connection_to(ShardId shard);
  void drop_connection(ShardId shard);
  void submit(PendingOp op);
  /// Places `op` into a free ring slot of `conn` and issues it on the wire.
  void issue(ShardId shard, Conn& conn, PendingOp op);
  void post_slot(ShardId shard, std::uint32_t slot_idx);
  void post_mux_slot(ShardId shard, std::uint32_t slot_idx, std::vector<std::byte> frame);
  /// Tears a logical connection down and re-submits everything in flight
  /// or queued on it through the normal retry path (mux channel died, or a
  /// request timed out).
  void salvage_connection(ShardId shard);
  void retry_or_fail(PendingOp op);
  void on_response_write(std::uint64_t offset);
  void handle_response(ShardId shard, Conn& conn, const proto::Response& resp);
  void on_timeout(ShardId shard);
  void complete(PendingOp& op, Status status, std::string_view value);
  void try_rdma_read(std::uint64_t key_hash, const proto::RemotePtr& ptr, PendingOp op);
  /// One-sided read of a promoted follower copy; validation failure (the
  /// copy was invalidated or its slot reused) falls back to the message
  /// path, a missing route falls back to the primary read.
  void try_replica_read(std::uint64_t key_hash, const CachedPtr& entry,
                        std::uint32_t replica_idx, PendingOp op);
  void maybe_auto_renew(const std::string& key, const proto::RemotePtr& ptr);
  [[nodiscard]] std::uint64_t current_epoch() const {
    return epoch_source_ ? epoch_source_() : 0;
  }

  fabric::Fabric& fabric_;
  NodeId node_;
  ClientConfig cfg_;
  std::shared_ptr<RemotePtrCache> cache_;
  Resolver resolver_;
  Connector connector_;
  EpochSource epoch_source_;
  ReplicaConnector replica_connector_;
  ShardLister shard_lister_;
  /// Round-robin cursor over {primary, replicas} for promoted keys.
  std::uint64_t replica_rr_ = 0;
  /// Last epoch the cache-wide stale sweep ran under (see get()).
  std::uint64_t last_swept_epoch_ = 0;

  std::vector<std::byte> resp_region_;
  fabric::MemoryRegion* resp_mr_;
  std::vector<std::uint32_t> free_blocks_;
  std::map<ShardId, std::unique_ptr<Conn>> conns_;
  std::map<std::uint32_t, ShardId> block_to_shard_;
  std::uint64_t next_req_id_ = 1;
  ClientStats stats_;
};

}  // namespace hydra::client
