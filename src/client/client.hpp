// HydraDB client library (paper sections 4.2.1, 4.2.2, 4.2.3, 4.2.4).
//
// The client routes keys with consistent hashing, passes messages over
// RDMA-Write-driven request/response buffers (one outstanding request per
// shard connection, closed loop), and accelerates repeat GETs with cached
// remote pointers: while the lease holds, the value is fetched by one-sided
// RDMA Read and validated locally via the guardian word; a dead guardian
// falls back to the message path and invalidates the cached pointer.
// Co-located clients may share one lock-free pointer cache.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.hpp"
#include "core/lockfree_cache.hpp"
#include "fabric/fabric.hpp"
#include "proto/frame.hpp"
#include "proto/messages.hpp"
#include "sim/actor.hpp"

namespace hydra::client {

struct ClientConfig {
  ClientId id = 0;
  /// Remote-pointer caching + RDMA Read GETs (off = "RDMA Write Only").
  bool use_rdma_read = true;
  /// Two-sided Send/Recv transport instead of RDMA-Write message passing.
  bool use_send_recv = false;
  /// Fire-and-forget lease renewals when a hit's remaining lease runs low.
  bool auto_renew = true;
  std::uint32_t resp_slot_bytes = 16 * 1024;
  std::uint32_t max_shard_connections = 128;
  Duration issue_cost = 150;    ///< building + posting a request
  Duration decode_cost = 120;   ///< parsing a response / validating a read
  Duration request_timeout = 5 * kMillisecond;
  int max_retries = 8;
  /// Do not RDMA-read when the lease has less than this margin remaining.
  Duration lease_safety_margin = 50 * kMicrosecond;
};

struct ClientStats {
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t removes = 0;
  std::uint64_t ptr_hits = 0;      ///< GETs served by a valid RDMA Read
  std::uint64_t invalid_hits = 0;  ///< RDMA Read found dead/mismatched item
  std::uint64_t ptr_misses = 0;    ///< GET without a usable cached pointer
  std::uint64_t renews_sent = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t retries = 0;
  std::uint64_t failures = 0;
  LatencyHistogram get_latency;
  LatencyHistogram put_latency;
};

/// Everything the harness hands back when a client connects to a shard.
struct ShardConnection {
  fabric::QueuePair* qp = nullptr;      ///< client-side endpoint
  fabric::RemoteAddr req_slot{};        ///< where to write framed requests
  std::uint32_t req_slot_bytes = 0;
  std::uint32_t arena_rkey = 0;
  bool send_recv = false;
};

class Client : public sim::Actor {
 public:
  using RemotePtrCache = core::LockFreeCache<proto::RemotePtr>;
  /// key hash -> owning shard (consistent-hash ring lookup).
  using Resolver = std::function<ShardId(std::uint64_t key_hash)>;
  /// Builds a fresh connection to a shard's *current* primary. The client
  /// passes where responses should land; returns false if the shard is
  /// (currently) unreachable.
  using Connector = std::function<bool(ShardId shard, Client& self,
                                       fabric::RemoteAddr resp_slot,
                                       std::uint32_t resp_slot_bytes,
                                       ShardConnection* out)>;

  using GetCallback = std::function<void(Status, std::string_view value)>;
  using OpCallback = std::function<void(Status)>;

  Client(sim::Scheduler& sched, fabric::Fabric& fabric, NodeId node, ClientConfig cfg,
         std::shared_ptr<RemotePtrCache> pointer_cache = nullptr);

  void set_resolver(Resolver r) { resolver_ = std::move(r); }
  void set_connector(Connector c) { connector_ = std::move(c); }

  // --- data-plane operations (asynchronous, callbacks in virtual time) ----
  void get(std::string key, GetCallback cb);
  void put(std::string key, std::string value, OpCallback cb);      ///< upsert
  void insert(std::string key, std::string value, OpCallback cb);
  void update(std::string key, std::string value, OpCallback cb);
  void remove(std::string key, OpCallback cb);
  void renew_lease(std::string key, OpCallback cb);

  [[nodiscard]] ClientId id() const noexcept { return cfg_.id; }
  [[nodiscard]] NodeId node() const noexcept { return node_; }
  [[nodiscard]] const ClientStats& stats() const noexcept { return stats_; }
  [[nodiscard]] ClientStats& mutable_stats() noexcept { return stats_; }
  [[nodiscard]] RemotePtrCache& pointer_cache() noexcept { return *cache_; }

 private:
  struct PendingOp {
    proto::Request req;
    GetCallback get_cb;
    OpCallback op_cb;
    Time issued = 0;
    int retries = 0;
  };

  struct Conn {
    ShardConnection wire;
    std::uint32_t resp_slot_idx = 0;
    bool busy = false;
    PendingOp current;
    std::deque<PendingOp> queue;
    sim::EventId timeout{};
    std::vector<std::vector<std::byte>> recv_bufs;  // send/recv mode
  };

  [[nodiscard]] std::span<std::byte> resp_slot(std::uint32_t idx) noexcept {
    return {resp_region_.data() + static_cast<std::size_t>(idx) * cfg_.resp_slot_bytes,
            cfg_.resp_slot_bytes};
  }

  Conn* connection_to(ShardId shard);
  void drop_connection(ShardId shard);
  void submit(PendingOp op);
  void issue(ShardId shard, Conn& conn);
  void on_response_write(std::uint64_t offset);
  void handle_response(ShardId shard, Conn& conn, const proto::Response& resp);
  void on_timeout(ShardId shard);
  void complete(PendingOp& op, Status status, std::string_view value);
  void try_rdma_read(std::uint64_t key_hash, const proto::RemotePtr& ptr, PendingOp op);
  void maybe_auto_renew(const std::string& key, const proto::RemotePtr& ptr);

  fabric::Fabric& fabric_;
  NodeId node_;
  ClientConfig cfg_;
  std::shared_ptr<RemotePtrCache> cache_;
  Resolver resolver_;
  Connector connector_;

  std::vector<std::byte> resp_region_;
  fabric::MemoryRegion* resp_mr_;
  std::vector<std::uint32_t> free_slots_;
  std::map<ShardId, std::unique_ptr<Conn>> conns_;
  std::map<std::uint32_t, ShardId> slot_to_shard_;
  std::uint64_t next_req_id_ = 1;
  ClientStats stats_;
};

}  // namespace hydra::client
