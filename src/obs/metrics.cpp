#include "obs/metrics.hpp"

#include <cstdarg>
#include <cstdio>

namespace hydra::obs {
namespace {

#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

void pad(std::string& out, int indent) { out.append(static_cast<std::size_t>(indent), ' '); }

}  // namespace

LatencySummary summarize(const LatencyHistogram& h) noexcept {
  LatencySummary s;
  s.count = h.count();
  s.mean_ns = h.mean();
  s.min_ns = h.min();
  s.max_ns = h.max();
  s.p50_ns = h.percentile(50);
  s.p90_ns = h.percentile(90);
  s.p99_ns = h.percentile(99);
  s.p999_ns = h.percentile(99.9);
  return s;
}

void Registry::write_json(std::string& out, int indent) const {
  pad(out, indent);
  out += "\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    appendf(out, "%s\n", first ? "" : ",");
    pad(out, indent + 2);
    appendf(out, "\"%s\": %llu", name.c_str(),
            static_cast<unsigned long long>(c.value()));
    first = false;
  }
  if (!first) {
    out += "\n";
    pad(out, indent);
  }
  out += "},\n";

  pad(out, indent);
  out += "\"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    appendf(out, "%s\n", first ? "" : ",");
    pad(out, indent + 2);
    appendf(out, "\"%s\": %lld", name.c_str(), static_cast<long long>(g.value()));
    first = false;
  }
  if (!first) {
    out += "\n";
    pad(out, indent);
  }
  out += "},\n";

  pad(out, indent);
  out += "\"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const LatencySummary s = summarize(h);
    appendf(out, "%s\n", first ? "" : ",");
    pad(out, indent + 2);
    appendf(out,
            "\"%s\": {\"count\": %llu, \"mean_ns\": %.3f, \"min_ns\": %llu, "
            "\"max_ns\": %llu, \"p50_ns\": %llu, \"p90_ns\": %llu, "
            "\"p99_ns\": %llu, \"p999_ns\": %llu}",
            name.c_str(), static_cast<unsigned long long>(s.count), s.mean_ns,
            static_cast<unsigned long long>(s.min_ns),
            static_cast<unsigned long long>(s.max_ns),
            static_cast<unsigned long long>(s.p50_ns),
            static_cast<unsigned long long>(s.p90_ns),
            static_cast<unsigned long long>(s.p99_ns),
            static_cast<unsigned long long>(s.p999_ns));
    first = false;
  }
  if (!first) {
    out += "\n";
    pad(out, indent);
  }
  out += "}";
}

}  // namespace hydra::obs
