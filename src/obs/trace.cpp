#include "obs/trace.hpp"

#include <algorithm>

namespace hydra::obs {

const char* to_string(TraceKind kind) noexcept {
  switch (kind) {
    case TraceKind::kWritePosted: return "write_posted";
    case TraceKind::kWriteCommitted: return "write_committed";
    case TraceKind::kWriteFaulted: return "write_faulted";
    case TraceKind::kWriteDeadPeer: return "write_dead_peer";
    case TraceKind::kReadPosted: return "read_posted";
    case TraceKind::kReadCompleted: return "read_completed";
    case TraceKind::kSendPosted: return "send_posted";
    case TraceKind::kSendDelivered: return "send_delivered";
    case TraceKind::kDoorbellBatched: return "doorbell_batched";
    case TraceKind::kQpReused: return "qp_reused";
    case TraceKind::kQpReclaimed: return "qp_reclaimed";
    case TraceKind::kRetransmit: return "retransmit";
    case TraceKind::kQuarantine: return "quarantine";
    case TraceKind::kTornAck: return "torn_ack";
    case TraceKind::kAckProbe: return "ack_probe";
    case TraceKind::kRollback: return "rollback";
    case TraceKind::kAckReceived: return "ack_received";
    case TraceKind::kRingDrained: return "ring_drained";
    case TraceKind::kRingSweep: return "ring_sweep";
    case TraceKind::kClientTimeout: return "client_timeout";
    case TraceKind::kSrqDepth: return "srq_depth";
    case TraceKind::kMuxChannelOpened: return "mux_channel_opened";
    case TraceKind::kMuxChannelReclaimed: return "mux_channel_reclaimed";
    case TraceKind::kCrashInjected: return "crash_injected";
    case TraceKind::kHeartbeatSuppressed: return "heartbeat_suppressed";
    case TraceKind::kFenced: return "fenced";
    case TraceKind::kPrimaryDeathObserved: return "primary_death_observed";
    case TraceKind::kPromotionStart: return "promotion_start";
    case TraceKind::kEpochPublished: return "epoch_published";
    case TraceKind::kSecondaryRespawned: return "secondary_respawned";
    case TraceKind::kPromotionDone: return "promotion_done";
    case TraceKind::kMigrationStart: return "migration_start";
    case TraceKind::kMigrationCopied: return "migration_copied";
    case TraceKind::kMigrationSealed: return "migration_sealed";
    case TraceKind::kMigrationDone: return "migration_done";
    case TraceKind::kMigrationAborted: return "migration_aborted";
    case TraceKind::kMigrationRestarted: return "migration_restarted";
    case TraceKind::kFaultInjected: return "fault_injected";
    case TraceKind::kAtomicPosted: return "atomic_posted";
    case TraceKind::kAtomicCommitted: return "atomic_committed";
    case TraceKind::kAtomicFaulted: return "atomic_faulted";
    case TraceKind::kTxnCommitApplied: return "txn_commit_applied";
    case TraceKind::kTxnCommitRejected: return "txn_commit_rejected";
    case TraceKind::kHotKeyPromoted: return "hotkey_promoted";
    case TraceKind::kHotKeyDemoted: return "hotkey_demoted";
    case TraceKind::kHotKeyInvalidated: return "hotkey_invalidated";
    case TraceKind::kReplicaReadHit: return "replica_read_hit";
    case TraceKind::kReadFaulted: return "read_faulted";
    case TraceKind::kScanHandled: return "scan_handled";
    case TraceKind::kScanTokenRejected: return "scan_token_rejected";
    case TraceKind::kScanLeafRead: return "scan_leaf_read";
    case TraceKind::kScanLeafFallback: return "scan_leaf_fallback";
    case TraceKind::kSuspicionRaised: return "suspicion_raised";
    case TraceKind::kRkeyRevoked: return "rkey_revoked";
    case TraceKind::kRkeyReregistered: return "rkey_reregistered";
    case TraceKind::kBallotCast: return "ballot_cast";
    case TraceKind::kBallotWon: return "ballot_won";
    case TraceKind::kBallotLost: return "ballot_lost";
  }
  return "unknown";
}

TraceQuery::TraceQuery(std::vector<TraceRecord> records) : records_(std::move(records)) {
  std::sort(records_.begin(), records_.end(),
            [](const TraceRecord& a, const TraceRecord& b) { return a.seq < b.seq; });
}

std::vector<TraceRecord> TraceQuery::of(TraceKind kind, std::uint64_t shard) const {
  std::vector<TraceRecord> out;
  for (const auto& r : records_)
    if (matches(r, kind, shard)) out.push_back(r);
  return out;
}

std::size_t TraceQuery::count(TraceKind kind, std::uint64_t shard) const {
  std::size_t n = 0;
  for (const auto& r : records_)
    if (matches(r, kind, shard)) ++n;
  return n;
}

std::optional<TraceRecord> TraceQuery::first(TraceKind kind, std::uint64_t shard) const {
  for (const auto& r : records_)
    if (matches(r, kind, shard)) return r;
  return std::nullopt;
}

std::optional<TraceRecord> TraceQuery::last(TraceKind kind, std::uint64_t shard) const {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it)
    if (matches(*it, kind, shard)) return *it;
  return std::nullopt;
}

std::optional<TraceRecord> TraceQuery::first_after(TraceKind kind, std::uint64_t after_seq,
                                                   std::uint64_t shard) const {
  for (const auto& r : records_)
    if (r.seq > after_seq && matches(r, kind, shard)) return r;
  return std::nullopt;
}

bool TraceQuery::happened_before(TraceKind a, TraceKind b, std::uint64_t shard) const {
  const auto ra = first(a, shard);
  const auto rb = first(b, shard);
  return ra && rb && ra->seq < rb->seq;
}

}  // namespace hydra::obs
