// Observability plane: one Registry plus per-node trace rings plus a
// cluster-level ring for lifecycle events that have no single node
// (promotions, chaos faults). A null Plane* everywhere means observability
// is off; all instrumentation sites are `if (obs) obs->...` so the disabled
// cost is one pointer test.
//
// Determinism contract (DESIGN.md §8): the plane never schedules events,
// never reads a clock (callers pass scheduler time explicitly), and never
// feeds back into simulation state. Attaching or detaching a plane must
// leave the virtual-time history byte-identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hydra::obs {

class Plane {
 public:
  /// `ring_capacity` bounds each per-node ring; the cluster ring only sees
  /// lifecycle events so it shares the same bound comfortably.
  explicit Plane(std::size_t ring_capacity = 8192)
      : ring_capacity_(ring_capacity), cluster_ring_(ring_capacity) {}

  Registry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const Registry& metrics() const noexcept { return metrics_; }

  /// Records an event at virtual time `at` (caller-supplied scheduler time)
  /// into `node`'s ring, or the cluster ring for kInvalidNode. Assigns the
  /// global sequence number that TraceQuery orders on.
  void trace(Time at, NodeId node, TraceKind kind, std::uint64_t shard = kNoShard,
             std::uint64_t a = 0, std::uint64_t b = 0);

  [[nodiscard]] const TraceRing* node_ring(NodeId node) const noexcept {
    return node < node_rings_.size() ? &node_rings_[node] : nullptr;
  }
  [[nodiscard]] const TraceRing& cluster_ring() const noexcept { return cluster_ring_; }
  [[nodiscard]] std::uint64_t trace_count() const noexcept { return next_seq_; }

  /// All retained records across every ring, in global seq order.
  [[nodiscard]] TraceQuery query() const;

  /// Exporters mirror an actor's live stats struct into the registry at
  /// snapshot time; `owner` keys removal so dying actors can freeze their
  /// final values (via collect) and unregister before their storage dies.
  void add_exporter(const void* owner, std::function<void()> fn) {
    exporters_.emplace_back(owner, std::move(fn));
  }
  void remove_exporters(const void* owner);

  /// Runs every exporter, refreshing registry values from live actors.
  void collect();

  /// Full snapshot at virtual time `now`: runs exporters, then emits the
  /// hydradb-obs-v1 JSON document (schema in DESIGN.md §8). Deterministic:
  /// byte-identical for identical runs of the same seed.
  [[nodiscard]] std::string json(Time now);

  /// Writes json(now) to `path`; returns false on I/O failure.
  bool dump(const std::string& path, Time now);

 private:
  std::size_t ring_capacity_;
  Registry metrics_;
  std::vector<TraceRing> node_rings_;
  TraceRing cluster_ring_;
  std::uint64_t next_seq_ = 0;
  std::vector<std::pair<const void*, std::function<void()>>> exporters_;
};

}  // namespace hydra::obs
