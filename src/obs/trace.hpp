// Trace plane: bounded per-node event rings recording fabric-level ops and
// failover lifecycle steps on the virtual clock, plus the TraceQuery helper
// tests use to pin *orderings* ("fence happened-before ring drain
// happened-before epoch publish") instead of just end states.
//
// Records carry an explicit timestamp supplied by the caller (always
// scheduler time) -- the trace layer itself never reads a clock and never
// schedules events, so attaching it cannot perturb a run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace hydra::obs {

/// Event taxonomy (DESIGN.md §8). Fabric events fire per posted verb op;
/// replication events mark the crash-path machinery; lifecycle events mark
/// the failover phases the chaos harness and timeline tests assert on.
enum class TraceKind : std::uint8_t {
  // Fabric data plane.
  kWritePosted,      ///< RDMA Write posted (a=size, b=dst rkey)
  kWriteCommitted,   ///< RDMA Write bytes landed at the target (a=size, b=rkey)
  kWriteFaulted,     ///< chaos-injected torn/dropped write (a=committed, b=rkey)
  kWriteDeadPeer,    ///< write toward a crashed node (a=size)
  kReadPosted,       ///< RDMA Read posted (a=size, b=src rkey)
  kReadCompleted,    ///< RDMA Read completion at the initiator (a=size)
  kSendPosted,       ///< two-sided Send posted (a=size)
  kSendDelivered,    ///< Send consumed a posted Receive (a=bytes delivered)
  kDoorbellBatched,  ///< write shared its sweep's doorbell (a=size)
  kQpReused,         ///< connect() recycled a reclaimed QP slot (a=qp id, b=pool size)
  kQpReclaimed,      ///< disconnect() released a QP pair (a=qp id, b=live pairs)
  // Replication crash path.
  kRetransmit,       ///< in-place rewrite of a torn/dropped ring frame (a=offset, b=attempt)
  kQuarantine,       ///< link to a dead replica entered terminal quarantine
  kTornAck,          ///< ack slot held a torn/undecodable frame
  kAckProbe,         ///< ack-probe control frame written (re-solicits the ack)
  kRollback,         ///< rollback-resend from first failed seq (a=seq)
  kAckReceived,      ///< cumulative ack decoded (a=acked seq)
  kRingDrained,      ///< promotion replayed parked ring frames (a=applied seq)
  // Server / client.
  kRingSweep,        ///< shard sweep decoded occupied slots (a=count, b=conn)
  kClientTimeout,    ///< client request timeout salvage (shard=target)
  // Connection multiplexing (SRQ-style shared rings, DESIGN.md §10).
  kSrqDepth,             ///< occupied slots found in a shared-ring sweep (a=depth, b=group)
  kMuxChannelOpened,     ///< client-node<->shard mux channel established (a=group)
  kMuxChannelReclaimed,  ///< mux channel torn down (a=group, b=0 idle / 1 failure)
  // Failover lifecycle.
  kCrashInjected,        ///< a=0 primary, 1 secondary, 2 SWAT member; b=index
  kHeartbeatSuppressed,  ///< a=suppression duration (ns)
  kFenced,               ///< a=1 heartbeat self-fence, 2 promotion-time fence, 3 replica revoked our rkey
  kPrimaryDeathObserved, ///< SWAT recorded a primary-death znode deletion
  kPromotionStart,       ///< SWAT began promoting a replica
  kEpochPublished,       ///< routing epoch bumped + written to /routing/version (a=epoch)
  kSecondaryRespawned,   ///< replacement replica spawned + bootstrap-copied
  kPromotionDone,        ///< promotion finished; shard serving again
  // Live migration (DESIGN.md §9); `shard` is the migration subject (the
  // shard being added or drained) unless noted.
  kMigrationStart,     ///< protocol began (a=0 add / 1 drain, b=flow count)
  kMigrationCopied,    ///< one flow's snapshot fully posted (shard=src, a=keys, b=dst)
  kMigrationSealed,    ///< dual-ownership window closed; sources reject moved keys
  kMigrationDone,      ///< ring + epoch committed (a=keys moved, b=bytes moved)
  kMigrationAborted,   ///< protocol gave up (a=abort reason code)
  kMigrationRestarted, ///< a flow rebuilt after a mid-migration crash (shard=src)
  // Chaos.
  kFaultInjected,    ///< chaos fault applied (a=chaos::FaultKind, b=index)
  // One-sided atomics + transactions (DESIGN.md §11). Appended after the
  // original taxonomy so every pre-existing kind keeps its numeric value.
  kAtomicPosted,     ///< CAS/FAA posted (a=0 CAS / 1 FAA, b=dst rkey)
  kAtomicCommitted,  ///< atomic executed at the target (a=0 CAS / 1 FAA, b=rkey)
  kAtomicFaulted,    ///< chaos-faulted atomic (a=1 executed-but-flushed / 0 dropped, b=rkey)
  kTxnCommitApplied, ///< multi-key commit applied atomically (a=txn id, b=op count)
  kTxnCommitRejected,///< commit refused, nothing applied (a=txn id, b=Status)
  // Hot-key replication plane (DESIGN.md §12). Appended last, same rule.
  kHotKeyPromoted,    ///< key copied to followers + advertised (a=key hash, b=replica count)
  kHotKeyDemoted,     ///< promotion withdrawn (a=key hash, b=0 write / 1 epoch / 2 capacity)
  kHotKeyInvalidated, ///< follower copy guardian killed pre-ack (a=key hash, b=node)
  kReplicaReadHit,    ///< client one-sided read served from a promoted copy (a=key hash, b=node)
  // Ordered index + range scans (DESIGN.md §13). Appended last, same rule.
  kReadFaulted,       ///< chaos-torn RDMA Read snapshot (a=intact prefix bytes, b=rkey)
  kScanHandled,       ///< shard served a kScan batch (a=entries, b=done flag)
  kScanTokenRejected, ///< continuation-token epoch mismatch (a=token epoch, b=live epoch)
  kScanLeafRead,      ///< client consumed a mirrored leaf page one-sidedly (a=leaf id, b=entries)
  kScanLeafFallback,  ///< leaf-page validation failed; message path took over (a=leaf id)
  // Fast failover: RDMA permission-revocation fencing + one-sided CAS ballot
  // agreement (DESIGN.md §14). Appended last, same rule.
  kSuspicionRaised,   ///< replica missed the primary's ring-write deadline (a=silent ns)
  kRkeyRevoked,       ///< MR write permission revoked (a=rkey, b=0 ok / 1 torn / 2 dropped)
  kRkeyReregistered,  ///< region re-registered under a fresh rkey (a=new rkey, b=old rkey)
  kBallotCast,        ///< promotion ballot CAS posted (a=candidate token, b=arena rkey)
  kBallotWon,         ///< ballot CAS saw zero: the candidate owns the round (a=token)
  kBallotLost,        ///< ballot CAS lost the race (a=token, b=winning token)
};

[[nodiscard]] const char* to_string(TraceKind kind) noexcept;

inline constexpr std::uint64_t kNoShard = ~std::uint64_t{0};

struct TraceRecord {
  Time at = 0;           ///< virtual time, supplied by the caller
  std::uint64_t seq = 0; ///< global record order within the run (Plane-assigned)
  TraceKind kind = TraceKind::kWritePosted;
  NodeId node = kInvalidNode;      ///< ring the record lives in
  std::uint64_t shard = kNoShard;  ///< owning shard, when meaningful
  std::uint64_t a = 0;             ///< per-kind argument (see TraceKind docs)
  std::uint64_t b = 0;             ///< per-kind argument
};

/// Fixed-capacity ring: pushes past capacity overwrite the oldest record
/// (dropped count retained), so tracing is O(1) and allocation-free after
/// construction.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity) : buf_(capacity ? capacity : 1) {}

  void push(const TraceRecord& r) noexcept {
    if (size_ == buf_.size()) {
      buf_[head_] = r;
      head_ = (head_ + 1) % buf_.size();
      ++dropped_;
      return;
    }
    buf_[(head_ + size_) % buf_.size()] = r;
    ++size_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// Retained records, oldest first.
  [[nodiscard]] std::vector<TraceRecord> records() const {
    std::vector<TraceRecord> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) out.push_back(buf_[(head_ + i) % buf_.size()]);
    return out;
  }

 private:
  std::vector<TraceRecord> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Read-side helper over a set of trace records (normally a Plane's merged
/// rings): ordered selection plus happened-before assertions keyed on the
/// global sequence number.
class TraceQuery {
 public:
  /// `records` in any order; the query sorts by global seq.
  explicit TraceQuery(std::vector<TraceRecord> records);

  [[nodiscard]] const std::vector<TraceRecord>& all() const noexcept { return records_; }

  [[nodiscard]] std::vector<TraceRecord> of(TraceKind kind,
                                            std::uint64_t shard = kNoShard) const;
  [[nodiscard]] std::size_t count(TraceKind kind, std::uint64_t shard = kNoShard) const;
  [[nodiscard]] std::optional<TraceRecord> first(TraceKind kind,
                                                 std::uint64_t shard = kNoShard) const;
  [[nodiscard]] std::optional<TraceRecord> last(TraceKind kind,
                                                std::uint64_t shard = kNoShard) const;
  /// First `kind` record strictly after global seq `after_seq`.
  [[nodiscard]] std::optional<TraceRecord> first_after(TraceKind kind, std::uint64_t after_seq,
                                                       std::uint64_t shard = kNoShard) const;

  /// True when both kinds occurred and the first `a` precedes the first `b`
  /// in global record order (virtual-time ties broken by scheduling order,
  /// which the global seq preserves).
  [[nodiscard]] bool happened_before(TraceKind a, TraceKind b,
                                     std::uint64_t shard = kNoShard) const;

 private:
  [[nodiscard]] bool matches(const TraceRecord& r, TraceKind kind,
                             std::uint64_t shard) const noexcept {
    return r.kind == kind && (shard == kNoShard || r.shard == shard);
  }
  std::vector<TraceRecord> records_;
};

}  // namespace hydra::obs
