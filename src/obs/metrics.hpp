// Metrics registry: typed counters, gauges and virtual-time latency
// histograms under hierarchical dotted names ("shard.0.gets",
// "client.3.get_latency").
//
// The registry is a passive data sink: recording never touches the
// scheduler, never reads a clock, and never branches on simulation state,
// so a run with metrics attached executes the exact same virtual-time
// history as a run without (the determinism contract of DESIGN.md §8).
// Snapshots are deterministic too -- maps iterate in name order and doubles
// are formatted with fixed precision -- so two runs of the same seed
// produce byte-identical JSON.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/histogram.hpp"
#include "common/types.hpp"

namespace hydra::obs {

/// Monotonic event count. `set` exists for exporter-style metrics that
/// mirror an existing stats struct at snapshot time.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { v_ += n; }
  void set(std::uint64_t v) noexcept { v_ = v; }
  [[nodiscard]] std::uint64_t value() const noexcept { return v_; }

 private:
  std::uint64_t v_ = 0;
};

/// Point-in-time signed value (queue depth, replication factor, epoch).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_ = v; }
  void add(std::int64_t d) noexcept { v_ += d; }
  [[nodiscard]] std::int64_t value() const noexcept { return v_; }

 private:
  std::int64_t v_ = 0;
};

/// Deterministic percentile summary of a LatencyHistogram -- the one
/// interpolation every bench and test shares (log-bucket upper bound
/// clamped to the observed max, exactly LatencyHistogram::percentile).
struct LatencySummary {
  std::uint64_t count = 0;
  double mean_ns = 0.0;
  Duration min_ns = 0;
  Duration max_ns = 0;
  Duration p50_ns = 0;
  Duration p90_ns = 0;
  Duration p99_ns = 0;
  Duration p999_ns = 0;
};

[[nodiscard]] LatencySummary summarize(const LatencyHistogram& h) noexcept;

/// Name-keyed metric store. References returned by counter()/gauge()/
/// histogram() stay valid for the registry's lifetime (std::map nodes are
/// stable), so actors may resolve their handles once at wiring time and
/// record through them with zero lookup cost afterwards.
class Registry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  LatencyHistogram& histogram(const std::string& name) { return histograms_[name]; }

  [[nodiscard]] const std::map<std::string, Counter>& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, LatencyHistogram>& histograms() const noexcept {
    return histograms_;
  }

  /// Appends the registry as three JSON objects ("counters", "gauges",
  /// "histograms") to `out`; `indent` spaces prefix each line.
  void write_json(std::string& out, int indent) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, LatencyHistogram> histograms_;
};

}  // namespace hydra::obs
