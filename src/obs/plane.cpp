#include "obs/plane.hpp"

#include <algorithm>
#include <cstdio>

namespace hydra::obs {

void Plane::trace(Time at, NodeId node, TraceKind kind, std::uint64_t shard, std::uint64_t a,
                  std::uint64_t b) {
  TraceRecord r;
  r.at = at;
  r.seq = next_seq_++;
  r.kind = kind;
  r.node = node;
  r.shard = shard;
  r.a = a;
  r.b = b;
  if (node == kInvalidNode) {
    cluster_ring_.push(r);
    return;
  }
  if (node >= node_rings_.size()) {
    node_rings_.reserve(node + 1);
    while (node_rings_.size() <= node) node_rings_.emplace_back(ring_capacity_);
  }
  node_rings_[node].push(r);
}

TraceQuery Plane::query() const {
  std::vector<TraceRecord> all = cluster_ring_.records();
  for (const auto& ring : node_rings_) {
    auto recs = ring.records();
    all.insert(all.end(), recs.begin(), recs.end());
  }
  return TraceQuery(std::move(all));
}

void Plane::remove_exporters(const void* owner) {
  exporters_.erase(std::remove_if(exporters_.begin(), exporters_.end(),
                                  [owner](const auto& e) { return e.first == owner; }),
                   exporters_.end());
}

void Plane::collect() {
  for (auto& [owner, fn] : exporters_) fn();
}

std::string Plane::json(Time now) {
  collect();
  std::string out;
  out.reserve(16384);
  char buf[256];
  out += "{\n";
  out += "  \"schema\": \"hydradb-obs-v1\",\n";
  std::snprintf(buf, sizeof(buf), "  \"virtual_time_ns\": %llu,\n",
                static_cast<unsigned long long>(now));
  out += buf;
  metrics_.write_json(out, 2);
  out += ",\n  \"trace\": [";
  bool first = true;
  const TraceQuery q = query();
  for (const auto& r : q.all()) {
    out += first ? "\n" : ",\n";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "    {\"seq\": %llu, \"at_ns\": %llu, \"event\": \"%s\", \"node\": %lld",
                  static_cast<unsigned long long>(r.seq), static_cast<unsigned long long>(r.at),
                  to_string(r.kind),
                  r.node == kInvalidNode ? -1LL : static_cast<long long>(r.node));
    out += buf;
    if (r.shard != kNoShard) {
      std::snprintf(buf, sizeof(buf), ", \"shard\": %llu",
                    static_cast<unsigned long long>(r.shard));
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), ", \"a\": %llu, \"b\": %llu}",
                  static_cast<unsigned long long>(r.a), static_cast<unsigned long long>(r.b));
    out += buf;
  }
  if (!first) out += "\n  ";
  out += "]\n}\n";
  return out;
}

bool Plane::dump(const std::string& path, Time now) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string doc = json(now);
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace hydra::obs
