// Indicator-encapsulated message framing (paper section 4.2.1, Figure 7).
//
// Messages travel by one-sided RDMA Write into a buffer that the receiver
// polls. Because RC adapters commit writes of one QP in increasing memory
// order, a frame can announce itself without any completion event:
//
//   word 0 : [16-bit magic | 16-bit flags | 32-bit payload size]   (head)
//   ...    : payload, padded to 8 bytes
//   last   : tail indicator word                                   (tail)
//
// The receiver polls word 0; a set head guarantees the size field is
// consistent, so it skips payload-size bytes and polls the tail word. Only
// when the tail is also set is the whole frame known to have landed. After
// processing, the receiver zeroes the frame region so the buffer can signal
// the next arrival.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

namespace hydra::proto {

inline constexpr std::uint16_t kHeadMagic = 0x4DB1;
inline constexpr std::uint64_t kTailIndicator = 0x7A11F1A6'7A11F1A6ULL;

/// Flags carried in the head word; the replication stream uses kAckRequest
/// to ask the secondary for a cumulative acknowledgement (section 5.2).
enum FrameFlags : std::uint16_t {
  kFlagNone = 0,
  kFlagAckRequest = 1 << 0,
};

constexpr std::size_t align8_sz(std::size_t n) noexcept { return (n + 7) & ~std::size_t{7}; }

/// Bytes a frame with `payload_size` bytes of payload occupies on the wire.
constexpr std::size_t frame_size(std::size_t payload_size) noexcept {
  return 8 + align8_sz(payload_size) + 8;
}

/// Largest payload that fits a buffer of `buffer_size` bytes.
constexpr std::size_t max_payload(std::size_t buffer_size) noexcept {
  return buffer_size < 16 ? 0 : buffer_size - 16;
}

/// Writes a complete frame into `dst` (dst.size() >= frame_size(payload)).
/// Returns the framed size actually written.
std::size_t encode_frame(std::span<std::byte> dst, std::span<const std::byte> payload,
                         std::uint16_t flags = kFlagNone);

/// Polls `buf` for a complete frame. Returns the payload size when both
/// indicators are set and consistent; nullopt while the frame is absent or
/// still streaming in.
std::optional<std::uint32_t> poll_frame(std::span<const std::byte> buf);

/// What a receiver found when probing a slot. `kMalformed` distinguishes
/// torn/garbage buffers (bad magic, size field exceeding the slot, corrupt
/// tail) from frames that are merely absent or still streaming in -- a
/// malformed slot must be scrubbed or it wedges the ring forever.
enum class FrameState : std::uint8_t {
  kEmpty,      ///< head word is zero: nothing written yet
  kPartial,    ///< head landed, tail not yet (frame still streaming in)
  kReady,      ///< complete frame, payload consistent
  kMalformed,  ///< garbage head/size/tail: scrub the slot
};

/// Probing variant of poll_frame used by ring sweeps: classifies the slot
/// instead of collapsing "not ready" and "garbage" into one answer.
FrameState probe_frame(std::span<const std::byte> buf);

// --- slot-ring sequencing helpers ------------------------------------------
// Both sides of a connection carve their message buffers into `window`
// consecutive slots of `slot_bytes` each; request i goes into slot
// (i mod window) and its response comes back in the same slot index of the
// peer ring, so slot occupancy is released exactly by the matching response.

/// Byte offset of ring slot `slot` within a ring of `slot_bytes` slots.
constexpr std::uint64_t ring_slot_offset(std::uint32_t slot, std::uint32_t slot_bytes) noexcept {
  return static_cast<std::uint64_t>(slot) * slot_bytes;
}

/// Slot index a byte offset into a ring falls into.
constexpr std::uint32_t ring_slot_of(std::uint64_t offset, std::uint32_t slot_bytes) noexcept {
  return static_cast<std::uint32_t>(offset / slot_bytes);
}

/// Flags of a frame whose head indicator is set.
std::uint16_t frame_flags(std::span<const std::byte> buf);

/// Payload view of a complete frame.
std::span<const std::byte> frame_payload(std::span<const std::byte> buf);

/// Zeroes the frame region (head word through tail word) so the buffer is
/// ready to detect the next message. The wiped extent is clamped to the
/// buffer, so clearing a slot whose size field lies never scribbles past it.
void clear_frame(std::span<std::byte> buf);

}  // namespace hydra::proto
