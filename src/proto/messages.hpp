// Request/response/replication message encodings.
//
// All messages travel as frame payloads (see frame.hpp). Encoding is a
// simple explicit little-endian binary layout -- no varints, no reflection
// -- so the codec cost on the shard's critical path stays negligible and
// deterministic.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace hydra::proto {

enum class MsgType : std::uint8_t {
  kGet = 1,
  kInsert,
  kUpdate,
  kPut,       ///< upsert
  kRemove,
  kRenewLease,
  kResponse,
  kRepRecord,  ///< replication log record (primary -> secondary)
  kRepAck,     ///< cumulative acknowledgement (secondary -> primary)
  kTxnCommit,  ///< multi-key transactional commit group (DESIGN.md §11)
  kScan,       ///< ordered range-scan batch against one shard (DESIGN.md §13)
};

/// A remote pointer: everything a client needs to RDMA-Read an item
/// directly from server memory and to know until when that is permitted
/// (paper sections 4.2.2/4.2.3).
struct RemotePtr {
  std::uint32_t rkey = 0;
  std::uint64_t offset = 0;
  std::uint32_t total_len = 0;
  std::uint64_t lease_expiry = 0;
  std::uint64_t version = 0;
  ShardId shard = kInvalidShard;
  /// Routing epoch the pointer was cached under. Client-side only (never on
  /// the wire): stamped at cache-insert time and compared against the
  /// current epoch before every one-sided read, so a promotion or migration
  /// invalidates every pointer leased under the old ownership map.
  std::uint64_t epoch = 0;

  [[nodiscard]] bool valid() const noexcept { return total_len != 0; }
};

struct Request {
  MsgType type = MsgType::kGet;
  std::uint64_t req_id = 0;
  ClientId client = 0;
  std::string key;
  std::string value;
};

/// A readable replica of a hot key's item, promoted to a replication
/// follower's promo slab (DESIGN.md §12). Carries everything the client
/// needs to RDMA-Read the copy from the follower's memory; version/lease
/// are shared with the primary pointer it rides along with.
struct ReplicaPtr {
  NodeId node = kInvalidNode;  ///< follower node hosting the copy
  std::uint32_t rkey = 0;      ///< promo-slab memory region
  std::uint64_t offset = 0;    ///< slot offset within the slab MR
  std::uint32_t total_len = 0;

  [[nodiscard]] bool valid() const noexcept { return total_len != 0; }
};

/// Upper bound on advertised replicas per key (and per response). Keeps the
/// client's cached fan-out entry trivially copyable and fixed-size.
inline constexpr std::size_t kMaxReplicaPtrs = 4;

struct Response {
  std::uint64_t req_id = 0;
  Status status = Status::kOk;
  std::uint64_t version = 0;
  RemotePtr remote_ptr;  ///< granted on successful GETs
  std::string value;
  /// Promotion advertisement: replicas the client may spread one-sided
  /// reads across. Encoded as a trailing optional block -- responses with
  /// no promoted replicas are byte-identical to the pre-promotion wire
  /// format.
  std::vector<ReplicaPtr> replicas;
};

/// One record in the replication log stream (section 5.2). `op` is kPut or
/// kRemove; the sequence number is assigned by the primary and echoed back
/// in acknowledgements.
struct RepRecord {
  std::uint64_t seq = 0;
  MsgType op = MsgType::kPut;
  Time op_time = 0;  ///< primary's virtual time, so leases replay identically
  std::string key;
  std::string value;
};

/// Cumulative ack: "I have applied everything through `acked_seq`". When
/// the secondary hit a malformed/failed record it reports that record in
/// `first_failed_seq` (0 = none) so the primary can roll back and resend.
struct RepAck {
  std::uint64_t acked_seq = 0;
  std::uint64_t first_failed_seq = 0;
};

/// Envelope prepended to a request payload when many logical client
/// endpoints multiplex over one shared request ring (DESIGN.md §10). The
/// shard demultiplexes by `endpoint` and writes the response into slot
/// `resp_slot` of that endpoint's private response ring. Legacy (one ring
/// per connection) frames never carry the envelope, so their wire bytes are
/// unchanged.
struct MuxHeader {
  std::uint32_t endpoint = 0;
  std::uint32_t resp_slot = 0;
};

inline constexpr std::size_t kMuxHeaderBytes = 2 * sizeof(std::uint32_t);

std::vector<std::byte> encode_request(const Request& req);
std::optional<Request> decode_request(std::span<const std::byte> payload);

/// Mux-framed request: MuxHeader followed by the standard request encoding.
std::vector<std::byte> encode_mux_request(const MuxHeader& hdr, const Request& req);
/// Splits the envelope off a mux-framed payload; nullopt when too short.
/// The request itself is recovered with decode_request(mux_request_body()).
std::optional<MuxHeader> decode_mux_header(std::span<const std::byte> payload);
[[nodiscard]] inline std::span<const std::byte> mux_request_body(
    std::span<const std::byte> payload) noexcept {
  return payload.size() >= kMuxHeaderBytes ? payload.subspan(kMuxHeaderBytes)
                                           : std::span<const std::byte>{};
}

std::vector<std::byte> encode_response(const Response& resp);
std::optional<Response> decode_response(std::span<const std::byte> payload);

std::vector<std::byte> encode_rep_record(const RepRecord& rec);
std::optional<RepRecord> decode_rep_record(std::span<const std::byte> payload);

std::vector<std::byte> encode_rep_ack(const RepAck& ack);
std::optional<RepAck> decode_rep_ack(std::span<const std::byte> payload);

// --- transactions (DESIGN.md §11) ------------------------------------------

/// Lock-conflict policy carried in the commit header (and driving the
/// client's acquire loop): NO_WAIT aborts on any conflict, WAIT_DIE lets an
/// older transaction (smaller txn_id) wait for a younger holder and kills a
/// younger requester immediately.
enum class TxnMode : std::uint8_t { kNoWait = 0, kWaitDie = 1 };

/// Header of a kTxnCommit request's payload (travels in Request::value).
struct TxnHeader {
  std::uint64_t txn_id = 0;  ///< also the age stamp: smaller == older
  TxnMode mode = TxnMode::kNoWait;
  /// Routing epoch the client locked under; the shard rejects the commit
  /// (kTxnConflict, nothing applied) when its own epoch has moved on, so a
  /// commit can never land through a promotion or migration it predates.
  std::uint64_t epoch = 0;
  std::uint32_t op_count = 0;
};

/// One write of a commit group. `op` is kPut or kRemove.
struct TxnOp {
  MsgType op = MsgType::kPut;
  std::string key;
  std::string value;
};

/// A shard-local commit group: header + the ops this shard must apply
/// atomically (all-or-nothing within one handler invocation).
struct TxnCommit {
  TxnHeader hdr;
  std::vector<TxnOp> ops;
};

std::vector<std::byte> encode_txn_commit(const TxnCommit& txn);
std::optional<TxnCommit> decode_txn_commit(std::span<const std::byte> payload);

// --- ordered range scans (DESIGN.md §13) ------------------------------------

/// Resume-key semantics for a scan request: set on every continuation so the
/// last key the client already consumed is not returned again.
inline constexpr std::uint8_t kScanFlagExclusive = 1;

/// Body of a kScan request (travels in Request::value; the start/resume key
/// travels in Request::key). Together (epoch, key, flags) form the
/// continuation token: the shard rejects the request with kWrongOwner when
/// `epoch` is not its live routing epoch, so a token can never read through
/// a migration or promotion it predates.
struct ScanReq {
  std::uint64_t epoch = 0;
  std::uint32_t limit = 0;  ///< max entries the client still wants
  std::uint8_t flags = 0;   ///< kScanFlagExclusive
};

/// Advertisement of a mirrored leaf page the client may RDMA-Read to
/// continue the scan one-sidedly. (leaf_id, leaf_version) must match the
/// page header after the read -- a mismatch means the mirror slot was
/// reused or refreshed underneath the reader and the client falls back to
/// the message path.
struct ScanLeafHint {
  NodeId node = kInvalidNode;
  std::uint32_t rkey = 0;
  std::uint64_t offset = 0;
  std::uint32_t len = 0;
  std::uint64_t leaf_id = 0;
  std::uint64_t leaf_version = 0;

  [[nodiscard]] bool valid() const noexcept { return rkey != 0 && len != 0; }
};

/// Body of a kScan response (travels in Response::value).
struct ScanResp {
  std::uint64_t epoch = 0;
  bool done = false;  ///< no entries past this batch remain on this shard
  std::vector<std::pair<std::string, std::string>> entries;  ///< sorted (key, value)
  /// Optional trailing block: mirror page holding the continuation leaf.
  ScanLeafHint hint;
};

std::vector<std::byte> encode_scan_req(const ScanReq& req);
std::optional<ScanReq> decode_scan_req(std::span<const std::byte> payload);

std::vector<std::byte> encode_scan_resp(const ScanResp& resp);
std::optional<ScanResp> decode_scan_resp(std::span<const std::byte> payload);

constexpr const char* to_string(MsgType t) noexcept {
  switch (t) {
    case MsgType::kGet: return "GET";
    case MsgType::kInsert: return "INSERT";
    case MsgType::kUpdate: return "UPDATE";
    case MsgType::kPut: return "PUT";
    case MsgType::kRemove: return "REMOVE";
    case MsgType::kRenewLease: return "RENEW_LEASE";
    case MsgType::kResponse: return "RESPONSE";
    case MsgType::kRepRecord: return "REP_RECORD";
    case MsgType::kRepAck: return "REP_ACK";
    case MsgType::kTxnCommit: return "TXN_COMMIT";
    case MsgType::kScan: return "SCAN";
  }
  return "?";
}

}  // namespace hydra::proto
