#include "proto/messages.hpp"

#include <algorithm>
#include <cstring>

namespace hydra::proto {
namespace {

// Minimal append/consume codec helpers. All integers little-endian (we
// target x86_64; a production codec would byte-swap on big-endian hosts).

template <typename T>
void append(std::vector<std::byte>& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

void append_str(std::vector<std::byte>& out, const std::string& s) {
  append(out, static_cast<std::uint32_t>(s.size()));
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  out.insert(out.end(), p, p + s.size());
}

class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  template <typename T>
  bool read(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > data_.size()) return false;
    std::memcpy(v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool read_str(std::string* s) {
    std::uint32_t len = 0;
    if (!read(&len)) return false;
    if (pos_ + len > data_.size()) return false;
    s->assign(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return true;
  }

  [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::byte> encode_request(const Request& req) {
  std::vector<std::byte> out;
  out.reserve(32 + req.key.size() + req.value.size());
  append(out, req.type);
  append(out, req.req_id);
  append(out, req.client);
  append_str(out, req.key);
  append_str(out, req.value);
  return out;
}

std::optional<Request> decode_request(std::span<const std::byte> payload) {
  Request req;
  Reader r(payload);
  if (!r.read(&req.type) || !r.read(&req.req_id) || !r.read(&req.client) ||
      !r.read_str(&req.key) || !r.read_str(&req.value) || !r.exhausted()) {
    return std::nullopt;
  }
  return req;
}

std::vector<std::byte> encode_mux_request(const MuxHeader& hdr, const Request& req) {
  std::vector<std::byte> out;
  out.reserve(kMuxHeaderBytes + 32 + req.key.size() + req.value.size());
  append(out, hdr.endpoint);
  append(out, hdr.resp_slot);
  const auto body = encode_request(req);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::optional<MuxHeader> decode_mux_header(std::span<const std::byte> payload) {
  MuxHeader hdr;
  Reader r(payload);
  if (!r.read(&hdr.endpoint) || !r.read(&hdr.resp_slot)) return std::nullopt;
  return hdr;
}

std::vector<std::byte> encode_response(const Response& resp) {
  std::vector<std::byte> out;
  out.reserve(64 + resp.value.size());
  append(out, resp.req_id);
  append(out, resp.status);
  append(out, resp.version);
  append(out, resp.remote_ptr.rkey);
  append(out, resp.remote_ptr.offset);
  append(out, resp.remote_ptr.total_len);
  append(out, resp.remote_ptr.lease_expiry);
  append(out, resp.remote_ptr.version);
  append(out, resp.remote_ptr.shard);
  append_str(out, resp.value);
  // Promotion advertisement: emitted only when present, so a response with
  // no promoted replicas is byte-identical to the pre-promotion layout.
  if (!resp.replicas.empty()) {
    append(out, static_cast<std::uint8_t>(
                    std::min(resp.replicas.size(), kMaxReplicaPtrs)));
    std::size_t emitted = 0;
    for (const auto& rep : resp.replicas) {
      if (emitted++ == kMaxReplicaPtrs) break;
      append(out, rep.node);
      append(out, rep.rkey);
      append(out, rep.offset);
      append(out, rep.total_len);
    }
  }
  return out;
}

std::optional<Response> decode_response(std::span<const std::byte> payload) {
  Response resp;
  Reader r(payload);
  if (!r.read(&resp.req_id) || !r.read(&resp.status) || !r.read(&resp.version) ||
      !r.read(&resp.remote_ptr.rkey) || !r.read(&resp.remote_ptr.offset) ||
      !r.read(&resp.remote_ptr.total_len) || !r.read(&resp.remote_ptr.lease_expiry) ||
      !r.read(&resp.remote_ptr.version) || !r.read(&resp.remote_ptr.shard) ||
      !r.read_str(&resp.value)) {
    return std::nullopt;
  }
  if (!r.exhausted()) {
    // Trailing replica-advertisement block (absent on the legacy layout).
    std::uint8_t count = 0;
    if (!r.read(&count) || count == 0 || count > kMaxReplicaPtrs) return std::nullopt;
    resp.replicas.resize(count);
    for (auto& rep : resp.replicas) {
      if (!r.read(&rep.node) || !r.read(&rep.rkey) || !r.read(&rep.offset) ||
          !r.read(&rep.total_len)) {
        return std::nullopt;
      }
    }
  }
  if (!r.exhausted()) return std::nullopt;
  return resp;
}

std::vector<std::byte> encode_rep_record(const RepRecord& rec) {
  std::vector<std::byte> out;
  out.reserve(40 + rec.key.size() + rec.value.size());
  append(out, rec.seq);
  append(out, rec.op);
  append(out, rec.op_time);
  append_str(out, rec.key);
  append_str(out, rec.value);
  return out;
}

std::optional<RepRecord> decode_rep_record(std::span<const std::byte> payload) {
  RepRecord rec;
  Reader r(payload);
  if (!r.read(&rec.seq) || !r.read(&rec.op) || !r.read(&rec.op_time) ||
      !r.read_str(&rec.key) || !r.read_str(&rec.value) || !r.exhausted()) {
    return std::nullopt;
  }
  return rec;
}

std::vector<std::byte> encode_rep_ack(const RepAck& ack) {
  std::vector<std::byte> out;
  append(out, ack.acked_seq);
  append(out, ack.first_failed_seq);
  return out;
}

std::optional<RepAck> decode_rep_ack(std::span<const std::byte> payload) {
  RepAck ack;
  Reader r(payload);
  if (!r.read(&ack.acked_seq) || !r.read(&ack.first_failed_seq) || !r.exhausted()) {
    return std::nullopt;
  }
  return ack;
}

std::vector<std::byte> encode_txn_commit(const TxnCommit& txn) {
  std::vector<std::byte> out;
  std::size_t body = 0;
  for (const auto& op : txn.ops) body += 16 + op.key.size() + op.value.size();
  out.reserve(24 + body);
  append(out, txn.hdr.txn_id);
  append(out, txn.hdr.mode);
  append(out, txn.hdr.epoch);
  append(out, static_cast<std::uint32_t>(txn.ops.size()));
  for (const auto& op : txn.ops) {
    append(out, op.op);
    append_str(out, op.key);
    append_str(out, op.value);
  }
  return out;
}

std::optional<TxnCommit> decode_txn_commit(std::span<const std::byte> payload) {
  TxnCommit txn;
  Reader r(payload);
  if (!r.read(&txn.hdr.txn_id) || !r.read(&txn.hdr.mode) || !r.read(&txn.hdr.epoch) ||
      !r.read(&txn.hdr.op_count)) {
    return std::nullopt;
  }
  // Each op costs at least 9 payload bytes (type + two length words), so an
  // op_count a torn frame could not actually carry is rejected before any
  // allocation is sized from it.
  if (static_cast<std::size_t>(txn.hdr.op_count) * 9 > payload.size()) return std::nullopt;
  txn.ops.resize(txn.hdr.op_count);
  for (auto& op : txn.ops) {
    if (!r.read(&op.op) || !r.read_str(&op.key) || !r.read_str(&op.value)) {
      return std::nullopt;
    }
  }
  if (!r.exhausted()) return std::nullopt;
  return txn;
}

std::vector<std::byte> encode_scan_req(const ScanReq& req) {
  std::vector<std::byte> out;
  out.reserve(13);
  append(out, req.epoch);
  append(out, req.limit);
  append(out, req.flags);
  return out;
}

std::optional<ScanReq> decode_scan_req(std::span<const std::byte> payload) {
  ScanReq req;
  Reader r(payload);
  if (!r.read(&req.epoch) || !r.read(&req.limit) || !r.read(&req.flags) ||
      !r.exhausted()) {
    return std::nullopt;
  }
  if ((req.flags & ~kScanFlagExclusive) != 0) return std::nullopt;
  return req;
}

std::vector<std::byte> encode_scan_resp(const ScanResp& resp) {
  std::vector<std::byte> out;
  std::size_t body = 0;
  for (const auto& [k, v] : resp.entries) body += 8 + k.size() + v.size();
  out.reserve(16 + body);
  append(out, resp.epoch);
  append(out, static_cast<std::uint8_t>(resp.done ? 1 : 0));
  append(out, static_cast<std::uint32_t>(resp.entries.size()));
  for (const auto& [k, v] : resp.entries) {
    append_str(out, k);
    append_str(out, v);
  }
  // Continuation-leaf hint: emitted only when present, so batches without
  // one keep the shorter layout.
  if (resp.hint.valid()) {
    append(out, static_cast<std::uint8_t>(1));
    append(out, resp.hint.node);
    append(out, resp.hint.rkey);
    append(out, resp.hint.offset);
    append(out, resp.hint.len);
    append(out, resp.hint.leaf_id);
    append(out, resp.hint.leaf_version);
  }
  return out;
}

std::optional<ScanResp> decode_scan_resp(std::span<const std::byte> payload) {
  ScanResp resp;
  Reader r(payload);
  std::uint8_t done = 0;
  std::uint32_t count = 0;
  if (!r.read(&resp.epoch) || !r.read(&done) || !r.read(&count)) return std::nullopt;
  if (done > 1) return std::nullopt;
  resp.done = done != 0;
  // Each entry costs at least its two length words; reject counts the frame
  // could not carry before sizing any allocation from them.
  if (static_cast<std::size_t>(count) * 8 > payload.size()) return std::nullopt;
  resp.entries.resize(count);
  for (auto& [k, v] : resp.entries) {
    if (!r.read_str(&k) || !r.read_str(&v)) return std::nullopt;
  }
  if (!r.exhausted()) {
    std::uint8_t present = 0;
    if (!r.read(&present) || present != 1) return std::nullopt;
    if (!r.read(&resp.hint.node) || !r.read(&resp.hint.rkey) ||
        !r.read(&resp.hint.offset) || !r.read(&resp.hint.len) ||
        !r.read(&resp.hint.leaf_id) || !r.read(&resp.hint.leaf_version)) {
      return std::nullopt;
    }
    if (!resp.hint.valid()) return std::nullopt;
  }
  if (!r.exhausted()) return std::nullopt;
  return resp;
}

}  // namespace hydra::proto
