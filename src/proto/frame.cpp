#include "proto/frame.hpp"

#include <algorithm>
#include <cstring>

namespace hydra::proto {
namespace {

std::uint64_t make_head(std::uint16_t flags, std::uint32_t size) noexcept {
  return (static_cast<std::uint64_t>(kHeadMagic) << 48) |
         (static_cast<std::uint64_t>(flags) << 32) | size;
}

std::uint64_t load_word(const std::byte* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

std::size_t encode_frame(std::span<std::byte> dst, std::span<const std::byte> payload,
                         std::uint16_t flags) {
  const std::size_t framed = frame_size(payload.size());
  // Head word first in memory; the fabric guarantees in-order commit, so a
  // receiver that sees the tail knows the head and payload already landed.
  const std::uint64_t head = make_head(flags, static_cast<std::uint32_t>(payload.size()));
  std::memcpy(dst.data(), &head, 8);
  if (!payload.empty()) std::memcpy(dst.data() + 8, payload.data(), payload.size());
  const std::size_t pad = align8_sz(payload.size()) - payload.size();
  if (pad != 0) std::memset(dst.data() + 8 + payload.size(), 0, pad);
  std::memcpy(dst.data() + 8 + align8_sz(payload.size()), &kTailIndicator, 8);
  return framed;
}

std::optional<std::uint32_t> poll_frame(std::span<const std::byte> buf) {
  if (buf.size() < 16) return std::nullopt;
  const std::uint64_t head = load_word(buf.data());
  if ((head >> 48) != kHeadMagic) return std::nullopt;
  const auto size = static_cast<std::uint32_t>(head & 0xFFFFFFFFu);
  if (frame_size(size) > buf.size()) return std::nullopt;  // corrupt size field
  const std::uint64_t tail = load_word(buf.data() + 8 + align8_sz(size));
  if (tail != kTailIndicator) return std::nullopt;  // payload still streaming
  return size;
}

FrameState probe_frame(std::span<const std::byte> buf) {
  if (buf.size() < 16) return FrameState::kMalformed;  // slot can't hold a frame
  const std::uint64_t head = load_word(buf.data());
  if (head == 0) return FrameState::kEmpty;
  if ((head >> 48) != kHeadMagic) return FrameState::kMalformed;
  const auto size = static_cast<std::uint32_t>(head & 0xFFFFFFFFu);
  if (frame_size(size) > buf.size()) return FrameState::kMalformed;  // lying size field
  const std::uint64_t tail = load_word(buf.data() + 8 + align8_sz(size));
  if (tail == kTailIndicator) return FrameState::kReady;
  // A zero tail is a frame mid-delivery (head commits before tail on RC);
  // any other value means the payload overran into the tail word.
  return tail == 0 ? FrameState::kPartial : FrameState::kMalformed;
}

std::uint16_t frame_flags(std::span<const std::byte> buf) {
  const std::uint64_t head = load_word(buf.data());
  return static_cast<std::uint16_t>((head >> 32) & 0xFFFF);
}

std::span<const std::byte> frame_payload(std::span<const std::byte> buf) {
  const std::uint64_t head = load_word(buf.data());
  const auto size = static_cast<std::uint32_t>(head & 0xFFFFFFFFu);
  return buf.subspan(8, size);
}

void clear_frame(std::span<std::byte> buf) {
  if (buf.size() < 8) return;
  const std::uint64_t head = load_word(buf.data());
  const auto size = static_cast<std::uint32_t>(head & 0xFFFFFFFFu);
  // Clamp: a garbage size field must not turn the wipe into a heap smash.
  std::memset(buf.data(), 0, std::min(frame_size(size), buf.size()));
}

}  // namespace hydra::proto
