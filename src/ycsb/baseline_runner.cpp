#include "ycsb/baseline_runner.hpp"

#include <functional>
#include <memory>
#include <vector>

namespace hydra::ycsb {

BaselineRunResult run_baseline(sim::Scheduler& sched, baselines::BaselineStore& store,
                               const WorkloadSpec& spec, int num_clients) {
  for (std::uint64_t r = 0; r < spec.record_count; ++r) {
    store.load(format_key(r, spec.key_len), synth_value(r, spec.value_len));
  }

  struct ClientState {
    std::vector<TraceOp> trace;
    std::size_t pos = 0;
    Time op_start = 0;
  };
  auto states = std::make_shared<std::vector<ClientState>>();
  const std::uint64_t ops_per_client = spec.operations / static_cast<std::uint64_t>(num_clients);
  for (int c = 0; c < num_clients; ++c) {
    ClientState st;
    st.trace = generate_trace(spec, c, ops_per_client);
    states->push_back(std::move(st));
  }

  auto get_hist = std::make_shared<LatencyHistogram>();
  auto put_hist = std::make_shared<LatencyHistogram>();
  int remaining = num_clients;

  std::function<void(int)> step = [&, states, get_hist, put_hist](int c) {
    ClientState& st = (*states)[static_cast<std::size_t>(c)];
    if (st.pos > 0) {
      const Duration lat = sched.now() - st.op_start;
      if (st.trace[st.pos - 1].is_get) {
        get_hist->record(lat);
      } else {
        put_hist->record(lat);
      }
    }
    if (st.pos == st.trace.size()) {
      --remaining;
      return;
    }
    const TraceOp& op = st.trace[st.pos++];
    st.op_start = sched.now();
    std::string key = format_key(op.record, spec.key_len);
    if (op.is_get) {
      store.get(c, std::move(key), [&, c](Status, std::string_view) { step(c); });
    } else {
      store.update(c, std::move(key), synth_value(op.record ^ st.pos, spec.value_len),
                   [&, c](Status) { step(c); });
    }
  };

  const Time start = sched.now();
  for (int c = 0; c < num_clients; ++c) step(c);
  while (remaining > 0 && sched.step()) {
  }

  BaselineRunResult result;
  result.operations = get_hist->count() + put_hist->count();
  result.elapsed = sched.now() - start;
  if (result.elapsed > 0) {
    result.throughput_mops =
        static_cast<double>(result.operations) * 1000.0 / static_cast<double>(result.elapsed);
  }
  result.avg_get_us = get_hist->mean() / 1000.0;
  result.avg_update_us = put_hist->mean() / 1000.0;
  return result;
}

}  // namespace hydra::ycsb
