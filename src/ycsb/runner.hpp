// Closed-loop YCSB runner: drives every client through its pre-generated
// trace and aggregates virtual-time throughput/latency, the numbers all
// figure benches report.
#pragma once

#include <cstdint>
#include <string>

#include "hydradb/hydra_cluster.hpp"
#include "ycsb/workload.hpp"

namespace hydra::ycsb {

struct RunResult {
  std::string workload;
  std::uint64_t operations = 0;
  Duration elapsed = 0;          ///< virtual ns from first issue to last completion
  double throughput_mops = 0.0;  ///< million ops per virtual second
  double avg_get_us = 0.0;
  double avg_update_us = 0.0;
  Duration p99_get = 0;
  std::uint64_t ptr_hits = 0;
  std::uint64_t invalid_hits = 0;
  std::uint64_t ptr_misses = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t failures = 0;
  // Range scans (YCSB-E, DESIGN.md §13).
  std::uint64_t scans = 0;          ///< cursor-level scans completed
  std::uint64_t scan_entries = 0;   ///< entries returned across all scans
  double avg_scan_us = 0.0;
  Duration p99_scan = 0;
  std::uint64_t scan_leaf_reads = 0;
  std::uint64_t scan_leaf_fallbacks = 0;
  std::uint64_t scan_restarts = 0;
};

struct RunOptions {
  /// Load records straight into the stores (fast, the default) instead of
  /// through the network.
  bool direct_load = true;
  /// Warm-up operations per client executed before stats reset (gives the
  /// pointer cache its steady-state fill, like the paper's warm runs).
  std::uint64_t warmup_ops_per_client = 0;
  /// Operations each driver keeps in flight at once. 1 (the default) is the
  /// classic closed-loop YCSB driver; larger values exploit the clients'
  /// request-ring window (capped client-side by ClientConfig::window).
  std::uint32_t outstanding = 1;
};

/// Runs `spec` against the cluster and returns aggregate results. The
/// cluster's virtual clock advances; clients' stats are reset at the start
/// of the measured phase.
RunResult run_workload(db::HydraCluster& cluster, const WorkloadSpec& spec,
                       const RunOptions& opts = {});

}  // namespace hydra::ycsb
