// Closed-loop YCSB driver for the baseline stores (Figure 9 comparison).
#pragma once

#include "baselines/baseline.hpp"
#include "common/histogram.hpp"
#include "sim/scheduler.hpp"
#include "ycsb/workload.hpp"

namespace hydra::ycsb {

struct BaselineRunResult {
  std::uint64_t operations = 0;
  Duration elapsed = 0;
  double throughput_mops = 0.0;
  double avg_get_us = 0.0;
  double avg_update_us = 0.0;
};

/// Preloads the records and replays the workload with `num_clients`
/// closed-loop clients against a baseline store.
BaselineRunResult run_baseline(sim::Scheduler& sched, baselines::BaselineStore& store,
                               const WorkloadSpec& spec, int num_clients);

}  // namespace hydra::ycsb
