#include "ycsb/workload.hpp"

#include <algorithm>
#include <cstdio>

#include "common/hash.hpp"

namespace hydra::ycsb {

std::string WorkloadSpec::name() const {
  char buf[64];
  if (scan_fraction > 0.0) {
    std::snprintf(buf, sizeof(buf), "%d%%SCAN(max%llu)/%s",
                  static_cast<int>(scan_fraction * 100),
                  static_cast<unsigned long long>(max_scan_len), to_string(distribution));
  } else if (distribution == Distribution::kHotspot) {
    std::snprintf(buf, sizeof(buf), "%d%%GET/hotspot(%d/%d)",
                  static_cast<int>(get_fraction * 100),
                  static_cast<int>(hotspot_data_fraction * 100),
                  static_cast<int>(hotspot_opn_fraction * 100));
  } else {
    std::snprintf(buf, sizeof(buf), "%d%%GET/%s", static_cast<int>(get_fraction * 100),
                  to_string(distribution));
  }
  return buf;
}

std::vector<WorkloadSpec> paper_workloads(std::uint64_t record_count,
                                          std::uint64_t operations) {
  std::vector<WorkloadSpec> out;
  int seed = 100;
  for (const Distribution dist : {Distribution::kZipfian, Distribution::kUniform}) {
    for (const double get_frac : {0.5, 0.9, 1.0}) {
      WorkloadSpec spec;
      spec.get_fraction = get_frac;
      spec.distribution = dist;
      spec.record_count = record_count;
      spec.operations = operations;
      spec.seed = static_cast<std::uint64_t>(seed++);
      out.push_back(spec);
    }
  }
  return out;
}

WorkloadSpec ycsb_e(std::uint64_t record_count, std::uint64_t operations,
                    std::uint64_t max_scan_len, std::uint64_t seed) {
  WorkloadSpec spec;
  spec.get_fraction = 0.0;  // non-scan remainder = updates
  spec.scan_fraction = 0.95;
  spec.max_scan_len = max_scan_len > 0 ? max_scan_len : 1;
  spec.distribution = Distribution::kZipfian;
  spec.record_count = record_count;
  spec.operations = operations;
  spec.seed = seed;
  return spec;
}

std::vector<TraceOp> generate_trace(const WorkloadSpec& spec, int client_index,
                                    std::uint64_t ops_for_client) {
  Xoshiro256 rng(mix64(spec.seed * 1000003ULL + static_cast<std::uint64_t>(client_index)));
  auto chooser = make_chooser(spec.distribution, spec.record_count, spec.zipf_theta,
                              spec.hotspot_data_fraction, spec.hotspot_opn_fraction);
  std::vector<TraceOp> trace;
  trace.reserve(ops_for_client);
  for (std::uint64_t i = 0; i < ops_for_client; ++i) {
    TraceOp op;
    op.record = chooser->next(rng);
    // Guard the scan draw behind scan_fraction > 0: a scan-free spec must
    // consume exactly the pre-feature RNG sequence (byte-identical traces).
    if (spec.scan_fraction > 0.0 && rng.uniform() < spec.scan_fraction) {
      op.is_scan = true;
      op.is_get = false;
      op.scan_len = std::min<std::uint64_t>(
          spec.max_scan_len,
          1 + static_cast<std::uint64_t>(rng.uniform() *
                                         static_cast<double>(spec.max_scan_len)));
    } else {
      op.is_get = rng.uniform() < spec.get_fraction;
    }
    trace.push_back(op);
  }
  return trace;
}

}  // namespace hydra::ycsb
