#include "ycsb/workload.hpp"

#include <cstdio>

#include "common/hash.hpp"

namespace hydra::ycsb {

std::string WorkloadSpec::name() const {
  char buf[64];
  if (distribution == Distribution::kHotspot) {
    std::snprintf(buf, sizeof(buf), "%d%%GET/hotspot(%d/%d)",
                  static_cast<int>(get_fraction * 100),
                  static_cast<int>(hotspot_data_fraction * 100),
                  static_cast<int>(hotspot_opn_fraction * 100));
  } else {
    std::snprintf(buf, sizeof(buf), "%d%%GET/%s", static_cast<int>(get_fraction * 100),
                  to_string(distribution));
  }
  return buf;
}

std::vector<WorkloadSpec> paper_workloads(std::uint64_t record_count,
                                          std::uint64_t operations) {
  std::vector<WorkloadSpec> out;
  int seed = 100;
  for (const Distribution dist : {Distribution::kZipfian, Distribution::kUniform}) {
    for (const double get_frac : {0.5, 0.9, 1.0}) {
      WorkloadSpec spec;
      spec.get_fraction = get_frac;
      spec.distribution = dist;
      spec.record_count = record_count;
      spec.operations = operations;
      spec.seed = static_cast<std::uint64_t>(seed++);
      out.push_back(spec);
    }
  }
  return out;
}

std::vector<TraceOp> generate_trace(const WorkloadSpec& spec, int client_index,
                                    std::uint64_t ops_for_client) {
  Xoshiro256 rng(mix64(spec.seed * 1000003ULL + static_cast<std::uint64_t>(client_index)));
  auto chooser = make_chooser(spec.distribution, spec.record_count, spec.zipf_theta,
                              spec.hotspot_data_fraction, spec.hotspot_opn_fraction);
  std::vector<TraceOp> trace;
  trace.reserve(ops_for_client);
  for (std::uint64_t i = 0; i < ops_for_client; ++i) {
    TraceOp op;
    op.record = chooser->next(rng);
    op.is_get = rng.uniform() < spec.get_fraction;
    trace.push_back(op);
  }
  return trace;
}

}  // namespace hydra::ycsb
