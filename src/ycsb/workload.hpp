// YCSB-style workload specification and trace pre-generation (paper §6).
//
// "Considering that YCSB workload generation can be highly CPU-intensive
// and time-consuming, all the workloads are pre-generated" -- we do the
// same: traces are materialized up front and replayed by the clients, so
// generation cost never pollutes the measurement.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/keygen.hpp"

namespace hydra::ycsb {

struct WorkloadSpec {
  /// Fraction of operations that are GETs; the remainder are UPDATEs.
  double get_fraction = 1.0;
  /// Fraction of operations that are range SCANs (YCSB-E, DESIGN.md §13):
  /// start key drawn from `distribution`, length uniform in
  /// [1, max_scan_len]. The remaining (1 - scan_fraction) ops split between
  /// GET/UPDATE by get_fraction as usual. 0 (the default) draws exactly the
  /// pre-feature RNG sequence, so existing traces stay byte-identical.
  double scan_fraction = 0.0;
  std::uint64_t max_scan_len = 1;
  Distribution distribution = Distribution::kZipfian;
  std::uint64_t record_count = 60'000;
  std::uint64_t operations = 120'000;  ///< total, split across clients
  std::size_t key_len = 16;            ///< paper: 16-byte keys
  std::size_t value_len = 32;          ///< paper: 32-byte values
  double zipf_theta = ZipfianChooser::kDefaultTheta;
  /// Hotspot distribution shape (ignored unless distribution == kHotspot):
  /// `hotspot_opn_fraction` of operations hit the first
  /// `hotspot_data_fraction` of the records.
  double hotspot_data_fraction = HotspotChooser::kDefaultDataFraction;
  double hotspot_opn_fraction = HotspotChooser::kDefaultOpnFraction;
  std::uint64_t seed = 1;

  [[nodiscard]] std::string name() const;
};

/// The paper's six workloads: {50, 90, 100}% GET x {Zipfian, Uniform}.
std::vector<WorkloadSpec> paper_workloads(std::uint64_t record_count,
                                          std::uint64_t operations);

/// YCSB-E: 95% short range scans (zipfian start keys, uniform lengths in
/// [1, max_scan_len]), 5% updates.
WorkloadSpec ycsb_e(std::uint64_t record_count, std::uint64_t operations,
                    std::uint64_t max_scan_len, std::uint64_t seed = 500);

struct TraceOp {
  std::uint64_t record;
  bool is_get;
  bool is_scan = false;
  std::uint64_t scan_len = 1;  ///< entries requested when is_scan
};

/// Pre-generates the request trace for one client (deterministic in
/// (spec.seed, client_index)).
std::vector<TraceOp> generate_trace(const WorkloadSpec& spec, int client_index,
                                    std::uint64_t ops_for_client);

}  // namespace hydra::ycsb
