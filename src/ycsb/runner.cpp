#include "ycsb/runner.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/histogram.hpp"
#include "common/logging.hpp"

namespace hydra::ycsb {
namespace {

/// Per-client driver: keeps `outstanding` ops in flight (1 = classic
/// closed-loop, each completion issuing the next trace entry).
class Driver {
 public:
  Driver(client::Client& c, const WorkloadSpec& spec, std::vector<TraceOp> trace,
         std::uint32_t outstanding, int* remaining)
      : client_(c),
        spec_(spec),
        trace_(std::move(trace)),
        outstanding_(std::max<std::uint32_t>(outstanding, 1)),
        remaining_(remaining) {}

  void start() {
    if (trace_.empty()) {
      --*remaining_;
      return;
    }
    const auto initial = std::min<std::size_t>(outstanding_, trace_.size());
    for (std::size_t i = 0; i < initial; ++i) issue_next();
  }

 private:
  void issue_next() {
    const TraceOp& op = trace_[pos_++];
    std::string key = format_key(op.record, spec_.key_len);
    if (op.is_scan) {
      client_.scan(std::move(key), static_cast<std::uint32_t>(op.scan_len),
                   [this](Status, client::Client::ScanEntries) { on_done(); });
    } else if (op.is_get) {
      client_.get(std::move(key), [this](Status, std::string_view) { on_done(); });
    } else {
      client_.update(std::move(key), synth_value(op.record ^ pos_, spec_.value_len),
                     [this](Status) { on_done(); });
    }
  }

  void on_done() {
    ++completed_;
    if (pos_ < trace_.size()) {
      issue_next();
    } else if (completed_ == trace_.size()) {
      --*remaining_;
    }
  }

  client::Client& client_;
  const WorkloadSpec& spec_;
  std::vector<TraceOp> trace_;
  std::uint32_t outstanding_;
  std::size_t pos_ = 0;
  std::size_t completed_ = 0;
  int* remaining_;
};

void run_phase(db::HydraCluster& cluster, const WorkloadSpec& spec,
               std::uint64_t ops_per_client, int trace_salt, std::uint32_t outstanding) {
  auto& clients = cluster.clients();
  int remaining = static_cast<int>(clients.size());
  std::vector<std::unique_ptr<Driver>> drivers;
  drivers.reserve(clients.size());
  for (std::size_t c = 0; c < clients.size(); ++c) {
    drivers.push_back(std::make_unique<Driver>(
        *clients[c], spec,
        generate_trace(spec, static_cast<int>(c) + trace_salt, ops_per_client),
        outstanding, &remaining));
  }
  for (auto& d : drivers) d->start();
  std::uint64_t guard = 0;
  while (remaining > 0) {
    if (!cluster.scheduler().step() || ++guard > 2'000'000'000ULL) {
      HYDRA_ERROR("ycsb runner: simulation drained before all clients finished");
      break;
    }
  }
}

}  // namespace

RunResult run_workload(db::HydraCluster& cluster, const WorkloadSpec& spec,
                       const RunOptions& opts) {
  auto& clients = cluster.clients();

  // ---- load phase ----------------------------------------------------------
  if (opts.direct_load) {
    for (std::uint64_t r = 0; r < spec.record_count; ++r) {
      cluster.direct_load(format_key(r, spec.key_len), synth_value(r, spec.value_len));
    }
  } else {
    for (std::uint64_t r = 0; r < spec.record_count; ++r) {
      cluster.put(format_key(r, spec.key_len), synth_value(r, spec.value_len),
                  static_cast<int>(r % clients.size()));
    }
  }

  // ---- warm-up --------------------------------------------------------------
  if (opts.warmup_ops_per_client > 0) {
    run_phase(cluster, spec, opts.warmup_ops_per_client, /*trace_salt=*/7777,
              opts.outstanding);
  }

  // ---- measured phase --------------------------------------------------------
  for (auto* c : clients) c->mutable_stats() = client::ClientStats{};
  const Time start = cluster.scheduler().now();
  const std::uint64_t ops_per_client = spec.operations / clients.size();
  run_phase(cluster, spec, ops_per_client, /*trace_salt=*/0, opts.outstanding);
  const Time end = cluster.scheduler().now();

  // ---- aggregate --------------------------------------------------------------
  RunResult result;
  result.workload = spec.name();
  result.elapsed = end - start;
  LatencyHistogram get_hist;
  LatencyHistogram put_hist;
  LatencyHistogram scan_hist;
  for (auto* c : clients) {
    const auto& s = c->stats();
    result.operations += s.gets + s.puts + s.removes + s.scans;
    result.ptr_hits += s.ptr_hits;
    result.invalid_hits += s.invalid_hits;
    result.ptr_misses += s.ptr_misses;
    result.timeouts += s.timeouts;
    result.failures += s.failures;
    result.scans += s.scans;
    result.scan_entries += s.scan_entries;
    result.scan_leaf_reads += s.scan_leaf_reads;
    result.scan_leaf_fallbacks += s.scan_leaf_fallbacks;
    result.scan_restarts += s.scan_restarts;
    get_hist.merge(s.get_latency);
    put_hist.merge(s.put_latency);
    scan_hist.merge(s.scan_latency);
  }
  if (result.elapsed > 0) {
    result.throughput_mops =
        static_cast<double>(result.operations) * 1000.0 / static_cast<double>(result.elapsed);
  }
  result.avg_get_us = get_hist.mean() / 1000.0;
  result.avg_update_us = put_hist.mean() / 1000.0;
  result.p99_get = get_hist.percentile(99);
  result.avg_scan_us = scan_hist.mean() / 1000.0;
  result.p99_scan = scan_hist.percentile(99);
  return result;
}

}  // namespace hydra::ycsb
