#!/usr/bin/env bash
# Tier-1 verification (ROADMAP.md): configure, build and run the full test
# suite. Pass --asan to run the same suite under ASan+UBSan (the `asan`
# CMake preset, building into build-asan/).
set -euo pipefail
cd "$(dirname "$0")/.."

preset=default
if [[ "${1:-}" == "--asan" ]]; then
  preset=asan
  shift
fi

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$(nproc)"
ctest --preset "$preset" -j "$(nproc)" "$@"
