#!/usr/bin/env bash
# Tier-1 verification (ROADMAP.md): configure, build and run the full test
# suite. Pass --asan to run the same suite under ASan+UBSan (the `asan`
# CMake preset, building into build-asan/).
set -euo pipefail
cd "$(dirname "$0")/.."

preset=default
if [[ "${1:-}" == "--asan" ]]; then
  preset=asan
  shift
  # The chaos sweep runs its full 140 random schedules in the default
  # preset; under ASan each run is ~10x slower, so scale the randomized
  # portion down (the 70 scripted runs always execute in full).
  export HYDRA_CHAOS_RANDOM_RUNS="${HYDRA_CHAOS_RANDOM_RUNS:-40}"
fi

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$(nproc)"
ctest --preset "$preset" -j "$(nproc)" "$@"
