#!/usr/bin/env bash
# Tier-1 verification (ROADMAP.md): configure, build and run the full test
# suite. Pass --asan to run the same suite under ASan+UBSan (the `asan`
# CMake preset, building into build-asan/), or --tsan for ThreadSanitizer
# (the `tsan` preset, build-tsan/).
set -euo pipefail
cd "$(dirname "$0")/.."

preset=default
case "${1:-}" in
  --asan|--tsan)
    preset="${1#--}"
    shift
    # The chaos sweeps run their full random schedules in the default
    # preset; under a sanitizer each run is ~10x slower, so scale the
    # randomized portions down (the scripted runs always execute in full).
    # This covers migration_test too: its scripted families plus a reduced
    # random sweep run under both --asan and --tsan.
    export HYDRA_CHAOS_RANDOM_RUNS="${HYDRA_CHAOS_RANDOM_RUNS:-40}"
    export HYDRA_MIGRATION_RANDOM_RUNS="${HYDRA_MIGRATION_RANDOM_RUNS:-8}"
    ;;
esac

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$(nproc)"
ctest --preset "$preset" -j "$(nproc)" "$@"
