#!/usr/bin/env bash
# Tier-1 verification (ROADMAP.md): configure, build and run the full test
# suite. Pass --asan to run the same suite under ASan+UBSan (the `asan`
# CMake preset, building into build-asan/), or --tsan for ThreadSanitizer
# (the `tsan` preset, build-tsan/).
#
# Pass --txn to run only the transaction-layer suite (ctest label `txn`)
# with an enlarged seeded-random sweep; --hotkey for the hot-key replication
# plane suite (ctest label `hotkey`, DESIGN.md §12) likewise widened;
# --scan for the ordered-index + range-scan suite (ctest label `scan`,
# DESIGN.md §13) with both the index model check and the scan-mid-migration
# sweep enlarged; --failover for the fast-failover agreement plane suite
# (ctest label `failover`, DESIGN.md §14) with its seeded-random sweep
# widened; --labels <regex> to run any other ctest label subset
# (unit/chaos/txn/scale/hotkey/scan/failover, see tests/CMakeLists.txt).
# Modes compose: `tier1.sh --asan --txn` runs the txn suite under ASan with
# the sweep scaled down to sanitizer speed.
set -euo pipefail
cd "$(dirname "$0")/.."

preset=default
label_regex=""
txn_mode=0
hotkey_mode=0
scan_mode=0
failover_mode=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --asan|--tsan)
      preset="${1#--}"
      shift
      # The chaos sweeps run their full random schedules in the default
      # preset; under a sanitizer each run is ~10x slower, so scale the
      # randomized portions down (the scripted runs always execute in full).
      # This covers migration_test too: its scripted families plus a reduced
      # random sweep run under both --asan and --tsan.
      export HYDRA_CHAOS_RANDOM_RUNS="${HYDRA_CHAOS_RANDOM_RUNS:-40}"
      export HYDRA_MIGRATION_RANDOM_RUNS="${HYDRA_MIGRATION_RANDOM_RUNS:-8}"
      export HYDRA_TXN_RANDOM_RUNS="${HYDRA_TXN_RANDOM_RUNS:-30}"
      export HYDRA_HOTKEY_RANDOM_RUNS="${HYDRA_HOTKEY_RANDOM_RUNS:-8}"
      export HYDRA_SCAN_RANDOM_RUNS="${HYDRA_SCAN_RANDOM_RUNS:-8}"
      export HYDRA_INDEX_RANDOM_RUNS="${HYDRA_INDEX_RANDOM_RUNS:-60}"
      export HYDRA_FAILOVER_RANDOM_RUNS="${HYDRA_FAILOVER_RANDOM_RUNS:-8}"
      ;;
    --txn)
      txn_mode=1
      label_regex="txn"
      shift
      ;;
    --hotkey)
      hotkey_mode=1
      label_regex="hotkey"
      shift
      ;;
    --scan)
      scan_mode=1
      label_regex="scan"
      shift
      ;;
    --failover)
      failover_mode=1
      label_regex="failover"
      shift
      ;;
    --labels)
      label_regex="$2"
      shift 2
      ;;
    *)
      break
      ;;
  esac
done

if [[ $txn_mode -eq 1 && "$preset" == default ]]; then
  # Dedicated txn sweep: widen the seeded-random txn-kill-mid-commit family
  # well past the per-PR acceptance floor of 100 runs.
  export HYDRA_TXN_RANDOM_RUNS="${HYDRA_TXN_RANDOM_RUNS:-200}"
fi
if [[ $hotkey_mode -eq 1 && "$preset" == default ]]; then
  # Dedicated hot-key sweep: widen the seeded-random promotion/invalidation
  # chaos family well past the default 6 in-suite runs.
  export HYDRA_HOTKEY_RANDOM_RUNS="${HYDRA_HOTKEY_RANDOM_RUNS:-60}"
fi
if [[ $scan_mode -eq 1 && "$preset" == default ]]; then
  # Dedicated scan sweep: widen the scan-mid-migration chaos family past the
  # default 25 in-suite runs, and the index model check past its 200-seed
  # acceptance floor.
  export HYDRA_SCAN_RANDOM_RUNS="${HYDRA_SCAN_RANDOM_RUNS:-100}"
  export HYDRA_INDEX_RANDOM_RUNS="${HYDRA_INDEX_RANDOM_RUNS:-500}"
fi
if [[ $failover_mode -eq 1 && "$preset" == default ]]; then
  # Dedicated failover-agreement sweep: widen the seeded-random kill/torn
  # revocation/split-ballot chaos family past the default 40 in-suite runs.
  export HYDRA_FAILOVER_RANDOM_RUNS="${HYDRA_FAILOVER_RANDOM_RUNS:-60}"
fi

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$(nproc)"
ctest_args=()
if [[ -n "$label_regex" ]]; then
  ctest_args+=(--label-regex "$label_regex")
fi
ctest --preset "$preset" -j "$(nproc)" "${ctest_args[@]}" "$@"

# Under a sanitizer, also smoke the connection-scalability path (DESIGN.md
# §10) at ~5k muxed clients: enough to exercise the shared-ring demux,
# credit waits and the reaper with sanitizer instrumentation live, without
# the cost of the full 100k sweep.
if [[ "$preset" != default && $txn_mode -eq 0 && -z "$label_regex" ]]; then
  "build-$preset/bench/bench_fig12_scalability" \
    --clients=5000 --mux --json="build-$preset/BENCH_fig12_smoke.json"
fi
