#!/usr/bin/env bash
# Tier-1 verification (ROADMAP.md): configure, build and run the full test
# suite. Pass --asan to run the same suite under ASan+UBSan (the `asan`
# CMake preset, building into build-asan/), or --tsan for ThreadSanitizer
# (the `tsan` preset, build-tsan/).
set -euo pipefail
cd "$(dirname "$0")/.."

preset=default
case "${1:-}" in
  --asan|--tsan)
    preset="${1#--}"
    shift
    # The chaos sweeps run their full random schedules in the default
    # preset; under a sanitizer each run is ~10x slower, so scale the
    # randomized portions down (the scripted runs always execute in full).
    # This covers migration_test too: its scripted families plus a reduced
    # random sweep run under both --asan and --tsan.
    export HYDRA_CHAOS_RANDOM_RUNS="${HYDRA_CHAOS_RANDOM_RUNS:-40}"
    export HYDRA_MIGRATION_RANDOM_RUNS="${HYDRA_MIGRATION_RANDOM_RUNS:-8}"
    ;;
esac

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$(nproc)"
ctest --preset "$preset" -j "$(nproc)" "$@"

# Under a sanitizer, also smoke the connection-scalability path (DESIGN.md
# §10) at ~5k muxed clients: enough to exercise the shared-ring demux,
# credit waits and the reaper with sanitizer instrumentation live, without
# the cost of the full 100k sweep.
if [[ "$preset" != default ]]; then
  "build-$preset/bench/bench_fig12_scalability" \
    --clients=5000 --mux --json="build-$preset/BENCH_fig12_smoke.json"
fi
