// Focused unit tests for the shard and client internals that the broad
// integration suite exercises only indirectly: connection admission,
// malformed traffic, slot framing limits, background GC scheduling, client
// retry/timeout bookkeeping, lease-renew refresh and stats accounting.
#include <string>

#include <gtest/gtest.h>

#include "client/client.hpp"
#include "common/keygen.hpp"
#include "fabric/fabric.hpp"
#include "hydradb/hydra_cluster.hpp"
#include "proto/frame.hpp"
#include "server/shard.hpp"

namespace hydra {
namespace {

// ------------------------------------------------------------ raw shard

class RawShardTest : public ::testing::Test {
 protected:
  RawShardTest() {
    server_node = fabric.add_node("server").id();
    client_node = fabric.add_node("client").id();
    server::ShardConfig cfg;
    cfg.id = 0;
    cfg.store.arena_bytes = 8 << 20;
    cfg.store.min_buckets = 1 << 10;
    shard = std::make_unique<server::Shard>(sched, fabric, server_node, cfg);
  }

  /// Hand-rolled connection: lets tests write arbitrary bytes into the
  /// shard's request slot, bypassing the client library.
  struct RawConn {
    fabric::QueuePair* qp;
    server::Shard::AcceptResult accept;
    std::vector<std::byte> resp_buf;
    fabric::MemoryRegion* resp_mr;
  };

  RawConn open_raw() {
    RawConn conn;
    conn.resp_buf.resize(16 * 1024);
    conn.resp_mr = fabric.node(client_node).register_memory(conn.resp_buf);
    auto [cq, sq] = fabric.connect(client_node, server_node);
    conn.qp = cq;
    conn.accept = shard->accept(sq, conn.resp_mr->addr(0),
                                static_cast<std::uint32_t>(conn.resp_buf.size()), 1);
    return conn;
  }

  void send_request(RawConn& conn, const proto::Request& req) {
    const auto payload = proto::encode_request(req);
    std::vector<std::byte> frame(proto::frame_size(payload.size()));
    proto::encode_frame(frame, payload);
    conn.qp->post_write(frame, conn.accept.req_slot);
  }

  std::optional<proto::Response> read_response(RawConn& conn) {
    if (!proto::poll_frame(conn.resp_buf).has_value()) return std::nullopt;
    auto resp = proto::decode_response(proto::frame_payload(conn.resp_buf));
    proto::clear_frame(conn.resp_buf);
    return resp;
  }

  sim::Scheduler sched;
  fabric::Fabric fabric{sched};
  NodeId server_node = 0;
  NodeId client_node = 0;
  std::unique_ptr<server::Shard> shard;
};

TEST_F(RawShardTest, AcceptHandsOutDistinctSlots) {
  auto c1 = open_raw();
  auto c2 = open_raw();
  ASSERT_TRUE(c1.accept.ok);
  ASSERT_TRUE(c2.accept.ok);
  EXPECT_EQ(c1.accept.req_slot.rkey, c2.accept.req_slot.rkey);  // same region
  EXPECT_NE(c1.accept.req_slot.offset, c2.accept.req_slot.offset);
  EXPECT_EQ(shard->connection_count(), 2u);
  EXPECT_NE(c1.accept.arena_rkey, 0u);
}

TEST_F(RawShardTest, ConnectionLimitIsEnforced) {
  // Fill the table to max_connections; the next accept must fail cleanly.
  const std::uint32_t limit = shard->config().max_connections;
  for (std::uint32_t i = shard->connection_count(); i < limit; ++i) {
    auto [cq, sq] = fabric.connect(client_node, server_node);
    (void)cq;
    ASSERT_TRUE(shard->accept(sq, fabric::RemoteAddr{1, 0}, 1024, i).ok);
  }
  auto [cq, sq] = fabric.connect(client_node, server_node);
  (void)cq;
  EXPECT_FALSE(shard->accept(sq, fabric::RemoteAddr{1, 0}, 1024, 999).ok);
}

TEST_F(RawShardTest, FullRequestResponseThroughRawFrames) {
  auto conn = open_raw();
  proto::Request req;
  req.type = proto::MsgType::kPut;
  req.req_id = 42;
  req.key = "raw-key";
  req.value = "raw-value";
  send_request(conn, req);
  sched.run();
  auto resp = read_response(conn);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->req_id, 42u);
  EXPECT_EQ(resp->status, Status::kOk);
  EXPECT_EQ(shard->stats().puts, 1u);
  EXPECT_EQ(shard->stats().responses, 1u);

  req.type = proto::MsgType::kGet;
  req.req_id = 43;
  req.value.clear();
  send_request(conn, req);
  sched.run();
  resp = read_response(conn);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->value, "raw-value");
  EXPECT_TRUE(resp->remote_ptr.valid());
  EXPECT_EQ(resp->remote_ptr.rkey, conn.accept.arena_rkey);
}

TEST_F(RawShardTest, MalformedPayloadIsCountedAndSkipped) {
  auto conn = open_raw();
  // A valid frame whose payload is garbage.
  std::vector<std::byte> garbage(24, std::byte{0xEE});
  std::vector<std::byte> frame(proto::frame_size(garbage.size()));
  proto::encode_frame(frame, garbage);
  conn.qp->post_write(frame, conn.accept.req_slot);
  sched.run();
  EXPECT_EQ(shard->stats().malformed, 1u);
  EXPECT_EQ(shard->stats().responses, 0u);

  // The shard must still serve the next good request on the same slot.
  proto::Request req;
  req.type = proto::MsgType::kPut;
  req.req_id = 1;
  req.key = "k";
  req.value = "v";
  send_request(conn, req);
  sched.run();
  EXPECT_TRUE(read_response(conn).has_value());
}

TEST_F(RawShardTest, TornFrameWithLyingSizeFieldIsScrubbed) {
  auto conn = open_raw();
  // A head word whose size field claims more bytes than the slot holds:
  // the sweep must count it malformed and scrub the slot, never trusting
  // the size for reads or clears.
  std::vector<std::byte> torn(16);
  const std::uint64_t head = (static_cast<std::uint64_t>(proto::kHeadMagic) << 48) |
                             (1u << 20);  // 1 MiB "payload" in a 16 KiB slot
  std::memcpy(torn.data(), &head, 8);
  std::memcpy(torn.data() + 8, &proto::kTailIndicator, 8);
  conn.qp->post_write(torn, conn.accept.req_slot);
  sched.run();
  EXPECT_EQ(shard->stats().malformed, 1u);
  EXPECT_EQ(shard->stats().responses, 0u);

  // The slot is clean again: a well-formed request on it is served.
  proto::Request req;
  req.type = proto::MsgType::kPut;
  req.req_id = 2;
  req.key = "k";
  req.value = "v";
  send_request(conn, req);
  sched.run();
  auto resp = read_response(conn);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, Status::kOk);
}

TEST_F(RawShardTest, RingAcceptGrantsClampedWindow) {
  auto [cq, sq] = fabric.connect(client_node, server_node);
  (void)cq;
  std::vector<std::byte> resp_buf(8 * 16 * 1024);
  auto* mr = fabric.node(client_node).register_memory(resp_buf);
  // Ask for more than the shard provisions: granted = ring_slots.
  auto res = shard->accept(sq, mr->addr(0), 16 * 1024, 1, /*window=*/64);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.window, shard->config().ring_slots);
  // Request slots are laid out ring_slots apart per connection.
  auto res2 = shard->accept(fabric.connect(client_node, server_node).second,
                            mr->addr(0), 16 * 1024, 2, /*window=*/2);
  ASSERT_TRUE(res2.ok);
  EXPECT_EQ(res2.window, 2u);
  EXPECT_EQ(res2.req_slot.offset - res.req_slot.offset,
            static_cast<std::uint64_t>(shard->config().ring_slots) *
                shard->config().msg_slot_bytes);
}

TEST_F(RawShardTest, UnknownMessageTypeRejected) {
  auto conn = open_raw();
  proto::Request req;
  req.type = static_cast<proto::MsgType>(200);
  req.req_id = 7;
  req.key = "k";
  send_request(conn, req);
  sched.run();
  auto resp = read_response(conn);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, Status::kInvalidArgument);
}

TEST_F(RawShardTest, BackgroundGcReclaimsAfterLeaseExpiry) {
  auto conn = open_raw();
  proto::Request req;
  req.type = proto::MsgType::kPut;
  req.key = "churn";
  for (int i = 0; i < 10; ++i) {
    req.req_id = static_cast<std::uint64_t>(i);
    req.value = "value-" + std::to_string(i);
    send_request(conn, req);
    // Bounded driving: keep virtual time well before the 1s leases so the
    // background GC cannot fire yet.
    sched.run_until(sched.now() + 100 * kMicrosecond);
    ASSERT_TRUE(read_response(conn).has_value());
  }
  EXPECT_EQ(shard->store().deferred_count(), 9u);  // 9 retired versions
  // The shard's GC actor wakes after the (cold-key) leases lapse.
  sched.run_until(sched.now() + 70 * kSecond);
  EXPECT_EQ(shard->store().deferred_count(), 0u);
  EXPECT_EQ(shard->store().stats().reclaimed_items, 9u);
  EXPECT_EQ(shard->store().size(), 1u);
}

TEST_F(RawShardTest, BusyTimeAccumulates) {
  auto conn = open_raw();
  proto::Request req;
  req.type = proto::MsgType::kPut;
  req.req_id = 1;
  req.key = "k";
  req.value = "v";
  send_request(conn, req);
  sched.run();
  EXPECT_GT(shard->stats().busy_time, shard->config().cpu.base_put);
}

// ------------------------------------------------------------ client

db::ClusterOptions tiny() {
  db::ClusterOptions opts;
  opts.server_nodes = 1;
  opts.shards_per_node = 1;
  opts.client_nodes = 1;
  opts.clients_per_node = 1;
  opts.enable_swat = false;
  opts.shard_template.store.arena_bytes = 8 << 20;
  return opts;
}

TEST(ClientUnit, ResolverlessClientFailsFast) {
  sim::Scheduler sched;
  fabric::Fabric fabric{sched};
  const NodeId n = fabric.add_node("c").id();
  client::Client c(sched, fabric, n, client::ClientConfig{});
  Status status = Status::kOk;
  c.get("anything", [&](Status s, std::string_view) { status = s; });
  sched.run();
  EXPECT_EQ(status, Status::kDisconnected);
}

TEST(ClientUnit, OpsQueuePerConnectionAndAllComplete) {
  db::HydraCluster cluster(tiny());
  auto* c = cluster.clients()[0];
  int completed = 0;
  // Burst of 20 ops to one shard: one outstanding, rest queue FIFO.
  for (int i = 0; i < 20; ++i) {
    c->put(format_key(static_cast<std::uint64_t>(i)), "v", [&](Status s) {
      EXPECT_EQ(s, Status::kOk);
      ++completed;
    });
  }
  cluster.run_for(50 * kMillisecond);
  EXPECT_EQ(completed, 20);
  EXPECT_EQ(c->stats().puts, 20u);
}

TEST(ClientUnit, GetLatencyHistogramPopulated) {
  db::HydraCluster cluster(tiny());
  cluster.put("k", "v");
  for (int i = 0; i < 10; ++i) cluster.get("k");
  const auto& hist = cluster.clients()[0]->stats().get_latency;
  EXPECT_EQ(hist.count(), 10u);
  EXPECT_GT(hist.mean(), 0.0);
  EXPECT_GE(hist.max(), hist.percentile(50));
}

TEST(ClientUnit, RenewLeaseRefreshesCachedPointer) {
  db::HydraCluster cluster(tiny());
  cluster.put("k", "v");
  ASSERT_TRUE(cluster.get("k").has_value());  // pointer cached
  auto* c = cluster.clients()[0];
  client::CachedPtr before;
  ASSERT_TRUE(c->pointer_cache().get(hash_key("k"), &before));

  // Renew later; the refreshed pointer must carry a longer lease.
  cluster.run_for(500 * kMillisecond);
  Status status = Status::kTimeout;
  c->renew_lease("k", [&](Status s) { status = s; });
  cluster.run_for(10 * kMillisecond);
  EXPECT_EQ(status, Status::kOk);
  client::CachedPtr after;
  ASSERT_TRUE(c->pointer_cache().get(hash_key("k"), &after));
  EXPECT_GT(after.primary.lease_expiry, before.primary.lease_expiry);
}

// Boundary audit of the lease check guarding one-sided reads. The client
// assumes a read takes up to lease_safety_margin to complete, so the
// contract is strict: a lease with expiry > now + margin may be read; one
// expiring EXACTLY at now + margin counts as expired (the read could land
// at the instant the server reclaims the item) and must take the message
// path. This pins `>` so a refactor to `>=` fails loudly.
TEST(ClientUnit, LeaseExpiringExactlyAtMarginTakesMessagePath) {
  auto opts = tiny();
  opts.client_template.auto_renew = false;  // nothing may silently extend leases
  db::HydraCluster cluster(opts);
  auto* c = cluster.clients()[0];
  const Duration margin = opts.client_template.lease_safety_margin;

  // --- one tick inside the boundary: the read is allowed -------------------
  cluster.put("k", "v");
  ASSERT_TRUE(cluster.get("k").has_value());  // mints + caches the pointer
  client::CachedPtr cached;
  ASSERT_TRUE(c->pointer_cache().get(hash_key("k"), &cached));
  const proto::RemotePtr ptr = cached.primary;
  ASSERT_GT(ptr.lease_expiry, cluster.scheduler().now() + margin);

  cluster.scheduler().run_until(ptr.lease_expiry - margin - 1);
  const auto hits_before = c->stats().ptr_hits;
  ASSERT_EQ(*cluster.get("k"), "v");
  EXPECT_EQ(c->stats().ptr_hits, hits_before + 1)
      << "a lease with margin + 1ns remaining must still be RDMA-readable";

  // --- exactly at the boundary: the read is forbidden ----------------------
  cluster.put("k2", "v2");
  ASSERT_TRUE(cluster.get("k2").has_value());
  client::CachedPtr cached2;
  ASSERT_TRUE(c->pointer_cache().get(hash_key("k2"), &cached2));
  const proto::RemotePtr ptr2 = cached2.primary;
  ASSERT_GT(ptr2.lease_expiry, cluster.scheduler().now() + margin);

  cluster.scheduler().run_until(ptr2.lease_expiry - margin);
  const auto hits2 = c->stats().ptr_hits;
  const auto misses2 = c->stats().ptr_misses;
  Status st = Status::kTimeout;
  std::string val;
  c->get("k2", [&](Status s, std::string_view v) {
    st = s;
    val = std::string(v);
  });
  cluster.run_for(10 * kMillisecond);
  EXPECT_EQ(st, Status::kOk);  // the message-path fallback still answers
  EXPECT_EQ(val, "v2");
  EXPECT_EQ(c->stats().ptr_hits, hits2)
      << "read posted against a lease expiring exactly at now + margin";
  EXPECT_EQ(c->stats().ptr_misses, misses2 + 1);
}

TEST(ClientUnit, TimeoutAgainstDeadClusterGivesUpWithStatus) {
  auto opts = tiny();
  opts.client_template.request_timeout = 200 * kMicrosecond;
  opts.client_template.max_retries = 2;
  db::HydraCluster cluster(opts);
  cluster.put("k", "v");  // establish the connection first
  cluster.shard(0)->kill();

  Status status = Status::kOk;
  bool done = false;
  cluster.clients()[0]->put("k2", "v2", [&](Status s) {
    status = s;
    done = true;
  });
  cluster.run_for(10 * kMillisecond);
  EXPECT_TRUE(done);
  EXPECT_EQ(status, Status::kTimeout);
  EXPECT_GT(cluster.clients()[0]->stats().timeouts, 0u);
  EXPECT_GT(cluster.clients()[0]->stats().failures, 0u);
}

TEST(ClientUnit, OversizedRequestRejectedLocally) {
  db::HydraCluster cluster(tiny());  // 16 KiB slots
  Status status = Status::kOk;
  cluster.clients()[0]->put("k", std::string(64 * 1024, 'x'),
                            [&](Status s) { status = s; });
  cluster.run_for(10 * kMillisecond);
  EXPECT_EQ(status, Status::kInvalidArgument);
}

TEST(ClientUnit, AutoRenewKeepsHotPointerAlive) {
  auto opts = tiny();
  opts.client_template.auto_renew = true;
  db::HydraCluster cluster(opts);
  cluster.put("hot", "v");
  ASSERT_TRUE(cluster.get("hot").has_value());
  auto* c = cluster.clients()[0];

  // Keep reading across lease boundaries; auto-renew should fire and the
  // vast majority of reads stay on the RDMA path.
  for (int i = 0; i < 40; ++i) {
    cluster.run_for(300 * kMillisecond);
    ASSERT_TRUE(cluster.get("hot").has_value());
  }
  EXPECT_GT(c->stats().renews_sent, 0u);
  EXPECT_GT(c->stats().ptr_hits, 30u);
}

TEST(ClientUnit, SharedCacheCountsAreCoherent) {
  auto opts = tiny();
  opts.clients_per_node = 3;
  db::HydraCluster cluster(opts);
  cluster.put("k", "v", 0);
  ASSERT_TRUE(cluster.get("k", 0).has_value());
  // All three clients share one cache object.
  auto& cache0 = cluster.clients()[0]->pointer_cache();
  auto& cache1 = cluster.clients()[1]->pointer_cache();
  EXPECT_EQ(&cache0, &cache1);
  EXPECT_EQ(cache0.size(), 1u);
}

}  // namespace
}  // namespace hydra
